file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qap.dir/bench_ablation_qap.cpp.o"
  "CMakeFiles/bench_ablation_qap.dir/bench_ablation_qap.cpp.o.d"
  "bench_ablation_qap"
  "bench_ablation_qap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
