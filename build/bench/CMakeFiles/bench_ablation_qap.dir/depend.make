# Empty dependencies file for bench_ablation_qap.
# This may be replaced when dependencies are built.
