file(REMOVE_RECURSE
  "CMakeFiles/bench_specialization.dir/bench_specialization.cpp.o"
  "CMakeFiles/bench_specialization.dir/bench_specialization.cpp.o.d"
  "bench_specialization"
  "bench_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
