# Empty dependencies file for bench_specialization.
# This may be replaced when dependencies are built.
