# Empty compiler generated dependencies file for stencil_bench_common.
# This may be replaced when dependencies are built.
