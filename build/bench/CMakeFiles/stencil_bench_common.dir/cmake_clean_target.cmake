file(REMOVE_RECURSE
  "libstencil_bench_common.a"
)
