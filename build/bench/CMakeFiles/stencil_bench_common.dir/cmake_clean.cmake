file(REMOVE_RECURSE
  "CMakeFiles/stencil_bench_common.dir/common.cpp.o"
  "CMakeFiles/stencil_bench_common.dir/common.cpp.o.d"
  "libstencil_bench_common.a"
  "libstencil_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
