
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_weak_scaling.cpp" "bench/CMakeFiles/bench_weak_scaling.dir/bench_weak_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_weak_scaling.dir/bench_weak_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/stencil_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stencil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/stencil_simpi.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/stencil_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/stencil_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/stencil_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/qap/CMakeFiles/stencil_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stencil_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
