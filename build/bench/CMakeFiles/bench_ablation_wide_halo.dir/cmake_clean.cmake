file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wide_halo.dir/bench_ablation_wide_halo.cpp.o"
  "CMakeFiles/bench_ablation_wide_halo.dir/bench_ablation_wide_halo.cpp.o.d"
  "bench_ablation_wide_halo"
  "bench_ablation_wide_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wide_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
