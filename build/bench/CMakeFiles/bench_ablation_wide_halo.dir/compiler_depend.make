# Empty compiler generated dependencies file for bench_ablation_wide_halo.
# This may be replaced when dependencies are built.
