# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_resource[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_vgpu[1]_include.cmake")
include("/root/repo/build/tests/test_simpi[1]_include.cmake")
include("/root/repo/build/tests/test_qap[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_exchange[1]_include.cmake")
include("/root/repo/build/tests/test_distributed_domain[1]_include.cmake")
include("/root/repo/build/tests/test_local_domain[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_boundary[1]_include.cmake")
include("/root/repo/build/tests/test_radius[1]_include.cmake")
include("/root/repo/build/tests/test_packmode[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_substrate_edge[1]_include.cmake")
include("/root/repo/build/tests/test_exchange_archetypes[1]_include.cmake")
include("/root/repo/build/tests/test_selective[1]_include.cmake")
include("/root/repo/build/tests/test_dim3[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
