file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_domain.dir/test_distributed_domain.cpp.o"
  "CMakeFiles/test_distributed_domain.dir/test_distributed_domain.cpp.o.d"
  "test_distributed_domain"
  "test_distributed_domain.pdb"
  "test_distributed_domain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
