# Empty compiler generated dependencies file for test_simpi.
# This may be replaced when dependencies are built.
