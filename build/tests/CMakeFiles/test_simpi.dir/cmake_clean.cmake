file(REMOVE_RECURSE
  "CMakeFiles/test_simpi.dir/test_simpi.cpp.o"
  "CMakeFiles/test_simpi.dir/test_simpi.cpp.o.d"
  "test_simpi"
  "test_simpi.pdb"
  "test_simpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
