file(REMOVE_RECURSE
  "CMakeFiles/test_substrate_edge.dir/test_substrate_edge.cpp.o"
  "CMakeFiles/test_substrate_edge.dir/test_substrate_edge.cpp.o.d"
  "test_substrate_edge"
  "test_substrate_edge.pdb"
  "test_substrate_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_substrate_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
