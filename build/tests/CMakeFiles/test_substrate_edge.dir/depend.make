# Empty dependencies file for test_substrate_edge.
# This may be replaced when dependencies are built.
