file(REMOVE_RECURSE
  "CMakeFiles/test_dim3.dir/test_dim3.cpp.o"
  "CMakeFiles/test_dim3.dir/test_dim3.cpp.o.d"
  "test_dim3"
  "test_dim3.pdb"
  "test_dim3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dim3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
