# Empty compiler generated dependencies file for test_dim3.
# This may be replaced when dependencies are built.
