file(REMOVE_RECURSE
  "CMakeFiles/test_packmode.dir/test_packmode.cpp.o"
  "CMakeFiles/test_packmode.dir/test_packmode.cpp.o.d"
  "test_packmode"
  "test_packmode.pdb"
  "test_packmode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
