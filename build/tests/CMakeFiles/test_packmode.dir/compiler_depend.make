# Empty compiler generated dependencies file for test_packmode.
# This may be replaced when dependencies are built.
