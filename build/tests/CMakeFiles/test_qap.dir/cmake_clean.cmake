file(REMOVE_RECURSE
  "CMakeFiles/test_qap.dir/test_qap.cpp.o"
  "CMakeFiles/test_qap.dir/test_qap.cpp.o.d"
  "test_qap"
  "test_qap.pdb"
  "test_qap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
