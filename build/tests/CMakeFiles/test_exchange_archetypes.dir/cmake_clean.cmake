file(REMOVE_RECURSE
  "CMakeFiles/test_exchange_archetypes.dir/test_exchange_archetypes.cpp.o"
  "CMakeFiles/test_exchange_archetypes.dir/test_exchange_archetypes.cpp.o.d"
  "test_exchange_archetypes"
  "test_exchange_archetypes.pdb"
  "test_exchange_archetypes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exchange_archetypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
