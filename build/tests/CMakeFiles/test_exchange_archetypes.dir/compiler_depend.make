# Empty compiler generated dependencies file for test_exchange_archetypes.
# This may be replaced when dependencies are built.
