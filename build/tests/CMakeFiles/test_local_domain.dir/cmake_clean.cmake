file(REMOVE_RECURSE
  "CMakeFiles/test_local_domain.dir/test_local_domain.cpp.o"
  "CMakeFiles/test_local_domain.dir/test_local_domain.cpp.o.d"
  "test_local_domain"
  "test_local_domain.pdb"
  "test_local_domain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
