# Empty dependencies file for test_radius.
# This may be replaced when dependencies are built.
