file(REMOVE_RECURSE
  "CMakeFiles/test_radius.dir/test_radius.cpp.o"
  "CMakeFiles/test_radius.dir/test_radius.cpp.o.d"
  "test_radius"
  "test_radius.pdb"
  "test_radius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
