file(REMOVE_RECURSE
  "CMakeFiles/stencil_cli.dir/common_cli.cpp.o"
  "CMakeFiles/stencil_cli.dir/common_cli.cpp.o.d"
  "libstencil_cli.a"
  "libstencil_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
