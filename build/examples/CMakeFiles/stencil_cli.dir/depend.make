# Empty dependencies file for stencil_cli.
# This may be replaced when dependencies are built.
