file(REMOVE_RECURSE
  "libstencil_cli.a"
)
