# Empty compiler generated dependencies file for plan_report.
# This may be replaced when dependencies are built.
