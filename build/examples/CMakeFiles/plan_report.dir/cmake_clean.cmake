file(REMOVE_RECURSE
  "CMakeFiles/plan_report.dir/plan_report.cpp.o"
  "CMakeFiles/plan_report.dir/plan_report.cpp.o.d"
  "plan_report"
  "plan_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
