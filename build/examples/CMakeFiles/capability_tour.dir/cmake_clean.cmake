file(REMOVE_RECURSE
  "CMakeFiles/capability_tour.dir/capability_tour.cpp.o"
  "CMakeFiles/capability_tour.dir/capability_tour.cpp.o.d"
  "capability_tour"
  "capability_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
