# Empty dependencies file for capability_tour.
# This may be replaced when dependencies are built.
