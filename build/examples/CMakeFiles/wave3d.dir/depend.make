# Empty dependencies file for wave3d.
# This may be replaced when dependencies are built.
