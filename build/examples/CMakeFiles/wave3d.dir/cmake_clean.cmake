file(REMOVE_RECURSE
  "CMakeFiles/wave3d.dir/wave3d.cpp.o"
  "CMakeFiles/wave3d.dir/wave3d.cpp.o.d"
  "wave3d"
  "wave3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
