# Empty compiler generated dependencies file for overlap_jacobi.
# This may be replaced when dependencies are built.
