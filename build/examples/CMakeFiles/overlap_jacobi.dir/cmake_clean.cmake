file(REMOVE_RECURSE
  "CMakeFiles/overlap_jacobi.dir/overlap_jacobi.cpp.o"
  "CMakeFiles/overlap_jacobi.dir/overlap_jacobi.cpp.o.d"
  "overlap_jacobi"
  "overlap_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
