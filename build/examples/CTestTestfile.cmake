# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat3d "/root/repo/build/examples/heat3d")
set_tests_properties(example_heat3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wave3d "/root/repo/build/examples/wave3d")
set_tests_properties(example_wave3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capability_tour "/root/repo/build/examples/capability_tour")
set_tests_properties(example_capability_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overlap_jacobi "/root/repo/build/examples/overlap_jacobi")
set_tests_properties(example_overlap_jacobi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explorer_cli "/root/repo/build/examples/exchange_explorer" "--nodes" "2" "--rpn" "2" "--domain" "256" "--methods" "all" "--iters" "1" "--csv")
set_tests_properties(example_explorer_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explorer_bad_flag "/root/repo/build/examples/exchange_explorer" "--bogus")
set_tests_properties(example_explorer_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plan_report "/root/repo/build/examples/plan_report" "--domain" "1440,1452,700" "--nodes" "2" "--rpn" "6")
set_tests_properties(example_plan_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
