file(REMOVE_RECURSE
  "CMakeFiles/stencil_simtime.dir/engine.cpp.o"
  "CMakeFiles/stencil_simtime.dir/engine.cpp.o.d"
  "CMakeFiles/stencil_simtime.dir/time.cpp.o"
  "CMakeFiles/stencil_simtime.dir/time.cpp.o.d"
  "libstencil_simtime.a"
  "libstencil_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
