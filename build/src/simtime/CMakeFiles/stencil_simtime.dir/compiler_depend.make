# Empty compiler generated dependencies file for stencil_simtime.
# This may be replaced when dependencies are built.
