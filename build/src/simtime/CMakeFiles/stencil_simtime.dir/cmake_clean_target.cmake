file(REMOVE_RECURSE
  "libstencil_simtime.a"
)
