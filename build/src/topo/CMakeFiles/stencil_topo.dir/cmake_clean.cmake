file(REMOVE_RECURSE
  "CMakeFiles/stencil_topo.dir/archetype.cpp.o"
  "CMakeFiles/stencil_topo.dir/archetype.cpp.o.d"
  "CMakeFiles/stencil_topo.dir/machine.cpp.o"
  "CMakeFiles/stencil_topo.dir/machine.cpp.o.d"
  "libstencil_topo.a"
  "libstencil_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
