# Empty compiler generated dependencies file for stencil_topo.
# This may be replaced when dependencies are built.
