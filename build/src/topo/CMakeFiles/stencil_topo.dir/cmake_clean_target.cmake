file(REMOVE_RECURSE
  "libstencil_topo.a"
)
