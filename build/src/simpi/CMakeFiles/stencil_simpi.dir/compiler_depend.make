# Empty compiler generated dependencies file for stencil_simpi.
# This may be replaced when dependencies are built.
