file(REMOVE_RECURSE
  "CMakeFiles/stencil_simpi.dir/mpi.cpp.o"
  "CMakeFiles/stencil_simpi.dir/mpi.cpp.o.d"
  "libstencil_simpi.a"
  "libstencil_simpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_simpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
