file(REMOVE_RECURSE
  "libstencil_simpi.a"
)
