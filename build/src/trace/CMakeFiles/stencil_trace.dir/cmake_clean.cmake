file(REMOVE_RECURSE
  "CMakeFiles/stencil_trace.dir/recorder.cpp.o"
  "CMakeFiles/stencil_trace.dir/recorder.cpp.o.d"
  "libstencil_trace.a"
  "libstencil_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
