file(REMOVE_RECURSE
  "libstencil_trace.a"
)
