# Empty dependencies file for stencil_trace.
# This may be replaced when dependencies are built.
