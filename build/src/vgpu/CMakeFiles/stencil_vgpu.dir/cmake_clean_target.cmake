file(REMOVE_RECURSE
  "libstencil_vgpu.a"
)
