# Empty dependencies file for stencil_vgpu.
# This may be replaced when dependencies are built.
