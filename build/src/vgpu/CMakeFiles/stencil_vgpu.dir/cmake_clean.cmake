file(REMOVE_RECURSE
  "CMakeFiles/stencil_vgpu.dir/probe.cpp.o"
  "CMakeFiles/stencil_vgpu.dir/probe.cpp.o.d"
  "CMakeFiles/stencil_vgpu.dir/runtime.cpp.o"
  "CMakeFiles/stencil_vgpu.dir/runtime.cpp.o.d"
  "libstencil_vgpu.a"
  "libstencil_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
