file(REMOVE_RECURSE
  "CMakeFiles/stencil_core.dir/cluster.cpp.o"
  "CMakeFiles/stencil_core.dir/cluster.cpp.o.d"
  "CMakeFiles/stencil_core.dir/distributed_domain.cpp.o"
  "CMakeFiles/stencil_core.dir/distributed_domain.cpp.o.d"
  "CMakeFiles/stencil_core.dir/exchange.cpp.o"
  "CMakeFiles/stencil_core.dir/exchange.cpp.o.d"
  "CMakeFiles/stencil_core.dir/local_domain.cpp.o"
  "CMakeFiles/stencil_core.dir/local_domain.cpp.o.d"
  "CMakeFiles/stencil_core.dir/partition.cpp.o"
  "CMakeFiles/stencil_core.dir/partition.cpp.o.d"
  "CMakeFiles/stencil_core.dir/placement.cpp.o"
  "CMakeFiles/stencil_core.dir/placement.cpp.o.d"
  "libstencil_core.a"
  "libstencil_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
