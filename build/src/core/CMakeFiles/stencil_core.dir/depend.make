# Empty dependencies file for stencil_core.
# This may be replaced when dependencies are built.
