
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/stencil_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/stencil_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/distributed_domain.cpp" "src/core/CMakeFiles/stencil_core.dir/distributed_domain.cpp.o" "gcc" "src/core/CMakeFiles/stencil_core.dir/distributed_domain.cpp.o.d"
  "/root/repo/src/core/exchange.cpp" "src/core/CMakeFiles/stencil_core.dir/exchange.cpp.o" "gcc" "src/core/CMakeFiles/stencil_core.dir/exchange.cpp.o.d"
  "/root/repo/src/core/local_domain.cpp" "src/core/CMakeFiles/stencil_core.dir/local_domain.cpp.o" "gcc" "src/core/CMakeFiles/stencil_core.dir/local_domain.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/stencil_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/stencil_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/stencil_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/stencil_core.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simtime/CMakeFiles/stencil_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/stencil_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/stencil_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/stencil_simpi.dir/DependInfo.cmake"
  "/root/repo/build/src/qap/CMakeFiles/stencil_qap.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/stencil_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
