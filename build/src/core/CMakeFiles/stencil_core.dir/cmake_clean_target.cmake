file(REMOVE_RECURSE
  "libstencil_core.a"
)
