# Empty dependencies file for stencil_qap.
# This may be replaced when dependencies are built.
