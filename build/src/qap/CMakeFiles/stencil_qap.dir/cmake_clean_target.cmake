file(REMOVE_RECURSE
  "libstencil_qap.a"
)
