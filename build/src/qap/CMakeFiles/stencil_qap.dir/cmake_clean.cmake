file(REMOVE_RECURSE
  "CMakeFiles/stencil_qap.dir/qap.cpp.o"
  "CMakeFiles/stencil_qap.dir/qap.cpp.o.d"
  "libstencil_qap.a"
  "libstencil_qap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_qap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
