// Reproduces Fig. 12a: single-node exchange time as communication
// capabilities are enabled one by one, for 1, 2, and 6 ranks per node,
// with and without CUDA-aware MPI.
//
// Paper headline numbers at 6 ranks: full specialization is ~6x faster
// than STAGED-only and ~2x faster than CUDA-aware MPI.
#include <cstdio>

#include "common.h"

using namespace stencil::bench;

int main(int argc, char** argv) {
  // bench_specialization [--json[=PATH]]
  std::string json_path;
  BenchJson json("specialization");
  const bool emit_json = parse_json_flag(argc, argv, "specialization", &json_path);

  const stencil::Dim3 domain = weak_scaling_domain(6);  // 1364^3: ~750^3 per GPU
  std::printf("Fig. 12a reproduction: single-node communication specialization\n");
  std::printf("domain %s, radius 3, 4 SP quantities, exchange time (max over ranks)\n\n",
              domain.str().c_str());

  double staged_6r = 0.0;
  double ca_6r = 0.0;
  double best_6r = 0.0;

  for (const bool cuda_aware : {false, true}) {
    for (const int rpn : {1, 2, 6}) {
      ExchangeConfig cfg;
      cfg.nodes = 1;
      cfg.ranks_per_node = rpn;
      cfg.domain = domain;
      std::vector<std::pair<std::string, double>> cells;
      for (const auto& [name, flags] : capability_tiers(cuda_aware)) {
        cfg.flags = flags;
        const MeasureResult r = measure_exchange(cfg);
        const double ms = r.max_avg_ms;
        cells.emplace_back(name, ms);
        if (emit_json) json.add(cfg.label(), name, cfg, r);
        if (rpn == 6 && !cuda_aware && name == "+remote") staged_6r = ms;
        if (rpn == 6 && cuda_aware && name == "+remote") ca_6r = ms;
        if (rpn == 6 && !cuda_aware && name == "+kernel") best_6r = ms;
      }
      print_row(cfg.label(), cells);
    }
    std::printf("\n");
  }

  std::printf("headline ratios (paper: ~6x over STAGED, ~2x over CUDA-aware at 6 ranks):\n");
  std::printf("  specialization vs STAGED-only:    %.2fx\n", staged_6r / best_6r);
  std::printf("  specialization vs CUDA-aware MPI: %.2fx\n", ca_6r / best_6r);
  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_specialization: %s\n", err.c_str());
      return 1;
    }
    std::printf("%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
