// Reproduces Fig. 9: the timeline of overlapped exchange operations for a
// 512^3-per-GPU subdomain with four SP quantities, one node, two MPI ranks
// each driving two GPUs. Emits an ASCII Gantt chart (one lane per
// CPU/GPU/link resource), a CSV with every operation span, an enriched
// chrome trace (counters + critical-path span args), a JSON telemetry
// report, and — new with the dtrace layer — the merged global causal trace
// (one process per rank, flow arrows along every message/IPC handshake;
// DESIGN.md §12). The recording runs under one dtrace::Collector across
// both the eager exchange and the planned (persistent) replay, so the
// global trace shows the replay's message contexts too.
//
//   bench_timeline [--trace-out FILE] [--trace-merge PREFIX]
//
// The merged trace defaults to bench_timeline_global.json (CI uploads it).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common.h"
#include "common_cli.h"
#include "dtrace/collector.h"
#include "telemetry/telemetry.h"

using namespace stencil::bench;
namespace cli = stencil::cli;
namespace dtrace = stencil::dtrace;
namespace sim = stencil::sim;
namespace telemetry = stencil::telemetry;

int main(int argc, char** argv) {
  cli::TraceOptions topt;
  for (int i = 1; i < argc; ++i) {
    std::string err;
    if (cli::parse_trace_flag(argc, argv, &i, &topt, &err)) {
      if (!err.empty()) {
        std::fprintf(stderr, "bench_timeline: %s\n", err.c_str());
        return 2;
      }
      continue;
    }
    if (std::string(argv[i]) == "--help") {
      std::printf("usage: bench_timeline [options]\n");
      cli::print_trace_usage();
      return 0;
    }
    std::fprintf(stderr, "bench_timeline: unknown flag '%s' (try --help)\n", argv[i]);
    return 2;
  }
  if (topt.out.empty()) topt.out = "bench_timeline_global.json";

  // A Summit-flavored node with 2 GPUs per socket so that 2 ranks x 2 GPUs
  // matches the paper's Fig. 9 setup (4 GPUs total).
  stencil::topo::NodeArchetype arch = stencil::topo::summit();
  arch.gpus_per_socket = 2;

  stencil::Cluster cluster(arch, /*nodes=*/1, /*ranks_per_node=*/2);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  dtrace::Collector rec;  // causal: one global timeline, eager + planned
  telemetry::Telemetry tel;
  cluster.set_telemetry(&tel);
  telemetry::MetricsRegistry merged;  // substrate + both ranks' domains
  sim::Time eager0 = 0, eager1 = 0, plan0 = 0, plan1 = 0;

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, weak_scaling_domain(4, 512));  // ~512^3 per GPU
    dd.set_radius(3);
    for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(stencil::MethodFlags::kAll);
    dd.realize();

    // Warm up (setup effects out), then record exactly one eager exchange.
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    if (ctx.rank() == 0) {
      cluster.set_collector(&rec);
      eager0 = ctx.engine().now();
    }
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    if (ctx.rank() == 0) {
      cluster.set_recorder(nullptr);
      eager1 = ctx.engine().now();
    }

    // Planned lane: compile the exchange plan (unrecorded), then record one
    // replay. In the trace the per-op "issue" spans of the eager exchange
    // collapse into a handful of "graph launch" spans.
    ctx.comm.barrier();
    dd.set_persistent(true);
    dd.exchange();  // compiles the plan
    ctx.comm.barrier();
    if (ctx.rank() == 0) {
      cluster.set_collector(&rec);
      plan0 = ctx.engine().now();
    }
    ctx.comm.barrier();
    dd.exchange();  // planned replay
    ctx.comm.barrier();
    if (ctx.rank() == 0) {
      cluster.set_recorder(nullptr);
      plan1 = ctx.engine().now();
    }

    merged.merge(dd.telemetry().metrics());
  });
  merged.merge(tel.metrics());

  std::printf("Fig. 9 reproduction: one overlapped exchange, 1 node / 2 ranks / 4 GPUs,\n");
  std::printf("~512^3 points per GPU, radius 3, 4 SP quantities.\n");
  std::printf("Recorded twice: eager, then a planned (persistent) replay.\n\n");
  rec.write_gantt(std::cout, eager0, eager1, 110);
  std::printf("\n(planned replay)\n");
  rec.write_gantt(std::cout, plan0, plan1, 110);

  // Critical-path analysis over both recorded exchanges — which spans gate
  // the makespan, how much was overlapped, and (via the message edges) where
  // the chain crosses ranks. The shadow-memory checker stays off here: at
  // 512^3 per GPU its per-byte-range history dwarfs the trace itself.
  telemetry::CriticalPath cp(rec.records());
  const std::size_t msg_edges = cp.add_flow_edges(rec.flows());
  const telemetry::Analysis an = cp.analyze();
  std::printf("\ncritical path of the recorded exchanges (%zu spans, %zu message edges):\n",
              rec.records().size(), msg_edges);
  std::printf("%s", an.str(5).c_str());

  std::ofstream csv("bench_timeline.csv");
  rec.write_csv(csv);
  std::ofstream json("bench_timeline.json");
  telemetry::write_chrome_trace(json, rec.records(), &merged, &an);
  std::ofstream report("bench_timeline_report.json");
  telemetry::write_report_json(report, merged, an);

  std::string err;
  if (!cli::write_trace_outputs(rec, topt, &err)) {
    std::fprintf(stderr, "bench_timeline: %s\n", err.c_str());
    return 1;
  }
  std::printf("\n%zu operation spans written to bench_timeline.csv and "
              "bench_timeline.json (chrome://tracing);\n"
              "telemetry + critical-path report in bench_timeline_report.json;\n"
              "merged global causal trace in %s (open in Perfetto)\n",
              rec.records().size(), topt.out.c_str());
  return 0;
}
