// Reproduces Fig. 9: the timeline of overlapped exchange operations for a
// 512^3-per-GPU subdomain with four SP quantities, one node, two MPI ranks
// each driving two GPUs. Emits an ASCII Gantt chart (one lane per
// CPU/GPU/link resource) and a CSV with every operation span.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common.h"
#include "trace/recorder.h"

using namespace stencil::bench;

int main() {
  // A Summit-flavored node with 2 GPUs per socket so that 2 ranks x 2 GPUs
  // matches the paper's Fig. 9 setup (4 GPUs total).
  stencil::topo::NodeArchetype arch = stencil::topo::summit();
  arch.gpus_per_socket = 2;

  stencil::Cluster cluster(arch, /*nodes=*/1, /*ranks_per_node=*/2);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  stencil::trace::Recorder rec;

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, weak_scaling_domain(4, 512));  // ~512^3 per GPU
    dd.set_radius(3);
    for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(stencil::MethodFlags::kAll);
    dd.realize();

    // Warm up (setup effects out), then record exactly one eager exchange.
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(&rec);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(nullptr);

    // Planned lane: compile the exchange plan (unrecorded), then record one
    // replay. In the trace the per-op "issue" spans of the eager exchange
    // collapse into a handful of "graph launch" spans.
    ctx.comm.barrier();
    dd.set_persistent(true);
    dd.exchange();  // compiles the plan
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(&rec);
    ctx.comm.barrier();
    dd.exchange();  // planned replay
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(nullptr);
  });

  std::printf("Fig. 9 reproduction: one overlapped exchange, 1 node / 2 ranks / 4 GPUs,\n");
  std::printf("~512^3 points per GPU, radius 3, 4 SP quantities.\n");
  std::printf("Recorded twice: eager, then a planned (persistent) replay.\n\n");
  rec.write_gantt(std::cout, 0, 0, 110);

  std::ofstream csv("bench_timeline.csv");
  rec.write_csv(csv);
  std::ofstream json("bench_timeline.json");
  rec.write_chrome_trace(json);
  std::printf("\n%zu operation spans written to bench_timeline.csv and "
              "bench_timeline.json (chrome://tracing)\n",
              rec.records().size());
  return 0;
}
