// Reproduces Fig. 9: the timeline of overlapped exchange operations for a
// 512^3-per-GPU subdomain with four SP quantities, one node, two MPI ranks
// each driving two GPUs. Emits an ASCII Gantt chart (one lane per
// CPU/GPU/link resource), a CSV with every operation span, an enriched
// chrome trace (counters + critical-path span args), and a JSON telemetry
// report with the critical-chain / overlap-efficiency analysis of the
// recorded eager exchange (the paper's Fig. 9/10 reading, DESIGN.md §11).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common.h"
#include "telemetry/telemetry.h"
#include "trace/recorder.h"

using namespace stencil::bench;
namespace telemetry = stencil::telemetry;

int main() {
  // A Summit-flavored node with 2 GPUs per socket so that 2 ranks x 2 GPUs
  // matches the paper's Fig. 9 setup (4 GPUs total).
  stencil::topo::NodeArchetype arch = stencil::topo::summit();
  arch.gpus_per_socket = 2;

  stencil::Cluster cluster(arch, /*nodes=*/1, /*ranks_per_node=*/2);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  stencil::trace::Recorder rec;
  stencil::trace::Recorder rec_planned;
  telemetry::Telemetry tel;
  cluster.set_telemetry(&tel);
  telemetry::MetricsRegistry merged;  // substrate + both ranks' domains

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, weak_scaling_domain(4, 512));  // ~512^3 per GPU
    dd.set_radius(3);
    for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(stencil::MethodFlags::kAll);
    dd.realize();

    // Warm up (setup effects out), then record exactly one eager exchange.
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(&rec);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(nullptr);

    // Planned lane: compile the exchange plan (unrecorded), then record one
    // replay. In the trace the per-op "issue" spans of the eager exchange
    // collapse into a handful of "graph launch" spans.
    ctx.comm.barrier();
    dd.set_persistent(true);
    dd.exchange();  // compiles the plan
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(&rec_planned);
    ctx.comm.barrier();
    dd.exchange();  // planned replay
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(nullptr);

    merged.merge(dd.telemetry().metrics());
  });
  merged.merge(tel.metrics());

  std::printf("Fig. 9 reproduction: one overlapped exchange, 1 node / 2 ranks / 4 GPUs,\n");
  std::printf("~512^3 points per GPU, radius 3, 4 SP quantities.\n");
  std::printf("Recorded twice: eager, then a planned (persistent) replay.\n\n");
  rec.write_gantt(std::cout, 0, 0, 110);
  std::printf("\n(planned replay)\n");
  rec_planned.write_gantt(std::cout, 0, 0, 110);

  // Critical-path analysis of the eager exchange — which spans gate the
  // makespan, and how much of it was overlapped (Fig. 9's question,
  // answered mechanically). The shadow-memory checker stays off here: at
  // 512^3 per GPU its per-byte-range history dwarfs the trace itself.
  telemetry::CriticalPath cp(rec.records());
  const telemetry::Analysis an = cp.analyze();
  std::printf("\ncritical path of the eager exchange (%zu spans):\n", rec.records().size());
  std::printf("%s", an.str(5).c_str());

  std::ofstream csv("bench_timeline.csv");
  rec.write_csv(csv);
  std::ofstream json("bench_timeline.json");
  telemetry::write_chrome_trace(json, rec.records(), &merged, &an);
  std::ofstream report("bench_timeline_report.json");
  telemetry::write_report_json(report, merged, an);
  std::printf("\n%zu operation spans written to bench_timeline.csv and "
              "bench_timeline.json (chrome://tracing);\n"
              "telemetry + critical-path report in bench_timeline_report.json\n",
              rec.records().size());
  return 0;
}
