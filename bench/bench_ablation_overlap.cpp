// Ablation: computation/communication overlap (split-phase exchange).
// The paper lists overlap support as an incorporated technique; this
// quantifies it: per time step, exchange_start / interior-compute /
// exchange_finish vs a sequential exchange-then-compute step, across
// compute intensities (bytes each Jacobi-like sweep moves per GPU).
#include <cstdio>

#include "common.h"

using namespace stencil::bench;

namespace {

double step_ms(int nodes, std::uint64_t compute_bytes, bool overlapped) {
  stencil::Cluster cluster(stencil::topo::summit(), nodes, 6);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  std::vector<double> t(static_cast<std::size_t>(nodes) * 6, 0.0);
  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, weak_scaling_domain(nodes * 6));
    dd.set_radius(3);
    for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(stencil::MethodFlags::kAll);
    dd.realize();
    ctx.comm.barrier();
    const double t0 = ctx.comm.wtime();
    for (int step = 0; step < 3; ++step) {
      if (overlapped) {
        dd.exchange_start();
        dd.for_each_subdomain(
            [&](stencil::LocalDomain& ld) { dd.launch_compute(ld, "interior", compute_bytes, {}); });
        dd.exchange_finish();
      } else {
        dd.exchange();
        dd.for_each_subdomain(
            [&](stencil::LocalDomain& ld) { dd.launch_compute(ld, "interior", compute_bytes, {}); });
      }
      dd.compute_synchronize();
    }
    ctx.comm.barrier();
    t[static_cast<std::size_t>(ctx.rank())] = (ctx.comm.wtime() - t0) / 3.0;
  });
  double worst = 0.0;
  for (double v : t) worst = std::max(worst, v);
  return worst * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("ablation_overlap");
  const bool emit_json = parse_json_flag(argc, argv, "ablation_overlap", &json_path);

  std::printf("Ablation: computation/communication overlap (2 nodes, 6r/6g, radius 3)\n");
  std::printf("per-step time; compute modeled as bytes swept through device memory per GPU\n\n");
  std::printf("%-16s %-14s %-14s %-10s\n", "compute/GPU", "sequential", "overlapped", "saving");
  for (const std::uint64_t mib : {256ull, 1024ull, 4096ull, 16384ull}) {
    const std::uint64_t bytes = mib << 20;
    const double seq = step_ms(2, bytes, false);
    const double ovl = step_ms(2, bytes, true);
    std::printf("%6llu MiB       %9.3f ms   %9.3f ms   %5.1f%%\n",
                static_cast<unsigned long long>(mib), seq, ovl, 100.0 * (seq - ovl) / seq);
    if (emit_json) {
      ExchangeConfig cfg;
      cfg.nodes = 2;
      cfg.ranks_per_node = 6;
      cfg.domain = weak_scaling_domain(12);
      const std::string label = std::to_string(mib) + "MiB_compute";
      json.add(label, "sequential", cfg, scalar_result(seq));
      json.add(label, "overlapped", cfg, scalar_result(ovl));
    }
  }
  std::printf("\n(saving approaches the smaller of exchange and compute time as they\n"
              " fully hide one another)\n");

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_ablation_overlap: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
