// Reproduces Fig. 11 and §IV-B: the effect of node-aware data placement.
//
// The 1440x1452x700 domain on one 6-GPU node yields 720x484x700 subdomains
// (near the worst-case 3/2 aspect ratio a 6-way split produces), so
// exchange volumes differ per direction and placement matters: the paper
// reports ~20% speedup for node-aware placement over a poor placement.
// On a cube domain all exchanges are alike and placement has no effect.
#include <cstdio>
#include <fstream>

#include "common.h"
#include "explain/explain.h"

using namespace stencil::bench;
using stencil::Dim3;
using stencil::PlacementStrategy;

namespace {

// When --json is on, every measured run also records its decision
// provenance here, exported as EXPLAIN_placement.json next to the bench
// document (tools/bench_compare.py diffs it when a row regresses).
stencil::explain::Ledger* g_ledger = nullptr;

ExchangeConfig make_cfg(Dim3 domain, PlacementStrategy strategy) {
  ExchangeConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 6;
  cfg.domain = domain;
  cfg.flags = stencil::MethodFlags::kAll;
  cfg.strategy = strategy;
  cfg.explain = g_ledger;
  return cfg;
}

/// BENCH_<x>.json -> sibling EXPLAIN_<x>.json (EXPLAIN_placement.json when
/// the bench path does not follow the BENCH_ convention).
std::string explain_path_for(const std::string& bench_path) {
  const auto slash = bench_path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "" : bench_path.substr(0, slash + 1);
  std::string base = slash == std::string::npos ? bench_path : bench_path.substr(slash + 1);
  if (base.rfind("BENCH_", 0) == 0) {
    base = "EXPLAIN_" + base.substr(6);
  } else {
    base = "EXPLAIN_placement.json";
  }
  return dir + base;
}

double run(Dim3 domain, PlacementStrategy strategy) {
  return measure_exchange_ms(make_cfg(domain, strategy));
}

void report(const char* what, const char* key, Dim3 domain, BenchJson* json) {
  const double aware = run(domain, PlacementStrategy::kNodeAware);
  const double measured = run(domain, PlacementStrategy::kMeasured);
  const double trivial = run(domain, PlacementStrategy::kTrivial);
  const double worst = run(domain, PlacementStrategy::kWorst);
  std::printf("%-28s node-aware=%8.3f ms  measured=%8.3f ms  trivial=%8.3f ms  worst=%8.3f ms\n",
              what, aware, measured, trivial, worst);
  std::printf("%-28s speedup vs trivial: %.3fx, vs worst: %.3fx\n", "", trivial / aware,
              worst / aware);
  if (json != nullptr) {
    json->add(key, "node-aware", make_cfg(domain, PlacementStrategy::kNodeAware),
              scalar_result(aware));
    json->add(key, "measured", make_cfg(domain, PlacementStrategy::kMeasured),
              scalar_result(measured));
    json->add(key, "trivial", make_cfg(domain, PlacementStrategy::kTrivial),
              scalar_result(trivial));
    json->add(key, "worst", make_cfg(domain, PlacementStrategy::kWorst), scalar_result(worst));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("placement");
  const bool emit_json = parse_json_flag(argc, argv, "placement", &json_path);
  BenchJson* jp = emit_json ? &json : nullptr;
  stencil::explain::Ledger ledger(4096);
  if (emit_json) g_ledger = &ledger;
  std::printf("Fig. 11 reproduction: node-aware data placement (1 node, 6 ranks, 6 GPUs)\n");
  std::printf("radius 3, 4 SP quantities; paper reports ~20%% speedup on the skewed domain\n\n");

  report("1440x1452x700 (Fig. 11):", "fig11_skewed", {1440, 1452, 700}, jp);
  std::printf("\n");
  report("1364^3 cube (control):", "cube_control", {1364, 1364, 1364}, jp);
  std::printf("\n(control: near-cubical subdomains make all exchanges alike, so placement\n"
              " has little effect — §IV-B)\n");

  // The planning-level view: QAP cost per strategy for the Fig. 11 domain.
  std::printf("\nQAP objective (flow x distance, arbitrary units), Fig. 11 domain:\n");
  stencil::HierarchicalPartition hp({1440, 1452, 700}, 1, 6);
  for (auto s : {PlacementStrategy::kNodeAware, PlacementStrategy::kTrivial,
                 PlacementStrategy::kWorst}) {
    stencil::Placement p(hp, stencil::topo::summit(), 3, 16, stencil::Neighborhood::kFull, s);
    std::printf("  %-12s %.4f\n", to_string(s), p.total_cost());
    if (emit_json) {
      json.add("fig11_qap_cost", to_string(s), make_cfg({1440, 1452, 700}, s),
               scalar_result(p.total_cost()));
    }
  }

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_placement: %s\n", err.c_str());
      return 1;
    }
    std::printf("\nwrote %zu rows to %s\n", json.rows(), json_path.c_str());

    const std::string epath = explain_path_for(json_path);
    std::ofstream eos(epath);
    if (!eos) {
      std::fprintf(stderr, "bench_placement: cannot open %s\n", epath.c_str());
      return 1;
    }
    ledger.write_json(eos, "placement");
    std::printf("wrote %llu decision(s) to %s\n",
                static_cast<unsigned long long>(ledger.total_recorded()), epath.c_str());
  }
  return 0;
}
