#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

namespace stencil::bench {

/// One measured configuration, labeled the paper's way:
/// "Xn/Xr/Xg/NNNN[/ca]" plus the enabled-method suffix (+remote/+colo/...).
struct ExchangeConfig {
  topo::NodeArchetype arch = topo::summit();
  int nodes = 1;
  int ranks_per_node = 1;
  Dim3 domain{0, 0, 0};
  int radius = 3;      // the paper's surveyed "typical stencil radius" (§I)
  int quantities = 4;  // four SP quantities, as in §IV
  MethodFlags flags = MethodFlags::kAll;
  PlacementStrategy strategy = PlacementStrategy::kNodeAware;
  Neighborhood nbhd = Neighborhood::kFull;
  int iterations = 3;
  // Planned (persistent) exchanges: the untimed warm-up compiles the plan,
  // so the timed iterations measure pure replay.
  bool persistent = false;

  int gpus_per_node() const { return arch.gpus_per_node(); }
  int total_gpus() const { return nodes * gpus_per_node(); }

  std::string label() const {
    std::string s = std::to_string(nodes) + "n/" + std::to_string(ranks_per_node) + "r/" +
                    std::to_string(gpus_per_node()) + "g/" + std::to_string(domain.x);
    if (any(flags & MethodFlags::kCudaAwareMpi)) s += "/ca";
    return s;
  }
};

/// The paper's cumulative capability tiers for one remote method.
inline std::vector<std::pair<std::string, MethodFlags>> capability_tiers(bool cuda_aware) {
  const MethodFlags remote = cuda_aware ? MethodFlags::kCudaAwareMpi : MethodFlags::kStaged;
  return {
      {"+remote", remote},
      {"+colo", remote | MethodFlags::kColocated},
      {"+peer", remote | MethodFlags::kColocated | MethodFlags::kPeer},
      {"+kernel", remote | MethodFlags::kColocated | MethodFlags::kPeer | MethodFlags::kKernel},
  };
}

/// The weak-scaling domain rule from §IV-D: closest cube to 750^3 points
/// per GPU, i.e. round(750 * nGPUs^(1/3))^3.
Dim3 weak_scaling_domain(int total_gpus, int per_gpu_edge = 750);

/// Run the exchange benchmark exactly as §IV-A measures it: per iteration,
/// MPI_Barrier, MPI_Wtime, exchange, MPI_Wtime; report the maximum per-rank
/// average across the job, in milliseconds of *virtual* time. Deterministic.
double measure_exchange_ms(const ExchangeConfig& cfg);

/// Printf helper: fixed-width table cell.
void print_row(const std::string& label, const std::vector<std::pair<std::string, double>>& cells);

}  // namespace stencil::bench
