#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

namespace stencil::bench {

/// One measured configuration, labeled the paper's way:
/// "Xn/Xr/Xg/NNNN[/ca]" plus the enabled-method suffix (+remote/+colo/...).
struct ExchangeConfig {
  topo::NodeArchetype arch = topo::summit();
  int nodes = 1;
  int ranks_per_node = 1;
  Dim3 domain{0, 0, 0};
  int radius = 3;      // the paper's surveyed "typical stencil radius" (§I)
  int quantities = 4;  // four SP quantities, as in §IV
  MethodFlags flags = MethodFlags::kAll;
  PlacementStrategy strategy = PlacementStrategy::kNodeAware;
  Neighborhood nbhd = Neighborhood::kFull;
  int iterations = 3;
  // Planned (persistent) exchanges: the untimed warm-up compiles the plan,
  // so the timed iterations measure pure replay.
  bool persistent = false;
  // When set, the run's partition/placement/specialization decisions land
  // in this ledger (stencil::explain) — benches export them next to the
  // bench-v1 document so bench_compare.py can diff the why with the what.
  explain::Ledger* explain = nullptr;

  int gpus_per_node() const { return arch.gpus_per_node(); }
  int total_gpus() const { return nodes * gpus_per_node(); }

  std::string label() const {
    std::string s = std::to_string(nodes) + "n/" + std::to_string(ranks_per_node) + "r/" +
                    std::to_string(gpus_per_node()) + "g/" + std::to_string(domain.x);
    if (any(flags & MethodFlags::kCudaAwareMpi)) s += "/ca";
    return s;
  }
};

/// The paper's cumulative capability tiers for one remote method.
inline std::vector<std::pair<std::string, MethodFlags>> capability_tiers(bool cuda_aware) {
  const MethodFlags remote = cuda_aware ? MethodFlags::kCudaAwareMpi : MethodFlags::kStaged;
  return {
      {"+remote", remote},
      {"+colo", remote | MethodFlags::kColocated},
      {"+peer", remote | MethodFlags::kColocated | MethodFlags::kPeer},
      {"+kernel", remote | MethodFlags::kColocated | MethodFlags::kPeer | MethodFlags::kKernel},
  };
}

/// The weak-scaling domain rule from §IV-D: closest cube to 750^3 points
/// per GPU, i.e. round(750 * nGPUs^(1/3))^3.
Dim3 weak_scaling_domain(int total_gpus, int per_gpu_edge = 750);

/// Everything one measurement yields beyond the headline number: the
/// per-iteration latencies (max across ranks per iteration), their median
/// and nearest-rank p95, and rank 0's realized per-method transfer/byte
/// histogram — the payload of the --json emitter.
struct MeasureResult {
  double max_avg_ms = 0.0;      // §IV-A headline: max over ranks of per-rank average
  std::vector<double> iter_ms;  // per timed iteration, max across ranks
  double median_ms = 0.0;
  double p95_ms = 0.0;
  std::map<Method, std::pair<int, std::size_t>> method_bytes;  // rank 0, realized
};

/// Latency reduction shared by the measurement loops: per_iter[it][rank] in
/// milliseconds of virtual time. Fills every latency field of MeasureResult
/// (method_bytes is the caller's). p95 is nearest-rank over iter_ms.
MeasureResult reduce_latency(const std::vector<std::vector<double>>& per_iter);

/// Wrap one scalar (a latency, a volume, a QAP cost, a bandwidth — not
/// necessarily milliseconds) as a single-iteration MeasureResult so the
/// analytic benches emit bench-v1 rows too; tools/bench_compare.py treats
/// every row's median uniformly, whatever the unit, so deterministic model
/// outputs (partition volumes, solver costs) regress like latencies do.
inline MeasureResult scalar_result(double v) {
  MeasureResult r;
  r.max_avg_ms = r.median_ms = r.p95_ms = v;
  r.iter_ms = {v};
  return r;
}

/// Run the exchange benchmark exactly as §IV-A measures it: per iteration,
/// MPI_Barrier, MPI_Wtime, exchange, MPI_Wtime; report the maximum per-rank
/// average across the job, in milliseconds of *virtual* time. Deterministic.
double measure_exchange_ms(const ExchangeConfig& cfg);

/// Full-fidelity variant: same measurement discipline, but keeps the
/// per-iteration latencies and the realized method histogram.
MeasureResult measure_exchange(const ExchangeConfig& cfg);

/// Accumulates (label, variant) measurements and writes the normalized
/// BENCH_<name>.json document ("bench-v1" schema) that CI uploads:
/// configuration, per-method transfer counts/bytes, and median/p95
/// virtual-time latency per row.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& label, const std::string& variant, const ExchangeConfig& cfg,
           const MeasureResult& r);
  bool write(const std::string& path, std::string* err) const;
  std::string default_path() const { return "BENCH_" + bench_ + ".json"; }
  std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    std::string label;
    std::string variant;
    ExchangeConfig cfg;
    MeasureResult res;
  };
  std::string bench_;
  std::vector<Row> rows_;
};

/// Recognizes --json or --json=PATH anywhere in argv (the benches keep
/// their positional arguments). Returns true when present and sets *path
/// to PATH or to BENCH_<bench>.json.
bool parse_json_flag(int argc, char** argv, const std::string& bench, std::string* path);

/// First positional (non "--" flag) argument as an int, or `fallback`.
int positional_int(int argc, char** argv, int fallback);

/// Printf helper: fixed-width table cell.
void print_row(const std::string& label, const std::vector<std::pair<std::string, double>>& cells);

}  // namespace stencil::bench
