// Wall-clock microbenchmarks (google-benchmark) of the substrate itself:
// engine scheduling overhead, resource math, QAP solvers, pack/unpack
// kernels, and a small end-to-end exchange. These measure the *simulator's*
// real cost (the other bench binaries report simulated/virtual time).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/local_domain.h"
#include "core/partition.h"
#include "core/placement.h"
#include "qap/qap.h"
#include "simtime/engine.h"
#include "simtime/resource.h"
#include "topo/archetype.h"
#include "watch/watch.h"

namespace sim = stencil::sim;

static void BM_EngineSleepFastPath(benchmark::State& state) {
  sim::Engine eng;
  for (auto _ : state) {
    state.PauseTiming();
    state.ResumeTiming();
    eng.run({[&] {
      for (int i = 0; i < 1000; ++i) sim::Engine::current()->sleep_for(10);
    }});
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineSleepFastPath);

static void BM_EngineTokenHandoff(benchmark::State& state) {
  const int actors = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    std::vector<std::function<void()>> bodies;
    for (int i = 0; i < actors; ++i) {
      bodies.push_back([] {
        for (int k = 0; k < 100; ++k) sim::Engine::current()->yield();
      });
    }
    eng.run(std::move(bodies));
  }
  state.SetItemsProcessed(state.iterations() * actors * 100);
}
BENCHMARK(BM_EngineTokenHandoff)->Arg(2)->Arg(12)->Arg(48);

static void BM_ResourceAcquire(benchmark::State& state) {
  sim::Resource r;
  sim::Time t = 0;
  for (auto _ : state) {
    t = r.acquire(t, 10);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ResourceAcquire);

static void BM_QapExhaustive6(benchmark::State& state) {
  stencil::HierarchicalPartition hp({1440, 1452, 700}, 1, 6);
  stencil::Placement p(hp, stencil::topo::summit(), 3, 16, stencil::Neighborhood::kFull,
                       stencil::PlacementStrategy::kTrivial);
  const auto w = p.node_flow(0);
  const auto& d = p.distance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stencil::qap::solve_exhaustive(w, d));
  }
}
BENCHMARK(BM_QapExhaustive6);

static void BM_QapGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stencil::qap::SquareMatrix w(n), d(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      w.at(i, j) = static_cast<double>((i * 31 + j * 17) % 97);
      d.at(i, j) = 1.0 + static_cast<double>((i * 13 + j * 7) % 11);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stencil::qap::solve_greedy_2swap(w, d));
  }
}
BENCHMARK(BM_QapGreedy)->Arg(6)->Arg(16)->Arg(32);

static void BM_PackRegion(benchmark::State& state) {
  const std::int64_t edge = state.range(0);
  sim::Engine eng;
  stencil::topo::Machine machine(stencil::topo::summit(), 1);
  stencil::vgpu::Runtime rt(eng, machine);
  eng.run({[&] {
    std::vector<stencil::Quantity> qs{{"a", 4}, {"b", 4}};
    stencil::LocalDomain ld(rt, 0, {0, 0, 0}, {0, 0, 0}, {edge, edge, edge}, 3, qs);
    const stencil::Region3 face = stencil::interior_slab(ld.size(), {1, 0, 0}, 3);
    auto buf = rt.alloc_device(0, ld.region_bytes(face));
    for (auto _ : state) {
      ld.pack_region(buf, face);
      benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(ld.region_bytes(face)));
  }});
}
BENCHMARK(BM_PackRegion)->Arg(64)->Arg(128);

static void BM_FullExchangeSimulated(benchmark::State& state) {
  // Real seconds needed to *simulate* one single-node 6-rank exchange.
  // Arg(1) attaches a stencil::watch, so the delta between the two rows is
  // the watch's whole hot-path overhead (acceptance: under 2%).
  const bool watched = state.range(0) != 0;
  for (auto _ : state) {
    stencil::watch::Watch live;
    stencil::Cluster cluster(stencil::topo::summit(), 1, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    if (watched) cluster.set_watch(&live);
    cluster.run([&](stencil::RankCtx& ctx) {
      stencil::DistributedDomain dd(ctx, {512, 512, 512});
      dd.set_radius(3);
      dd.add_data<float>("q");
      dd.realize();
      dd.exchange();
    });
  }
}
BENCHMARK(BM_FullExchangeSimulated)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("watch")
    ->Unit(benchmark::kMillisecond);

namespace {

/// Console output as usual, but keep every run so --json can re-emit the
/// wall-clock numbers in the repo-wide bench-v1 schema (real ms per
/// iteration; these rows measure the simulator itself, not virtual time).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> runs;
  void ReportRuns(const std::vector<Run>& report) override {
    runs.insert(runs.end(), report.begin(), report.end());
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  const bool emit_json = stencil::bench::parse_json_flag(argc, argv, "micro", &json_path);
  // Strip --json before google-benchmark sees (and rejects) it.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) != 0) args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (emit_json) {
    stencil::bench::BenchJson json("micro");
    for (const auto& r : reporter.runs) {
      if (r.error_occurred) continue;
      const double iters = r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      const double ms = r.real_accumulated_time / iters * 1e3;
      stencil::bench::MeasureResult res;
      res.max_avg_ms = res.median_ms = res.p95_ms = ms;
      res.iter_ms = {ms};
      json.add(r.benchmark_name(), "wallclock", stencil::bench::ExchangeConfig{}, res);
    }
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_micro: %s\n", err.c_str());
      return 1;
    }
    std::printf("%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
