// Reproduces Fig. 12b and Fig. 12c: weak scaling of the exchange to 256
// nodes (1536 GPUs), 6 ranks x 6 GPUs per node, total domain
// round(750 * nGPUs^(1/3))^3 (a constant ~750^3 points per GPU).
//
// Fig. 12b (no CUDA-aware MPI): exchange time flattens once most nodes have
// 26 distinct neighbors (~32 nodes); specialization is worth ~1.16x at 256
// nodes. Fig. 12c (CUDA-aware): performance degrades with node count and
// specialization stops helping.
#include <cstdio>
#include <cstdlib>

#include "common.h"

using namespace stencil::bench;

int main(int argc, char** argv) {
  // Allow a smaller sweep for quick runs: bench_weak_scaling [max_nodes] [--json]
  const int max_nodes = positional_int(argc, argv, 256);
  std::string json_path;
  BenchJson json("weak_scaling");
  const bool emit_json = parse_json_flag(argc, argv, "weak_scaling", &json_path);

  std::printf("Fig. 12b/12c reproduction: weak scaling, 6 ranks x 6 GPUs per node\n");
  std::printf("domain = round(750 * nGPUs^(1/3))^3, radius 3, 4 SP quantities\n\n");

  for (const bool cuda_aware : {false, true}) {
    std::printf("== %s (Fig. %s) ==\n", cuda_aware ? "with CUDA-aware MPI" : "without CUDA-aware MPI",
                cuda_aware ? "12c" : "12b");
    double staged_256 = 0.0, best_256 = 0.0;
    for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
      ExchangeConfig cfg;
      cfg.nodes = nodes;
      cfg.ranks_per_node = 6;
      cfg.domain = weak_scaling_domain(nodes * 6);
      cfg.iterations = 2;
      std::vector<std::pair<std::string, double>> cells;
      for (const auto& [name, flags] : capability_tiers(cuda_aware)) {
        cfg.flags = flags;
        const MeasureResult r = measure_exchange(cfg);
        const double ms = r.max_avg_ms;
        cells.emplace_back(name, ms);
        if (emit_json) json.add(cfg.label(), name, cfg, r);
        if (nodes == max_nodes && name == "+remote") staged_256 = ms;
        if (nodes == max_nodes && name == "+kernel") best_256 = ms;
      }
      print_row(cfg.label(), cells);
    }
    if (best_256 > 0.0) {
      std::printf("  specialization speedup at %dn: %.3fx%s\n\n", max_nodes,
                  staged_256 / best_256,
                  cuda_aware ? "" : "  (paper: 1.16x at 256n)");
    }
  }
  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_weak_scaling: %s\n", err.c_str());
      return 1;
    }
    std::printf("%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
