// Ablation: QAP solver choice for the placement phase. The paper uses
// exhaustive search ("the number of GPUs in a node is typically small");
// this compares the exhaustive optimum against the greedy+2swap heuristic
// and the identity/worst baselines on real node flow matrices, plus the
// wall-clock cost of each solver.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "common.h"
#include "core/partition.h"
#include "core/placement.h"
#include "qap/qap.h"
#include "topo/archetype.h"

using stencil::Dim3;
using stencil::bench::BenchJson;
using stencil::bench::ExchangeConfig;
using stencil::bench::scalar_result;

namespace {

double wall_us(const std::function<void()>& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("ablation_qap");
  const bool emit_json = stencil::bench::parse_json_flag(argc, argv, "ablation_qap", &json_path);

  std::printf("Ablation: QAP solver quality and cost on node flow matrices\n\n");
  const auto arch = stencil::topo::summit();
  struct Case {
    const char* name;
    Dim3 dom;
  } cases[] = {{"Fig.11 skewed", {1440, 1452, 700}},
               {"cube", {1364, 1364, 1364}},
               {"plate", {4000, 4000, 200}},
               {"rod", {8000, 300, 300}}};

  for (const auto& c : cases) {
    stencil::HierarchicalPartition hp(c.dom, 1, 6);
    stencil::Placement p(hp, arch, 3, 16, stencil::Neighborhood::kFull,
                         stencil::PlacementStrategy::kTrivial);
    const auto w = p.node_flow(0);
    const auto& d = p.distance();

    std::vector<int> exhaustive, greedy;
    const double t_ex = wall_us([&] { exhaustive = stencil::qap::solve_exhaustive(w, d); });
    const double t_gr = wall_us([&] { greedy = stencil::qap::solve_greedy_2swap(w, d); });
    const auto identity = stencil::qap::identity_assignment(w.n());
    const auto worst = stencil::qap::solve_worst(w, d);

    const double c_ex = stencil::qap::cost(w, d, exhaustive);
    const double c_gr = stencil::qap::cost(w, d, greedy);
    const double c_id = stencil::qap::cost(w, d, identity);
    const double c_wo = stencil::qap::cost(w, d, worst);

    std::printf("%-14s exhaustive=%.4g (%.0f us)  greedy2swap=%.4g (%.0f us, +%.2f%%)\n",
                c.name, c_ex, t_ex, c_gr, t_gr, 100.0 * (c_gr - c_ex) / c_ex);
    std::printf("%-14s identity=%.4g (+%.2f%%)  worst=%.4g (+%.2f%%)\n", "", c_id,
                100.0 * (c_id - c_ex) / c_ex, c_wo, 100.0 * (c_wo - c_ex) / c_ex);

    if (emit_json) {
      // Only the deterministic solver costs are emitted; the wall-clock
      // timings above are host-machine noise and would make every CI
      // comparison flaky.
      ExchangeConfig cfg;
      cfg.nodes = 1;
      cfg.ranks_per_node = 6;
      cfg.domain = c.dom;
      json.add(c.name, "exhaustive", cfg, scalar_result(c_ex));
      json.add(c.name, "greedy2swap", cfg, scalar_result(c_gr));
      json.add(c.name, "identity", cfg, scalar_result(c_id));
      json.add(c.name, "worst", cfg, scalar_result(c_wo));
    }
  }
  std::printf("\n(exhaustive n=6 visits 720 permutations; the paper's choice is cheap and exact)\n");

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_ablation_qap: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
