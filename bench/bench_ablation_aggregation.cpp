// Ablation: per-rank-pair message aggregation (paper §VI, citing [3]):
// combine all STAGED transfers between each rank pair into one message.
// The paper conjectures its messages "may already be few enough and large
// enough"; this sweep tests that across the strong-scaling regime, where
// shrinking subdomains make messages small and latency-bound.
#include <cstdio>

#include "common.h"

using namespace stencil::bench;

namespace {

double strong_ms(int nodes, bool aggregated, stencil::Dim3 domain, int radius,
                 stencil::MethodFlags flags) {
  stencil::Cluster cluster(stencil::topo::summit(), nodes, 6);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  std::vector<double> t(static_cast<std::size_t>(nodes) * 6, 0.0);
  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, domain);
    dd.set_radius(radius);
    for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(flags);
    dd.set_remote_aggregation(aggregated);
    dd.realize();
    ctx.comm.barrier();
    dd.exchange();  // warm-up
    ctx.comm.barrier();
    const double t0 = ctx.comm.wtime();
    dd.exchange();
    t[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
  });
  double worst = 0.0;
  for (double v : t) worst = std::max(worst, v);
  return worst * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("ablation_aggregation");
  const bool emit_json = parse_json_flag(argc, argv, "ablation_aggregation", &json_path);
  const auto add_pair = [&](const std::string& label, int nodes, stencil::Dim3 dom, int radius,
                            stencil::MethodFlags flags, double plain, double agg) {
    ExchangeConfig cfg;
    cfg.nodes = nodes;
    cfg.ranks_per_node = 6;
    cfg.domain = dom;
    cfg.radius = radius;
    cfg.flags = flags;
    json.add(label, "per_transfer", cfg, scalar_result(plain));
    json.add(label, "aggregated", cfg, scalar_result(agg));
  };

  std::printf("Ablation: STAGED message aggregation (one message per rank pair)\n\n");

  std::printf("full specialization, strong scaling on 1363^3, radius 3:\n");
  std::printf("%-8s %-14s %-14s %-10s\n", "nodes", "per-transfer", "aggregated", "speedup");
  for (const int nodes : {2, 8, 32, 128}) {
    const double plain =
        strong_ms(nodes, false, {1363, 1363, 1363}, 3, stencil::MethodFlags::kAll);
    const double agg = strong_ms(nodes, true, {1363, 1363, 1363}, 3, stencil::MethodFlags::kAll);
    std::printf("%-8d %9.3f ms   %9.3f ms   %.3fx\n", nodes, plain, agg, plain / agg);
    if (emit_json) {
      add_pair("full_spec/" + std::to_string(nodes) + "n", nodes, {1363, 1363, 1363}, 3,
               stencil::MethodFlags::kAll, plain, agg);
    }
  }
  std::printf("-> under full specialization each rank pair carries only a few large\n"
              "   messages; aggregation merely delays the group to its slowest pack.\n"
              "   This confirms the paper's conjecture that its messages are already\n"
              "   \"few enough and large enough\" (paper SVI / future work).\n\n");

  std::printf("STAGED-only (everything through MPI), small latency-bound domain:\n");
  std::printf("%-8s %-14s %-14s %-10s\n", "nodes", "per-transfer", "aggregated", "speedup");
  for (const int nodes : {2, 4, 8}) {
    const double plain = strong_ms(nodes, false, {220, 220, 220}, 1, stencil::MethodFlags::kStaged);
    const double agg = strong_ms(nodes, true, {220, 220, 220}, 1, stencil::MethodFlags::kStaged);
    std::printf("%-8d %9.3f ms   %9.3f ms   %.3fx\n", nodes, plain, agg, plain / agg);
    if (emit_json) {
      add_pair("staged_only/" + std::to_string(nodes) + "n", nodes, {220, 220, 220}, 1,
               stencil::MethodFlags::kStaged, plain, agg);
    }
  }
  std::printf("-> when many small intra-node MPI messages exist (the unspecialized\n"
              "   regime), collapsing them per rank pair does pay off.\n");

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_ablation_aggregation: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
