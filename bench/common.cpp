#include "common.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "telemetry/export.h"

namespace stencil::bench {

Dim3 weak_scaling_domain(int total_gpus, int per_gpu_edge) {
  const double edge = std::round(static_cast<double>(per_gpu_edge) *
                                 std::cbrt(static_cast<double>(total_gpus)));
  const auto e = static_cast<std::int64_t>(edge);
  return {e, e, e};
}

MeasureResult reduce_latency(const std::vector<std::vector<double>>& per_iter) {
  MeasureResult r;
  if (per_iter.empty() || per_iter.front().empty()) return r;
  const std::size_t ranks = per_iter.front().size();

  std::vector<double> per_rank_avg(ranks, 0.0);
  for (const auto& ranks_ms : per_iter) {
    r.iter_ms.push_back(*std::max_element(ranks_ms.begin(), ranks_ms.end()));
    for (std::size_t k = 0; k < ranks; ++k) per_rank_avg[k] += ranks_ms[k];
  }
  for (double& avg : per_rank_avg) avg /= static_cast<double>(per_iter.size());
  r.max_avg_ms = *std::max_element(per_rank_avg.begin(), per_rank_avg.end());

  std::vector<double> sorted = r.iter_ms;
  std::sort(sorted.begin(), sorted.end());
  r.median_ms = sorted[sorted.size() / 2];
  // Nearest-rank percentile: ceil(0.95 * n)-th smallest.
  const auto idx = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(sorted.size()))) - 1;
  r.p95_ms = sorted[std::min(idx, sorted.size() - 1)];
  return r;
}

MeasureResult measure_exchange(const ExchangeConfig& cfg) {
  Cluster cluster(cfg.arch, cfg.nodes, cfg.ranks_per_node);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);  // timing-only at scale
  if (cfg.explain != nullptr) cluster.set_explain(cfg.explain);
  const auto ranks =
      static_cast<std::size_t>(cfg.nodes) * static_cast<std::size_t>(cfg.ranks_per_node);
  std::vector<std::vector<double>> per_iter(static_cast<std::size_t>(cfg.iterations),
                                            std::vector<double>(ranks, 0.0));
  std::map<Method, std::pair<int, std::size_t>> method_bytes;

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, cfg.domain);
    dd.set_radius(cfg.radius);
    for (int q = 0; q < cfg.quantities; ++q) {
      dd.add_data<float>("q" + std::to_string(q));
    }
    dd.set_methods(cfg.flags);
    dd.set_placement(cfg.strategy);
    dd.set_neighborhood(cfg.nbhd);
    dd.set_persistent(cfg.persistent);
    dd.realize();

    // One untimed warm-up exchange (populates nothing in the deterministic
    // model, but mirrors the measurement discipline of the paper).
    ctx.comm.barrier();
    dd.exchange();

    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      per_iter[static_cast<std::size_t>(it)][static_cast<std::size_t>(ctx.rank())] =
          (ctx.comm.wtime() - t0) * 1e3;
    }
    if (ctx.rank() == 0) method_bytes = dd.method_bytes_histogram();
  });

  MeasureResult r = reduce_latency(per_iter);
  r.method_bytes = std::move(method_bytes);
  return r;
}

double measure_exchange_ms(const ExchangeConfig& cfg) { return measure_exchange(cfg).max_avg_ms; }

void BenchJson::add(const std::string& label, const std::string& variant,
                    const ExchangeConfig& cfg, const MeasureResult& r) {
  rows_.push_back(Row{label, variant, cfg, r});
}

bool BenchJson::write(const std::string& path, std::string* err) const {
  std::ofstream os(path);
  if (!os) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  const auto esc = [](const std::string& s) { return telemetry::json_escape(s); };
  os << "{\n  \"schema\": \"bench-v1\",\n  \"bench\": \"" << esc(bench_) << "\",\n"
     << "  \"rows\": [";
  bool first_row = true;
  for (const auto& row : rows_) {
    os << (first_row ? "\n" : ",\n");
    first_row = false;
    const ExchangeConfig& c = row.cfg;
    os << "    {\"label\": \"" << esc(row.label) << "\", \"variant\": \"" << esc(row.variant)
       << "\",\n     \"config\": {\"arch\": \"" << esc(c.arch.name) << "\", \"nodes\": " << c.nodes
       << ", \"ranks_per_node\": " << c.ranks_per_node
       << ", \"gpus_per_node\": " << c.gpus_per_node() << ", \"domain\": [" << c.domain.x << ", "
       << c.domain.y << ", " << c.domain.z << "], \"radius\": " << c.radius
       << ", \"quantities\": " << c.quantities << ", \"iterations\": " << c.iterations
       << ", \"persistent\": " << (c.persistent ? "true" : "false") << "},\n"
       << "     \"latency_ms\": {\"max_avg\": " << row.res.max_avg_ms
       << ", \"median\": " << row.res.median_ms << ", \"p95\": " << row.res.p95_ms
       << ", \"iterations\": [";
    for (std::size_t k = 0; k < row.res.iter_ms.size(); ++k) {
      os << (k == 0 ? "" : ", ") << row.res.iter_ms[k];
    }
    os << "]},\n     \"method_bytes\": {";
    bool first_m = true;
    for (const auto& [m, cb] : row.res.method_bytes) {
      os << (first_m ? "" : ", ") << "\"" << to_string(m) << "\": {\"transfers\": " << cb.first
         << ", \"bytes\": " << cb.second << "}";
      first_m = false;
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
  return os.good();
}

int positional_int(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) return std::atoi(argv[i]);
  }
  return fallback;
}

bool parse_json_flag(int argc, char** argv, const std::string& bench, std::string* path) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      *path = "BENCH_" + bench + ".json";
      return true;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      *path = argv[i] + 7;
      if (path->empty()) *path = "BENCH_" + bench + ".json";
      return true;
    }
  }
  return false;
}

void print_row(const std::string& label, const std::vector<std::pair<std::string, double>>& cells) {
  std::printf("%-26s", label.c_str());
  for (const auto& [name, ms] : cells) {
    std::printf("  %s=%9.3f ms", name.c_str(), ms);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace stencil::bench
