#include "common.h"

#include <cmath>

namespace stencil::bench {

Dim3 weak_scaling_domain(int total_gpus, int per_gpu_edge) {
  const double edge = std::round(static_cast<double>(per_gpu_edge) *
                                 std::cbrt(static_cast<double>(total_gpus)));
  const auto e = static_cast<std::int64_t>(edge);
  return {e, e, e};
}

double measure_exchange_ms(const ExchangeConfig& cfg) {
  Cluster cluster(cfg.arch, cfg.nodes, cfg.ranks_per_node);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);  // timing-only at scale
  std::vector<double> per_rank_avg(
      static_cast<std::size_t>(cfg.nodes) * static_cast<std::size_t>(cfg.ranks_per_node), 0.0);

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, cfg.domain);
    dd.set_radius(cfg.radius);
    for (int q = 0; q < cfg.quantities; ++q) {
      dd.add_data<float>("q" + std::to_string(q));
    }
    dd.set_methods(cfg.flags);
    dd.set_placement(cfg.strategy);
    dd.set_neighborhood(cfg.nbhd);
    dd.set_persistent(cfg.persistent);
    dd.realize();

    // One untimed warm-up exchange (populates nothing in the deterministic
    // model, but mirrors the measurement discipline of the paper).
    ctx.comm.barrier();
    dd.exchange();

    double total = 0.0;
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      total += ctx.comm.wtime() - t0;
    }
    per_rank_avg[static_cast<std::size_t>(ctx.rank())] =
        total / static_cast<double>(cfg.iterations);
  });

  const double max_s = *std::max_element(per_rank_avg.begin(), per_rank_avg.end());
  return max_s * 1e3;
}

void print_row(const std::string& label, const std::vector<std::pair<std::string, double>>& cells) {
  std::printf("%-26s", label.c_str());
  for (const auto& [name, ms] : cells) {
    std::printf("  %s=%9.3f ms", name.c_str(), ms);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace stencil::bench
