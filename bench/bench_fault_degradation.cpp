// Exchange cost under runtime capability degradation (stencil::fault).
//
// A fully specialized single-node job loses peer access and its IPC
// mappings mid-run; every PEER/COLOCATED transfer demotes to STAGED at the
// next exchange boundary (§III-C fail-down). The degraded regime should
// approach the natively STAGED-only plan -- the fault path adds resilience,
// not a new performance class. A second table shows a 2-node job riding
// out a 4x NIC bandwidth loss.
#include <cstdio>

#include "common.h"
#include "fault/fault.h"

using namespace stencil::bench;
namespace fault = stencil::fault;
namespace sim = stencil::sim;

namespace {

struct DrillResult {
  double healthy_ms = 0.0;
  double degraded_ms = 0.0;
};

// One run, two measured epochs: `iters` exchanges before the fault instant
// and `iters` after it (the plan fires while the job sleeps in between).
DrillResult measure_across_fault(const ExchangeConfig& cfg, const fault::FaultPlan& plan,
                                 sim::Time t_fault) {
  fault::Injector inj(plan);
  stencil::Cluster cluster(cfg.arch, cfg.nodes, cfg.ranks_per_node);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  cluster.set_fault_injector(&inj);
  const auto ranks = static_cast<std::size_t>(cfg.nodes) * cfg.ranks_per_node;
  std::vector<double> healthy(ranks, 0.0), degraded(ranks, 0.0);

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, cfg.domain);
    dd.set_radius(cfg.radius);
    for (int q = 0; q < cfg.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(cfg.flags);
    dd.set_placement(cfg.strategy);
    dd.realize();
    ctx.comm.barrier();
    dd.exchange();  // warm-up

    auto epoch = [&](std::vector<double>& out) {
      double total = 0.0;
      for (int it = 0; it < cfg.iterations; ++it) {
        ctx.comm.barrier();
        const double t0 = ctx.comm.wtime();
        dd.exchange();
        total += ctx.comm.wtime() - t0;
      }
      out[static_cast<std::size_t>(ctx.rank())] = total / cfg.iterations * 1e3;
    };
    epoch(healthy);
    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    dd.exchange();  // the demoting exchange: pays the one-time rebuild
    epoch(degraded);
  });

  DrillResult r;
  r.healthy_ms = *std::max_element(healthy.begin(), healthy.end());
  r.degraded_ms = *std::max_element(degraded.begin(), degraded.end());
  return r;
}

}  // namespace

int main() {
  const stencil::Dim3 domain = weak_scaling_domain(6);
  const sim::Time t_fault = sim::from_seconds(30.0);  // past any healthy epoch
  std::printf("Fault degradation drill: %s, radius 3, 4 SP quantities\n\n", domain.str().c_str());

  std::printf("peer + IPC loss mid-run (1 node, full specialization -> STAGED):\n");
  for (const int rpn : {2, 6}) {
    ExchangeConfig cfg;
    cfg.nodes = 1;
    cfg.ranks_per_node = rpn;
    cfg.domain = domain;

    fault::FaultPlan plan;
    plan.revoke_peer(t_fault, -1, -1).invalidate_ipc(t_fault);
    const DrillResult r = measure_across_fault(cfg, plan, t_fault);

    ExchangeConfig staged = cfg;
    staged.flags = stencil::MethodFlags::kStaged;
    const double staged_ms = measure_exchange_ms(staged);

    print_row(cfg.label(), {{"healthy", r.healthy_ms},
                            {"degraded", r.degraded_ms},
                            {"staged-ref", staged_ms}});
  }

  std::printf("\nNIC bandwidth loss (2 nodes, STAGED remote, link x0.25):\n");
  {
    ExchangeConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 6;
    cfg.domain = weak_scaling_domain(12);

    fault::FaultPlan plan;
    plan.degrade_link(t_fault, fault::LinkClass::kNic, -1, -1, 0.25);
    const DrillResult r = measure_across_fault(cfg, plan, t_fault);
    print_row(cfg.label(), {{"healthy", r.healthy_ms}, {"degraded", r.degraded_ms}});
  }
  return 0;
}
