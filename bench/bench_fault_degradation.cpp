// Exchange cost under runtime capability degradation (stencil::fault).
//
// A fully specialized single-node job loses peer access and its IPC
// mappings mid-run; every PEER/COLOCATED transfer demotes to STAGED at the
// next exchange boundary (§III-C fail-down). The degraded regime should
// approach the natively STAGED-only plan -- the fault path adds resilience,
// not a new performance class. A second table shows a 2-node job riding
// out a 4x NIC bandwidth loss.
#include <cstdio>

#include "common.h"
#include "fault/fault.h"

using namespace stencil::bench;
namespace fault = stencil::fault;
namespace sim = stencil::sim;

namespace {

struct DrillResult {
  MeasureResult healthy;
  MeasureResult degraded;  // method_bytes shows the post-fault demotions
};

// One run, two measured epochs: `iters` exchanges before the fault instant
// and `iters` after it (the plan fires while the job sleeps in between).
DrillResult measure_across_fault(const ExchangeConfig& cfg, const fault::FaultPlan& plan,
                                 sim::Time t_fault) {
  fault::Injector inj(plan);
  stencil::Cluster cluster(cfg.arch, cfg.nodes, cfg.ranks_per_node);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  cluster.set_fault_injector(&inj);
  const auto ranks = static_cast<std::size_t>(cfg.nodes) * cfg.ranks_per_node;
  const auto iters = static_cast<std::size_t>(cfg.iterations);
  std::vector<std::vector<double>> healthy(iters, std::vector<double>(ranks, 0.0));
  std::vector<std::vector<double>> degraded(iters, std::vector<double>(ranks, 0.0));
  DrillResult r;

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, cfg.domain);
    dd.set_radius(cfg.radius);
    for (int q = 0; q < cfg.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(cfg.flags);
    dd.set_placement(cfg.strategy);
    dd.realize();
    ctx.comm.barrier();
    dd.exchange();  // warm-up

    auto epoch = [&](std::vector<std::vector<double>>& out, MeasureResult* res) {
      for (int it = 0; it < cfg.iterations; ++it) {
        ctx.comm.barrier();
        const double t0 = ctx.comm.wtime();
        dd.exchange();
        out[static_cast<std::size_t>(it)][static_cast<std::size_t>(ctx.rank())] =
            (ctx.comm.wtime() - t0) * 1e3;
      }
      if (ctx.rank() == 0) res->method_bytes = dd.method_bytes_histogram();
    };
    epoch(healthy, &r.healthy);
    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    dd.exchange();  // the demoting exchange: pays the one-time rebuild
    epoch(degraded, &r.degraded);
  });

  auto lat = reduce_latency(healthy);
  lat.method_bytes = std::move(r.healthy.method_bytes);
  r.healthy = std::move(lat);
  lat = reduce_latency(degraded);
  lat.method_bytes = std::move(r.degraded.method_bytes);
  r.degraded = std::move(lat);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("fault_degradation");
  const bool emit_json = parse_json_flag(argc, argv, "fault_degradation", &json_path);
  const stencil::Dim3 domain = weak_scaling_domain(6);
  const sim::Time t_fault = sim::from_seconds(30.0);  // past any healthy epoch
  std::printf("Fault degradation drill: %s, radius 3, 4 SP quantities\n\n", domain.str().c_str());

  std::printf("peer + IPC loss mid-run (1 node, full specialization -> STAGED):\n");
  for (const int rpn : {2, 6}) {
    ExchangeConfig cfg;
    cfg.nodes = 1;
    cfg.ranks_per_node = rpn;
    cfg.domain = domain;

    fault::FaultPlan plan;
    plan.revoke_peer(t_fault, -1, -1).invalidate_ipc(t_fault);
    const DrillResult r = measure_across_fault(cfg, plan, t_fault);

    ExchangeConfig staged = cfg;
    staged.flags = stencil::MethodFlags::kStaged;
    const MeasureResult staged_ref = measure_exchange(staged);

    if (emit_json) {
      json.add(cfg.label(), "healthy", cfg, r.healthy);
      json.add(cfg.label(), "degraded", cfg, r.degraded);
      json.add(cfg.label(), "staged-ref", staged, staged_ref);
    }
    print_row(cfg.label(), {{"healthy", r.healthy.max_avg_ms},
                            {"degraded", r.degraded.max_avg_ms},
                            {"staged-ref", staged_ref.max_avg_ms}});
  }

  std::printf("\nNIC bandwidth loss (2 nodes, STAGED remote, link x0.25):\n");
  {
    ExchangeConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 6;
    cfg.domain = weak_scaling_domain(12);

    fault::FaultPlan plan;
    plan.degrade_link(t_fault, fault::LinkClass::kNic, -1, -1, 0.25);
    const DrillResult r = measure_across_fault(cfg, plan, t_fault);
    if (emit_json) {
      json.add(cfg.label() + "/nic", "healthy", cfg, r.healthy);
      json.add(cfg.label() + "/nic", "degraded", cfg, r.degraded);
    }
    print_row(cfg.label(), {{"healthy", r.healthy.max_avg_ms}, {"degraded", r.degraded.max_avg_ms}});
  }
  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_fault_degradation: %s\n", err.c_str());
      return 1;
    }
    std::printf("\n%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
