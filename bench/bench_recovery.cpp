// Recovery economics (stencil::recover): what buddy checkpointing costs
// when nothing fails, and what a mid-run GPU loss costs when it does.
//
// Table 1 sweeps the checkpoint cadence over a healthy run and reports the
// per-iteration exchange+checkpoint cost against the cadence-0 baseline --
// the steady-state insurance premium. Table 2 kills one GPU mid-run at each
// cadence and reports the virtual-time MTTR (detect -> retire -> re-place
// -> restore -> resume) plus the iterations of work rolled back to the
// restore floor -- the deductible. Tighter cadence raises the premium and
// lowers the deductible; the tables put numbers on that trade.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common.h"
#include "fault/fault.h"
#include "recover/recover.h"
#include "topo/archetype.h"

using namespace stencil::bench;
namespace fault = stencil::fault;
namespace recover = stencil::recover;
namespace sim = stencil::sim;

namespace {

// One GPU per rank so a dead GPU means a dead rank -- the shape the
// recovery ladder shrinks around.
ExchangeConfig recovery_config() {
  ExchangeConfig cfg;
  cfg.arch = stencil::topo::pcie_box(2);
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  // Small enough that a full checkpoint generation commits in ~1 ms of
  // virtual time: the MTTR drill needs a committed floor before the fault.
  cfg.domain = weak_scaling_domain(4, 96);
  cfg.quantities = 2;
  cfg.iterations = 8;
  return cfg;
}

void realize_domain(stencil::RankCtx& ctx, stencil::DistributedDomain& dd,
                    const ExchangeConfig& cfg) {
  dd.set_radius(cfg.radius);
  for (int q = 0; q < cfg.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
  dd.set_methods(cfg.flags);
  dd.set_placement(cfg.strategy);
  dd.realize();
}

struct CadenceCost {
  MeasureResult lat;
  std::uint64_t checkpoints = 0;
};

// Healthy run: per iteration, barrier, wtime, checkpoint-if-due + exchange,
// wtime. The cadence-0 row is the plain exchange baseline.
CadenceCost measure_cadence(const ExchangeConfig& cfg, std::int64_t cadence) {
  stencil::Cluster cluster(cfg.arch, cfg.nodes, cfg.ranks_per_node);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  const auto ranks = static_cast<std::size_t>(cfg.nodes) * cfg.ranks_per_node;
  const auto iters = static_cast<std::size_t>(cfg.iterations);
  std::vector<std::vector<double>> per(iters, std::vector<double>(ranks, 0.0));
  CadenceCost r;

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, cfg.domain);
    realize_domain(ctx, dd, cfg);
    recover::RecoveryManager rm(ctx, dd, cadence);
    ctx.comm.barrier();
    dd.exchange();  // warm-up
    for (int it = 0; it < cfg.iterations; ++it) {
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      rm.maybe_checkpoint(it);
      dd.exchange();
      per[static_cast<std::size_t>(it)][static_cast<std::size_t>(ctx.rank())] =
          (ctx.comm.wtime() - t0) * 1e3;
    }
    if (ctx.rank() == 0) r.checkpoints = rm.stats().checkpoints;
  });
  r.lat = reduce_latency(per);
  return r;
}

struct MttrResult {
  double mttr_ms = 0.0;          // failure instant -> survivors resumed
  std::int64_t floor = -1;       // iteration restored to
  std::int64_t at_iter = 0;      // iteration the incident interrupted
  int survivors = 0;
  int casualties = 0;
};

// Wounded run: iterations paced so the fault lands mid-run, then the full
// ladder -- classify, shrink, re-place, restore, replay from the floor.
MttrResult measure_mttr(const ExchangeConfig& cfg, std::int64_t cadence, int kill_gpu,
                        sim::Time t_fault, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.set_seed(seed);
  plan.fail_gpu(t_fault, kill_gpu);
  fault::Injector inj(plan);
  stencil::Cluster cluster(cfg.arch, cfg.nodes, cfg.ranks_per_node);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  cluster.set_fault_injector(&inj);
  const sim::Time slice = 2 * t_fault / (cfg.iterations > 0 ? cfg.iterations : 1);
  MttrResult r;

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, cfg.domain);
    realize_domain(ctx, dd, cfg);
    recover::RecoveryManager rm(ctx, dd, cadence);
    std::int64_t it = 0, trip = 0;
    while (it < cfg.iterations) {
      try {
        ctx.engine().sleep_until(slice * trip);
        ++trip;
        rm.maybe_checkpoint(it);
        dd.exchange();
        ++it;
      } catch (const std::exception& e) {
        const auto ev = recover::classify(e, ctx.comm.job(), ctx.rank(), ctx.engine().now());
        if (ev.kind == recover::FailureKind::kNone) throw;
        const std::int64_t back = rm.recover(ev, it);
        if (back == recover::RecoveryManager::kRankGone) {
          ++r.casualties;
          return;
        }
        r.at_iter = it;
        it = back;
      }
    }
    ++r.survivors;
    const auto& st = rm.stats();
    if (st.recoveries > 0) {
      r.mttr_ms = static_cast<double>(st.last_mttr) / 1e6;
      r.floor = st.last_floor;
    }
  });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("recovery");
  const bool emit_json = parse_json_flag(argc, argv, "recovery", &json_path);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(positional_int(argc, argv, /*fallback=*/1));
  const ExchangeConfig cfg = recovery_config();
  const std::vector<std::int64_t> cadences = {0, 8, 4, 2};

  std::printf("Recovery economics: %s, %d ranks, seed %llu\n\n", cfg.label().c_str(),
              cfg.nodes * cfg.ranks_per_node, static_cast<unsigned long long>(seed));

  std::printf("checkpoint cadence overhead (healthy run, per-iteration ms):\n");
  double baseline = 0.0;
  for (const std::int64_t c : cadences) {
    const CadenceCost r = measure_cadence(cfg, c);
    if (c == 0) baseline = r.lat.max_avg_ms;
    const double over =
        baseline > 0.0 ? (r.lat.max_avg_ms / baseline - 1.0) * 100.0 : 0.0;
    std::printf("  cadence %-2lld  per-iter %8.3f ms  checkpoints %2llu  overhead %+7.1f%%\n",
                static_cast<long long>(c), r.lat.max_avg_ms,
                static_cast<unsigned long long>(r.checkpoints), over);
    if (emit_json) json.add(cfg.label(), "cadence-" + std::to_string(c), cfg, r.lat);
  }

  std::printf("\nmid-run GPU loss (kill gpu1 at t=5 ms, virtual-time MTTR):\n");
  const sim::Time t_fault = sim::from_seconds(0.005);
  for (const std::int64_t c : cadences) {
    if (c == 0) continue;  // no checkpoint, no restore floor to measure
    const MttrResult r = measure_mttr(cfg, c, /*kill_gpu=*/1, t_fault, seed);
    if (r.survivors + r.casualties != cfg.nodes * cfg.ranks_per_node || r.casualties == 0 ||
        r.floor < 0) {
      std::fprintf(stderr,
                   "bench_recovery: cadence %lld drill failed (survivors %d, casualties %d, "
                   "floor %lld, seed %llu)\n",
                   static_cast<long long>(c), r.survivors, r.casualties,
                   static_cast<long long>(r.floor), static_cast<unsigned long long>(seed));
      return 1;
    }
    const double replay = static_cast<double>(r.at_iter - r.floor);
    std::printf("  cadence %-2lld  mttr %8.3f ms  floor %2lld  replay %2.0f iters\n",
                static_cast<long long>(c), r.mttr_ms, static_cast<long long>(r.floor),
                replay);
    if (emit_json) {
      json.add(cfg.label() + "/mttr", "cadence-" + std::to_string(c),
               cfg, scalar_result(r.mttr_ms));
      json.add(cfg.label() + "/replay-iters", "cadence-" + std::to_string(c),
               cfg, scalar_result(replay));
    }
  }

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_recovery: %s\n", err.c_str());
      return 1;
    }
    std::printf("\n%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
