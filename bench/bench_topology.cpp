// Reproduces Table I / Fig. 10: the node hardware summary — component
// inventory, link types, the GPU-GPU bandwidth matrix that topology
// discovery (nvml-style) reports, and the communication capabilities that
// drive specialization.
#include <cstdio>

#include "topo/archetype.h"
#include "topo/machine.h"

namespace topo = stencil::topo;

namespace {

void print_archetype(const topo::NodeArchetype& a) {
  std::printf("== node archetype: %s ==\n", a.name.c_str());
  std::printf("  sockets:            %d\n", a.sockets);
  std::printf("  GPUs per socket:    %d  (%d per node)\n", a.gpus_per_socket, a.gpus_per_node());
  std::printf("  NVLink GPU-GPU:     %.1f GiB/s (in-socket, per direction)\n", a.bw_nvlink_gpu_gpu);
  std::printf("  NVLink CPU-GPU:     %.1f GiB/s\n", a.bw_nvlink_cpu_gpu);
  std::printf("  X-Bus (SMP):        %.1f GiB/s\n", a.bw_xbus);
  std::printf("  NIC:                %.1f GiB/s per direction\n", a.bw_nic);
  std::printf("  GPU memory:         %.1f GiB/s\n", a.bw_gpu_mem);
  std::printf("  peer access:        %s in-socket, %s cross-socket\n",
              a.peer_within_socket ? "yes" : "no", a.peer_across_socket ? "yes" : "no");
  std::printf("  CUDA-aware MPI:     %s\n", a.cuda_aware_mpi ? "yes" : "no");

  const int g = a.gpus_per_node();
  std::printf("\n  discovered GPU-GPU bandwidth matrix (GiB/s):\n        ");
  for (int j = 0; j < g; ++j) std::printf("  gpu%-3d", j);
  std::printf("\n");
  for (int i = 0; i < g; ++i) {
    std::printf("  gpu%-3d", i);
    for (int j = 0; j < g; ++j) {
      if (i == j) {
        std::printf("  %6s", "-");
      } else {
        std::printf("  %6.1f", a.theoretical_gpu_bw(i, j));
      }
    }
    std::printf("\n");
  }

  std::printf("\n  link types:\n        ");
  for (int j = 0; j < g; ++j) std::printf("  gpu%-4d", j);
  std::printf("\n");
  for (int i = 0; i < g; ++i) {
    std::printf("  gpu%-3d", i);
    for (int j = 0; j < g; ++j) std::printf("  %-7s", topo::to_string(a.gpu_link(i, j)));
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Table I / Fig. 10 reproduction: node hardware summary\n");
  std::printf("(simulated archetypes; Summit values mirror the paper's Fig. 10)\n\n");
  print_archetype(topo::summit());
  print_archetype(topo::dgx_like(4));
  print_archetype(topo::pcie_box(2));
  return 0;
}
