// Reproduces Table I / Fig. 10: the node hardware summary — component
// inventory, link types, the GPU-GPU bandwidth matrix that topology
// discovery (nvml-style) reports, and the communication capabilities that
// drive specialization.
#include <cstdio>
#include <string>

#include "common.h"
#include "topo/archetype.h"
#include "topo/machine.h"

namespace topo = stencil::topo;
using stencil::bench::BenchJson;
using stencil::bench::ExchangeConfig;
using stencil::bench::scalar_result;

namespace {

void print_archetype(const topo::NodeArchetype& a, BenchJson* json) {
  std::printf("== node archetype: %s ==\n", a.name.c_str());
  std::printf("  sockets:            %d\n", a.sockets);
  std::printf("  GPUs per socket:    %d  (%d per node)\n", a.gpus_per_socket, a.gpus_per_node());
  std::printf("  NVLink GPU-GPU:     %.1f GiB/s (in-socket, per direction)\n", a.bw_nvlink_gpu_gpu);
  std::printf("  NVLink CPU-GPU:     %.1f GiB/s\n", a.bw_nvlink_cpu_gpu);
  std::printf("  X-Bus (SMP):        %.1f GiB/s\n", a.bw_xbus);
  std::printf("  NIC:                %.1f GiB/s per direction\n", a.bw_nic);
  std::printf("  GPU memory:         %.1f GiB/s\n", a.bw_gpu_mem);
  std::printf("  peer access:        %s in-socket, %s cross-socket\n",
              a.peer_within_socket ? "yes" : "no", a.peer_across_socket ? "yes" : "no");
  std::printf("  CUDA-aware MPI:     %s\n", a.cuda_aware_mpi ? "yes" : "no");

  const int g = a.gpus_per_node();
  std::printf("\n  discovered GPU-GPU bandwidth matrix (GiB/s):\n        ");
  for (int j = 0; j < g; ++j) std::printf("  gpu%-3d", j);
  std::printf("\n");
  for (int i = 0; i < g; ++i) {
    std::printf("  gpu%-3d", i);
    for (int j = 0; j < g; ++j) {
      if (i == j) {
        std::printf("  %6s", "-");
      } else {
        std::printf("  %6.1f", a.theoretical_gpu_bw(i, j));
      }
    }
    std::printf("\n");
  }

  std::printf("\n  link types:\n        ");
  for (int j = 0; j < g; ++j) std::printf("  gpu%-4d", j);
  std::printf("\n");
  for (int i = 0; i < g; ++i) {
    std::printf("  gpu%-3d", i);
    for (int j = 0; j < g; ++j) std::printf("  %-7s", topo::to_string(a.gpu_link(i, j)));
    std::printf("\n");
  }
  std::printf("\n");

  if (json != nullptr) {
    ExchangeConfig cfg;
    cfg.arch = a;
    cfg.nodes = 1;
    cfg.ranks_per_node = 1;
    // The "latencies" here are discovered bandwidths in GiB/s — deterministic
    // archetype constants, so a regression in one is a model change.
    json->add(a.name, "bw_nvlink_gpu_gpu", cfg, scalar_result(a.bw_nvlink_gpu_gpu));
    json->add(a.name, "bw_nvlink_cpu_gpu", cfg, scalar_result(a.bw_nvlink_cpu_gpu));
    json->add(a.name, "bw_xbus", cfg, scalar_result(a.bw_xbus));
    json->add(a.name, "bw_nic", cfg, scalar_result(a.bw_nic));
    json->add(a.name, "bw_gpu_mem", cfg, scalar_result(a.bw_gpu_mem));
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        if (i == j) continue;
        json->add(a.name, "gpu" + std::to_string(i) + "->gpu" + std::to_string(j), cfg,
                  scalar_result(a.theoretical_gpu_bw(i, j)));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("topology");
  const bool emit_json = stencil::bench::parse_json_flag(argc, argv, "topology", &json_path);

  std::printf("Table I / Fig. 10 reproduction: node hardware summary\n");
  std::printf("(simulated archetypes; Summit values mirror the paper's Fig. 10)\n\n");
  print_archetype(topo::summit(), emit_json ? &json : nullptr);
  print_archetype(topo::dgx_like(4), emit_json ? &json : nullptr);
  print_archetype(topo::pcie_box(2), emit_json ? &json : nullptr);

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_topology: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
