// Ablation: sensitivity of single-node exchange time to pack/unpack kernel
// throughput. The paper's Future Work (§VI) observes that packing can keep
// the GPU busy for much of the exchange and considers zero-copy and
// cudaMemcpy3D alternatives; this sweep shows how much a faster (or slower)
// pack path would matter under full specialization.
#include <cstdio>

#include "common.h"

using namespace stencil::bench;

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("ablation_pack");
  const bool emit_json = parse_json_flag(argc, argv, "ablation_pack", &json_path);

  std::printf("Ablation: pack-kernel efficiency vs single-node exchange time\n");
  std::printf("1 node, 6 ranks, 1364^3 domain, radius 3, 4 SP quantities, full specialization\n\n");
  std::printf("%-12s %-14s %-14s\n", "eff_pack", "pack GiB/s", "exchange");

  for (const double eff : {0.05, 0.15, 0.30, 0.60, 1.00}) {
    ExchangeConfig cfg;
    cfg.arch = stencil::topo::summit();
    cfg.arch.eff_pack = eff;
    cfg.nodes = 1;
    cfg.ranks_per_node = 6;
    cfg.domain = weak_scaling_domain(6);
    cfg.flags = stencil::MethodFlags::kAll;
    const double ms = measure_exchange_ms(cfg);
    std::printf("%-12.2f %-14.0f %9.3f ms\n", eff, cfg.arch.bw_gpu_mem * eff, ms);
    if (emit_json) {
      char v[32];
      std::snprintf(v, sizeof(v), "eff_pack=%.2f", eff);
      json.add("eff_sweep", v, cfg, scalar_result(ms));
    }
  }
  std::printf("\n(0.30 is the calibrated Summit default; 1.00 approximates the zero-copy\n"
              " / cudaMemcpy3D future-work upper bound)\n");

  // Second half of the §VI question: skip the pack kernels entirely with
  // strided cudaMemcpy3D-style copies on PEER transfers.
  std::printf("\nPack mode on a 1-rank node (all transfers PEER), 1364^3, radius 3:\n");
  std::printf("%-14s %-14s\n", "mode", "exchange");
  for (const stencil::PackMode mode :
       {stencil::PackMode::kKernel, stencil::PackMode::kMemcpy3D, stencil::PackMode::kAuto}) {
    stencil::Cluster cluster(stencil::topo::summit(), 1, 1);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    double t = 0.0;
    cluster.run([&](stencil::RankCtx& ctx) {
      stencil::DistributedDomain dd(ctx, weak_scaling_domain(6));
      dd.set_radius(3);
      for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
      dd.set_methods(stencil::MethodFlags::kAll);
      dd.set_pack_mode(mode);
      dd.realize();
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      t = ctx.comm.wtime() - t0;
    });
    std::printf("%-14s %9.3f ms\n", to_string(mode), t * 1e3);
    if (emit_json) {
      ExchangeConfig cfg;
      cfg.nodes = 1;
      cfg.ranks_per_node = 1;
      cfg.domain = weak_scaling_domain(6);
      json.add("pack_mode", to_string(mode), cfg, scalar_result(t * 1e3));
    }
  }
  std::printf("(kernel packs win on thin x-face rows; memcpy3d wins on long z-face\n"
              " rows; auto picks per transfer — the Sec. VI tradeoff quantified)\n");

  // Zero-copy host packing (Sec. VI / [18]) on the STAGED path: one kernel
  // writing straight to pinned memory replaces pack + D2H.
  std::printf("\nSTAGED zero-copy packing, 1 node / 6 ranks, 1364^3, radius 3:\n");
  for (const bool zc : {false, true}) {
    stencil::Cluster cluster(stencil::topo::summit(), 1, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    double t = 0.0;
    cluster.run([&](stencil::RankCtx& ctx) {
      stencil::DistributedDomain dd(ctx, weak_scaling_domain(6));
      dd.set_radius(3);
      for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
      dd.set_methods(stencil::MethodFlags::kStaged);
      dd.set_staged_zero_copy(zc);
      dd.realize();
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      ctx.comm.barrier();
      if (ctx.rank() == 0) t = ctx.comm.wtime() - t0;
    });
    std::printf("  %-22s %9.3f ms\n", zc ? "zero-copy pack" : "pack + D2H", t * 1e3);
    if (emit_json) {
      ExchangeConfig cfg;
      cfg.nodes = 1;
      cfg.ranks_per_node = 6;
      cfg.domain = weak_scaling_domain(6);
      cfg.flags = stencil::MethodFlags::kStaged;
      json.add("staged_zero_copy", zc ? "zero_copy" : "pack_d2h", cfg, scalar_result(t * 1e3));
    }
  }
  std::printf("(zero-copy saves an op and a staging hop per message but holds the GPU\n"
              " for the host-link duration — [18]'s 'may be faster in some circumstances')\n");

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_ablation_pack: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
