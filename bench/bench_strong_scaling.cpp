// Reproduces Fig. 13: strong scaling of the exchange. The domain is the
// largest that fits one node with four SP quantities (1363^3) and is
// distributed over 1..256 nodes with 6 ranks and 6 GPUs per node.
//
// Expected shape: exchange time falls as nodes are added (each node's
// communication volume shrinks), on-node specialization matters most at
// small node counts, stops helping past ~32 nodes, and scaling tails off
// by 256 nodes when subdomains become tiny. No CUDA-aware configuration
// (the paper drops it after Fig. 12c).
#include <cstdio>
#include <cstdlib>

#include "common.h"

using namespace stencil::bench;

int main(int argc, char** argv) {
  const int max_nodes = argc > 1 ? std::atoi(argv[1]) : 256;

  std::printf("Fig. 13 reproduction: strong scaling, fixed 1363^3 domain\n");
  std::printf("6 ranks x 6 GPUs per node, radius 3, 4 SP quantities\n\n");

  for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
    ExchangeConfig cfg;
    cfg.nodes = nodes;
    cfg.ranks_per_node = 6;
    cfg.domain = {1363, 1363, 1363};
    cfg.iterations = 2;
    std::vector<std::pair<std::string, double>> cells;
    for (const auto& [name, flags] : capability_tiers(/*cuda_aware=*/false)) {
      cfg.flags = flags;
      cells.emplace_back(name, measure_exchange_ms(cfg));
    }
    print_row(cfg.label(), cells);
  }
  return 0;
}
