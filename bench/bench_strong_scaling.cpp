// Reproduces Fig. 13: strong scaling of the exchange. The domain is the
// largest that fits one node with four SP quantities (1363^3) and is
// distributed over 1..256 nodes with 6 ranks and 6 GPUs per node.
//
// Expected shape: exchange time falls as nodes are added (each node's
// communication volume shrinks), on-node specialization matters most at
// small node counts, stops helping past ~32 nodes, and scaling tails off
// by 256 nodes when subdomains become tiny. No CUDA-aware configuration
// (the paper drops it after Fig. 12c).
#include <cstdio>
#include <cstdlib>

#include "common.h"

using namespace stencil::bench;

int main(int argc, char** argv) {
  // bench_strong_scaling [max_nodes] [--json[=PATH]]
  const int max_nodes = positional_int(argc, argv, 256);
  std::string json_path;
  BenchJson json("strong_scaling");
  const bool emit_json = parse_json_flag(argc, argv, "strong_scaling", &json_path);

  std::printf("Fig. 13 reproduction: strong scaling, fixed 1363^3 domain\n");
  std::printf("6 ranks x 6 GPUs per node, radius 3, 4 SP quantities\n\n");

  for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
    ExchangeConfig cfg;
    cfg.nodes = nodes;
    cfg.ranks_per_node = 6;
    cfg.domain = {1363, 1363, 1363};
    cfg.iterations = 2;
    std::vector<std::pair<std::string, double>> cells;
    for (const auto& [name, flags] : capability_tiers(/*cuda_aware=*/false)) {
      cfg.flags = flags;
      const MeasureResult r = measure_exchange(cfg);
      cells.emplace_back(name, r.max_avg_ms);
      if (emit_json) json.add(cfg.label(), name, cfg, r);
    }
    print_row(cfg.label(), cells);
  }
  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_strong_scaling: %s\n", err.c_str());
      return 1;
    }
    std::printf("%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
