// Multi-tenant scheduling benchmark (DESIGN.md §15): three concurrent
// stencil jobs admitted onto one 4-node machine under each placement
// policy. Reports, per policy:
//
//   - aggregate exchange throughput (moved bytes over the wave makespan),
//   - per-tenant p95 exchange latency and the solo-baseline p95 of the same
//     job re-run alone on the identical slice,
//   - interference (co-run p95 / solo p95 - 1) and critical-path blame per
//     tenant (dtrace + telemetry::CriticalPath).
//
// Expected shape: kNodeAware isolates each tenant on its own node slice and
// achieves the lowest worst-tenant interference; kSpread fans every tenant
// across every NIC and pays the most. The bench exits non-zero if node-aware
// placement loses that comparison — CI runs it as an acceptance check.
//
// bench_multitenant [tenants] [--json[=PATH]]   (bench-v1 JSON rows:
// label = placement policy, variant = tenant name)
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common.h"
#include "sched/sched.h"

using namespace stencil::bench;
namespace sched = stencil::sched;
namespace topo = stencil::topo;

int main(int argc, char** argv) {
  const int tenants = positional_int(argc, argv, 3);
  if (tenants < 1 || tenants > 4) {
    std::fprintf(stderr, "bench_multitenant: tenants must be 1..4 (4-node machine)\n");
    return 2;
  }
  std::string json_path;
  BenchJson json("multitenant");
  const bool emit_json = parse_json_flag(argc, argv, "multitenant", &json_path);

  std::printf("multi-tenant scheduling: %d tenants x 4 GPUs, 4 nodes x 6 ranks\n", tenants);
  std::printf("96^3 per tenant, radius 2, 4 DP quantities, 5 iterations\n\n");

  struct PolicyRow {
    const char* name;
    sched::PlacePolicy place;
  };
  const std::vector<PolicyRow> policies = {
      {"packed", sched::PlacePolicy::kPacked},
      {"spread", sched::PlacePolicy::kSpread},
      {"node-aware", sched::PlacePolicy::kNodeAware},
  };

  double aware_worst = 0.0;
  double other_best_worst = 1e300;
  for (const auto& pol : policies) {
    stencil::Cluster cluster(topo::summit(), 4, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    sched::Scheduler::Options opt;
    opt.place = pol.place;
    opt.solo_baseline = true;
    opt.blame = true;
    sched::Scheduler scheduler(cluster, opt);
    for (int t = 0; t < tenants; ++t) {
      sched::JobSpec s;
      s.name = "tenant" + std::to_string(t);
      s.user = "bench";
      s.gpus = 4;
      s.domain = {96, 96, 96};
      s.radius = 2;
      s.quantities = 4;
      s.elem_size = 8;
      s.iterations = 5;
      s.methods = stencil::MethodFlags::kStaged | stencil::MethodFlags::kColocated |
                  stencil::MethodFlags::kPeer | stencil::MethodFlags::kKernel;
      scheduler.submit(s);
    }
    const sched::RunReport rep = scheduler.run();

    std::printf("== %s: %d wave(s), makespan %.3f ms, aggregate %.2f GB/s ==\n", pol.name,
                rep.waves, rep.makespan_ms, rep.aggregate_gb_s);
    double worst = 0.0;
    for (const auto& t : rep.tenants) {
      std::printf("  %-8s nodes=%zu  p95=%8.3f ms  solo=%8.3f ms  interference=%+6.1f%%"
                  "  blame=%8.3f ms\n",
                  t.name.c_str(), t.nodes.size(), t.p95_ms, t.solo_p95_ms,
                  t.interference * 100.0, t.blame_ms);
      if (t.interference > worst) worst = t.interference;
      if (emit_json) {
        ExchangeConfig cfg;
        cfg.nodes = t.vnodes;
        cfg.ranks_per_node = t.vnodes > 0 ? t.ranks / t.vnodes : t.ranks;
        cfg.domain = {96, 96, 96};
        cfg.radius = 2;
        cfg.quantities = 4;
        cfg.iterations = static_cast<int>(t.iter_ms.size());
        MeasureResult r;
        r.iter_ms = t.iter_ms;
        r.median_ms = t.median_ms;
        r.p95_ms = t.p95_ms;
        r.max_avg_ms = t.iter_ms.empty()
                           ? 0.0
                           : std::accumulate(t.iter_ms.begin(), t.iter_ms.end(), 0.0) /
                                 static_cast<double>(t.iter_ms.size());
        json.add(pol.name, t.name, cfg, r);
      }
    }
    std::printf("  worst-tenant interference: %+.1f%%  (cross-tenant verify findings: %zu)\n\n",
                worst * 100.0, rep.verify_findings);
    if (rep.verify_findings != 0) {
      std::fprintf(stderr, "bench_multitenant: cross-tenant verify found collisions\n");
      return 1;
    }
    if (pol.place == sched::PlacePolicy::kNodeAware) {
      aware_worst = worst;
    } else if (worst < other_best_worst) {
      other_best_worst = worst;
    }
  }

  if (tenants > 1 && aware_worst > other_best_worst + 1e-9) {
    std::fprintf(stderr,
                 "bench_multitenant: node-aware placement did not minimize interference "
                 "(%.4f vs best other %.4f)\n",
                 aware_worst, other_best_worst);
    return 1;
  }
  std::printf("node-aware worst-tenant interference %.4f <= best other policy %.4f\n",
              aware_worst, tenants > 1 ? other_best_worst : 0.0);

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_multitenant: %s\n", err.c_str());
      return 1;
    }
    std::printf("%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
