// Multi-tenant scheduling benchmark (DESIGN.md §15 + §16): three concurrent
// stencil jobs admitted onto one 4-node machine under each placement
// policy. Reports, per policy:
//
//   - aggregate exchange throughput (moved bytes over the wave makespan),
//   - per-tenant p95 exchange latency and the solo-baseline p95 of the same
//     job re-run alone on the identical slice,
//   - interference (co-run p95 / solo p95 - 1), the *online* interference
//     the attached stencil::watch estimated live (no solo re-run needed),
//     and critical-path blame per tenant (dtrace + telemetry::CriticalPath).
//
// Expected shape: kNodeAware isolates each tenant on its own node slice and
// achieves the lowest worst-tenant interference; kSpread fans every tenant
// across every NIC and pays the most. The bench exits non-zero if node-aware
// placement loses that comparison, if the online estimate disagrees with the
// post-hoc number beyond tolerance, or if live-cost placement under a
// degraded NIC loses to static placement — CI runs all three as acceptance
// checks.
//
// bench_multitenant [tenants] [--json[=PATH]]   (bench-v1 JSON rows:
// label = placement policy, variant = tenant name)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common.h"
#include "fault/fault.h"
#include "sched/sched.h"
#include "watch/watch.h"

using namespace stencil::bench;
namespace sched = stencil::sched;
namespace topo = stencil::topo;
namespace fault = stencil::fault;
namespace watch = stencil::watch;

int main(int argc, char** argv) {
  const int tenants = positional_int(argc, argv, 3);
  if (tenants < 1 || tenants > 4) {
    std::fprintf(stderr, "bench_multitenant: tenants must be 1..4 (4-node machine)\n");
    return 2;
  }
  std::string json_path;
  BenchJson json("multitenant");
  const bool emit_json = parse_json_flag(argc, argv, "multitenant", &json_path);

  std::printf("multi-tenant scheduling: %d tenants x 4 GPUs, 4 nodes x 6 ranks\n", tenants);
  std::printf("96^3 per tenant, radius 2, 4 DP quantities, 5 iterations\n\n");

  struct PolicyRow {
    const char* name;
    sched::PlacePolicy place;
  };
  const std::vector<PolicyRow> policies = {
      {"packed", sched::PlacePolicy::kPacked},
      {"spread", sched::PlacePolicy::kSpread},
      {"node-aware", sched::PlacePolicy::kNodeAware},
  };

  double aware_worst = 0.0;
  double other_best_worst = 1e300;
  int agree_failures = 0;
  for (const auto& pol : policies) {
    stencil::Cluster cluster(topo::summit(), 4, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    watch::Watch live;
    cluster.set_watch(&live);
    sched::Scheduler::Options opt;
    opt.place = pol.place;
    opt.solo_baseline = true;
    opt.blame = true;
    sched::Scheduler scheduler(cluster, opt);
    for (int t = 0; t < tenants; ++t) {
      sched::JobSpec s;
      s.name = "tenant" + std::to_string(t);
      s.user = "bench";
      s.gpus = 4;
      s.domain = {96, 96, 96};
      s.radius = 2;
      s.quantities = 4;
      s.elem_size = 8;
      s.iterations = 5;
      s.methods = stencil::MethodFlags::kStaged | stencil::MethodFlags::kColocated |
                  stencil::MethodFlags::kPeer | stencil::MethodFlags::kKernel;
      scheduler.submit(s);
    }
    const sched::RunReport rep = scheduler.run();

    std::printf("== %s: %d wave(s), makespan %.3f ms, aggregate %.2f GB/s ==\n", pol.name,
                rep.waves, rep.makespan_ms, rep.aggregate_gb_s);
    double worst = 0.0;
    for (const auto& t : rep.tenants) {
      std::printf("  %-8s nodes=%zu  p95=%8.3f ms  solo=%8.3f ms  interference=%+6.1f%%"
                  "  online=%+6.1f%%  blame=%8.3f ms\n",
                  t.name.c_str(), t.nodes.size(), t.p95_ms, t.solo_p95_ms,
                  t.interference * 100.0, t.online_interference * 100.0, t.blame_ms);
      if (t.interference > worst) worst = t.interference;
      // The live estimate must agree with the post-hoc solo-baseline number
      // at steady state: within 25% relative error, with a small absolute
      // floor for tenants whose interference is essentially zero (isolated
      // slices have nothing to measure).
      const double tol = std::max(0.25 * std::abs(t.interference), 0.05);
      if (std::abs(t.online_interference - t.interference) > tol) {
        std::fprintf(stderr,
                     "bench_multitenant: %s/%s online interference %.4f disagrees with "
                     "post-hoc %.4f (tolerance %.4f)\n",
                     pol.name, t.name.c_str(), t.online_interference, t.interference, tol);
        ++agree_failures;
      }
      if (emit_json) {
        ExchangeConfig cfg;
        cfg.nodes = t.vnodes;
        cfg.ranks_per_node = t.vnodes > 0 ? t.ranks / t.vnodes : t.ranks;
        cfg.domain = {96, 96, 96};
        cfg.radius = 2;
        cfg.quantities = 4;
        cfg.iterations = static_cast<int>(t.iter_ms.size());
        MeasureResult r;
        r.iter_ms = t.iter_ms;
        r.median_ms = t.median_ms;
        r.p95_ms = t.p95_ms;
        r.max_avg_ms = t.iter_ms.empty()
                           ? 0.0
                           : std::accumulate(t.iter_ms.begin(), t.iter_ms.end(), 0.0) /
                                 static_cast<double>(t.iter_ms.size());
        json.add(pol.name, t.name, cfg, r);
      }
    }
    std::printf("  worst-tenant interference: %+.1f%%  (cross-tenant verify findings: %zu)\n\n",
                worst * 100.0, rep.verify_findings);
    if (rep.verify_findings != 0) {
      std::fprintf(stderr, "bench_multitenant: cross-tenant verify found collisions\n");
      return 1;
    }
    if (pol.place == sched::PlacePolicy::kNodeAware) {
      aware_worst = worst;
    } else if (worst < other_best_worst) {
      other_best_worst = worst;
    }
  }

  if (tenants > 1 && aware_worst > other_best_worst + 1e-9) {
    std::fprintf(stderr,
                 "bench_multitenant: node-aware placement did not minimize interference "
                 "(%.4f vs best other %.4f)\n",
                 aware_worst, other_best_worst);
    return 1;
  }
  std::printf("node-aware worst-tenant interference %.4f <= best other policy %.4f\n",
              aware_worst, tenants > 1 ? other_best_worst : 0.0);
  if (agree_failures != 0) {
    std::fprintf(stderr, "bench_multitenant: %d online-vs-posthoc disagreement(s)\n",
                 agree_failures);
    return 1;
  }

  // --- live link-cost feedback under a degraded NIC ------------------------
  // Node 0's NIC runs at 25% from t=0. A whole-machine calibration job
  // teaches the watch every wire's cost (its wave end publishes the
  // factors), then one 12-rank job is placed node-aware: the static-cost
  // run ties node choice by id and lands on the degraded node 0; the
  // live-cost run reads the published factors and routes around it.
  std::printf("\n== degraded-link placement (node 0 NIC at 25%%) ==\n");
  const auto degraded_run = [&](bool live_costs) {
    fault::FaultPlan plan;
    plan.degrade_link(0, fault::LinkClass::kNic, 0, -1, 0.25);
    plan.degrade_link(0, fault::LinkClass::kNic, -1, 0, 0.25);
    fault::Injector inj(plan);
    stencil::Cluster cluster(topo::summit(), 4, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    cluster.set_fault_injector(&inj);
    watch::Watch live;
    cluster.set_watch(&live);
    sched::Scheduler::Options opt;
    opt.place = sched::PlacePolicy::kNodeAware;
    opt.live_costs = live_costs;
    sched::Scheduler scheduler(cluster, opt);
    sched::JobSpec calib;
    calib.name = "calibrate";
    calib.user = "bench";
    calib.gpus = 24;
    calib.domain = {96, 96, 96};
    calib.radius = 2;
    calib.quantities = 1;
    calib.elem_size = 8;
    calib.iterations = 2;
    scheduler.submit(calib);
    scheduler.run();

    sched::JobSpec j;
    j.name = "measured";
    j.user = "bench";
    j.gpus = 12;
    j.domain = {96, 96, 96};
    j.radius = 2;
    j.quantities = 4;
    j.elem_size = 8;
    j.iterations = 5;
    scheduler.submit(j);
    return scheduler.run();
  };
  const sched::RunReport stat_rep = degraded_run(false);
  const sched::RunReport live_rep = degraded_run(true);
  const auto nodes_str = [](const std::vector<int>& ns) {
    std::string s;
    for (const int n : ns) s += (s.empty() ? "n" : ",n") + std::to_string(n);
    return s;
  };
  std::printf("  static costs: nodes=%-9s aggregate %.2f GB/s\n",
              nodes_str(stat_rep.tenants.front().nodes).c_str(), stat_rep.aggregate_gb_s);
  std::printf("  live costs:   nodes=%-9s aggregate %.2f GB/s\n",
              nodes_str(live_rep.tenants.front().nodes).c_str(), live_rep.aggregate_gb_s);
  if (live_rep.aggregate_gb_s + 1e-9 < stat_rep.aggregate_gb_s) {
    std::fprintf(stderr,
                 "bench_multitenant: live-cost node-aware placement (%.3f GB/s) lost to "
                 "static placement (%.3f GB/s) under a degraded link\n",
                 live_rep.aggregate_gb_s, stat_rep.aggregate_gb_s);
    return 1;
  }
  if (emit_json) {
    ExchangeConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 6;
    cfg.domain = {96, 96, 96};
    cfg.radius = 2;
    cfg.quantities = 4;
    cfg.iterations = 5;
    for (const auto* rr : {&stat_rep, &live_rep}) {
      const sched::TenantReport& t = rr->tenants.front();
      MeasureResult r;
      r.iter_ms = t.iter_ms;
      r.median_ms = t.median_ms;
      r.p95_ms = t.p95_ms;
      r.max_avg_ms = t.iter_ms.empty()
                         ? 0.0
                         : std::accumulate(t.iter_ms.begin(), t.iter_ms.end(), 0.0) /
                               static_cast<double>(t.iter_ms.size());
      json.add("degraded-link", rr == &stat_rep ? "static-costs" : "live-costs", cfg, r);
    }
  }

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_multitenant: %s\n", err.c_str());
      return 1;
    }
    std::printf("%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
