// Reproduces Fig. 3 (partition surface-to-volume comparison) and Fig. 4
// (the hierarchical prime-factor decomposition walkthrough).
#include <cstdio>
#include <string>

#include "common.h"
#include "core/partition.h"

using stencil::Dim3;
using stencil::bench::BenchJson;
using stencil::bench::ExchangeConfig;
using stencil::bench::scalar_result;

namespace {

/// bench-v1 row config for the analytic tables: the partition geometry,
/// no simulated exchange behind it.
ExchangeConfig volume_cfg(Dim3 dom, int nodes, int gpus, int radius) {
  ExchangeConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = gpus;
  cfg.domain = dom;
  cfg.radius = radius;
  return cfg;
}

// Fig. 3: a 2D domain split four ways; report the per-subdomain and total
// communication volume for each partition shape (radius r, non-periodic
// surface counting as the figure draws it).
void fig3(BenchJson* json) {
  std::printf("== Fig. 3: partition shape vs communication volume ==\n");
  const Dim3 dom{36, 36, 1};
  const int r = 1;
  struct Case {
    const char* name;
    Dim3 ext;
  } cases[] = {{"2x2", {2, 2, 1}}, {"4x1", {4, 1, 1}}, {"3x3", {3, 3, 1}}, {"9x1", {9, 1, 1}}};
  std::printf("  domain %lldx%lld, radius %d\n", static_cast<long long>(dom.x),
              static_cast<long long>(dom.y), r);
  std::printf("  %-6s %-14s %-18s %-18s\n", "parts", "subdomain", "V_s (per sub)", "V_d (total)");
  for (const auto& c : cases) {
    const Dim3 sz = stencil::subdomain_size(dom, c.ext, {0, 0, 0});
    // Interior-surface counting (as the figure illustrates): each internal
    // face of each subdomain exchanges a radius-thick slab.
    std::int64_t total = 0;
    std::int64_t per_sub = 0;
    for (std::int64_t i = 0; i < c.ext.volume(); ++i) {
      const Dim3 idx = Dim3::from_linear(i, c.ext);
      std::int64_t mine = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const Dim3 nbr = idx + Dim3{dx, dy, 0};
          if (!nbr.inside(c.ext)) continue;
          mine += stencil::halo_volume(stencil::subdomain_size(dom, c.ext, idx), {dx, dy, 0}, r);
        }
      }
      if (i == 0) per_sub = mine;
      total += mine;
    }
    std::printf("  %-6s %4lldx%-9lld %-18lld %-18lld\n", c.name, static_cast<long long>(sz.x),
                static_cast<long long>(sz.y), static_cast<long long>(per_sub),
                static_cast<long long>(total));
    if (json != nullptr) {
      const auto cfg = volume_cfg(dom, 1, static_cast<int>(c.ext.volume()), r);
      json->add("fig3/" + std::string(c.name), "volume_per_sub", cfg,
                scalar_result(static_cast<double>(per_sub)));
      json->add("fig3/" + std::string(c.name), "volume_total", cfg,
                scalar_result(static_cast<double>(total)));
    }
  }
  std::printf("  -> for a fixed part count, the more cubical partition moves less data\n\n");
}

// Fig. 4: decompose 4x24x2 across 12 nodes of 4 GPUs and show both levels.
void fig4() {
  std::printf("== Fig. 4: hierarchical prime-factor decomposition ==\n");
  const Dim3 dom{4, 24, 2};
  stencil::HierarchicalPartition hp(dom, 12, 4);
  std::printf("  domain %s, 12 nodes x 4 GPUs\n", dom.str().c_str());
  std::printf("  prime factors of 12 (desc):");
  for (auto f : stencil::prime_factors_desc(12)) std::printf(" %lld", static_cast<long long>(f));
  std::printf("\n");
  std::printf("  node-level index space:  %s   (paper: [2,6,1])\n",
              hp.node_extent().str().c_str());
  std::printf("  GPU-level index space:   %s   (paper: y by 2, then x by 2)\n",
              hp.gpu_extent().str().c_str());
  std::printf("  composed global space:   %s\n", hp.global_extent().str().c_str());
  const Dim3 example = hp.global_index({1, 2, 0}, {0, 1, 0});
  std::printf("  example: node [1,2,0], GPU [0,1,0] -> global %s, size %s, origin %s\n",
              example.str().c_str(), hp.subdomain_size(example).str().c_str(),
              hp.subdomain_origin(example).str().c_str());
  std::printf("\n");
}

// Hierarchy payoff: inter-node volume of hierarchical vs flat partitions.
void hierarchy_table(BenchJson* json) {
  std::printf("== hierarchical vs flat partition: inter-node exchange volume (r=3) ==\n");
  struct Case {
    Dim3 dom;
    int nodes, gpus;
  } cases[] = {
      {{1440, 1440, 720}, 16, 6}, {{2048, 2048, 2048}, 64, 6}, {{4, 24, 2}, 12, 4},
      {{3000, 500, 500}, 8, 6},
  };
  std::printf("  %-22s %-8s %-16s %-16s %-8s\n", "domain", "nodes", "hierarchical", "flat",
              "ratio");
  for (const auto& c : cases) {
    stencil::HierarchicalPartition hp(c.dom, c.nodes, c.gpus);
    stencil::FlatPartition fp(c.dom, c.nodes, c.gpus);
    const auto h = hp.internode_exchange_volume(3);
    const auto f = fp.internode_exchange_volume(3);
    std::printf("  %-22s %-8d %-16lld %-16lld %.3f\n", c.dom.str().c_str(), c.nodes,
                static_cast<long long>(h), static_cast<long long>(f),
                static_cast<double>(h) / static_cast<double>(f));
    if (json != nullptr) {
      const auto cfg = volume_cfg(c.dom, c.nodes, c.gpus, 3);
      const std::string label = c.dom.str() + "/" + std::to_string(c.nodes) + "n";
      json->add(label, "hierarchical", cfg, scalar_result(static_cast<double>(h)));
      json->add(label, "flat", cfg, scalar_result(static_cast<double>(f)));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("partition");
  const bool emit_json = stencil::bench::parse_json_flag(argc, argv, "partition", &json_path);
  BenchJson* jp = emit_json ? &json : nullptr;

  fig3(jp);
  fig4();
  hierarchy_table(jp);

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_partition: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
