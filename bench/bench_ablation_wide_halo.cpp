// Ablation: trading halo width against exchange frequency (paper §VI,
// citing SkelCL [22]): with a radius-(k*r) halo, a radius-r stencil can
// take k time steps between exchanges. Fewer, larger exchanges mean fewer
// synchronization points but superlinearly more transferred data (and
// redundant computation, which this communication-focused model ignores).
//
// Reports simulated exchange time per *time step* for k = 1, 2, 4, 8.
#include <cstdio>

#include "common.h"

using namespace stencil::bench;

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("ablation_wide_halo");
  const bool emit_json = parse_json_flag(argc, argv, "ablation_wide_halo", &json_path);

  std::printf("Ablation: halo width vs exchange frequency (2 nodes, 6r/6g, base radius 1)\n\n");
  std::printf("%-4s %-10s %-16s %-20s\n", "k", "radius", "per exchange", "amortized per step");
  for (const int k : {1, 2, 4, 8}) {
    ExchangeConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 6;
    cfg.domain = weak_scaling_domain(12);
    cfg.radius = k;  // base radius 1, k steps per exchange
    cfg.quantities = 4;
    cfg.flags = stencil::MethodFlags::kAll;
    const double ms = measure_exchange_ms(cfg);
    std::printf("%-4d %-10d %10.3f ms    %10.3f ms\n", k, k, ms, ms / k);
    if (emit_json) {
      const std::string label = "k" + std::to_string(k);
      json.add(label, "per_exchange", cfg, scalar_result(ms));
      json.add(label, "amortized_per_step", cfg, scalar_result(ms / k));
    }
  }
  std::printf("\n(the per-step optimum depends on how latency-bound the exchange is:\n"
              " wider halos amortize fixed costs until bandwidth dominates)\n");

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_ablation_wide_halo: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
