// Ablation: hierarchical (node-first) vs flat (all-GPUs-at-once)
// partitioning. The paper's §III-A argues node-first bisection minimizes
// the slow inter-node communication even when it does not minimize total
// communication; this quantifies both sides, in volume and exchange time.
#include <cstdio>

#include "common.h"
#include "core/partition.h"

using namespace stencil::bench;
using stencil::Dim3;

int main(int argc, char** argv) {
  std::string json_path;
  BenchJson json("ablation_partition");
  const bool emit_json = parse_json_flag(argc, argv, "ablation_partition", &json_path);

  std::printf("Ablation: hierarchical vs flat partitioning (radius 3)\n\n");
  struct Case {
    Dim3 dom;
    int nodes;
  } cases[] = {{{1440, 1440, 720}, 8}, {{2163, 2163, 2163}, 4}, {{3000, 500, 500}, 8},
               {{1717, 1717, 1717}, 2}};

  std::printf("%-24s %-6s %-18s %-18s %-10s\n", "domain", "nodes", "internode(hier)",
              "internode(flat)", "ratio");
  for (const auto& c : cases) {
    stencil::HierarchicalPartition hp(c.dom, c.nodes, 6);
    stencil::FlatPartition fp(c.dom, c.nodes, 6);
    const auto h = hp.internode_exchange_volume(3);
    const auto f = fp.internode_exchange_volume(3);
    std::printf("%-24s %-6d %-18lld %-18lld %.3f\n", c.dom.str().c_str(), c.nodes,
                static_cast<long long>(h), static_cast<long long>(f),
                static_cast<double>(h) / static_cast<double>(f));
    if (emit_json) {
      ExchangeConfig cfg;
      cfg.nodes = c.nodes;
      cfg.ranks_per_node = 6;
      cfg.domain = c.dom;
      const std::string label = c.dom.str() + "/" + std::to_string(c.nodes) + "n";
      json.add(label, "internode_hier", cfg, scalar_result(static_cast<double>(h)));
      json.add(label, "internode_flat", cfg, scalar_result(static_cast<double>(f)));
      json.add(label, "total_hier", cfg,
               scalar_result(static_cast<double>(hp.total_exchange_volume(3))));
    }
  }

  std::printf("\nTotal exchange volume (hier may be larger overall — the tradeoff §III-A accepts):\n");
  for (const auto& c : cases) {
    stencil::HierarchicalPartition hp(c.dom, c.nodes, 6);
    std::printf("%-24s %-6d total=%lld internode=%lld (%.1f%% crosses nodes)\n",
                c.dom.str().c_str(), c.nodes,
                static_cast<long long>(hp.total_exchange_volume(3)),
                static_cast<long long>(hp.internode_exchange_volume(3)),
                100.0 * static_cast<double>(hp.internode_exchange_volume(3)) /
                    static_cast<double>(hp.total_exchange_volume(3)));
  }

  if (emit_json) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_ablation_partition: %s\n", err.c_str());
      return 1;
    }
    std::printf("\nwrote %zu rows to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
