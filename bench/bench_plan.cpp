// Eager vs planned (persistent) exchanges. Plans pay off where per-message
// *setup* cost — request posting, per-op kernel/copy issue — is a visible
// fraction of the exchange: small messages. Two sweeps:
//
//  1. Strong scaling over a deliberately small fixed domain: as nodes are
//     added the per-GPU halo messages shrink, so the planned speedup should
//     grow with the node count.
//  2. A message-size sweep at a fixed 2-node job: the advantage should fade
//     as the domain edge (and with it every message) grows and bandwidth
//     dominates issue cost.
//
// Planned runs compile their schedule during the untimed warm-up exchange,
// so the timed iterations measure pure replay (persistent MPI_Start + graph
// launches), exactly the steady state an iterative stencil solver lives in.
#include <cstdio>
#include <cstdlib>

#include "common.h"

using namespace stencil::bench;
using stencil::MethodFlags;

namespace {

double speedup(double eager_ms, double planned_ms) {
  return planned_ms > 0.0 ? eager_ms / planned_ms : 0.0;
}

void run_pair(ExchangeConfig cfg, const std::string& label, BenchJson* json) {
  cfg.persistent = false;
  const MeasureResult eager = measure_exchange(cfg);
  if (json != nullptr) json->add(label, "eager", cfg, eager);
  cfg.persistent = true;
  const MeasureResult planned = measure_exchange(cfg);
  if (json != nullptr) json->add(label, "planned", cfg, planned);
  std::printf("%-26s  eager=%9.3f ms  planned=%9.3f ms  speedup=%5.2fx\n", label.c_str(),
              eager.max_avg_ms, planned.max_avg_ms,
              speedup(eager.max_avg_ms, planned.max_avg_ms));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_nodes = positional_int(argc, argv, 16);
  std::string json_path;
  BenchJson json("plan");
  BenchJson* jp = parse_json_flag(argc, argv, "plan", &json_path) ? &json : nullptr;

  std::printf("Exchange plans: eager vs planned (persistent) replay\n\n");

  std::printf("strong scaling, fixed 254^3 domain (small messages), radius 1, 1 quantity\n");
  for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
    ExchangeConfig cfg;
    cfg.nodes = nodes;
    cfg.ranks_per_node = 6;
    cfg.domain = {254, 254, 254};
    cfg.radius = 1;
    cfg.quantities = 1;
    cfg.flags = MethodFlags::kAll;
    cfg.iterations = 4;
    run_pair(cfg, cfg.label(), jp);
  }

  std::printf("\nmessage-size sweep, 2 nodes x 6 ranks, radius 1, 1 quantity\n");
  for (std::int64_t edge = 96; edge <= 768; edge *= 2) {
    ExchangeConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 6;
    cfg.domain = {edge, edge, edge};
    cfg.radius = 1;
    cfg.quantities = 1;
    cfg.flags = MethodFlags::kAll;
    cfg.iterations = 4;
    run_pair(cfg, std::to_string(edge) + "^3", jp);
  }
  if (jp != nullptr) {
    std::string err;
    if (!json.write(json_path, &err)) {
      std::fprintf(stderr, "bench_plan: %s\n", err.c_str());
      return 1;
    }
    std::printf("\n%zu rows written to %s\n", json.rows(), json_path.c_str());
  }
  return 0;
}
