#include "core/local_domain.h"

#include <cstring>
#include <stdexcept>

namespace stencil {

LocalDomain::LocalDomain(vgpu::Runtime& rt, int ggpu, Dim3 global_idx, Dim3 origin, Dim3 sz,
                         Radius radius, const std::vector<Quantity>& quantities)
    : rt_(rt),
      ggpu_(ggpu),
      global_idx_(global_idx),
      origin_(origin),
      sz_(sz),
      radius_(radius),
      quantities_(quantities) {
  if (radius_.min() < 0) throw std::invalid_argument("LocalDomain: negative radius");
  if (sz_.x <= 0 || sz_.y <= 0 || sz_.z <= 0) {
    throw std::invalid_argument("LocalDomain: empty subdomain " + sz_.str());
  }
  for (const auto& q : quantities_) bytes_per_point_ += q.elem_size;
  const Dim3 st = storage();
  data_.reserve(quantities_.size());
  for (const auto& q : quantities_) {
    data_.push_back(rt_.alloc_device(ggpu_, static_cast<std::size_t>(st.volume()) * q.elem_size));
  }
  compute_stream_ = rt_.create_stream(ggpu_);
}

template <typename Fn>
void LocalDomain::for_each_row(const Region3& region, std::size_t q, Fn&& fn) const {
  // Rows are contiguous runs along x; the region's rows are strided in the
  // (sz + 2r)^3 storage box.
  const Dim3 st = storage();
  const std::size_t e = quantities_[q].elem_size;
  const std::size_t row_bytes = static_cast<std::size_t>(region.extent.x) * e;
  for (std::int64_t z = 0; z < region.extent.z; ++z) {
    for (std::int64_t y = 0; y < region.extent.y; ++y) {
      const Dim3 ho = radius_.offsets();
      const std::int64_t sx = region.origin.x + ho.x;
      const std::int64_t sy = region.origin.y + y + ho.y;
      const std::int64_t sz2 = region.origin.z + z + ho.z;
      const std::size_t off = static_cast<std::size_t>(((sz2 * st.y + sy) * st.x + sx)) * e;
      fn(off, row_bytes);
    }
  }
}

namespace {
std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> qs(n);
  for (std::size_t i = 0; i < n; ++i) qs[i] = i;
  return qs;
}
}  // namespace

void LocalDomain::pack_region(vgpu::Buffer& dst, const Region3& region) const {
  pack_region(dst, region, all_indices(quantities_.size()));
}

void LocalDomain::unpack_region(const vgpu::Buffer& src, const Region3& region) {
  unpack_region(src, region, all_indices(quantities_.size()));
}

void LocalDomain::pack_region(vgpu::Buffer& dst, const Region3& region,
                              const std::vector<std::size_t>& qs) const {
  if (dst.mode() != vgpu::MemMode::kMaterialized) return;
  std::size_t cursor = 0;
  for (std::size_t q : qs) {
    if (data_[q].mode() != vgpu::MemMode::kMaterialized) continue;
    const std::byte* src = data_[q].data();
    for_each_row(region, q, [&](std::size_t off, std::size_t row_bytes) {
      if (cursor + row_bytes > dst.size()) {
        throw std::out_of_range("pack_region: destination buffer too small");
      }
      std::memcpy(dst.data() + cursor, src + off, row_bytes);
      cursor += row_bytes;
    });
  }
}

void LocalDomain::unpack_region(const vgpu::Buffer& src, const Region3& region,
                                const std::vector<std::size_t>& qs) {
  if (src.mode() != vgpu::MemMode::kMaterialized) return;
  std::size_t cursor = 0;
  for (std::size_t q : qs) {
    if (data_[q].mode() != vgpu::MemMode::kMaterialized) continue;
    std::byte* dst = data_[q].data();
    for_each_row(region, q, [&](std::size_t off, std::size_t row_bytes) {
      if (cursor + row_bytes > src.size()) {
        throw std::out_of_range("unpack_region: source buffer too small");
      }
      std::memcpy(dst + off, src.data() + cursor, row_bytes);
      cursor += row_bytes;
    });
  }
}

void LocalDomain::append_region_accesses(const Region3& region, const std::vector<std::size_t>& qs,
                                         bool write, vgpu::AccessList& out) const {
  for (std::size_t q : qs) {
    const vgpu::Buffer& b = data_[q];
    for_each_row(region, q, [&](std::size_t off, std::size_t row_bytes) {
      if (!out.empty() && out.back().buf == &b && out.back().write == write &&
          out.back().offset + out.back().bytes == off) {
        out.back().bytes += row_bytes;
      } else {
        out.push_back({&b, off, row_bytes, write});
      }
    });
  }
}

void LocalDomain::append_region_accesses(const Region3& region, bool write,
                                         vgpu::AccessList& out) const {
  append_region_accesses(region, all_indices(quantities_.size()), write, out);
}

void LocalDomain::copy_region(const LocalDomain& src, const Region3& src_region, LocalDomain& dst,
                              const Region3& dst_region, std::size_t q) {
  if (src_region.extent != dst_region.extent) {
    throw std::logic_error("copy_region: region shapes differ");
  }
  if (src.data_[q].mode() != vgpu::MemMode::kMaterialized ||
      dst.data_[q].mode() != vgpu::MemMode::kMaterialized) {
    return;
  }
  const std::byte* sp = src.data_[q].data();
  std::byte* dp = dst.data_[q].data();
  const std::size_t e = src.quantities_[q].elem_size;
  const Dim3 sst = src.storage();
  const Dim3 dst_st = dst.storage();
  const Dim3 soff = src.radius_.offsets();
  const Dim3 doff = dst.radius_.offsets();
  const std::size_t row = static_cast<std::size_t>(src_region.extent.x) * e;
  for (std::int64_t z = 0; z < src_region.extent.z; ++z) {
    for (std::int64_t y = 0; y < src_region.extent.y; ++y) {
      const std::size_t so =
          static_cast<std::size_t>(((src_region.origin.z + z + soff.z) * sst.y +
                                    (src_region.origin.y + y + soff.y)) *
                                       sst.x +
                                   (src_region.origin.x + soff.x)) *
          e;
      const std::size_t dofs =
          static_cast<std::size_t>(((dst_region.origin.z + z + doff.z) * dst_st.y +
                                    (dst_region.origin.y + y + doff.y)) *
                                       dst_st.x +
                                   (dst_region.origin.x + doff.x)) *
          e;
      std::memcpy(dp + dofs, sp + so, row);
    }
  }
}

void LocalDomain::self_exchange(Dim3 dir) {
  self_exchange(dir, all_indices(quantities_.size()));
}

void LocalDomain::self_exchange(Dim3 dir, const std::vector<std::size_t>& qs) {
  const Region3 src = interior_slab(sz_, dir, radius_);
  const Region3 dst = halo_slab(sz_, dir, radius_);
  if (src.extent != dst.extent) {
    throw std::logic_error("self_exchange: slab shape mismatch");
  }
  for (std::size_t q : qs) {
    if (data_[q].mode() != vgpu::MemMode::kMaterialized) continue;
    std::byte* base = data_[q].data();
    const std::size_t e = quantities_[q].elem_size;
    const Dim3 st = storage();
    const std::size_t row_bytes = static_cast<std::size_t>(src.extent.x) * e;
    for (std::int64_t z = 0; z < src.extent.z; ++z) {
      for (std::int64_t y = 0; y < src.extent.y; ++y) {
        auto off = [&](const Region3& r) {
          const Dim3 ho = radius_.offsets();
          const std::int64_t sx = r.origin.x + ho.x;
          const std::int64_t sy = r.origin.y + y + ho.y;
          const std::int64_t sz2 = r.origin.z + z + ho.z;
          return static_cast<std::size_t>(((sz2 * st.y + sy) * st.x + sx)) * e;
        };
        std::memmove(base + off(dst), base + off(src), row_bytes);
      }
    }
  }
}

}  // namespace stencil
