#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/dim3.h"
#include "core/region.h"

namespace stencil {

/// Domain boundary handling. Periodic wraps neighbor indices around the
/// global index space (the paper's evaluation setting); Fixed means
/// boundary subdomains simply have no neighbor in outward directions and
/// their outer halo is left for the application (e.g. Dirichlet values).
enum class Boundary {
  kPeriodic,
  kFixed,
};

inline const char* to_string(Boundary b) {
  return b == Boundary::kPeriodic ? "periodic" : "fixed";
}

/// The subdomain adjacent to `idx` in direction `dir` under the given
/// boundary rule, or nullopt when there is none (fixed boundary edge).
inline std::optional<Dim3> neighbor_index(Dim3 idx, Dim3 dir, Dim3 extent, Boundary b) {
  const Dim3 raw = idx + dir;
  if (b == Boundary::kPeriodic) return raw.wrap(extent);
  if (!raw.inside(extent)) return std::nullopt;
  return raw;
}

/// Prime factors of n, sorted descending (12 -> {3, 2, 2}). The descending
/// order gives the most opportunities to divide the longest axis, keeping
/// subdomains as cubical as possible (paper §III-A).
std::vector<std::int64_t> prime_factors_desc(std::int64_t n);

/// Recursive inertial bisection: split `domain` into `parts` boxes by
/// repeatedly dividing the (currently) longest axis by the next prime
/// factor. Returns the partition counts per dimension, with
/// extent.x * extent.y * extent.z == parts. Ties prefer x, then y, then z,
/// which reproduces the paper's Fig. 4 walkthrough.
Dim3 partition_extent(Dim3 domain, int parts);

/// Size of the subdomain at `idx` when `domain` is split into `extent`
/// parts per dimension. Balanced split: the first (domain % extent) parts
/// along a dimension get one extra grid point.
Dim3 subdomain_size(Dim3 domain, Dim3 extent, Dim3 idx);

/// Origin (inclusive, in global grid coordinates) of the subdomain at `idx`.
Dim3 subdomain_origin(Dim3 domain, Dim3 extent, Dim3 idx);

/// Grid points a subdomain of `size` sends to all 26 neighbors in one
/// exchange of a radius-`radius` stencil (faces + edges + corners), i.e.
/// the per-subdomain communication volume V_s of Fig. 3 generalized to 3D.
/// A 2D domain is expressed with z extent 1 (its z faces exchange nothing
/// only under non-periodic conditions; this helper counts the face set
/// selected by `dims`, the number of dimensions actually decomposed).
std::int64_t sent_halo_volume(Dim3 size, int radius);
// halo_volume(sz, dir, radius) lives in core/region.h (asymmetric-aware).

/// The paper's two-level decomposition: the domain is first partitioned
/// across nodes, then each node's block across its GPUs, both with
/// partition_extent(). The two index spaces compose into one global space
/// (node index major, GPU index minor per dimension); subdomain shapes come
/// from a balanced split of the whole domain by the composed extent, so
/// every subdomain is within one grid point of its neighbors per dimension.
class HierarchicalPartition {
 public:
  HierarchicalPartition(Dim3 domain, int num_nodes, int gpus_per_node);

  Dim3 domain() const { return domain_; }
  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }

  /// Partition counts across nodes (first level).
  Dim3 node_extent() const { return node_extent_; }
  /// Partition counts across GPUs within one node (second level).
  Dim3 gpu_extent() const { return gpu_extent_; }
  /// Composed global index space: node_extent * gpu_extent.
  Dim3 global_extent() const { return node_extent_ * gpu_extent_; }

  /// Compose (node index, gpu index) into a global subdomain index.
  Dim3 global_index(Dim3 node_idx, Dim3 gpu_idx) const {
    return node_idx * gpu_extent_ + gpu_idx;
  }
  /// Split a global subdomain index into (node index, gpu index).
  std::pair<Dim3, Dim3> split_index(Dim3 global_idx) const;

  Dim3 subdomain_size(Dim3 global_idx) const;
  Dim3 subdomain_origin(Dim3 global_idx) const;

  /// Total grid points crossing node boundaries in one radius-r exchange —
  /// the quantity the node-first split minimizes (used by the ablation).
  std::int64_t internode_exchange_volume(int radius) const;
  /// Total grid points crossing any subdomain boundary.
  std::int64_t total_exchange_volume(int radius) const;

 private:
  Dim3 domain_;
  int num_nodes_;
  int gpus_per_node_;
  Dim3 node_extent_;
  Dim3 gpu_extent_;
};

/// Flat (single-level) partition of the domain across all GPUs at once;
/// the baseline against which the hierarchical scheme's inter-node volume
/// reduction is measured.
class FlatPartition {
 public:
  FlatPartition(Dim3 domain, int num_nodes, int gpus_per_node);

  Dim3 global_extent() const { return extent_; }
  Dim3 subdomain_size(Dim3 idx) const { return stencil::subdomain_size(domain_, extent_, idx); }
  Dim3 subdomain_origin(Dim3 idx) const { return stencil::subdomain_origin(domain_, extent_, idx); }

  /// Node owning a global subdomain index under linearized assignment.
  int node_of(Dim3 idx) const;

  std::int64_t internode_exchange_volume(int radius) const;

 private:
  Dim3 domain_;
  int num_nodes_;
  int gpus_per_node_;
  Dim3 extent_;
};

}  // namespace stencil
