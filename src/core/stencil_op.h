#pragma once

#include <cstdint>

#include "core/local_domain.h"
#include "core/region.h"

namespace stencil {

/// Iterate fn(x, y, z) over every interior point of a subdomain.
template <typename Fn>
void for_interior(const LocalDomain& ld, Fn&& fn) {
  const Dim3 s = ld.size();
  for (std::int64_t z = 0; z < s.z; ++z)
    for (std::int64_t y = 0; y < s.y; ++y)
      for (std::int64_t x = 0; x < s.x; ++x) fn(x, y, z);
}

/// Iterate fn(x, y, z) over one region (interior coordinates).
template <typename Fn>
void for_region(const Region3& r, Fn&& fn) {
  for (std::int64_t z = r.origin.z; z < r.origin.z + r.extent.z; ++z)
    for (std::int64_t y = r.origin.y; y < r.origin.y + r.extent.y; ++y)
      for (std::int64_t x = r.origin.x; x < r.origin.x + r.extent.x; ++x) fn(x, y, z);
}

/// The interior *core*: interior points whose stencil (of this radius) does
/// not read any halo cell. A core update needs no exchange, so it can run
/// between exchange_start() and exchange_finish().
inline Region3 interior_core(const LocalDomain& ld) {
  const Radius& r = ld.radius();
  const Dim3 s = ld.size();
  return Region3{{r.neg(0), r.neg(1), r.neg(2)},
                 {s.x - r.neg(0) - r.pos(0), s.y - r.neg(1) - r.pos(1),
                  s.z - r.neg(2) - r.pos(2)}};
}

/// The boundary shell: interior points *not* in the core. Callers iterate
/// the (up to six) face slabs this yields; fn receives each slab region.
/// Slabs are disjoint and together with interior_core() tile the interior.
template <typename Fn>
void for_boundary_shell(const LocalDomain& ld, Fn&& fn) {
  const Radius& r = ld.radius();
  const Dim3 s = ld.size();
  const Region3 core = interior_core(ld);
  // -x / +x full-height slabs.
  if (r.neg(0) > 0) fn(Region3{{0, 0, 0}, {r.neg(0), s.y, s.z}});
  if (r.pos(0) > 0) fn(Region3{{s.x - r.pos(0), 0, 0}, {r.pos(0), s.y, s.z}});
  // -y / +y slabs excluding the x slabs.
  const std::int64_t x0 = core.origin.x;
  const std::int64_t xw = core.extent.x;
  if (r.neg(1) > 0) fn(Region3{{x0, 0, 0}, {xw, r.neg(1), s.z}});
  if (r.pos(1) > 0) fn(Region3{{x0, s.y - r.pos(1), 0}, {xw, r.pos(1), s.z}});
  // -z / +z slabs excluding both.
  const std::int64_t y0 = core.origin.y;
  const std::int64_t yw = core.extent.y;
  if (r.neg(2) > 0) fn(Region3{{x0, y0, 0}, {xw, yw, r.neg(2)}});
  if (r.pos(2) > 0) fn(Region3{{x0, y0, s.z - r.pos(2)}, {xw, yw, r.pos(2)}});
}

}  // namespace stencil
