#pragma once

#include "core/dim3.h"
#include "core/radius.h"

namespace stencil {

/// A box within a subdomain's storage, in interior coordinates: origin may
/// be negative (halo cells live at [-neg, 0) and [sz, sz + pos)).
struct Region3 {
  Dim3 origin;
  Dim3 extent;

  std::int64_t volume() const { return extent.volume(); }
};

/// The slab of a subdomain's *interior* sent toward direction `dir`
/// (each component in {-1, 0, 1}): against the face in non-zero dims,
/// with the width the *receiver's* halo needs, full interior extent in
/// zero dims. (An int radius converts implicitly to a uniform Radius.)
inline Region3 interior_slab(Dim3 sz, Dim3 dir, Radius r) {
  Region3 out;
  const std::int64_t s[3] = {sz.x, sz.y, sz.z};
  const std::int64_t d[3] = {dir.x, dir.y, dir.z};
  std::int64_t lo[3], ex[3];
  for (int c = 0; c < 3; ++c) {
    const std::int64_t w = r.slab_width(c, d[c]);
    ex[c] = d[c] == 0 ? s[c] : w;
    lo[c] = d[c] > 0 ? s[c] - w : 0;
  }
  out.origin = {lo[0], lo[1], lo[2]};
  out.extent = {ex[0], ex[1], ex[2]};
  return out;
}

/// The halo slab where data *sent along direction dir* lands in the
/// receiving neighbor. The sender sits on the receiver's -dir side, so its
/// data adjoins the receiver's -dir face: dir == +1 fills [-neg, 0) and
/// dir == -1 fills [sz, sz + pos) in that dimension.
inline Region3 halo_slab(Dim3 sz, Dim3 dir, Radius r) {
  Region3 out;
  const std::int64_t s[3] = {sz.x, sz.y, sz.z};
  const std::int64_t d[3] = {dir.x, dir.y, dir.z};
  std::int64_t lo[3], ex[3];
  for (int c = 0; c < 3; ++c) {
    const std::int64_t w = r.slab_width(c, d[c]);
    ex[c] = d[c] == 0 ? s[c] : w;
    lo[c] = d[c] > 0 ? -w : (d[c] < 0 ? s[c] : 0);
  }
  out.origin = {lo[0], lo[1], lo[2]};
  out.extent = {ex[0], ex[1], ex[2]};
  return out;
}

/// Grid points moving from a subdomain of size `sz` toward the neighbor in
/// direction `dir` under an (possibly asymmetric) radius.
inline std::int64_t halo_volume(Dim3 sz, Dim3 dir, Radius r) {
  const std::int64_t s[3] = {sz.x, sz.y, sz.z};
  const std::int64_t d[3] = {dir.x, dir.y, dir.z};
  std::int64_t vol = 1;
  for (int c = 0; c < 3; ++c) {
    vol *= d[c] == 0 ? s[c] : r.slab_width(c, d[c]);
  }
  return vol;
}

}  // namespace stencil
