#pragma once

/// \file provenance.h
/// Bridges the partition/placement phase into stencil::explain: free
/// helpers that turn a HierarchicalPartition or a finished Placement into
/// DecisionRecords with the chosen option, the rejected alternatives, and
/// the objective values. Called from Cluster::placement_cached on cache
/// misses (cold path only — hits never re-record) and from bench_placement,
/// which constructs Placements directly.

#include "core/placement.h"
#include "core/radius.h"
#include "explain/explain.h"
#include "simtime/time.h"

namespace stencil {

/// Record the prime-factor shape choice: the hierarchical node*gpu split
/// against the flat single-level baseline, scored by inter-node exchange
/// volume (grid points crossing node boundaries per radius-r exchange).
void record_partition_decision(explain::Ledger& led, const HierarchicalPartition& hp,
                               Radius radius, sim::Time now);

/// Record one kPlacement decision per distinct per-node flow matrix (most
/// nodes share one of a few — subdomain sizes differ by at most one point),
/// re-running the matching solver in explained mode to recover the
/// runner-up assignment and the deterministic work counter. Re-solving
/// costs wall clock only, never virtual time, and only happens with a
/// ledger attached — detached runs skip this entirely.
void record_placement_decision(explain::Ledger& led, const Placement& p, sim::Time now);

}  // namespace stencil
