#include "core/placement.h"

#include <algorithm>
#include <stdexcept>

namespace stencil {

std::vector<Dim3> neighbor_directions(Neighborhood nbhd) {
  std::vector<Dim3> dirs;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int nz = std::abs(dx) + std::abs(dy) + std::abs(dz);
        if (nbhd == Neighborhood::kFaces && nz > 1) continue;
        if (nbhd == Neighborhood::kFacesEdges && nz > 2) continue;
        dirs.push_back({dx, dy, dz});
      }
    }
  }
  return dirs;
}

int direction_index(Dim3 dir) {
  if (dir.x < -1 || dir.x > 1 || dir.y < -1 || dir.y > 1 || dir.z < -1 || dir.z > 1 ||
      (dir.x == 0 && dir.y == 0 && dir.z == 0)) {
    return -1;
  }
  const int raw = static_cast<int>((dir.z + 1) * 9 + (dir.y + 1) * 3 + (dir.x + 1));
  return raw > 13 ? raw - 1 : raw;  // skip the (0,0,0) slot
}

std::vector<Dim3> Placement::directions() const { return neighbor_directions(nbhd_); }

Placement::Placement(const HierarchicalPartition& hp, const topo::NodeArchetype& arch, Radius radius,
                     std::size_t bytes_per_point, Neighborhood nbhd, PlacementStrategy strategy,
                     Boundary boundary, int gpu_slot_base)
    : hp_(hp),
      arch_(arch),
      radius_(radius),
      bytes_per_point_(bytes_per_point),
      nbhd_(nbhd),
      strategy_(strategy),
      boundary_(boundary),
      gpn_(static_cast<int>(hp.gpu_extent().volume())),
      slot_base_(gpu_slot_base) {
  const int g = gpn_;
  if (g < 1 || slot_base_ < 0 || slot_base_ + g > arch_.gpus_per_node()) {
    throw std::invalid_argument("Placement: partition GPU slice exceeds the node");
  }
  if (hp_.node_extent().volume() != hp_.num_nodes()) {
    throw std::invalid_argument("Placement: partition node count mismatch");
  }

  // Distance: reciprocal bandwidth, shared by every node (homogeneous
  // cluster). kNodeAware uses the figure nvml-style topology discovery
  // reports; kMeasured uses what an empirical probe achieves (§VI) —
  // notably lower for non-peer pairs that stage through the host. Tenant
  // slices read the bandwidths of the physical slots they occupy
  // (slot_base_ + i); vnodes on different physical nodes share the slot
  // layout by the homogeneous-cluster assumption.
  distance_ = qap::SquareMatrix(g);
  for (int i = 0; i < g; ++i) {
    for (int j = 0; j < g; ++j) {
      if (i == j) continue;
      const double bw = strategy_ == PlacementStrategy::kMeasured
                            ? arch_.achieved_gpu_bw(slot_base_ + i, slot_base_ + j)
                            : arch_.theoretical_gpu_bw(slot_base_ + i, slot_base_ + j);
      distance_.at(i, j) = bw > 0 ? 1.0 / bw : 1e9;
    }
  }

  const int nodes = hp_.num_nodes();
  assign_.resize(static_cast<std::size_t>(nodes));
  inverse_.resize(static_cast<std::size_t>(nodes));

  // Memoize QAP solutions by flow matrix: most nodes share one of a few
  // distinct flow matrices (subdomain sizes differ by at most one point).
  std::map<std::vector<double>, std::vector<int>> memo;

  for (int n = 0; n < nodes; ++n) {
    const qap::SquareMatrix w = node_flow(n);
    std::vector<int> f;
    switch (strategy_) {
      case PlacementStrategy::kTrivial:
        f = qap::identity_assignment(g);
        break;
      case PlacementStrategy::kWorst: {
        std::vector<double> key(static_cast<std::size_t>(g) * g + 1, -1.0);
        for (int i = 0; i < g; ++i)
          for (int j = 0; j < g; ++j) key[static_cast<std::size_t>(i) * g + j] = w.at(i, j);
        auto it = memo.find(key);
        if (it == memo.end()) {
          f = g <= 8 ? qap::solve_worst(w, distance_) : qap::identity_assignment(g);
          memo.emplace(std::move(key), f);
        } else {
          f = it->second;
        }
        break;
      }
      case PlacementStrategy::kMeasured:
      case PlacementStrategy::kNodeAware: {
        std::vector<double> key(static_cast<std::size_t>(g) * g, 0.0);
        for (int i = 0; i < g; ++i)
          for (int j = 0; j < g; ++j) key[static_cast<std::size_t>(i) * g + j] = w.at(i, j);
        auto it = memo.find(key);
        if (it == memo.end()) {
          f = g <= 8 ? qap::solve_exhaustive(w, distance_) : qap::solve_greedy_2swap(w, distance_);
          memo.emplace(std::move(key), f);
        } else {
          f = it->second;
        }
        break;
      }
    }
    total_cost_ += qap::cost(w, distance_, f);
    assign_[static_cast<std::size_t>(n)] = f;
    std::vector<int> inv(static_cast<std::size_t>(g), -1);
    for (int s = 0; s < g; ++s) inv[static_cast<std::size_t>(f[static_cast<std::size_t>(s)])] = s;
    inverse_[static_cast<std::size_t>(n)] = std::move(inv);
  }
}

qap::SquareMatrix Placement::node_flow(int node_linear) const {
  const int g = gpn_;
  qap::SquareMatrix w(g);
  const Dim3 node_idx = Dim3::from_linear(node_linear, hp_.node_extent());
  const Dim3 gext = hp_.gpu_extent();
  const Dim3 global_ext = hp_.global_extent();
  for (std::int64_t a = 0; a < gext.volume(); ++a) {
    const Dim3 gpu_idx = Dim3::from_linear(a, gext);
    const Dim3 gidx = hp_.global_index(node_idx, gpu_idx);
    const Dim3 sz = hp_.subdomain_size(gidx);
    for (const Dim3& dir : neighbor_directions(nbhd_)) {
      const auto nbr_opt = neighbor_index(gidx, dir, global_ext, boundary_);
      if (!nbr_opt) continue;  // fixed boundary: no neighbor outward
      const Dim3 nbr = *nbr_opt;
      if (nbr == gidx) continue;  // self-exchange stays on one GPU
      const auto [nbr_node, nbr_gpu] = hp_.split_index(nbr);
      if (nbr_node != node_idx) continue;  // off-node flow is the NIC's problem
      const std::int64_t b = nbr_gpu.linearize(gext);
      if (b == a) continue;  // wrap within the node onto the same GPU
      w.at(static_cast<int>(a), static_cast<int>(b)) +=
          static_cast<double>(halo_volume(sz, dir, radius_)) * static_cast<double>(bytes_per_point_);
    }
  }
  return w;
}

int Placement::node_linear_of(Dim3 global_idx) const {
  return global_gpu_of(global_idx) / gpn_;
}

int Placement::local_gpu_of(Dim3 global_idx) const {
  return global_gpu_of(global_idx) % gpn_;
}

int Placement::global_gpu_of(Dim3 global_idx) const {
  if (!overrides_.empty()) {
    const auto it = overrides_.find(global_idx.linearize(hp_.global_extent()));
    if (it != overrides_.end()) return it->second;
  }
  const auto [node_idx, gpu_idx] = hp_.split_index(global_idx);
  const int n = static_cast<int>(node_idx.linearize(hp_.node_extent()));
  const int s = static_cast<int>(gpu_idx.linearize(hp_.gpu_extent()));
  return n * gpn_ +
         assign_[static_cast<std::size_t>(n)][static_cast<std::size_t>(s)];
}

void Placement::rehome(Dim3 global_idx, int new_global_gpu) {
  const std::int64_t key = global_idx.linearize(hp_.global_extent());
  // Re-homing back onto the base GPU dissolves the override; any other
  // target records (or retargets) it.
  const auto it = overrides_.find(key);
  const int base = [&] {
    const auto [node_idx, gpu_idx] = hp_.split_index(global_idx);
    const int n = static_cast<int>(node_idx.linearize(hp_.node_extent()));
    const int s = static_cast<int>(gpu_idx.linearize(hp_.gpu_extent()));
    return n * gpn_ +
           assign_[static_cast<std::size_t>(n)][static_cast<std::size_t>(s)];
  }();
  if (new_global_gpu == base) {
    if (it != overrides_.end()) overrides_.erase(it);
  } else {
    overrides_[key] = new_global_gpu;
  }
}

std::vector<Dim3> Placement::subdomains_on(int node_linear, int local_gpu) const {
  std::vector<Dim3> out;
  const int ggpu = node_linear * gpn_ + local_gpu;
  const Dim3 base = subdomain_at(node_linear, local_gpu);
  const std::int64_t base_key = base.linearize(hp_.global_extent());
  const auto it = overrides_.find(base_key);
  if (it == overrides_.end() || it->second == ggpu) out.push_back(base);
  for (const auto& [key, target] : overrides_) {
    if (target != ggpu || key == base_key) continue;
    out.push_back(Dim3::from_linear(key, hp_.global_extent()));
  }
  return out;
}

Dim3 Placement::subdomain_at(int node_linear, int local_gpu) const {
  const int s = inverse_[static_cast<std::size_t>(node_linear)][static_cast<std::size_t>(local_gpu)];
  if (s < 0) throw std::logic_error("Placement: GPU hosts no subdomain");
  const Dim3 node_idx = Dim3::from_linear(node_linear, hp_.node_extent());
  const Dim3 gpu_idx = Dim3::from_linear(s, hp_.gpu_extent());
  return hp_.global_index(node_idx, gpu_idx);
}

}  // namespace stencil
