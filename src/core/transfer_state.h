#pragma once

/// \file transfer_state.h
/// Private definitions of DistributedDomain's per-transfer runtime state,
/// shared by distributed_domain.cpp and verify_model.cpp (which lowers the
/// state into the static verifier's IR). Not part of the public API.

#include <memory>
#include <utility>
#include <vector>

#include "core/distributed_domain.h"
#include "core/region.h"
#include "simtime/engine.h"

namespace stencil {

/// The stand-in for a cudaIpcEventHandle pair: a shared channel through
/// which the COLOCATED sender and receiver synchronize without MPI.
/// data_ev/data_gen flow sender -> receiver ("generation N has landed in
/// your buffer"); done_ev/done_gen flow back ("generation N is unpacked,
/// the buffer may be overwritten"). The receiver owns the channel; the
/// sender learns its address during the one-time setup handshake.
struct DistributedDomain::IpcEventChannel {
  vgpu::Event data_ev;
  std::uint64_t data_gen = 0;
  vgpu::Event done_ev;
  std::uint64_t done_gen = 0;
  // Distributed tracing: span id of the sender's "ipc push" marker for the
  // generation in data_gen, so the receiver can draw a causal arrow along
  // the IPC handshake. 0 when the recorder is not causal.
  std::uint64_t data_span = 0;
  sim::Gate gate{"colocated-channel"};
  // Set by the sender when its IPC mapping went stale and it rerouted this
  // generation over MPI; tells a receiver parked on data_gen to fall back.
  bool demoted = false;
};

/// Per-transfer runtime state: streams, packed buffers, staging buffers,
/// and in-flight requests. A transfer where this rank is both sender and
/// receiver (PEER, KERNEL, or MPI-to-self) populates both halves.
struct DistributedDomain::TransferState {
  Transfer t;
  bool i_send = false;
  bool i_recv = false;
  LocalDomain* src_ld = nullptr;
  LocalDomain* dst_ld = nullptr;
  Region3 src_region{};
  Region3 dst_region{};
  std::size_t bytes = 0;         // full-quantity-set message size
  std::size_t active_bytes = 0;  // size for the exchange in flight

  vgpu::Stream src_stream;
  vgpu::Stream dst_stream;
  vgpu::Buffer src_pack;  // device, on src GPU
  vgpu::Buffer dst_pack;  // device, on dst GPU
  vgpu::Buffer src_host;  // pinned host (STAGED sender)
  vgpu::Buffer dst_host;  // pinned host (STAGED receiver)

  std::unique_ptr<IpcEventChannel> channel;  // COLOCATED receiver owns
  IpcEventChannel* peer_channel = nullptr;   // COLOCATED sender's view
  vgpu::IpcMappedPtr mapped;                 // sender's mapping of dst_pack

  vgpu::Event ready_ev;  // sender: packed (+staged) data ready for MPI
  simpi::Request send_req;
  simpi::Request recv_req;

  // Runtime demotion bookkeeping. `aggregated` marks membership in an
  // AggGroup fixed at realize(); a transfer demoted to STAGED later is not
  // a member, so the staged phases must handle it individually even when
  // aggregation is on. `handled_seq` marks that the COLOCATED fallback
  // already packed and queued this generation's send, so Phase 3 (which now
  // sees method == kStaged) must not send it twice.
  bool aggregated = false;
  std::uint64_t handled_seq = 0;
};

/// One aggregated STAGED message: every staged transfer between this rank
/// and `peer_rank` (in one direction) rides in a single pinned buffer, each
/// member at its `agg_offset`.
struct DistributedDomain::AggGroup {
  int peer_rank = -1;
  std::size_t bytes = 0;
  vgpu::Buffer host;  // pinned, on this rank's node (sized for all quantities)
  std::vector<std::pair<TransferState*, std::size_t>> members;  // (transfer, full offset)
  simpi::Request req;
  // Layout of the exchange in flight (selective exchanges shrink it).
  std::size_t active_bytes = 0;
  std::vector<std::size_t> active_offsets;
};

}  // namespace stencil
