#include "core/partition.h"

#include <algorithm>
#include <stdexcept>

namespace stencil {

std::vector<std::int64_t> prime_factors_desc(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("prime_factors_desc: n must be positive");
  std::vector<std::int64_t> out;
  for (std::int64_t p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      out.push_back(p);
      n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  std::sort(out.rbegin(), out.rend());
  return out;
}

Dim3 partition_extent(Dim3 domain, int parts) {
  if (parts <= 0) throw std::invalid_argument("partition_extent: parts must be positive");
  if (domain.x <= 0 || domain.y <= 0 || domain.z <= 0) {
    throw std::invalid_argument("partition_extent: domain extents must be positive");
  }
  Dim3 q{1, 1, 1};
  for (std::int64_t f : prime_factors_desc(parts)) {
    // Current (fractional) subdomain extents; split the longest axis.
    const double cx = static_cast<double>(domain.x) / static_cast<double>(q.x);
    const double cy = static_cast<double>(domain.y) / static_cast<double>(q.y);
    const double cz = static_cast<double>(domain.z) / static_cast<double>(q.z);
    if (cx >= cy && cx >= cz) {
      q.x *= f;
    } else if (cy >= cz) {
      q.y *= f;
    } else {
      q.z *= f;
    }
  }
  return q;
}

namespace {
std::int64_t split_size(std::int64_t dim, std::int64_t parts, std::int64_t idx) {
  const std::int64_t base = dim / parts;
  const std::int64_t rem = dim % parts;
  return base + (idx < rem ? 1 : 0);
}
std::int64_t split_origin(std::int64_t dim, std::int64_t parts, std::int64_t idx) {
  const std::int64_t base = dim / parts;
  const std::int64_t rem = dim % parts;
  return idx * base + std::min(idx, rem);
}
}  // namespace

Dim3 subdomain_size(Dim3 domain, Dim3 extent, Dim3 idx) {
  if (!idx.inside(extent)) throw std::out_of_range("subdomain_size: index outside extent");
  return {split_size(domain.x, extent.x, idx.x), split_size(domain.y, extent.y, idx.y),
          split_size(domain.z, extent.z, idx.z)};
}

Dim3 subdomain_origin(Dim3 domain, Dim3 extent, Dim3 idx) {
  if (!idx.inside(extent)) throw std::out_of_range("subdomain_origin: index outside extent");
  return {split_origin(domain.x, extent.x, idx.x), split_origin(domain.y, extent.y, idx.y),
          split_origin(domain.z, extent.z, idx.z)};
}

std::int64_t sent_halo_volume(Dim3 size, int radius) {
  std::int64_t total = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        total += halo_volume(size, Dim3{dx, dy, dz}, radius);
      }
    }
  }
  return total;
}

HierarchicalPartition::HierarchicalPartition(Dim3 domain, int num_nodes, int gpus_per_node)
    : domain_(domain), num_nodes_(num_nodes), gpus_per_node_(gpus_per_node) {
  if (num_nodes_ <= 0 || gpus_per_node_ <= 0) {
    throw std::invalid_argument("HierarchicalPartition: counts must be positive");
  }
  node_extent_ = partition_extent(domain_, num_nodes_);
  // Second level: partition the typical node block across GPUs. Using the
  // fractional node block (domain / node_extent) keeps the GPU extent
  // identical on every node, so the composed index space is uniform.
  const Dim3 node_block{std::max<std::int64_t>(domain_.x / node_extent_.x, 1),
                        std::max<std::int64_t>(domain_.y / node_extent_.y, 1),
                        std::max<std::int64_t>(domain_.z / node_extent_.z, 1)};
  gpu_extent_ = partition_extent(node_block, gpus_per_node_);
}

std::pair<Dim3, Dim3> HierarchicalPartition::split_index(Dim3 g) const {
  const Dim3 node{g.x / gpu_extent_.x, g.y / gpu_extent_.y, g.z / gpu_extent_.z};
  const Dim3 gpu{g.x % gpu_extent_.x, g.y % gpu_extent_.y, g.z % gpu_extent_.z};
  return {node, gpu};
}

Dim3 HierarchicalPartition::subdomain_size(Dim3 global_idx) const {
  return stencil::subdomain_size(domain_, global_extent(), global_idx);
}

Dim3 HierarchicalPartition::subdomain_origin(Dim3 global_idx) const {
  return stencil::subdomain_origin(domain_, global_extent(), global_idx);
}

namespace {

// Sum halo volume over all (subdomain, direction) pairs selected by `count`.
template <typename Pred>
std::int64_t exchange_volume(Dim3 domain, Dim3 extent, int radius, Pred count) {
  std::int64_t total = 0;
  const std::int64_t n = extent.volume();
  for (std::int64_t i = 0; i < n; ++i) {
    const Dim3 idx = Dim3::from_linear(i, extent);
    const Dim3 sz = subdomain_size(domain, extent, idx);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const Dim3 dir{dx, dy, dz};
          const Dim3 nbr = (idx + dir).wrap(extent);
          if (nbr == idx) continue;  // self-exchange moves no data off-GPU
          if (count(idx, nbr)) total += halo_volume(sz, dir, radius);
        }
      }
    }
  }
  return total;
}

}  // namespace

std::int64_t HierarchicalPartition::internode_exchange_volume(int radius) const {
  return exchange_volume(domain_, global_extent(), radius, [&](Dim3 a, Dim3 b) {
    return split_index(a).first != split_index(b).first;
  });
}

std::int64_t HierarchicalPartition::total_exchange_volume(int radius) const {
  return exchange_volume(domain_, global_extent(), radius, [](Dim3, Dim3) { return true; });
}

FlatPartition::FlatPartition(Dim3 domain, int num_nodes, int gpus_per_node)
    : domain_(domain), num_nodes_(num_nodes), gpus_per_node_(gpus_per_node) {
  extent_ = partition_extent(domain_, num_nodes_ * gpus_per_node_);
}

int FlatPartition::node_of(Dim3 idx) const {
  const std::int64_t linear = idx.linearize(extent_);
  return static_cast<int>(linear / gpus_per_node_);
}

std::int64_t FlatPartition::internode_exchange_volume(int radius) const {
  std::int64_t total = 0;
  const std::int64_t n = extent_.volume();
  for (std::int64_t i = 0; i < n; ++i) {
    const Dim3 idx = Dim3::from_linear(i, extent_);
    const Dim3 sz = subdomain_size(idx);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const Dim3 dir{dx, dy, dz};
          const Dim3 nbr = (idx + dir).wrap(extent_);
          if (nbr == idx) continue;
          if (node_of(nbr) != node_of(idx)) total += halo_volume(sz, dir, radius);
        }
      }
    }
  }
  return total;
}

}  // namespace stencil
