#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace stencil {

/// A 3D integer coordinate / extent. Named Dim3 after the reference
/// library's type; used for domain sizes, subdomain indices, and direction
/// vectors (components in {-1, 0, 1}).
struct Dim3 {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;

  constexpr Dim3() = default;
  constexpr Dim3(std::int64_t x_, std::int64_t y_, std::int64_t z_) : x(x_), y(y_), z(z_) {}

  constexpr std::int64_t volume() const { return x * y * z; }

  constexpr bool operator==(const Dim3& o) const = default;

  constexpr Dim3 operator+(const Dim3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Dim3 operator-(const Dim3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Dim3 operator*(const Dim3& o) const { return {x * o.x, y * o.y, z * o.z}; }

  /// Component-wise Euclidean-style modulo with a positive result; used to
  /// wrap neighbor indices under periodic boundary conditions.
  constexpr Dim3 wrap(const Dim3& extent) const {
    auto m = [](std::int64_t v, std::int64_t e) { return ((v % e) + e) % e; };
    return {m(x, extent.x), m(y, extent.y), m(z, extent.z)};
  }

  /// True if every component is within [0, extent).
  constexpr bool inside(const Dim3& extent) const {
    return x >= 0 && y >= 0 && z >= 0 && x < extent.x && y < extent.y && z < extent.z;
  }

  /// Row-major linearization (z slowest is NOT used here; x fastest, then y,
  /// then z — matching XYZ storage order used throughout).
  constexpr std::int64_t linearize(const Dim3& extent) const {
    return (z * extent.y + y) * extent.x + x;
  }

  static constexpr Dim3 from_linear(std::int64_t i, const Dim3& extent) {
    const std::int64_t x = i % extent.x;
    const std::int64_t y = (i / extent.x) % extent.y;
    const std::int64_t z = i / (extent.x * extent.y);
    return {x, y, z};
  }

  std::string str() const {
    return "[" + std::to_string(x) + "," + std::to_string(y) + "," + std::to_string(z) + "]";
  }
};

inline std::ostream& operator<<(std::ostream& os, const Dim3& d) { return os << d.str(); }

}  // namespace stencil
