#pragma once

#include <algorithm>
#include <array>
#include <string>

#include "core/dim3.h"

namespace stencil {

/// Halo width on each face of a subdomain. Symmetric stencils use a single
/// number (Radius r = 2), but asymmetric stencils (e.g. upwind schemes)
/// may need, say, two cells of the -x neighbor and none of the +x one —
/// then only the directions that carry data are exchanged.
///
/// Naming: `neg(axis)` is the width of the halo on the *negative* face,
/// i.e. how many cells of the -axis neighbor this subdomain reads.
class Radius {
 public:
  constexpr Radius() = default;
  // Implicit: a plain int means a uniform radius, so set_radius(2) reads
  // naturally and all pre-existing call sites keep working.
  constexpr Radius(int r) : v_{{{r, r}, {r, r}, {r, r}}} {}  // NOLINT(google-explicit-constructor)

  static constexpr Radius uniform(int r) { return Radius(r); }
  static constexpr Radius faces(int xm, int xp, int ym, int yp, int zm, int zp) {
    Radius r;
    r.v_ = {{{xm, xp}, {ym, yp}, {zm, zp}}};
    return r;
  }

  constexpr int neg(int axis) const { return v_[static_cast<std::size_t>(axis)][0]; }
  constexpr int pos(int axis) const { return v_[static_cast<std::size_t>(axis)][1]; }

  constexpr int max() const {
    int m = 0;
    for (const auto& a : v_) m = std::max({m, a[0], a[1]});
    return m;
  }
  constexpr int min() const {
    int m = v_[0][0];
    for (const auto& a : v_) m = std::min({m, a[0], a[1]});
    return m;
  }
  constexpr bool is_uniform() const {
    for (const auto& a : v_) {
      if (a[0] != v_[0][0] || a[1] != v_[0][0]) return false;
    }
    return true;
  }

  /// Width of the slab a transfer along `dir_component` carries in `axis`:
  /// data moving in +axis lands in the receiver's negative-face halo.
  constexpr int slab_width(int axis, std::int64_t dir_component) const {
    if (dir_component > 0) return neg(axis);
    if (dir_component < 0) return pos(axis);
    return 0;  // caller substitutes the full extent
  }

  /// Storage padding (neg + pos) in each dimension.
  constexpr Dim3 padding() const {
    return {neg(0) + pos(0), neg(1) + pos(1), neg(2) + pos(2)};
  }
  constexpr Dim3 offsets() const { return {neg(0), neg(1), neg(2)}; }

  constexpr bool operator==(const Radius& o) const { return v_ == o.v_; }

  std::string str() const {
    return "x[" + std::to_string(neg(0)) + "," + std::to_string(pos(0)) + "]y[" +
           std::to_string(neg(1)) + "," + std::to_string(pos(1)) + "]z[" +
           std::to_string(neg(2)) + "," + std::to_string(pos(2)) + "]";
  }

 private:
  std::array<std::array<int, 2>, 3> v_{};
};

}  // namespace stencil
