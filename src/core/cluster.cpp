#include "core/cluster.h"

#include <string>

#include "core/provenance.h"

namespace stencil {

Cluster::Cluster(topo::NodeArchetype arch, int num_nodes, int ranks_per_node)
    : machine_(std::move(arch), num_nodes),
      rt_(eng_, machine_),
      job_(eng_, machine_, rt_, ranks_per_node) {}

void Cluster::run(const std::function<void(RankCtx&)>& body) {
  job_.run([&](simpi::Comm& comm) {
    RankCtx ctx{comm, rt_, machine_, *this, gpus_per_rank(), {}};
    const int gpn = machine_.gpus_per_node();
    const int slot = comm.rank() % job_.ranks_per_node();
    for (int k = 0; k < ctx.gpus_per_rank; ++k) {
      ctx.gpus.push_back(comm.node() * gpn + slot * ctx.gpus_per_rank + k);
    }
    body(ctx);
  });
  if (telemetry_ != nullptr) telemetry_->record_engine(eng_);
}

std::shared_ptr<const Placement> Cluster::placement_cached(
    Dim3 domain, Radius radius, std::size_t bytes_per_point, Neighborhood nbhd,
    PlacementStrategy strategy, Boundary boundary, int num_nodes, int gpus_per_node,
    int gpu_slot_base) {
  if (num_nodes <= 0) num_nodes = machine_.num_nodes();
  if (gpus_per_node <= 0) gpus_per_node = machine_.gpus_per_node();
  std::string key = domain.str() + "/r" + radius.str() + "/b" +
                    std::to_string(bytes_per_point) + "/n" +
                    std::to_string(static_cast<int>(nbhd)) + "/s" +
                    std::to_string(static_cast<int>(strategy)) + "/" + to_string(boundary) +
                    "/N" + std::to_string(num_nodes) + "g" + std::to_string(gpus_per_node) +
                    "o" + std::to_string(gpu_slot_base);
  auto it = placement_cache_.find(key);
  if (it != placement_cache_.end()) return it->second;
  // Token-scheduled actors: no data race; the first rank to ask computes.
  HierarchicalPartition hp(domain, num_nodes, gpus_per_node);
  auto placement = std::make_shared<const Placement>(hp, machine_.arch(), radius, bytes_per_point,
                                                     nbhd, strategy, boundary, gpu_slot_base);
  placement_cache_.emplace(std::move(key), placement);
  if (explain_ != nullptr) {
    // Cold path only: cache hits never re-record. Costs wall clock, not
    // virtual time, so attached and detached runs time identically.
    record_partition_decision(*explain_, hp, radius, eng_.now());
    record_placement_decision(*explain_, *placement, eng_.now());
  }
  return placement;
}

}  // namespace stencil
