#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/exchange.h"
#include "core/local_domain.h"
#include "core/method_flags.h"
#include "core/placement.h"
#include "plan/plan.h"
#include "telemetry/telemetry.h"
#include "verify/verify.h"

namespace stencil {

/// The library's user-facing type (mirroring the reference implementation):
/// one instance per rank, holding that rank's subdomains and the machinery
/// for overlapped halo exchanges.
///
///   stencil::DistributedDomain dd(ctx, {1364, 1364, 1364});
///   dd.set_radius(2);
///   dd.add_data<float>("pressure");
///   dd.set_methods(stencil::MethodFlags::kAll);
///   dd.set_placement(stencil::PlacementStrategy::kNodeAware);
///   dd.realize();
///   ...
///   dd.exchange();
///
/// realize() performs the paper's three-phase setup: partitioning
/// (hierarchical prime-factor bisection), placement (QAP over the node's
/// bandwidth matrix), and specialization (choosing KERNEL / PEER /
/// COLOCATED / CUDA-aware / STAGED per subdomain pair, including the
/// one-time cudaIpc* handshakes for COLOCATED).
class DistributedDomain {
 public:
  DistributedDomain(RankCtx& ctx, Dim3 domain);
  ~DistributedDomain();  // out-of-line: TransferState is an impl detail

  // --- configuration (before realize) ------------------------------------
  /// Uniform (set_radius(2)) or per-face asymmetric halo widths.
  void set_radius(Radius r);
  void set_methods(MethodFlags f);
  void set_placement(PlacementStrategy s);
  void set_neighborhood(Neighborhood n);

  /// Periodic (default, the paper's setting) or fixed boundaries. With
  /// fixed boundaries, outward-facing halos are not exchanged — they belong
  /// to the application (e.g. Dirichlet values written once).
  void set_boundary(Boundary b);

  /// Combine all STAGED transfers between each rank pair into one MPI
  /// message per exchange (the aggregation idea of §VI / [3]): fewer,
  /// larger messages amortize per-message latency, at the cost of delaying
  /// the whole group to its slowest pack. Off by default, matching the
  /// paper ("our messages may already be few enough and large enough").
  void set_remote_aggregation(bool on);

  /// How same-rank PEER transfers move halos: GPU pack kernels (default,
  /// the paper's choice), direct strided cudaMemcpy3D-style copies, or a
  /// per-transfer automatic choice (§VI pack-avoidance future work).
  void set_pack_mode(PackMode m);

  /// STAGED senders pack straight into pinned host memory with a zero-copy
  /// kernel (§VI / [18]) instead of pack-then-D2H: one fewer async op and
  /// copy, at the cost of the GPU being busy for the host-link duration.
  void set_staged_zero_copy(bool on);

  /// Planned (persistent) exchanges: the first exchange() per configuration
  /// compiles the specialized transfer set into a reusable schedule —
  /// persistent MPI requests (MPI_Send_init/Recv_init/Start) for the message
  /// phases and instantiated vgpu graphs for the pack/copy/unpack phases —
  /// and every later exchange replays it with zero setup work. May be
  /// toggled at any exchange boundary (also after realize()); plans are
  /// compiled lazily per (method flags, aggregation, quantity subset) and
  /// partially rebuilt when fault injection demotes a transfer.
  void set_persistent(bool on);
  bool persistent() const { return persistent_; }

  /// Register a grid quantity; returns its index.
  template <typename T>
  std::size_t add_data(const std::string& name) {
    return add_data_bytes(name, sizeof(T));
  }
  std::size_t add_data_bytes(const std::string& name, std::size_t elem_size);

  /// Partition, place, allocate, and specialize. Collective: every rank of
  /// the job must call realize() (the COLOCATED setup handshakes cross
  /// ranks).
  void realize();

  /// One full halo exchange, overlapping every transfer the paper's Fig. 9
  /// way. Collective. Returns when all of this rank's sends are delivered,
  /// all its halos are unpacked, and its streams are quiescent.
  /// Equivalent to exchange_start() immediately followed by exchange_finish().
  void exchange();

  /// Selective exchange: move only the listed quantities (strictly
  /// increasing indices). Collective — every rank must pass the same list.
  /// Double-buffered schemes typically only need the field they read,
  /// halving the traffic of a blanket exchange.
  void exchange(const std::vector<std::size_t>& quantities);
  void exchange_start(const std::vector<std::size_t>& quantities);

  /// Split-phase exchange for computation/communication overlap: start()
  /// posts receives and enqueues all asynchronous sender work (packs, local
  /// copies, colocated pushes), then returns. The application typically
  /// launches *interior* compute kernels next — they only need cells the
  /// exchange does not touch — and calls finish() before computing on the
  /// boundary. finish() drives the remaining sender/receiver state machines
  /// to completion (§III-D).
  void exchange_start();
  void exchange_finish();

  // --- introspection ------------------------------------------------------
  Dim3 domain() const { return domain_; }
  const Radius& radius() const { return radius_; }
  Boundary boundary() const { return boundary_; }
  MethodFlags methods() const { return flags_; }
  std::size_t num_subdomains() const { return locals_.size(); }
  LocalDomain& subdomain(std::size_t i) { return *locals_[i]; }
  const Placement& placement() const;
  const std::vector<Transfer>& transfers() const { return plan_.transfers(); }
  std::map<Method, int> local_method_histogram() const { return plan_.method_histogram(); }
  /// Per-method (transfer count, payload bytes) over the realized transfer
  /// set — what plan_report prints. Reflects runtime demotions.
  std::map<Method, std::pair<int, std::size_t>> method_bytes_histogram() const;
  std::uint64_t exchanges_done() const { return seq_; }

  /// Compiled-plan introspection (plan_report, tests). The cache is empty
  /// until the first persistent exchange compiles a schedule.
  const plan::PlanCache& plan_cache() const { return plan_cache_; }
  const plan::PlanStats& plan_stats() const { return plan_cache_.stats(); }
  /// Bumped on every runtime demotion; cached plans whose epoch lags are
  /// migrated (dirty programs rebuilt) on their next use.
  std::uint64_t topology_epoch() const { return topo_epoch_; }

  // --- multi-tenancy (src/sched, DESIGN.md §15) ---------------------------
  /// The machine shape this domain partitions and places over: the tenant
  /// slice's virtual shape when RankCtx carries a TenantView, the physical
  /// machine otherwise. All tenant-aware internals route through these.
  const core::TenantView* tenant() const { return ctx_.tenant; }
  int tenant_id() const { return ctx_.tenant != nullptr ? ctx_.tenant->id : 0; }
  int part_nodes() const {
    return ctx_.tenant != nullptr ? ctx_.tenant->num_vnodes() : ctx_.cluster.num_nodes();
  }
  int part_gpn() const {
    return ctx_.tenant != nullptr ? ctx_.tenant->gpus_per_vnode : ctx_.machine.gpus_per_node();
  }
  int part_rpn() const {
    return ctx_.tenant != nullptr ? ctx_.tenant->ranks_per_vnode : ctx_.cluster.ranks_per_node();
  }
  /// This rank's (virtual) node in partition coordinates. For a tenant the
  /// communicator is the tenant's sub-communicator, whose ranks are dense
  /// vnode-major, so rank / ranks_per_vnode is the vnode index.
  int part_node() const {
    return ctx_.tenant != nullptr ? ctx_.comm.rank() / part_rpn() : ctx_.node();
  }

  // --- static plan verification (src/verify, DESIGN.md §14) ----------------
  /// Lower a compiled plan into the verifier's IR: the local rank from the
  /// artifact itself, every remote rank re-derived deterministically from
  /// the shared placement (with local demotions overriding shared
  /// transfers). Exposed for plan_verify and tests.
  verify::ExchangeModel verify_model(const plan::CompiledPlan& p) const;
  /// Run the static verifier on a plan: global send/recv matching, deadlock
  /// freedom, tag-space hygiene, buffer-overlap hazards.
  verify::Report verify_plan(const plan::CompiledPlan& p) const;
  /// Fail-fast admission (on by default): every freshly compiled plan and
  /// every fault-demotion/recovery migration is statically verified before
  /// its first replay; findings throw plan::AdmissionError out of
  /// exchange_start().
  void set_verify_plans(bool on);
  bool verify_plans() const { return verify_plans_; }

  /// Per-domain observability (DESIGN.md §11): exchange-latency histogram,
  /// per-method byte/message counters, plan/fault counters, and the flight
  /// recorder. Always on — the hooks are pure bookkeeping and never touch
  /// virtual time. To additionally capture substrate events (GPU ops, MPI
  /// messages), attach it cluster-wide: `cluster.set_telemetry(&dd.telemetry())`.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  template <typename F>
  void for_each_subdomain(F&& f) {
    for (auto& l : locals_) f(*l);
  }

  /// Launch a compute "kernel" over a subdomain on its compute stream,
  /// with `bytes_moved` charged through device memory (cost model).
  void launch_compute(LocalDomain& ld, const std::string& label, std::uint64_t bytes_moved,
                      const std::function<void()>& body);

  /// Block until every subdomain's compute stream is quiescent.
  void compute_synchronize();

  // --- elastic failure recovery (stencil::recover) -------------------------
  /// One re-homed subdomain: which global index moved, from which GPU/rank
  /// onto which. recover_replace returns the full list so the checkpoint
  /// layer can route the dead ranks' blobs to their adopters.
  struct Rehome {
    Dim3 idx{};
    std::int64_t lin = 0;  // idx linearized over the global subdomain extent
    int old_gpu = -1;
    int new_gpu = -1;
    int old_rank = -1;
    int new_rank = -1;
  };

  /// Abort the in-flight exchange (if any) without waiting for dead peers:
  /// every posted request is returned to the inactive state via Job::reset,
  /// per-transfer handles are dropped, and all touched streams quiesce.
  /// Leaves the domain ready for recover_replace + a fresh exchange.
  void recover_abort();

  /// Incremental re-placement after the listed ranks died: their subdomains
  /// are re-homed onto surviving GPUs (deterministic greedy: least-loaded,
  /// ties to the lowest GPU id — every survivor computes the same answer
  /// with no communication), the exchange plan is re-derived, and only the
  /// transfers whose endpoints changed are rebuilt (forced down to PEER /
  /// STAGED; never COLOCATED, whose handshake needs the old world). Bumps
  /// the topology epoch so cached plans migrate on next acquire.
  std::vector<Rehome> recover_replace(const std::vector<int>& dead_ranks);

  /// When on, recover_replace biases its greedy adoption by the *published*
  /// per-node cost factors of the cluster's attached watch (stencil::watch):
  /// GPUs on nodes whose wires have measurably degraded look more loaded,
  /// so orphans land on healthy nodes first. Published factors only change
  /// at Watch::publish() — a quiescent point — so every survivor still
  /// computes the same answer with no communication. Off (or with no watch,
  /// or before the first publish) the behavior is byte-identical to the
  /// static policy.
  void set_live_costs(bool on) { live_costs_ = on; }
  bool live_costs() const { return live_costs_; }

  /// Exchanges are pairwise, not globally synchronized, so ranks can be a
  /// few iterations apart when an incident hits. Survivors agree on
  /// max(exchanges_done()) and realign here — COLOCATED flow control
  /// compares channel generations against seq_, so both ends must count
  /// from the same value after recovery.
  void resync_seq(std::uint64_t s);

  /// The subdomain hosted at `global_idx` on this rank, or nullptr.
  LocalDomain* local_by_subdomain(Dim3 idx);

  /// Quantity table (recovery checkpointing needs sizes for remote blobs).
  const std::vector<Quantity>& quantities() const { return quantities_; }

 private:
  struct IpcEventChannel;
  struct TransferState;
  struct AggGroup;

  void require_unrealized(const char* what) const;
  void build_transfer_states();
  // Construct one transfer's runtime state (regions, buffers, streams per
  // method). Shared by realize() and the recovery rebuild path.
  void build_one_transfer(TransferState& x, const Transfer& t);
  // Specialization for a transfer rebuilt mid-run: COLOCATED is excluded
  // (its IPC handshake belongs to the pre-failure world) and PEER requires
  // the peer link to actually be enabled.
  Method forced_method(const Transfer& t) const;
  void build_aggregation_groups();
  void colocated_setup();
  LocalDomain* local_by_gpu(int ggpu);

  // --- runtime re-specialization (fault degradation, §III-C fail-down) ----
  // At each exchange boundary, demote any transfer whose capability was
  // revoked by fault injection (PEER access lost, CUDA-aware MPI disabled)
  // down the specialization chain to STAGED. Demotions are permanent: a
  // capability that comes back is not re-promoted.
  void maybe_respecialize();
  // Rewrite one transfer's method (state + plan, so method_histogram()
  // reflects it) and record the decision on the trace's "fault" lane.
  // Also bumps the topology epoch and dirties the transfer's programs in
  // every cached plan.
  void demote_transfer(TransferState& x, Method target);
  // Lazily allocate the streams/buffers the STAGED path needs on whichever
  // sides of the transfer this rank owns.
  void ensure_staged_buffers(TransferState& x);

  // --- decision provenance (stencil::explain, DESIGN.md §17) --------------
  // The cluster-attached ledger, or nullptr (the common case). Every hook
  // below is pure bookkeeping with zero virtual-time cost and records
  // nothing when detached, so detached artifacts stay byte-identical.
  explain::Ledger* ledger() const { return ctx_.cluster.explain_ledger(); }
  // realize(): one kSpecialization record per method rung in use, scored by
  // ladder position (kernel 0 ... staged 4; lower = more specialized).
  void record_specialization();
  // realize(): the aggregation on/off choice, scored by staged message
  // count per exchange (grouped vs per-transfer).
  void record_aggregation();
  // demote_transfer(): the fault-forced rung change, with the revoked rung
  // as the rejected alternative (negative delta = capability lost).
  void record_demotion(const TransferState& x, Method from, Method to);

  // --- checker annotations (byte ranges a kernel closure touches) ---------
  vgpu::AccessList pack_access(const TransferState& x, const vgpu::Buffer& dst) const;
  vgpu::AccessList unpack_access(const TransferState& x, const vgpu::Buffer& src) const;
  vgpu::AccessList self_access(const TransferState& x) const;
  vgpu::AccessList copy3d_access(const TransferState& x, std::size_t q) const;

  // PEER pack avoidance (§VI): strided 3D copy instead of pack kernels,
  // per configuration or the kAuto cost model.
  bool peer_use_3d(const TransferState& x) const;

  // COLOCATED state machines, shared by the eager and planned paths (their
  // flow control is generation-dependent, so plans keep them interpreted).
  void colocated_send(TransferState& x);
  void colocated_recv(TransferState& x);
  // Park on a COLOCATED channel gate until `done` holds, but stay
  // failure-aware: a pending revoke or a dead peer surfaces as a
  // TransportError (kRevoked / kPeerDead) instead of a silent hang — the
  // IPC channel has no MPI envelope, so the simpi dead-peer deadline never
  // covers these waits.
  void colocated_gate_wait(sim::Gate& gate, int peer_rank, int tag,
                           const std::function<bool()>& done, const std::string& detail);

  // Telemetry bookkeeping at the end of both the eager and planned finish
  // paths: latency histogram, per-method message/byte counters, plan-stats
  // snapshot. Zero virtual-time cost.
  void note_exchange_complete();

  // Install (or clear) the PlanCache admission hook per verify_plans_.
  void install_admission();

  // --- exchange plans (persistent mode) -----------------------------------
  // The plan for the active configuration: exact cache hit, stale-epoch
  // migration (rebuild only dirty programs), or full compile on miss.
  plan::CompiledPlan& acquire_plan();
  plan::CompiledPlan& compile_plan();
  // (Re)build one frozen transfer: capture its stream phases into graphs,
  // create its persistent requests. Frees any superseded requests first.
  void compile_program(plan::TransferProgram& prog);
  void compile_group_program(plan::GroupProgram& g);
  // Replay: planned_start re-arms receives and launches sender graphs;
  // planned_finish starts sends in frozen order, fans out landed receives,
  // and quiesces.
  void planned_start(plan::CompiledPlan& p);
  void planned_finish(plan::CompiledPlan& p);

  RankCtx& ctx_;
  Dim3 domain_;
  Radius radius_{1};
  std::vector<Quantity> quantities_;
  MethodFlags flags_ = MethodFlags::kAll;
  PlacementStrategy strategy_ = PlacementStrategy::kNodeAware;
  Neighborhood nbhd_ = Neighborhood::kFull;
  Boundary boundary_ = Boundary::kPeriodic;
  bool aggregate_remote_ = false;
  bool staged_zero_copy_ = false;
  PackMode pack_mode_ = PackMode::kKernel;
  bool realized_ = false;
  std::size_t bytes_per_point_ = 0;

  std::shared_ptr<const Placement> placement_;
  ExchangePlan plan_;
  std::vector<std::unique_ptr<LocalDomain>> locals_;
  std::map<int, std::size_t> local_index_by_gpu_;
  // Keyed by linearized global subdomain index: after recovery re-homing a
  // GPU may host several subdomains, so gpu id no longer identifies one.
  std::map<std::int64_t, std::size_t> local_index_by_subdomain_;
  std::vector<std::unique_ptr<TransferState>> xfers_;
  std::vector<std::unique_ptr<AggGroup>> send_groups_;
  std::vector<std::unique_ptr<AggGroup>> recv_groups_;
  std::uint64_t seq_ = 0;
  // Quantities moved by the exchange currently in flight.
  std::vector<std::size_t> active_qs_;

  // Exchange-plan state (persistent mode).
  bool persistent_ = false;
  bool verify_plans_ = true;
  bool live_costs_ = false;
  std::uint64_t topo_epoch_ = 0;
  telemetry::Telemetry telemetry_;
  plan::PlanCache plan_cache_;
  plan::CompiledPlan* cur_plan_ = nullptr;  // plan driving the in-flight exchange
  // Latest provenance record per cached plan, so the hot path (cache hit)
  // is a single map find + O(1) ledger bump — no allocation, no string
  // formatting. Populated only on the cold compile/migrate paths.
  std::map<const plan::CompiledPlan*, std::uint64_t> plan_record_ids_;

  // verify_model derivation cache: the world transfer list and per-transfer
  // slab element counts depend only on the placement and exchange shape, not
  // on the plan under verification, so consecutive plan admissions (and
  // post-demotion re-verifications) reuse one ExchangePlan::full derivation.
  // The shared_ptr keeps the keyed placement alive so the identity compare
  // cannot alias a recycled allocation.
  struct VerifyDeriv {
    std::shared_ptr<const Placement> placement;
    MethodFlags flags{};
    Neighborhood nbhd{};
    Boundary boundary{};
    Radius radius{1};
    std::vector<std::pair<Transfer, std::size_t>> xfers;  // (transfer, slab elems)
  };
  mutable VerifyDeriv verify_deriv_;

  // Split-phase exchange state, valid between exchange_start/finish.
  struct InFlight {
    bool active = false;
    bool planned = false;
    sim::Time start_time = 0;  // virtual time of exchange_start (telemetry)
    std::vector<simpi::Request> recv_reqs;
    // Posted sends, kept here (not on the stack) so recover_abort can reset
    // them when a failure unwinds exchange_finish mid-flight.
    std::vector<simpi::Request> send_reqs;
    // Exactly one of the pair is set: a plain transfer or a whole group.
    std::vector<std::pair<TransferState*, AggGroup*>> recv_map;
    // Planned path: the captured H2D+unpack graph for each receive, indexed
    // like recv_reqs.
    std::vector<vgpu::GraphExec*> recv_graphs;
    std::vector<std::pair<sim::Time, TransferState*>> pending_sends;        // (data-ready, xfer)
    std::vector<std::pair<sim::Time, AggGroup*>> pending_group_sends;       // (all-ready, group)
  };
  InFlight inflight_;
};

}  // namespace stencil
