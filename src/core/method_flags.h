#pragma once

#include <cstdint>
#include <string>

namespace stencil {

/// Which exchange implementations the library may select (paper §III-C).
/// STAGED is the universal fallback; the others are enabled when supported
/// and allowed. The evaluation's "+remote/+colo/+peer/+kernel" column
/// groups correspond to cumulative unions of these flags.
enum class MethodFlags : std::uint32_t {
  kNone = 0,
  kStaged = 1u << 0,        // pack -> D2H -> MPI(host) -> H2D -> unpack
  kCudaAwareMpi = 1u << 1,  // pack -> MPI(device) -> unpack
  kColocated = 1u << 2,     // same node, different ranks: cudaIpc* direct copy
  kPeer = 1u << 3,          // same rank: cudaMemcpyPeerAsync
  kKernel = 1u << 4,        // self-exchange within one GPU
  kAll = kStaged | kColocated | kPeer | kKernel,
  kAllCudaAware = kCudaAwareMpi | kColocated | kPeer | kKernel,
};

constexpr MethodFlags operator|(MethodFlags a, MethodFlags b) {
  return static_cast<MethodFlags>(static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b));
}
constexpr MethodFlags operator&(MethodFlags a, MethodFlags b) {
  return static_cast<MethodFlags>(static_cast<std::uint32_t>(a) & static_cast<std::uint32_t>(b));
}
constexpr bool any(MethodFlags f) { return f != MethodFlags::kNone; }

/// The concrete method chosen for one subdomain pair.
enum class Method {
  kKernel,
  kPeer,
  kColocated,
  kCudaAwareMpi,
  kStaged,
};

inline const char* to_string(Method m) {
  switch (m) {
    case Method::kKernel: return "kernel";
    case Method::kPeer: return "peer";
    case Method::kColocated: return "colocated";
    case Method::kCudaAwareMpi: return "cuda-aware-mpi";
    case Method::kStaged: return "staged";
  }
  return "?";
}

/// How same-rank (PEER) transfers move non-contiguous halos (§VI):
/// kKernel packs into a dense buffer with a GPU kernel (the paper's
/// implementation); kMemcpy3D issues a strided DMA copy straight between
/// the subdomains — no kernels, but thin rows waste DMA bandwidth;
/// kAuto picks per transfer by modeled strided efficiency.
enum class PackMode {
  kKernel,
  kMemcpy3D,
  kAuto,
};

inline const char* to_string(PackMode m) {
  switch (m) {
    case PackMode::kKernel: return "kernel-pack";
    case PackMode::kMemcpy3D: return "memcpy3d";
    case PackMode::kAuto: return "auto";
  }
  return "?";
}

/// Which neighbors a stencil's shape requires (paper Fig. 1): face-only
/// stencils exchange 6 neighbors; stencils with in-plane diagonals add the
/// 12 edges; full 26-neighborhoods add the 8 corners.
enum class Neighborhood {
  kFaces,       // 6 neighbors (Fig. 1a)
  kFacesEdges,  // 18 neighbors (Fig. 1b)
  kFull,        // 26 neighbors
};

inline int neighbor_count(Neighborhood n) {
  switch (n) {
    case Neighborhood::kFaces: return 6;
    case Neighborhood::kFacesEdges: return 18;
    case Neighborhood::kFull: return 26;
  }
  return 0;
}

}  // namespace stencil
