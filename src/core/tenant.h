#pragma once

/// \file tenant.h
/// A tenant's slice of the shared machine.
///
/// The scheduler (src/sched) carves one `topo::Machine` into per-job slices
/// and hands each tenant rank a TenantView through RankCtx::tenant. With a
/// view installed, DistributedDomain partitions and places against the
/// *virtual* machine shape (num_vnodes x gpus_per_vnode) instead of the
/// physical one, derives its exchange tags inside the tenant's tagspace
/// window, and translates the resulting virtual GPU ids back to physical ids
/// before any runtime call. Without a view (tenant == nullptr) every code
/// path reduces to the pre-tenancy solo behaviour.
///
/// Invariants (checked by validate()):
///   - each vnode maps to exactly one distinct physical node, so the
///     "same vnode" test used for COLOCATED/peer specialization coincides
///     with "same physical node" and IPC/peer reachability is preserved;
///   - within a vnode the slice is a contiguous run of physical GPU slots
///     [gpu_base, gpu_base + gpus_per_vnode), matching the block GPU
///     assignment Cluster::run hands each rank;
///   - the tenant id fits the tagspace window table.

#include <stdexcept>
#include <string>
#include <vector>

#include "core/tagspace.h"

namespace stencil::core {

struct TenantView {
  int id = 0;                ///< tagspace window index [0, kMaxTenants)
  std::string name;          ///< human label for traces / telemetry / blame
  int phys_gpus_per_node = 0;  ///< physical GPUs per node on the machine
  int gpus_per_vnode = 0;    ///< virtual-node width (<= phys_gpus_per_node)
  int ranks_per_vnode = 0;   ///< tenant ranks per vnode
  /// Physical node backing each vnode; size() == num_vnodes.
  std::vector<int> phys_nodes;
  /// First physical GPU (node-local id) of each vnode's contiguous slice.
  std::vector<int> gpu_base;

  int num_vnodes() const { return static_cast<int>(phys_nodes.size()); }
  int world_size() const { return num_vnodes() * ranks_per_vnode; }

  /// Physical node backing tenant vnode `v`.
  int phys_node(int v) const { return phys_nodes.at(static_cast<std::size_t>(v)); }

  /// Virtual node-local GPU id for a physical node-local GPU id on vnode `v`.
  int vlocal(int v, int phys_local) const {
    return phys_local - gpu_base.at(static_cast<std::size_t>(v));
  }
  /// Physical node-local GPU id for a virtual node-local GPU id on vnode `v`.
  int plocal(int v, int virt_local) const {
    return virt_local + gpu_base.at(static_cast<std::size_t>(v));
  }

  /// Physical global GPU id for a virtual global GPU id (vnode-major, the
  /// layout HierarchicalPartition/Placement emit for the virtual machine).
  int phys_gpu(int virt_gpu) const {
    const int v = virt_gpu / gpus_per_vnode;
    return phys_node(v) * phys_gpus_per_node + plocal(v, virt_gpu % gpus_per_vnode);
  }

  void validate() const {
    if (id < 0 || id >= tagspace::kMaxTenants) {
      throw std::invalid_argument("tenant: id out of range: " + std::to_string(id));
    }
    if (phys_nodes.empty() || phys_nodes.size() != gpu_base.size()) {
      throw std::invalid_argument("tenant " + name + ": vnode tables empty or mismatched");
    }
    if (gpus_per_vnode <= 0 || gpus_per_vnode > phys_gpus_per_node ||
        ranks_per_vnode <= 0 || gpus_per_vnode % ranks_per_vnode != 0) {
      throw std::invalid_argument("tenant " + name + ": bad vnode shape " +
                                  std::to_string(gpus_per_vnode) + " gpus / " +
                                  std::to_string(ranks_per_vnode) + " ranks");
    }
    for (std::size_t i = 0; i < phys_nodes.size(); ++i) {
      if (gpu_base[i] < 0 || gpu_base[i] + gpus_per_vnode > phys_gpus_per_node) {
        throw std::invalid_argument("tenant " + name + ": vnode " +
                                    std::to_string(i) + " slice exceeds the node");
      }
      for (std::size_t j = i + 1; j < phys_nodes.size(); ++j) {
        if (phys_nodes[i] == phys_nodes[j]) {
          throw std::invalid_argument(
              "tenant " + name + ": two vnodes share physical node " +
              std::to_string(phys_nodes[i]));
        }
      }
    }
  }
};

}  // namespace stencil::core
