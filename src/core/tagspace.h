#pragma once

/// \file tagspace.h
/// Single source of truth for every MPI tag the library derives.
///
/// Layout (DESIGN.md §14). Data tags are non-negative; every service tag is
/// negative so user-visible exchange traffic can never alias control traffic:
///
///   data        [0, 9'999'989]              subdomain-linear * 26 + direction
///   setup       [-9'999'999, -10]           COLOCATED IPC handshake, -(data+10)
///   aggregate   [-10'999'999, -10'000'000]  per-peer group header, -(10M+rank)
///   checkpoint  [-49'999'999, -40'000'000]  recover blobs, -(40M + lin*64 + q)
///   restore     [-59'999'999, -50'000'000]  recover blobs, -(50M + lin*64 + q)
///   collective  [-60'999'999, -60'000'000]  simpi collectives (allgather,
///                                           sub-communicator barrier rounds)
///
/// Multi-tenancy (src/sched) slices the data span into fixed per-tenant
/// windows of kTenantDataSpan tags: tenant t owns
/// [t * kTenantDataSpan, (t+1) * kTenantDataSpan - 1]. A solo job is tenant 0
/// and may additionally run past its window into the legacy full span — the
/// static verifier only enforces window membership when a tenant view is
/// active, so pre-tenancy callers are unaffected. Setup tags derive from data
/// tags, so tenant isolation of the data span isolates the setup span too.
///
/// Each derivation is bounds-checked: before this header existed the setup
/// space silently bled into the aggregate space once a data tag exceeded
/// 9'999'989 (~385k subdomains) and checkpoint tags bled into restore tags
/// once lin*64+q reached 10'000'000 — near-miss collisions surfaced by the
/// static verifier (src/verify). Exhaustion now throws instead of aliasing.
/// PR 7 left one latent global-tag assumption: the simpi allgather tags
/// (-1001/-1002) sat *inside* the colocated-setup span and could alias the
/// setup handshake for data tags 991/992 if a collective overlapped a
/// re-specialization. Collectives now live in their own reserved window.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace stencil::tagspace {

inline constexpr int kDirectionsPerSubdomain = 26;
/// Largest data tag whose derived setup tag still fits the setup span.
inline constexpr int kMaxDataTag = 9'999'989;
inline constexpr int kSetupOffset = 10;
inline constexpr int kAggBase = 10'000'000;
inline constexpr int kMaxRanks = 1'000'000;
inline constexpr int kCheckpointBase = 40'000'000;
inline constexpr int kRestoreBase = 50'000'000;
inline constexpr int kBlobSpan = 10'000'000;
/// Quantity slots folded into one checkpoint/restore tag.
inline constexpr int kMaxQuantities = 64;
inline constexpr int kCollectiveBase = 60'000'000;
inline constexpr int kCollectiveSpan = 1'000'000;

/// Concurrent tenants one machine can host (src/sched). The data span is
/// split into kMaxTenants equal windows; 16 * 600'000 = 9'600'000 tags stay
/// inside [0, kMaxDataTag].
inline constexpr int kMaxTenants = 16;
inline constexpr int kTenantDataSpan = 600'000;
static_assert(static_cast<std::int64_t>(kMaxTenants) * kTenantDataSpan <=
                  static_cast<std::int64_t>(kMaxDataTag) + 1,
              "tenant windows must tile inside the data span");

struct Range {
  int lo;
  int hi;  // inclusive
  const char* name;
};

/// Name of the aggregation-header range; group messages claim it so the
/// static verifier knows they occupy that span by design.
inline constexpr const char* kAggRangeName = "aggregate-header";

/// Name of the collective range; simpi allgather/barrier traffic claims it.
inline constexpr const char* kCollectiveRangeName = "collective";

/// Service tag spans that data tags (and each other) must stay clear of.
inline constexpr std::array<Range, 5> reserved_ranges() {
  return {{
      {-(kAggBase - 1), -kSetupOffset, "colocated-setup"},
      {-(kAggBase + kMaxRanks - 1), -kAggBase, kAggRangeName},
      {-(kCheckpointBase + kBlobSpan - 1), -kCheckpointBase, "checkpoint"},
      {-(kRestoreBase + kBlobSpan - 1), -kRestoreBase, "restore"},
      {-(kCollectiveBase + kCollectiveSpan - 1), -kCollectiveBase,
       kCollectiveRangeName},
  }};
}

/// Inclusive data-tag window owned by one tenant.
inline Range tenant_data_range(int tenant) {
  if (tenant < 0 || tenant >= kMaxTenants) {
    throw std::overflow_error("tagspace: tenant id out of range: " +
                              std::to_string(tenant));
  }
  return {tenant * kTenantDataSpan, (tenant + 1) * kTenantDataSpan - 1,
          "tenant-data"};
}

/// Halo-exchange data tag: unique per (source subdomain, direction), offset
/// into the owning tenant's window. Tenant 0 (the solo default) keeps the
/// legacy full-span bound so pre-tenancy jobs with many subdomains still
/// derive tags; tenants > 0 must fit their window or the derivation throws
/// before any cross-tenant alias can reach the wire.
inline int data_tag(std::int64_t src_linear, int direction_index,
                    int tenant = 0) {
  if (tenant < 0 || tenant >= kMaxTenants) {
    throw std::overflow_error("tagspace: tenant id out of range: " +
                              std::to_string(tenant));
  }
  const std::int64_t local =
      src_linear * kDirectionsPerSubdomain + direction_index;
  const std::int64_t t =
      static_cast<std::int64_t>(tenant) * kTenantDataSpan + local;
  const std::int64_t bound = tenant == 0 ? kMaxDataTag : kTenantDataSpan - 1;
  if (src_linear < 0 || direction_index < 0 ||
      direction_index >= kDirectionsPerSubdomain || local > bound) {
    throw std::overflow_error(
        "tagspace: data tag space exhausted (subdomain linear index " +
        std::to_string(src_linear) + ", direction " +
        std::to_string(direction_index) + ", tenant " +
        std::to_string(tenant) + ")");
  }
  return static_cast<int>(t);
}

/// COLOCATED IPC-handshake tag paired with a data tag.
inline int setup_tag(int data_tag) {
  if (data_tag < 0 || data_tag > kMaxDataTag) {
    throw std::overflow_error("tagspace: setup tag for out-of-range data tag " +
                              std::to_string(data_tag));
  }
  return -(data_tag + kSetupOffset);
}

/// Aggregated-group header tag, one per sending rank.
inline int agg_tag(int src_rank) {
  if (src_rank < 0 || src_rank >= kMaxRanks) {
    throw std::overflow_error("tagspace: aggregate tag for rank " +
                              std::to_string(src_rank));
  }
  return -(kAggBase + src_rank);
}

namespace detail {
inline int blob_tag(int base, std::int64_t lin, std::size_t q, const char* what) {
  const std::int64_t slot =
      lin * kMaxQuantities + static_cast<std::int64_t>(q);
  if (lin < 0 || q >= static_cast<std::size_t>(kMaxQuantities) ||
      slot >= kBlobSpan) {
    throw std::overflow_error(
        std::string("tagspace: ") + what + " tag space exhausted (subdomain " +
        std::to_string(lin) + ", quantity " + std::to_string(q) + ")");
  }
  return -(base + static_cast<int>(slot));
}
}  // namespace detail

/// Buddy-checkpoint blob tag (recover layer).
inline int checkpoint_tag(std::int64_t lin, std::size_t q) {
  return detail::blob_tag(kCheckpointBase, lin, q, "checkpoint");
}

/// Restore blob tag (recover layer).
inline int restore_tag(std::int64_t lin, std::size_t q) {
  return detail::blob_tag(kRestoreBase, lin, q, "restore");
}

/// Collective tag (simpi allgather phases, sub-communicator barrier rounds).
inline int collective_tag(int slot) {
  if (slot < 0 || slot >= kCollectiveSpan) {
    throw std::overflow_error("tagspace: collective tag slot out of range: " +
                              std::to_string(slot));
  }
  return -(kCollectiveBase + slot);
}

}  // namespace stencil::tagspace
