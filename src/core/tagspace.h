#pragma once

/// \file tagspace.h
/// Single source of truth for every MPI tag the library derives.
///
/// Layout (DESIGN.md §14). Data tags are non-negative; every service tag is
/// negative so user-visible exchange traffic can never alias control traffic:
///
///   data        [0, 9'999'989]              subdomain-linear * 26 + direction
///   setup       [-9'999'999, -10]           COLOCATED IPC handshake, -(data+10)
///   aggregate   [-10'999'999, -10'000'000]  per-peer group header, -(10M+rank)
///   checkpoint  [-49'999'999, -40'000'000]  recover blobs, -(40M + lin*64 + q)
///   restore     [-59'999'999, -50'000'000]  recover blobs, -(50M + lin*64 + q)
///
/// Each derivation is bounds-checked: before this header existed the setup
/// space silently bled into the aggregate space once a data tag exceeded
/// 9'999'989 (~385k subdomains) and checkpoint tags bled into restore tags
/// once lin*64+q reached 10'000'000 — near-miss collisions surfaced by the
/// static verifier (src/verify). Exhaustion now throws instead of aliasing.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace stencil::tagspace {

inline constexpr int kDirectionsPerSubdomain = 26;
/// Largest data tag whose derived setup tag still fits the setup span.
inline constexpr int kMaxDataTag = 9'999'989;
inline constexpr int kSetupOffset = 10;
inline constexpr int kAggBase = 10'000'000;
inline constexpr int kMaxRanks = 1'000'000;
inline constexpr int kCheckpointBase = 40'000'000;
inline constexpr int kRestoreBase = 50'000'000;
inline constexpr int kBlobSpan = 10'000'000;
/// Quantity slots folded into one checkpoint/restore tag.
inline constexpr int kMaxQuantities = 64;

struct Range {
  int lo;
  int hi;  // inclusive
  const char* name;
};

/// Name of the aggregation-header range; group messages claim it so the
/// static verifier knows they occupy that span by design.
inline constexpr const char* kAggRangeName = "aggregate-header";

/// Service tag spans that data tags (and each other) must stay clear of.
inline constexpr std::array<Range, 4> reserved_ranges() {
  return {{
      {-(kAggBase - 1), -kSetupOffset, "colocated-setup"},
      {-(kAggBase + kMaxRanks - 1), -kAggBase, kAggRangeName},
      {-(kCheckpointBase + kBlobSpan - 1), -kCheckpointBase, "checkpoint"},
      {-(kRestoreBase + kBlobSpan - 1), -kRestoreBase, "restore"},
  }};
}

/// Halo-exchange data tag: unique per (source subdomain, direction).
inline int data_tag(std::int64_t src_linear, int direction_index) {
  const std::int64_t t =
      src_linear * kDirectionsPerSubdomain + direction_index;
  if (src_linear < 0 || direction_index < 0 ||
      direction_index >= kDirectionsPerSubdomain || t > kMaxDataTag) {
    throw std::overflow_error(
        "tagspace: data tag space exhausted (subdomain linear index " +
        std::to_string(src_linear) + ", direction " +
        std::to_string(direction_index) + ")");
  }
  return static_cast<int>(t);
}

/// COLOCATED IPC-handshake tag paired with a data tag.
inline int setup_tag(int data_tag) {
  if (data_tag < 0 || data_tag > kMaxDataTag) {
    throw std::overflow_error("tagspace: setup tag for out-of-range data tag " +
                              std::to_string(data_tag));
  }
  return -(data_tag + kSetupOffset);
}

/// Aggregated-group header tag, one per sending rank.
inline int agg_tag(int src_rank) {
  if (src_rank < 0 || src_rank >= kMaxRanks) {
    throw std::overflow_error("tagspace: aggregate tag for rank " +
                              std::to_string(src_rank));
  }
  return -(kAggBase + src_rank);
}

namespace detail {
inline int blob_tag(int base, std::int64_t lin, std::size_t q, const char* what) {
  const std::int64_t slot =
      lin * kMaxQuantities + static_cast<std::int64_t>(q);
  if (lin < 0 || q >= static_cast<std::size_t>(kMaxQuantities) ||
      slot >= kBlobSpan) {
    throw std::overflow_error(
        std::string("tagspace: ") + what + " tag space exhausted (subdomain " +
        std::to_string(lin) + ", quantity " + std::to_string(q) + ")");
  }
  return -(base + static_cast<int>(slot));
}
}  // namespace detail

/// Buddy-checkpoint blob tag (recover layer).
inline int checkpoint_tag(std::int64_t lin, std::size_t q) {
  return detail::blob_tag(kCheckpointBase, lin, q, "checkpoint");
}

/// Restore blob tag (recover layer).
inline int restore_tag(std::int64_t lin, std::size_t q) {
  return detail::blob_tag(kRestoreBase, lin, q, "restore");
}

}  // namespace stencil::tagspace
