#include "core/distributed_domain.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "core/tagspace.h"
#include "core/transfer_state.h"
#include "fault/fault.h"

namespace stencil {

namespace {

/// Setup message a COLOCATED receiver sends its sender: the exported
/// buffer handle plus the event channel's address (our cudaIpcEventHandle,
/// opaque on the wire just as CUDA's is).
struct ColoSetupMsg {
  vgpu::IpcMemHandle handle;
  void* channel;
};

int setup_tag(const Transfer& t) { return tagspace::setup_tag(t.tag); }

/// Tag for the aggregated message from `src_rank` (a rank of `comm`);
/// (src, dst) channels keep it unique, and the tagspace layout keeps it
/// clear of data and setup tags. Derived from the *world* rank so the
/// header tags of concurrent tenants (whose sub-ranks all start at 0)
/// never alias — identical to the sub-rank for solo jobs.
int agg_tag(const simpi::Comm& comm, int src_rank) {
  return tagspace::agg_tag(comm.world_rank_of(src_rank));
}

std::string dir_str(Dim3 d) {
  auto c = [](std::int64_t v) { return v > 0 ? "+" : v < 0 ? "-" : "0"; };
  return std::string(c(d.x)) + c(d.y) + c(d.z);
}

}  // namespace

DistributedDomain::~DistributedDomain() = default;

DistributedDomain::DistributedDomain(RankCtx& ctx, Dim3 domain) : ctx_(ctx), domain_(domain) {
  if (domain_.x <= 0 || domain_.y <= 0 || domain_.z <= 0) {
    throw std::invalid_argument("DistributedDomain: domain extents must be positive");
  }
  install_admission();
}

void DistributedDomain::require_unrealized(const char* what) const {
  if (realized_) throw std::logic_error(std::string(what) + " after realize()");
}

void DistributedDomain::set_radius(Radius r) {
  require_unrealized("set_radius");
  if (r.min() < 0 || r.max() < 1) {
    throw std::invalid_argument("set_radius: widths must be >= 0 with at least one > 0");
  }
  radius_ = r;
}

void DistributedDomain::set_methods(MethodFlags f) {
  require_unrealized("set_methods");
  if (!any(f & (MethodFlags::kStaged | MethodFlags::kCudaAwareMpi))) {
    throw std::invalid_argument("set_methods: need STAGED or CUDA-aware MPI as the remote method");
  }
  if (any(f & MethodFlags::kCudaAwareMpi) && !ctx_.machine.arch().cuda_aware_mpi) {
    throw std::invalid_argument("set_methods: platform MPI is not CUDA-aware");
  }
  flags_ = f;
}

void DistributedDomain::set_placement(PlacementStrategy s) {
  require_unrealized("set_placement");
  strategy_ = s;
}

void DistributedDomain::set_neighborhood(Neighborhood n) {
  require_unrealized("set_neighborhood");
  nbhd_ = n;
}

void DistributedDomain::set_boundary(Boundary b) {
  require_unrealized("set_boundary");
  boundary_ = b;
}

void DistributedDomain::set_remote_aggregation(bool on) {
  require_unrealized("set_remote_aggregation");
  aggregate_remote_ = on;
}

void DistributedDomain::set_pack_mode(PackMode m) {
  require_unrealized("set_pack_mode");
  pack_mode_ = m;
}

void DistributedDomain::set_staged_zero_copy(bool on) {
  require_unrealized("set_staged_zero_copy");
  staged_zero_copy_ = on;
}

void DistributedDomain::set_persistent(bool on) {
  if (inflight_.active) throw std::logic_error("set_persistent while an exchange is in flight");
  persistent_ = on;
}

std::map<Method, std::pair<int, std::size_t>> DistributedDomain::method_bytes_histogram() const {
  std::map<Method, std::pair<int, std::size_t>> h;
  for (const auto& xp : xfers_) {
    auto& e = h[xp->t.method];
    ++e.first;
    e.second += xp->bytes;
  }
  return h;
}

std::size_t DistributedDomain::add_data_bytes(const std::string& name, std::size_t elem_size) {
  require_unrealized("add_data");
  if (elem_size == 0) throw std::invalid_argument("add_data: zero element size");
  quantities_.push_back(Quantity{name, elem_size});
  return quantities_.size() - 1;
}

const Placement& DistributedDomain::placement() const {
  if (!placement_) throw std::logic_error("placement() before realize()");
  return *placement_;
}

LocalDomain* DistributedDomain::local_by_gpu(int ggpu) {
  auto it = local_index_by_gpu_.find(ggpu);
  return it == local_index_by_gpu_.end() ? nullptr : locals_[it->second].get();
}

LocalDomain* DistributedDomain::local_by_subdomain(Dim3 idx) {
  if (placement_ == nullptr) return nullptr;
  const auto it =
      local_index_by_subdomain_.find(idx.linearize(placement_->partition().global_extent()));
  return it == local_index_by_subdomain_.end() ? nullptr : locals_[it->second].get();
}

void DistributedDomain::realize() {
  require_unrealized("realize");
  if (quantities_.empty()) throw std::logic_error("realize: no quantities added");
  for (const auto& q : quantities_) bytes_per_point_ += q.elem_size;

  // Phase 1+2 of the paper's setup: partition and placement (shared across
  // ranks — deterministic, needs no communication). A tenant partitions
  // over its virtual shape (vnodes x gpus_per_vnode) instead of the
  // physical machine; the first vnode's slot base anchors the bandwidth
  // lookups (slices are slot-homogeneous to a good approximation on the
  // symmetric archetypes).
  const core::TenantView* tv = ctx_.tenant;
  if (tv != nullptr) {
    tv->validate();
    if (ctx_.comm.size() != tv->world_size()) {
      throw std::invalid_argument("realize: tenant communicator has " +
                                  std::to_string(ctx_.comm.size()) + " ranks, view expects " +
                                  std::to_string(tv->world_size()));
    }
  }
  placement_ = ctx_.cluster.placement_cached(domain_, radius_, bytes_per_point_, nbhd_, strategy_,
                                             boundary_, part_nodes(), part_gpn(),
                                             tv != nullptr ? tv->gpu_base[0] : 0);
  const auto& hp = placement_->partition();

  // Materialize this rank's subdomains (the live occupancy of each GPU —
  // one subdomain per GPU until recovery re-homing adds adoptees).
  // Placement speaks virtual (partition) coordinates; LocalDomain and the
  // runtime speak physical GPU ids.
  const int phys_gpn = ctx_.machine.gpus_per_node();
  const int vnode = part_node();
  for (int ggpu : ctx_.gpus) {
    const int vlocal = tv != nullptr ? tv->vlocal(vnode, ggpu % phys_gpn) : ggpu % phys_gpn;
    for (const Dim3 idx : placement_->subdomains_on(vnode, vlocal)) {
      const Dim3 sz = hp.subdomain_size(idx);
      const Dim3 origin = hp.subdomain_origin(idx);
      locals_.push_back(std::make_unique<LocalDomain>(ctx_.rt, ggpu, idx, origin, sz, radius_,
                                                      quantities_));
      local_index_by_gpu_[ggpu] = locals_.size() - 1;
      local_index_by_subdomain_[idx.linearize(hp.global_extent())] = locals_.size() - 1;
    }
  }

  // Enable peer access between my GPUs and every capable same-node GPU this
  // job owns (needed for PEER and for direct COLOCATED copies). A tenant
  // only touches its own slice — peer capability on GPUs of co-tenants is
  // their business.
  const int slice_lo = ctx_.node() * phys_gpn + (tv != nullptr ? tv->gpu_base[vnode] : 0);
  const int slice_hi = slice_lo + part_gpn();
  for (int g : ctx_.gpus) {
    for (int h = slice_lo; h < slice_hi; ++h) {
      if (g != h && ctx_.rt.can_access_peer(g, h)) {
        ctx_.rt.enable_peer_access(g, h);
        ctx_.rt.enable_peer_access(h, g);
      }
    }
  }

  // Phase 3: capability specialization. The plan is built in partition
  // (virtual) GPU coordinates with tags inside this tenant's tag window,
  // then translated to physical GPU ids so every downstream consumer —
  // streams, buffers, machine cost queries, IPC — sees real hardware.
  plan_ = ExchangePlan::for_rank(*placement_, ctx_.comm.rank(), part_rpn(), flags_, nbhd_,
                                 boundary_, tenant_id());
  if (tv != nullptr) {
    plan_.map_gpus([tv](int vgpu) { return tv->phys_gpu(vgpu); });
  }
  build_transfer_states();
  plan_.export_metrics(telemetry_.metrics());
  if (aggregate_remote_) build_aggregation_groups();
  record_specialization();
  record_aggregation();
  colocated_setup();
  ctx_.comm.barrier();
  realized_ = true;
}

void DistributedDomain::build_aggregation_groups() {
  // Group staged transfers by peer rank, separately for the send and
  // receive sides, in deterministic (plan) order so both ends compute the
  // same member offsets.
  std::map<int, std::vector<TransferState*>> by_dst, by_src;
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.t.method != Method::kStaged || x.bytes == 0) continue;
    if (x.i_send) by_dst[x.t.dst_rank].push_back(&x);
    if (x.i_recv) by_src[x.t.src_rank].push_back(&x);
  }
  const auto build = [&](std::map<int, std::vector<TransferState*>>& sides,
                         std::vector<std::unique_ptr<AggGroup>>& out) {
    for (auto& [peer, members] : sides) {
      auto g = std::make_unique<AggGroup>();
      g->peer_rank = peer;
      // Both ends must agree on member offsets; the transfer tag is unique
      // and identical on both sides, so it defines the layout.
      std::sort(members.begin(), members.end(),
                [](const TransferState* a, const TransferState* b) { return a->t.tag < b->t.tag; });
      for (TransferState* x : members) {
        x->aggregated = true;
        g->members.emplace_back(x, g->bytes);
        g->bytes += x->bytes;
      }
      g->host = ctx_.rt.alloc_pinned_host(ctx_.node(), g->bytes);
      out.push_back(std::move(g));
    }
  };
  build(by_dst, send_groups_);
  build(by_src, recv_groups_);
}

void DistributedDomain::build_one_transfer(TransferState& x, const Transfer& t) {
  const auto& hp = placement_->partition();
  x.t = t;
  x.i_send = t.src_rank == ctx_.comm.rank();
  x.i_recv = t.dst_rank == ctx_.comm.rank();
  const Dim3 src_sz = hp.subdomain_size(t.src_idx);
  const Dim3 dst_sz = hp.subdomain_size(t.dst_idx);
  x.src_region = interior_slab(src_sz, t.dir, radius_);
  x.dst_region = halo_slab(dst_sz, t.dir, radius_);
  if (x.src_region.extent != x.dst_region.extent) {
    throw std::logic_error("transfer " + t.src_idx.str() + "->" + t.dst_idx.str() + " dir " +
                           dir_str(t.dir) + ": slab shapes differ");
  }
  x.bytes = static_cast<std::size_t>(x.src_region.volume()) * bytes_per_point_;
  if (x.bytes == 0) return;  // asymmetric radius: nothing moves this way
  if (x.i_send) x.src_ld = local_by_subdomain(t.src_idx);
  if (x.i_recv) x.dst_ld = local_by_subdomain(t.dst_idx);

  auto& rt = ctx_.rt;
  switch (t.method) {
    case Method::kKernel:
      if (x.i_send) x.src_stream = rt.create_stream(t.src_gpu);
      break;
    case Method::kPeer:
      // Same rank: both halves are ours.
      x.src_stream = rt.create_stream(t.src_gpu);
      x.dst_stream = rt.create_stream(t.dst_gpu);
      x.src_pack = rt.alloc_device(t.src_gpu, x.bytes);
      x.dst_pack = rt.alloc_device(t.dst_gpu, x.bytes);
      break;
    case Method::kColocated:
      if (x.i_send) {
        x.src_stream = rt.create_stream(t.src_gpu);
        x.src_pack = rt.alloc_device(t.src_gpu, x.bytes);
      }
      if (x.i_recv) {
        x.dst_stream = rt.create_stream(t.dst_gpu);
        x.dst_pack = rt.alloc_device(t.dst_gpu, x.bytes);
        x.channel = std::make_unique<IpcEventChannel>();
      }
      break;
    case Method::kCudaAwareMpi:
      if (x.i_send) {
        x.src_stream = rt.create_stream(t.src_gpu);
        x.src_pack = rt.alloc_device(t.src_gpu, x.bytes);
      }
      if (x.i_recv) {
        x.dst_stream = rt.create_stream(t.dst_gpu);
        x.dst_pack = rt.alloc_device(t.dst_gpu, x.bytes);
      }
      break;
    case Method::kStaged:
      if (x.i_send) {
        x.src_stream = rt.create_stream(t.src_gpu);
        x.src_pack = rt.alloc_device(t.src_gpu, x.bytes);
        x.src_host = rt.alloc_pinned_host(ctx_.machine.node_of(t.src_gpu), x.bytes);
      }
      if (x.i_recv) {
        x.dst_stream = rt.create_stream(t.dst_gpu);
        x.dst_pack = rt.alloc_device(t.dst_gpu, x.bytes);
        x.dst_host = rt.alloc_pinned_host(ctx_.machine.node_of(t.dst_gpu), x.bytes);
      }
      break;
  }
}

void DistributedDomain::build_transfer_states() {
  for (const Transfer& t : plan_.transfers()) {
    auto xp = std::make_unique<TransferState>();
    build_one_transfer(*xp, t);
    if (xp->bytes == 0) continue;  // asymmetric radius: nothing moves this way
    xfers_.push_back(std::move(xp));
  }
}

void DistributedDomain::colocated_setup() {
  auto& comm = ctx_.comm;
  // Receivers export their packed buffer and event channel. Eager messages
  // complete immediately, so every rank can post all of its setup sends
  // before receiving any.
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.t.method != Method::kColocated || !x.i_recv) continue;
    ColoSetupMsg msg{ctx_.rt.ipc_get_mem_handle(x.dst_pack), x.channel.get()};
    comm.send(simpi::Payload::of_values(&msg, 1), x.t.src_rank, setup_tag(x.t));
  }
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.t.method != Method::kColocated || !x.i_send) continue;
    ColoSetupMsg msg{};
    comm.recv(simpi::Payload::of_values(&msg, 1), x.t.dst_rank, setup_tag(x.t));
    x.peer_channel = static_cast<IpcEventChannel*>(msg.channel);
    x.mapped = ctx_.rt.ipc_open_mem_handle(msg.handle, x.t.src_gpu);
  }
}

void DistributedDomain::record_specialization() {
  explain::Ledger* led = ledger();
  if (led == nullptr) return;
  const sim::Time now = ctx_.engine().now();
  std::map<Method, std::pair<std::uint64_t, std::uint64_t>> per;  // (transfers, bytes)
  for (const auto& xp : xfers_) {
    auto& [n, b] = per[xp->t.method];
    ++n;
    b += xp->bytes;
  }
  for (const auto& [m, nb] : per) {
    explain::DecisionRecord rec;
    rec.kind = explain::DecisionKind::kSpecialization;
    rec.at = now;
    rec.actor = ctx_.comm.rank();
    rec.subject = std::to_string(nb.first) + " transfers, " + std::to_string(nb.second) + " bytes";
    rec.chosen = to_string(m);
    rec.chosen_score = static_cast<double>(static_cast<int>(m));
    if (m != Method::kStaged) {
      // Every rung could instead have taken the universal fallback; the
      // positive delta is how far up the ladder the capability check got.
      rec.rejected.push_back({"staged (universal fallback)",
                              static_cast<double>(static_cast<int>(Method::kStaged))});
    } else {
      rec.rejected.push_back({"cuda-aware-mpi (capability absent or disabled)",
                              static_cast<double>(static_cast<int>(Method::kCudaAwareMpi))});
    }
    rec.detail = "score = specialization rung (0 kernel ... 4 staged; lower is better)";
    led->append(std::move(rec));
  }
}

void DistributedDomain::record_aggregation() {
  explain::Ledger* led = ledger();
  if (led == nullptr) return;
  // Staged MPI messages this rank moves per exchange when each transfer
  // ships alone, vs one grouped message per (peer, direction).
  std::uint64_t msgs = 0;
  std::set<int> send_peers, recv_peers;
  for (const auto& xp : xfers_) {
    if (xp->t.method != Method::kStaged || xp->bytes == 0) continue;
    if (xp->i_send) {
      ++msgs;
      send_peers.insert(xp->t.dst_rank);
    }
    if (xp->i_recv) {
      ++msgs;
      recv_peers.insert(xp->t.src_rank);
    }
  }
  if (msgs == 0) return;  // no staged traffic: aggregation is moot
  const auto grouped = static_cast<double>(send_peers.size() + recv_peers.size());
  explain::DecisionRecord rec;
  rec.kind = explain::DecisionKind::kAggregation;
  rec.at = ctx_.engine().now();
  rec.actor = ctx_.comm.rank();
  rec.subject = std::to_string(msgs) + " staged transfers";
  if (aggregate_remote_) {
    rec.chosen = "on (one message per peer per direction)";
    rec.chosen_score = grouped;
    rec.rejected.push_back({"off (one message per transfer)", static_cast<double>(msgs)});
  } else {
    rec.chosen = "off (one message per transfer)";
    rec.chosen_score = static_cast<double>(msgs);
    rec.rejected.push_back({"on (one message per peer per direction)", grouped});
  }
  rec.detail = "score = staged MPI messages per exchange";
  led->append(std::move(rec));
}

void DistributedDomain::record_demotion(const TransferState& x, Method from, Method to) {
  explain::Ledger* led = ledger();
  if (led == nullptr) return;
  explain::DecisionRecord rec;
  rec.kind = explain::DecisionKind::kDemotion;
  rec.at = ctx_.engine().now();
  rec.actor = ctx_.comm.rank();
  rec.subject = "tag=" + std::to_string(x.t.tag) + " (" + std::to_string(x.bytes) + " bytes)";
  rec.chosen = to_string(to);
  rec.chosen_score = static_cast<double>(static_cast<int>(to));
  // Negative delta: the revoked rung was better, the fault forced the move.
  rec.rejected.push_back({std::string(to_string(from)) + " (capability revoked)",
                          static_cast<double>(static_cast<int>(from))});
  rec.detail = "fault-forced fail-down; dirties this tag's frozen programs in every cached plan";
  led->append(std::move(rec));
}

void DistributedDomain::demote_transfer(TransferState& x, Method target) {
  record_demotion(x, x.t.method, target);
  if (auto* rec = ctx_.rt.recorder()) {
    const sim::Time now = ctx_.engine().now();
    rec->record("fault",
                "demote tag=" + std::to_string(x.t.tag) + " " + to_string(x.t.method) + "->" +
                    to_string(target),
                now, now);
  }
  telemetry_.on_demotion(x.t.tag, to_string(x.t.method), to_string(target), ctx_.engine().now());
  x.t.method = target;
  plan_.set_method(x.t.tag, target);
  plan_.export_metrics(telemetry_.metrics());
  // The specialization table changed shape: version it and dirty the
  // transfer's frozen programs in every cached plan. The next acquire
  // rebuilds only those entries (partial invalidation, not a recompile).
  ++topo_epoch_;
  plan_cache_.invalidate_tag(x.t.tag);
}

vgpu::AccessList DistributedDomain::pack_access(const TransferState& x,
                                                const vgpu::Buffer& dst) const {
  vgpu::AccessList a;
  if (ctx_.rt.checker() != nullptr) {
    x.src_ld->append_region_accesses(x.src_region, active_qs_, false, a);
    a.push_back({&dst, 0, x.active_bytes, true});
  }
  return a;
}

vgpu::AccessList DistributedDomain::unpack_access(const TransferState& x,
                                                  const vgpu::Buffer& src) const {
  vgpu::AccessList a;
  if (ctx_.rt.checker() != nullptr) {
    a.push_back({&src, 0, x.active_bytes, false});
    x.dst_ld->append_region_accesses(x.dst_region, active_qs_, true, a);
  }
  return a;
}

vgpu::AccessList DistributedDomain::self_access(const TransferState& x) const {
  vgpu::AccessList a;
  if (ctx_.rt.checker() != nullptr) {
    x.src_ld->append_region_accesses(x.src_region, active_qs_, false, a);
    x.src_ld->append_region_accesses(x.dst_region, active_qs_, true, a);
  }
  return a;
}

vgpu::AccessList DistributedDomain::copy3d_access(const TransferState& x, std::size_t q) const {
  vgpu::AccessList a;
  if (ctx_.rt.checker() != nullptr) {
    const std::vector<std::size_t> one{q};
    x.src_ld->append_region_accesses(x.src_region, one, false, a);
    x.dst_ld->append_region_accesses(x.dst_region, one, true, a);
  }
  return a;
}

bool DistributedDomain::peer_use_3d(const TransferState& x) const {
  bool use_3d = pack_mode_ == PackMode::kMemcpy3D;
  if (pack_mode_ == PackMode::kAuto) {
    const auto& arch = ctx_.machine.arch();
    const double link = arch.bw_nvlink_gpu_gpu * arch.eff_nvlink;  // peer-pair estimate
    const double pack_bw = arch.bw_gpu_mem * arch.eff_pack;
    const double b = static_cast<double>(x.active_bytes);
    const double kernel_est =
        2.0 * (sim::to_seconds(arch.lat_kernel) + b / (pack_bw * (1ull << 30))) +
        sim::to_seconds(arch.lat_gpu_copy) + b / (link * (1ull << 30));
    const double eff = ctx_.machine.strided_efficiency(x.src_ld->row_bytes(x.src_region, 0));
    const double strided_est =
        static_cast<double>(active_qs_.size()) * sim::to_seconds(arch.lat_gpu_copy) +
        b / (link * eff * (1ull << 30));
    use_3d = strided_est < kernel_est;
  }
  return use_3d;
}

void DistributedDomain::ensure_staged_buffers(TransferState& x) {
  auto& rt = ctx_.rt;
  if (x.i_send) {
    if (!x.src_stream.valid()) x.src_stream = rt.create_stream(x.t.src_gpu);
    if (!x.src_pack.valid()) x.src_pack = rt.alloc_device(x.t.src_gpu, x.bytes);
    if (!x.src_host.valid()) {
      x.src_host = rt.alloc_pinned_host(ctx_.machine.node_of(x.t.src_gpu), x.bytes);
    }
  }
  if (x.i_recv) {
    if (!x.dst_stream.valid()) x.dst_stream = rt.create_stream(x.t.dst_gpu);
    if (!x.dst_pack.valid()) x.dst_pack = rt.alloc_device(x.t.dst_gpu, x.bytes);
    if (!x.dst_host.valid()) {
      x.dst_host = rt.alloc_pinned_host(ctx_.machine.node_of(x.t.dst_gpu), x.bytes);
    }
  }
}

void DistributedDomain::maybe_respecialize() {
  const fault::Injector* inj = ctx_.machine.fault_injector();
  if (inj == nullptr || !inj->active()) return;
  const sim::Time now = ctx_.engine().now();
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    Method target = x.t.method;
    switch (x.t.method) {
      case Method::kPeer:
        // Peer access between distinct GPUs revoked: the direct copy path
        // is gone. COLOCATED does not apply within one rank, so fall all
        // the way down to STAGED (MPI to self over shared memory).
        if (x.t.src_gpu != x.t.dst_gpu && !ctx_.rt.peer_enabled(x.t.src_gpu, x.t.dst_gpu)) {
          target = Method::kStaged;
        }
        break;
      case Method::kCudaAwareMpi:
        // The MPI library lost its CUDA-awareness (e.g. transport fallback
        // after a fault): stop handing it device pointers.
        if (inj->cuda_aware_disabled(now)) target = Method::kStaged;
        break;
      default:
        // KERNEL and STAGED have no capability to lose; COLOCATED staleness
        // is detected by the sender at copy time (Phase 2) because only the
        // mapping's owner knows when it was opened.
        break;
    }
    if (target != x.t.method) {
      demote_transfer(x, target);
      ensure_staged_buffers(x);
    }
  }
}

void DistributedDomain::exchange() {
  exchange_start();
  exchange_finish();
}

void DistributedDomain::exchange(const std::vector<std::size_t>& quantities) {
  exchange_start(quantities);
  exchange_finish();
}

void DistributedDomain::exchange_start() {
  std::vector<std::size_t> all(quantities_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  exchange_start(all);
}

void DistributedDomain::exchange_start(const std::vector<std::size_t>& quantities) {
  if (!realized_) throw std::logic_error("exchange() before realize()");
  if (inflight_.active) throw std::logic_error("exchange_start() while an exchange is in flight");
  // A pending revocation means some peer is already in recovery. Abort into
  // recovery here instead of posting requests the recovering peers will
  // never answer — the exchange is the collective heartbeat every rank
  // passes through, so no survivor can miss the incident.
  if (ctx_.comm.job().revoked()) {
    throw simpi::TransportError(simpi::TransportError::Code::kRevoked, -1, -1,
                                "exchange_start: communicator revoked (recovery pending)");
  }
  if (quantities.empty()) throw std::invalid_argument("exchange: empty quantity list");
  for (std::size_t i = 0; i < quantities.size(); ++i) {
    if (quantities[i] >= quantities_.size() || (i > 0 && quantities[i] <= quantities[i - 1])) {
      throw std::invalid_argument(
          "exchange: quantity indices must be strictly increasing and in range");
    }
  }
  active_qs_ = quantities;
  std::size_t active_bpp = 0;
  for (std::size_t q : active_qs_) active_bpp += quantities_[q].elem_size;
  for (auto& xp : xfers_) {
    xp->active_bytes = static_cast<std::size_t>(xp->src_region.volume()) * active_bpp;
  }
  for (auto groups : {&send_groups_, &recv_groups_}) {
    for (auto& gp : *groups) {
      gp->active_bytes = 0;
      gp->active_offsets.clear();
      for (auto& [x, full_off] : gp->members) {
        (void)full_off;
        gp->active_offsets.push_back(gp->active_bytes);
        gp->active_bytes += x->active_bytes;
      }
    }
  }
  // Fault degradation: re-check capabilities at every exchange boundary and
  // demote transfers whose method can no longer run (§III-C, downward only).
  maybe_respecialize();

  inflight_.active = true;
  ++seq_;
  inflight_.start_time = ctx_.engine().now();
  telemetry_.on_exchange_start(seq_, inflight_.start_time);
  if (auto* pm = ctx_.cluster.progress_monitor(); pm != nullptr) {
    pm->on_exchange_begin(ctx_.comm.world_rank(), seq_, inflight_.start_time);
  }
  for (const auto& xp : xfers_) {
    if (!xp->i_send || xp->active_bytes == 0) continue;
    telemetry_.flight().log(telemetry::EventKind::kTransfer, inflight_.start_time,
                            "tag=" + std::to_string(xp->t.tag), to_string(xp->t.method),
                            xp->active_bytes);
  }
  auto& comm = ctx_.comm;
  auto& rt = ctx_.rt;

  // Planned mode: replay (or first compile, then replay) the frozen
  // schedule for this configuration instead of interpreting the phases.
  if (persistent_) {
    planned_start(acquire_plan());
    return;
  }

  // --- Phase 0: post every MPI receive up front (maximizes matching). ----
  std::vector<simpi::Request>& recv_reqs = inflight_.recv_reqs;
  auto& recv_map = inflight_.recv_map;
  for (auto& gp : recv_groups_) {  // aggregated STAGED receives, one per peer
    gp->req = comm.irecv(simpi::Payload::of(gp->host, 0, gp->active_bytes), gp->peer_rank,
                         agg_tag(comm, gp->peer_rank));
    recv_reqs.push_back(gp->req);
    recv_map.emplace_back(nullptr, gp.get());
  }
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (!x.i_recv) continue;
    if (x.t.method == Method::kStaged && !x.aggregated) {
      x.recv_req =
          comm.irecv(simpi::Payload::of(x.dst_host, 0, x.active_bytes), x.t.src_rank, x.t.tag);
      recv_reqs.push_back(x.recv_req);
      recv_map.emplace_back(&x, nullptr);
    } else if (x.t.method == Method::kCudaAwareMpi) {
      x.recv_req =
          comm.irecv(simpi::Payload::of(x.dst_pack, 0, x.active_bytes), x.t.src_rank, x.t.tag);
      recv_reqs.push_back(x.recv_req);
      recv_map.emplace_back(&x, nullptr);
    }
  }

  // --- Phase 1: pure-CUDA local transfers (KERNEL, PEER). ----------------
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.t.method == Method::kKernel && x.i_send) {
      rt.launch_kernel(x.src_stream, x.active_bytes, "self " + dir_str(x.t.dir),
                       [&x, this] { x.src_ld->self_exchange(x.t.dir, active_qs_); },
                       self_access(x));
    } else if (x.t.method == Method::kPeer) {
      // Pack-free path (§VI): a strided copy straight into the neighbor's
      // halo, when configured — and under kAuto, whenever the modeled
      // strided time beats pack kernel + dense copy + unpack kernel.
      if (peer_use_3d(x)) {
        for (std::size_t q : active_qs_) {
          const std::size_t qbytes = static_cast<std::size_t>(x.src_region.volume()) *
                                     quantities_[q].elem_size;
          rt.memcpy3d_peer_async(
              x.t.dst_gpu, x.t.src_gpu, qbytes, x.src_ld->row_bytes(x.src_region, q),
              x.src_stream, "3d " + dir_str(x.t.dir),
              [&x, q] {
                LocalDomain::copy_region(*x.src_ld, x.src_region, *x.dst_ld, x.dst_region, q);
              },
              copy3d_access(x, q));
        }
        vgpu::Event copied;
        rt.record_event(copied, x.src_stream);
        rt.stream_wait_event(x.dst_stream, copied);
      } else {
        rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                         [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                         pack_access(x, x.src_pack));
        rt.memcpy_peer_async(x.dst_pack, 0, x.src_pack, 0, x.active_bytes, x.src_stream);
        vgpu::Event copied;
        rt.record_event(copied, x.src_stream);
        rt.stream_wait_event(x.dst_stream, copied);
        rt.launch_kernel(x.dst_stream, x.active_bytes, "unpack " + dir_str(x.t.dir),
                         [&x, this] { x.dst_ld->unpack_region(x.dst_pack, x.dst_region, active_qs_); },
                         unpack_access(x, x.dst_pack));
      }
    }
  }

  // --- Phase 2: COLOCATED senders (pure CUDA after the setup handshake). -
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.t.method != Method::kColocated || !x.i_send) continue;
    colocated_send(x);
  }

  // --- Phase 3: STAGED / CUDA-aware senders enqueue pack (+ D2H). --------
  auto& pending = inflight_.pending_sends;
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (!x.i_send) continue;
    if (x.handled_seq == seq_) continue;  // COLOCATED fallback already queued it
    if (x.t.method == Method::kStaged && !x.aggregated) {
      if (staged_zero_copy_) {
        // Zero-copy pack (§VI/[18]): the kernel's stores land directly in
        // the pinned staging buffer — no separate D2H step.
        rt.launch_zero_copy_kernel(
            x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
            [&x, this] { x.src_ld->pack_region(x.src_host, x.src_region, active_qs_); },
            pack_access(x, x.src_host));
      } else {
        rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                         [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                         pack_access(x, x.src_pack));
        rt.memcpy_async(x.src_host, 0, x.src_pack, 0, x.active_bytes, x.src_stream);
      }
      rt.record_event(x.ready_ev, x.src_stream);
      pending.emplace_back(x.ready_ev.completed_at, &x);
    } else if (x.t.method == Method::kCudaAwareMpi) {
      rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                       [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                       pack_access(x, x.src_pack));
      rt.record_event(x.ready_ev, x.src_stream);
      pending.emplace_back(x.ready_ev.completed_at, &x);
    }
  }
  // Aggregated STAGED sends: every member packs and stages into its slot of
  // the shared buffer; the group is ready when its slowest member is.
  for (auto& gp : send_groups_) {
    sim::Time ready = 0;
    for (std::size_t m = 0; m < gp->members.size(); ++m) {
      TransferState* x = gp->members[m].first;
      rt.launch_kernel(x->src_stream, x->active_bytes, "pack " + dir_str(x->t.dir),
                       [x, this] { x->src_ld->pack_region(x->src_pack, x->src_region, active_qs_); },
                       pack_access(*x, x->src_pack));
      rt.memcpy_async(gp->host, gp->active_offsets[m], x->src_pack, 0, x->active_bytes,
                      x->src_stream);
      rt.record_event(x->ready_ev, x->src_stream);
      ready = std::max(ready, x->ready_ev.completed_at);
    }
    inflight_.pending_group_sends.emplace_back(ready, gp.get());
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::stable_sort(inflight_.pending_group_sends.begin(), inflight_.pending_group_sends.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
}

void DistributedDomain::colocated_send(TransferState& x) {
  auto& rt = ctx_.rt;
  auto& eng = ctx_.engine();
  bool fell_back = false;
  if (!rt.ipc_mapping_valid(x.mapped)) {
    fell_back = true;
  } else {
    // Flow control: the receiver must have unpacked the previous
    // generation before we overwrite its buffer.
    colocated_gate_wait(x.peer_channel->gate, x.t.dst_rank, x.t.tag,
                        [&] { return x.peer_channel->done_gen + 1 >= seq_; },
                        "colocated flow-control tag=" + std::to_string(x.t.tag));
    try {
      // The receiver records done_ev after each unpack; until the first
      // generation lands there is nothing to wait for — waiting on an
      // unrecorded event is API misuse the checker flags. Keyed off the
      // event itself, not done_gen: recovery re-aligns generation counters
      // (recover_abort / resync_seq) without recording events, so a bare
      // done_gen check goes spuriously true after a mid-exchange abort.
      if (x.peer_channel->done_ev.recorded) {
        rt.stream_wait_event(x.src_stream, x.peer_channel->done_ev);
      }
      rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                       [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                       pack_access(x, x.src_pack));
      rt.memcpy_to_ipc_async(x.mapped, 0, x.src_pack, 0, x.active_bytes, x.src_stream);
      rt.record_event(x.peer_channel->data_ev, x.src_stream);
      if (trace::Recorder* rec = ctx_.cluster.recorder();
          rec != nullptr && rec->causal()) {
        const sim::Time now = eng.now();
        x.peer_channel->data_span =
            rec->record("rank" + std::to_string(ctx_.comm.world_rank()) + ".colo",
                        "ipc push tag=" + std::to_string(x.t.tag), now, now);
      }
      x.peer_channel->data_gen = seq_;
      x.peer_channel->gate.notify_all(eng);
    } catch (const vgpu::CapabilityError&) {
      // Mapping went stale between the check and the copy (virtual time
      // advanced while we blocked): reroute this generation over MPI.
      fell_back = true;
    }
  }
  if (fell_back) {
    // Demote to STAGED: tell the receiver (it owns no timeline of our
    // mapping), then pack into the staging buffer and queue the send so
    // Phase 4 posts it alongside the ordinary staged traffic.
    demote_transfer(x, Method::kStaged);
    ensure_staged_buffers(x);
    x.peer_channel->demoted = true;
    x.peer_channel->gate.notify_all(eng);
    rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                     [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                     pack_access(x, x.src_pack));
    rt.memcpy_async(x.src_host, 0, x.src_pack, 0, x.active_bytes, x.src_stream);
    rt.record_event(x.ready_ev, x.src_stream);
    inflight_.pending_sends.emplace_back(x.ready_ev.completed_at, &x);
    x.handled_seq = seq_;
  }
}

void DistributedDomain::colocated_recv(TransferState& x) {
  auto& rt = ctx_.rt;
  auto& eng = ctx_.engine();
  colocated_gate_wait(x.channel->gate, x.t.src_rank, x.t.tag,
                      [&] { return x.channel->data_gen >= seq_ || x.channel->demoted; },
                      "colocated data tag=" + std::to_string(x.t.tag));
  if (x.channel->demoted) {
    // The sender lost its IPC mapping and rerouted this generation over
    // MPI. Adopt STAGED on this side too (no irecv was posted in Phase 0
    // for a COLOCATED transfer, so receive blocking here) and unpack.
    demote_transfer(x, Method::kStaged);
    ensure_staged_buffers(x);
    ctx_.comm.recv(simpi::Payload::of(x.dst_host, 0, x.active_bytes), x.t.src_rank, x.t.tag);
    rt.memcpy_async(x.dst_pack, 0, x.dst_host, 0, x.active_bytes, x.dst_stream);
    rt.launch_kernel(x.dst_stream, x.active_bytes, "unpack " + dir_str(x.t.dir),
                     [&x, this] { x.dst_ld->unpack_region(x.dst_pack, x.dst_region, active_qs_); },
                     unpack_access(x, x.dst_pack));
    x.channel->done_gen = seq_;
    return;
  }
  rt.stream_wait_event(x.dst_stream, x.channel->data_ev);
  if (trace::Recorder* rec = ctx_.cluster.recorder();
      rec != nullptr && rec->causal() && x.channel->data_span != 0) {
    const sim::Time now = eng.now();
    const std::uint64_t adopt =
        rec->record("rank" + std::to_string(ctx_.comm.world_rank()) + ".colo",
                    "ipc recv tag=" + std::to_string(x.t.tag), now, now);
    rec->add_flow(x.channel->data_span, adopt, /*msg=*/0,
                  "ipc tag=" + std::to_string(x.t.tag));
    x.channel->data_span = 0;  // one arrow per generation
  }
  rt.launch_kernel(x.dst_stream, x.active_bytes, "unpack " + dir_str(x.t.dir),
                   [&x, this] { x.dst_ld->unpack_region(x.dst_pack, x.dst_region, active_qs_); },
                   unpack_access(x, x.dst_pack));
  rt.record_event(x.channel->done_ev, x.dst_stream);
  x.channel->done_gen = seq_;
  x.channel->gate.notify_all(eng);
}

void DistributedDomain::colocated_gate_wait(sim::Gate& gate, int peer_rank, int tag,
                                            const std::function<bool()>& done,
                                            const std::string& detail) {
  auto& eng = ctx_.engine();
  simpi::Job& job = ctx_.comm.job();
  while (!done()) {
    if (job.revoked()) {
      throw simpi::TransportError(simpi::TransportError::Code::kRevoked, peer_rank, tag,
                                  detail + ": communicator revoked (recovery pending)");
    }
    const sim::Time peer_fail = job.rank_fail_time(peer_rank);
    if (peer_fail == fault::kForever) {
      gate.wait(eng, detail);
      continue;
    }
    const fault::Injector* inj = ctx_.machine.fault_injector();
    const sim::Time deadline = peer_fail + (inj != nullptr ? inj->detect_latency() : sim::Time{0});
    if (eng.now() >= deadline) {
      throw simpi::TransportError(simpi::TransportError::Code::kPeerDead, peer_rank, tag,
                                  detail + ": peer rank " + std::to_string(peer_rank) + " died");
    }
    gate.wait_until(eng, deadline, detail);
  }
}

Method DistributedDomain::forced_method(const Transfer& t) const {
  const Method remote =
      any(flags_ & MethodFlags::kCudaAwareMpi) ? Method::kCudaAwareMpi : Method::kStaged;
  if (t.self()) {
    if (any(flags_ & MethodFlags::kKernel)) return Method::kKernel;
    if (any(flags_ & MethodFlags::kPeer)) return Method::kPeer;
    return remote;
  }
  if (t.src_rank == t.dst_rank && any(flags_ & MethodFlags::kPeer) &&
      (t.src_gpu == t.dst_gpu || ctx_.rt.peer_enabled(t.src_gpu, t.dst_gpu))) {
    return Method::kPeer;
  }
  // Cross-rank: COLOCATED is deliberately excluded — its IPC handshake was
  // negotiated against the pre-failure world and cannot be redone without a
  // collective setup phase. The MPI envelope's dead-peer detection also only
  // covers the message methods.
  return remote;
}

void DistributedDomain::recover_abort() {
  auto& rt = ctx_.rt;
  // Return every posted request to the inactive state. inflight_ holds the
  // authoritative handles; the per-transfer / per-group / plan-program copies
  // below share the same records, so they must NOT be reset a second time —
  // eager copies are dropped, persistent ones stay valid for restart.
  for (simpi::Request& r : inflight_.recv_reqs) ctx_.comm.reset(r);
  for (simpi::Request& r : inflight_.send_reqs) ctx_.comm.reset(r);
  for (auto& xp : xfers_) {
    xp->send_req = {};
    xp->recv_req = {};
    // Re-align COLOCATED flow control: the aborted generation will never be
    // replayed under this seq_, so mark it complete on the receiver's
    // channel (both ends run recover_abort, so every channel is covered by
    // its owner).
    if (xp->channel != nullptr) {
      xp->channel->data_gen = seq_;
      xp->channel->done_gen = seq_;
      xp->channel->demoted = false;
      xp->channel->data_span = 0;
    }
  }
  for (auto groups : {&send_groups_, &recv_groups_}) {
    for (auto& gp : *groups) gp->req = {};
  }
  // Quiesce every stream we may have touched. A rank whose own device died
  // cannot: its streams are gone with the GPU, which is fine — the rank is
  // being retired and its work re-homed.
  try {
    for (auto& xp : xfers_) {
      if (xp->src_stream.valid()) rt.stream_synchronize(xp->src_stream);
      if (xp->dst_stream.valid()) rt.stream_synchronize(xp->dst_stream);
    }
    compute_synchronize();
  } catch (const vgpu::DeviceLost&) {
  }
  cur_plan_ = nullptr;
  inflight_ = InFlight{};
  telemetry_.on_recover_step("abort", "seq=" + std::to_string(seq_), ctx_.engine().now());
}

std::vector<DistributedDomain::Rehome> DistributedDomain::recover_replace(
    const std::vector<int>& dead_ranks) {
  if (!realized_) throw std::logic_error("recover_replace before realize()");
  if (inflight_.active) throw std::logic_error("recover_replace while an exchange is in flight");
  if (aggregate_remote_) {
    throw std::logic_error("recover_replace: remote aggregation is not recoverable yet");
  }
  if (ctx_.tenant != nullptr) {
    // Re-homing below works in whole-machine rank/GPU coordinates; a tenant
    // slice needs vnode-aware adoption plus scheduler-level capacity updates.
    // Fail loudly instead of silently corrupting a co-tenant's GPUs; the
    // scheduler path resubmits the job instead.
    throw std::logic_error("recover_replace: not supported under multi-tenancy");
  }
  const auto& hp = placement_->partition();
  const int gpn = ctx_.machine.gpus_per_node();
  const int rpn = ctx_.cluster.ranks_per_node();
  const int gpr = gpn / rpn;
  const int total_gpus = hp.num_nodes() * gpn;
  const auto rank_of_gpu = [&](int g) { return (g / gpn) * rpn + (g % gpn) / gpr; };

  // Every GPU owned by a dead rank is gone (kGpuFail kills the rank that
  // drives the GPU; kNodeFail kills all of the node's ranks).
  std::set<int> dead_gpus;
  for (int r : dead_ranks) {
    const int node = r / rpn;
    const int slot = r % rpn;
    for (int k = 0; k < gpr; ++k) dead_gpus.insert(node * gpn + slot * gpr + k);
  }

  // Orphaned subdomains in deterministic (linearized-index) order, and the
  // current load of every surviving GPU. Each survivor computes the same
  // greedy adoption with no communication — the placement is shared state.
  std::vector<Rehome> moves;
  for (int g : dead_gpus) {
    for (const Dim3 idx : placement_->subdomains_on(g / gpn, g % gpn)) {
      Rehome rh;
      rh.idx = idx;
      rh.lin = idx.linearize(hp.global_extent());
      rh.old_gpu = g;
      rh.old_rank = rank_of_gpu(g);
      moves.push_back(rh);
    }
  }
  std::sort(moves.begin(), moves.end(), [](const Rehome& a, const Rehome& b) {
    return a.lin < b.lin;
  });

  std::map<int, int> load;  // surviving GPU -> hosted subdomain count
  for (int g = 0; g < total_gpus; ++g) {
    if (dead_gpus.count(g) != 0) continue;
    load[g] = static_cast<int>(placement_->subdomains_on(g / gpn, g % gpn).size());
  }
  if (load.empty()) throw std::runtime_error("recover_replace: no surviving GPUs");

  // Live-cost bias (see set_live_costs): published per-node factors from
  // the watch inflate the apparent load of GPUs on degraded nodes. Reading
  // the *published* table keeps every survivor's answer identical.
  std::vector<int> node_bias(static_cast<std::size_t>(hp.num_nodes()), 0);
  if (live_costs_) {
    if (const watch::Watch* w = ctx_.cluster.watch(); w != nullptr) {
      for (int n = 0; n < hp.num_nodes(); ++n) {
        node_bias[static_cast<std::size_t>(n)] =
            static_cast<int>(std::lround((w->node_cost_factor(n) - 1.0) * 2.0));
      }
    }
  }

  auto np = std::make_shared<Placement>(*placement_);
  for (Rehome& rh : moves) {
    int best = -1;
    int best_eff = 0;
    for (const auto& [g, n] : load) {
      const int eff = n + node_bias[static_cast<std::size_t>(g / gpn)];
      if (best < 0 || eff < best_eff) {  // ties to the lowest GPU id
        best = g;
        best_eff = eff;
      }
    }
    rh.new_gpu = best;
    rh.new_rank = rank_of_gpu(best);
    np->rehome(rh.idx, best);
    ++load[best];
  }
  placement_ = std::move(np);

  // Adopters materialize LocalDomains for their new subdomains. The halo
  // shapes come from the unchanged partition, so sizes, tags, and iteration
  // spaces are identical to the dead rank's — the root of bit-exactness.
  const int me = ctx_.comm.rank();
  for (const Rehome& rh : moves) {
    if (rh.new_rank != me || local_by_subdomain(rh.idx) != nullptr) continue;
    locals_.push_back(std::make_unique<LocalDomain>(ctx_.rt, rh.new_gpu, rh.idx,
                                                    hp.subdomain_origin(rh.idx),
                                                    hp.subdomain_size(rh.idx), radius_,
                                                    quantities_));
    local_index_by_subdomain_[rh.lin] = locals_.size() - 1;
    if (local_index_by_gpu_.find(rh.new_gpu) == local_index_by_gpu_.end()) {
      local_index_by_gpu_[rh.new_gpu] = locals_.size() - 1;
    }
  }

  // Re-derive the exchange plan against the re-homed placement and diff it
  // per tag (tags are structural — subdomain index × direction — so they
  // survive re-homing). Unchanged endpoints keep their runtime state and
  // method, incl. earlier demotions; changed endpoints are rebuilt and
  // forced down to a method that works in the post-failure world; transfers
  // new to this rank (adopted subdomains) are appended.
  ExchangePlan next = ExchangePlan::for_rank(*placement_, me, rpn, flags_, nbhd_, boundary_);
  std::map<int, std::size_t> by_tag;
  for (std::size_t i = 0; i < xfers_.size(); ++i) by_tag[xfers_[i]->t.tag] = i;

  int kept = 0, rebuilt = 0, appended = 0;
  for (const Transfer& nt : next.transfers()) {
    const auto it = by_tag.find(nt.tag);
    if (it != by_tag.end()) {
      const Transfer& ot = xfers_[it->second]->t;
      if (ot.src_gpu == nt.src_gpu && ot.dst_gpu == nt.dst_gpu && ot.src_rank == nt.src_rank &&
          ot.dst_rank == nt.dst_rank) {
        next.set_method(nt.tag, ot.method);
        ++kept;
        continue;
      }
      Transfer t = nt;
      t.method = forced_method(t);
      auto xp = std::make_unique<TransferState>();
      build_one_transfer(*xp, t);
      xfers_[it->second] = std::move(xp);
      next.set_method(t.tag, t.method);
      plan_cache_.invalidate_tag(t.tag);
      ++rebuilt;
    } else {
      Transfer t = nt;
      t.method = forced_method(t);
      auto xp = std::make_unique<TransferState>();
      build_one_transfer(*xp, t);
      if (xp->bytes == 0) continue;  // asymmetric radius: nothing moves
      xfers_.push_back(std::move(xp));
      next.set_method(t.tag, t.method);
      ++appended;
    }
  }
  plan_ = std::move(next);
  // Version the specialization table: stale cached plans migrate on their
  // next acquire (dirty programs rebuilt, appended transfers compiled in).
  // (resync_seq is a separate step: the caller aligns seq_ across survivors
  // once it has agreed on the maximum.)
  ++topo_epoch_;
  plan_.export_metrics(telemetry_.metrics());
  telemetry_.on_recover_step("replace",
                             "moved=" + std::to_string(moves.size()) +
                                 " kept=" + std::to_string(kept) +
                                 " rebuilt=" + std::to_string(rebuilt) +
                                 " appended=" + std::to_string(appended),
                             ctx_.engine().now());
  return moves;
}

void DistributedDomain::resync_seq(std::uint64_t s) {
  if (inflight_.active) throw std::logic_error("resync_seq while an exchange is in flight");
  seq_ = s;
  for (auto& xp : xfers_) {
    if (xp->channel != nullptr) {
      xp->channel->data_gen = s;
      xp->channel->done_gen = s;
    }
  }
}

void DistributedDomain::exchange_finish() {
  if (!inflight_.active) throw std::logic_error("exchange_finish() without exchange_start()");
  if (inflight_.planned) {
    planned_finish(*cur_plan_);
    note_exchange_complete();
    return;
  }
  auto& comm = ctx_.comm;
  auto& rt = ctx_.rt;
  std::vector<simpi::Request>& recv_reqs = inflight_.recv_reqs;
  auto& recv_map = inflight_.recv_map;

  // --- Phase 4: post Isends in data-ready order (the Sender state
  // machines' "advance when your CUDA phase completes" loop). Each send is
  // gated on its ready_ev with an event synchronize — not a virtual-time
  // sleep to the same instant — so the isend's read of the staging buffer
  // has a happens-before edge from the pack/D2H writes it consumes.
  std::vector<simpi::Request>& send_reqs = inflight_.send_reqs;
  {
    auto xi = inflight_.pending_sends.begin();
    auto gi = inflight_.pending_group_sends.begin();
    while (xi != inflight_.pending_sends.end() || gi != inflight_.pending_group_sends.end()) {
      const bool take_group = xi == inflight_.pending_sends.end() ||
                              (gi != inflight_.pending_group_sends.end() && gi->first < xi->first);
      if (take_group) {
        AggGroup& g = *gi->second;
        for (auto& [mx, off] : g.members) {
          (void)off;
          rt.event_synchronize(mx->ready_ev);
        }
        g.req = comm.isend(simpi::Payload::of(g.host, 0, g.active_bytes), g.peer_rank,
                           agg_tag(comm, comm.rank()));
        send_reqs.push_back(g.req);
        ++gi;
      } else {
        TransferState& x = *xi->second;
        rt.event_synchronize(x.ready_ev);
        if (x.t.method == Method::kStaged) {
          x.send_req = comm.isend(simpi::Payload::of(x.src_host, 0, x.active_bytes), x.t.dst_rank,
                                  x.t.tag);
        } else {
          x.send_req = comm.isend(simpi::Payload::of(x.src_pack, 0, x.active_bytes), x.t.dst_rank,
                                  x.t.tag);
        }
        send_reqs.push_back(x.send_req);
        ++xi;
      }
    }
  }

  // --- Phase 5: as each MPI receive lands, enqueue H2D + unpack. ----------
  for (;;) {
    const int i = comm.wait_any(recv_reqs);
    if (i < 0) break;
    auto [xp, gp] = recv_map[static_cast<std::size_t>(i)];
    if (gp != nullptr) {
      // A whole aggregated message landed: fan its members out to their GPUs.
      for (std::size_t m = 0; m < gp->members.size(); ++m) {
        TransferState* x = gp->members[m].first;
        rt.memcpy_async(x->dst_pack, 0, gp->host, gp->active_offsets[m], x->active_bytes,
                        x->dst_stream);
        rt.launch_kernel(x->dst_stream, x->active_bytes, "unpack " + dir_str(x->t.dir),
                         [x, this] { x->dst_ld->unpack_region(x->dst_pack, x->dst_region, active_qs_); },
                         unpack_access(*x, x->dst_pack));
      }
      continue;
    }
    TransferState& x = *xp;
    if (x.t.method == Method::kStaged) {
      rt.memcpy_async(x.dst_pack, 0, x.dst_host, 0, x.active_bytes, x.dst_stream);
    }
    rt.launch_kernel(x.dst_stream, x.active_bytes, "unpack " + dir_str(x.t.dir),
                     [&x, this] { x.dst_ld->unpack_region(x.dst_pack, x.dst_region, active_qs_); },
                     unpack_access(x, x.dst_pack));
  }

  // --- Phase 6: COLOCATED receivers unpack and acknowledge. ---------------
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.t.method != Method::kColocated || !x.i_recv) continue;
    colocated_recv(x);
  }

  // --- Phase 7: drain sends, then quiesce every stream we touched. --------
  comm.waitall(send_reqs);
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.src_stream.valid()) rt.stream_synchronize(x.src_stream);
    if (x.dst_stream.valid()) rt.stream_synchronize(x.dst_stream);
  }

  inflight_.active = false;
  inflight_.recv_reqs.clear();
  inflight_.send_reqs.clear();
  inflight_.recv_map.clear();
  inflight_.pending_sends.clear();
  inflight_.pending_group_sends.clear();
  note_exchange_complete();
}

void DistributedDomain::note_exchange_complete() {
  const sim::Time now = ctx_.engine().now();
  telemetry_.on_exchange_latency(now - inflight_.start_time);
  if (auto* pm = ctx_.cluster.progress_monitor(); pm != nullptr) {
    pm->on_exchange_complete(ctx_.comm.world_rank(), seq_, now);
  }
  if (auto* w = ctx_.cluster.watch(); w != nullptr) {
    w->on_exchange_complete(ctx_.comm.world_rank(), seq_, now - inflight_.start_time, now);
  }
  std::map<Method, std::pair<std::uint64_t, std::uint64_t>> per;  // method -> (msgs, bytes)
  for (const auto& xp : xfers_) {
    if (!xp->i_send || xp->active_bytes == 0) continue;
    auto& [msgs, bytes] = per[xp->t.method];
    ++msgs;
    bytes += xp->active_bytes;
    telemetry_.metrics().histogram("exchange_message_bytes").observe(xp->active_bytes);
  }
  for (const auto& [method, mb] : per) {
    telemetry_.on_exchange_end(seq_, to_string(method), mb.first, mb.second, now);
  }
  plan_cache_.stats().export_to(telemetry_.metrics());
}

// ---------------------------------------------------------------------------
// Exchange plans (persistent mode): compile the specialized transfer set into
// a frozen schedule — persistent MPI requests for the message phases and
// instantiated vgpu graphs for the stream phases — then replay it with zero
// per-iteration setup. Plans are compiled lazily, one per (method flags,
// aggregation, quantity subset), and partially rebuilt after fault demotions.
// ---------------------------------------------------------------------------

plan::CompiledPlan& DistributedDomain::acquire_plan() {
  plan::PlanStats& stats = plan_cache_.stats();
  plan::CompiledPlan* p =
      plan_cache_.find(static_cast<std::uint32_t>(flags_), aggregate_remote_, active_qs_);
  if (p == nullptr) {
    ++stats.compiles;
    telemetry_.on_plan_event("compile");
    plan::CompiledPlan& np = compile_plan();
    // Fail-fast admission: a plan with a protocol defect never replays.
    plan_cache_.admit(np);
    if (explain::Ledger* led = ledger(); led != nullptr) {
      explain::DecisionRecord rec;
      rec.kind = explain::DecisionKind::kPlanCompile;
      rec.at = ctx_.engine().now();
      rec.actor = ctx_.comm.rank();
      rec.subject = "epoch " + std::to_string(topo_epoch_) + ", " +
                    std::to_string(active_qs_.size()) + " quantities" +
                    (aggregate_remote_ ? ", aggregated" : "");
      rec.chosen = "compile " + std::to_string(np.programs.size()) + " programs, " +
                   std::to_string(np.send_groups.size() + np.recv_groups.size()) + " groups";
      rec.chosen_score = static_cast<double>(np.programs.size());
      // The cheaper option did not exist: no compatible plan was cached.
      // Negative delta quantifies the cold-start cost; repeats counts the
      // later hits that did get it for free.
      rec.rejected.push_back({"cache hit (no compatible plan cached)", 0.0});
      rec.work = np.programs.size();
      rec.detail = "score = programs (re)built";
      plan_record_ids_[&np] = led->append(std::move(rec));
    }
    return np;
  }
  if (p->key.topo_epoch != topo_epoch_ || p->dirty_count() > 0) {
    // Fault-epoch migration: a demotion dirtied some programs since this
    // plan was compiled. Rebuild only those — requests are freed and
    // re-initialized, graphs re-captured against the new method — and stamp
    // the plan with the current epoch. Clean programs are untouched.
    ++stats.invalidations;
    telemetry_.on_plan_event("invalidation");
    const std::uint64_t epoch_before = p->key.topo_epoch;
    std::uint64_t rebuilt = 0;
    std::uint64_t appended = 0;
    for (plan::TransferProgram& prog : p->programs) {
      if (!prog.dirty) continue;
      compile_program(prog);
      ++rebuilt;
      ++stats.rebuilt_programs;
      telemetry_.on_plan_event("rebuild");
    }
    // Recovery can also *append* transfers (adopted subdomains bring new
    // neighbor pairs): extend the frozen set — programs are index-aligned
    // with xfers_ — instead of recompiling the plan wholesale.
    for (std::size_t i = p->programs.size(); i < xfers_.size(); ++i) {
      plan::TransferProgram prog;
      prog.xfer_index = i;
      compile_program(prog);
      p->programs.push_back(std::move(prog));
      ++appended;
      ++stats.rebuilt_programs;
      telemetry_.on_plan_event("rebuild");
    }
    p->key.topo_epoch = topo_epoch_;
    // Re-verify only migrated plans: clean cache hits skip the verifier.
    plan_cache_.admit(*p);
    if (explain::Ledger* led = ledger(); led != nullptr) {
      explain::DecisionRecord rec;
      rec.kind = explain::DecisionKind::kPlanMigrate;
      rec.at = ctx_.engine().now();
      rec.actor = ctx_.comm.rank();
      rec.subject = "epoch " + std::to_string(epoch_before) + " -> " +
                    std::to_string(topo_epoch_);
      rec.chosen = "rebuild " + std::to_string(rebuilt) + " dirty + " +
                   std::to_string(appended) + " appended of " +
                   std::to_string(p->programs.size()) + " programs";
      rec.chosen_score = static_cast<double>(rebuilt + appended);
      // Positive delta: programs the partial migration did NOT rebuild.
      rec.rejected.push_back({"full recompile", static_cast<double>(p->programs.size())});
      rec.work = rebuilt + appended;
      rec.detail = "score = programs (re)built";
      plan_record_ids_[p] = led->append(std::move(rec));
    }
  } else {
    ++stats.hits;
    telemetry_.on_plan_event("hit");
    // Hot path: one map find + O(1) counter bump, allocation-free.
    if (explain::Ledger* led = ledger(); led != nullptr) {
      const auto it = plan_record_ids_.find(p);
      if (it != plan_record_ids_.end()) led->bump(it->second);
    }
  }
  return *p;
}

plan::CompiledPlan& DistributedDomain::compile_plan() {
  plan::PlanKey key;
  key.topo_epoch = topo_epoch_;
  key.method_flags = static_cast<std::uint32_t>(flags_);
  key.aggregated = aggregate_remote_;
  key.quantities = active_qs_;
  plan::CompiledPlan& p = plan_cache_.emplace(std::move(key));
  p.programs.reserve(xfers_.size());
  for (std::size_t i = 0; i < xfers_.size(); ++i) {
    plan::TransferProgram prog;
    prog.xfer_index = i;
    compile_program(prog);
    p.programs.push_back(std::move(prog));
  }
  for (std::size_t i = 0; i < send_groups_.size(); ++i) {
    plan::GroupProgram g;
    g.group_index = i;
    g.is_send = true;
    compile_group_program(g);
    p.send_groups.push_back(std::move(g));
  }
  for (std::size_t i = 0; i < recv_groups_.size(); ++i) {
    plan::GroupProgram g;
    g.group_index = i;
    g.is_send = false;
    compile_group_program(g);
    p.recv_groups.push_back(std::move(g));
  }
  return p;
}

void DistributedDomain::compile_program(plan::TransferProgram& prog) {
  TransferState& x = *xfers_[prog.xfer_index];
  auto& rt = ctx_.rt;
  auto& comm = ctx_.comm;
  // Rebuild path: release the superseded persistent envelope. Plans are
  // only (re)built between exchanges, so the requests are inactive and the
  // free is clean (no lint).
  if (prog.send_req.valid()) comm.request_free(prog.send_req);
  if (prog.recv_req.valid()) comm.request_free(prog.recv_req);
  prog.tag = x.t.tag;
  prog.method = x.t.method;
  prog.bytes = x.active_bytes;
  prog.i_send = x.i_send;
  prog.i_recv = x.i_recv;
  prog.eager = x.t.method == Method::kColocated;
  prog.dirty = false;
  prog.send_req = {};
  prog.recv_req = {};
  prog.send_graph = {};
  prog.recv_graph = {};
  // COLOCATED stays interpreted: its IPC flow control depends on the
  // generation counter, which a frozen node sequence cannot express.
  if (prog.eager) return;

  switch (x.t.method) {
    case Method::kKernel:
      if (x.i_send) {
        rt.begin_capture();
        rt.launch_kernel(x.src_stream, x.active_bytes, "self " + dir_str(x.t.dir),
                         [&x, this] { x.src_ld->self_exchange(x.t.dir, active_qs_); },
                         self_access(x));
        prog.send_graph = rt.instantiate(rt.end_capture());
      }
      break;
    case Method::kPeer: {
      // Both halves are ours: the whole pack / copy / event-edge / unpack
      // chain freezes into one graph. ready_ev carries the cross-stream
      // edge (it has no MPI role for PEER), re-recorded at every launch.
      rt.begin_capture();
      if (peer_use_3d(x)) {
        for (std::size_t q : active_qs_) {
          const std::size_t qbytes =
              static_cast<std::size_t>(x.src_region.volume()) * quantities_[q].elem_size;
          rt.memcpy3d_peer_async(
              x.t.dst_gpu, x.t.src_gpu, qbytes, x.src_ld->row_bytes(x.src_region, q),
              x.src_stream, "3d " + dir_str(x.t.dir),
              [&x, q] {
                LocalDomain::copy_region(*x.src_ld, x.src_region, *x.dst_ld, x.dst_region, q);
              },
              copy3d_access(x, q));
        }
        rt.record_event(x.ready_ev, x.src_stream);
        rt.stream_wait_event(x.dst_stream, x.ready_ev);
      } else {
        rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                         [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                         pack_access(x, x.src_pack));
        rt.memcpy_peer_async(x.dst_pack, 0, x.src_pack, 0, x.active_bytes, x.src_stream);
        rt.record_event(x.ready_ev, x.src_stream);
        rt.stream_wait_event(x.dst_stream, x.ready_ev);
        rt.launch_kernel(x.dst_stream, x.active_bytes, "unpack " + dir_str(x.t.dir),
                         [&x, this] { x.dst_ld->unpack_region(x.dst_pack, x.dst_region, active_qs_); },
                         unpack_access(x, x.dst_pack));
      }
      prog.send_graph = rt.instantiate(rt.end_capture());
      break;
    }
    case Method::kCudaAwareMpi:
      if (x.i_send) {
        rt.begin_capture();
        rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                         [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                         pack_access(x, x.src_pack));
        rt.record_event(x.ready_ev, x.src_stream);
        prog.send_graph = rt.instantiate(rt.end_capture());
        prog.send_req = comm.send_init(simpi::Payload::of(x.src_pack, 0, x.active_bytes),
                                       x.t.dst_rank, x.t.tag);
      }
      if (x.i_recv) {
        rt.begin_capture();
        rt.launch_kernel(x.dst_stream, x.active_bytes, "unpack " + dir_str(x.t.dir),
                         [&x, this] { x.dst_ld->unpack_region(x.dst_pack, x.dst_region, active_qs_); },
                         unpack_access(x, x.dst_pack));
        prog.recv_graph = rt.instantiate(rt.end_capture());
        prog.recv_req = comm.recv_init(simpi::Payload::of(x.dst_pack, 0, x.active_bytes),
                                       x.t.src_rank, x.t.tag);
      }
      break;
    case Method::kStaged:
      if (x.aggregated) break;  // frozen in a GroupProgram instead
      if (x.i_send) {
        rt.begin_capture();
        if (staged_zero_copy_) {
          rt.launch_zero_copy_kernel(
              x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
              [&x, this] { x.src_ld->pack_region(x.src_host, x.src_region, active_qs_); },
              pack_access(x, x.src_host));
        } else {
          rt.launch_kernel(x.src_stream, x.active_bytes, "pack " + dir_str(x.t.dir),
                           [&x, this] { x.src_ld->pack_region(x.src_pack, x.src_region, active_qs_); },
                           pack_access(x, x.src_pack));
          rt.memcpy_async(x.src_host, 0, x.src_pack, 0, x.active_bytes, x.src_stream);
        }
        rt.record_event(x.ready_ev, x.src_stream);
        prog.send_graph = rt.instantiate(rt.end_capture());
        prog.send_req = comm.send_init(simpi::Payload::of(x.src_host, 0, x.active_bytes),
                                       x.t.dst_rank, x.t.tag);
      }
      if (x.i_recv) {
        rt.begin_capture();
        rt.memcpy_async(x.dst_pack, 0, x.dst_host, 0, x.active_bytes, x.dst_stream);
        rt.launch_kernel(x.dst_stream, x.active_bytes, "unpack " + dir_str(x.t.dir),
                         [&x, this] { x.dst_ld->unpack_region(x.dst_pack, x.dst_region, active_qs_); },
                         unpack_access(x, x.dst_pack));
        prog.recv_graph = rt.instantiate(rt.end_capture());
        prog.recv_req = comm.recv_init(simpi::Payload::of(x.dst_host, 0, x.active_bytes),
                                       x.t.src_rank, x.t.tag);
      }
      break;
    case Method::kColocated:
      break;  // unreachable: eager-flagged above
  }
}

void DistributedDomain::compile_group_program(plan::GroupProgram& g) {
  AggGroup& grp = *(g.is_send ? send_groups_ : recv_groups_)[g.group_index];
  auto& rt = ctx_.rt;
  auto& comm = ctx_.comm;
  if (g.req.valid()) comm.request_free(g.req);
  g.peer_rank = grp.peer_rank;
  g.bytes = grp.active_bytes;
  g.member_tags.clear();
  rt.begin_capture();
  for (std::size_t m = 0; m < grp.members.size(); ++m) {
    TransferState* x = grp.members[m].first;
    g.member_tags.push_back(x->t.tag);
    if (g.is_send) {
      rt.launch_kernel(x->src_stream, x->active_bytes, "pack " + dir_str(x->t.dir),
                       [x, this] { x->src_ld->pack_region(x->src_pack, x->src_region, active_qs_); },
                       pack_access(*x, x->src_pack));
      rt.memcpy_async(grp.host, grp.active_offsets[m], x->src_pack, 0, x->active_bytes,
                      x->src_stream);
      rt.record_event(x->ready_ev, x->src_stream);
    } else {
      rt.memcpy_async(x->dst_pack, 0, grp.host, grp.active_offsets[m], x->active_bytes,
                      x->dst_stream);
      rt.launch_kernel(x->dst_stream, x->active_bytes, "unpack " + dir_str(x->t.dir),
                       [x, this] { x->dst_ld->unpack_region(x->dst_pack, x->dst_region, active_qs_); },
                       unpack_access(*x, x->dst_pack));
    }
  }
  g.graph = rt.instantiate(rt.end_capture());
  g.req = g.is_send
              ? comm.send_init(simpi::Payload::of(grp.host, 0, grp.active_bytes), grp.peer_rank,
                               agg_tag(comm, comm.rank()))
              : comm.recv_init(simpi::Payload::of(grp.host, 0, grp.active_bytes), grp.peer_rank,
                               agg_tag(comm, grp.peer_rank));
}

void DistributedDomain::planned_start(plan::CompiledPlan& p) {
  auto& comm = ctx_.comm;
  auto& rt = ctx_.rt;
  cur_plan_ = &p;
  inflight_.planned = true;
  ++p.replays;
  ++plan_cache_.stats().replays;
  telemetry_.on_plan_event("replay");

  // Phase 0': re-arm every persistent receive (groups first, matching the
  // eager post order) and remember each one's landing graph.
  std::vector<simpi::Request>& recv_reqs = inflight_.recv_reqs;
  for (plan::GroupProgram& g : p.recv_groups) {
    comm.start(g.req);
    recv_reqs.push_back(g.req);
    inflight_.recv_graphs.push_back(&g.graph);
  }
  for (plan::TransferProgram& prog : p.programs) {
    if (!prog.recv_req.valid()) continue;
    comm.start(prog.recv_req);
    recv_reqs.push_back(prog.recv_req);
    inflight_.recv_graphs.push_back(&prog.recv_graph);
  }

  // Phase 1': local transfers (KERNEL, PEER) — one launch per frozen chain.
  for (plan::TransferProgram& prog : p.programs) {
    if ((prog.method == Method::kKernel || prog.method == Method::kPeer) &&
        prog.send_graph.valid()) {
      rt.launch_graph(prog.send_graph);
    }
  }

  // Phase 2': COLOCATED senders stay interpreted (generation-dependent flow
  // control). A stale mapping demotes the transfer, queues an eager
  // fallback send, and — via demote_transfer — dirties this plan entry, so
  // the next acquire rebuilds it as a persistent STAGED program.
  for (plan::TransferProgram& prog : p.programs) {
    if (!prog.eager) continue;
    TransferState& x = *xfers_[prog.xfer_index];
    if (x.i_send) colocated_send(x);
  }

  // Phase 3': sender pack graphs (STAGED, CUDA-aware, aggregation groups).
  for (plan::TransferProgram& prog : p.programs) {
    if ((prog.method == Method::kStaged || prog.method == Method::kCudaAwareMpi) &&
        prog.send_graph.valid()) {
      rt.launch_graph(prog.send_graph);
    }
  }
  for (plan::GroupProgram& g : p.send_groups) rt.launch_graph(g.graph);
}

void DistributedDomain::planned_finish(plan::CompiledPlan& p) {
  auto& comm = ctx_.comm;
  auto& rt = ctx_.rt;

  // Phase 4': the frozen send schedule. Plan order replaces the eager
  // path's per-iteration ready-time sort; each start is still gated on the
  // transfer's ready event, so the persistent request's read of the staging
  // buffer keeps the same happens-before edge as the eager isend.
  std::vector<simpi::Request>& send_reqs = inflight_.send_reqs;
  for (plan::TransferProgram& prog : p.programs) {
    if (!prog.send_req.valid()) continue;
    TransferState& x = *xfers_[prog.xfer_index];
    rt.event_synchronize(x.ready_ev);
    comm.start(prog.send_req);
    send_reqs.push_back(prog.send_req);
  }
  for (plan::GroupProgram& g : p.send_groups) {
    AggGroup& grp = *send_groups_[g.group_index];
    for (auto& [mx, off] : grp.members) {
      (void)off;
      rt.event_synchronize(mx->ready_ev);
    }
    comm.start(g.req);
    send_reqs.push_back(g.req);
  }
  // COLOCATED fallback sends queued by Phase 2' ride as plain isends this
  // generation; their rebuilt persistent programs take over next exchange.
  std::stable_sort(inflight_.pending_sends.begin(), inflight_.pending_sends.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [ready, xp] : inflight_.pending_sends) {
    (void)ready;
    TransferState& x = *xp;
    rt.event_synchronize(x.ready_ev);
    x.send_req =
        comm.isend(simpi::Payload::of(x.src_host, 0, x.active_bytes), x.t.dst_rank, x.t.tag);
    send_reqs.push_back(x.send_req);
  }

  // Phase 5': as each persistent receive lands, launch its captured
  // H2D+unpack (or group fan-out) graph.
  for (;;) {
    const int i = comm.wait_any(inflight_.recv_reqs);
    if (i < 0) break;
    rt.launch_graph(*inflight_.recv_graphs[static_cast<std::size_t>(i)]);
  }

  // Phase 6': COLOCATED receivers (interpreted, like the send side).
  for (plan::TransferProgram& prog : p.programs) {
    if (!prog.eager) continue;
    TransferState& x = *xfers_[prog.xfer_index];
    if (x.i_recv) colocated_recv(x);
  }

  // Phase 7': drain sends, then quiesce every stream we touched.
  comm.waitall(send_reqs);
  for (auto& xp : xfers_) {
    TransferState& x = *xp;
    if (x.src_stream.valid()) rt.stream_synchronize(x.src_stream);
    if (x.dst_stream.valid()) rt.stream_synchronize(x.dst_stream);
  }

  cur_plan_ = nullptr;
  inflight_.active = false;
  inflight_.planned = false;
  inflight_.recv_reqs.clear();
  inflight_.send_reqs.clear();
  inflight_.recv_graphs.clear();
  inflight_.recv_map.clear();
  inflight_.pending_sends.clear();
  inflight_.pending_group_sends.clear();
}

void DistributedDomain::launch_compute(LocalDomain& ld, const std::string& label,
                                       std::uint64_t bytes_moved,
                                       const std::function<void()>& body) {
  ctx_.rt.launch_kernel(ld.compute_stream(), bytes_moved, label, body);
}

void DistributedDomain::compute_synchronize() {
  for (auto& l : locals_) ctx_.rt.stream_synchronize(l->compute_stream());
}

}  // namespace stencil
