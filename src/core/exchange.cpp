#include "core/exchange.h"

#include <set>
#include <stdexcept>

#include "core/tagspace.h"
#include "telemetry/metrics.h"

namespace stencil {

int ExchangePlan::rank_of(const Placement& placement, Dim3 global_idx, int ranks_per_node) {
  const int gpn = placement.partition().gpus_per_node();
  const int gpus_per_rank = gpn / ranks_per_node;
  const int node = placement.node_linear_of(global_idx);
  const int local = placement.local_gpu_of(global_idx);
  return node * ranks_per_node + local / gpus_per_rank;
}

Transfer ExchangePlan::make_transfer(const Placement& placement, Dim3 src_idx, Dim3 dst_idx,
                                     Dim3 dir, int ranks_per_node, MethodFlags flags, int tenant) {
  const auto& hp = placement.partition();
  Transfer t;
  t.src_idx = src_idx;
  t.dir = dir;
  t.dst_idx = dst_idx;
  t.src_gpu = placement.global_gpu_of(src_idx);
  t.dst_gpu = placement.global_gpu_of(t.dst_idx);
  t.src_rank = rank_of(placement, src_idx, ranks_per_node);
  t.dst_rank = rank_of(placement, t.dst_idx, ranks_per_node);

  const int gpn = static_cast<int>(hp.gpu_extent().volume());
  const bool same_node = t.src_gpu / gpn == t.dst_gpu / gpn;
  const Method remote =
      any(flags & MethodFlags::kCudaAwareMpi) ? Method::kCudaAwareMpi : Method::kStaged;

  if (t.self()) {
    if (any(flags & MethodFlags::kKernel)) {
      t.method = Method::kKernel;
    } else if (any(flags & MethodFlags::kPeer)) {
      t.method = Method::kPeer;  // pack/copy/unpack within one GPU
    } else {
      t.method = remote;  // MPI message to our own rank
    }
  } else if (t.src_rank == t.dst_rank) {
    t.method = any(flags & MethodFlags::kPeer) ? Method::kPeer : remote;
  } else if (same_node) {
    t.method = any(flags & MethodFlags::kColocated) ? Method::kColocated : remote;
  } else {
    t.method = remote;
  }

  const int di = direction_index(dir);
  if (di < 0) throw std::logic_error("ExchangePlan: bad direction");
  t.tag = tagspace::data_tag(src_idx.linearize(hp.global_extent()), di, tenant);
  return t;
}

ExchangePlan ExchangePlan::for_rank(const Placement& placement, int rank, int ranks_per_node,
                                    MethodFlags flags, Neighborhood nbhd, Boundary boundary,
                                    int tenant) {
  const auto& hp = placement.partition();
  const int gpn = static_cast<int>(hp.gpu_extent().volume());
  const int gpus_per_rank = gpn / ranks_per_node;
  const int node = rank / ranks_per_node;
  const int slot = rank % ranks_per_node;
  const Dim3 ext = hp.global_extent();

  ExchangePlan plan;
  std::set<std::pair<std::int64_t, int>> seen;  // (src linear, dir index)

  const auto maybe_add = [&](Dim3 src, Dim3 dst, Dim3 dir) {
    Transfer t = make_transfer(placement, src, dst, dir, ranks_per_node, flags, tenant);
    if (t.src_rank != rank && t.dst_rank != rank) return;
    if (seen.emplace(src.linearize(ext), direction_index(dir)).second) {
      plan.transfers_.push_back(t);
    }
  };

  const auto add_for_subdomain = [&](Dim3 idx) {
    for (const Dim3& dir : neighbor_directions(nbhd)) {
      // Transfers we *send*.
      if (const auto dst = neighbor_index(idx, dir, ext, boundary)) {
        maybe_add(idx, *dst, dir);
      }
      // Transfers we *receive*: the neighbor at -dir sends along +dir.
      if (const auto src = neighbor_index(idx, dir * Dim3{-1, -1, -1}, ext, boundary)) {
        maybe_add(*src, idx, dir);
      }
    }
  };

  for (int k = 0; k < gpus_per_rank; ++k) {
    const int local_gpu = slot * gpus_per_rank + k;
    // Live occupancy, not the base assignment: after recovery re-homing a
    // GPU may host adopted subdomains (or have lost its own).
    for (const Dim3 idx : placement.subdomains_on(node, local_gpu)) {
      add_for_subdomain(idx);
    }
  }
  return plan;
}

ExchangePlan ExchangePlan::full(const Placement& placement, int ranks_per_node, MethodFlags flags,
                                Neighborhood nbhd, Boundary boundary, int tenant) {
  const auto& hp = placement.partition();
  const Dim3 ext = hp.global_extent();
  ExchangePlan plan;
  for (std::int64_t i = 0; i < ext.volume(); ++i) {
    const Dim3 idx = Dim3::from_linear(i, ext);
    for (const Dim3& dir : neighbor_directions(nbhd)) {
      if (const auto dst = neighbor_index(idx, dir, ext, boundary)) {
        plan.transfers_.push_back(
            make_transfer(placement, idx, *dst, dir, ranks_per_node, flags, tenant));
      }
    }
  }
  return plan;
}

std::map<Method, int> ExchangePlan::method_histogram() const {
  std::map<Method, int> h;
  for (const auto& t : transfers_) ++h[t.method];
  return h;
}

void ExchangePlan::export_metrics(telemetry::MetricsRegistry& reg) const {
  // Zero out stale series first: a demotion can drain a method entirely,
  // and a gauge that silently kept its old value would misreport the table.
  for (const Method m : {Method::kStaged, Method::kCudaAwareMpi, Method::kColocated, Method::kPeer,
                         Method::kKernel}) {
    const auto it = reg.gauges().find(std::string("exchange_plan_transfers{method=\"") +
                                      to_string(m) + "\"}");
    if (it != reg.gauges().end()) {
      reg.gauge(it->first).set(0.0);
    }
  }
  for (const auto& [m, n] : method_histogram()) {
    reg.gauge(std::string("exchange_plan_transfers{method=\"") + to_string(m) + "\"}")
        .set(static_cast<double>(n));
  }
  reg.gauge("exchange_plan_total_transfers").set(static_cast<double>(transfers_.size()));
}

void ExchangePlan::map_gpus(const std::function<int(int)>& fn) {
  for (auto& t : transfers_) {
    t.src_gpu = fn(t.src_gpu);
    t.dst_gpu = fn(t.dst_gpu);
  }
}

void ExchangePlan::set_method(int tag, Method m) {
  for (auto& t : transfers_) {
    if (t.tag == tag) t.method = m;
  }
}

}  // namespace stencil
