#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/method_flags.h"
#include "core/placement.h"

namespace stencil::telemetry {
class MetricsRegistry;
}

namespace stencil {

/// One directed halo transfer: subdomain at src_idx sends its dir-facing
/// interior slab to the subdomain at dst_idx (periodic wrap), realized by
/// `method`. Built identically on every rank from the shared placement.
struct Transfer {
  Dim3 src_idx;
  Dim3 dst_idx;
  Dim3 dir;
  int src_gpu = -1;   // global GPU ids
  int dst_gpu = -1;
  int src_rank = -1;
  int dst_rank = -1;
  Method method = Method::kStaged;
  int tag = 0;

  bool self() const { return src_idx == dst_idx; }
};

/// Capability specialization (paper §III-C): choose, for every subdomain
/// pair, the first applicable enabled method:
///   self-exchange          -> KERNEL
///   same rank              -> PEER_MEMCPY
///   same node, other rank  -> COLOCATED_MEMCPY
///   otherwise              -> CUDA_AWARE_MPI if enabled, else STAGED
/// Disabled methods fall through to the next tier; STAGED is always legal.
class ExchangePlan {
 public:
  /// Build only the transfers in which `rank` participates (as sender,
  /// receiver, or both). `ranks_per_node` defines subdomain ownership:
  /// local GPU g belongs to rank slot g / (gpus_per_node / ranks_per_node).
  /// `tenant` selects the tagspace data window the tags derive into (0 =
  /// the solo default, identical to the pre-tenancy derivation).
  static ExchangePlan for_rank(const Placement& placement, int rank, int ranks_per_node,
                               MethodFlags flags, Neighborhood nbhd,
                               Boundary boundary = Boundary::kPeriodic, int tenant = 0);

  /// Build every transfer in the whole job (tests, planning reports).
  static ExchangePlan full(const Placement& placement, int ranks_per_node, MethodFlags flags,
                           Neighborhood nbhd, Boundary boundary = Boundary::kPeriodic,
                           int tenant = 0);

  const std::vector<Transfer>& transfers() const { return transfers_; }

  /// Rewrite every transfer's GPU ids through `fn`. Multi-tenancy builds
  /// the plan in the tenant's virtual GPU space (ids the shared placement
  /// emits) and then maps each id to the physical GPU backing it, so every
  /// consumer downstream of plan construction — runtime calls, machine
  /// cost queries, peer/IPC setup — continues to see physical ids. Ranks,
  /// tags, and methods are untouched: specialization decisions were
  /// already final in virtual space (same-vnode iff same physical node).
  void map_gpus(const std::function<int(int)>& fn);

  std::map<Method, int> method_histogram() const;

  /// Rewrite the method of the transfer with this tag (runtime demotion:
  /// the exchange layer downgrades a transfer whose capability was lost).
  void set_method(int tag, Method m);

  /// Rank owning a subdomain under this ownership layout.
  static int rank_of(const Placement& placement, Dim3 global_idx, int ranks_per_node);

  /// Export the specialization table as gauges: one
  /// `exchange_plan_transfers{method="..."}` series per realized method.
  /// Re-exported after every runtime demotion, so the gauges always show
  /// the *current* table (the paper's Table II, live).
  void export_metrics(telemetry::MetricsRegistry& reg) const;

 private:
  static Transfer make_transfer(const Placement& placement, Dim3 src_idx, Dim3 dst_idx, Dim3 dir,
                                int ranks_per_node, MethodFlags flags, int tenant);
  std::vector<Transfer> transfers_;
};

}  // namespace stencil
