#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "check/checker.h"
#include "core/placement.h"
#include "simpi/mpi.h"
#include "simtime/engine.h"
#include "topo/machine.h"
#include "trace/recorder.h"
#include "vgpu/runtime.h"

namespace stencil {

class Cluster;

/// Everything one rank's code needs: its communicator, the CUDA-like
/// runtime, and the GPUs this rank drives. GPUs are block-assigned within
/// the node (rank slot s of R ranks drives GPUs [s*G/R, (s+1)*G/R)), as a
/// typical Summit jsrun layout does.
struct RankCtx {
  simpi::Comm comm;
  vgpu::Runtime& rt;
  topo::Machine& machine;
  Cluster& cluster;
  int gpus_per_rank = 0;
  std::vector<int> gpus;  // global GPU ids owned by this rank

  int rank() const { return comm.rank(); }
  int node() const { return comm.node(); }
  sim::Engine& engine() { return rt.engine(); }
};

/// Owns the whole simulated world — engine, machine, virtual GPU runtime,
/// and MPI job — and runs SPMD bodies across the ranks. Also hosts the
/// cross-rank placement cache: placement is deterministic, so rank 0's
/// result is shared instead of recomputed 1536 times.
class Cluster {
 public:
  Cluster(topo::NodeArchetype arch, int num_nodes, int ranks_per_node);

  /// Run `body` once per rank (SPMD), to completion.
  void run(const std::function<void(RankCtx&)>& body);

  sim::Engine& engine() { return eng_; }
  topo::Machine& machine() { return machine_; }
  vgpu::Runtime& runtime() { return rt_; }
  simpi::Job& job() { return job_; }

  int num_nodes() const { return machine_.num_nodes(); }
  int ranks_per_node() const { return job_.ranks_per_node(); }
  int gpus_per_rank() const { return machine_.gpus_per_node() / job_.ranks_per_node(); }

  void set_recorder(trace::Recorder* rec) {
    rt_.set_recorder(rec);
    job_.set_recorder(rec);
  }
  void set_mem_mode(vgpu::MemMode m) { rt_.set_mem_mode(m); }

  /// Attach a happens-before checker (nullptr detaches): every runtime op,
  /// event edge, and MPI post/match/wait feeds it, and the exchange layer
  /// annotates its kernels with byte-range access lists when one is set.
  void set_checker(check::Checker* c) {
    rt_.set_checker(c);
    job_.set_checker(c);
  }

  /// Attach a telemetry sink (nullptr detaches): every runtime op and MPI
  /// post/match/drop feeds its metrics registry and flight recorder.
  void set_telemetry(telemetry::Telemetry* t) {
    rt_.set_telemetry(t);
    job_.set_telemetry(t);
  }

  /// Attach a fault injector for this cluster's runs (nullptr detaches).
  /// The Machine holds the single authoritative pointer; the runtime, MPI
  /// job, and exchange layer all read it from there. The injector must
  /// outlive every run() that uses it.
  void set_fault_injector(const fault::Injector* inj) { machine_.set_fault_injector(inj); }

  /// Shared placement cache (see Placement: identical on every rank).
  std::shared_ptr<const Placement> placement_cached(
      Dim3 domain, Radius radius, std::size_t bytes_per_point, Neighborhood nbhd,
      PlacementStrategy strategy, Boundary boundary = Boundary::kPeriodic);

 private:
  sim::Engine eng_;
  topo::Machine machine_;
  vgpu::Runtime rt_;
  simpi::Job job_;
  std::map<std::string, std::shared_ptr<const Placement>> placement_cache_;
};

}  // namespace stencil
