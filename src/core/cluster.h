#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "check/checker.h"
#include "core/placement.h"
#include "core/tenant.h"
#include "dtrace/collector.h"
#include "dtrace/progress.h"
#include "explain/explain.h"
#include "simpi/mpi.h"
#include "simtime/engine.h"
#include "telemetry/telemetry.h"
#include "topo/machine.h"
#include "trace/recorder.h"
#include "vgpu/runtime.h"
#include "watch/watch.h"

namespace stencil {

class Cluster;

/// Everything one rank's code needs: its communicator, the CUDA-like
/// runtime, and the GPUs this rank drives. GPUs are block-assigned within
/// the node (rank slot s of R ranks drives GPUs [s*G/R, (s+1)*G/R)), as a
/// typical Summit jsrun layout does.
struct RankCtx {
  simpi::Comm comm;
  vgpu::Runtime& rt;
  topo::Machine& machine;
  Cluster& cluster;
  int gpus_per_rank = 0;
  std::vector<int> gpus;  // global GPU ids owned by this rank
  /// Multi-tenancy (src/sched): the slice of the machine this rank's job
  /// owns. nullptr = solo job owning the whole machine (the default; every
  /// existing call site aggregate-initializes without this member).
  const core::TenantView* tenant = nullptr;

  int rank() const { return comm.rank(); }
  int node() const { return comm.node(); }
  sim::Engine& engine() { return rt.engine(); }
};

/// Owns the whole simulated world — engine, machine, virtual GPU runtime,
/// and MPI job — and runs SPMD bodies across the ranks. Also hosts the
/// cross-rank placement cache: placement is deterministic, so rank 0's
/// result is shared instead of recomputed 1536 times.
class Cluster {
 public:
  Cluster(topo::NodeArchetype arch, int num_nodes, int ranks_per_node);

  /// Run `body` once per rank (SPMD), to completion.
  void run(const std::function<void(RankCtx&)>& body);

  sim::Engine& engine() { return eng_; }
  topo::Machine& machine() { return machine_; }
  vgpu::Runtime& runtime() { return rt_; }
  simpi::Job& job() { return job_; }

  int num_nodes() const { return machine_.num_nodes(); }
  int ranks_per_node() const { return job_.ranks_per_node(); }
  int gpus_per_rank() const { return machine_.gpus_per_node() / job_.ranks_per_node(); }

  void set_recorder(trace::Recorder* rec) {
    recorder_ = rec;
    rt_.set_recorder(rec);
    job_.set_recorder(rec);
    if (watch_ != nullptr) watch_->set_recorder(rec);
  }
  trace::Recorder* recorder() const { return recorder_; }

  /// Attach a causal distributed-tracing collector (DESIGN.md §12): a
  /// rank-aware Recorder plus the job topology it needs for GPU-lane
  /// attribution. Equivalent to set_recorder(c) + c->set_topology(...).
  void set_collector(dtrace::Collector* c) {
    if (c != nullptr) c->set_topology(job_.world_size(), gpus_per_rank());
    set_recorder(c);
  }

  void set_mem_mode(vgpu::MemMode m) { rt_.set_mem_mode(m); }

  /// Attach a happens-before checker (nullptr detaches): every runtime op,
  /// event edge, and MPI post/match/wait feeds it, and the exchange layer
  /// annotates its kernels with byte-range access lists when one is set.
  void set_checker(check::Checker* c) {
    checker_ = c;
    rt_.set_checker(c);
    job_.set_checker(c);
    if (c != nullptr && telemetry_ != nullptr) c->set_telemetry(telemetry_);
  }

  /// Attach a telemetry sink (nullptr detaches): every runtime op and MPI
  /// post/match/drop feeds its metrics registry and flight recorder. When a
  /// checker is (or later gets) attached too, its findings are cross-wired
  /// into the sink so race reports dump the flight-recorder tail.
  void set_telemetry(telemetry::Telemetry* t) {
    telemetry_ = t;
    rt_.set_telemetry(t);
    job_.set_telemetry(t);
    if (checker_ != nullptr) checker_->set_telemetry(t);
    if (watch_ != nullptr) watch_->set_flight(t != nullptr ? &t->flight() : nullptr);
  }
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Attach a live performance watch (nullptr detaches): every delivered
  /// MPI message and every completed exchange feeds its lane estimators and
  /// anomaly detectors. Configures the watch to this cluster's shape and
  /// cross-wires the current recorder (incident instant events) and
  /// telemetry flight recorder (incident evidence tails). Pure bookkeeping:
  /// timing is bit-identical with or without one attached.
  void set_watch(watch::Watch* w) {
    watch_ = w;
    job_.set_watch(w);
    if (w == nullptr) return;
    w->configure(num_nodes(), job_.world_size());
    w->set_recorder(recorder_);
    w->set_flight(telemetry_ != nullptr ? &telemetry_->flight() : nullptr);
  }
  watch::Watch* watch() const { return watch_; }

  /// Attach a progress/stall monitor (nullptr detaches): every rank
  /// heartbeats at exchange start and completion, and the monitor flags
  /// stragglers/stalls against its slack thresholds, snapshotting the
  /// flight-recorder tail and in-flight trace contexts when one fires.
  void set_progress_monitor(dtrace::ProgressMonitor* m) {
    monitor_ = m;
    if (m == nullptr) return;
    m->set_world(job_.world_size());
    if (telemetry_ != nullptr) {
      m->set_flight(&telemetry_->flight());
      m->set_telemetry(telemetry_);
    }
    if (auto* c = dynamic_cast<dtrace::Collector*>(recorder_); c != nullptr) {
      m->set_collector(c);
    }
    m->set_rank_fail_time([this](int r) { return job_.rank_fail_time(r); });
  }
  dtrace::ProgressMonitor* progress_monitor() const { return monitor_; }

  /// Attach a decision-provenance ledger (nullptr detaches): placement
  /// cache misses record the partition shape choice and every distinct QAP
  /// instance (winner, runner-up, objective values), and the exchange,
  /// scheduler, and recovery layers record specialization rungs, demotions,
  /// plan compiles/migrations, admission verdicts, and recovery ladder
  /// steps into the same ring. Pure bookkeeping with zero virtual-time
  /// cost: timing and all other artifacts are byte-identical with or
  /// without one attached.
  void set_explain(explain::Ledger* e) { explain_ = e; }
  explain::Ledger* explain_ledger() const { return explain_; }

  /// Attach a fault injector for this cluster's runs (nullptr detaches).
  /// The Machine holds the single authoritative pointer; the runtime, MPI
  /// job, and exchange layer all read it from there. The injector must
  /// outlive every run() that uses it.
  void set_fault_injector(const fault::Injector* inj) { machine_.set_fault_injector(inj); }

  /// Shared placement cache (see Placement: identical on every rank).
  /// `num_nodes` / `gpus_per_node` override the machine shape for tenant
  /// slices partitioning over a virtual machine (0 = use the physical
  /// shape); `gpu_slot_base` anchors the slice's bandwidth lookups and is
  /// part of the cache key so different slices never share a solution.
  std::shared_ptr<const Placement> placement_cached(
      Dim3 domain, Radius radius, std::size_t bytes_per_point, Neighborhood nbhd,
      PlacementStrategy strategy, Boundary boundary = Boundary::kPeriodic, int num_nodes = 0,
      int gpus_per_node = 0, int gpu_slot_base = 0);

 private:
  sim::Engine eng_;
  topo::Machine machine_;
  vgpu::Runtime rt_;
  simpi::Job job_;
  trace::Recorder* recorder_ = nullptr;
  check::Checker* checker_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  watch::Watch* watch_ = nullptr;
  dtrace::ProgressMonitor* monitor_ = nullptr;
  explain::Ledger* explain_ = nullptr;
  std::map<std::string, std::shared_ptr<const Placement>> placement_cache_;
};

}  // namespace stencil
