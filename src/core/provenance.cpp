#include "core/provenance.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stencil {

namespace {

std::string assignment_str(const std::vector<int>& f) {
  std::string s = "[";
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i > 0) s += ' ';
    s += std::to_string(f[i]);
  }
  s += ']';
  return s;
}

}  // namespace

void record_partition_decision(explain::Ledger& led, const HierarchicalPartition& hp,
                               Radius radius, sim::Time now) {
  const int r = radius.max();
  const FlatPartition flat(hp.domain(), hp.num_nodes(), hp.gpus_per_node());
  explain::DecisionRecord rec;
  rec.kind = explain::DecisionKind::kPartition;
  rec.at = now;
  rec.subject = "domain " + hp.domain().str() + " over " + std::to_string(hp.num_nodes()) +
                " nodes x " + std::to_string(hp.gpus_per_node()) + " GPUs";
  rec.chosen = "hierarchical " + hp.node_extent().str() + " nodes * " + hp.gpu_extent().str() +
               " GPUs";
  rec.chosen_score = static_cast<double>(hp.internode_exchange_volume(r));
  rec.rejected.push_back(
      {"flat " + flat.global_extent().str(),
       static_cast<double>(flat.internode_exchange_volume(r))});
  rec.detail = "score = inter-node exchange volume (grid points, radius " + std::to_string(r) +
               "); total crossing any boundary: " +
               std::to_string(hp.total_exchange_volume(r));
  led.append(std::move(rec));
}

void record_placement_decision(explain::Ledger& led, const Placement& p, sim::Time now) {
  const int g = p.gpus_per_node();
  const int nodes = p.partition().num_nodes();
  const qap::SquareMatrix& d = p.distance();

  // Group nodes by flow matrix, like the Placement constructor's memo: one
  // record per distinct QAP instance, annotated with how many nodes share
  // it.
  struct FlowClass {
    qap::SquareMatrix flow;
    int rep_node = 0;
    int sharing = 0;
  };
  std::map<std::vector<double>, std::size_t> index_of;
  std::vector<FlowClass> classes;
  for (int n = 0; n < nodes; ++n) {
    qap::SquareMatrix w = p.node_flow(n);
    std::vector<double> key(static_cast<std::size_t>(g) * static_cast<std::size_t>(g));
    for (int i = 0; i < g; ++i)
      for (int j = 0; j < g; ++j) key[static_cast<std::size_t>(i) * g + j] = w.at(i, j);
    auto [it, inserted] = index_of.emplace(std::move(key), classes.size());
    if (inserted) classes.push_back({std::move(w), n, 1});
    else ++classes[it->second].sharing;
  }

  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    const FlowClass& fc = classes[ci];
    const std::vector<int>& chosen = p.node_assignment(fc.rep_node);
    const double chosen_cost = qap::cost(fc.flow, d, chosen);

    auto evidence = std::make_shared<explain::PlacementCase>();
    evidence->flow = fc.flow;
    evidence->distance = d;
    evidence->chosen = chosen;
    evidence->nodes_sharing = fc.sharing;

    explain::DecisionRecord rec;
    rec.kind = explain::DecisionKind::kPlacement;
    rec.at = now;
    rec.subject = "flow-class " + std::to_string(ci) + "/" + std::to_string(classes.size()) +
                  " (" + std::to_string(fc.sharing) + " of " + std::to_string(nodes) +
                  " nodes, " + std::to_string(g) + " GPUs)";
    rec.chosen = std::string(to_string(p.strategy())) + " " + assignment_str(chosen);
    rec.chosen_score = chosen_cost;

    // Re-solve in explained mode to recover the losing candidates. The
    // solver the Placement actually used (optimum for <= 8 GPUs, greedy
    // beyond) supplies the runner-up; the identity assignment is the
    // paper's trivial baseline.
    const bool exhaustive = g <= 8;
    const qap::ExplainedSolution sol = exhaustive
                                           ? qap::solve_exhaustive_explained(fc.flow, d)
                                           : qap::solve_greedy_2swap_explained(fc.flow, d);
    rec.work = sol.evaluated;
    rec.detail = std::string("solver = ") + (exhaustive ? "exhaustive" : "greedy-2swap") +
                 ", distance = 1/bw";

    auto add_alt = [&](const std::string& label, const std::vector<int>& f) {
      if (f.empty() || f == chosen) return;
      for (const auto& alt : evidence->alternatives) {
        if (alt.second == f) return;  // already captured under another label
      }
      evidence->alternatives.emplace_back(label, f);
      rec.rejected.push_back({label + " " + assignment_str(f), qap::cost(fc.flow, d, f)});
    };
    switch (p.strategy()) {
      case PlacementStrategy::kNodeAware:
      case PlacementStrategy::kMeasured:
        add_alt("runner-up", sol.runner_up);
        add_alt("trivial", qap::identity_assignment(g));
        break;
      case PlacementStrategy::kTrivial:
      case PlacementStrategy::kWorst:
        // The baseline strategies reject the solver's optimum — the delta
        // is negative, quantifying what the baseline leaves on the table.
        add_alt("node-aware", sol.best);
        add_alt("runner-up", sol.runner_up);
        break;
    }
    std::stable_sort(rec.rejected.begin(), rec.rejected.end(),
                     [](const explain::Alternative& a, const explain::Alternative& b) {
                       return a.score < b.score;
                     });
    rec.evidence = std::move(evidence);
    led.append(std::move(rec));
  }
}

}  // namespace stencil
