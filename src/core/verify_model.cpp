#include <algorithm>
#include <map>
#include <sstream>

#include "core/distributed_domain.h"
#include "core/region.h"
#include "core/tagspace.h"
#include "core/transfer_state.h"
#include "simpi/mpi.h"
#include "verify/verify.h"

/// \file verify_model.cpp
/// Lowers a plan::CompiledPlan into the verifier's ExchangeModel
/// (DESIGN.md §14). The local rank is modeled from the compiled artifact
/// itself — program tags, payload sizes, persistent-request sides, group
/// layouts — while every remote rank's plan is re-derived deterministically
/// from one cached ExchangePlan::full over the shared placement, with the
/// local demotion table overriding the methods of shared transfers. A plan that
/// drifted from the derivation (wrong tag, wrong bytes, missing side)
/// therefore surfaces as a matching defect against its peers.

namespace stencil {

namespace {

struct ModelXfer {
  Transfer t;
  std::size_t bytes = 0;     // payload for the plan's quantity subset
  Method method = Method::kStaged;  // current (post-demotion) method
  bool agg_member = false;   // rides in an aggregated group
};

struct ModelGroup {
  int peer = -1;
  int tag = 0;
  std::size_t bytes = 0;
  std::vector<const ModelXfer*> members;  // tag-sorted
};

std::string dir3(Dim3 d) {
  auto c = [](std::int64_t v) { return v > 0 ? "+" : v < 0 ? "-" : "0"; };
  return std::string(c(d.x)) + c(d.y) + c(d.z);
}

verify::Box3 region_box(const Region3& r) {
  verify::Box3 b;
  const std::int64_t lo[3] = {r.origin.x, r.origin.y, r.origin.z};
  const std::int64_t ex[3] = {r.extent.x, r.extent.y, r.extent.z};
  for (int d = 0; d < 3; ++d) {
    b.lo[d] = lo[d];
    b.hi[d] = lo[d] + ex[d];
  }
  return b;
}

verify::Access flat(std::uint64_t buffer, std::uint64_t bytes, bool write) {
  verify::Access a;
  a.buffer = buffer;
  a.write = write;
  a.offset = 0;
  a.bytes = bytes;
  return a;
}

verify::Access flat_at(std::uint64_t buffer, std::uint64_t off, std::uint64_t bytes,
                       bool write) {
  verify::Access a = flat(buffer, bytes, write);
  a.offset = off;
  return a;
}

std::string data_token(int tag) { return "colo:" + std::to_string(tag) + ":data"; }
std::string done_token(int tag) { return "colo:" + std::to_string(tag) + ":done"; }

/// Emits one rank's op sequence mirroring the planned replay phases
/// (planned_start 0'–3', planned_finish 4'–7').
class RankEmitter {
 public:
  RankEmitter(verify::RankProgram& rp, int rank) : rp_(rp), rank_(rank) {}

  void order(std::size_t from, std::size_t to) { rp_.order.emplace_back(from, to); }
  /// Mark op `idx` as entitled to the named reserved tag range.
  void claim(std::size_t idx, const char* range) { rp_.ops[idx].claims = range; }

  std::size_t post_recv(int src, int tag, std::size_t bytes, std::string what) {
    verify::Op& o = emit(verify::OpKind::kPostRecv);
    o.peer = src;
    o.tag = tag;
    o.bytes = bytes;
    o.what = std::move(what);
    return rp_.ops.size() - 1;
  }
  std::size_t start_send(int dst, int tag, std::size_t bytes, std::string what,
                         std::vector<verify::Access> acc = {}) {
    verify::Op& o = emit(verify::OpKind::kStartSend);
    o.peer = dst;
    o.tag = tag;
    o.bytes = bytes;
    o.accesses = std::move(acc);
    o.what = std::move(what);
    return rp_.ops.size() - 1;
  }
  std::size_t wait_recv(int src, int tag, std::size_t bytes, std::string what,
                        std::vector<verify::Access> acc = {}) {
    verify::Op& o = emit(verify::OpKind::kWaitRecv);
    o.peer = src;
    o.tag = tag;
    o.bytes = bytes;
    o.accesses = std::move(acc);
    o.what = std::move(what);
    return rp_.ops.size() - 1;
  }
  std::size_t wait_send(int dst, int tag, std::size_t bytes, bool eager,
                        std::string what) {
    verify::Op& o = emit(verify::OpKind::kWaitSend);
    o.peer = dst;
    o.tag = tag;
    o.bytes = bytes;
    o.eager = eager;
    o.what = std::move(what);
    return rp_.ops.size() - 1;
  }
  std::size_t token_wait(std::string token, int gen_delta, int peer, int tag) {
    verify::Op& o = emit(verify::OpKind::kTokenWait);
    o.token = std::move(token);
    o.gen_delta = gen_delta;
    o.peer = peer;
    o.tag = tag;
    return rp_.ops.size() - 1;
  }
  std::size_t token_signal(std::string token, int peer, int tag) {
    verify::Op& o = emit(verify::OpKind::kTokenSignal);
    o.token = std::move(token);
    o.peer = peer;
    o.tag = tag;
    return rp_.ops.size() - 1;
  }
  std::size_t stream_op(std::uint64_t stream, int tag, std::string what,
                        std::vector<verify::Access> acc) {
    verify::Op& o = emit(verify::OpKind::kStream);
    o.stream = stream;
    o.tag = tag;
    o.accesses = std::move(acc);
    o.what = std::move(what);
    return rp_.ops.size() - 1;
  }

 private:
  /// Constructs the op in place; push-of-temporary moved three strings and an
  /// access vector per op, which added up across the whole remote world.
  verify::Op& emit(verify::OpKind kind) {
    verify::Op& o = rp_.ops.emplace_back();
    o.kind = kind;
    o.rank = rank_;
    return o;
  }

  verify::RankProgram& rp_;
  int rank_;
};

std::uint64_t stream_key(const vgpu::Stream& s) {
  if (!s.valid()) return 0;
  return (static_cast<std::uint64_t>(s.device + 1) << 40) | s.id;
}

bool eager_send(Method m, std::size_t bytes) {
  // Host-payload (STAGED / aggregated) sends at or below the eager limit
  // buffer immediately; device payloads (CUDA-aware) always rendezvous.
  return m == Method::kStaged && bytes <= simpi::Job::kEagerLimit;
}

/// Emit the message/token phases shared by the local-artifact and
/// derived-remote paths. `emit_streams` adds the pack/unpack stream work
/// (local rank only — remote access lists are not needed: hazards are
/// per-rank, and remote blocking structure is fully captured without them).
struct PhasePlan {
  std::vector<const ModelXfer*> xfers;  // plan order, bytes > 0
  std::vector<ModelGroup> send_groups;  // peer-ascending
  std::vector<ModelGroup> recv_groups;
};

}  // namespace

verify::ExchangeModel DistributedDomain::verify_model(const plan::CompiledPlan& p) const {
  verify::ExchangeModel m;
  m.name = p.key.str();
  m.world_size = ctx_.comm.size();
  m.ranks.resize(static_cast<std::size_t>(m.world_size));
  for (const auto& rr : tagspace::reserved_ranges()) {
    m.reserved.push_back({rr.lo, rr.hi, rr.name});
  }
  if (ctx_.tenant != nullptr) {
    // Tenant-scoped model: our data tags must stay inside our window, and
    // every other tenant's window is as reserved as the service spans —
    // check_tags rejects any tag that strays into a co-tenant's slice.
    m.tenant_scoped = true;
    m.tenant = tenant_id();
    const tagspace::Range win = tagspace::tenant_data_range(m.tenant);
    m.tenant_window = {win.lo, win.hi, win.name};
    for (int t = 0; t < tagspace::kMaxTenants; ++t) {
      if (t == m.tenant) continue;
      const tagspace::Range other = tagspace::tenant_data_range(t);
      m.reserved.push_back({other.lo, other.hi, "tenant-" + std::to_string(t) + "-data"});
    }
    m.world_rank_of.resize(static_cast<std::size_t>(ctx_.comm.size()));
    for (int r = 0; r < ctx_.comm.size(); ++r) {
      m.world_rank_of[static_cast<std::size_t>(r)] = ctx_.comm.world_rank_of(r);
    }
  }

  const int me = ctx_.comm.rank();
  const int rpn = part_rpn();
  const auto& hp = placement_->partition();

  std::size_t bpp = 0;
  for (std::size_t q : p.key.quantities) bpp += quantities_[q].elem_size;

  // Current (post-demotion) method per tag, from the realized local table.
  // Demotions of message methods are lockstep across both endpoints, so the
  // local view is authoritative for every transfer this rank shares.
  std::map<int, Method> my_method;
  for (const Transfer& t : plan_.transfers()) my_method[t.tag] = t.method;

  // Per-rank transfer lists. The local rank's comes from the compiled
  // artifact; remote ranks are re-derived from the shared placement: one
  // full() derivation, bucketed by endpoint, yields per-rank sets identical
  // to a for_rank() per remote rank at half the cost.
  std::vector<std::vector<ModelXfer>> storage(static_cast<std::size_t>(m.world_size));
  for (const plan::TransferProgram& prog : p.programs) {
    const TransferState& x = *xfers_[prog.xfer_index];
    ModelXfer mx;
    mx.t = x.t;
    mx.t.tag = prog.tag;
    mx.t.method = prog.method;
    mx.bytes = prog.bytes;
    mx.method = prog.method;
    mx.agg_member = x.aggregated && prog.method == Method::kStaged;
    storage[static_cast<std::size_t>(me)].push_back(mx);
  }
  // The world transfer list and slab element counts depend only on the
  // exchange shape, so consecutive admissions reuse the cached derivation;
  // the plan-specific parts (bytes-per-point, demoted methods) are applied
  // per call below.
  VerifyDeriv& vd = verify_deriv_;
  if (vd.placement != placement_ || vd.flags != flags_ || vd.nbhd != nbhd_ ||
      vd.boundary != boundary_ || !(vd.radius == radius_)) {
    vd.placement = placement_;
    vd.flags = flags_;
    vd.nbhd = nbhd_;
    vd.boundary = boundary_;
    vd.radius = radius_;
    vd.xfers.clear();
    const ExchangePlan ep =
        ExchangePlan::full(*placement_, rpn, flags_, nbhd_, boundary_, tenant_id());
    vd.xfers.reserve(ep.transfers().size());
    for (const Transfer& t : ep.transfers()) {
      const Region3 slab = interior_slab(hp.subdomain_size(t.src_idx), t.dir, radius_);
      vd.xfers.emplace_back(t, static_cast<std::size_t>(slab.volume()));
    }
  }
  for (const auto& [t, elems] : vd.xfers) {
    ModelXfer mx;
    mx.t = t;
    mx.bytes = elems * bpp;
    if (mx.bytes == 0) continue;  // asymmetric radius: nothing moves
    const auto it = my_method.find(t.tag);
    mx.method = it != my_method.end() ? it->second : t.method;
    // Aggregation membership is fixed at realize() from the *original*
    // specialization; demotions only add individual STAGED traffic.
    mx.agg_member = aggregate_remote_ && t.method == Method::kStaged;
    if (t.src_rank != me) storage[static_cast<std::size_t>(t.src_rank)].push_back(mx);
    if (t.dst_rank != me && t.dst_rank != t.src_rank) {
      storage[static_cast<std::size_t>(t.dst_rank)].push_back(mx);
    }
  }

  for (int r = 0; r < m.world_size; ++r) {
    const auto& list = storage[static_cast<std::size_t>(r)];
    verify::RankProgram& rp = m.ranks[static_cast<std::size_t>(r)];
    rp.rank = r;
    // Every transfer contributes at most ~4 ops to each endpoint (post/start,
    // wait, pack/unpack, token); reserving up front keeps the large Op structs
    // from being moved on vector growth.
    rp.ops.reserve(list.size() * 4 + 8);
    RankEmitter em(rp, r);

    PhasePlan ph;
    ph.xfers.reserve(list.size());
    for (const ModelXfer& mx : list) ph.xfers.push_back(&mx);
    // Aggregated groups, rebuilt exactly as build_aggregation_groups does:
    // staged members grouped per peer, tag-sorted so both ends agree on the
    // layout. For the local rank the artifact's own groups take precedence.
    auto derive_groups = [&](bool is_send) {
      std::map<int, ModelGroup> by_peer;
      for (const ModelXfer* mx : ph.xfers) {
        if (!mx->agg_member) continue;
        if (is_send && mx->t.src_rank == r) {
          by_peer[mx->t.dst_rank].members.push_back(mx);
        } else if (!is_send && mx->t.dst_rank == r) {
          by_peer[mx->t.src_rank].members.push_back(mx);
        }
      }
      std::vector<ModelGroup> out;
      for (auto& [peer, g] : by_peer) {
        g.peer = peer;
        // Aggregation headers key off the *world* rank (matching the runtime
        // derivation) so concurrent tenants' headers never alias.
        g.tag = is_send ? tagspace::agg_tag(m.world_rank(r))
                        : tagspace::agg_tag(m.world_rank(peer));
        std::sort(g.members.begin(), g.members.end(),
                  [](const ModelXfer* a, const ModelXfer* b) { return a->t.tag < b->t.tag; });
        for (const ModelXfer* mx : g.members) g.bytes += mx->bytes;
        out.push_back(std::move(g));
      }
      return out;
    };
    ph.send_groups = derive_groups(true);
    ph.recv_groups = derive_groups(false);
    if (r == me) {
      // Cross-check the artifact's group layout against the derivation: a
      // disagreement in bytes or membership shows up as a matching defect
      // because the peers' models use the derived layout.
      for (std::size_t i = 0; i < p.send_groups.size() && i < ph.send_groups.size(); ++i) {
        ph.send_groups[i].bytes = p.send_groups[i].bytes;
      }
      for (std::size_t i = 0; i < p.recv_groups.size() && i < ph.recv_groups.size(); ++i) {
        ph.recv_groups[i].bytes = p.recv_groups[i].bytes;
      }
    }

    // Tag -> TransferState for the local rank's access annotations.
    std::map<int, const TransferState*> my_state;
    if (r == me) {
      for (const auto& xp : xfers_) my_state[xp->t.tag] = xp.get();
    }
    auto quantity_boxes = [&](LocalDomain* ld, const Region3& reg, bool write) {
      std::vector<verify::Access> acc;
      if (ld == nullptr) return acc;
      for (std::size_t q : p.key.quantities) {
        verify::Access a;
        a.buffer = ld->data(q).id();
        a.write = write;
        a.is_box = true;
        a.box = region_box(reg);
        acc.push_back(a);
      }
      return acc;
    };
    auto append = [](std::vector<verify::Access>& dst, std::vector<verify::Access> src) {
      for (auto& a : src) dst.push_back(std::move(a));
    };

    // Phase 0': persistent receives, groups first (eager post order).
    std::vector<std::size_t> posted;       // op index of each post
    std::vector<int> posted_group;         // index into ph.recv_groups, or -1
    std::vector<const ModelXfer*> posted_xfer;
    for (std::size_t gi = 0; gi < ph.recv_groups.size(); ++gi) {
      const ModelGroup& g = ph.recv_groups[gi];
      posted.push_back(em.post_recv(g.peer, g.tag, g.bytes, "agg"));
      em.claim(posted.back(), tagspace::kAggRangeName);
      posted_group.push_back(static_cast<int>(gi));
      posted_xfer.push_back(nullptr);
    }
    for (const ModelXfer* mx : ph.xfers) {
      if (mx->t.dst_rank != r || mx->agg_member) continue;
      if (mx->method != Method::kStaged && mx->method != Method::kCudaAwareMpi) continue;
      posted.push_back(em.post_recv(mx->t.src_rank, mx->t.tag, mx->bytes, dir3(mx->t.dir)));
      posted_group.push_back(-1);
      posted_xfer.push_back(mx);
    }

    // Phase 1': KERNEL / PEER frozen chains (local work, no messages).
    if (r == me) {
      for (const ModelXfer* mx : ph.xfers) {
        const TransferState* x = my_state.count(mx->t.tag) ? my_state.at(mx->t.tag) : nullptr;
        if (x == nullptr) continue;
        if (mx->method == Method::kKernel && mx->t.src_rank == r) {
          std::vector<verify::Access> acc = quantity_boxes(x->src_ld, x->src_region, false);
          append(acc, quantity_boxes(x->src_ld, x->dst_region, true));
          em.stream_op(stream_key(x->src_stream), mx->t.tag, "self " + dir3(mx->t.dir),
                       std::move(acc));
        } else if (mx->method == Method::kPeer) {
          std::vector<verify::Access> acc = quantity_boxes(x->src_ld, x->src_region, false);
          if (peer_use_3d(*x)) {
            append(acc, quantity_boxes(x->dst_ld, x->dst_region, true));
            em.stream_op(stream_key(x->src_stream), mx->t.tag, "3d " + dir3(mx->t.dir),
                         std::move(acc));
          } else {
            acc.push_back(flat(x->src_pack.id(), mx->bytes, true));
            acc.push_back(flat(x->dst_pack.id(), mx->bytes, true));
            const std::size_t o1 = em.stream_op(stream_key(x->src_stream), mx->t.tag,
                                                "pack+copy " + dir3(mx->t.dir), std::move(acc));
            std::vector<verify::Access> uacc{flat(x->dst_pack.id(), mx->bytes, false)};
            append(uacc, quantity_boxes(x->dst_ld, x->dst_region, true));
            const std::size_t o2 = em.stream_op(stream_key(x->dst_stream), mx->t.tag,
                                                "unpack " + dir3(mx->t.dir), std::move(uacc));
            em.order(o1, o2);  // ready_ev cross-stream edge
          }
        }
      }
    }

    // Phase 2': COLOCATED senders — flow-control token (previous generation's
    // done) then the IPC push and this generation's data token.
    for (const ModelXfer* mx : ph.xfers) {
      if (mx->method != Method::kColocated || mx->t.src_rank != r) continue;
      const std::size_t w =
          em.token_wait(done_token(mx->t.tag), -1, mx->t.dst_rank, mx->t.tag);
      if (r == me && my_state.count(mx->t.tag) != 0) {
        const TransferState* x = my_state.at(mx->t.tag);
        std::vector<verify::Access> acc = quantity_boxes(x->src_ld, x->src_region, false);
        if (x->src_pack.valid()) acc.push_back(flat(x->src_pack.id(), mx->bytes, true));
        const std::size_t o = em.stream_op(stream_key(x->src_stream), mx->t.tag,
                                           "ipc-push " + dir3(mx->t.dir), std::move(acc));
        em.order(w, o);
      }
      em.token_signal(data_token(mx->t.tag), mx->t.dst_rank, mx->t.tag);
    }

    // Phase 3': STAGED / CUDA-aware sender packs, then group packs.
    std::map<int, std::size_t> pack_of;  // tag -> pack op (send-start edges)
    std::map<int, std::vector<std::size_t>> group_packs;  // send-group idx -> ops
    if (r == me) {
      for (const ModelXfer* mx : ph.xfers) {
        if (mx->t.src_rank != r || mx->agg_member) continue;
        if (mx->method != Method::kStaged && mx->method != Method::kCudaAwareMpi) continue;
        const TransferState* x = my_state.count(mx->t.tag) ? my_state.at(mx->t.tag) : nullptr;
        if (x == nullptr) continue;
        std::vector<verify::Access> acc = quantity_boxes(x->src_ld, x->src_region, false);
        if (mx->method == Method::kStaged) {
          if (staged_zero_copy_) {
            acc.push_back(flat(x->src_host.id(), mx->bytes, true));
          } else {
            acc.push_back(flat(x->src_pack.id(), mx->bytes, true));
            acc.push_back(flat(x->src_host.id(), mx->bytes, true));
          }
        } else {
          acc.push_back(flat(x->src_pack.id(), mx->bytes, true));
        }
        pack_of[mx->t.tag] = em.stream_op(stream_key(x->src_stream), mx->t.tag,
                                          "pack " + dir3(mx->t.dir), std::move(acc));
      }
      for (std::size_t gi = 0; gi < ph.send_groups.size(); ++gi) {
        const ModelGroup& g = ph.send_groups[gi];
        std::size_t off = 0;
        for (const ModelXfer* mx : g.members) {
          const TransferState* x =
              my_state.count(mx->t.tag) ? my_state.at(mx->t.tag) : nullptr;
          if (x != nullptr) {
            std::vector<verify::Access> acc = quantity_boxes(x->src_ld, x->src_region, false);
            acc.push_back(flat(x->src_pack.id(), mx->bytes, true));
            // Staging slice of the merged pinned buffer (host of the group's
            // realize-time AggGroup).
            const AggGroup& grp = *send_groups_[gi];
            acc.push_back(flat_at(grp.host.id(), off, mx->bytes, true));
            group_packs[static_cast<int>(gi)].push_back(
                em.stream_op(stream_key(x->src_stream), mx->t.tag,
                             "agg-pack " + dir3(mx->t.dir), std::move(acc)));
          }
          off += mx->bytes;
        }
      }
    }

    // Phase 4': start every send in frozen plan order (transfers, then
    // groups), each gated on its pack by the ready-event synchronize.
    std::vector<std::size_t> started;
    std::vector<const ModelXfer*> started_xfer;
    std::vector<int> started_group;
    for (const ModelXfer* mx : ph.xfers) {
      if (mx->t.src_rank != r || mx->agg_member) continue;
      if (mx->method != Method::kStaged && mx->method != Method::kCudaAwareMpi) continue;
      std::vector<verify::Access> acc;
      if (r == me && my_state.count(mx->t.tag) != 0) {
        const TransferState* x = my_state.at(mx->t.tag);
        const vgpu::Buffer& payload =
            mx->method == Method::kStaged ? x->src_host : x->src_pack;
        if (payload.valid()) acc.push_back(flat(payload.id(), mx->bytes, false));
      }
      const std::size_t s =
          em.start_send(mx->t.dst_rank, mx->t.tag, mx->bytes, dir3(mx->t.dir), std::move(acc));
      if (pack_of.count(mx->t.tag) != 0) em.order(pack_of.at(mx->t.tag), s);
      started.push_back(s);
      started_xfer.push_back(mx);
      started_group.push_back(-1);
    }
    for (std::size_t gi = 0; gi < ph.send_groups.size(); ++gi) {
      const ModelGroup& g = ph.send_groups[gi];
      std::vector<verify::Access> acc;
      if (r == me && gi < send_groups_.size()) {
        acc.push_back(flat(send_groups_[gi]->host.id(), g.bytes, false));
      }
      const std::size_t s = em.start_send(g.peer, g.tag, g.bytes, "agg", std::move(acc));
      em.claim(s, tagspace::kAggRangeName);
      for (std::size_t po : group_packs[static_cast<int>(gi)]) em.order(po, s);
      started.push_back(s);
      started_xfer.push_back(nullptr);
      started_group.push_back(static_cast<int>(gi));
    }

    // Phase 5': wait for each landed receive (posted order) and fan out its
    // H2D + unpack graph. The payload write is charged to the wait — that is
    // when the landing completes relative to this rank's program.
    for (std::size_t pi = 0; pi < posted.size(); ++pi) {
      const verify::Op post = rp.ops[posted[pi]];  // copy: fields reused below
      std::vector<verify::Access> wacc;
      const int gi = posted_group[pi];
      const ModelXfer* mx = posted_xfer[pi];
      if (r == me) {
        if (gi >= 0 && static_cast<std::size_t>(gi) < recv_groups_.size()) {
          wacc.push_back(flat(recv_groups_[static_cast<std::size_t>(gi)]->host.id(),
                              post.bytes, true));
        } else if (mx != nullptr && my_state.count(mx->t.tag) != 0) {
          const TransferState* x = my_state.at(mx->t.tag);
          const vgpu::Buffer& payload =
              mx->method == Method::kStaged ? x->dst_host : x->dst_pack;
          if (payload.valid()) wacc.push_back(flat(payload.id(), post.bytes, true));
        }
      }
      const std::size_t w = em.wait_recv(post.peer, post.tag, post.bytes,
                                         gi >= 0 ? "agg" : "xfer", std::move(wacc));
      if (gi >= 0) em.claim(w, tagspace::kAggRangeName);
      if (r != me) continue;
      if (gi >= 0 && static_cast<std::size_t>(gi) < ph.recv_groups.size()) {
        const ModelGroup& g = ph.recv_groups[static_cast<std::size_t>(gi)];
        const AggGroup* grp = static_cast<std::size_t>(gi) < recv_groups_.size()
                                  ? recv_groups_[static_cast<std::size_t>(gi)].get()
                                  : nullptr;
        std::size_t off = 0;
        for (const ModelXfer* member : g.members) {
          const TransferState* x =
              my_state.count(member->t.tag) ? my_state.at(member->t.tag) : nullptr;
          if (x != nullptr && grp != nullptr) {
            std::vector<verify::Access> acc{
                flat_at(grp->host.id(), off, member->bytes, false),
                flat(x->dst_pack.id(), member->bytes, true)};
            append(acc, quantity_boxes(x->dst_ld, x->dst_region, true));
            const std::size_t u =
                em.stream_op(stream_key(x->dst_stream), member->t.tag,
                             "agg-unpack " + dir3(member->t.dir), std::move(acc));
            em.order(w, u);
          }
          off += member->bytes;
        }
      } else if (mx != nullptr && my_state.count(mx->t.tag) != 0) {
        const TransferState* x = my_state.at(mx->t.tag);
        std::vector<verify::Access> acc;
        if (mx->method == Method::kStaged) {
          acc.push_back(flat(x->dst_host.id(), mx->bytes, false));
          acc.push_back(flat(x->dst_pack.id(), mx->bytes, true));
        } else {
          acc.push_back(flat(x->dst_pack.id(), mx->bytes, false));
        }
        append(acc, quantity_boxes(x->dst_ld, x->dst_region, true));
        const std::size_t u = em.stream_op(stream_key(x->dst_stream), mx->t.tag,
                                           "unpack " + dir3(mx->t.dir), std::move(acc));
        em.order(w, u);
      }
    }

    // Phase 6': COLOCATED receivers — wait for this generation's data token,
    // unpack, then release the sender's next generation.
    for (const ModelXfer* mx : ph.xfers) {
      if (mx->method != Method::kColocated || mx->t.dst_rank != r) continue;
      const std::size_t w =
          em.token_wait(data_token(mx->t.tag), 0, mx->t.src_rank, mx->t.tag);
      if (r == me && my_state.count(mx->t.tag) != 0) {
        const TransferState* x = my_state.at(mx->t.tag);
        std::vector<verify::Access> acc;
        if (x->dst_pack.valid()) acc.push_back(flat(x->dst_pack.id(), mx->bytes, false));
        append(acc, quantity_boxes(x->dst_ld, x->dst_region, true));
        const std::size_t u = em.stream_op(stream_key(x->dst_stream), mx->t.tag,
                                           "ipc-unpack " + dir3(mx->t.dir), std::move(acc));
        em.order(w, u);
      }
      em.token_signal(done_token(mx->t.tag), mx->t.src_rank, mx->t.tag);
    }

    // Phase 7': drain the sends, same order they started.
    for (std::size_t si = 0; si < started.size(); ++si) {
      const verify::Op s = rp.ops[started[si]];
      const Method sm = started_group[si] >= 0 ? Method::kStaged
                                               : started_xfer[si]->method;
      const std::size_t ws = em.wait_send(s.peer, s.tag, s.bytes, eager_send(sm, s.bytes),
                                          started_group[si] >= 0 ? "agg" : "xfer");
      if (started_group[si] >= 0) em.claim(ws, tagspace::kAggRangeName);
    }
  }

  return m;
}

verify::Report DistributedDomain::verify_plan(const plan::CompiledPlan& p) const {
  return verify::verify(verify_model(p));
}

void DistributedDomain::set_verify_plans(bool on) {
  verify_plans_ = on;
  install_admission();
}

void DistributedDomain::install_admission() {
  if (!verify_plans_) {
    plan_cache_.set_admission(nullptr);
    return;
  }
  plan_cache_.set_admission([this](const plan::CompiledPlan& p) {
    const verify::Report r = verify_plan(p);
    if (r.clean()) return std::string{};
    std::ostringstream os;
    r.write(os);
    return os.str();
  });
}

}  // namespace stencil
