#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/method_flags.h"
#include "core/partition.h"
#include "core/radius.h"
#include "qap/qap.h"
#include "topo/archetype.h"

namespace stencil {

/// How subdomains are assigned to GPUs within each node (paper §III-B).
enum class PlacementStrategy {
  kNodeAware,  // QAP: flow = exchange volume, distance = 1/theoretical bw
  kMeasured,   // QAP with distances from an empirical bandwidth probe (§VI)
  kTrivial,    // linearized subdomain id -> GPU id (the paper's baseline)
  kWorst,      // QAP maximizer (the "poorly placed" half of Fig. 11)
};

inline const char* to_string(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kNodeAware: return "node-aware";
    case PlacementStrategy::kMeasured: return "measured";
    case PlacementStrategy::kTrivial: return "trivial";
    case PlacementStrategy::kWorst: return "worst";
  }
  return "?";
}

/// The placement phase: given the hierarchical partition and the node's
/// GPU-GPU bandwidth matrix (as nvml-style discovery reports it), assign
/// each node's subdomains to its GPUs.
///
/// Deterministic given its inputs, so every rank computes an identical
/// placement with no communication — one of the paper's stated advantages
/// over profiling-based approaches.
/// The placement solves per *partition* node over the partition's own GPU
/// extent, which for a solo job equals the physical node. A multi-tenant
/// slice (src/sched) partitions over virtual nodes narrower than the
/// physical node; `gpu_slot_base` anchors the slice's first physical GPU
/// slot so the distance matrix reads the bandwidths of the slots the tenant
/// actually occupies. All emitted GPU ids are then *virtual*
/// (vnode * gpus_per_vnode + vlocal) and the caller (DistributedDomain)
/// translates them to physical ids via TenantView::phys_gpu.
class Placement {
 public:
  Placement(const HierarchicalPartition& hp, const topo::NodeArchetype& arch, Radius radius,
            std::size_t bytes_per_point, Neighborhood nbhd, PlacementStrategy strategy,
            Boundary boundary = Boundary::kPeriodic, int gpu_slot_base = 0);

  const HierarchicalPartition& partition() const { return hp_; }
  PlacementStrategy strategy() const { return strategy_; }

  /// GPUs per (possibly virtual) node this placement decomposes over —
  /// hp.gpu_extent().volume(), == arch.gpus_per_node() for solo jobs.
  int gpus_per_node() const { return gpn_; }
  /// First physical GPU slot of the slice (0 for solo jobs).
  int gpu_slot_base() const { return slot_base_; }

  /// Local GPU index (within the owning node) hosting this subdomain.
  int local_gpu_of(Dim3 global_idx) const;

  /// Node (linearized over the node index space) owning this subdomain.
  int node_linear_of(Dim3 global_idx) const;

  /// Global GPU id hosting this subdomain: node * gpus_per_node + local.
  int global_gpu_of(Dim3 global_idx) const;

  /// Inverse map: the subdomain hosted by (node_linear, local_gpu) under
  /// the *base* assignment (ignores re-homing overrides — a rehomed-away
  /// subdomain is still reported here; use subdomains_on for the live set).
  Dim3 subdomain_at(int node_linear, int local_gpu) const;

  /// Recovery re-homing: move `global_idx` onto `new_global_gpu` (possibly
  /// on another node), layered as an override over the base QAP assignment.
  /// The partition itself is untouched — subdomain shapes, origins, and
  /// message tags stay identical, which is what makes post-recovery results
  /// bit-exact. Callers share Placement immutably; copy, rehome, swap.
  void rehome(Dim3 global_idx, int new_global_gpu);

  /// Live occupancy of (node_linear, local_gpu): the base subdomain (unless
  /// rehomed away) followed by adopted subdomains in deterministic order.
  /// Empty when the GPU lost its subdomain and adopted none.
  std::vector<Dim3> subdomains_on(int node_linear, int local_gpu) const;

  /// True when any subdomain has been rehomed off its base GPU.
  bool rehomed() const { return !overrides_.empty(); }

  /// QAP objective summed over all nodes (bytes / (GiB/s) in arbitrary
  /// units); lower means high-volume exchanges land on fast links.
  double total_cost() const { return total_cost_; }

  /// Flow matrix (exchange bytes between same-node subdomains) for one
  /// node — exposed for tests and the placement benchmark.
  qap::SquareMatrix node_flow(int node_linear) const;

  /// Base QAP assignment for one node (subdomain slot -> local GPU),
  /// ignoring re-homing overrides — exposed for decision provenance.
  const std::vector<int>& node_assignment(int node_linear) const {
    return assign_[static_cast<std::size_t>(node_linear)];
  }

  /// Distance matrix shared by all nodes: 1 / theoretical bandwidth.
  const qap::SquareMatrix& distance() const { return distance_; }

 private:
  std::vector<Dim3> directions() const;

  HierarchicalPartition hp_;
  topo::NodeArchetype arch_;
  Radius radius_;
  std::size_t bytes_per_point_;
  Neighborhood nbhd_;
  PlacementStrategy strategy_;
  Boundary boundary_ = Boundary::kPeriodic;
  int gpn_ = 0;        // partition GPUs per node (virtual under tenancy)
  int slot_base_ = 0;  // physical slot anchoring the bandwidth lookups
  qap::SquareMatrix distance_;
  double total_cost_ = 0.0;
  // Per node: subdomain (linearized in gpu space) -> local GPU, and inverse.
  std::vector<std::vector<int>> assign_;
  std::vector<std::vector<int>> inverse_;
  // Recovery overrides: linearized global subdomain index -> global GPU id.
  // Ordered map so adopted-subdomain iteration is deterministic.
  std::map<std::int64_t, int> overrides_;
};

/// All direction vectors of a neighborhood, in a fixed deterministic order
/// (used for plan building and message tags).
std::vector<Dim3> neighbor_directions(Neighborhood nbhd);

/// Index of `dir` within neighbor_directions(kFull) — stable across
/// neighborhoods, used to build unique message tags. -1 if not a neighbor
/// direction.
int direction_index(Dim3 dir);

}  // namespace stencil
