#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/method_flags.h"
#include "core/partition.h"
#include "core/radius.h"
#include "qap/qap.h"
#include "topo/archetype.h"

namespace stencil {

/// How subdomains are assigned to GPUs within each node (paper §III-B).
enum class PlacementStrategy {
  kNodeAware,  // QAP: flow = exchange volume, distance = 1/theoretical bw
  kMeasured,   // QAP with distances from an empirical bandwidth probe (§VI)
  kTrivial,    // linearized subdomain id -> GPU id (the paper's baseline)
  kWorst,      // QAP maximizer (the "poorly placed" half of Fig. 11)
};

inline const char* to_string(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kNodeAware: return "node-aware";
    case PlacementStrategy::kMeasured: return "measured";
    case PlacementStrategy::kTrivial: return "trivial";
    case PlacementStrategy::kWorst: return "worst";
  }
  return "?";
}

/// The placement phase: given the hierarchical partition and the node's
/// GPU-GPU bandwidth matrix (as nvml-style discovery reports it), assign
/// each node's subdomains to its GPUs.
///
/// Deterministic given its inputs, so every rank computes an identical
/// placement with no communication — one of the paper's stated advantages
/// over profiling-based approaches.
class Placement {
 public:
  Placement(const HierarchicalPartition& hp, const topo::NodeArchetype& arch, Radius radius,
            std::size_t bytes_per_point, Neighborhood nbhd, PlacementStrategy strategy,
            Boundary boundary = Boundary::kPeriodic);

  const HierarchicalPartition& partition() const { return hp_; }
  PlacementStrategy strategy() const { return strategy_; }

  /// Local GPU index (within the owning node) hosting this subdomain.
  int local_gpu_of(Dim3 global_idx) const;

  /// Node (linearized over the node index space) owning this subdomain.
  int node_linear_of(Dim3 global_idx) const;

  /// Global GPU id hosting this subdomain: node * gpus_per_node + local.
  int global_gpu_of(Dim3 global_idx) const;

  /// Inverse map: the subdomain hosted by (node_linear, local_gpu).
  Dim3 subdomain_at(int node_linear, int local_gpu) const;

  /// QAP objective summed over all nodes (bytes / (GiB/s) in arbitrary
  /// units); lower means high-volume exchanges land on fast links.
  double total_cost() const { return total_cost_; }

  /// Flow matrix (exchange bytes between same-node subdomains) for one
  /// node — exposed for tests and the placement benchmark.
  qap::SquareMatrix node_flow(int node_linear) const;

  /// Distance matrix shared by all nodes: 1 / theoretical bandwidth.
  const qap::SquareMatrix& distance() const { return distance_; }

 private:
  std::vector<Dim3> directions() const;

  HierarchicalPartition hp_;
  topo::NodeArchetype arch_;
  Radius radius_;
  std::size_t bytes_per_point_;
  Neighborhood nbhd_;
  PlacementStrategy strategy_;
  Boundary boundary_ = Boundary::kPeriodic;
  qap::SquareMatrix distance_;
  double total_cost_ = 0.0;
  // Per node: subdomain (linearized in gpu space) -> local GPU, and inverse.
  std::vector<std::vector<int>> assign_;
  std::vector<std::vector<int>> inverse_;
};

/// All direction vectors of a neighborhood, in a fixed deterministic order
/// (used for plan building and message tags).
std::vector<Dim3> neighbor_directions(Neighborhood nbhd);

/// Index of `dir` within neighbor_directions(kFull) — stable across
/// neighborhoods, used to build unique message tags. -1 if not a neighbor
/// direction.
int direction_index(Dim3 dir);

}  // namespace stencil
