#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dim3.h"
#include "core/radius.h"
#include "core/region.h"
#include "vgpu/buffer.h"
#include "vgpu/runtime.h"

namespace stencil {

/// One grid quantity stored in a domain (e.g. pressure, vx). Quantities are
/// type-erased at this level: the domain tracks an element size; typed
/// access goes through LocalDomain::view<T>().
struct Quantity {
  std::string name;
  std::size_t elem_size = 0;
};

/// Typed host-side accessor into one quantity of one subdomain, including
/// its halo: coordinates run over [-radius.neg, sz + radius.pos) per
/// dimension. Valid only for materialized buffers (tests, examples); the
/// benchmarks' phantom domains are timing-only.
template <typename T>
class View {
 public:
  View(T* base, Dim3 storage, Dim3 halo_offset)
      : base_(base), storage_(storage), off_(halo_offset) {}

  T& operator()(std::int64_t x, std::int64_t y, std::int64_t z) {
    return base_[offset(x, y, z)];
  }
  const T& operator()(std::int64_t x, std::int64_t y, std::int64_t z) const {
    return base_[offset(x, y, z)];
  }

 private:
  std::int64_t offset(std::int64_t x, std::int64_t y, std::int64_t z) const {
    return ((z + off_.z) * storage_.y + (y + off_.y)) * storage_.x + (x + off_.x);
  }
  T* base_;
  Dim3 storage_;  // sz + negative + positive halo per dim
  Dim3 off_;      // negative halo widths
};

/// One GPU's subdomain: interior extent `sz`, a radius-wide halo on every
/// side, and one device allocation per quantity in XYZ storage order
/// (x fastest). Owns its pack/compute streams.
class LocalDomain {
 public:
  LocalDomain(vgpu::Runtime& rt, int ggpu, Dim3 global_idx, Dim3 origin, Dim3 sz, Radius radius,
              const std::vector<Quantity>& quantities);

  int gpu() const { return ggpu_; }
  Dim3 index() const { return global_idx_; }
  Dim3 origin() const { return origin_; }
  Dim3 size() const { return sz_; }
  const Radius& radius() const { return radius_; }
  Dim3 storage() const { return sz_ + radius_.padding(); }
  std::size_t num_quantities() const { return quantities_.size(); }
  const Quantity& quantity(std::size_t q) const { return quantities_[q]; }

  vgpu::Buffer& data(std::size_t q) { return data_[q]; }
  const vgpu::Buffer& data(std::size_t q) const { return data_[q]; }

  /// Swap the storage of two same-sized quantities (double-buffered time
  /// stepping: "current" and "next" trade places between iterations).
  void swap_data(std::size_t a, std::size_t b) {
    if (quantities_[a].elem_size != quantities_[b].elem_size) {
      throw std::logic_error("swap_data: element sizes differ");
    }
    std::swap(data_[a], data_[b]);
  }

  template <typename T>
  View<T> view(std::size_t q) {
    if (sizeof(T) != quantities_[q].elem_size) {
      throw std::logic_error("LocalDomain::view: element size mismatch for " + quantities_[q].name);
    }
    return View<T>(data_[q].as<T>(), storage(), radius_.offsets());
  }

  /// Bytes of one region across all quantities (the packed message size).
  std::size_t region_bytes(const Region3& r) const {
    return static_cast<std::size_t>(r.volume()) * bytes_per_point_;
  }
  /// Bytes of one region across a subset of quantities.
  std::size_t region_bytes(const Region3& r, const std::vector<std::size_t>& qs) const {
    std::size_t per_point = 0;
    for (std::size_t q : qs) per_point += quantities_[q].elem_size;
    return static_cast<std::size_t>(r.volume()) * per_point;
  }
  std::size_t bytes_per_point() const { return bytes_per_point_; }

  /// Copy `region` of every quantity into `dst` (densely, quantity-major).
  /// Host-side body of the pack kernel; no-op when storage is phantom.
  void pack_region(vgpu::Buffer& dst, const Region3& region) const;

  /// Inverse of pack_region.
  void unpack_region(const vgpu::Buffer& src, const Region3& region);

  /// Subset variants: only the listed quantities, in the given order (both
  /// ends of a transfer must agree on the list — the selective exchange of
  /// DistributedDomain::exchange(qs) guarantees that).
  void pack_region(vgpu::Buffer& dst, const Region3& region,
                   const std::vector<std::size_t>& qs) const;
  void unpack_region(const vgpu::Buffer& src, const Region3& region,
                     const std::vector<std::size_t>& qs);

  /// Copy one quantity's region directly from `src` into `dst` (the body
  /// of a cudaMemcpy3D-style pack-free transfer). Region extents must
  /// match; no-op for phantom storage.
  static void copy_region(const LocalDomain& src, const Region3& src_region, LocalDomain& dst,
                          const Region3& dst_region, std::size_t q);

  /// Longest contiguous run (bytes) of one row of `region` for quantity q.
  std::size_t row_bytes(const Region3& region, std::size_t q) const {
    return static_cast<std::size_t>(region.extent.x) * quantities_[q].elem_size;
  }

  /// Append the exact byte ranges a pack/unpack/3d-copy of `region` touches
  /// on the listed quantities' buffers to `out` (checker annotations for
  /// the otherwise-opaque kernel bodies). Adjacent rows merge into single
  /// ranges, so a full-width slab collapses to one range per quantity.
  /// Ranges are emitted for phantom storage too: phantom ops still occupy
  /// virtual time and can race.
  void append_region_accesses(const Region3& region, const std::vector<std::size_t>& qs,
                              bool write, vgpu::AccessList& out) const;
  void append_region_accesses(const Region3& region, bool write, vgpu::AccessList& out) const;

  /// In-GPU self-exchange for direction `dir` (the KERNEL method's body):
  /// copies the interior slab facing `dir` into the halo slab that receives
  /// dir-traffic on this same subdomain (periodic wrap onto itself).
  void self_exchange(Dim3 dir);
  void self_exchange(Dim3 dir, const std::vector<std::size_t>& qs);

  /// The stream this domain's pack/unpack/compute kernels run on by default.
  vgpu::Stream& compute_stream() { return compute_stream_; }

 private:
  template <typename Fn>
  void for_each_row(const Region3& region, std::size_t q, Fn&& fn) const;

  vgpu::Runtime& rt_;
  int ggpu_;
  Dim3 global_idx_;
  Dim3 origin_;
  Dim3 sz_;
  Radius radius_;
  std::vector<Quantity> quantities_;
  std::size_t bytes_per_point_ = 0;
  std::vector<vgpu::Buffer> data_;
  vgpu::Stream compute_stream_;
};

}  // namespace stencil
