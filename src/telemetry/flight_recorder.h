#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "simtime/time.h"

namespace stencil::telemetry {

/// What a flight-recorder entry describes.
enum class EventKind {
  kExchangeStart,
  kExchangeEnd,
  kTransfer,   // one posted halo transfer (lane = "tag=N", detail = method)
  kGpuOp,      // one virtual-GPU operation (lane/label from the runtime)
  kMpiPost,    // isend/irecv posted
  kMpiMatch,   // message delivered
  kMpiDrop,    // one injected drop before a retry
  kMpiLost,    // retries exhausted
  kDemote,     // fault path re-specialized a transfer
  kError,      // TransportError surfaced to the application
  kStall,      // progress monitor flagged a straggling rank
  kRecover,    // failure-recovery step (detect, checkpoint, restore, ...)
  kNote,       // free-form marker
};

const char* to_string(EventKind k);

/// One structured entry: which exchange it belongs to, where it happened,
/// and how big it was — all in virtual time.
struct FlightEvent {
  std::uint64_t exchange_seq = 0;
  sim::Time at = 0;
  EventKind kind = EventKind::kNote;
  std::string lane;    // resource: "gpu0.d2h", "mpi.r0->r1", "fault", ...
  std::string detail;  // operation: "pack +x+y", "msg tag=42", "staged", ...
  std::uint64_t bytes = 0;
};

/// Bounded ring of recent FlightEvents. Logging is O(1) and never allocates
/// beyond the configured capacity; when full, the oldest entry is evicted.
/// The tail is dumped into deadlock and transport-error reports so the
/// "last N events" before a hang are always available.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256) : capacity_(capacity ? capacity : 1) {}

  void log(FlightEvent ev);
  /// Convenience: stamp the current exchange sequence on the event.
  void log(EventKind kind, sim::Time at, std::string lane, std::string detail,
           std::uint64_t bytes = 0);

  /// Events from older exchanges keep their original stamp; this only
  /// affects events logged afterwards.
  void set_exchange_seq(std::uint64_t seq) { exchange_seq_ = seq; }
  std::uint64_t exchange_seq() const { return exchange_seq_; }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  /// Total events ever logged, including evicted ones.
  std::uint64_t total_logged() const { return total_logged_; }

  /// Last n events, oldest first (all of them when n >= size()).
  std::vector<FlightEvent> tail(std::size_t n) const;

  /// Human-readable tail, one line per event:
  ///   [seq 3] +1.250 ms  gpu-op     gpu0.d2h  pack +x  (96 KiB)
  void dump_tail(std::ostream& os, std::size_t n) const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<FlightEvent> ring_;
  std::uint64_t exchange_seq_ = 0;
  std::uint64_t total_logged_ = 0;
};

}  // namespace stencil::telemetry
