#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stencil::telemetry {

/// Monotonically increasing event count. Cheap: one add on the hot path.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
};

/// Last-write-wins instantaneous value (cache sizes, epochs, efficiencies).
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Log-scale (power-of-two bucket) histogram over non-negative integer
/// samples: virtual nanoseconds, bytes, attempt counts. Bucket i counts
/// samples v with 2^(i-1) < v <= 2^i (bucket 0 holds v in {0, 1}), so the
/// upper bound of bucket i is 2^i. 64 buckets cover the full uint64 range.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t v);

  /// Index of the bucket that observe(v) increments.
  static int bucket_index(std::uint64_t v);
  /// Inclusive upper bound of bucket i (2^i, saturating at uint64 max).
  static std::uint64_t bucket_bound(int i);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }
  std::uint64_t bucket_count(int i) const { return buckets_[i]; }
  /// Highest non-empty bucket index + 1 (0 when empty); exporters stop here.
  int used_buckets() const;

  /// Bucketwise fold of another histogram into this one.
  void merge(const Histogram& other);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Name-keyed registry of the three instrument kinds. Lookup interns the
/// name; returned references stay valid for the registry's lifetime
/// (std::map nodes are stable), so call sites hoist the lookup out of hot
/// loops and then touch a single word per event. Names may carry
/// Prometheus-style labels inline: `exchange_bytes_total{method="staged"}`.
/// Iteration order is lexicographic, so every export is deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Value of a counter, or 0 when it was never touched (does not intern).
  std::uint64_t counter_value(const std::string& name) const;

  /// Register documentation for a metric, keyed by *base* name (labels
  /// stripped). The Prometheus exporter emits it as the `# HELP` line;
  /// metrics without registered help get a generated fallback, so the text
  /// format is always promtool-parseable.
  void set_help(const std::string& base, const std::string& text) { help_[base] = text; }
  const std::map<std::string, std::string>& help_texts() const { return help_; }

  void clear();

  /// Fold another registry into this one (counters add, gauges last-write,
  /// histograms merge bucketwise). Used to combine per-domain registries
  /// into one report.
  void merge(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> help_;
};

/// Split `name{labels}` into its base name and label set ("" when plain).
/// Exporters use this to emit well-formed Prometheus series.
std::pair<std::string, std::string> split_metric_name(const std::string& name);

}  // namespace stencil::telemetry
