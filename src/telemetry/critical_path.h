#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "simtime/time.h"
#include "trace/recorder.h"

namespace stencil::telemetry {

/// One happens-before edge as the checker observes it, in resource-name
/// form ("gpu0/s1" waited on an event recorded by "gpu0/default" at time t).
/// Defined here — not in stencil::check — so the checker can *feed* the
/// analyzer without telemetry depending on the checker. `msg` carries the
/// message identity (simpi request serial) when the edge came from a
/// message match, so an analyzer that already attached the same message as
/// a trace flow edge can skip it instead of double-counting.
struct HbEdge {
  std::string from;
  std::string to;
  sim::Time at = 0;
  std::uint64_t msg = 0;
};

/// One span on the critical chain, self-contained for reporting. `rank` is
/// the owning rank when the spans carry attribution (dtrace::Collector);
/// `via_message` marks a hop that was reached over a message flow edge —
/// the chain crossed between timelines (usually rank boundaries) there.
struct Hop {
  std::size_t span = 0;  // index into the analyzed span vector
  std::string lane;
  std::string label;
  sim::Time start = 0;
  sim::Time end = 0;
  sim::Duration wait = 0;  // idle gap on the chain before this span began
  int rank = -1;
  bool via_message = false;
  std::uint64_t msg = 0;  // message identity of the inbound edge, if any
};

/// Per-lane utilization over the analyzed window.
struct LaneStat {
  std::string lane;
  sim::Duration busy = 0;      // sum of span durations on this lane
  sim::Duration critical = 0;  // portion of busy that lies on the critical chain
  sim::Duration slack = 0;     // makespan - busy: how long the lane sat idle
};

/// Per-rank blame over the analyzed window (only populated when spans carry
/// rank attribution): how much of the critical chain each rank owns.
struct RankStat {
  int rank = -1;
  sim::Duration busy = 0;        // sum of span durations owned by this rank
  sim::Duration critical = 0;    // portion of busy on the critical chain
  std::size_t chain_spans = 0;   // how many chain hops this rank owns
};

/// Result of one critical-path analysis: the end-to-end chain, the
/// overlap-efficiency metric (busy time on the chain / makespan; waits on
/// the chain are exactly the un-overlapped time), and per-lane statistics
/// for the bottleneck-link report (the paper's Fig. 9/10 reading).
struct Analysis {
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  sim::Duration makespan = 0;
  std::vector<Hop> chain;  // time order, first hop earliest
  sim::Duration critical_busy = 0;
  sim::Duration critical_wait = 0;
  double overlap_efficiency = 0.0;
  std::vector<LaneStat> lanes;  // sorted by busy descending
  std::vector<RankStat> ranks;  // per-rank blame, sorted by critical descending
  int rank_crossings = 0;       // chain links that cross ranks over a message edge

  /// Lanes ranked by time spent on the critical chain (busy breaks ties):
  /// the links to optimize first.
  std::vector<LaneStat> top_bottlenecks(std::size_t k) const;

  /// Human-readable report: chain with per-hop waits/durations, overlap
  /// efficiency, bottleneck lanes.
  std::string str(std::size_t top_k = 5) const;
};

/// Builds the dependency structure over a set of recorded spans and walks
/// it backwards from the last finisher. Three edge sources, strongest
/// first: explicit edges (add_edge / add_hb_edges), lane FIFO (a span is
/// ordered after the previous span on its lane), and — when neither
/// explains a span's start — the global last-finisher heuristic (the span
/// that completed most recently before this one began is taken as its
/// trigger, which is how hand-drawn timeline analyses read a Gantt chart).
class CriticalPath {
 public:
  explicit CriticalPath(std::vector<trace::OpRecord> spans);

  /// Explicit dependency: spans[to] could not start before spans[from] ended.
  /// Ignored when out of range or when the timestamps contradict it.
  void add_edge(std::size_t from, std::size_t to);

  /// Message edges from a causal trace (dtrace::Collector::flows): matched
  /// by span id, marked as message edges so the chain reports where it
  /// crossed rank boundaries. Returns how many edges were attached. Each
  /// edge's msg identity is remembered so a later add_hb_edges call skips
  /// checker edges describing the same message (no double edges).
  std::size_t add_flow_edges(const std::vector<trace::FlowEdge>& flows);

  /// Bridge from checker happens-before edges: each edge is matched to the
  /// latest span ending at or before `at` on a lane matching `from`, and
  /// the earliest span starting at or after `at` on a lane matching `to`.
  /// Unmatchable edges are skipped, as are edges whose message identity was
  /// already attached by add_flow_edges. Returns how many were attached.
  std::size_t add_hb_edges(const std::vector<HbEdge>& edges);

  /// True when `lane` plausibly names the same resource as a checker
  /// description like "gpu0/s1", "gpu0/default", or an actor name "rank0"
  /// (lanes are spelled "gpu0.kernel", "gpu0->gpu1", "rank0.cpu", ...).
  static bool lane_matches(const std::string& desc, const std::string& lane);

  Analysis analyze() const;

  const std::vector<trace::OpRecord>& spans() const { return spans_; }
  std::size_t edge_count() const { return edges_.size(); }

 private:
  struct Edge {
    std::size_t from = 0;
    std::size_t to = 0;
    bool message = false;   // came from a trace flow edge (crosses timelines)
    std::uint64_t msg = 0;  // message identity, 0 if none
  };

  void add_edge_checked(std::size_t from, std::size_t to, bool message, std::uint64_t msg);

  std::vector<trace::OpRecord> spans_;
  std::vector<Edge> edges_;
  std::set<std::uint64_t> flow_msgs_;  // message ids already attached as flow edges
};

}  // namespace stencil::telemetry
