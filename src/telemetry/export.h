#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/critical_path.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"

namespace stencil::telemetry {

/// JSON-escape a string (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// All registry contents as one JSON object:
///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
void write_metrics_json(std::ostream& os, const MetricsRegistry& reg);

/// Prometheus text exposition format: one `# TYPE` line per series base
/// name, cumulative `_bucket{le="..."}` series plus `_sum`/`_count` for
/// histograms. Inline labels in metric names are merged with `le`.
void write_prometheus(std::ostream& os, const MetricsRegistry& reg);

/// Enriched chrome://tracing output: thread-name metadata per lane, one
/// "X" span event per record with metadata args (critical-path membership
/// and wait time when an Analysis is supplied), and one "C" counter event
/// per registry counter so totals show up alongside the timeline.
void write_chrome_trace(std::ostream& os, const std::vector<trace::OpRecord>& spans,
                        const MetricsRegistry* reg = nullptr, const Analysis* analysis = nullptr);

/// Full JSON report: metrics + critical-path analysis in one document.
void write_report_json(std::ostream& os, const MetricsRegistry& reg, const Analysis& analysis);

}  // namespace stencil::telemetry
