#pragma once

#include <cstdint>
#include <string>

#include "simtime/engine.h"
#include "telemetry/critical_path.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace stencil::telemetry {

/// The single sink the instrumented layers (vgpu runtime, simpi job,
/// DistributedDomain, plan cache) feed. Owns a MetricsRegistry and a
/// FlightRecorder; every hook is pure bookkeeping — no virtual-time cost,
/// so instrumented and un-instrumented runs are bit-identical in time.
class Telemetry {
 public:
  explicit Telemetry(std::size_t flight_capacity = 256) : flight_(flight_capacity) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  // --- vgpu::Runtime hooks -------------------------------------------------
  /// One virtual-GPU op completed on `lane` over [start, end). Pack/unpack
  /// labels additionally feed the pack/unpack time histograms.
  void on_gpu_op(const std::string& lane, const std::string& label, std::uint64_t bytes,
                 sim::Time start, sim::Time end);
  void on_graph_launch(const std::string& lane, int nodes, sim::Time at);

  // --- simpi::Job hooks ----------------------------------------------------
  void on_mpi_post(int src, int dst, int tag, std::uint64_t bytes, bool is_send, sim::Time at);
  void on_mpi_match(int src, int dst, int tag, std::uint64_t bytes, int attempts, bool same_node,
                    sim::Time at);
  void on_mpi_drop(int src, int dst, int tag, int attempt, sim::Time at);
  void on_mpi_lost(int src, int dst, int tag, int attempts, sim::Time at);

  /// A TransportError is about to surface: count it and snapshot the flight
  /// tail so the failure report carries the events leading up to it.
  void on_transport_error(const std::string& what, sim::Time at);

  // --- check::Checker hooks ------------------------------------------------
  /// The checker filed a finding (race, leak, lint, ...): count it by kind
  /// and snapshot the flight tail, exactly like transport errors and
  /// deadlocks — so a race report always carries the events leading up to
  /// it, not just the finding text.
  void on_checker_finding(const std::string& kind, sim::Time at);

  // --- DistributedDomain hooks ---------------------------------------------
  void on_exchange_start(std::uint64_t seq, sim::Time at);
  void on_exchange_end(std::uint64_t seq, const std::string& method, std::uint64_t messages,
                       std::uint64_t bytes, sim::Time at);
  void on_exchange_latency(sim::Duration d);
  void on_demotion(int tag, const std::string& from, const std::string& to, sim::Time at);

  // --- plan hooks ----------------------------------------------------------
  void on_plan_event(const char* what);  // "compile", "hit", "invalidate", "rebuild", "replay"

  // --- dtrace::ProgressMonitor hook ----------------------------------------
  /// A stall verdict fired: count it and capture a flight-recorder tail dump
  /// through the same path DeadlockError and TransportError use, so a stall
  /// leaves the "last N events" trail too.
  void on_stall(const std::string& what, sim::Time at);

  // --- stencil::recover hooks ----------------------------------------------
  /// One recovery-ladder step ("detect", "checkpoint", "restore", "retire",
  /// "replace", "shrink", ...): per-step counter plus a kRecover flight event.
  void on_recover_step(const std::string& step, const std::string& detail, sim::Time at);

  // --- sim::Engine throughput ----------------------------------------------
  /// Snapshot the engine's scheduler throughput counters into gauges:
  /// sim_events_processed, sim_events_per_virtual_second,
  /// sim_max_run_queue_depth, sim_context_switches. All derive from
  /// deterministic virtual-time state — identical runs export identical
  /// numbers. Call after (or between) runs; later calls overwrite.
  void record_engine(const sim::Engine& eng);

  // --- deadlock / failure dumps --------------------------------------------
  /// Installs an engine watchdog that appends the flight-recorder tail to
  /// the DeadlockReport text and stores the combined dump for retrieval
  /// after the DeadlockError unwinds. The watchdog only reads state.
  void install_deadlock_dump(sim::Engine& eng, std::size_t tail_n = 32);

  /// Last dump captured by the deadlock watchdog or on_transport_error
  /// ("" when neither fired).
  std::string last_dump() const { return last_dump_; }

  void clear();

 private:
  void capture_dump(const std::string& header, std::size_t tail_n);

  MetricsRegistry metrics_;
  FlightRecorder flight_;
  std::string last_dump_;
  std::size_t dump_tail_n_ = 32;
};

}  // namespace stencil::telemetry
