#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace stencil::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escape label *values* inside an inline label block for the Prometheus
/// text exposition format, which requires \\ , \" and \n escapes. The block
/// is `k="v",k2="v2"` as interned in the metric name; values are raw (call
/// sites interpolate arbitrary strings), so a quote inside a value is a
/// terminator only when followed by `,` or the end of the block.
std::string prom_escape_labels(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  bool in_value = false;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const char c = labels[i];
    if (!in_value) {
      out.push_back(c);
      if (c == '"') in_value = true;
    } else if (c == '"' && (i + 1 == labels.size() || labels[i + 1] == ',')) {
      out.push_back('"');
      in_value = false;
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void write_histogram_json(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum() << ", \"min\": " << h.min()
     << ", \"max\": " << h.max() << ", \"mean\": " << fmt_double(h.mean()) << ", \"buckets\": [";
  bool first = true;
  for (int i = 0; i < h.used_buckets(); ++i) {
    if (h.bucket_count(i) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"le\": " << Histogram::bucket_bound(i) << ", \"count\": " << h.bucket_count(i) << "}";
  }
  os << "]}";
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsRegistry& reg) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : reg.counters()) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << c.value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : reg.gauges()) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << fmt_double(g.value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": ";
    write_histogram_json(os, h);
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void write_prometheus(std::ostream& os, const MetricsRegistry& reg) {
  // One # HELP + # TYPE pair per base name, emitted before its first series
  // (the exposition format requires metadata to precede samples). Help text
  // comes from MetricsRegistry::set_help, with a generated fallback so the
  // output is promtool-parseable even for undocumented metrics. HELP values
  // escape backslash and newline per the text format.
  std::set<std::string> typed;
  const auto escape_help = [](const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      if (c == '\\') out += "\\\\";
      else if (c == '\n') out += "\\n";
      else out.push_back(c);
    }
    return out;
  };
  const auto type_line = [&](const std::string& base, const char* kind) {
    if (!typed.insert(base).second) return;
    const auto& help = reg.help_texts();
    const auto it = help.find(base);
    const std::string text =
        it != help.end() ? it->second : "Stencil telemetry " + std::string(kind) + " " + base + ".";
    os << "# HELP " << base << " " << escape_help(text) << "\n";
    os << "# TYPE " << base << " " << kind << "\n";
  };
  const auto series = [](const std::string& base, const std::string& labels,
                         const std::string& extra = "") {
    std::string all = prom_escape_labels(labels);  // `extra` is generated, already clean
    if (!extra.empty()) all += (all.empty() ? "" : ",") + extra;
    return all.empty() ? base : base + "{" + all + "}";
  };

  for (const auto& [name, c] : reg.counters()) {
    const auto [base, labels] = split_metric_name(name);
    type_line(base, "counter");
    os << series(base, labels) << " " << c.value << "\n";
  }
  for (const auto& [name, g] : reg.gauges()) {
    const auto [base, labels] = split_metric_name(name);
    type_line(base, "gauge");
    os << series(base, labels) << " " << fmt_double(g.value) << "\n";
  }
  for (const auto& [name, h] : reg.histograms()) {
    const auto [base, labels] = split_metric_name(name);
    type_line(base, "histogram");
    std::uint64_t cum = 0;
    for (int i = 0; i < h.used_buckets(); ++i) {
      if (h.bucket_count(i) == 0) continue;
      cum += h.bucket_count(i);
      os << series(base + "_bucket", labels,
                   "le=\"" + std::to_string(Histogram::bucket_bound(i)) + "\"")
         << " " << cum << "\n";
    }
    os << series(base + "_bucket", labels, "le=\"+Inf\"") << " " << h.count() << "\n";
    os << series(base + "_sum", labels) << " " << h.sum() << "\n";
    os << series(base + "_count", labels) << " " << h.count() << "\n";
  }
}

void write_chrome_trace(std::ostream& os, const std::vector<trace::OpRecord>& spans,
                        const MetricsRegistry* reg, const Analysis* analysis) {
  // Stable lane -> tid mapping, with thread-name metadata up front.
  std::map<std::string, int> lanes;
  for (const auto& r : spans) lanes.emplace(r.lane, 0);
  int tid = 0;
  for (auto& [lane, id] : lanes) id = tid++;

  // Critical-chain membership by span identity (lane + start + end).
  std::map<std::size_t, const Hop*> critical;
  if (analysis) {
    for (const auto& h : analysis->chain) critical.emplace(h.span, &h);
  }

  os << "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (const auto& [lane, id] : lanes) {
    sep();
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": " << id
       << ", \"args\": {\"name\": \"" << json_escape(lane) << "\"}}";
  }
  sim::Time t1 = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& r = spans[i];
    t1 = std::max(t1, r.end);
    const double dur_us = r.end > r.start ? sim::to_micros(r.end - r.start) : 0.0;
    sep();
    os << "  {\"name\": \"" << json_escape(r.label) << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
       << lanes[r.lane] << ", \"ts\": " << fmt_double(sim::to_micros(r.start))
       << ", \"dur\": " << fmt_double(dur_us) << ", \"args\": {\"lane\": \"" << json_escape(r.lane)
       << "\"";
    if (const auto it = critical.find(i); it != critical.end()) {
      os << ", \"critical\": true, \"wait_us\": " << fmt_double(sim::to_micros(it->second->wait));
    }
    os << "}}";
  }
  if (reg) {
    for (const auto& [name, c] : reg->counters()) {
      sep();
      os << "  {\"name\": \"" << json_escape(name) << "\", \"ph\": \"C\", \"pid\": 0, \"ts\": "
         << fmt_double(sim::to_micros(t1)) << ", \"args\": {\"value\": " << c.value << "}}";
    }
  }
  os << (first ? "" : "\n") << "]}\n";
}

void write_report_json(std::ostream& os, const MetricsRegistry& reg, const Analysis& analysis) {
  os << "{\n\"metrics\": ";
  write_metrics_json(os, reg);
  os << ",\n\"critical_path\": {\n  \"makespan_ns\": " << analysis.makespan
     << ",\n  \"critical_busy_ns\": " << analysis.critical_busy
     << ",\n  \"critical_wait_ns\": " << analysis.critical_wait
     << ",\n  \"overlap_efficiency\": " << fmt_double(analysis.overlap_efficiency)
     << ",\n  \"chain\": [";
  bool first = true;
  for (const auto& h : analysis.chain) {
    os << (first ? "" : ",") << "\n    {\"lane\": \"" << json_escape(h.lane) << "\", \"label\": \""
       << json_escape(h.label) << "\", \"start_ns\": " << h.start << ", \"end_ns\": " << h.end
       << ", \"wait_ns\": " << h.wait << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"lanes\": [";
  first = true;
  for (const auto& ls : analysis.lanes) {
    os << (first ? "" : ",") << "\n    {\"lane\": \"" << json_escape(ls.lane)
       << "\", \"busy_ns\": " << ls.busy << ", \"critical_ns\": " << ls.critical
       << ", \"slack_ns\": " << ls.slack << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n}\n";
}

}  // namespace stencil::telemetry
