#include "telemetry/telemetry.h"

#include <algorithm>
#include <sstream>

namespace stencil::telemetry {

namespace {

std::string mpi_lane(int src, int dst) {
  return "mpi.r" + std::to_string(src) + "->r" + std::to_string(dst);
}

}  // namespace

void Telemetry::on_gpu_op(const std::string& lane, const std::string& label, std::uint64_t bytes,
                          sim::Time start, sim::Time end) {
  metrics_.counter("vgpu_ops_total").add();
  metrics_.counter("vgpu_bytes_total").add(bytes);
  const auto dur = static_cast<std::uint64_t>(end > start ? end - start : 0);
  if (label.compare(0, 4, "pack") == 0) {
    metrics_.histogram("vgpu_pack_ns").observe(dur);
  } else if (label.compare(0, 6, "unpack") == 0) {
    metrics_.histogram("vgpu_unpack_ns").observe(dur);
  }
  flight_.log(EventKind::kGpuOp, end, lane, label, bytes);
}

void Telemetry::on_graph_launch(const std::string& lane, int nodes, sim::Time at) {
  metrics_.counter("vgpu_graph_launches_total").add();
  flight_.log(EventKind::kGpuOp, at, lane, "graph launch (" + std::to_string(nodes) + " nodes)");
}

void Telemetry::on_mpi_post(int src, int dst, int tag, std::uint64_t bytes, bool is_send,
                            sim::Time at) {
  metrics_.counter(is_send ? "mpi_sends_posted_total" : "mpi_recvs_posted_total").add();
  flight_.log(EventKind::kMpiPost, at, mpi_lane(src, dst),
              std::string(is_send ? "isend" : "irecv") + " tag=" + std::to_string(tag), bytes);
}

void Telemetry::on_mpi_match(int src, int dst, int tag, std::uint64_t bytes, int attempts,
                             bool same_node, sim::Time at) {
  metrics_.counter("mpi_messages_total").add();
  metrics_.counter("mpi_bytes_total").add(bytes);
  metrics_.counter(same_node ? "mpi_messages_intra_node_total" : "mpi_messages_inter_node_total")
      .add();
  if (attempts > 1) metrics_.counter("mpi_retries_total").add(static_cast<std::uint64_t>(attempts - 1));
  metrics_.histogram("mpi_message_bytes").observe(bytes);
  flight_.log(EventKind::kMpiMatch, at, mpi_lane(src, dst),
              "tag=" + std::to_string(tag) +
                  (attempts > 1 ? " attempts=" + std::to_string(attempts) : ""),
              bytes);
}

void Telemetry::on_mpi_drop(int src, int dst, int tag, int attempt, sim::Time at) {
  metrics_.counter("mpi_drops_total").add();
  flight_.log(EventKind::kMpiDrop, at, mpi_lane(src, dst),
              "tag=" + std::to_string(tag) + " retry#" + std::to_string(attempt));
}

void Telemetry::on_mpi_lost(int src, int dst, int tag, int attempts, sim::Time at) {
  metrics_.counter("mpi_messages_lost_total").add();
  flight_.log(EventKind::kMpiLost, at, mpi_lane(src, dst),
              "tag=" + std::to_string(tag) + " after " + std::to_string(attempts) + " attempts");
}

void Telemetry::on_transport_error(const std::string& what, sim::Time at) {
  metrics_.counter("mpi_transport_errors_total").add();
  flight_.log(EventKind::kError, at, "mpi", what);
  capture_dump("TransportError: " + what, dump_tail_n_);
}

void Telemetry::on_checker_finding(const std::string& kind, sim::Time at) {
  metrics_.counter("checker_findings_total{kind=\"" + kind + "\"}").add();
  flight_.log(EventKind::kError, at, "check", kind);
  capture_dump("checker finding: " + kind, dump_tail_n_);
}

void Telemetry::on_exchange_start(std::uint64_t seq, sim::Time at) {
  flight_.set_exchange_seq(seq);
  flight_.log(EventKind::kExchangeStart, at, "exchange", "#" + std::to_string(seq));
}

void Telemetry::on_exchange_end(std::uint64_t seq, const std::string& method,
                                std::uint64_t messages, std::uint64_t bytes, sim::Time at) {
  metrics_.counter("exchange_messages_total{method=\"" + method + "\"}").add(messages);
  metrics_.counter("exchange_bytes_total{method=\"" + method + "\"}").add(bytes);
  flight_.log(EventKind::kExchangeEnd, at, "exchange", "#" + std::to_string(seq) + " " + method,
              bytes);
}

void Telemetry::on_exchange_latency(sim::Duration d) {
  metrics_.counter("exchanges_total").add();
  metrics_.histogram("exchange_latency_ns").observe(static_cast<std::uint64_t>(d > 0 ? d : 0));
}

void Telemetry::on_demotion(int tag, const std::string& from, const std::string& to, sim::Time at) {
  metrics_.counter("fault_demotions_total").add();
  flight_.log(EventKind::kDemote, at, "fault",
              "tag=" + std::to_string(tag) + " " + from + "->" + to);
}

void Telemetry::on_plan_event(const char* what) {
  metrics_.counter("plan_" + std::string(what) + "s_total").add();
}

void Telemetry::on_stall(const std::string& what, sim::Time at) {
  metrics_.counter("progress_stalls_total").add();
  flight_.log(EventKind::kStall, at, "progress", what);
  capture_dump("progress stall: " + what, dump_tail_n_);
}

void Telemetry::on_recover_step(const std::string& step, const std::string& detail, sim::Time at) {
  metrics_.counter("recover_steps_total{step=\"" + step + "\"}").add();
  flight_.log(EventKind::kRecover, at, "recover", step + ": " + detail);
}

void Telemetry::record_engine(const sim::Engine& eng) {
  metrics_.gauge("sim_events_processed").set(static_cast<double>(eng.events_processed()));
  metrics_.gauge("sim_events_per_virtual_second").set(eng.events_per_virtual_second());
  metrics_.gauge("sim_max_run_queue_depth")
      .set(static_cast<double>(eng.max_run_queue_depth()));
  metrics_.gauge("sim_context_switches").set(static_cast<double>(eng.context_switches()));
}

void Telemetry::install_deadlock_dump(sim::Engine& eng, std::size_t tail_n) {
  dump_tail_n_ = tail_n;
  eng.set_watchdog([this, tail_n](const sim::DeadlockReport& report) {
    capture_dump(report.to_string(), tail_n);
  });
}

void Telemetry::capture_dump(const std::string& header, std::size_t tail_n) {
  std::ostringstream os;
  os << header;
  if (!header.empty() && header.back() != '\n') os << "\n";
  os << "flight recorder (last " << std::min(tail_n, flight_.size()) << " of "
     << flight_.total_logged() << " events):\n";
  flight_.dump_tail(os, tail_n);
  last_dump_ = os.str();
}

void Telemetry::clear() {
  metrics_.clear();
  flight_.clear();
  last_dump_.clear();
}

}  // namespace stencil::telemetry
