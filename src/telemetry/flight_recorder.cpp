#include "telemetry/flight_recorder.h"

#include <cstdio>
#include <utility>

namespace stencil::telemetry {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kExchangeStart: return "exchange+";
    case EventKind::kExchangeEnd: return "exchange-";
    case EventKind::kTransfer: return "transfer";
    case EventKind::kGpuOp: return "gpu-op";
    case EventKind::kMpiPost: return "mpi-post";
    case EventKind::kMpiMatch: return "mpi-match";
    case EventKind::kMpiDrop: return "mpi-drop";
    case EventKind::kMpiLost: return "mpi-LOST";
    case EventKind::kDemote: return "demote";
    case EventKind::kError: return "ERROR";
    case EventKind::kStall: return "STALL";
    case EventKind::kRecover: return "recover";
    case EventKind::kNote: return "note";
  }
  return "?";
}

void FlightRecorder::log(FlightEvent ev) {
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(ev));
  ++total_logged_;
}

void FlightRecorder::log(EventKind kind, sim::Time at, std::string lane, std::string detail,
                         std::uint64_t bytes) {
  FlightEvent ev;
  ev.exchange_seq = exchange_seq_;
  ev.at = at;
  ev.kind = kind;
  ev.lane = std::move(lane);
  ev.detail = std::move(detail);
  ev.bytes = bytes;
  log(std::move(ev));
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t n) const {
  if (n > ring_.size()) n = ring_.size();
  return {ring_.end() - static_cast<std::ptrdiff_t>(n), ring_.end()};
}

void FlightRecorder::dump_tail(std::ostream& os, std::size_t n) const {
  if (ring_.empty()) {
    os << "  (flight recorder empty)\n";
    return;
  }
  const auto events = tail(n);
  if (events.size() < total_logged_) {
    os << "  ... " << (total_logged_ - events.size()) << " earlier event(s) evicted/omitted\n";
  }
  for (const auto& ev : events) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  [seq %llu] %-10s %-9s",
                  static_cast<unsigned long long>(ev.exchange_seq),
                  sim::format_duration(ev.at).c_str(), to_string(ev.kind));
    os << buf << " " << ev.lane;
    if (!ev.detail.empty()) os << "  " << ev.detail;
    if (ev.bytes != 0) os << "  (" << ev.bytes << " B)";
    os << "\n";
  }
}

void FlightRecorder::clear() {
  ring_.clear();
  total_logged_ = 0;
}

}  // namespace stencil::telemetry
