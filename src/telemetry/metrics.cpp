#include "telemetry/metrics.h"

#include <algorithm>
#include <limits>

namespace stencil::telemetry {

int Histogram::bucket_index(std::uint64_t v) {
  if (v <= 1) return 0;
  // Smallest i with v <= 2^i, i.e. ceil(log2(v)).
  int i = 64 - __builtin_clzll(v - 1);
  return std::min(i, kBuckets - 1);
}

std::uint64_t Histogram::bucket_bound(int i) {
  if (i >= 63) return std::numeric_limits<std::uint64_t>::max();
  return std::uint64_t{1} << i;
}

void Histogram::observe(std::uint64_t v) {
  ++buckets_[bucket_index(v)];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

int Histogram::used_buckets() const {
  for (int i = kBuckets; i-- > 0;) {
    if (buckets_[i] != 0) return i + 1;
  }
  return 0;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  help_.clear();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].value += c.value;
  for (const auto& [name, g] : other.gauges_) gauges_[name].value = g.value;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  // First registration wins: per-domain registries document the same bases.
  for (const auto& [base, text] : other.help_) help_.emplace(base, text);
}

std::pair<std::string, std::string> split_metric_name(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace), name.substr(brace + 1, name.size() - brace - 2)};
}

}  // namespace stencil::telemetry
