#include "telemetry/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

namespace stencil::telemetry {

CriticalPath::CriticalPath(std::vector<trace::OpRecord> spans) : spans_(std::move(spans)) {}

void CriticalPath::add_edge_checked(std::size_t from, std::size_t to, bool message,
                                    std::uint64_t msg) {
  if (from >= spans_.size() || to >= spans_.size() || from == to) return;
  if (spans_[from].end > spans_[to].start) return;  // contradicted by the timeline
  edges_.push_back(Edge{from, to, message, msg});
}

void CriticalPath::add_edge(std::size_t from, std::size_t to) {
  add_edge_checked(from, to, /*message=*/false, /*msg=*/0);
}

std::size_t CriticalPath::add_flow_edges(const std::vector<trace::FlowEdge>& flows) {
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].id != 0) by_id.emplace(spans_[i].id, i);
  }
  std::size_t attached = 0;
  for (const auto& f : flows) {
    const auto fit = by_id.find(f.from_span);
    const auto tit = by_id.find(f.to_span);
    if (fit == by_id.end() || tit == by_id.end()) continue;
    const std::size_t before = edges_.size();
    add_edge_checked(fit->second, tit->second, /*message=*/true, f.msg);
    if (edges_.size() != before) {
      ++attached;
      if (f.msg != 0) flow_msgs_.insert(f.msg);
    }
  }
  return attached;
}

bool CriticalPath::lane_matches(const std::string& desc, const std::string& lane) {
  if (lane == desc) return true;
  const std::string token = desc.substr(0, desc.find('/'));
  if (token.empty()) return false;
  if (lane == token) return true;
  if (lane.size() > token.size() && lane.compare(0, token.size(), token) == 0) {
    const std::string rest = lane.substr(token.size());
    if (rest[0] == '.' || rest.compare(0, 2, "->") == 0) return true;
  }
  const std::string as_dst = "->" + token;
  return lane.size() >= as_dst.size() &&
         lane.compare(lane.size() - as_dst.size(), as_dst.size(), as_dst) == 0;
}

std::size_t CriticalPath::add_hb_edges(const std::vector<HbEdge>& edges) {
  std::size_t attached = 0;
  for (const auto& e : edges) {
    // Same message already attached as a trace flow edge: skip, the flow
    // edge is exact (span-id to span-id) where this one is heuristic.
    if (e.msg != 0 && flow_msgs_.count(e.msg) != 0) continue;
    // Latest producer ending by e.at on a lane matching e.from.
    std::size_t from = spans_.size();
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      if (spans_[i].end > e.at || !lane_matches(e.from, spans_[i].lane)) continue;
      if (from == spans_.size() || spans_[i].end > spans_[from].end) from = i;
    }
    // Earliest consumer starting from e.at on a lane matching e.to.
    std::size_t to = spans_.size();
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      if (spans_[i].start < e.at || !lane_matches(e.to, spans_[i].lane)) continue;
      if (to == spans_.size() || spans_[i].start < spans_[to].start) to = i;
    }
    if (from == spans_.size() || to == spans_.size()) continue;
    const std::size_t before = edges_.size();
    add_edge(from, to);
    attached += edges_.size() - before;
  }
  return attached;
}

Analysis CriticalPath::analyze() const {
  Analysis a;
  if (spans_.empty()) return a;

  a.t0 = std::numeric_limits<sim::Time>::max();
  a.t1 = std::numeric_limits<sim::Time>::min();
  for (const auto& s : spans_) {
    a.t0 = std::min(a.t0, s.start);
    a.t1 = std::max(a.t1, s.end);
  }
  a.makespan = a.t1 - a.t0;

  // Lane FIFO: the previous span on the same lane (by start, then index)
  // is an implicit predecessor.
  std::map<std::string, std::vector<std::size_t>> by_lane;
  for (std::size_t i = 0; i < spans_.size(); ++i) by_lane[spans_[i].lane].push_back(i);
  std::vector<std::size_t> lane_pred(spans_.size(), spans_.size());
  for (auto& [lane, idx] : by_lane) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
      return spans_[x].start != spans_[y].start ? spans_[x].start < spans_[y].start : x < y;
    });
    for (std::size_t k = 1; k < idx.size(); ++k) lane_pred[idx[k]] = idx[k - 1];
  }

  // Rank FIFO: with a causal recorder the spans carry rank attribution, and
  // a rank is one sequential actor — its previous span (across all its
  // lanes) is an implicit predecessor too. This is what lets the walk reach
  // a message-adoption marker and continue into the sending rank.
  std::map<int, std::vector<std::size_t>> by_rank;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].rank >= 0) by_rank[spans_[i].rank].push_back(i);
  }
  std::vector<std::size_t> rank_pred(spans_.size(), spans_.size());
  for (auto& [rank, idx] : by_rank) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
      return spans_[x].start != spans_[y].start ? spans_[x].start < spans_[y].start : x < y;
    });
    for (std::size_t k = 1; k < idx.size(); ++k) rank_pred[idx[k]] = idx[k - 1];
  }

  struct PredEdge {
    std::size_t from;
    bool message;
    std::uint64_t msg;
  };
  std::vector<std::vector<PredEdge>> explicit_preds(spans_.size());
  for (const auto& e : edges_) explicit_preds[e.to].push_back({e.from, e.message, e.msg});

  // Start at the last finisher (lowest index on ties) and walk backwards.
  std::size_t cur = 0;
  for (std::size_t i = 1; i < spans_.size(); ++i) {
    if (spans_[i].end > spans_[cur].end) cur = i;
  }

  std::vector<std::size_t> rev_chain;
  std::vector<char> visited(spans_.size(), 0);
  std::vector<char> via_msg(spans_.size(), 0);        // the edge into span i was a message
  std::vector<std::uint64_t> via_msg_id(spans_.size(), 0);
  for (;;) {
    rev_chain.push_back(cur);
    visited[cur] = 1;
    const sim::Time need = spans_[cur].start;

    // Prefer an explained predecessor: explicit edges first, then lane FIFO.
    std::size_t pred = spans_.size();
    bool pred_explicit = false;
    bool pred_message = false;
    std::uint64_t pred_msg = 0;
    const auto consider = [&](std::size_t p, bool is_explicit, bool is_message,
                              std::uint64_t msg) {
      if (p >= spans_.size() || visited[p] || spans_[p].end > need) return;
      if (pred == spans_.size() || spans_[p].end > spans_[pred].end ||
          (spans_[p].end == spans_[pred].end && is_explicit && !pred_explicit)) {
        pred = p;
        pred_explicit = is_explicit;
        pred_message = is_message;
        pred_msg = msg;
      }
    };
    for (const auto& pe : explicit_preds[cur]) consider(pe.from, true, pe.message, pe.msg);
    consider(lane_pred[cur], false, false, 0);
    consider(rank_pred[cur], false, false, 0);

    // Otherwise fall back to the global last finisher before our start —
    // the same call a human makes reading a Gantt chart.
    if (pred == spans_.size() && need > a.t0) {
      for (std::size_t i = 0; i < spans_.size(); ++i) consider(i, false, false, 0);
    }
    if (pred == spans_.size()) break;
    via_msg[cur] = pred_message ? 1 : 0;
    via_msg_id[cur] = pred_msg;
    cur = pred;
  }

  for (auto it = rev_chain.rbegin(); it != rev_chain.rend(); ++it) {
    const auto& s = spans_[*it];
    Hop h;
    h.span = *it;
    h.lane = s.lane;
    h.label = s.label;
    h.start = s.start;
    h.end = s.end;
    h.wait = a.chain.empty() ? s.start - a.t0 : s.start - a.chain.back().end;
    h.rank = s.rank;
    h.via_message = via_msg[*it] != 0;
    h.msg = via_msg_id[*it];
    a.critical_busy += s.end - s.start;
    a.critical_wait += h.wait;
    a.chain.push_back(std::move(h));
  }
  for (std::size_t i = 1; i < a.chain.size(); ++i) {
    const Hop& p = a.chain[i - 1];
    const Hop& h = a.chain[i];
    if (h.via_message && p.rank >= 0 && h.rank >= 0 && p.rank != h.rank) ++a.rank_crossings;
  }
  a.critical_wait += a.t1 - a.chain.back().end;  // trailing idle, if the walk ended early
  a.overlap_efficiency =
      a.makespan > 0 ? static_cast<double>(a.critical_busy) / static_cast<double>(a.makespan) : 0.0;

  std::vector<char> on_chain(spans_.size(), 0);
  for (const auto& h : a.chain) on_chain[h.span] = 1;
  std::map<std::string, LaneStat> lanes;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    LaneStat& ls = lanes[spans_[i].lane];
    ls.lane = spans_[i].lane;
    ls.busy += spans_[i].end - spans_[i].start;
    if (on_chain[i]) ls.critical += spans_[i].end - spans_[i].start;
  }
  for (auto& [name, ls] : lanes) {
    ls.slack = a.makespan - ls.busy;
    a.lanes.push_back(ls);
  }
  std::sort(a.lanes.begin(), a.lanes.end(), [](const LaneStat& x, const LaneStat& y) {
    return x.busy != y.busy ? x.busy > y.busy : x.lane < y.lane;
  });

  // Per-rank blame, only when the spans carry attribution (causal recorder).
  std::map<int, RankStat> ranks;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].rank < 0) continue;
    RankStat& rs = ranks[spans_[i].rank];
    rs.rank = spans_[i].rank;
    rs.busy += spans_[i].end - spans_[i].start;
    if (on_chain[i]) rs.critical += spans_[i].end - spans_[i].start;
  }
  for (const auto& h : a.chain) {
    if (h.rank >= 0) ++ranks[h.rank].chain_spans;
  }
  for (auto& [r, rs] : ranks) a.ranks.push_back(rs);
  std::sort(a.ranks.begin(), a.ranks.end(), [](const RankStat& x, const RankStat& y) {
    if (x.critical != y.critical) return x.critical > y.critical;
    return x.busy != y.busy ? x.busy > y.busy : x.rank < y.rank;
  });
  return a;
}

std::vector<LaneStat> Analysis::top_bottlenecks(std::size_t k) const {
  std::vector<LaneStat> ranked = lanes;
  std::sort(ranked.begin(), ranked.end(), [](const LaneStat& x, const LaneStat& y) {
    if (x.critical != y.critical) return x.critical > y.critical;
    return x.busy != y.busy ? x.busy > y.busy : x.lane < y.lane;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::string Analysis::str(std::size_t top_k) const {
  std::ostringstream os;
  if (chain.empty()) {
    os << "critical path: (no spans)\n";
    return os.str();
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "critical path: %zu hop(s), makespan %s, busy %s, wait %s  "
                "(overlap efficiency %.1f%%)\n",
                chain.size(), sim::format_duration(makespan).c_str(),
                sim::format_duration(critical_busy).c_str(),
                sim::format_duration(critical_wait).c_str(), overlap_efficiency * 100.0);
  os << buf;
  for (const auto& h : chain) {
    std::snprintf(buf, sizeof(buf), "  +%-10s wait %-10s %-16s %-28s (%s)%s\n",
                  sim::format_duration(h.start - t0).c_str(),
                  sim::format_duration(h.wait).c_str(), h.lane.c_str(), h.label.c_str(),
                  sim::format_duration(h.end - h.start).c_str(),
                  h.via_message ? "  via msg" : "");
    os << buf;
  }
  const auto ranked = top_bottlenecks(top_k);
  os << "bottleneck lanes (by time on critical path):\n";
  for (const auto& ls : ranked) {
    std::snprintf(buf, sizeof(buf), "  %-16s critical %-10s busy %-10s slack %s\n",
                  ls.lane.c_str(), sim::format_duration(ls.critical).c_str(),
                  sim::format_duration(ls.busy).c_str(), sim::format_duration(ls.slack).c_str());
    os << buf;
  }
  if (!ranks.empty()) {
    std::snprintf(buf, sizeof(buf), "per-rank blame (%d rank-crossing message edge(s) on chain):\n",
                  rank_crossings);
    os << buf;
    for (const auto& rs : ranks) {
      std::snprintf(buf, sizeof(buf), "  rank %-4d critical %-10s busy %-10s (%zu chain span(s))\n",
                    rs.rank, sim::format_duration(rs.critical).c_str(),
                    sim::format_duration(rs.busy).c_str(), rs.chain_spans);
      os << buf;
    }
  }
  return os.str();
}

}  // namespace stencil::telemetry
