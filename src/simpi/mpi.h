#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dtrace/context.h"
#include "simpi/observer.h"
#include "simtime/engine.h"
#include "simtime/resource.h"
#include "topo/machine.h"
#include "trace/recorder.h"
#include "vgpu/runtime.h"

namespace stencil::watch {
class Watch;
}  // namespace stencil::watch

namespace stencil::simpi {

class Comm;

/// What a message carries. Either a vgpu::Buffer slice (pinned host or
/// device memory) or a raw host pointer (ordinary memory, used for setup
/// metadata such as IPC handles and sizes). Device payloads require a
/// CUDA-aware platform, exactly like passing a device pointer to MPI_Isend.
struct Payload {
  vgpu::Buffer* buf = nullptr;
  std::size_t offset = 0;
  void* raw = nullptr;
  std::size_t bytes = 0;

  static Payload of(vgpu::Buffer& b, std::size_t off, std::size_t n) {
    return Payload{&b, off, nullptr, n};
  }
  static Payload raw_host(void* p, std::size_t n) { return Payload{nullptr, 0, p, n}; }
  template <typename T>
  static Payload of_values(T* p, std::size_t count) {
    return raw_host(const_cast<std::remove_const_t<T>*>(p), count * sizeof(T));
  }

  bool is_device() const { return buf != nullptr && buf->space() == vgpu::MemSpace::kDevice; }
};

/// Thrown from wait/wait_any instead of hanging when fault injection is
/// active: either the peer never produced a matching message within the
/// retry budget (kTimeout), or the message was lost and every retry was
/// dropped too (kRetriesExhausted). Terminal failures add two ULFM-style
/// codes: kPeerDead (the peer rank is permanently dead — scripted kGpuFail/
/// kNodeFail — and the failure-detector bound has elapsed) and kRevoked
/// (another rank revoked the communicator while this operation was pending;
/// see Job::revoke). Without a retry policy or terminal faults the library
/// keeps its MPI-faithful behaviour (block forever; the engine's deadlock
/// detector fires if nothing else can run).
class TransportError : public std::runtime_error {
 public:
  enum class Code { kTimeout, kRetriesExhausted, kPeerDead, kRevoked };
  TransportError(Code code, int peer, int tag, const std::string& what)
      : std::runtime_error(what), code_(code), peer_(peer), tag_(tag) {}
  Code code() const { return code_; }
  int peer() const { return peer_; }
  int tag() const { return tag_; }

 private:
  Code code_;
  int peer_;
  int tag_;
};

/// Handle to a pending nonblocking operation. Copyable; all copies refer to
/// the same operation.
class Request {
 public:
  Request() = default;
  bool valid() const { return rec_ != nullptr; }

  struct Record;  // implementation detail, public only so helpers can name it

 private:
  friend class Job;
  friend class Comm;
  explicit Request(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Record> rec_;
};

/// One simulated MPI job: `ranks_per_node * machine.num_nodes()` ranks, each
/// an engine actor. Owns the matching engine, per-rank CPU resources, and
/// collective state. Ranks are block-mapped to nodes (rank r lives on node
/// r / ranks_per_node), matching how jobs are launched on Summit.
class Job {
 public:
  /// Host-memory sends at or below this size complete eagerly (buffered).
  static constexpr std::size_t kEagerLimit = 64 * 1024;

  Job(sim::Engine& eng, topo::Machine& machine, vgpu::Runtime& runtime, int ranks_per_node);

  /// SPMD entry point: runs `body` once per rank, to completion.
  void run(const std::function<void(Comm&)>& body);

  sim::Engine& engine() { return eng_; }
  topo::Machine& machine() { return machine_; }
  vgpu::Runtime& runtime() { return runtime_; }

  int world_size() const { return world_size_; }
  int ranks_per_node() const { return ranks_per_node_; }
  int node_of_rank(int rank) const { return rank / ranks_per_node_; }

  /// The CPU resource of a rank (one core driving copies and issue).
  sim::Resource& cpu(int rank) { return cpu_[static_cast<std::size_t>(rank)]; }

  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }

  /// Optional correctness observer (stencil::check): when set, every post,
  /// match, completion, cancellation, and barrier crossing is reported.
  void set_checker(JobObserver* obs) { checker_ = obs; }
  JobObserver* checker() const { return checker_; }

  /// Optional telemetry sink: message/byte/retry counters and flight-recorder
  /// events for every post, match, drop, and loss. Pure bookkeeping.
  void set_telemetry(telemetry::Telemetry* t) { telemetry_ = t; }
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Optional live performance watch (stencil::watch): every delivered
  /// message feeds its lane estimators. Pure bookkeeping — no virtual time.
  void set_watch(watch::Watch* w) { watch_ = w; }
  watch::Watch* watch() const { return watch_; }

  // --- ULFM-style failure semantics (stencil::recover) ----------------------

  /// Instant rank `r` dies, or fault::kForever. A rank is dead once its node
  /// fails or every GPU it drives fails (block mapping: rank r on node
  /// r/ranks_per_node drives the slot's gpus_per_node/ranks_per_node GPUs).
  /// Pure oracle over the installed fault plan; kForever without an injector.
  sim::Time rank_fail_time(int r) const;
  bool rank_alive(int r) const;

  /// Ranks still participating (world size minus retired ranks). Collectives
  /// count to this target.
  int live_count() const { return world_size_ - retired_count_; }
  bool rank_retired(int r) const { return retired_[static_cast<std::size_t>(r)]; }

  /// MPI_Comm_revoke analogue: bump the communicator epoch and wake every
  /// parked wait. Operations posted under an older epoch that are still
  /// unmatched complete with TransportError::kRevoked; operations posted
  /// after the revoke (the recovery traffic itself) are unaffected.
  /// Idempotent per failure incident: further revokes are no-ops until
  /// clear_revoke() closes the incident (call it after the post-recovery
  /// barrier, when every survivor has aborted its stale operations).
  void revoke();
  bool revoked() const { return revoked_; }
  void clear_revoke() { revoked_ = false; }
  std::uint64_t comm_epoch() const { return comm_epoch_; }

  /// Acknowledge a dead rank: cancel every unmatched request it posted
  /// (notifying the checker), shrink the collective target, and wake all
  /// waiters so barriers blocked only on the dead rank release. Idempotent.
  void retire_rank(int r);

  /// Deterministic drain protocol: a dying rank parks here until every
  /// survivor has called release_drained() after finishing recovery, so its
  /// shared-memory channels and IPC buffers outlive all remote references.
  void await_drain(int me);
  void release_drained(int me);

  /// Return a request to the inactive state without waiting: unmatched
  /// records are cancelled, matched ones are drained (sleeping to their
  /// completion instant so buffer reuse stays race-free) and marked done.
  /// Non-persistent handles are invalidated. Recovery uses this to abort
  /// an in-flight exchange without tripping the checker's unwaited lint.
  void reset(Request& r);

 private:
  friend class Comm;

  std::shared_ptr<Request::Record> post(bool is_send, int me, int peer, int tag, const Payload& p);
  std::shared_ptr<Request::Record> init(bool is_send, int me, int peer, int tag, const Payload& p);
  void start(Request& r);
  void request_free(Request& r);
  void try_match(int dst_rank);
  void complete_match(Request::Record& send, Request::Record& recv);
  // Drop this still-unmatched record from its queue (wait timeout path).
  void cancel_unmatched(Request::Record& rec);
  void wait(Request& r, int me);
  bool test(Request& r);
  int wait_any(std::vector<Request>& rs, int me);
  void barrier(int me);
  // Distributed tracing (no-ops unless the recorder is causal): stamp a
  // fresh trace context onto a send's envelope (a zero-duration marker span
  // on "rankN.mpi"), and close out a completed request (resolve the send's
  // context / record the receive-side adoption marker and flow edge).
  void stamp_context(Request::Record& rec, bool restart);
  void note_completion(Request::Record& rec);
  sim::Time device_ready_barrier(const Request::Record& send, const Request::Record& recv,
                                 sim::Time ready);

  sim::Engine& eng_;
  topo::Machine& machine_;
  vgpu::Runtime& runtime_;
  trace::Recorder* recorder_ = nullptr;
  JobObserver* checker_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  watch::Watch* watch_ = nullptr;
  int ranks_per_node_ = 0;
  int world_size_ = 0;
  std::uint64_t next_request_serial_ = 1;
  std::vector<std::uint64_t> send_seq_;  // per-rank send sequence numbers

  std::vector<sim::Resource> cpu_;                       // per rank
  std::vector<std::unique_ptr<sim::Gate>> rank_gates_;   // per rank: wakes its waits
  // Unmatched queues, bucketed by destination rank, in post order.
  std::vector<std::deque<std::shared_ptr<Request::Record>>> unmatched_sends_;
  std::vector<std::deque<std::shared_ptr<Request::Record>>> unmatched_recvs_;

  // Barrier state.
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
  sim::Time barrier_release_ = 0;
  sim::Time barrier_max_arrival_ = 0;
  std::unique_ptr<sim::Gate> barrier_gate_;

  // ULFM-style failure state.
  void release_barrier_locked();
  bool revoked_ = false;
  std::uint64_t comm_epoch_ = 0;
  std::vector<bool> retired_;
  int retired_count_ = 0;
  std::unique_ptr<sim::Gate> drain_gate_;
  int drain_acks_ = 0;
};

struct Request::Record {
  std::uint64_t serial = 0;  // job-unique identity (for observers)
  bool is_send = false;
  int src = -1;
  int dst = -1;
  int tag = 0;
  Payload payload;
  sim::Time post_time = 0;
  bool matched = false;
  sim::Time complete_at = 0;
  bool cancelled = false;
  // Fault injection: the match was resolved but delivery failed (message
  // dropped and the retry budget exhausted). wait() throws TransportError
  // at complete_at instead of returning. `attempts` counts transmissions.
  bool failed = false;
  int attempts = 1;
  // Eager protocol: small host-memory sends are buffered inside the library
  // and complete immediately (like real MPI's eager path), so a blocking
  // small send never deadlocks against an out-of-order receiver.
  bool buffered = false;
  std::vector<std::byte> staged;
  // Persistent requests (MPI_Send_init/MPI_Recv_init): the Record is created
  // once, then re-armed by start(); `active` tracks started-but-not-completed
  // and `starts` counts the re-arms. Identity (serial) never changes, so
  // observers see one reusable record across thousands of iterations.
  bool persistent = false;
  bool active = false;
  std::uint64_t starts = 0;
  // Communicator epoch at post/start time: a revoke bumps the job epoch and
  // any still-unmatched record from an older epoch completes with kRevoked.
  std::uint64_t epoch = 0;
  // Distributed tracing (only populated when the attached recorder is
  // causal): the envelope carries the sender's trace context so the
  // matching receive adopts it, and `wire_span` remembers the wire span a
  // delivered receive must draw its adoption arrow from. Persistent
  // requests re-stamp a fresh context on every start() under the same
  // serial, so contexts survive compiled-plan replay.
  dtrace::TraceContext ctx;
  std::uint64_t wire_span = 0;
};

/// The per-rank communicator handle (the world communicator; split() yields
/// sub-communicators whose ranks translate to world ranks internally).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  Job& job() { return *job_; }

  /// Node index this rank runs on (what hwloc/MPI would derive).
  int node() const { return job_->node_of_rank(world_rank()); }
  int world_rank() const { return members_[static_cast<std::size_t>(rank_)]; }
  /// World rank of any member (identity on the world communicator). Tag
  /// derivations that must be globally unique (aggregation headers under
  /// multi-tenancy) key off this instead of the sub-rank.
  int world_rank_of(int r) const { return members_.at(static_cast<std::size_t>(r)); }

  Request isend(const Payload& p, int dst, int tag);
  Request irecv(const Payload& p, int src, int tag);
  void send(const Payload& p, int dst, int tag);
  void recv(const Payload& p, int src, int tag);

  /// Persistent operations (MPI_Send_init / MPI_Recv_init / MPI_Start /
  /// MPI_Startall / MPI_Request_free). *_init creates a reusable Record but
  /// moves no data; each start() re-arms the same Record (same serial) and
  /// enters it into matching; wait()/wait_any() return it to the inactive
  /// state without invalidating the handle. wait() on an inactive persistent
  /// request returns immediately; start() on an active one throws (after
  /// notifying the checker, which lints it).
  Request send_init(const Payload& p, int dst, int tag);
  Request recv_init(const Payload& p, int src, int tag);
  void start(Request& r);
  void startall(std::vector<Request>& rs);
  /// Free a persistent handle. Freeing while active is linted by the checker;
  /// the in-flight operation still completes (deferred-free semantics).
  void request_free(Request& r);

  void wait(Request& r);
  bool test(Request& r);
  void waitall(std::vector<Request>& rs);

  /// MPI_Waitany: block until one of the valid requests completes, return
  /// its index, and invalidate it (REQUEST_NULL semantics). Returns -1 when
  /// no valid request remains. If several are complete, returns the one
  /// with the earliest completion time.
  int wait_any(std::vector<Request>& rs);

  void barrier();

  /// Gather `bytes` from every rank into recv (rank-major); simple
  /// setup-path collective (O(size) messages to root + bcast back).
  void allgather(const void* send, void* recv, std::size_t bytes);

  /// Split into sub-communicators by color; ranks ordered by (key, rank).
  Comm split(int color, int key) const;

  /// MPI_Comm_shrink analogue, made non-collective by the determinism of the
  /// fault oracle: every survivor locally derives the same surviving member
  /// list (ranks with no scripted terminal failure), in world-rank order.
  /// Only meaningful on survivors.
  Comm shrink() const;

  /// Job::reset on this communicator's matching engine (abort helper).
  void reset(Request& r) { job_->reset(r); }

  /// Virtual wall clock in seconds (MPI_Wtime).
  double wtime() const;

  /// The calling rank's CPU resource (for cost-model extensions).
  sim::Resource& cpu() { return job_->cpu(world_rank()); }

 private:
  friend class Job;
  Comm(Job* job, std::vector<int> members, int rank)
      : job_(job), members_(std::move(members)), rank_(rank) {}

  Job* job_ = nullptr;
  std::vector<int> members_;  // sub-rank -> world rank
  int rank_ = -1;             // my sub-rank
};

}  // namespace stencil::simpi
