#pragma once

#include <cstdint>

#include "simtime/time.h"

namespace stencil::simpi {

struct Payload;

/// Identity and metadata of one posted nonblocking operation, as reported to
/// a JobObserver. `serial` is unique for the lifetime of the Job (request
/// records are heap objects whose addresses can be reused). The Payload
/// pointer is valid only for the duration of the callback.
struct MsgInfo {
  std::uint64_t serial = 0;
  bool is_send = false;
  int src = -1;
  int dst = -1;
  int tag = 0;
  const Payload* payload = nullptr;
  bool buffered = false;    // eager protocol: completed at post time
  bool persistent = false;  // created by send_init/recv_init; reusable Record
  sim::Time post_time = 0;
};

/// Observer of every ordering-relevant simpi event: request post, match
/// resolution (delivery or loss), request completion (wait/test/wait_any),
/// cancellation, barrier arrival/release, and job start/end.
/// `stencil::check::Checker` implements this to extend the happens-before
/// graph across ranks; install with Job::set_checker.
///
/// Callbacks run on the engine actor performing the triggering MPI call and
/// must not call back into the Job.
class JobObserver {
 public:
  virtual ~JobObserver() = default;

  virtual void on_job_start(int world_size) = 0;
  virtual void on_job_end() = 0;
  virtual void on_post(const MsgInfo& m) = 0;
  /// A send/recv pair was resolved. `delivered` is false when fault
  /// injection dropped every transmission (both waits will throw);
  /// `same_node` selects the intra-node path, which — like the profiled
  /// MPI — does *not* synchronize with device streams, whereas the
  /// inter-node device path brackets the copy with device synchronization
  /// and occupies the default streams.
  virtual void on_match(const MsgInfo& send, const MsgInfo& recv, bool delivered,
                        bool same_node) = 0;
  /// Recv buffer smaller than the matched message; thrown right after.
  virtual void on_truncation(const MsgInfo& send, const MsgInfo& recv) = 0;
  /// The calling actor observed completion of this request (wait returned,
  /// test returned true, or wait_any selected it).
  virtual void on_request_done(std::uint64_t serial) = 0;
  /// The request was cancelled without completing (wait timeout path).
  virtual void on_request_cancel(std::uint64_t serial) = 0;
  virtual void on_barrier_arrive(std::uint64_t generation) = 0;
  virtual void on_barrier_release(std::uint64_t generation) = 0;

  /// Persistent-request lifecycle (MPI_Send_init / MPI_Start / MPI_Request_free).
  /// A persistent Record is created once by *_init (no data moves, nothing is
  /// queued for matching) and then re-armed by each start; completion is still
  /// reported through on_match/on_request_done with the same serial. Default
  /// no-op implementations keep pre-existing observers source-compatible.
  virtual void on_persistent_init(const MsgInfo& m) { (void)m; }
  /// Fired on every start, *before* the library rejects a double start, so an
  /// observer can lint "start while still active".
  virtual void on_persistent_start(const MsgInfo& m) { (void)m; }
  /// The handle was freed. `active` is true when the operation had been
  /// started and not yet completed (MPI defers the free; we lint it).
  virtual void on_persistent_free(std::uint64_t serial, bool active) {
    (void)serial;
    (void)active;
  }
};

}  // namespace stencil::simpi
