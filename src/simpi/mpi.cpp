#include "simpi/mpi.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <stdexcept>

#include "core/tagspace.h"
#include "fault/fault.h"
#include "telemetry/telemetry.h"
#include "watch/watch.h"

namespace stencil::simpi {

namespace {

// Slots inside the reserved collective tag window (tagspace.h). Barrier
// dissemination rounds occupy slots [0, 32); allgather phases sit well away.
constexpr int kSlotBarrierRound0 = 0;
constexpr int kSlotGather = 100;
constexpr int kSlotBcast = 101;

int ceil_log2(int n) {
  int hops = 0;
  int v = 1;
  while (v < n) {
    v *= 2;
    ++hops;
  }
  return hops;
}

// Pipelined hop chaining: the next hop may start once the previous has
// streamed enough to keep it fed, but not before the previous hop started.
sim::Time cut_through_ready(const sim::Span& prev, sim::Duration dur) {
  return std::max(prev.start, prev.end - dur);
}

std::byte* payload_ptr(const Payload& p) {
  if (p.raw != nullptr) return static_cast<std::byte*>(p.raw);
  if (p.buf != nullptr && p.buf->mode() == vgpu::MemMode::kMaterialized) {
    return p.buf->data() + p.offset;
  }
  return nullptr;  // phantom: timing only
}

// What a pending operation is waiting for, for the deadlock diagnostic.
std::string wait_detail(bool is_send, int src, int dst, int tag) {
  return (is_send ? "send dst=" + std::to_string(dst) : "recv src=" + std::to_string(src)) +
         " tag=" + std::to_string(tag);
}

// Virtual time the full retry schedule of rp can take: the initial timeout
// plus one timeout + backoff (cap and jitter included at their maximum) per
// retry. A waiter that outlives this budget knows no matching peer will
// ever arrive in time.
sim::Duration retry_budget(const fault::RetryPolicy& rp) {
  return rp.timeout * (rp.max_retries + 1) + rp.backoff_budget(rp.max_retries);
}

// Jitter salt identifying one (src, dst, tag) message stream: the retry
// schedule must be a pure function of the plan and the message, never of
// call order.
std::uint64_t retry_salt(const fault::Injector& inj, int src, int dst, int tag) {
  const std::uint64_t pair = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
                             static_cast<std::uint32_t>(dst);
  return fault::mix64(pair ^ fault::mix64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) ^
                                          inj.plan().seed()));
}

MsgInfo msg_info(const Request::Record& rec) {
  MsgInfo m;
  m.serial = rec.serial;
  m.is_send = rec.is_send;
  m.src = rec.src;
  m.dst = rec.dst;
  m.tag = rec.tag;
  m.payload = &rec.payload;
  m.buffered = rec.buffered;
  m.persistent = rec.persistent;
  m.post_time = rec.post_time;
  return m;
}

}  // namespace

Job::Job(sim::Engine& eng, topo::Machine& machine, vgpu::Runtime& runtime, int ranks_per_node)
    : eng_(eng), machine_(machine), runtime_(runtime), ranks_per_node_(ranks_per_node) {
  if (ranks_per_node_ <= 0) throw std::invalid_argument("Job: ranks_per_node must be positive");
  if (machine_.gpus_per_node() % ranks_per_node_ != 0) {
    throw std::invalid_argument("Job: ranks_per_node must divide gpus_per_node");
  }
  world_size_ = ranks_per_node_ * machine_.num_nodes();
  cpu_.reserve(static_cast<std::size_t>(world_size_));
  rank_gates_.reserve(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    cpu_.emplace_back("rank" + std::to_string(r) + ".cpu");
    rank_gates_.push_back(std::make_unique<sim::Gate>("rank" + std::to_string(r) + ".mpi"));
  }
  unmatched_sends_.resize(static_cast<std::size_t>(world_size_));
  unmatched_recvs_.resize(static_cast<std::size_t>(world_size_));
  send_seq_.resize(static_cast<std::size_t>(world_size_), 0);
  barrier_gate_ = std::make_unique<sim::Gate>("barrier");
  retired_.resize(static_cast<std::size_t>(world_size_), false);
  drain_gate_ = std::make_unique<sim::Gate>("recover.drain");
}

void Job::run(const std::function<void(Comm&)>& body) {
  std::vector<int> members(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) members[static_cast<std::size_t>(r)] = r;

  std::vector<std::function<void()>> bodies;
  std::vector<std::string> names;
  bodies.reserve(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    bodies.push_back([this, r, members, &body] {
      Comm comm(this, members, r);
      body(comm);
    });
    names.push_back("rank" + std::to_string(r));
  }
  if (checker_ != nullptr) checker_->on_job_start(world_size_);
  eng_.run(std::move(bodies), std::move(names));
  if (checker_ != nullptr) checker_->on_job_end();
}

std::shared_ptr<Request::Record> Job::post(bool is_send, int me, int peer, int tag,
                                           const Payload& p) {
  if (peer < 0 || peer >= world_size_) throw std::out_of_range("simpi: peer rank out of range");
  if (p.is_device() && !machine_.arch().cuda_aware_mpi) {
    throw std::runtime_error(
        "simpi: device pointer passed to MPI, but this platform is not CUDA-aware");
  }
  eng_.sleep_for(machine_.arch().cpu_issue);  // CPU cost of the MPI call

  auto rec = std::make_shared<Request::Record>();
  rec->serial = next_request_serial_++;
  rec->is_send = is_send;
  rec->src = is_send ? me : peer;
  rec->dst = is_send ? peer : me;
  rec->tag = tag;
  rec->payload = p;
  rec->post_time = eng_.now();
  rec->epoch = comm_epoch_;

  if (is_send && !p.is_device() && p.bytes <= kEagerLimit) {
    // Eager protocol: buffer the payload inside the library; the send
    // completes immediately and the data moves when the receive matches.
    rec->buffered = true;
    rec->matched = true;
    rec->complete_at = rec->post_time;
    if (const std::byte* sp = payload_ptr(p); sp != nullptr && p.bytes > 0) {
      rec->staged.assign(sp, sp + p.bytes);
    }
  }

  if (checker_ != nullptr) checker_->on_post(msg_info(*rec));
  if (telemetry_ != nullptr) {
    telemetry_->on_mpi_post(rec->src, rec->dst, rec->tag, rec->payload.bytes, is_send,
                            rec->post_time);
  }
  stamp_context(*rec, /*restart=*/false);  // before try_match can consume it

  auto& queue = is_send ? unmatched_sends_[static_cast<std::size_t>(rec->dst)]
                        : unmatched_recvs_[static_cast<std::size_t>(rec->dst)];
  queue.push_back(rec);
  try_match(rec->dst);
  return rec;
}

std::shared_ptr<Request::Record> Job::init(bool is_send, int me, int peer, int tag,
                                           const Payload& p) {
  if (peer < 0 || peer >= world_size_) throw std::out_of_range("simpi: peer rank out of range");
  if (p.is_device() && !machine_.arch().cuda_aware_mpi) {
    throw std::runtime_error(
        "simpi: device pointer passed to MPI, but this platform is not CUDA-aware");
  }
  eng_.sleep_for(machine_.arch().cpu_issue);  // local call, no data motion

  auto rec = std::make_shared<Request::Record>();
  rec->serial = next_request_serial_++;
  rec->is_send = is_send;
  rec->src = is_send ? me : peer;
  rec->dst = is_send ? peer : me;
  rec->tag = tag;
  rec->payload = p;
  rec->post_time = eng_.now();
  rec->persistent = true;

  if (checker_ != nullptr) checker_->on_persistent_init(msg_info(*rec));
  return rec;  // nothing enters matching until start()
}

void Job::start(Request& r) {
  if (!r.valid()) throw std::logic_error("simpi: start on an invalid Request");
  auto rec_sp = r.rec_;
  auto& rec = *rec_sp;
  if (!rec.persistent) throw std::logic_error("simpi: start on a non-persistent request");
  // Notify before rejecting, so the checker can lint the double start.
  if (checker_ != nullptr) checker_->on_persistent_start(msg_info(rec));
  if (rec.active) {
    throw std::logic_error("simpi: start on an already-active persistent request");
  }
  eng_.sleep_for(machine_.arch().cpu_issue);

  // Re-arm the same Record: identity (serial) is reused, per-iteration state
  // resets. This is the whole point of the persistent path — no new Record
  // allocation and no new observer identity per iteration.
  rec.matched = false;
  rec.complete_at = 0;
  rec.cancelled = false;
  rec.failed = false;
  rec.attempts = 1;
  rec.buffered = false;
  rec.staged.clear();
  rec.post_time = eng_.now();
  rec.epoch = comm_epoch_;
  rec.active = true;
  ++rec.starts;

  if (rec.is_send && !rec.payload.is_device() && rec.payload.bytes <= kEagerLimit) {
    // Eager protocol, re-staged on every start: the buffer contents differ
    // each iteration even though the envelope is frozen.
    rec.buffered = true;
    rec.matched = true;
    rec.complete_at = rec.post_time;
    if (const std::byte* sp = payload_ptr(rec.payload); sp != nullptr && rec.payload.bytes > 0) {
      rec.staged.assign(sp, sp + rec.payload.bytes);
    }
  }

  stamp_context(rec, /*restart=*/true);  // re-stamped per start, same serial

  auto& queue = rec.is_send ? unmatched_sends_[static_cast<std::size_t>(rec.dst)]
                            : unmatched_recvs_[static_cast<std::size_t>(rec.dst)];
  queue.push_back(rec_sp);
  try_match(rec.dst);
}

void Job::stamp_context(Request::Record& rec, bool restart) {
  if (!rec.is_send || recorder_ == nullptr || !recorder_->causal()) return;
  const std::uint64_t span = recorder_->record(
      "rank" + std::to_string(rec.src) + ".mpi",
      std::string(restart ? "start" : "post") + " tag=" + std::to_string(rec.tag) + " ->r" +
          std::to_string(rec.dst),
      rec.post_time, rec.post_time);
  rec.ctx =
      dtrace::TraceContext{rec.src, span, ++send_seq_[static_cast<std::size_t>(rec.src)]};
  rec.wire_span = 0;
  recorder_->on_context_posted(rec.src, span, rec.ctx.seq, rec.serial);
}

void Job::note_completion(Request::Record& rec) {
  if (recorder_ == nullptr || !recorder_->causal()) return;
  if (rec.is_send) {
    if (rec.ctx.valid()) {
      recorder_->on_context_resolved(rec.serial);
      rec.ctx = dtrace::TraceContext{};
    }
    return;
  }
  if (rec.wire_span != 0) {
    // The receive adopts the sender's context: a marker span on the
    // receiving rank's timeline, with an arrow from the wire span into it.
    const std::uint64_t adopt = recorder_->record(
        "rank" + std::to_string(rec.dst) + ".mpi",
        "recv tag=" + std::to_string(rec.tag) + " <-r" + std::to_string(rec.src), eng_.now(),
        eng_.now());
    recorder_->add_flow(rec.wire_span, adopt, rec.serial,
                        "deliver tag=" + std::to_string(rec.tag));
    rec.wire_span = 0;  // one adoption arrow per delivery
  }
}

void Job::request_free(Request& r) {
  if (!r.valid()) throw std::logic_error("simpi: request_free on an invalid Request");
  auto& rec = *r.rec_;
  const bool active = rec.persistent && rec.active;
  if (checker_ != nullptr) checker_->on_persistent_free(rec.serial, active);
  // Deferred-free semantics: an in-flight operation stays in the matching
  // queues and still completes/delivers; only the caller's handle dies.
  r.rec_.reset();
}

void Job::try_match(int dst_rank) {
  auto& sends = unmatched_sends_[static_cast<std::size_t>(dst_rank)];
  auto& recvs = unmatched_recvs_[static_cast<std::size_t>(dst_rank)];
  // Match in recv-post order (MPI non-overtaking per (src, tag)).
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto rit = recvs.begin(); rit != recvs.end(); ++rit) {
      auto& recv = **rit;
      auto sit = std::find_if(sends.begin(), sends.end(), [&](const auto& s) {
        return s->src == recv.src && s->tag == recv.tag;
      });
      if (sit != sends.end()) {
        auto send_rec = *sit;
        auto recv_rec = *rit;
        sends.erase(sit);
        recvs.erase(rit);
        complete_match(*send_rec, *recv_rec);
        progress = true;
        break;  // iterators invalidated; rescan
      }
    }
  }
}

sim::Time Job::device_ready_barrier(const Request::Record& send, const Request::Record& recv,
                                    sim::Time ready) {
  // The profiled MPI implementation calls cudaDeviceSynchronize before its
  // internal copies, so the message cannot move until all prior work on the
  // involved devices has drained.
  if (send.payload.is_device()) {
    ready = std::max(ready, runtime_.device_frontier(send.payload.buf->owner()));
  }
  if (recv.payload.is_device()) {
    ready = std::max(ready, runtime_.device_frontier(recv.payload.buf->owner()));
  }
  return ready;
}

void Job::complete_match(Request::Record& send, Request::Record& recv) {
  const std::size_t bytes = send.payload.bytes;
  if (recv.payload.bytes < bytes) {
    if (checker_ != nullptr) checker_->on_truncation(msg_info(send), msg_info(recv));
    throw std::runtime_error("simpi: message truncation (recv buffer smaller than message)");
  }
  const int node_s = node_of_rank(send.src);
  const int node_r = node_of_rank(recv.dst);
  const bool same_node = node_s == node_r;
  const auto& arch = machine_.arch();

  sim::Time ready = std::max(send.post_time, recv.post_time) +
                    (same_node ? arch.lat_mpi_intra : arch.lat_mpi_inter);

  // Fault injection: extra path delay, plus drop-and-retry. The schedule is
  // resolved analytically here (the engine is deterministic, so the retry
  // timeline is a pure function of the plan) rather than by re-posting.
  if (const fault::Injector* inj = machine_.fault_injector(); inj != nullptr && inj->active()) {
    ready += inj->message_delay(node_s, node_r, ready);
    const fault::RetryPolicy& rp = inj->retry_policy();
    const std::uint64_t salt = retry_salt(*inj, send.src, recv.dst, send.tag);
    int attempt = 0;
    bool delivered = true;
    while (inj->message_dropped(node_s, node_r, send.src, recv.dst, send.tag, attempt, ready)) {
      if (!rp.enabled() || attempt >= rp.max_retries) {
        delivered = false;
        break;
      }
      const sim::Time retry_at = ready + rp.timeout + rp.backoff_delay(attempt, salt);
      if (recorder_ != nullptr) {
        recorder_->record("mpi.r" + std::to_string(send.src) + "->r" + std::to_string(recv.dst),
                          "drop tag=" + std::to_string(send.tag) + " retry#" +
                              std::to_string(attempt + 1),
                          ready, retry_at);
      }
      if (telemetry_ != nullptr) {
        telemetry_->on_mpi_drop(send.src, recv.dst, send.tag, attempt + 1, ready);
      }
      ready = retry_at;
      ++attempt;
    }
    send.attempts = recv.attempts = attempt + 1;
    if (!delivered) {
      // Every transmission was lost. The sender's last timeout expires and
      // both sides fail; wait() turns this into a TransportError. An eager
      // (buffered) send already completed at post time, like real MPI — only
      // the receiver observes the loss.
      const sim::Time fail_at = ready + (rp.enabled() ? rp.timeout : 0);
      if (!send.buffered) {
        send.matched = true;
        send.failed = true;
        send.complete_at = fail_at;
      }
      recv.matched = true;
      recv.failed = true;
      recv.complete_at = fail_at;
      if (recorder_ != nullptr) {
        const std::uint64_t lost = recorder_->record(
            "mpi.r" + std::to_string(send.src) + "->r" + std::to_string(recv.dst),
            "LOST tag=" + std::to_string(send.tag) + " after " + std::to_string(recv.attempts) +
                " attempts",
            ready, fail_at);
        if (recorder_->causal() && send.ctx.valid()) {
          // The arrow ends at the loss: the trace shows where the message
          // died, and the sender's context leaves the in-flight set.
          recorder_->add_flow(send.ctx.span, lost, send.serial,
                              "lost tag=" + std::to_string(send.tag));
          recorder_->on_context_resolved(send.serial);
          send.ctx = dtrace::TraceContext{};
        }
      }
      if (checker_ != nullptr) {
        checker_->on_match(msg_info(send), msg_info(recv), /*delivered=*/false, same_node);
      }
      if (telemetry_ != nullptr) {
        telemetry_->on_mpi_lost(send.src, recv.dst, send.tag, recv.attempts, fail_at);
      }
      rank_gates_[static_cast<std::size_t>(send.src)]->notify_all(eng_);
      rank_gates_[static_cast<std::size_t>(recv.dst)]->notify_all(eng_);
      return;
    }
  }

  const bool dev_s = send.payload.is_device();
  const bool dev_r = recv.payload.is_device();
  // Instant both endpoints were ready, before any resource queuing: the
  // watch measures span.end - wire_ready so queueing on shared wires counts
  // as observed cost.
  const sim::Time wire_ready = ready;
  sim::Span span;

  if (dev_s || dev_r) {
    // CUDA-aware path.
    const int sgpu = dev_s ? send.payload.buf->owner() : -1;
    const int rgpu = dev_r ? recv.payload.buf->owner() : -1;
    if (same_node) {
      // Intra-node, the library moves data over the GPU interconnect via
      // cudaIpc*, but maps the peer buffer on *every* message — the
      // overhead COLOCATED pays only once at setup (§IV-C). The mapping is
      // CPU work on the receiving rank, so many small messages serialize
      // behind one core.
      const sim::Span ipc = cpu(recv.dst).acquire_span(ready, arch.lat_ipc_setup);
      ready = ipc.end;
      if (dev_s && dev_r) {
        span = machine_.schedule_d2d(sgpu, rgpu, bytes, ready, machine_.peer_capable(sgpu, rgpu));
      } else if (dev_s) {
        span = machine_.schedule_d2h(sgpu, bytes, ready);
        const sim::Span hc = machine_.schedule_host_copy(
            cpu(recv.dst), bytes, cut_through_ready(span, sim::transfer_time(bytes, arch.bw_host_mem)));
        span = {span.start, hc.end};
      } else {
        const sim::Span hc = machine_.schedule_host_copy(cpu(recv.dst), bytes, ready);
        const sim::Span h2d = machine_.schedule_h2d(
            rgpu, bytes,
            cut_through_ready(hc, sim::transfer_time(bytes, arch.bw_nvlink_cpu_gpu * arch.eff_nvlink)));
        span = {hc.start, h2d.end};
      }
    } else {
      // Inter-node, the profiled implementation runs its internal copies on
      // the devices' *default streams* and brackets them with device
      // synchronization (§IV-D) — the overlap-killing behaviour behind the
      // Fig. 12c degradation. Modeled below via device_ready_barrier and
      // occupy_default_stream.
      ready = device_ready_barrier(send, recv, ready);
      sim::Time r = ready;
      sim::Time begin = 0;
      sim::Span prev{r, r};
      if (dev_s) {
        prev = machine_.schedule_d2h(sgpu, bytes, r);
        begin = prev.start;
      }
      const sim::Duration net_dur = sim::transfer_time(bytes, arch.bw_nic * arch.eff_nic);
      const sim::Span net =
          machine_.schedule_internode(node_s, node_r, bytes, dev_s ? cut_through_ready(prev, net_dur) : r);
      if (begin == 0) begin = net.start;
      prev = net;
      if (dev_r) {
        const sim::Duration h2d_dur =
            sim::transfer_time(bytes, arch.bw_nvlink_cpu_gpu * arch.eff_nvlink);
        prev = machine_.schedule_h2d(rgpu, bytes, cut_through_ready(prev, h2d_dur));
      }
      span = {begin, prev.end};
      if (dev_s) runtime_.occupy_default_stream(sgpu, span.end);
      if (dev_r) runtime_.occupy_default_stream(rgpu, span.end);
    }
  } else {
    // Host path.
    if (same_node) {
      // Shared-memory double copy: the sender's core copies into the shm
      // segment, the receiver's core copies out (large-message protocol of
      // a typical MPI). Two serial single-core copies are what make the
      // STAGED regime so expensive with few ranks per node (Fig. 12a).
      const sim::Span in = machine_.schedule_host_copy(cpu(send.src), bytes, ready);
      const sim::Span out = machine_.schedule_host_copy(cpu(recv.dst), bytes, in.end);
      span = {in.start, out.end};
    } else {
      span = machine_.schedule_internode(node_s, node_r, bytes, ready);
    }
  }

  // Move real payload bytes (skipped when either side is phantom).
  std::byte* dp = payload_ptr(recv.payload);
  const std::byte* sp =
      send.buffered ? (send.staged.empty() ? nullptr : send.staged.data()) : payload_ptr(send.payload);
  if (dp != nullptr && sp != nullptr && bytes > 0) std::memcpy(dp, sp, bytes);

  if (!send.buffered) {
    send.matched = true;
    send.complete_at = span.end;
  }
  recv.matched = true;
  recv.complete_at = span.end;

  if (recorder_ != nullptr) {
    const std::uint64_t wire = recorder_->record(
        "mpi.r" + std::to_string(send.src) + "->r" + std::to_string(recv.dst),
        (dev_s || dev_r ? "ca-msg " : "msg ") + std::to_string(bytes) + "B", span.start,
        span.end);
    if (recorder_->causal()) {
      send.wire_span = recv.wire_span = wire;
      if (send.ctx.valid()) {
        recorder_->add_flow(send.ctx.span, wire, send.serial,
                            "msg tag=" + std::to_string(send.tag));
      }
      recv.ctx = send.ctx;  // the receive adopts the sender's context
    }
  }
  if (checker_ != nullptr) {
    checker_->on_match(msg_info(send), msg_info(recv), /*delivered=*/true, same_node);
  }
  if (telemetry_ != nullptr) {
    telemetry_->on_mpi_match(send.src, recv.dst, send.tag, bytes, send.attempts, same_node,
                             span.end);
  }
  if (watch_ != nullptr) {
    watch_->on_message(send.src, recv.dst, node_s, node_r, dev_s || dev_r, bytes, wire_ready,
                       span);
  }

  rank_gates_[static_cast<std::size_t>(send.src)]->notify_all(eng_);
  rank_gates_[static_cast<std::size_t>(recv.dst)]->notify_all(eng_);
}

void Job::cancel_unmatched(Request::Record& rec) {
  auto& queue = rec.is_send ? unmatched_sends_[static_cast<std::size_t>(rec.dst)]
                            : unmatched_recvs_[static_cast<std::size_t>(rec.dst)];
  queue.erase(std::remove_if(queue.begin(), queue.end(),
                             [&](const auto& q) { return q.get() == &rec; }),
              queue.end());
  rec.cancelled = true;
  if (checker_ != nullptr) checker_->on_request_cancel(rec.serial);
}

void Job::wait(Request& r, int me) {
  if (!r.valid()) throw std::logic_error("simpi: wait on an invalid Request");
  auto& rec = *r.rec_;
  if (rec.persistent && !rec.active) return;  // MPI: wait on inactive is a no-op
  const fault::Injector* inj = machine_.fault_injector();
  const int peer = rec.is_send ? rec.dst : rec.src;
  const std::string detail = wait_detail(rec.is_send, rec.src, rec.dst, rec.tag);
  // Two bounds make an unmatched wait finite under fault injection: the
  // retry budget (a live peer that wanted to match would have done so within
  // it) and the failure detector (a dead peer can never match after its
  // failure instant plus the detection bound).
  sim::Time retry_deadline = fault::kForever;
  if (!rec.matched && inj != nullptr && inj->retry_policy().enabled()) {
    retry_deadline = std::max(eng_.now(), rec.post_time) + retry_budget(inj->retry_policy());
  }
  sim::Time dead_deadline = fault::kForever;
  const sim::Time peer_fail = rank_fail_time(peer);
  if (!rec.matched && inj != nullptr && peer_fail != fault::kForever) {
    dead_deadline = std::max(rec.post_time, peer_fail) + inj->detect_latency();
  }
  while (!rec.matched) {
    if (rec.epoch < comm_epoch_) {
      // The communicator was revoked while this operation was pending.
      cancel_unmatched(rec);
      const std::string what = "simpi: " + detail + " revoked at t=" +
                               sim::format_duration(eng_.now()) + " (communicator revoked)";
      if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
      throw TransportError(TransportError::Code::kRevoked, peer, rec.tag, what);
    }
    const sim::Time deadline = std::min(retry_deadline, dead_deadline);
    if (deadline == fault::kForever) {
      rank_gates_[static_cast<std::size_t>(me)]->wait(eng_, detail);
      continue;
    }
    const bool notified =
        rank_gates_[static_cast<std::size_t>(me)]->wait_until(eng_, deadline, detail);
    if (notified || rec.matched) continue;
    cancel_unmatched(rec);
    if (eng_.now() >= dead_deadline) {
      const std::string what = "simpi: " + detail + " peer rank " + std::to_string(peer) +
                               " died at t=" + sim::format_duration(peer_fail) +
                               " (detected t=" + sim::format_duration(eng_.now()) + ")";
      if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
      throw TransportError(TransportError::Code::kPeerDead, peer, rec.tag, what);
    }
    const std::string what = "simpi: " + detail + " timed out at t=" +
                             sim::format_duration(eng_.now()) + " (no matching peer)";
    if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
    throw TransportError(TransportError::Code::kTimeout, peer, rec.tag, what);
  }
  eng_.sleep_until(rec.complete_at);
  rec.active = false;  // persistent: back to inactive; handle stays valid
  if (checker_ != nullptr) checker_->on_request_done(rec.serial);
  note_completion(rec);
  if (rec.failed) {
    const std::string what = "simpi: " + wait_detail(rec.is_send, rec.src, rec.dst, rec.tag) +
                             " lost after " + std::to_string(rec.attempts) +
                             " attempts (retries exhausted)";
    if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
    throw TransportError(TransportError::Code::kRetriesExhausted,
                         rec.is_send ? rec.dst : rec.src, rec.tag, what);
  }
}

bool Job::test(Request& r) {
  if (!r.valid()) throw std::logic_error("simpi: test on an invalid Request");
  auto& rec = *r.rec_;
  if (rec.persistent && !rec.active) return true;  // inactive: trivially complete
  const bool complete = rec.matched && rec.complete_at <= eng_.now();
  if (complete) {
    rec.active = false;
    if (checker_ != nullptr) checker_->on_request_done(rec.serial);
    note_completion(rec);
  }
  return complete;
}

int Job::wait_any(std::vector<Request>& rs, int me) {
  for (;;) {
    int best = -1;
    sim::Time best_t = 0;
    bool any_valid = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (!rs[i].valid()) continue;
      // Inactive persistent entries carry stale completion state from the
      // previous iteration; treat them like REQUEST_NULL here.
      if (rs[i].rec_->persistent && !rs[i].rec_->active) continue;
      any_valid = true;
      const auto& rec = *rs[i].rec_;
      if (rec.matched && (best < 0 || rec.complete_at < best_t)) {
        best = static_cast<int>(i);
        best_t = rec.complete_at;
      }
    }
    if (!any_valid) return -1;
    if (best >= 0) {
      auto rec = rs[static_cast<std::size_t>(best)].rec_;
      eng_.sleep_until(best_t);
      rec->active = false;
      rs[static_cast<std::size_t>(best)].rec_.reset();
      if (checker_ != nullptr) checker_->on_request_done(rec->serial);
      note_completion(*rec);
      if (rec->failed) {
        const std::string what = "simpi: " +
                                 wait_detail(rec->is_send, rec->src, rec->dst, rec->tag) +
                                 " lost after " + std::to_string(rec->attempts) +
                                 " attempts (retries exhausted)";
        if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
        throw TransportError(TransportError::Code::kRetriesExhausted,
                             rec->is_send ? rec->dst : rec->src, rec->tag, what);
      }
      return best;
    }
    // No completion available. A pending entry from a revoked epoch or
    // toward a dead peer will never complete; surface it instead of parking
    // forever.
    const fault::Injector* inj = machine_.fault_injector();
    sim::Time dead_deadline = fault::kForever;
    std::size_t dead_idx = 0;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (!rs[i].valid()) continue;
      auto& rec = *rs[i].rec_;
      if (rec.persistent && !rec.active) continue;
      if (rec.matched) continue;
      if (rec.epoch < comm_epoch_) {
        cancel_unmatched(rec);
        const std::string what = "simpi: " +
                                 wait_detail(rec.is_send, rec.src, rec.dst, rec.tag) +
                                 " revoked at t=" + sim::format_duration(eng_.now()) +
                                 " (communicator revoked)";
        if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
        throw TransportError(TransportError::Code::kRevoked,
                             rec.is_send ? rec.dst : rec.src, rec.tag, what);
      }
      const int peer = rec.is_send ? rec.dst : rec.src;
      const sim::Time pf = rank_fail_time(peer);
      if (inj != nullptr && pf != fault::kForever) {
        const sim::Time d = std::max(rec.post_time, pf) + inj->detect_latency();
        if (d < dead_deadline) {
          dead_deadline = d;
          dead_idx = i;
        }
      }
    }
    if (dead_deadline == fault::kForever) {
      rank_gates_[static_cast<std::size_t>(me)]->wait(eng_, "waitany");
      continue;
    }
    const bool notified =
        rank_gates_[static_cast<std::size_t>(me)]->wait_until(eng_, dead_deadline, "waitany");
    if (notified) continue;
    auto& rec = *rs[dead_idx].rec_;
    if (rec.matched) continue;  // an in-flight pre-death message still delivered
    cancel_unmatched(rec);
    const int peer = rec.is_send ? rec.dst : rec.src;
    const std::string what = "simpi: " + wait_detail(rec.is_send, rec.src, rec.dst, rec.tag) +
                             " peer rank " + std::to_string(peer) + " died at t=" +
                             sim::format_duration(rank_fail_time(peer)) +
                             " (detected t=" + sim::format_duration(eng_.now()) + ")";
    if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
    throw TransportError(TransportError::Code::kPeerDead, peer, rec.tag, what);
  }
}

void Job::release_barrier_locked() {
  barrier_arrived_ = 0;
  const auto& arch = machine_.arch();
  const sim::Duration lat = machine_.num_nodes() > 1 ? arch.lat_mpi_inter : arch.lat_mpi_intra;
  barrier_release_ = barrier_max_arrival_ + 2 * ceil_log2(live_count()) * lat;
  barrier_max_arrival_ = 0;
  ++barrier_generation_;
  barrier_gate_->notify_all(eng_);
}

void Job::barrier(int me) {
  (void)me;
  const std::uint64_t gen = barrier_generation_;
  if (checker_ != nullptr) checker_->on_barrier_arrive(gen);
  barrier_max_arrival_ = std::max(barrier_max_arrival_, eng_.now());
  // Collectives count to the live target: retired ranks are excluded, so
  // post-recovery barriers over the shrunk job complete normally.
  if (++barrier_arrived_ >= live_count()) {
    release_barrier_locked();
    eng_.sleep_until(barrier_release_);
  } else {
    const fault::Injector* inj = machine_.fault_injector();
    while (barrier_generation_ == gen) {
      // A scripted-but-unretired dead rank can never arrive; bound the wait
      // by the failure detector so the barrier raises kPeerDead instead of
      // deadlocking. (Once the rank is retired the target shrinks instead.)
      sim::Time hazard = fault::kForever;
      int dead_rank = -1;
      if (inj != nullptr && inj->has_terminal_failures()) {
        for (int r = 0; r < world_size_; ++r) {
          if (retired_[static_cast<std::size_t>(r)]) continue;
          const sim::Time pf = rank_fail_time(r);
          if (pf == fault::kForever) continue;
          const sim::Time d = pf + inj->detect_latency();
          if (d < hazard) {
            hazard = d;
            dead_rank = r;
          }
        }
      }
      if (hazard == fault::kForever) {
        barrier_gate_->wait(eng_, "barrier");
        continue;
      }
      const bool notified = barrier_gate_->wait_until(eng_, hazard, "barrier");
      if (notified || barrier_generation_ != gen) continue;
      // Unwind our arrival so a later (post-retirement) barrier counts
      // cleanly, then surface the failure.
      --barrier_arrived_;
      const std::string what = "simpi: barrier with dead rank " + std::to_string(dead_rank) +
                               " (died t=" + sim::format_duration(rank_fail_time(dead_rank)) +
                               ", detected t=" + sim::format_duration(eng_.now()) + ")";
      if (telemetry_ != nullptr) telemetry_->on_transport_error(what, eng_.now());
      throw TransportError(TransportError::Code::kPeerDead, dead_rank, /*tag=*/-1, what);
    }
    eng_.sleep_until(barrier_release_);
  }
  if (checker_ != nullptr) checker_->on_barrier_release(gen);
}

// --- ULFM-style failure semantics ------------------------------------------

sim::Time Job::rank_fail_time(int r) const {
  const fault::Injector* inj = machine_.fault_injector();
  if (inj == nullptr || !inj->has_terminal_failures()) return fault::kForever;
  sim::Time t = inj->node_fail_time(node_of_rank(r));
  const int gpn = machine_.gpus_per_node();
  const int gpr = gpn / ranks_per_node_;
  if (gpr > 0) {
    // The rank dies when its last GPU dies: it can no longer make progress.
    const int base = node_of_rank(r) * gpn + (r % ranks_per_node_) * gpr;
    sim::Time all_gpus = 0;
    for (int g = 0; g < gpr; ++g) {
      all_gpus = std::max(all_gpus, inj->gpu_fail_time(base + g));
    }
    t = std::min(t, all_gpus);
  }
  return t;
}

bool Job::rank_alive(int r) const { return rank_fail_time(r) > eng_.now(); }

void Job::revoke() {
  if (revoked_) return;
  revoked_ = true;
  ++comm_epoch_;
  // Fresh incident, fresh drain ledger: acks left over from a previous
  // recovery must not let a dying rank depart before the survivors of
  // *this* incident have finished recovering.
  drain_acks_ = 0;
  if (recorder_ != nullptr) {
    recorder_->record("recover", "revoke epoch=" + std::to_string(comm_epoch_), eng_.now(),
                      eng_.now());
  }
  for (auto& g : rank_gates_) g->notify_all(eng_);
  barrier_gate_->notify_all(eng_);
}

void Job::retire_rank(int r) {
  if (r < 0 || r >= world_size_) throw std::out_of_range("simpi: retire_rank out of range");
  if (retired_[static_cast<std::size_t>(r)]) return;
  retired_[static_cast<std::size_t>(r)] = true;
  ++retired_count_;
  // Purge every unmatched request the dead rank posted so nothing matches
  // against a ghost, and so the checker sees them resolved (cancelled).
  for (auto* queues : {&unmatched_sends_, &unmatched_recvs_}) {
    for (auto& q : *queues) {
      for (auto it = q.begin(); it != q.end();) {
        Request::Record& rec = **it;
        const int poster = rec.is_send ? rec.src : rec.dst;
        if (poster == r) {
          rec.cancelled = true;
          if (checker_ != nullptr) checker_->on_request_cancel(rec.serial);
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (recorder_ != nullptr) {
    recorder_->record("recover", "retire rank " + std::to_string(r), eng_.now(), eng_.now());
  }
  // A barrier blocked only on the dead rank releases here, in the retiring
  // caller's context.
  if (barrier_arrived_ > 0 && barrier_arrived_ >= live_count()) {
    barrier_max_arrival_ = std::max(barrier_max_arrival_, eng_.now());
    release_barrier_locked();
  }
  for (auto& g : rank_gates_) g->notify_all(eng_);
  barrier_gate_->notify_all(eng_);
  drain_gate_->notify_all(eng_);
}

void Job::await_drain(int me) {
  // A dying rank must first have been retired by its incident's recovery:
  // drain acks left over from an *earlier* incident can otherwise satisfy
  // the count before any survivor has even noticed this rank's death.
  while (!rank_retired(me) || drain_acks_ < live_count()) {
    drain_gate_->wait(eng_, "rank " + std::to_string(me) + " awaiting drain");
  }
}

void Job::release_drained(int me) {
  (void)me;
  ++drain_acks_;
  drain_gate_->notify_all(eng_);
}

void Job::reset(Request& r) {
  if (!r.valid()) return;
  auto rec_sp = r.rec_;
  auto& rec = *rec_sp;
  if (rec.persistent && !rec.active) return;  // nothing in flight
  if (!rec.matched) {
    if (!rec.cancelled) cancel_unmatched(rec);
    rec.active = false;
  } else {
    // Drain rather than abandon: sleeping to the completion instant keeps
    // later buffer reuse ordered after the modeled transfer, so the
    // happens-before checker stays clean. Failed completions do not throw
    // here — reset is the abort path.
    if (rec.complete_at > eng_.now()) eng_.sleep_until(rec.complete_at);
    rec.active = false;
    if (checker_ != nullptr) checker_->on_request_done(rec.serial);
    note_completion(rec);
  }
  if (!rec.persistent) r.rec_.reset();
}

// --- Comm ------------------------------------------------------------------

Request Comm::isend(const Payload& p, int dst, int tag) {
  return Request(job_->post(true, world_rank(), members_[static_cast<std::size_t>(dst)], tag, p));
}

Request Comm::irecv(const Payload& p, int src, int tag) {
  return Request(job_->post(false, world_rank(), members_[static_cast<std::size_t>(src)], tag, p));
}

void Comm::send(const Payload& p, int dst, int tag) {
  Request r = isend(p, dst, tag);
  wait(r);
}

void Comm::recv(const Payload& p, int src, int tag) {
  Request r = irecv(p, src, tag);
  wait(r);
}

Request Comm::send_init(const Payload& p, int dst, int tag) {
  return Request(job_->init(true, world_rank(), members_[static_cast<std::size_t>(dst)], tag, p));
}

Request Comm::recv_init(const Payload& p, int src, int tag) {
  return Request(job_->init(false, world_rank(), members_[static_cast<std::size_t>(src)], tag, p));
}

void Comm::start(Request& r) { job_->start(r); }

void Comm::startall(std::vector<Request>& rs) {
  for (auto& r : rs) {
    if (r.valid()) job_->start(r);
  }
}

void Comm::request_free(Request& r) { job_->request_free(r); }

void Comm::wait(Request& r) { job_->wait(r, world_rank()); }

bool Comm::test(Request& r) { return job_->test(r); }

void Comm::waitall(std::vector<Request>& rs) {
  for (auto& r : rs) {
    if (r.valid()) wait(r);
  }
}

int Comm::wait_any(std::vector<Request>& rs) { return job_->wait_any(rs, world_rank()); }

void Comm::barrier() {
  // The world communicator (or its post-failure shrink, which is the whole
  // live set) uses the single counting barrier with fault-hazard detection.
  if (size() == job_->world_size() || size() == job_->live_count()) {
    job_->barrier(world_rank());
    return;
  }
  // Sub-communicator (tenant) barrier: log-round dissemination over the
  // members. Round k sends one eager byte to (rank + 2^k) mod n and receives
  // from (rank - 2^k) mod n; after ceil(log2(n)) rounds every rank has
  // transitively heard from every other, so none can leave before all have
  // arrived. Per-channel FIFO matching keeps back-to-back barriers on one
  // communicator from aliasing: a fast rank's round-k byte of the next
  // barrier queues behind its round-k byte of this one.
  const int n = size();
  if (n <= 1) return;
  std::byte token{};
  std::byte sink{};
  int round = 0;
  for (int hop = 1; hop < n; hop *= 2, ++round) {
    const int to = (rank() + hop) % n;
    const int from = (rank() - hop + n) % n;
    const int tag = tagspace::collective_tag(kSlotBarrierRound0 + round);
    Request s = isend(Payload::raw_host(&token, 1), to, tag);
    this->recv(Payload::raw_host(&sink, 1), from, tag);
    wait(s);
  }
}

void Comm::allgather(const void* send, void* recv, std::size_t bytes) {
  // Simple setup-path implementation: everyone sends to sub-rank 0, which
  // broadcasts the gathered vector back over point-to-point messages. Tags
  // live in the reserved collective window — the old ad-hoc -1001/-1002 sat
  // inside the colocated-setup span and could alias an IPC handshake.
  const int kTagGather = tagspace::collective_tag(kSlotGather);
  const int kTagBcast = tagspace::collective_tag(kSlotBcast);
  auto* out = static_cast<std::byte*>(recv);
  if (rank() == 0) {
    std::memcpy(out, send, bytes);
    for (int r = 1; r < size(); ++r) {
      this->recv(Payload::raw_host(out + static_cast<std::size_t>(r) * bytes, bytes), r, kTagGather);
    }
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size() - 1));
    for (int r = 1; r < size(); ++r) {
      reqs.push_back(isend(Payload::raw_host(out, bytes * static_cast<std::size_t>(size())), r, kTagBcast));
    }
    waitall(reqs);
  } else {
    this->send(Payload::raw_host(const_cast<void*>(send), bytes), 0, kTagGather);
    this->recv(Payload::raw_host(out, bytes * static_cast<std::size_t>(size())), 0, kTagBcast);
  }
}

Comm Comm::split(int color, int key) const {
  // Gather (color, key, world_rank) from everyone, then locally compute the
  // members of our color group ordered by (key, world_rank).
  struct Entry {
    int color, key, wrank;
  };
  Entry mine{color, key, world_rank()};
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  const_cast<Comm*>(this)->allgather(&mine, all.data(), sizeof(Entry));
  std::vector<Entry> group;
  for (const auto& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::stable_sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.wrank < b.wrank;
  });
  std::vector<int> members;
  members.reserve(group.size());
  int my_sub = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    members.push_back(group[i].wrank);
    if (group[i].wrank == world_rank()) my_sub = static_cast<int>(i);
  }
  return Comm(job_, std::move(members), my_sub);
}

Comm Comm::shrink() const {
  std::vector<int> members;
  members.reserve(members_.size());
  int my_sub = -1;
  for (const int wr : members_) {
    if (job_->rank_fail_time(wr) != fault::kForever) continue;
    if (wr == world_rank()) my_sub = static_cast<int>(members.size());
    members.push_back(wr);
  }
  return Comm(job_, std::move(members), my_sub);
}

double Comm::wtime() const { return sim::to_seconds(job_->engine().now()); }

}  // namespace stencil::simpi
