#include "simtime/time.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace stencil::sim {

Duration transfer_time(std::uint64_t bytes, double gib_per_s) noexcept {
  if (gib_per_s <= 0.0) return 0;
  const double seconds = static_cast<double>(bytes) / (gib_per_s * 1024.0 * 1024.0 * 1024.0);
  return from_seconds(seconds);
}

std::string format_duration(Duration d) {
  std::array<char, 64> buf{};
  const double abs = std::abs(static_cast<double>(d));
  if (abs >= static_cast<double>(kSecond)) {
    std::snprintf(buf.data(), buf.size(), "%.3f s", to_seconds(d));
  } else if (abs >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf.data(), buf.size(), "%.3f ms", to_millis(d));
  } else if (abs >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf.data(), buf.size(), "%.3f us", to_micros(d));
  } else {
    std::snprintf(buf.data(), buf.size(), "%lld ns", static_cast<long long>(d));
  }
  return std::string(buf.data());
}

}  // namespace stencil::sim
