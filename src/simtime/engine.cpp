#include "simtime/engine.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace stencil::sim {

namespace {
struct TlsBinding {
  Engine* engine = nullptr;
  int actor_id = -1;
};
thread_local TlsBinding tls;
}  // namespace

std::string DeadlockReport::to_string() const {
  std::ostringstream oss;
  oss << "simulation deadlock at t=" << format_duration(at) << ":";
  for (const auto& b : actors) {
    oss << " [" << (b.actor.empty() ? "actor" : b.actor) << " <- gate '" << b.resource << "'";
    if (!b.detail.empty()) oss << " (" << b.detail << ")";
    oss << " since t=" << format_duration(b.blocked_at) << "]";
  }
  return oss.str();
}

DeadlockError::DeadlockError(DeadlockReport rep)
    : std::runtime_error(rep.to_string()),
      report_(std::make_shared<const DeadlockReport>(std::move(rep))) {}

Engine* Engine::current() { return tls.engine; }

int Engine::actor_id() const {
  check_in_actor();
  return tls.actor_id;
}

const std::string& Engine::actor_name() const {
  check_in_actor();
  return actors_[static_cast<std::size_t>(tls.actor_id)]->name;
}

void Engine::check_in_actor() const {
  if (tls.engine != this || tls.actor_id < 0) {
    throw std::logic_error("Engine call outside of an actor body");
  }
}

void Engine::run(std::vector<std::function<void()>> bodies, std::vector<std::string> names) {
  if (bodies.empty()) return;
  if (tls.engine != nullptr) {
    throw std::logic_error("Engine::run() may not be called from inside an actor");
  }

  std::unique_lock<std::mutex> lk(mu_);
  if (live_actors_ != 0) {
    throw std::logic_error("Engine::run() is already active");
  }
  shutdown_ = false;
  first_error_ = nullptr;
  actors_.clear();
  actors_.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    auto a = std::make_unique<Actor>();
    a->body = std::move(bodies[i]);
    a->name = i < names.size() ? std::move(names[i]) : std::string{};
    a->state = State::kTimed;
    a->wake_time = now_;
    a->seq = next_seq_++;
    actors_.push_back(std::move(a));
  }
  live_actors_ = static_cast<int>(actors_.size());

  // Spawn threads; each parks immediately until it receives the token.
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    actors_[i]->thread = std::thread([this, i] { actor_main(static_cast<int>(i)); });
  }

  // Hand the token to the first actor and wait for the whole cohort.
  Actor* first = pick_next_locked();
  assert(first != nullptr);
  wake_locked(*first);
  run_cv_.wait(lk, [this] { return live_actors_ == 0; });

  lk.unlock();
  for (auto& a : actors_) {
    if (a->thread.joinable()) a->thread.join();
  }
  lk.lock();

  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void Engine::actor_main(int id) {
  tls.engine = this;
  tls.actor_id = id;
  Actor& self = *actors_[static_cast<std::size_t>(id)];

  {
    // Park until the scheduler grants the token the first time.
    std::unique_lock<std::mutex> lk(mu_);
    self.cv.wait(lk, [&] { return self.token; });
    self.token = false;
    self.state = State::kRunning;
  }

  std::exception_ptr err;
  if (!shutdown_) {
    try {
      self.body();
    } catch (const SimulationAborted&) {
      // Unwinding due to another actor's failure; not a new error.
    } catch (...) {
      err = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  if (err) begin_shutdown_locked(err);
  self.state = State::kDone;
  --live_actors_;
  if (live_actors_ == 0) {
    run_cv_.notify_all();
  } else {
    Actor* next = pick_next_locked();
    if (next != nullptr) {
      wake_locked(*next);
    } else if (!shutdown_) {
      // Every remaining actor is gate-blocked: they can never wake.
      report_deadlock_locked();
    }
  }
  tls.engine = nullptr;
  tls.actor_id = -1;
}

void Engine::sleep_for(Duration d) {
  if (d <= 0) return;
  sleep_until(now_ + d);
}

void Engine::sleep_until(Time t) {
  check_in_actor();
  std::unique_lock<std::mutex> lk(mu_);
  if (shutdown_) throw SimulationAborted("simulation aborted during sleep");
  if (t <= now_) return;
  Actor& self = *actors_[static_cast<std::size_t>(tls.actor_id)];
  self.wake_time = t;
  self.seq = next_seq_++;
  block_and_reschedule(lk, self, State::kTimed);
}

void Engine::yield() {
  check_in_actor();
  std::unique_lock<std::mutex> lk(mu_);
  if (shutdown_) throw SimulationAborted("simulation aborted during yield");
  Actor& self = *actors_[static_cast<std::size_t>(tls.actor_id)];
  self.wake_time = now_;
  self.seq = next_seq_++;  // go to the back of the same-time queue
  block_and_reschedule(lk, self, State::kTimed);
}

void Engine::block_and_reschedule(std::unique_lock<std::mutex>& lk, Actor& self, State state) {
  self.state = state;
  Actor* next = pick_next_locked();
  if (next == &self) {
    // Fast path: we are still the best candidate; keep the token without a
    // thread handoff.
    self.state = State::kRunning;
    return;
  }
  if (next != nullptr) {
    wake_locked(*next);
  } else if (!shutdown_) {
    report_deadlock_locked();
  }
  self.cv.wait(lk, [&] { return self.token; });
  self.token = false;
  self.state = State::kRunning;
  if (shutdown_) throw SimulationAborted("simulation aborted while blocked");
}

Engine::Actor* Engine::pick_next_locked() {
  Actor* best = nullptr;
  std::size_t queued = 0;
  for (const auto& a : actors_) {
    if (a->state != State::kTimed) continue;
    ++queued;
    if (best == nullptr || a->wake_time < best->wake_time ||
        (a->wake_time == best->wake_time && a->seq < best->seq)) {
      best = a.get();
    }
  }
  if (best != nullptr) {
    ++events_processed_;
    if (queued > max_run_queue_depth_) max_run_queue_depth_ = queued;
    if (best->wake_time > now_) now_ = best->wake_time;
  }
  return best;
}

void Engine::wake_locked(Actor& a) {
  ++context_switches_;
  a.token = true;
  a.cv.notify_one();
}

void Engine::report_deadlock_locked() {
  DeadlockReport rep;
  rep.at = now_;
  for (const auto& a : actors_) {
    if (a->state != State::kGateBlocked) continue;
    rep.actors.push_back(BlockedActorInfo{a->name.empty() ? "actor" : a->name,
                                          a->gate != nullptr ? a->gate->name() : "?",
                                          a->block_detail, a->blocked_at});
  }
  if (watchdog_) watchdog_(rep);
  begin_shutdown_locked(std::make_exception_ptr(DeadlockError(std::move(rep))));
}

void Engine::begin_shutdown_locked(std::exception_ptr err) {
  if (!first_error_) first_error_ = err;
  if (shutdown_) return;
  shutdown_ = true;
  // Release every blocked actor so it can unwind with SimulationAborted.
  for (const auto& a : actors_) {
    if (a->state == State::kTimed || a->state == State::kGateBlocked) {
      a->token = true;
      a->cv.notify_one();
    }
  }
}

void Engine::set_block_detail(std::string detail) {
  check_in_actor();
  std::unique_lock<std::mutex> lk(mu_);
  actors_[static_cast<std::size_t>(tls.actor_id)]->block_detail = std::move(detail);
}

void Gate::wait(Engine& eng, std::string detail) {
  eng.check_in_actor();
  std::unique_lock<std::mutex> lk(eng.mu_);
  if (eng.shutdown_) throw SimulationAborted("simulation aborted during gate wait");
  Engine::Actor& self = *eng.actors_[static_cast<std::size_t>(tls.actor_id)];
  self.gate = this;
  if (!detail.empty()) self.block_detail = std::move(detail);
  self.blocked_at = eng.now_;
  waiters_.push_back(&self);
  eng.block_and_reschedule(lk, self, Engine::State::kGateBlocked);
  self.gate = nullptr;
  // NOTE: notify_all() removes us from waiters_; if we are unwinding due to
  // shutdown we may still be registered, which is harmless.
}

bool Gate::wait_until(Engine& eng, Time deadline, std::string detail) {
  eng.check_in_actor();
  std::unique_lock<std::mutex> lk(eng.mu_);
  if (eng.shutdown_) throw SimulationAborted("simulation aborted during gate wait");
  if (deadline <= eng.now_) return false;  // already expired; caller re-checks
  Engine::Actor& self = *eng.actors_[static_cast<std::size_t>(tls.actor_id)];
  self.gate = this;
  if (!detail.empty()) self.block_detail = std::move(detail);
  self.blocked_at = eng.now_;
  self.gate_notified = false;
  self.wake_time = deadline;
  self.seq = eng.next_seq_++;
  waiters_.push_back(&self);
  // Timed, not gate-blocked: the deadline guarantees a wakeup, so this
  // waiter never participates in a deadlock.
  eng.block_and_reschedule(lk, self, Engine::State::kTimed);
  const bool notified = self.gate_notified;
  if (!notified) {
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &self), waiters_.end());
  }
  self.gate = nullptr;
  return notified;
}

void Gate::notify_all(Engine& eng) {
  eng.check_in_actor();
  std::unique_lock<std::mutex> lk(eng.mu_);
  for (Engine::Actor* a : waiters_) {
    if (a->state == Engine::State::kGateBlocked || a->state == Engine::State::kTimed) {
      a->state = Engine::State::kTimed;
      a->wake_time = eng.now_;
      a->seq = eng.next_seq_++;
      a->gate_notified = true;
    }
  }
  waiters_.clear();
}

}  // namespace stencil::sim
