#pragma once

#include <cstdint>
#include <string>

namespace stencil::sim {

/// Virtual time in integer nanoseconds since simulation start.
///
/// Integer nanoseconds (rather than floating-point seconds) keep the engine
/// bit-deterministic: scheduling decisions compare and add Time values, and
/// integer arithmetic has no rounding sensitivity to operation order.
using Time = std::int64_t;

/// A span of virtual time, also in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Convert a duration to fractional seconds (for reporting only; the engine
/// itself never leaves integer arithmetic).
constexpr double to_seconds(Duration d) noexcept { return static_cast<double>(d) * 1e-9; }
constexpr double to_millis(Duration d) noexcept { return static_cast<double>(d) * 1e-6; }
constexpr double to_micros(Duration d) noexcept { return static_cast<double>(d) * 1e-3; }

/// Build a Duration from fractional seconds, rounding to the nearest ns.
constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Time a transfer of `bytes` takes on a link of `gib_per_s` GiB/s, with no
/// latency term. Uses double math internally but rounds once, so the result
/// is a plain integer duration.
Duration transfer_time(std::uint64_t bytes, double gib_per_s) noexcept;

/// Render a duration like "1.234 ms" for logs and benchmark tables.
std::string format_duration(Duration d);

}  // namespace stencil::sim
