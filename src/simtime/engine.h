#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "simtime/time.h"

namespace stencil::sim {

class Gate;

/// Thrown out of sleep/wait calls in secondary actors when the simulation is
/// shutting down because another actor failed (or a deadlock was detected).
/// Actor bodies should let it propagate.
class SimulationAborted : public std::runtime_error {
 public:
  explicit SimulationAborted(const std::string& what) : std::runtime_error(what) {}
};

/// One actor stuck in a deadlock: which gate it is parked on, the
/// caller-supplied reason (e.g. "recv src=1 tag=7"), and when it blocked.
struct BlockedActorInfo {
  std::string actor;
  std::string resource;  // gate name
  std::string detail;    // what the actor was waiting for, if it said
  Time blocked_at = 0;
};

/// Structured diagnostic built when every live actor is gate-blocked and no
/// timed wakeup exists. Carried by DeadlockError and handed to the watchdog.
struct DeadlockReport {
  Time at = 0;
  std::vector<BlockedActorInfo> actors;
  std::string to_string() const;
};

/// Thrown (from the scheduling actor) when every live actor is blocked on a
/// Gate and no timed wakeup exists: virtual time can never advance again.
/// report() identifies each blocked actor, the gate it waits on, and the
/// per-actor detail string (simpi fills in the peer rank and tag).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(DeadlockReport rep);
  const DeadlockReport& report() const { return *report_; }

 private:
  std::shared_ptr<const DeadlockReport> report_;  // shared: exceptions copy
};

/// Deterministic discrete-event virtual-time engine.
///
/// Each *actor* (e.g. a simulated MPI rank) is an OS thread, but exactly one
/// actor runs at a time: when the running actor blocks (sleep_until, Gate
/// wait, or finishing), it selects the next actor under a global mutex and
/// hands the token over. Selection is by (wake_time, admission sequence), so
/// a given program produces a bit-identical schedule on every run regardless
/// of OS thread timing.
///
/// Virtual time is global and monotonically non-decreasing. Code executed by
/// an actor between engine calls takes zero virtual time; model CPU cost by
/// calling sleep_for() explicitly.
class Engine {
 public:
  Engine() = default;
  ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run one actor per body, to completion. Returns once all actors finish.
  /// If any actor throws, the remaining actors are unwound (their pending
  /// engine calls throw SimulationAborted) and the first exception rethrows
  /// here. May be called repeatedly; virtual time continues from where the
  /// previous run() left off.
  void run(std::vector<std::function<void()>> bodies,
           std::vector<std::string> names = {});

  /// Current virtual time. Valid from actor bodies and between run() calls.
  Time now() const { return now_; }

  /// Index of the calling actor within the bodies vector. Must be called
  /// from an actor body.
  int actor_id() const;

  /// Name of the calling actor (empty if none was given).
  const std::string& actor_name() const;

  int actor_count() const { return static_cast<int>(actors_.size()); }

  /// Block the calling actor for d nanoseconds of virtual time (d <= 0 is a
  /// no-op that does not reschedule).
  void sleep_for(Duration d);

  /// Block the calling actor until virtual time t. If t <= now(), returns
  /// immediately without rescheduling.
  void sleep_until(Time t);

  /// Hand the token to other actors runnable at the current virtual time,
  /// resuming after they have each had a turn.
  void yield();

  /// Engine driving the calling thread, or nullptr outside actor bodies.
  static Engine* current();

  /// Number of token handoffs performed so far (scheduling cost metric).
  std::uint64_t context_switches() const { return context_switches_; }

  /// Number of scheduling decisions made so far: every time the engine
  /// picked the next actor to run, including same-actor fast paths that
  /// avoid a thread handoff. The discrete-event analogue of "events
  /// processed".
  std::uint64_t events_processed() const { return events_processed_; }

  /// Largest run-queue depth seen at any scheduling decision: how many
  /// actors held a timed wakeup when the engine picked the next one. A
  /// throughput/pressure signal — deep queues mean many actors contend for
  /// each virtual instant.
  std::size_t max_run_queue_depth() const { return max_run_queue_depth_; }

  /// Events per *virtual* second of progress (0 before time advances).
  /// Derived from deterministic state only, so identical runs report
  /// identical throughput — unlike any wall-clock rate.
  double events_per_virtual_second() const {
    return now_ > 0 ? static_cast<double>(events_processed_) /
                          (static_cast<double>(now_) * 1e-9)
                    : 0.0;
  }

  /// Annotate the calling actor's next block for deadlock diagnostics
  /// (what it is about to wait for). Gate::wait also accepts the detail
  /// directly; this entry point serves multi-step wait loops.
  void set_block_detail(std::string detail);

  /// Observer invoked with the diagnostic just before a detected deadlock
  /// aborts the simulation. Runs under the engine lock on the detecting
  /// actor's thread: it must only inspect/copy the report, never call back
  /// into the engine.
  void set_watchdog(std::function<void(const DeadlockReport&)> cb) {
    watchdog_ = std::move(cb);
  }

 private:
  friend class Gate;

  enum class State {
    kRunning,        // holds the token
    kTimed,          // wake at wake_time
    kGateBlocked,    // waiting on a Gate, no wakeup time
    kDone,
    kUnstarted,
  };

  struct Actor {
    std::function<void()> body;
    std::string name;
    std::thread thread;
    std::condition_variable cv;
    State state = State::kUnstarted;
    Time wake_time = 0;
    std::uint64_t seq = 0;  // admission order for same-time tie-breaks
    bool token = false;     // set by the scheduler; cleared on wakeup
    Gate* gate = nullptr;   // which gate, when kGateBlocked (diagnostics)
    bool gate_notified = false;  // wait_until: woken by notify, not timeout
    std::string block_detail;    // caller-supplied reason for the block
    Time blocked_at = 0;
  };

  void actor_main(int id);
  // Move the calling actor to `state`, pick and wake the next actor, and
  // block until the token returns. Must be entered with mu_ held.
  void block_and_reschedule(std::unique_lock<std::mutex>& lk, Actor& self, State state);
  // Pick the next runnable actor (min wake_time, then min seq); advances
  // virtual time. Returns nullptr when no actor can run.
  Actor* pick_next_locked();
  void wake_locked(Actor& a);
  void begin_shutdown_locked(std::exception_ptr err);
  // Build the diagnostic over gate-blocked actors, feed the watchdog, and
  // begin shutdown with a DeadlockError.
  void report_deadlock_locked();
  void check_in_actor() const;

  mutable std::mutex mu_;
  std::condition_variable run_cv_;  // run() waits here for completion
  std::vector<std::unique_ptr<Actor>> actors_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t context_switches_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t max_run_queue_depth_ = 0;
  int live_actors_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::function<void(const DeadlockReport&)> watchdog_;
};

/// Condition-variable-like wakeup channel bound to an Engine.
///
/// A waiting actor blocks with no scheduled wake time; it becomes runnable
/// (at the notifier's current virtual time) when another actor calls
/// notify_all(). As with std::condition_variable, callers re-check their
/// predicate in a loop:
///
///   while (!pred()) gate.wait(eng);
class Gate {
 public:
  explicit Gate(std::string name = {}) : name_(std::move(name)) {}

  /// Block the calling actor until the next notify_all(). The engine
  /// reports a deadlock if every live actor ends up gate-blocked. `detail`
  /// feeds the deadlock diagnostic (what this wait is for).
  void wait(Engine& eng, std::string detail = {});

  /// Block until notify_all() or virtual time `deadline`, whichever comes
  /// first. Returns true when notified, false on timeout. A timed waiter
  /// always has a scheduled wakeup, so it can never deadlock the engine.
  bool wait_until(Engine& eng, Time deadline, std::string detail = {});

  /// Make all actors currently waiting on this gate runnable at now().
  void notify_all(Engine& eng);

  const std::string& name() const { return name_; }

 private:
  friend class Engine;
  std::string name_;
  std::vector<Engine::Actor*> waiters_;
};

}  // namespace stencil::sim
