#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "simtime/time.h"

namespace stencil::sim {

/// Start/end of one granted occupancy of a Resource.
struct Span {
  Time start = 0;
  Time end = 0;
  Duration duration() const { return end - start; }
};

/// A serially-reusable simulated resource (a link, a copy engine, a kernel
/// queue) with FIFO queueing: an acquisition starts no earlier than both the
/// caller's ready time and the completion of all previously granted work.
///
/// Because actors are token-scheduled and virtual time is globally monotonic,
/// acquire() calls arrive in non-decreasing virtual-time order, so FIFO
/// processing in call order is exact (not an approximation). Contention
/// emerges naturally: two transfers claiming the same link back-to-back
/// serialize; transfers on distinct links overlap.
class Resource {
 public:
  explicit Resource(std::string name = {}) : name_(std::move(name)) {}

  /// Reserve the resource for `dur`, starting no earlier than `ready`.
  /// Returns the completion time. `start` (= completion - dur) is what a
  /// tracer should record as the span begin.
  Time acquire(Time ready, Duration dur) { return acquire_span(ready, dur).end; }

  /// As acquire(), but also reports when the occupancy begins — needed for
  /// cut-through modeling of multi-hop paths, where hop N+1 may begin as
  /// soon as hop N *starts* streaming (plus wire latency), rather than after
  /// it fully completes.
  Span acquire_span(Time ready, Duration dur) {
    const Time start = ready > busy_until_ ? ready : busy_until_;
    busy_until_ = start + (dur > 0 ? dur : 0);
    ++ops_;
    busy_total_ += (dur > 0 ? dur : 0);
    return {start, busy_until_};
  }

  /// Earliest time new work could begin.
  Time busy_until() const { return busy_until_; }

  const std::string& name() const { return name_; }
  std::uint64_t ops() const { return ops_; }
  Duration busy_total() const { return busy_total_; }

  /// Forget all queued work (used between independent measurement runs).
  void reset(Time t = 0) {
    busy_until_ = t;
    ops_ = 0;
    busy_total_ = 0;
  }

 private:
  std::string name_;
  Time busy_until_ = 0;
  std::uint64_t ops_ = 0;
  Duration busy_total_ = 0;
};

}  // namespace stencil::sim
