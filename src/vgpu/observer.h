#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "simtime/time.h"

namespace stencil::vgpu {

class Buffer;
struct Stream;
struct Event;
struct IpcMappedPtr;

/// One byte range of a Buffer touched by an enqueued op. Kernel bodies are
/// opaque to the Runtime, so callers that want race checking declare the
/// ranges their kernels read and write (memcpys derive them automatically).
struct MemAccess {
  const Buffer* buf = nullptr;
  std::size_t offset = 0;
  std::size_t bytes = 0;
  bool write = false;
};

using AccessList = std::vector<MemAccess>;

/// What kind of asynchronous Runtime op an OpInfo describes.
enum class OpKind {
  kKernel,
  kMemcpy,      // memcpy_async (H2D / D2H / D2D same device)
  kMemcpyPeer,  // memcpy_peer_async
  kMemcpyIpc,   // memcpy_to_ipc_async
  kMemcpy3D,    // memcpy3d_peer_async
};

/// Everything an observer learns about one enqueued asynchronous op. All
/// pointers are valid only for the duration of the callback.
struct OpInfo {
  OpKind kind = OpKind::kKernel;
  const Stream* stream = nullptr;
  const std::string* label = nullptr;
  const AccessList* accesses = nullptr;
  sim::Time start = 0;  // when the op begins on its resource
  sim::Time end = 0;    // scheduled completion (virtual time)
};

/// Observer of every ordering-relevant Runtime operation: op enqueues,
/// event record/wait/sync, stream/device synchronization, stream teardown,
/// and the IPC mapping lifecycle. `stencil::check::Checker` implements this
/// to maintain a happens-before graph; install with Runtime::set_checker.
///
/// Callbacks run on the engine actor performing the call (use
/// sim::Engine::current() for identity) and must not call back into the
/// Runtime.
class RuntimeObserver {
 public:
  virtual ~RuntimeObserver() = default;

  virtual void on_op(const OpInfo& op) = 0;
  virtual void on_stream_create(const Stream& s) { (void)s; }
  virtual void on_record_event(const Event& ev, const Stream& s) = 0;
  virtual void on_stream_wait_event(const Stream& s, const Event& ev) = 0;
  virtual void on_event_synchronize(const Event& ev) = 0;
  virtual void on_event_query(const Event& ev, bool complete) {
    (void)ev;
    (void)complete;
  }
  virtual void on_stream_synchronize(const Stream& s) = 0;
  virtual void on_device_synchronize(int ggpu) = 0;
  virtual void on_stream_destroy(const Stream& s) = 0;
  virtual void on_ipc_open(const IpcMappedPtr& p, int opener_ggpu) {
    (void)p;
    (void)opener_ggpu;
  }
  virtual void on_ipc_close(const IpcMappedPtr& p) { (void)p; }
  /// A copy was attempted through a mapping that is closed or was never
  /// opened. The Runtime throws right after this callback.
  virtual void on_ipc_misuse(const IpcMappedPtr& p, const std::string& what) = 0;
};

}  // namespace stencil::vgpu
