#pragma once

#include <cstdint>
#include <vector>

#include "topo/archetype.h"

namespace stencil::vgpu {

/// Result of an empirical GPU-pair bandwidth probe on one node.
struct ProbeResult {
  int gpus = 0;
  std::vector<double> gib_per_s;  // row-major [src * gpus + dst]; diag = 0

  double at(int src, int dst) const {
    return gib_per_s[static_cast<std::size_t>(src) * static_cast<std::size_t>(gpus) +
                     static_cast<std::size_t>(dst)];
  }
};

/// The paper's §VI "empirical measurement" pass: time a large transfer
/// between every ordered GPU pair of one node through the full runtime
/// (peer access enabled where capable, the driver's staged path otherwise)
/// and report achieved GiB/s. Runs an isolated single-actor simulation;
/// deterministic like everything else.
ProbeResult probe_gpu_bandwidth(const topo::NodeArchetype& arch,
                                std::uint64_t bytes = 256ull << 20);

}  // namespace stencil::vgpu
