#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace stencil::vgpu {

/// Which simulated memory a buffer lives in.
enum class MemSpace {
  kDevice,      // GPU HBM, owned by one (virtual) device
  kPinnedHost,  // page-locked host memory on one node
};

/// Whether a buffer carries real bytes.
///
/// kMaterialized buffers are backed by host allocation, and every simulated
/// copy really moves their bytes (so halo exchanges are bit-checkable).
/// kPhantom buffers have no storage: copies between phantoms cost the same
/// simulated time but move nothing, which lets benchmarks simulate 1536
/// GPUs x 16 GB without the RAM. Touching a phantom's data() throws.
enum class MemMode {
  kMaterialized,
  kPhantom,
};

/// A chunk of simulated GPU or pinned-host memory. Move-only RAII.
/// Instances are created by Runtime::alloc_device / alloc_pinned_host,
/// which record the owning device/node for the cost model.
class Buffer {
 public:
  Buffer() = default;
  Buffer(MemSpace space, MemMode mode, int owner, std::size_t size, std::uint64_t id)
      : space_(space), mode_(mode), owner_(owner), size_(size), id_(id) {
    if (mode_ == MemMode::kMaterialized && size_ > 0) {
      data_ = std::make_unique<std::byte[]>(size_);
    }
  }

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  MemSpace space() const { return space_; }
  MemMode mode() const { return mode_; }

  /// Owning global GPU id for device buffers; owning node for host buffers.
  int owner() const { return owner_; }

  std::size_t size() const { return size_; }
  bool valid() const { return size_ > 0 || data_ != nullptr || id_ != 0; }

  /// Process-wide unique id; the basis of IPC handles.
  std::uint64_t id() const { return id_; }

  std::byte* data() {
    require_materialized();
    return data_.get();
  }
  const std::byte* data() const {
    require_materialized();
    return data_.get();
  }

  /// Typed view helpers for materialized buffers.
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data());
  }

 private:
  void require_materialized() const {
    if (mode_ != MemMode::kMaterialized) {
      throw std::logic_error("Buffer: data() on a phantom buffer (timing-only allocation)");
    }
  }

  MemSpace space_ = MemSpace::kDevice;
  MemMode mode_ = MemMode::kPhantom;
  int owner_ = -1;
  std::size_t size_ = 0;
  std::uint64_t id_ = 0;
  std::unique_ptr<std::byte[]> data_;
};

}  // namespace stencil::vgpu
