#include "vgpu/runtime.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "fault/fault.h"
#include "telemetry/telemetry.h"

namespace stencil::vgpu {

namespace {
std::string gpu_lane(int ggpu, const char* what) {
  return "gpu" + std::to_string(ggpu) + "." + what;
}
std::string pair_lane(int src, int dst) {
  return "gpu" + std::to_string(src) + "->gpu" + std::to_string(dst);
}
}  // namespace

std::vector<std::string> Graph::labels() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.label);
  return out;
}

Runtime::Runtime(sim::Engine& eng, topo::Machine& machine) : eng_(eng), machine_(machine) {
  devices_.resize(static_cast<std::size_t>(machine_.total_gpus()));
  peer_enabled_.assign(
      static_cast<std::size_t>(machine_.total_gpus()) * static_cast<std::size_t>(machine_.total_gpus()),
      false);
}

Buffer Runtime::alloc_device(int ggpu, std::size_t bytes) {
  if (ggpu < 0 || ggpu >= machine_.total_gpus()) {
    throw std::out_of_range("alloc_device: bad GPU id");
  }
  return Buffer(MemSpace::kDevice, mem_mode_, ggpu, bytes, next_buffer_id_++);
}

Buffer Runtime::alloc_pinned_host(int node, std::size_t bytes) {
  if (node < 0 || node >= machine_.num_nodes()) {
    throw std::out_of_range("alloc_pinned_host: bad node id");
  }
  return Buffer(MemSpace::kPinnedHost, mem_mode_, node, bytes, next_buffer_id_++);
}

Stream Runtime::create_stream(int ggpu) {
  Stream s;
  s.device = ggpu;
  s.id = next_stream_id_++;
  s.last_end = eng_.now();
  if (checker_ != nullptr) checker_->on_stream_create(s);
  return s;
}

void Runtime::destroy_stream(Stream& s) {
  if (!s.valid()) return;
  if (checker_ != nullptr) checker_->on_stream_destroy(s);
  s.device = -1;
  s.id = 0;
}

Stream Runtime::default_stream(int ggpu) {
  Stream s;
  s.device = ggpu;
  s.id = 0;
  s.last_end = dev(ggpu).default_last_end;
  return s;
}

void Runtime::record_event(Event& ev, const Stream& s) {
  if (capture_target() != nullptr) {
    capture_node("record_event",
                 [&ev, &s](Runtime& rt) { rt.record_event(ev, s); });
    return;
  }
  ev.completed_at = std::max(s.last_end, eng_.now());
  ev.recorded = true;
  if (checker_ != nullptr) checker_->on_record_event(ev, s);
}

void Runtime::stream_wait_event(Stream& s, const Event& ev) {
  if (capture_target() != nullptr) {
    capture_node("wait_event",
                 [&s, &ev](Runtime& rt) { rt.stream_wait_event(s, ev); });
    return;
  }
  if (checker_ != nullptr) checker_->on_stream_wait_event(s, ev);
  if (!ev.recorded) return;  // CUDA: waiting on an unrecorded event is a no-op
  s.last_end = std::max(s.last_end, ev.completed_at);
}

bool Runtime::event_query(const Event& ev) const {
  const bool complete = !ev.recorded || ev.completed_at <= eng_.now();
  if (checker_ != nullptr) checker_->on_event_query(ev, complete);
  return complete;
}

void Runtime::event_synchronize(const Event& ev) {
  reject_during_capture("event_synchronize");
  if (ev.recorded) eng_.sleep_until(ev.completed_at);
  if (checker_ != nullptr) checker_->on_event_synchronize(ev);
}

void Runtime::stream_synchronize(const Stream& s) {
  reject_during_capture("stream_synchronize");
  eng_.sleep_until(s.last_end);
  if (checker_ != nullptr) checker_->on_stream_synchronize(s);
}

void Runtime::device_synchronize(int ggpu) {
  reject_during_capture("device_synchronize");
  eng_.sleep_until(dev(ggpu).all_streams_last_end);
  if (checker_ != nullptr) checker_->on_device_synchronize(ggpu);
}

bool Runtime::can_access_peer(int ggpu, int peer_ggpu) const {
  return machine_.peer_capable(ggpu, peer_ggpu);
}

void Runtime::enable_peer_access(int ggpu, int peer_ggpu) {
  if (!can_access_peer(ggpu, peer_ggpu)) {
    throw std::runtime_error("enable_peer_access: peer access not supported between gpu" +
                             std::to_string(ggpu) + " and gpu" + std::to_string(peer_ggpu));
  }
  peer_enabled_[static_cast<std::size_t>(ggpu) * machine_.total_gpus() +
                static_cast<std::size_t>(peer_ggpu)] = true;
}

bool Runtime::peer_enabled(int ggpu, int peer_ggpu) const {
  if (ggpu == peer_ggpu) return true;
  if (!peer_enabled_[static_cast<std::size_t>(ggpu) * machine_.total_gpus() +
                     static_cast<std::size_t>(peer_ggpu)]) {
    return false;
  }
  const fault::Injector* inj = machine_.fault_injector();
  return inj == nullptr || !inj->peer_revoked(ggpu, peer_ggpu, eng_.now());
}

bool Runtime::ipc_mapping_valid(const IpcMappedPtr& p) const {
  if (!p.valid()) return false;
  const fault::Injector* inj = machine_.fault_injector();
  if (inj == nullptr) return true;
  return !inj->ipc_stale(machine_.node_of(p.device), p.opened_at, eng_.now());
}

Graph* Runtime::capture_target() {
  if (captures_.empty()) return nullptr;
  const int actor = eng_.actor_id();
  for (auto& [id, g] : captures_) {
    if (id == actor) return g.get();
  }
  return nullptr;
}

void Runtime::capture_node(std::string label, std::function<void(Runtime&)> replay) {
  capture_target()->nodes_.push_back({std::move(label), std::move(replay)});
}

void Runtime::reject_during_capture(const char* what) {
  if (capture_target() != nullptr) {
    throw std::logic_error(std::string(what) + ": illegal during graph capture");
  }
}

void Runtime::begin_capture() {
  const int actor = eng_.actor_id();
  for (const auto& [id, g] : captures_) {
    if (id == actor) throw std::logic_error("begin_capture: capture already in progress");
  }
  captures_.emplace_back(actor, std::make_unique<Graph>());
}

Graph Runtime::end_capture() {
  const int actor = eng_.actor_id();
  for (auto it = captures_.begin(); it != captures_.end(); ++it) {
    if (it->first == actor) {
      Graph g = std::move(*it->second);
      captures_.erase(it);
      return g;
    }
  }
  throw std::logic_error("end_capture: no capture in progress");
}

bool Runtime::capturing() { return capture_target() != nullptr; }

GraphExec Runtime::instantiate(Graph g) {
  reject_during_capture("instantiate");
  GraphExec e;
  e.graph_ = std::make_shared<const Graph>(std::move(g));
  // cudaGraphInstantiate: host-side work proportional to the node count,
  // paid once at plan-compile time.
  eng_.sleep_for(machine_.arch().cpu_issue * static_cast<sim::Duration>(e.num_nodes()));
  return e;
}

void Runtime::launch_graph(GraphExec& g) {
  if (!g.valid()) throw std::logic_error("launch_graph: graph was never instantiated");
  reject_during_capture("launch_graph");
  const sim::Time t0 = eng_.now();
  eng_.sleep_for(machine_.arch().cpu_issue);  // one issue for the whole graph
  if (recorder_ != nullptr) {
    const std::string& who = eng_.actor_name();
    recorder_->record((who.empty() ? std::string("cpu") : who) + ".cpu",
                      "graph launch (" + std::to_string(g.num_nodes()) + " nodes)", t0, eng_.now());
  }
  if (telemetry_ != nullptr) {
    const std::string& who = eng_.actor_name();
    telemetry_->on_graph_launch((who.empty() ? std::string("cpu") : who) + ".cpu",
                                static_cast<int>(g.num_nodes()), t0);
  }
  ++replay_depth_;
  try {
    for (const auto& node : g.graph_->nodes_) node.replay(*this);
  } catch (...) {
    --replay_depth_;
    throw;
  }
  --replay_depth_;
  ++g.launches_;
  ++graphs_launched_;
}

sim::Time Runtime::issue(Stream& s) {
  // Terminal failures surface here, the choke point every async op passes
  // through (graph replays included): issuing to a dead device errors like
  // a real CUDA context loss would.
  if (const fault::Injector* inj = machine_.fault_injector();
      inj != nullptr && inj->has_terminal_failures()) {
    const sim::Time now = eng_.now();
    if (inj->gpu_dead(s.device, now) || inj->node_dead(machine_.node_of(s.device), now)) {
      throw DeviceLost(s.device, "vgpu: gpu" + std::to_string(s.device) +
                                     " lost (terminal fault) at t=" + sim::format_duration(now));
    }
  }
  if (replay_depth_ == 0) {
    const sim::Time t0 = eng_.now();
    eng_.sleep_for(machine_.arch().cpu_issue);
    if (recorder_ != nullptr) {
      const std::string& who = eng_.actor_name();
      recorder_->record((who.empty() ? std::string("cpu") : who) + ".cpu", "issue", t0, eng_.now());
    }
  }
  ++ops_issued_;
  DeviceState& d = dev(s.device);
  sim::Time ready = std::max(eng_.now(), s.last_end);
  if (s.id == 0) {
    // Legacy default stream: serializes behind every stream on the device.
    ready = std::max(ready, d.all_streams_last_end);
  } else {
    // Non-default streams serialize behind prior default-stream work.
    ready = std::max(ready, d.default_last_end);
  }
  return ready;
}

void Runtime::commit(Stream& s, const sim::Span& span) {
  s.last_end = std::max(s.last_end, span.end);
  DeviceState& d = dev(s.device);
  d.all_streams_last_end = std::max(d.all_streams_last_end, span.end);
  if (s.id == 0) d.default_last_end = std::max(d.default_last_end, span.end);
}

void Runtime::trace_op(const std::string& lane, const std::string& label, const sim::Span& span,
                       std::uint64_t bytes) {
  if (recorder_ != nullptr) recorder_->record(lane, label, span.start, span.end);
  if (telemetry_ != nullptr) telemetry_->on_gpu_op(lane, label, bytes, span.start, span.end);
}

void Runtime::observe_op(OpKind kind, const Stream& s, const std::string& label,
                         const sim::Span& span, const AccessList& accesses) {
  if (checker_ == nullptr) return;
  OpInfo op;
  op.kind = kind;
  op.stream = &s;
  op.label = &label;
  op.accesses = &accesses;
  op.start = span.start;
  op.end = span.end;
  checker_->on_op(op);
}

void Runtime::check_same_size_copy(const Buffer& dst, std::size_t dst_off, const Buffer& src,
                                   std::size_t src_off, std::size_t bytes) const {
  if (dst_off + bytes > dst.size() || src_off + bytes > src.size()) {
    throw std::out_of_range("memcpy: range exceeds buffer size");
  }
}

void Runtime::move_bytes(Buffer& dst, std::size_t dst_off, const Buffer& src, std::size_t src_off,
                         std::size_t bytes) {
  if (bytes == 0) return;
  if (dst.mode() == MemMode::kMaterialized && src.mode() == MemMode::kMaterialized) {
    std::memcpy(dst.data() + dst_off, src.data() + src_off, bytes);
  }
}

void Runtime::memcpy_async(Buffer& dst, std::size_t dst_off, const Buffer& src, std::size_t src_off,
                           std::size_t bytes, Stream& s) {
  check_same_size_copy(dst, dst_off, src, src_off, bytes);
  if (capture_target() != nullptr) {
    capture_node("memcpy " + std::to_string(bytes) + "B",
                 [&dst, dst_off, &src, src_off, bytes, &s](Runtime& rt) {
                   rt.memcpy_async(dst, dst_off, src, src_off, bytes, s);
                 });
    return;
  }
  const sim::Time ready = issue(s);
  sim::Span span;
  std::string lane;
  if (src.space() == MemSpace::kDevice && dst.space() == MemSpace::kDevice) {
    if (src.owner() != dst.owner()) {
      throw std::logic_error("memcpy_async: cross-device copy requires memcpy_peer_async");
    }
    span = machine_.schedule_d2d(src.owner(), dst.owner(), bytes, ready);
    lane = gpu_lane(src.owner(), "kernel");
  } else if (src.space() == MemSpace::kDevice) {  // D2H
    span = machine_.schedule_d2h(src.owner(), bytes, ready);
    lane = gpu_lane(src.owner(), "d2h");
  } else if (dst.space() == MemSpace::kDevice) {  // H2D
    span = machine_.schedule_h2d(dst.owner(), bytes, ready);
    lane = gpu_lane(dst.owner(), "h2d");
  } else {
    throw std::logic_error("memcpy_async: host-to-host copies do not belong on a stream");
  }
  move_bytes(dst, dst_off, src, src_off, bytes);
  commit(s, span);
  const std::string label = "memcpy " + std::to_string(bytes) + "B";
  trace_op(lane, label, span, bytes);
  if (checker_ != nullptr) {
    observe_op(OpKind::kMemcpy, s, label, span,
               {{&src, src_off, bytes, false}, {&dst, dst_off, bytes, true}});
  }
}

void Runtime::memcpy_peer_async(Buffer& dst, std::size_t dst_off, const Buffer& src,
                                std::size_t src_off, std::size_t bytes, Stream& s) {
  check_same_size_copy(dst, dst_off, src, src_off, bytes);
  if (src.space() != MemSpace::kDevice || dst.space() != MemSpace::kDevice) {
    throw std::logic_error("memcpy_peer_async: both buffers must be device memory");
  }
  if (capture_target() != nullptr) {
    capture_node("peer " + std::to_string(bytes) + "B",
                 [&dst, dst_off, &src, src_off, bytes, &s](Runtime& rt) {
                   rt.memcpy_peer_async(dst, dst_off, src, src_off, bytes, s);
                 });
    return;
  }
  const sim::Time ready = issue(s);
  const bool use_peer = peer_enabled(src.owner(), dst.owner());
  const sim::Span span = machine_.schedule_d2d(src.owner(), dst.owner(), bytes, ready, use_peer);
  move_bytes(dst, dst_off, src, src_off, bytes);
  commit(s, span);
  const std::string label = (use_peer ? "peer " : "staged-peer ") + std::to_string(bytes) + "B";
  trace_op(pair_lane(src.owner(), dst.owner()), label, span, bytes);
  if (checker_ != nullptr) {
    observe_op(OpKind::kMemcpyPeer, s, label, span,
               {{&src, src_off, bytes, false}, {&dst, dst_off, bytes, true}});
  }
}

void Runtime::memcpy_to_ipc_async(const IpcMappedPtr& dst, std::size_t dst_off, const Buffer& src,
                                  std::size_t src_off, std::size_t bytes, Stream& s) {
  if (capture_target() != nullptr) {
    // Mapping validity is time-dependent (fault injection); check at replay.
    capture_node("ipc-copy " + std::to_string(bytes) + "B",
                 [&dst, dst_off, &src, src_off, bytes, &s](Runtime& rt) {
                   rt.memcpy_to_ipc_async(dst, dst_off, src, src_off, bytes, s);
                 });
    return;
  }
  if (!dst.valid()) {
    const std::string what = dst.closed ? "memcpy_to_ipc_async: mapping already closed"
                                        : "memcpy_to_ipc_async: invalid IPC mapping";
    if (checker_ != nullptr) checker_->on_ipc_misuse(dst, what);
    throw std::logic_error(what);
  }
  if (!ipc_mapping_valid(dst)) {
    throw CapabilityError(CapabilityError::Kind::kIpcMappingStale,
                          "memcpy_to_ipc_async: IPC mapping to gpu" + std::to_string(dst.device) +
                              " invalidated at t=" + sim::format_duration(eng_.now()));
  }
  Buffer& target = *dst.target;
  check_same_size_copy(target, dst_off, src, src_off, bytes);
  const sim::Time ready = issue(s);
  const bool use_peer = peer_enabled(src.owner(), dst.device);
  const sim::Span span = machine_.schedule_d2d(src.owner(), dst.device, bytes, ready, use_peer);
  move_bytes(target, dst_off, src, src_off, bytes);
  commit(s, span);
  const std::string label = "ipc-copy " + std::to_string(bytes) + "B";
  trace_op(pair_lane(src.owner(), dst.device), label, span, bytes);
  if (checker_ != nullptr) {
    observe_op(OpKind::kMemcpyIpc, s, label, span,
               {{&src, src_off, bytes, false}, {&target, dst_off, bytes, true}});
  }
}

void Runtime::memcpy3d_peer_async(int dst_ggpu, int src_ggpu, std::uint64_t bytes,
                                  std::uint64_t row_bytes, Stream& s, const std::string& label,
                                  const std::function<void()>& body, const AccessList& accesses) {
  if (capture_target() != nullptr) {
    capture_node(label + " (3d)", [dst_ggpu, src_ggpu, bytes, row_bytes, &s, label, body,
                                   accesses](Runtime& rt) {
      rt.memcpy3d_peer_async(dst_ggpu, src_ggpu, bytes, row_bytes, s, label, body, accesses);
    });
    return;
  }
  const sim::Time ready = issue(s);
  const bool use_peer = peer_enabled(src_ggpu, dst_ggpu);
  const sim::Span span =
      machine_.schedule_d2d_strided(src_ggpu, dst_ggpu, bytes, row_bytes, ready, use_peer);
  if (body) body();
  commit(s, span);
  trace_op(pair_lane(src_ggpu, dst_ggpu), label + " " + std::to_string(bytes) + "B/3d", span,
           bytes);
  observe_op(OpKind::kMemcpy3D, s, label, span, accesses);
}

void Runtime::launch_kernel(Stream& s, std::uint64_t bytes_moved, const std::string& label,
                            const std::function<void()>& body, const AccessList& accesses) {
  if (capture_target() != nullptr) {
    capture_node(label, [&s, bytes_moved, label, body, accesses](Runtime& rt) {
      rt.launch_kernel(s, bytes_moved, label, body, accesses);
    });
    return;
  }
  const sim::Time ready = issue(s);
  const sim::Span span = machine_.schedule_kernel(s.device, bytes_moved, ready);
  if (body) body();
  commit(s, span);
  trace_op(gpu_lane(s.device, "kernel"), label, span, bytes_moved);
  observe_op(OpKind::kKernel, s, label, span, accesses);
}

void Runtime::launch_zero_copy_kernel(Stream& s, std::uint64_t bytes, const std::string& label,
                                      const std::function<void()>& body,
                                      const AccessList& accesses) {
  if (capture_target() != nullptr) {
    capture_node(label + " (zero-copy)", [&s, bytes, label, body, accesses](Runtime& rt) {
      rt.launch_zero_copy_kernel(s, bytes, label, body, accesses);
    });
    return;
  }
  const auto& arch = machine_.arch();
  const sim::Time ready = issue(s);
  // The kernel streams strided reads from HBM and writes over the host
  // link; the slower of the two paces it, and both are busy throughout.
  const sim::Duration dur =
      std::max(sim::transfer_time(bytes, arch.bw_gpu_mem * arch.eff_pack),
               sim::transfer_time(bytes, arch.bw_nvlink_cpu_gpu * arch.eff_nvlink));
  const sim::Span span = machine_.kernel_queue(s.device).acquire_span(ready + arch.lat_kernel, dur);
  machine_.host_link_out(s.device).acquire(span.start, dur);
  if (body) body();
  commit(s, span);
  trace_op(gpu_lane(s.device, "kernel"), label + " (zero-copy)", span, bytes);
  observe_op(OpKind::kKernel, s, label, span, accesses);
}

IpcMemHandle Runtime::ipc_get_mem_handle(Buffer& buf) {
  if (buf.space() != MemSpace::kDevice) {
    throw std::logic_error("ipc_get_mem_handle: only device memory is exportable");
  }
  auto it = std::find_if(ipc_exports_.begin(), ipc_exports_.end(),
                         [&](const auto& p) { return p.first == buf.id(); });
  if (it == ipc_exports_.end()) ipc_exports_.emplace_back(buf.id(), &buf);
  return IpcMemHandle{buf.id(), buf.owner()};
}

IpcMappedPtr Runtime::ipc_open_mem_handle(const IpcMemHandle& h, int opener_ggpu) {
  if (machine_.node_of(h.device) != machine_.node_of(opener_ggpu)) {
    throw std::runtime_error("ipc_open_mem_handle: handle exported on a different node");
  }
  auto it = std::find_if(ipc_exports_.begin(), ipc_exports_.end(),
                         [&](const auto& p) { return p.first == h.buffer_id; });
  if (it == ipc_exports_.end()) {
    throw std::runtime_error("ipc_open_mem_handle: unknown or stale handle");
  }
  // Copy the target out before sleeping: the yield lets other actors export
  // handles, and their emplace_back may reallocate ipc_exports_ under `it`.
  Buffer* target = it->second;
  eng_.sleep_for(machine_.arch().lat_ipc_setup);
  IpcMappedPtr p{target, h.device, eng_.now(), false};
  if (checker_ != nullptr) checker_->on_ipc_open(p, opener_ggpu);
  return p;
}

void Runtime::ipc_close_mem_handle(IpcMappedPtr& p) {
  if (p.target == nullptr || p.closed) return;  // closing nothing is benign
  if (checker_ != nullptr) checker_->on_ipc_close(p);
  p.closed = true;
}

}  // namespace stencil::vgpu
