#include "vgpu/probe.h"

#include "simtime/engine.h"
#include "topo/machine.h"
#include "vgpu/runtime.h"

namespace stencil::vgpu {

ProbeResult probe_gpu_bandwidth(const topo::NodeArchetype& arch, std::uint64_t bytes) {
  topo::Machine machine(arch, 1);
  sim::Engine eng;
  Runtime rt(eng, machine);
  rt.set_mem_mode(MemMode::kPhantom);

  const int g = arch.gpus_per_node();
  ProbeResult result;
  result.gpus = g;
  result.gib_per_s.assign(static_cast<std::size_t>(g) * static_cast<std::size_t>(g), 0.0);

  eng.run({[&] {
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        if (i == j) continue;
        if (rt.can_access_peer(i, j)) rt.enable_peer_access(i, j);
        machine.reset_resources();
        auto src = rt.alloc_device(i, bytes);
        auto dst = rt.alloc_device(j, bytes);
        auto s = rt.create_stream(i);
        const sim::Time t0 = eng.now();
        rt.memcpy_peer_async(dst, 0, src, 0, bytes, s);
        rt.stream_synchronize(s);
        const double seconds = sim::to_seconds(eng.now() - t0);
        result.gib_per_s[static_cast<std::size_t>(i) * g + static_cast<std::size_t>(j)] =
            static_cast<double>(bytes) / (seconds * 1024.0 * 1024.0 * 1024.0);
      }
    }
  }});
  return result;
}

}  // namespace stencil::vgpu
