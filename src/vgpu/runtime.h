#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simtime/engine.h"
#include "simtime/resource.h"
#include "topo/machine.h"
#include "trace/recorder.h"
#include "vgpu/buffer.h"
#include "vgpu/observer.h"

namespace stencil::telemetry {
class Telemetry;
}

namespace stencil::vgpu {

/// An asynchronous execution queue on one virtual device. CUDA semantics:
/// operations enqueued on the same stream execute in order; operations on
/// different streams may overlap; the *legacy default stream* (id 0 per
/// device) serializes with every other stream on its device.
///
/// Completion times are fully determined at enqueue (the engine's global
/// virtual time is monotonic, so FIFO resource claims in enqueue order are
/// exact), which makes a Stream just a handle plus a frontier time.
struct Stream {
  int device = -1;
  std::uint64_t id = 0;  // 0 = the device's legacy default stream
  sim::Time last_end = 0;
  bool valid() const { return device >= 0; }
};

/// A CUDA-event-like marker. Recording captures the stream's frontier;
/// waiting/synchronizing consumes it. An unrecorded event is complete.
struct Event {
  sim::Time completed_at = 0;
  bool recorded = false;
};

/// An opaque token that lets another rank on the same node map a device
/// buffer into its address space (mirrors cudaIpcMemHandle_t).
struct IpcMemHandle {
  std::uint64_t buffer_id = 0;
  int device = -1;  // global GPU id owning the memory
};

/// A device pointer obtained from an IpcMemHandle. Copies targeting it reach
/// the exporting rank's buffer directly, bypassing any message layer.
struct IpcMappedPtr {
  Buffer* target = nullptr;
  int device = -1;
  sim::Time opened_at = 0;  // when the mapping was established (staleness)
  bool closed = false;      // set by ipc_close_mem_handle; further use is misuse
  bool valid() const { return target != nullptr && !closed; }
};

/// Thrown when a device capability the caller relied on has been lost at
/// runtime (fault injection): peer access revoked, or an IPC mapping
/// invalidated after it was opened. The exchange layer catches this and
/// re-specializes the affected transfer down the capability chain.
class CapabilityError : public std::runtime_error {
 public:
  enum class Kind { kPeerAccessLost, kIpcMappingStale };
  CapabilityError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Thrown from every async entry point once the target device is permanently
/// dead (fault::kGpuFail / kNodeFail). Unlike CapabilityError there is no
/// lower rung to demote to: recovery (stencil::recover) must re-home the
/// device's subdomains onto surviving resources.
class DeviceLost : public std::runtime_error {
 public:
  DeviceLost(int ggpu, const std::string& what) : std::runtime_error(what), ggpu_(ggpu) {}
  int device() const { return ggpu_; }

 private:
  int ggpu_ = -1;
};

class Runtime;

/// A captured sequence of stream operations (cudaGraph analogue). Built with
/// Runtime::begin_capture()/end_capture(): while capturing, the async entry
/// points append nodes instead of executing, so capture itself moves no data
/// and takes no virtual time. Buffers, streams, and events are captured by
/// reference and must outlive every launch of an instantiated graph.
class Graph {
 public:
  std::size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  /// Node labels in capture order (diagnostics / plan reports).
  std::vector<std::string> labels() const;

 private:
  friend class Runtime;
  struct Node {
    std::string label;
    std::function<void(Runtime&)> replay;
  };
  std::vector<Node> nodes_;
};

/// An instantiated, launchable graph (cudaGraphExec analogue). launch_graph
/// replays the captured enqueues through the ordinary eager entry points, so
/// observers (trace, checker) see replayed ops exactly like eager ops — but
/// the per-op CPU issue cost is charged once per *launch*, not once per node.
/// That amortization is the whole reason graphs exist.
class GraphExec {
 public:
  GraphExec() = default;
  bool valid() const { return graph_ != nullptr; }
  std::size_t num_nodes() const { return graph_ != nullptr ? graph_->num_nodes() : 0; }
  std::vector<std::string> labels() const {
    return graph_ != nullptr ? graph_->labels() : std::vector<std::string>{};
  }
  /// How many times this executable has been launched.
  std::uint64_t launches() const { return launches_; }

 private:
  friend class Runtime;
  std::shared_ptr<const Graph> graph_;
  std::uint64_t launches_ = 0;
};

/// The virtual CUDA runtime: allocation, streams, events, async copies,
/// pack/unpack "kernels", peer access, and IPC — all costed on a
/// topo::Machine and ordered by a sim::Engine.
///
/// Semantics notes (mirroring CUDA where it matters to the paper):
///  * All *_async calls charge the calling actor `cpu_issue` virtual time,
///    so a single rank driving many GPUs serializes op issue — the effect
///    behind Fig. 12a's rank sensitivity.
///  * Data movement between materialized buffers happens eagerly at enqueue
///    (the library never mutates a buffer that an in-flight op reads, so
///    eager movement is observationally equivalent and keeps the engine
///    simple). Simulated completion respects the cost model.
///  * Phantom buffers move no bytes but cost identical virtual time.
class Runtime {
 public:
  Runtime(sim::Engine& eng, topo::Machine& machine);

  sim::Engine& engine() { return eng_; }
  topo::Machine& machine() { return machine_; }

  /// Optional timeline sink; when set, every scheduled op is recorded.
  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }
  trace::Recorder* recorder() const { return recorder_; }

  /// Optional correctness observer (stencil::check): when set, every op,
  /// event edge, synchronize, and IPC lifecycle change is reported to it.
  void set_checker(RuntimeObserver* obs) { checker_ = obs; }
  RuntimeObserver* checker() const { return checker_; }

  /// Optional telemetry sink: per-op counters, pack/unpack histograms, and
  /// flight-recorder events. Pure bookkeeping — never perturbs virtual time.
  void set_telemetry(telemetry::Telemetry* t) { telemetry_ = t; }
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Default mode for new allocations (benchmarks flip this to kPhantom).
  void set_mem_mode(MemMode m) { mem_mode_ = m; }
  MemMode mem_mode() const { return mem_mode_; }

  // --- memory -----------------------------------------------------------
  Buffer alloc_device(int ggpu, std::size_t bytes);
  Buffer alloc_pinned_host(int node, std::size_t bytes);

  // --- streams & events ---------------------------------------------------
  Stream create_stream(int ggpu);
  Stream default_stream(int ggpu);
  /// Invalidate a stream handle. CUDA-like: destroying a stream does not wait
  /// for its pending work, but enqueueing further work on it is an error —
  /// the checker lints destruction while work is still unordered with the host.
  void destroy_stream(Stream& s);
  void record_event(Event& ev, const Stream& s);
  void stream_wait_event(Stream& s, const Event& ev);
  bool event_query(const Event& ev) const;
  void event_synchronize(const Event& ev);
  void stream_synchronize(const Stream& s);
  void device_synchronize(int ggpu);

  /// Completion frontier of a stream without blocking (for state machines).
  sim::Time stream_frontier(const Stream& s) const { return s.last_end; }

  // --- peer access --------------------------------------------------------
  bool can_access_peer(int ggpu, int peer_ggpu) const;
  /// Enable peer access; throws if the hardware cannot (as CUDA errors).
  void enable_peer_access(int ggpu, int peer_ggpu);
  /// True when the pair has peer access *now*: enabled by the caller and not
  /// revoked by an injected fault at the current virtual time.
  bool peer_enabled(int ggpu, int peer_ggpu) const;

  /// True when an IPC mapping is still usable: valid and not invalidated by
  /// a fault event since it was opened. The exchange layer polls this at
  /// iteration boundaries to decide whether to demote a COLOCATED transfer.
  bool ipc_mapping_valid(const IpcMappedPtr& p) const;

  // --- async copies -------------------------------------------------------
  /// cudaMemcpyAsync equivalent: direction inferred from the buffer spaces
  /// and owners. Supports H2D, D2H, D2D (same device), and host-to-host.
  void memcpy_async(Buffer& dst, std::size_t dst_off, const Buffer& src, std::size_t src_off,
                    std::size_t bytes, Stream& s);

  /// cudaMemcpyPeerAsync equivalent: device-to-device between any two GPUs
  /// on one node. Uses the direct peer link only when peer access is
  /// enabled; otherwise the driver's staged path (slower), like CUDA.
  void memcpy_peer_async(Buffer& dst, std::size_t dst_off, const Buffer& src, std::size_t src_off,
                         std::size_t bytes, Stream& s);

  /// Copy into memory mapped from another rank via IPC (same node).
  void memcpy_to_ipc_async(const IpcMappedPtr& dst, std::size_t dst_off, const Buffer& src,
                           std::size_t src_off, std::size_t bytes, Stream& s);

  /// cudaMemcpy3DPeerAsync-style strided copy: moves `bytes` organized in
  /// rows of `row_bytes` directly between two same-node devices, without a
  /// pack kernel. `body` performs the real (row-by-row) data movement;
  /// time is the d2d path derated by the per-row DMA overhead.
  void memcpy3d_peer_async(int dst_ggpu, int src_ggpu, std::uint64_t bytes,
                           std::uint64_t row_bytes, Stream& s, const std::string& label,
                           const std::function<void()>& body, const AccessList& accesses = {});

  // --- kernels ------------------------------------------------------------
  /// Launch a "kernel" on `s` that moves `bytes_moved` through device
  /// memory (pack/unpack/compute). `body` runs eagerly against real data
  /// (no-op for phantom work); `label` feeds the trace.
  /// `accesses` optionally declares the byte ranges the body reads/writes
  /// (kernel bodies are opaque closures); only the checker consumes it.
  void launch_kernel(Stream& s, std::uint64_t bytes_moved, const std::string& label,
                     const std::function<void()>& body, const AccessList& accesses = {});

  /// A kernel whose stores land in *pinned host memory* (zero-copy, the
  /// Physis-style pack of §VI/[18]): one launch replaces pack + D2H, but
  /// the kernel runs at host-link speed, occupying both the GPU and the
  /// outbound host link for the duration.
  void launch_zero_copy_kernel(Stream& s, std::uint64_t bytes, const std::string& label,
                               const std::function<void()>& body, const AccessList& accesses = {});

  // --- IPC ----------------------------------------------------------------
  /// Export a device buffer; registers its address so a same-node rank can
  /// map it. The buffer must outlive all mappings.
  IpcMemHandle ipc_get_mem_handle(Buffer& buf);
  /// Open a handle exported by a same-node rank. Charges the one-time
  /// cudaIpcOpenMemHandle setup cost. Throws if the nodes differ.
  IpcMappedPtr ipc_open_mem_handle(const IpcMemHandle& h, int opener_ggpu);
  /// Close a mapping (cudaIpcCloseMemHandle). Any later copy through it is
  /// misuse: reported to the checker, then thrown as std::logic_error.
  void ipc_close_mem_handle(IpcMappedPtr& p);

  // --- graph capture ------------------------------------------------------
  /// Begin capturing the calling actor's async enqueues (cudaStreamBeginCapture
  /// analogue, scoped to the actor rather than one stream). Until end_capture,
  /// async ops and event record/wait calls append graph nodes instead of
  /// executing; synchronizing calls throw (they would invalidate a CUDA
  /// capture too). Captures never block, so a capture section is atomic under
  /// the cooperative scheduler.
  void begin_capture();
  Graph end_capture();
  /// True when the calling actor has a capture in progress.
  bool capturing();

  /// Bake a captured graph into a launchable executable. Charges host-side
  /// setup time proportional to the node count (cudaGraphInstantiate cost) —
  /// paid once, amortized over every launch.
  GraphExec instantiate(Graph g);

  /// Replay an instantiated graph: one CPU issue charge for the whole graph,
  /// then every node re-enters the eager entry point it was captured from
  /// (observers see identical ops; per-node issue cost is skipped).
  void launch_graph(GraphExec& g);

  std::uint64_t graphs_launched() const { return graphs_launched_; }

  /// Number of async ops issued so far (diagnostics).
  std::uint64_t ops_issued() const { return ops_issued_; }

  /// Number of buffers ever allocated (device + pinned host). Stable across
  /// steady-state planned exchanges — tests assert zero setup-phase work.
  std::uint64_t buffers_allocated() const { return next_buffer_id_ - 1; }

  // --- hooks for the (simulated) MPI library ------------------------------
  /// Completion frontier across all streams of a device — what a
  /// cudaDeviceSynchronize inside the MPI library would wait for.
  sim::Time device_frontier(int ggpu) { return dev(ggpu).all_streams_last_end; }

  /// Report that an external library (CUDA-aware MPI) ran work on the
  /// device's legacy default stream until `until`. Subsequent application
  /// ops on *any* stream of that device serialize behind it — the
  /// overlap-killing behaviour the paper profiled in Spectrum MPI.
  void occupy_default_stream(int ggpu, sim::Time until) {
    DeviceState& d = dev(ggpu);
    d.default_last_end = std::max(d.default_last_end, until);
    d.all_streams_last_end = std::max(d.all_streams_last_end, until);
  }

 private:
  struct DeviceState {
    sim::Time all_streams_last_end = 0;  // frontier across every stream
    sim::Time default_last_end = 0;      // frontier of the legacy default stream
  };

  /// Charge CPU issue overhead to the calling actor and return the ready
  /// time for the new op, honoring stream order + default-stream rules.
  sim::Time issue(Stream& s);
  /// Commit an op completing at `span` onto stream `s`.
  void commit(Stream& s, const sim::Span& span);
  void trace_op(const std::string& lane, const std::string& label, const sim::Span& span,
                std::uint64_t bytes = 0);
  DeviceState& dev(int ggpu) { return devices_[static_cast<std::size_t>(ggpu)]; }
  void check_same_size_copy(const Buffer& dst, std::size_t dst_off, const Buffer& src,
                            std::size_t src_off, std::size_t bytes) const;
  static void move_bytes(Buffer& dst, std::size_t dst_off, const Buffer& src, std::size_t src_off,
                         std::size_t bytes);

  /// Report a committed async op (plus derived/declared accesses) to the
  /// checker. No-op when no checker is installed.
  void observe_op(OpKind kind, const Stream& s, const std::string& label, const sim::Span& span,
                  const AccessList& accesses);

  /// Capture in progress for the calling actor, or nullptr. Cheap on the
  /// eager path (captures_ empty short-circuits before querying the engine).
  Graph* capture_target();
  void capture_node(std::string label, std::function<void(Runtime&)> replay);
  /// Throw when called during capture (ops that would invalidate it).
  void reject_during_capture(const char* what);

  sim::Engine& eng_;
  topo::Machine& machine_;
  trace::Recorder* recorder_ = nullptr;
  RuntimeObserver* checker_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  MemMode mem_mode_ = MemMode::kMaterialized;
  std::vector<std::pair<int, std::unique_ptr<Graph>>> captures_;  // actor -> open capture
  int replay_depth_ = 0;  // >0 while launch_graph replays (skip per-op issue cost)
  std::uint64_t graphs_launched_ = 0;
  std::vector<DeviceState> devices_;
  std::vector<bool> peer_enabled_;  // [src * total_gpus + dst]
  std::uint64_t next_buffer_id_ = 1;
  std::uint64_t next_stream_id_ = 1;
  std::uint64_t ops_issued_ = 0;
  // IPC export registry: buffer id -> live buffer (registered on handle get).
  std::vector<std::pair<std::uint64_t, Buffer*>> ipc_exports_;
};

}  // namespace stencil::vgpu
