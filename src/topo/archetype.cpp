#include "topo/archetype.h"

#include <algorithm>
#include <stdexcept>

namespace stencil::topo {

const char* to_string(LinkType t) {
  switch (t) {
    case LinkType::kSame: return "same";
    case LinkType::kNVLink: return "NVLink";
    case LinkType::kXBus: return "X-Bus";
    case LinkType::kPCIe: return "PCIe";
    case LinkType::kNIC: return "NIC";
  }
  return "?";
}

LinkType NodeArchetype::gpu_link(int local_i, int local_j) const {
  if (local_i < 0 || local_j < 0 || local_i >= gpus_per_node() || local_j >= gpus_per_node()) {
    throw std::out_of_range("NodeArchetype::gpu_link: local GPU index out of range");
  }
  if (local_i == local_j) return LinkType::kSame;
  if (socket_of(local_i) == socket_of(local_j)) {
    return bw_nvlink_gpu_gpu > 0 ? LinkType::kNVLink : LinkType::kPCIe;
  }
  return sockets > 1 ? LinkType::kXBus : LinkType::kPCIe;
}

double NodeArchetype::theoretical_gpu_bw(int local_i, int local_j) const {
  switch (gpu_link(local_i, local_j)) {
    case LinkType::kSame:
      return bw_gpu_mem;
    case LinkType::kNVLink:
      return bw_nvlink_gpu_gpu;
    case LinkType::kXBus:
      // The path is GPU -> CPU -> X-Bus -> CPU -> GPU. The X-Bus leg is
      // shared by all cross-socket traffic and pays SMP protocol overhead,
      // so discovery reports the discounted (achievable) figure — this is
      // what makes the Fig. 11 placement decision non-trivial.
      return std::min(bw_nvlink_cpu_gpu, bw_xbus * eff_xbus);
    case LinkType::kPCIe:
      return bw_nvlink_cpu_gpu;  // archetypes reuse this field for the host link
    case LinkType::kNIC:
      return bw_nic;
  }
  return 0;
}

double NodeArchetype::achieved_gpu_bw(int local_i, int local_j) const {
  const LinkType link = gpu_link(local_i, local_j);
  if (link == LinkType::kSame) return bw_gpu_mem / 2.0;  // read + write
  if (peer_capable(local_i, local_j)) {
    return theoretical_gpu_bw(local_i, local_j) * eff_nvlink;
  }
  // Staged through the host: GPU->CPU, (X-Bus,) CPU->GPU, store-and-forward.
  const double host = bw_nvlink_cpu_gpu * eff_nvlink;
  double inv = 2.0 / host;
  if (sockets > 1 && socket_of(local_i) != socket_of(local_j)) {
    inv += 1.0 / (bw_xbus * eff_xbus);
  }
  return 1.0 / inv;
}

bool NodeArchetype::peer_capable(int local_i, int local_j) const {
  if (local_i == local_j) return true;
  const LinkType link = gpu_link(local_i, local_j);
  if (link == LinkType::kNVLink) return peer_within_socket;
  if (link == LinkType::kXBus) return peer_across_socket;
  return false;
}

NodeArchetype summit() {
  NodeArchetype a;
  a.name = "summit";
  a.sockets = 2;
  a.gpus_per_socket = 3;

  a.bw_nvlink_gpu_gpu = 50.0;
  a.bw_nvlink_cpu_gpu = 50.0;
  a.bw_xbus = 64.0;
  a.bw_nic = 25.0;  // dual EDR InfiniBand, 2 x 12.5 GiB/s
  a.bw_gpu_mem = 800.0;
  a.bw_host_mem = 20.0;  // one core driving a shared-memory MPI copy

  a.eff_nvlink = 0.78;  // ~39 of 50 GiB/s achieved, per prior measurement [8]
  a.eff_xbus = 0.55;
  a.eff_nic = 0.88;
  a.eff_pack = 0.30;  // strided read + dense write through HBM

  a.lat_gpu_copy = 9 * sim::kMicrosecond;
  a.lat_kernel = 8 * sim::kMicrosecond;
  a.lat_mpi_intra = 2 * sim::kMicrosecond;
  a.lat_mpi_inter = 5 * sim::kMicrosecond;
  a.cpu_issue = 4 * sim::kMicrosecond;
  a.lat_ipc_setup = 420 * sim::kMicrosecond;  // cudaIpcOpenMemHandle per message

  a.peer_within_socket = true;
  a.peer_across_socket = false;  // no P2P over the X-Bus on Summit
  a.cuda_aware_mpi = true;
  return a;
}

NodeArchetype dgx_like(int gpus) {
  NodeArchetype a = summit();
  a.name = "dgx-like";
  a.sockets = 1;
  a.gpus_per_socket = gpus;
  a.bw_xbus = 0;
  a.peer_within_socket = true;
  return a;
}

NodeArchetype pcie_box(int gpus) {
  NodeArchetype a;
  a.name = "pcie-box";
  a.sockets = 1;
  a.gpus_per_socket = gpus;
  a.bw_nvlink_gpu_gpu = 0;   // no direct GPU-GPU link
  a.bw_nvlink_cpu_gpu = 12;  // PCIe gen3 x16
  a.bw_xbus = 0;
  a.bw_nic = 12.5;
  a.bw_gpu_mem = 600.0;
  a.bw_host_mem = 8.0;
  a.eff_nvlink = 0.8;
  a.eff_xbus = 1.0;
  a.eff_nic = 0.9;
  a.eff_pack = 0.3;
  a.lat_gpu_copy = 12 * sim::kMicrosecond;
  a.lat_kernel = 10 * sim::kMicrosecond;
  a.lat_mpi_intra = 2 * sim::kMicrosecond;
  a.lat_mpi_inter = 6 * sim::kMicrosecond;
  a.cpu_issue = 5 * sim::kMicrosecond;
  a.lat_ipc_setup = 150 * sim::kMicrosecond;
  a.peer_within_socket = false;
  a.peer_across_socket = false;
  a.cuda_aware_mpi = false;
  return a;
}

}  // namespace stencil::topo
