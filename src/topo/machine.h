#pragma once

#include <cstdint>
#include <vector>

#include "simtime/resource.h"
#include "topo/archetype.h"

namespace stencil::fault {
class Injector;
}  // namespace stencil::fault

namespace stencil::topo {

/// A cluster: `num_nodes` identical nodes of one NodeArchetype, plus the
/// simulated resources (links, copy engines, kernel queues, NICs) that give
/// the cost model contention. The Machine is pure model — it knows nothing
/// about ranks or domains.
///
/// GPU naming: a *global* GPU id is node * gpus_per_node() + local index.
///
/// All schedule_* methods reserve the relevant resources starting no earlier
/// than `ready` and return the occupancy Span of the *wire movement only*;
/// callers layer CPU issue cost, kernel packing, and MPI latency on top.
/// Multi-hop paths (cross-socket copies, node-to-node messages) are modeled
/// cut-through: hop N+1 may begin once hop N has streamed enough to keep it
/// fed, so an uncontended path costs max-hop time, not sum of hops.
class Machine {
 public:
  Machine(NodeArchetype arch, int num_nodes);

  const NodeArchetype& arch() const { return arch_; }
  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return arch_.gpus_per_node(); }
  int total_gpus() const { return num_nodes_ * gpus_per_node(); }

  int node_of(int ggpu) const { return ggpu / gpus_per_node(); }
  int local_of(int ggpu) const { return ggpu % gpus_per_node(); }
  int global_gpu(int node, int local) const { return node * gpus_per_node() + local; }

  /// Can peer access be enabled between these two *global* GPUs?
  bool peer_capable(int ggpu_i, int ggpu_j) const;

  /// Attach (or detach with nullptr) a fault injector. Every schedule_*
  /// call then derates its link/device bandwidth by the injector's scale at
  /// the ready time. The Machine is the single owner of this pointer; the
  /// vgpu runtime and simpi job read it from here so all layers see one
  /// consistent fault view. Not owned; must outlive the runs that use it.
  void set_fault_injector(const fault::Injector* inj) { fault_ = inj; }
  const fault::Injector* fault_injector() const { return fault_; }

  // --- cost model -------------------------------------------------------

  /// A pack/unpack (or compute) kernel moving `bytes_moved` through device
  /// memory; serializes with other kernels on the same GPU.
  sim::Span schedule_kernel(int ggpu, std::uint64_t bytes_moved, sim::Time ready);

  /// Pinned-host to device copy over the GPU's host link.
  sim::Span schedule_h2d(int ggpu, std::uint64_t bytes, sim::Time ready);

  /// Device to pinned-host copy over the GPU's host link.
  sim::Span schedule_d2h(int ggpu, std::uint64_t bytes, sim::Time ready);

  /// Device-to-device copy between two GPUs on the *same node* (or within
  /// one GPU). When the pair is peer-capable and the caller has peer access
  /// enabled (`use_peer`), the copy streams over the dedicated link;
  /// otherwise it takes the driver's staged path host-link -> X-Bus ->
  /// host-link, exactly as cudaMemcpyPeerAsync degrades without P2P.
  sim::Span schedule_d2d(int src_ggpu, int dst_ggpu, std::uint64_t bytes, sim::Time ready,
                         bool use_peer = true);

  /// A strided 3D copy (cudaMemcpy3DPeerAsync-style): same routing as
  /// schedule_d2d but derated by the per-row DMA overhead — no pack kernel
  /// is involved, which is the §VI pack-avoidance tradeoff.
  sim::Span schedule_d2d_strided(int src_ggpu, int dst_ggpu, std::uint64_t bytes,
                                 std::uint64_t row_bytes, sim::Time ready, bool use_peer = true);

  /// The fraction of link bandwidth a strided copy with this row length
  /// achieves under the model.
  double strided_efficiency(std::uint64_t row_bytes) const;

  /// Node-to-node wire movement through both NICs (cut-through).
  sim::Span schedule_internode(int src_node, int dst_node, std::uint64_t bytes, sim::Time ready);

  /// A host-memory copy driven by one CPU core (`cpu` is the owning rank's
  /// CPU resource, created by the cluster layer).
  sim::Span schedule_host_copy(sim::Resource& cpu, std::uint64_t bytes, sim::Time ready);

  // --- raw resources (stats, tracing, tests) -----------------------------
  sim::Resource& kernel_queue(int ggpu) { return kernel_[static_cast<std::size_t>(ggpu)]; }
  sim::Resource& host_link_out(int ggpu) { return d2h_[static_cast<std::size_t>(ggpu)]; }
  sim::Resource& host_link_in(int ggpu) { return h2d_[static_cast<std::size_t>(ggpu)]; }
  sim::Resource& nic_out(int node) { return nic_out_[static_cast<std::size_t>(node)]; }
  sim::Resource& nic_in(int node) { return nic_in_[static_cast<std::size_t>(node)]; }

  /// Clear all queued work from every resource (between measurements).
  void reset_resources();

 private:
  sim::Resource& p2p(int src_ggpu, int dst_ggpu);
  sim::Resource& xbus(int node, bool forward);
  // Fault-adjusted bandwidth multipliers, clamped away from zero so a dead
  // link is glacial rather than free (transfer_time(bytes, 0) == 0).
  double link_scale(int cls, int a, int b, sim::Time t) const;
  double device_scale(int ggpu, sim::Time t) const;
  // Pipelined hop: may start once `prev` has streamed enough to keep a hop
  // of length `dur` fed, and may not start before prev itself started.
  static sim::Time cut_through_ready(const sim::Span& prev, sim::Duration dur);

  NodeArchetype arch_;
  int num_nodes_;
  const fault::Injector* fault_ = nullptr;
  std::vector<sim::Resource> kernel_;   // per global GPU
  std::vector<sim::Resource> h2d_;      // per global GPU, host->device direction
  std::vector<sim::Resource> d2h_;      // per global GPU, device->host direction
  std::vector<sim::Resource> p2p_;      // per directed same-node GPU pair
  std::vector<sim::Resource> xbus_;     // per node, two directions
  std::vector<sim::Resource> nic_out_;  // per node
  std::vector<sim::Resource> nic_in_;   // per node
};

}  // namespace stencil::topo
