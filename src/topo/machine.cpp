#include "topo/machine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fault/fault.h"

namespace stencil::topo {

namespace {
std::string res_name(const char* kind, int a, int b = -1) {
  std::string s = kind;
  s += ' ';
  s += std::to_string(a);
  if (b >= 0) {
    s += "->";
    s += std::to_string(b);
  }
  return s;
}
}  // namespace

Machine::Machine(NodeArchetype arch, int num_nodes) : arch_(std::move(arch)), num_nodes_(num_nodes) {
  if (num_nodes_ <= 0) throw std::invalid_argument("Machine: num_nodes must be positive");
  if (arch_.gpus_per_node() <= 0) throw std::invalid_argument("Machine: archetype has no GPUs");
  const int g = total_gpus();
  const int gpn = gpus_per_node();
  kernel_.reserve(static_cast<std::size_t>(g));
  h2d_.reserve(static_cast<std::size_t>(g));
  d2h_.reserve(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    kernel_.emplace_back(res_name("gpu-kernel", i));
    h2d_.emplace_back(res_name("h2d", i));
    d2h_.emplace_back(res_name("d2h", i));
  }
  p2p_.reserve(static_cast<std::size_t>(num_nodes_) * gpn * gpn);
  for (int n = 0; n < num_nodes_; ++n) {
    for (int i = 0; i < gpn; ++i) {
      for (int j = 0; j < gpn; ++j) {
        p2p_.emplace_back(res_name("p2p", global_gpu(n, i), global_gpu(n, j)));
      }
    }
  }
  xbus_.reserve(static_cast<std::size_t>(num_nodes_) * 2);
  nic_out_.reserve(static_cast<std::size_t>(num_nodes_));
  nic_in_.reserve(static_cast<std::size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) {
    xbus_.emplace_back(res_name("xbus-fwd", n));
    xbus_.emplace_back(res_name("xbus-rev", n));
    nic_out_.emplace_back(res_name("nic-out", n));
    nic_in_.emplace_back(res_name("nic-in", n));
  }
}

bool Machine::peer_capable(int ggpu_i, int ggpu_j) const {
  if (node_of(ggpu_i) != node_of(ggpu_j)) return false;
  return arch_.peer_capable(local_of(ggpu_i), local_of(ggpu_j));
}

sim::Resource& Machine::p2p(int src_ggpu, int dst_ggpu) {
  const int n = node_of(src_ggpu);
  const int gpn = gpus_per_node();
  const std::size_t idx = (static_cast<std::size_t>(n) * gpn + local_of(src_ggpu)) * gpn +
                          static_cast<std::size_t>(local_of(dst_ggpu));
  return p2p_[idx];
}

sim::Resource& Machine::xbus(int node, bool forward) {
  return xbus_[static_cast<std::size_t>(node) * 2 + (forward ? 0 : 1)];
}

sim::Time Machine::cut_through_ready(const sim::Span& prev, sim::Duration dur) {
  return std::max(prev.start, prev.end - dur);
}

double Machine::link_scale(int cls, int a, int b, sim::Time t) const {
  if (fault_ == nullptr) return 1.0;
  const double s = fault_->link_scale(static_cast<fault::LinkClass>(cls), a, b, t);
  return std::max(s, 1e-3);
}

double Machine::device_scale(int ggpu, sim::Time t) const {
  if (fault_ == nullptr) return 1.0;
  return std::max(fault_->device_scale(ggpu, t), 1e-3);
}

namespace {
constexpr int kFaultP2P = static_cast<int>(fault::LinkClass::kP2P);
constexpr int kFaultHostLink = static_cast<int>(fault::LinkClass::kHostLink);
constexpr int kFaultXBus = static_cast<int>(fault::LinkClass::kXBus);
constexpr int kFaultNic = static_cast<int>(fault::LinkClass::kNic);
}  // namespace

sim::Span Machine::schedule_kernel(int ggpu, std::uint64_t bytes_moved, sim::Time ready) {
  const double bw = arch_.bw_gpu_mem * arch_.eff_pack * device_scale(ggpu, ready);
  const sim::Duration dur = sim::transfer_time(bytes_moved, bw);
  return kernel_queue(ggpu).acquire_span(ready + arch_.lat_kernel, dur);
}

sim::Span Machine::schedule_h2d(int ggpu, std::uint64_t bytes, sim::Time ready) {
  const double bw = arch_.bw_nvlink_cpu_gpu * arch_.eff_nvlink *
                    link_scale(kFaultHostLink, ggpu, -1, ready);
  const sim::Duration dur = sim::transfer_time(bytes, bw);
  return h2d_[static_cast<std::size_t>(ggpu)].acquire_span(ready + arch_.lat_gpu_copy, dur);
}

sim::Span Machine::schedule_d2h(int ggpu, std::uint64_t bytes, sim::Time ready) {
  const double bw = arch_.bw_nvlink_cpu_gpu * arch_.eff_nvlink *
                    link_scale(kFaultHostLink, ggpu, -1, ready);
  const sim::Duration dur = sim::transfer_time(bytes, bw);
  return d2h_[static_cast<std::size_t>(ggpu)].acquire_span(ready + arch_.lat_gpu_copy, dur);
}

sim::Span Machine::schedule_d2d(int src_ggpu, int dst_ggpu, std::uint64_t bytes, sim::Time ready,
                                bool use_peer) {
  if (node_of(src_ggpu) != node_of(dst_ggpu)) {
    throw std::logic_error("Machine::schedule_d2d: GPUs are on different nodes");
  }
  if (src_ggpu == dst_ggpu) {
    // Local device copy: read + write through device memory.
    const double bw = arch_.bw_gpu_mem * device_scale(src_ggpu, ready);
    const sim::Duration dur = sim::transfer_time(2 * bytes, bw);
    return kernel_queue(src_ggpu).acquire_span(ready + arch_.lat_gpu_copy, dur);
  }
  const int li = local_of(src_ggpu);
  const int lj = local_of(dst_ggpu);
  if (use_peer && arch_.peer_capable(li, lj)) {
    const double bw = arch_.theoretical_gpu_bw(li, lj) * arch_.eff_nvlink *
                      link_scale(kFaultP2P, src_ggpu, dst_ggpu, ready);
    return p2p(src_ggpu, dst_ggpu).acquire_span(ready + arch_.lat_gpu_copy, sim::transfer_time(bytes, bw));
  }
  // Non-peer path: the driver stages GPU -> host -> (X-Bus) -> host -> GPU
  // through bounce buffers, store-and-forward per hop — which is why
  // disabling peer access (or crossing the X-Bus on Summit) costs 2-3x.
  const int node = node_of(src_ggpu);
  const double host_link_bw = arch_.bw_nvlink_cpu_gpu * arch_.eff_nvlink;
  const sim::Duration d_out = sim::transfer_time(
      bytes, host_link_bw * link_scale(kFaultHostLink, src_ggpu, -1, ready));
  const sim::Span first =
      d2h_[static_cast<std::size_t>(src_ggpu)].acquire_span(ready + arch_.lat_gpu_copy, d_out);
  sim::Span span = first;
  if (arch_.socket_of(li) != arch_.socket_of(lj)) {
    const sim::Duration d_xbus = sim::transfer_time(
        bytes, arch_.bw_xbus * arch_.eff_xbus * link_scale(kFaultXBus, node, -1, span.end));
    span = xbus(node, arch_.socket_of(li) < arch_.socket_of(lj)).acquire_span(span.end, d_xbus);
  }
  const sim::Duration d_in = sim::transfer_time(
      bytes, host_link_bw * link_scale(kFaultHostLink, dst_ggpu, -1, span.end));
  span = h2d_[static_cast<std::size_t>(dst_ggpu)].acquire_span(span.end, d_in);
  return {first.start, span.end};
}

double Machine::strided_efficiency(std::uint64_t row_bytes) const {
  if (row_bytes == 0) return 1.0;
  const double r = static_cast<double>(row_bytes);
  return r / (r + arch_.strided_row_overhead);
}

sim::Span Machine::schedule_d2d_strided(int src_ggpu, int dst_ggpu, std::uint64_t bytes,
                                        std::uint64_t row_bytes, sim::Time ready, bool use_peer) {
  // Inflate the payload by the per-row overhead instead of rewriting the
  // multi-hop path logic: same wire occupancy either way.
  const double eff = strided_efficiency(row_bytes);
  const auto inflated = static_cast<std::uint64_t>(static_cast<double>(bytes) / eff + 0.5);
  return schedule_d2d(src_ggpu, dst_ggpu, inflated, ready, use_peer);
}

sim::Span Machine::schedule_internode(int src_node, int dst_node, std::uint64_t bytes, sim::Time ready) {
  if (src_node == dst_node) {
    throw std::logic_error("Machine::schedule_internode: same node");
  }
  const double bw =
      arch_.bw_nic * arch_.eff_nic * link_scale(kFaultNic, src_node, dst_node, ready);
  const sim::Duration dur = sim::transfer_time(bytes, bw);
  const sim::Span out = nic_out(src_node).acquire_span(ready, dur);
  const sim::Span in = nic_in(dst_node).acquire_span(cut_through_ready(out, dur), dur);
  return {out.start, in.end};
}

sim::Span Machine::schedule_host_copy(sim::Resource& cpu, std::uint64_t bytes, sim::Time ready) {
  return cpu.acquire_span(ready, sim::transfer_time(bytes, arch_.bw_host_mem));
}

void Machine::reset_resources() {
  for (auto& r : kernel_) r.reset();
  for (auto& r : h2d_) r.reset();
  for (auto& r : d2h_) r.reset();
  for (auto& r : p2p_) r.reset();
  for (auto& r : xbus_) r.reset();
  for (auto& r : nic_out_) r.reset();
  for (auto& r : nic_in_) r.reset();
}

}  // namespace stencil::topo
