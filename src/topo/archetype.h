#pragma once

#include <string>

#include "simtime/time.h"

namespace stencil::topo {

/// Kinds of physical link a transfer can traverse. Mirrors what
/// nvidia-ml-style topology discovery reports on real nodes.
enum class LinkType {
  kSame,      // i == j: within one GPU's memory
  kNVLink,    // direct GPU-GPU NVLink (same triad/socket)
  kXBus,      // crosses the inter-socket SMP bus
  kPCIe,      // PCIe hop (archetypes without NVLink)
  kNIC,       // leaves the node
};

const char* to_string(LinkType t);

/// Static description of one node design: component counts, link
/// bandwidths/latencies, and communication *capabilities* (peer access,
/// CUDA-aware MPI). All bandwidths are theoretical GiB/s; the `eff_*`
/// factors convert them to achievable rates in the cost model.
///
/// The default-constructed archetype is not meaningful; use the presets
/// (summit(), dgx_like(), pcie_box()) or fill every field.
struct NodeArchetype {
  std::string name;

  int sockets = 0;
  int gpus_per_socket = 0;

  // --- theoretical link bandwidths, GiB/s ---
  double bw_nvlink_gpu_gpu = 0;  // per directed GPU pair within a socket
  double bw_nvlink_cpu_gpu = 0;  // per GPU, to its socket's CPU, per direction
  double bw_xbus = 0;            // socket <-> socket, per direction
  double bw_nic = 0;             // node injection/ejection, per direction
  double bw_gpu_mem = 0;         // device memory (bounds pack/unpack kernels)
  double bw_host_mem = 0;        // one CPU core's copy rate (bounds host MPI copies)

  // --- achieved fraction of theoretical bandwidth ---
  double eff_nvlink = 1.0;
  double eff_xbus = 1.0;
  double eff_nic = 1.0;
  double eff_pack = 1.0;  // strided pack kernels reach this fraction of bw_gpu_mem

  /// Per-row cost of a strided (cudaMemcpy3D-style) DMA transfer, expressed
  /// as equivalent extra bytes per row: effective bandwidth scales by
  /// row_bytes / (row_bytes + strided_row_overhead). Long contiguous rows
  /// approach link speed; radius-thin x-face rows collapse — the reason
  /// pack kernels exist.
  double strided_row_overhead = 256.0;

  // --- fixed overheads ---
  sim::Duration lat_gpu_copy = 0;    // cudaMemcpy*Async wire latency
  sim::Duration lat_kernel = 0;      // kernel launch-to-start
  sim::Duration lat_mpi_intra = 0;   // same-node MPI message
  sim::Duration lat_mpi_inter = 0;   // cross-node MPI message
  sim::Duration cpu_issue = 0;       // CPU time to issue one async op
  sim::Duration lat_ipc_setup = 0;   // one-time cudaIpc* handle open

  // --- capabilities ---
  bool peer_within_socket = false;  // cudaDeviceCanAccessPeer within a triad
  bool peer_across_socket = false;  // ... across the X-Bus
  bool cuda_aware_mpi = false;      // MPI accepts device pointers

  int gpus_per_node() const { return sockets * gpus_per_socket; }
  int socket_of(int local_gpu) const { return local_gpu / gpus_per_socket; }

  /// Link type between two GPUs local to one node.
  LinkType gpu_link(int local_i, int local_j) const;

  /// Theoretical bandwidth (GiB/s) between two same-node GPUs, as a
  /// topology-discovery API (nvml-like) would report it. This is what the
  /// placement phase consumes as the QAP distance (reciprocal).
  double theoretical_gpu_bw(int local_i, int local_j) const;

  /// Whether peer (P2P) access can be enabled between two same-node GPUs.
  bool peer_capable(int local_i, int local_j) const;

  /// Bandwidth (GiB/s) a large transfer actually achieves between two
  /// same-node GPUs under the best available method — what an empirical
  /// probing pass (paper §VI) would measure: the peer link at its achieved
  /// efficiency, or the store-and-forward staged path when no peer access
  /// exists (1 / sum of per-hop inverse rates).
  double achieved_gpu_bw(int local_i, int local_j) const;
};

/// ORNL Summit node per the paper's Fig. 10 / Table I: 2 POWER9 sockets,
/// 3 V100s per socket, NVLink 50 GiB/s GPU-GPU and CPU-GPU within a triad,
/// 64 GiB/s X-Bus between sockets, dual EDR InfiniBand (2 x 12.5 GiB/s),
/// peer access only within a triad, CUDA-aware Spectrum MPI available.
NodeArchetype summit();

/// A DGX-like single-socket node: all GPUs are NVLink peers of each other.
NodeArchetype dgx_like(int gpus = 4);

/// A commodity PCIe box: no peer access, no CUDA-aware MPI, one socket.
NodeArchetype pcie_box(int gpus = 2);

}  // namespace stencil::topo
