#include "trace/recorder.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <map>
#include <ostream>

namespace stencil::trace {

std::uint64_t Recorder::record(std::string lane, std::string label, sim::Time start,
                               sim::Time end) {
  const std::uint64_t id = ++next_span_id_;
  records_.push_back(OpRecord{std::move(lane), std::move(label), start, end, /*rank=*/-1, id});
  return id;
}

void Recorder::add_flow(std::uint64_t from_span, std::uint64_t to_span, std::uint64_t msg,
                        std::string label) {
  if (from_span == 0 || to_span == 0 || from_span == to_span) return;
  flows_.push_back(FlowEdge{++next_flow_id_, from_span, to_span, msg, std::move(label)});
}

void Recorder::on_context_posted(int, std::uint64_t, std::uint64_t, std::uint64_t) {}
void Recorder::on_context_resolved(std::uint64_t) {}

void Recorder::clear() {
  records_.clear();
  flows_.clear();
  next_span_id_ = 0;
  next_flow_id_ = 0;
}

void Recorder::write_csv(std::ostream& os) const {
  std::vector<const OpRecord*> sorted;
  sorted.reserve(records_.size());
  for (const auto& r : records_) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(), [](const OpRecord* a, const OpRecord* b) {
    if (a->lane != b->lane) return a->lane < b->lane;
    return a->start < b->start;
  });
  os << "lane,label,start_us,end_us,duration_us\n";
  for (const OpRecord* r : sorted) {
    os << r->lane << ',' << r->label << ',' << sim::to_micros(r->start) << ','
       << sim::to_micros(r->end) << ',' << sim::to_micros(r->end - r->start) << '\n';
  }
}

void Recorder::write_gantt(std::ostream& os, sim::Time t0, sim::Time t1, int width) const {
  if (records_.empty()) {
    os << "(no operations recorded)\n";
    return;
  }
  if (t1 <= t0) {
    t0 = records_.front().start;
    t1 = records_.front().end;
    for (const auto& r : records_) {
      t0 = std::min(t0, r.start);
      t1 = std::max(t1, r.end);
    }
  }
  if (t1 <= t0) t1 = t0 + 1;
  width = std::max(width, 10);

  // Group by lane, preserving first-appearance order.
  std::vector<std::string> lane_order;
  std::map<std::string, std::vector<const OpRecord*>> lanes;
  for (const auto& r : records_) {
    auto [it, inserted] = lanes.try_emplace(r.lane);
    if (inserted) lane_order.push_back(r.lane);
    it->second.push_back(&r);
  }
  std::size_t lane_w = 4;
  for (const auto& l : lane_order) lane_w = std::max(lane_w, l.size());

  const double scale = static_cast<double>(width) / static_cast<double>(t1 - t0);
  os << "timeline: " << sim::format_duration(t1 - t0) << " total, '" << '#'
     << "' = " << sim::format_duration(static_cast<sim::Duration>((t1 - t0) / width)) << "\n";
  for (const auto& lane : lane_order) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const OpRecord* r : lanes[lane]) {
      if (r->end < t0 || r->start > t1) continue;  // entirely outside the window
      const auto clamp_col = [&](sim::Time t) {
        double c = static_cast<double>(t - t0) * scale;
        return std::min<std::size_t>(static_cast<std::size_t>(std::max(c, 0.0)),
                                     static_cast<std::size_t>(width - 1));
      };
      const std::size_t b = clamp_col(r->start);
      const std::size_t e = clamp_col(r->end > r->start ? r->end - 1 : r->start);
      for (std::size_t c = b; c <= e; ++c) row[c] = '#';
    }
    os << std::left << std::setw(static_cast<int>(lane_w)) << lane << " |" << row << "|\n";
  }
}

void Recorder::write_chrome_trace(std::ostream& os) const {
  // Stable lane -> tid mapping in first-appearance order.
  std::map<std::string, int> tids;
  std::vector<const std::string*> names;
  for (const auto& r : records_) {
    auto [it, inserted] = tids.try_emplace(r.lane, static_cast<int>(tids.size()));
    if (inserted) names.push_back(&it->first);
  }
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            // Remaining control characters are illegal raw in JSON strings.
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  };
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << escape(*names[i]) << "\"}}";
  }
  for (const auto& r : records_) {
    if (!first) os << ",";
    first = false;
    // Clamp instants (and any malformed span) to zero duration rather than
    // emitting a negative dur that chrome://tracing rejects.
    const sim::Duration dur = r.end > r.start ? r.end - r.start : 0;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[r.lane] << ",\"name\":\""
       << escape(r.label) << "\",\"ts\":" << sim::to_micros(r.start)
       << ",\"dur\":" << sim::to_micros(dur) << "}";
  }
  os << "]}\n";
}

}  // namespace stencil::trace
