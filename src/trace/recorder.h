#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simtime/time.h"

namespace stencil::trace {

/// One recorded operation span: `lane` identifies the resource or executor
/// (e.g. "gpu0.kernel", "gpu0->gpu1", "rank2.cpu", "nic0.out"), `label` the
/// operation (e.g. "pack +x", "MPI_Isend"). `rank` and `id` are filled by
/// causal recorders (dtrace::Collector); the plain Recorder assigns ids but
/// leaves rank at -1 (unattributed).
struct OpRecord {
  std::string lane;
  std::string label;
  sim::Time start = 0;
  sim::Time end = 0;
  int rank = -1;         // owning rank, -1 when the lane is shared/unattributed
  std::uint64_t id = 0;  // 1-based span id, unique within one recorder
};

/// A causal arrow between two recorded spans (a chrome-trace flow event):
/// the consumer span could not begin before the producer span produced.
/// `msg` carries the message identity (the simpi request serial) so
/// downstream analyses can recognize the same edge arriving from the
/// checker's happens-before log and avoid attaching it twice.
struct FlowEdge {
  std::uint64_t id = 0;         // flow id (binds the chrome s/t/f events)
  std::uint64_t from_span = 0;  // producer span id
  std::uint64_t to_span = 0;    // consumer span id
  std::uint64_t msg = 0;        // message identity (simpi serial), 0 if none
  std::string label;
};

/// Collects operation spans during a simulation and renders them as CSV or
/// an ASCII Gantt chart (the reproduction of the paper's Fig. 9 timeline).
/// Recording order is deterministic because the engine is token-scheduled.
class Recorder {
 public:
  virtual ~Recorder() = default;

  /// Records one span and returns its id (1-based). Virtual so causal
  /// recorders (dtrace::Collector) can attribute the span to a rank.
  virtual std::uint64_t record(std::string lane, std::string label, sim::Time start,
                               sim::Time end);

  /// True when this recorder wants causal annotations: the simpi layer only
  /// stamps trace contexts onto message envelopes, records post/deliver
  /// marker spans, and adds flow edges when the attached recorder opts in,
  /// so a plain Recorder keeps byte-identical output with older traces.
  virtual bool causal() const { return false; }

  /// Adds a causal arrow between two recorded span ids.
  void add_flow(std::uint64_t from_span, std::uint64_t to_span, std::uint64_t msg,
                std::string label);

  /// In-flight message-context bookkeeping (a send's context was stamped /
  /// the matching receive completed). No-ops here; dtrace::Collector tracks
  /// them so a stall report can name the messages still in the air.
  virtual void on_context_posted(int rank, std::uint64_t span, std::uint64_t seq,
                                 std::uint64_t serial);
  virtual void on_context_resolved(std::uint64_t serial);

  const std::vector<OpRecord>& records() const { return records_; }
  const std::vector<FlowEdge>& flows() const { return flows_; }
  bool empty() const { return records_.empty(); }
  void clear();

  /// `lane,label,start_us,end_us,duration_us` rows, sorted by (lane, start).
  void write_csv(std::ostream& os) const;

  /// One row per lane; spans rendered as blocks over [t0, t1] scaled to
  /// `width` columns. t1 <= t0 means auto-fit to the recorded range.
  void write_gantt(std::ostream& os, sim::Time t0 = 0, sim::Time t1 = 0, int width = 100) const;

  /// Chrome tracing format (chrome://tracing, Perfetto): one complete ("X")
  /// event per span, lanes mapped to thread ids of a single process.
  void write_chrome_trace(std::ostream& os) const;

 protected:
  std::vector<OpRecord> records_;
  std::vector<FlowEdge> flows_;
  std::uint64_t next_span_id_ = 0;
  std::uint64_t next_flow_id_ = 0;
};

}  // namespace stencil::trace
