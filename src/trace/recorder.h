#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simtime/time.h"

namespace stencil::trace {

/// One recorded operation span: `lane` identifies the resource or executor
/// (e.g. "gpu0.kernel", "gpu0->gpu1", "rank2.cpu", "nic0.out"), `label` the
/// operation (e.g. "pack +x", "MPI_Isend").
struct OpRecord {
  std::string lane;
  std::string label;
  sim::Time start = 0;
  sim::Time end = 0;
};

/// Collects operation spans during a simulation and renders them as CSV or
/// an ASCII Gantt chart (the reproduction of the paper's Fig. 9 timeline).
/// Recording order is deterministic because the engine is token-scheduled.
class Recorder {
 public:
  void record(std::string lane, std::string label, sim::Time start, sim::Time end);

  const std::vector<OpRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// `lane,label,start_us,end_us,duration_us` rows, sorted by (lane, start).
  void write_csv(std::ostream& os) const;

  /// One row per lane; spans rendered as blocks over [t0, t1] scaled to
  /// `width` columns. t1 <= t0 means auto-fit to the recorded range.
  void write_gantt(std::ostream& os, sim::Time t0 = 0, sim::Time t1 = 0, int width = 100) const;

  /// Chrome tracing format (chrome://tracing, Perfetto): one complete ("X")
  /// event per span, lanes mapped to thread ids of a single process.
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::vector<OpRecord> records_;
};

}  // namespace stencil::trace
