#include "recover/recover.h"

#include <algorithm>

#include "core/tagspace.h"

namespace stencil::recover {

const char* to_string(FailureKind k) {
  switch (k) {
    case FailureKind::kNone: return "none";
    case FailureKind::kTransient: return "transient";
    case FailureKind::kCapability: return "capability";
    case FailureKind::kLocalDeviceLoss: return "local-device-loss";
    case FailureKind::kPeerDeath: return "peer-death";
  }
  return "?";
}

FailureEvent classify(const std::exception& e, simpi::Job& job, int me, sim::Time now) {
  FailureEvent ev;
  ev.what = e.what();
  // Oracle first: if *we* are dead, every symptom — DeviceLost from a
  // kernel launch, a TransportError because our NIC went with the node —
  // means the same thing: abort, drain, leave.
  if (job.rank_fail_time(me) <= now) {
    ev.kind = FailureKind::kLocalDeviceLoss;
    ev.peer = me;
    return ev;
  }
  if (const auto* te = dynamic_cast<const simpi::TransportError*>(&e)) {
    ev.peer = te->peer();
    ev.tag = te->tag();
    switch (te->code()) {
      case simpi::TransportError::Code::kPeerDead:
      case simpi::TransportError::Code::kRevoked:
        // kRevoked means *someone* observed a death and revoked; the
        // recovery path derives the dead set from the oracle, so the event
        // needs no peer id of its own.
        ev.kind = FailureKind::kPeerDeath;
        break;
      case simpi::TransportError::Code::kTimeout:
      case simpi::TransportError::Code::kRetriesExhausted:
        ev.kind = FailureKind::kTransient;
        break;
    }
    return ev;
  }
  if (const auto* dl = dynamic_cast<const vgpu::DeviceLost*>(&e)) {
    ev.kind = FailureKind::kLocalDeviceLoss;
    ev.peer = me;
    ev.tag = dl->device();
    return ev;
  }
  if (dynamic_cast<const vgpu::CapabilityError*>(&e) != nullptr) {
    // The exchange layer demotes the transfer itself (fail-down); by the
    // time this surfaces the retry is all that is left to do.
    ev.kind = FailureKind::kCapability;
    return ev;
  }
  return ev;  // kNone: not ours to handle
}

// --- CheckpointStore --------------------------------------------------------

namespace {
// Blob-exchange tags from the central registry (core/tagspace.h): kept clear
// of the exchange layer's data, setup, and aggregation spaces, and
// bounds-checked so checkpoint tags can never bleed into restore tags.
int checkpoint_tag(std::int64_t lin, std::size_t q) {
  return tagspace::checkpoint_tag(lin, q);
}
int restore_tag(std::int64_t lin, std::size_t q) {
  return tagspace::restore_tag(lin, q);
}
}  // namespace

CheckpointStore::CheckpointStore(RankCtx& ctx, DistributedDomain& dd) : ctx_(ctx), dd_(dd) {}

int CheckpointStore::ring_index(const std::vector<int>& ring, int rank) {
  const auto it = std::find(ring.begin(), ring.end(), rank);
  return it == ring.end() ? -1 : static_cast<int>(it - ring.begin());
}

int CheckpointStore::ring_offset(const std::vector<int>& ring) const {
  // ranks_per_node positions ahead puts the buddy on the next node, so a
  // whole-node failure never takes a rank and its buddy together. Clamped
  // for tiny rings (the partner must be a different rank).
  const int n = static_cast<int>(ring.size());
  return std::min(ctx_.comm.job().ranks_per_node(), n - 1);
}

int CheckpointStore::holder_under(const std::vector<int>& ring, int rank) const {
  const int i = ring_index(ring, rank);
  if (i < 0) return -1;
  const int n = static_cast<int>(ring.size());
  return ring[static_cast<std::size_t>((i + ring_offset(ring)) % n)];
}

int CheckpointStore::buddy_of(int rank) const {
  const Gen* latest = nullptr;
  for (const Gen& g : slots_) {
    if (g.iter >= 0 && (latest == nullptr || g.iter > latest->iter)) latest = &g;
  }
  return latest == nullptr ? -1 : holder_under(latest->ring, rank);
}

std::vector<Dim3> CheckpointStore::subdomains_of_rank(int rank) const {
  const Placement& placement = dd_.placement();
  const int gpn = ctx_.machine.gpus_per_node();
  const int rpn = ctx_.comm.job().ranks_per_node();
  const int gpr = gpn / rpn;
  const int node = rank / rpn;
  const int slot = rank % rpn;
  std::vector<Dim3> out;
  for (int k = 0; k < gpr; ++k) {
    for (const Dim3 idx : placement.subdomains_on(node, slot * gpr + k)) out.push_back(idx);
  }
  return out;
}

std::size_t CheckpointStore::blob_bytes(Dim3 idx, std::size_t q) const {
  // Full storage including halos: restore then needs no re-exchange to be
  // bit-exact with the failure-free run at the same iteration boundary.
  const Dim3 storage = dd_.placement().partition().subdomain_size(idx) + dd_.radius().padding();
  return static_cast<std::size_t>(storage.volume()) * dd_.quantities()[q].elem_size;
}

CheckpointStore::Gen* CheckpointStore::committed_gen(std::int64_t iter) {
  for (Gen& g : slots_) {
    if (g.iter == iter) return &g;
  }
  return nullptr;
}

void CheckpointStore::checkpoint(std::int64_t iter) {
  simpi::Job& job = ctx_.comm.job();
  if (job.revoked()) {
    throw simpi::TransportError(simpi::TransportError::Code::kRevoked, -1, -1,
                                "checkpoint: communicator revoked (recovery pending)");
  }
  const int me = ctx_.comm.rank();
  std::vector<int> ring;
  for (int r = 0; r < job.world_size(); ++r) {
    if (!job.rank_retired(r)) ring.push_back(r);
  }
  const int n = static_cast<int>(ring.size());
  const int off = ring_offset(ring);
  const int my_i = ring_index(ring, me);
  if (my_i < 0) throw std::logic_error("checkpoint: calling rank is retired");
  const int out = ring[static_cast<std::size_t>((my_i + off) % n)];
  const int in = ring[static_cast<std::size_t>(((my_i - off) % n + n) % n)];

  // Overwrite the *older* slot; the newer generation stays committed until
  // this one is, so a buddy death mid-checkpoint loses nothing.
  Gen& g = slots_[next_slot_];
  next_slot_ ^= 1;
  g.iter = -1;
  g.ring = ring;
  g.self.clear();
  g.peer.clear();

  auto& rt = ctx_.rt;
  const auto& qs = dd_.quantities();
  const Dim3 ext = dd_.placement().partition().global_extent();

  // D2H every local subdomain into fresh pinned blobs. The blobs must sit
  // in their final home *before* any async op references them: requests and
  // copies hold Buffer pointers, so a Buffer moved after posting dangles.
  dd_.for_each_subdomain([&](LocalDomain& ld) {
    SubBlob blob;
    blob.lin = ld.index().linearize(ext);
    blob.qs.reserve(qs.size());
    for (std::size_t q = 0; q < qs.size(); ++q) {
      blob.qs.push_back(rt.alloc_pinned_host(ctx_.node(), blob_bytes(ld.index(), q)));
    }
    SubBlob& stored = g.self.insert_or_assign(blob.lin, std::move(blob)).first->second;
    for (std::size_t q = 0; q < qs.size(); ++q) {
      rt.memcpy_async(stored.qs[q], 0, ld.data(q), 0, stored.qs[q].size(), ld.compute_stream());
    }
    rt.stream_synchronize(ld.compute_stream());
  });

  // Swap blobs with the buddies: mine go `off` ahead, my ward's come from
  // `off` behind. Skipped entirely for a ring of one.
  if (out != me) {
    std::vector<simpi::Request> reqs;
    for (auto& [lin, blob] : g.self) {
      for (std::size_t q = 0; q < blob.qs.size(); ++q) {
        reqs.push_back(ctx_.comm.isend(simpi::Payload::of(blob.qs[q], 0, blob.qs[q].size()), out,
                                       checkpoint_tag(lin, q)));
      }
    }
    for (const Dim3 idx : subdomains_of_rank(in)) {
      SubBlob blob;
      blob.lin = idx.linearize(ext);
      blob.qs.reserve(qs.size());
      for (std::size_t q = 0; q < qs.size(); ++q) {
        blob.qs.push_back(rt.alloc_pinned_host(ctx_.node(), blob_bytes(idx, q)));
      }
      SubBlob& stored = g.peer.insert_or_assign(blob.lin, std::move(blob)).first->second;
      for (std::size_t q = 0; q < qs.size(); ++q) {
        reqs.push_back(ctx_.comm.irecv(simpi::Payload::of(stored.qs[q], 0, stored.qs[q].size()),
                                       in, checkpoint_tag(stored.lin, q)));
      }
    }
    ctx_.comm.waitall(reqs);
  }

  g.iter = iter;  // commit last: a throw above leaves this slot invalid
  ++committed_;
  dd_.telemetry().on_recover_step("checkpoint",
                                  "iter=" + std::to_string(iter) +
                                      " buddy=" + std::to_string(out),
                                  ctx_.engine().now());
}

std::int64_t CheckpointStore::my_latest() const {
  std::int64_t latest = -1;
  for (const Gen& g : slots_) latest = std::max(latest, g.iter);
  return latest;
}

std::int64_t CheckpointStore::negotiate_floor(simpi::Comm& survivors) const {
  const std::int64_t mine = my_latest();
  std::vector<std::int64_t> all(static_cast<std::size_t>(survivors.size()));
  survivors.allgather(&mine, all.data(), sizeof(std::int64_t));
  std::int64_t floor = mine;
  for (const std::int64_t v : all) floor = std::min(floor, v);
  return floor;
}

void CheckpointStore::restore(std::int64_t k0,
                              const std::vector<DistributedDomain::Rehome>& moves) {
  Gen* g = committed_gen(k0);
  if (g == nullptr) {
    throw std::runtime_error("restore: generation " + std::to_string(k0) +
                             " is not committed on this rank");
  }
  simpi::Job& job = ctx_.comm.job();
  auto& rt = ctx_.rt;
  const int me = ctx_.comm.rank();
  const std::size_t nq = dd_.quantities().size();

  // 1. Rewind our own subdomains (every survivor rolls back to k0 — global
  //    state must be the iteration-k0 state everywhere for bit-exactness).
  const Dim3 ext = dd_.placement().partition().global_extent();
  for (auto& [lin, blob] : g->self) {
    LocalDomain* ld = dd_.local_by_subdomain(Dim3::from_linear(lin, ext));
    if (ld == nullptr) continue;  // cannot happen for a survivor
    for (std::size_t q = 0; q < nq; ++q) {
      rt.memcpy_async(ld->data(q), 0, blob.qs[q], 0, blob.qs[q].size(), ld->compute_stream());
    }
    rt.stream_synchronize(ld->compute_stream());
  }

  // 2. Route each re-homed subdomain's blobs from the dead rank's buddy
  //    (under the generation's ring) to its adopter. All survivors walk the
  //    same deterministic move list, so sends and receives pair up.
  std::vector<simpi::Request> reqs;
  std::vector<std::pair<const DistributedDomain::Rehome*, std::vector<vgpu::Buffer>>> incoming;
  for (const auto& rh : moves) {
    const int holder = holder_under(g->ring, rh.old_rank);
    if (holder < 0) {
      throw std::runtime_error("restore: dead rank " + std::to_string(rh.old_rank) +
                               " was not in the checkpoint ring");
    }
    if (job.rank_retired(holder) || job.rank_fail_time(holder) <= ctx_.engine().now()) {
      throw std::runtime_error("restore: rank " + std::to_string(rh.old_rank) +
                               " and its buddy " + std::to_string(holder) +
                               " both died — checkpoint unrecoverable");
    }
    if (holder == me) {
      const auto it = g->peer.find(rh.lin);
      if (it == g->peer.end()) {
        throw std::runtime_error("restore: missing buddy blob for subdomain lin=" +
                                 std::to_string(rh.lin));
      }
      if (rh.new_rank == me) {
        LocalDomain* ld = dd_.local_by_subdomain(rh.idx);
        for (std::size_t q = 0; q < nq; ++q) {
          rt.memcpy_async(ld->data(q), 0, it->second.qs[q], 0, it->second.qs[q].size(),
                          ld->compute_stream());
        }
        rt.stream_synchronize(ld->compute_stream());
      } else {
        for (std::size_t q = 0; q < nq; ++q) {
          reqs.push_back(ctx_.comm.isend(
              simpi::Payload::of(it->second.qs[q], 0, it->second.qs[q].size()), rh.new_rank,
              restore_tag(rh.lin, q)));
        }
      }
    } else if (rh.new_rank == me) {
      std::vector<vgpu::Buffer> bufs;
      bufs.reserve(nq);
      for (std::size_t q = 0; q < nq; ++q) {
        bufs.push_back(rt.alloc_pinned_host(ctx_.node(), blob_bytes(rh.idx, q)));
      }
      // Park the blobs first: the requests hold Buffer pointers, and moving
      // a vector<Buffer> keeps its heap storage (and so those pointers) alive.
      incoming.emplace_back(&rh, std::move(bufs));
      std::vector<vgpu::Buffer>& stored = incoming.back().second;
      for (std::size_t q = 0; q < nq; ++q) {
        reqs.push_back(ctx_.comm.irecv(simpi::Payload::of(stored[q], 0, stored[q].size()),
                                       holder, restore_tag(rh.lin, q)));
      }
    }
  }
  ctx_.comm.waitall(reqs);
  for (auto& [rh, bufs] : incoming) {
    LocalDomain* ld = dd_.local_by_subdomain(rh->idx);
    for (std::size_t q = 0; q < nq; ++q) {
      rt.memcpy_async(ld->data(q), 0, bufs[q], 0, bufs[q].size(), ld->compute_stream());
    }
    rt.stream_synchronize(ld->compute_stream());
  }
  dd_.telemetry().on_recover_step("restore",
                                  "floor=" + std::to_string(k0) +
                                      " moves=" + std::to_string(moves.size()),
                                  ctx_.engine().now());
}

// --- RecoveryManager --------------------------------------------------------

RecoveryManager::RecoveryManager(RankCtx& ctx, DistributedDomain& dd, std::int64_t cadence)
    : ctx_(ctx), dd_(dd), store_(ctx, dd), cadence_(cadence) {
  if (cadence < 0) throw std::invalid_argument("RecoveryManager: negative cadence");
}

void RecoveryManager::record_step(const std::string& chosen, double score,
                                  const std::string& alt, double alt_score,
                                  const std::string& subject, const std::string& detail) {
  explain::Ledger* led = ctx_.cluster.explain_ledger();
  if (led == nullptr) return;
  explain::DecisionRecord rec;
  rec.kind = explain::DecisionKind::kRecoverStep;
  rec.at = ctx_.engine().now();
  rec.actor = ctx_.comm.rank();
  rec.subject = subject;
  rec.chosen = chosen;
  rec.chosen_score = score;
  rec.rejected.push_back({alt, alt_score});
  rec.detail = detail.empty()
                   ? "score = ladder rung (0 retry ... 3 shrink, 4 cold restart)"
                   : detail + "; score = ladder rung (0 retry ... 3 shrink, 4 cold restart)";
  led->append(std::move(rec));
}

bool RecoveryManager::maybe_checkpoint(std::int64_t iter) {
  if (cadence_ == 0 || iter % cadence_ != 0) return false;
  store_.checkpoint(iter);
  ++stats_.checkpoints;
  export_metrics();
  return true;
}

std::int64_t RecoveryManager::recover(const FailureEvent& ev, std::int64_t iter) {
  simpi::Job& job = ctx_.comm.job();
  auto& eng = ctx_.engine();
  const int me = ctx_.comm.rank();
  switch (ev.kind) {
    case FailureKind::kNone:
      throw std::logic_error("recover: unclassified failure: " + ev.what);
    case FailureKind::kTransient:
      ++stats_.transient_retries;
      dd_.telemetry().on_recover_step("retry", ev.what, eng.now());
      record_step("retry (replay iteration " + std::to_string(iter) + ")", 0.0,
                  "shrink + rollback to checkpoint floor", 3.0, ev.what,
                  "transient fault: nothing died, nothing to re-place");
      export_metrics();
      return iter;
    case FailureKind::kCapability:
      ++stats_.capability_demotions;
      dd_.telemetry().on_recover_step("demote", ev.what, eng.now());
      record_step("demote (fail-down, replay iteration " + std::to_string(iter) + ")", 1.0,
                  "shrink + rollback to checkpoint floor", 3.0, ev.what,
                  "capability revoked: re-specialize affected transfers to staged");
      export_metrics();
      return iter;
    case FailureKind::kLocalDeviceLoss:
      // We are the casualty. Stop touching shared state, then park until
      // the survivors of our incident have retired us and finished their
      // restores (which read the blobs and channels we still own). The
      // drain ledger is per-incident: await_drain also requires that we
      // have actually been retired.
      dd_.telemetry().on_recover_step("die", "rank=" + std::to_string(me), eng.now());
      record_step("die (park until survivors retire this rank)", 2.0,
                  "survivor shrink protocol (not applicable: we are the casualty)", 3.0,
                  "rank=" + std::to_string(me), "local device lost");
      dd_.recover_abort();
      job.await_drain(me);
      return kRankGone;
    case FailureKind::kPeerDeath:
      break;
  }

  // Survivor path: revoke -> agree on the incident -> retire -> abort ->
  // re-place -> resync -> restore -> barrier -> resume.
  job.revoke();

  // The incident covers every death this rank has not yet processed that
  // has manifested by now. Keyed off the LOCAL processed set, not the
  // global retirement flags: the first survivor through retires the dead
  // immediately, and later arrivals must still run the full protocol (the
  // shrink-comm collectives and the post-recovery barrier block until every
  // survivor joins) or the incident would wedge.
  sim::Time first_fail = fault::kForever;
  for (int r = 0; r < job.world_size(); ++r) {
    if (processed_.count(r) != 0) continue;
    const sim::Time ft = job.rank_fail_time(r);
    if (ft <= eng.now() && ft < first_fail) first_fail = ft;
  }
  if (first_fail == fault::kForever) {
    // A revoke with no unprocessed death behind it (e.g. a scripted
    // transient revoke_peer event): clear the flag and replay the
    // iteration. Nothing was re-placed, so no collectives are owed.
    job.clear_revoke();
    dd_.telemetry().on_recover_step("revoke-clear", ev.what, eng.now());
    record_step("clear spurious revoke (replay iteration " + std::to_string(iter) + ")", 0.0,
                "full incident protocol (shrink + rollback)", 3.0, ev.what,
                "revoke with no unprocessed death behind it");
    return iter;
  }
  const fault::Injector* inj = ctx_.machine.fault_injector();
  const sim::Time horizon = first_fail + (inj != nullptr ? inj->detect_latency() : sim::Time{0});
  // Failure-detector bound: deaths by the horizon fold into this incident
  // on every survivor identically; later deaths form the next incident.
  eng.sleep_until(horizon);

  std::vector<int> dead;
  for (int r = 0; r < job.world_size(); ++r) {
    if (processed_.count(r) == 0 && job.rank_fail_time(r) <= horizon) dead.push_back(r);
  }
  for (const int r : dead) {
    processed_.insert(r);
    job.retire_rank(r);
    dd_.telemetry().on_recover_step("retire", "rank=" + std::to_string(r), eng.now());
    record_step("retire rank " + std::to_string(r) + " (fold into this incident)", 2.0,
                "defer to a later incident (risk a wedged protocol)", 4.0,
                "rank=" + std::to_string(r), "death manifested within the detector horizon");
  }
  stats_.ranks_retired += dead.size();

  dd_.recover_abort();
  const std::vector<DistributedDomain::Rehome> moves = dd_.recover_replace(dead);
  simpi::Comm survivors = ctx_.comm.shrink();

  // Survivors can be a few iterations apart; agree on the max exchange
  // sequence so pairwise flow control counts from one value everywhere.
  const std::int64_t my_seq = static_cast<std::int64_t>(dd_.exchanges_done());
  std::vector<std::int64_t> seqs(static_cast<std::size_t>(survivors.size()));
  survivors.allgather(&my_seq, seqs.data(), sizeof(std::int64_t));
  std::int64_t max_seq = my_seq;
  for (const std::int64_t s : seqs) max_seq = std::max(max_seq, s);
  dd_.resync_seq(static_cast<std::uint64_t>(max_seq));

  std::int64_t back = iter;
  if (cadence_ > 0) {
    const std::int64_t k0 = store_.negotiate_floor(survivors);
    if (k0 < 0) throw std::runtime_error("recover: no commonly committed checkpoint");
    store_.restore(k0, moves);
    back = k0;
  }

  // Post-recovery barrier: every survivor has aborted its stale operations
  // and finished restoring, so the incident can close and the dying ranks
  // may depart.
  ctx_.comm.barrier();
  job.clear_revoke();
  job.release_drained(me);

  ++stats_.recoveries;
  stats_.last_mttr = eng.now() - first_fail;
  stats_.last_floor = back;
  export_metrics();
  dd_.telemetry().on_recover_step("shrink",
                                  "live=" + std::to_string(job.live_count()) +
                                      " floor=" + std::to_string(back) +
                                      " mttr_ns=" + std::to_string(stats_.last_mttr),
                                  eng.now());
  record_step("shrink to " + std::to_string(job.live_count()) + " live + rollback to floor " +
                  std::to_string(back),
              3.0, "cold restart from iteration 0", 4.0,
              std::to_string(dead.size()) + " rank(s) retired",
              "replays " + std::to_string(iter - back) + " iteration(s), mttr_ns=" +
                  std::to_string(stats_.last_mttr));
  return back;
}

void RecoveryManager::export_metrics() {
  auto& reg = dd_.telemetry().metrics();
  reg.gauge("recover_checkpoints").set(static_cast<double>(stats_.checkpoints));
  reg.gauge("recover_recoveries").set(static_cast<double>(stats_.recoveries));
  reg.gauge("recover_ranks_retired").set(static_cast<double>(stats_.ranks_retired));
  reg.gauge("recover_last_mttr_ns").set(static_cast<double>(stats_.last_mttr));
  reg.gauge("recover_last_floor").set(static_cast<double>(stats_.last_floor));
}

}  // namespace stencil::recover
