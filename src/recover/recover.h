#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "simpi/mpi.h"
#include "vgpu/buffer.h"

namespace stencil::recover {

/// What a caught exception means for the recovery ladder (DESIGN.md §13).
/// The ladder escalates: retry (transient loss) -> demote (capability gone,
/// already handled by the exchange layer's fail-down) -> re-place + shrink
/// (a rank is permanently dead) -> die (the failed rank is *us*).
enum class FailureKind {
  kNone,            // not a recoverable failure: rethrow
  kTransient,       // timeout / retries exhausted: back off and retry
  kCapability,      // capability lost, transfer demoted: just retry
  kLocalDeviceLoss, // our own GPU/node died: abort, drain, exit
  kPeerDeath,       // a peer rank is permanently dead: full recovery
};

const char* to_string(FailureKind k);

/// A classified failure, carrying what the exception knew.
struct FailureEvent {
  FailureKind kind = FailureKind::kNone;
  int peer = -1;  // dead/suspect world rank, when known
  int tag = 0;    // transfer tag implicated, when known
  std::string what;
};

/// Map a caught exception to a FailureEvent. `me` is the caller's world
/// rank; the oracle check comes first — any error on a rank that is itself
/// dead (its GPUs are gone) classifies as local device loss regardless of
/// which symptom surfaced first.
FailureEvent classify(const std::exception& e, simpi::Job& job, int me, sim::Time now);

/// In-memory buddy checkpointing: each rank keeps the two most recent
/// committed generations of (a) its own subdomains and (b) its buddy's,
/// exchanged over MPI into pinned host memory. The buddy is `ranks_per_node`
/// positions ahead in the live ring, so a partner lands on another node and
/// survives kNodeFail. Two alternating slots make a failure *during* a
/// checkpoint harmless: the previous generation stays committed.
///
/// All sizing derives from the shared Placement, so a rank can allocate
/// receive buffers for its buddy's subdomains without any metadata
/// exchange. Works for phantom (timing-only) buffers too: the copies cost
/// virtual time but move no bytes.
class CheckpointStore {
 public:
  CheckpointStore(RankCtx& ctx, DistributedDomain& dd);

  /// Checkpoint the current state, labelled `iter` (caller's iteration
  /// counter; restore() hands it back so the loop can rewind). Collective
  /// over the live ranks. Throws TransportError if a buddy dies mid-way —
  /// the generation is then left uncommitted.
  void checkpoint(std::int64_t iter);

  /// Newest committed generation label, or -1 if none.
  std::int64_t my_latest() const;

  /// Agree on the restore floor: min over the survivors' my_latest().
  /// Collective over `survivors` (a shrunk communicator).
  std::int64_t negotiate_floor(simpi::Comm& survivors) const;

  /// Restore generation `k0` everywhere: every survivor rewinds its own
  /// subdomains, and each re-homed subdomain's data is routed from the dead
  /// rank's buddy (under the generation's ring) to its adopter. Throws if
  /// k0 is not committed here or a needed buddy is dead too (a rank and its
  /// buddy lost together is unrecoverable by design — one failure per
  /// incident per buddy chain).
  void restore(std::int64_t k0, const std::vector<DistributedDomain::Rehome>& moves);

  /// The rank holding `rank`'s checkpoint blobs under the latest committed
  /// generation's ring (or -1): exposed for tests.
  int buddy_of(int rank) const;

  std::uint64_t generations() const { return committed_; }

 private:
  struct SubBlob {
    std::int64_t lin = -1;
    std::vector<vgpu::Buffer> qs;  // pinned host, one per quantity
  };
  struct Gen {
    std::int64_t iter = -1;  // -1 = uncommitted
    std::vector<int> ring;   // live world ranks at checkpoint time
    std::map<std::int64_t, SubBlob> self;
    std::map<std::int64_t, SubBlob> peer;  // buddy's subdomains
  };

  static int ring_index(const std::vector<int>& ring, int rank);
  int ring_offset(const std::vector<int>& ring) const;
  // Holder of `rank`'s blobs under `ring`, or -1 when `rank` is not a member.
  int holder_under(const std::vector<int>& ring, int rank) const;
  std::vector<Dim3> subdomains_of_rank(int rank) const;
  std::size_t blob_bytes(Dim3 idx, std::size_t q) const;
  Gen* committed_gen(std::int64_t iter);

  RankCtx& ctx_;
  DistributedDomain& dd_;
  Gen slots_[2];
  int next_slot_ = 0;
  std::uint64_t committed_ = 0;
};

/// Counters the manager keeps (also exported as telemetry gauges).
struct RecoveryStats {
  std::uint64_t checkpoints = 0;
  std::uint64_t transient_retries = 0;
  std::uint64_t capability_demotions = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t ranks_retired = 0;
  sim::Time last_mttr = 0;       // first failure instant -> recovery done
  std::int64_t last_floor = -1;  // iteration restored from
};

/// The recovery policy ladder, one instance per rank:
///
///   stencil::recover::RecoveryManager rm(ctx, dd, /*cadence=*/16);
///   for (std::int64_t it = 0; it < steps;) {
///     try {
///       rm.maybe_checkpoint(it);
///       dd.exchange();
///       step(dd);
///       ++it;
///     } catch (const std::exception& e) {
///       const auto ev = stencil::recover::classify(e, ctx.comm.job(),
///                                                  ctx.rank(), now);
///       const std::int64_t back = rm.recover(ev, it);
///       if (back == stencil::recover::RecoveryManager::kRankGone) return;
///       it = back;
///     }
///   }
///
/// maybe_checkpoint(it) snapshots the state *entering* iteration `it`;
/// recover() returns the iteration to resume from (k0: redo k0, k0+1, ...),
/// the caller's own `iter` for transient/capability events, or kRankGone
/// when this rank is the casualty and must leave the SPMD body.
class RecoveryManager {
 public:
  static constexpr std::int64_t kRankGone = -1;

  /// cadence 0 disables checkpointing (recovery then re-homes but cannot
  /// restore lost data; it returns the caller's `iter` unchanged).
  RecoveryManager(RankCtx& ctx, DistributedDomain& dd, std::int64_t cadence);

  /// Checkpoint when `iter` is a cadence multiple (including 0 — the
  /// initial condition is the floor of last resort). Returns true if a
  /// checkpoint was taken.
  bool maybe_checkpoint(std::int64_t iter);

  /// Run the ladder for one classified failure. See the class comment for
  /// the return protocol. Unclassified events (kNone) rethrow as logic
  /// errors — the caller should not have routed them here.
  std::int64_t recover(const FailureEvent& ev, std::int64_t iter);

  CheckpointStore& store() { return store_; }
  const RecoveryStats& stats() const { return stats_; }
  std::int64_t cadence() const { return cadence_; }

 private:
  void export_metrics();
  // Decision provenance (stencil::explain): one kRecoverStep record per
  // ladder rung taken, scored by ladder position (0 retry ... 3 shrink,
  // 4 cold restart), with the avoided more-drastic rung as the rejected
  // alternative. No-op without a cluster-attached ledger.
  void record_step(const std::string& chosen, double score, const std::string& alt,
                   double alt_score, const std::string& subject, const std::string& detail);

  RankCtx& ctx_;
  DistributedDomain& dd_;
  CheckpointStore store_;
  std::int64_t cadence_ = 0;
  RecoveryStats stats_;
  // World ranks whose death THIS rank has folded into a completed (or
  // in-flight) incident. Global retirement flags cannot drive the incident
  // scope: the first survivor retires the dead instantly, and every other
  // survivor must still walk the same protocol.
  std::set<int> processed_;
};

}  // namespace stencil::recover
