#include "explain/explain.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace stencil::explain {

const char* to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kPartition: return "partition";
    case DecisionKind::kPlacement: return "placement";
    case DecisionKind::kSpecialization: return "specialization";
    case DecisionKind::kDemotion: return "demotion";
    case DecisionKind::kAggregation: return "aggregation";
    case DecisionKind::kPlanCompile: return "plan-compile";
    case DecisionKind::kPlanMigrate: return "plan-migrate";
    case DecisionKind::kSchedAdmission: return "sched-admission";
    case DecisionKind::kSchedPlacement: return "sched-placement";
    case DecisionKind::kRecoverStep: return "recover-step";
  }
  return "?";
}

std::uint64_t Ledger::append(DecisionRecord r) {
  r.id = next_id_++;
  ++total_recorded_;
  ++by_kind_[static_cast<std::size_t>(r.kind)];
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(r));
  return ring_.back().id;
}

void Ledger::bump(std::uint64_t id) {
  // Ids are dense and the ring evicts from the front, so the live range is
  // [front.id, front.id + size): one subtraction finds the slot.
  if (ring_.empty() || id < ring_.front().id) return;
  const std::uint64_t off = id - ring_.front().id;
  if (off >= ring_.size()) return;
  ++ring_[static_cast<std::size_t>(off)].repeats;
}

const DecisionRecord* Ledger::find(std::uint64_t id) const {
  if (ring_.empty() || id < ring_.front().id) return nullptr;
  const std::uint64_t off = id - ring_.front().id;
  if (off >= ring_.size()) return nullptr;
  return &ring_[static_cast<std::size_t>(off)];
}

void Ledger::clear() {
  ring_.clear();
  next_id_ = 0;
  total_recorded_ = 0;
  for (auto& c : by_kind_) c = 0;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Ledger::write_json(std::ostream& os, const std::string& name) const {
  os << "{\n\"schema\": \"explain-v1\",\n\"name\": \"" << json_escape(name)
     << "\",\n\"total_recorded\": " << total_recorded_
     << ",\n\"dropped\": " << total_recorded_ - ring_.size() << ",\n\"by_kind\": {";
  for (int k = 0; k < kDecisionKinds; ++k) {
    os << (k == 0 ? "" : ", ") << "\"" << to_string(static_cast<DecisionKind>(k))
       << "\": " << by_kind_[static_cast<std::size_t>(k)];
  }
  os << "},\n\"records\": [";
  bool first = true;
  for (const auto& r : ring_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"id\": " << r.id << ", \"kind\": \"" << to_string(r.kind) << "\", \"at_ns\": "
       << r.at << ", \"actor\": " << r.actor << ", \"subject\": \"" << json_escape(r.subject)
       << "\", \"chosen\": \"" << json_escape(r.chosen)
       << "\", \"chosen_score\": " << fmt_double(r.chosen_score) << ", \"rejected\": [";
    for (std::size_t i = 0; i < r.rejected.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "{\"option\": \"" << json_escape(r.rejected[i].option)
         << "\", \"score\": " << fmt_double(r.rejected[i].score) << "}";
    }
    os << "], \"score_delta\": " << fmt_double(r.score_delta()) << ", \"work\": " << r.work
       << ", \"repeats\": " << r.repeats;
    if (!r.detail.empty()) os << ", \"detail\": \"" << json_escape(r.detail) << "\"";
    os << "}";
  }
  os << (first ? "" : "\n") << "]\n}\n";
}

void Ledger::write_report(std::ostream& os) const {
  os << "decision provenance: " << total_recorded_ << " recorded, " << ring_.size()
     << " retained\n";
  for (int k = 0; k < kDecisionKinds; ++k) {
    const auto kind = static_cast<DecisionKind>(k);
    if (by_kind_[static_cast<std::size_t>(k)] == 0) continue;
    os << "\n[" << to_string(kind) << "] x" << by_kind_[static_cast<std::size_t>(k)] << "\n";
    for (const auto& r : ring_) {
      if (r.kind != kind) continue;
      os << "  #" << r.id << " t=" << r.at << "ns";
      if (r.actor >= 0) os << " actor=" << r.actor;
      os << " " << r.subject << ": chose \"" << r.chosen << "\" (score "
         << fmt_double(r.chosen_score) << ")";
      if (r.repeats > 0) os << " x" << r.repeats + 1;
      os << "\n";
      for (const auto& alt : r.rejected) {
        os << "      rejected \"" << alt.option << "\" (score " << fmt_double(alt.score)
           << ", delta " << fmt_double(alt.score - r.chosen_score) << ")\n";
      }
      if (r.work > 0) os << "      work: " << r.work << " candidates evaluated\n";
      if (!r.detail.empty()) os << "      " << r.detail << "\n";
    }
  }
}

double predict_healthy_exchange_ms(double observed_ms, std::uint64_t exchanges,
                                   const std::vector<LaneObservation>& lanes) {
  if (exchanges == 0) return observed_ms;
  // The exchange waits for its slowest wire: per-exchange critical wire
  // time is the max over lanes of the window-average occupancy. Healthy,
  // each lane's occupancy shrinks by its cost factor.
  double worst_observed = 0.0;
  double worst_healthy = 0.0;
  for (const auto& l : lanes) {
    const double per_ex = l.actual_ns / static_cast<double>(exchanges);
    worst_observed = std::max(worst_observed, per_ex);
    worst_healthy = std::max(worst_healthy, per_ex / std::max(1.0, l.factor));
  }
  const double predicted = observed_ms - (worst_observed - worst_healthy) / 1e6;
  return std::max(predicted, 0.0);
}

PlacementWhatIf rescore_placement(const DecisionRecord& rec,
                                  const std::function<double(int, int)>& scale) {
  if (rec.evidence == nullptr) {
    throw std::invalid_argument("rescore_placement: record carries no PlacementCase evidence");
  }
  const PlacementCase& pc = *rec.evidence;
  qap::SquareMatrix d(pc.distance.n());
  for (int i = 0; i < d.n(); ++i) {
    for (int j = 0; j < d.n(); ++j) d.at(i, j) = pc.distance.at(i, j) * scale(i, j);
  }
  PlacementWhatIf out;
  out.chosen_cost = qap::cost(pc.flow, d, pc.chosen);
  out.winner = "chosen";
  out.winner_cost = out.chosen_cost;
  for (const auto& [label, f] : pc.alternatives) {
    const double c = qap::cost(pc.flow, d, f);
    if (c < out.winner_cost) {
      out.winner = label;
      out.winner_cost = c;
      out.flipped = true;
    }
  }
  out.delta = out.chosen_cost - out.winner_cost;
  return out;
}

}  // namespace stencil::explain
