#pragma once

/// \file explain.h
/// stencil::explain — decision provenance and counterfactual what-if
/// analysis for the partition -> place -> specialize -> plan pipeline
/// (DESIGN.md §17).
///
/// The pipeline makes dozens of scored choices per job: which prime-factor
/// partition shape, which QAP assignment won a node (and which lost), which
/// specialization rung each transfer got (and what a fault-driven demotion
/// cost), whether aggregation was on, why a plan recompiled, where the
/// scheduler admitted a tenant, which recovery rung fired. Telemetry and
/// watch observe *what* happened; this layer records *why* — every scored
/// decision becomes a structured DecisionRecord in a bounded ring:
///
///   - cold-path records (placement, admission, demotion, recovery) carry
///     the chosen option, at least one rejected alternative, the objective
///     values, and a deterministic work counter (candidates evaluated —
///     never wall time, so identical runs produce identical records);
///   - the hot path (plan-cache hits) is allocation-free: a repeat bumps a
///     counter on the existing record, exactly like stencil::watch's lane
///     estimators;
///   - detached runs are byte-identical in every artifact: recording is
///     pure bookkeeping with zero virtual-time cost, and nothing else
///     consults the ledger.
///
/// On top of the log, the what-if engine re-scores recorded decisions under
/// a perturbed cost model — healthy vs degraded link factors from the
/// watch's oracle, a scaled distance matrix, an alternate assignment —
/// estimating the virtual-time delta of the counterfactual without
/// re-running the simulation.
///
/// Exporters: a deterministic `explain-v1` JSON document
/// (EXPLAIN_<name>.json, uploaded by CI next to the bench-v1 files so
/// tools/bench_compare.py can print decision-log diffs alongside perf
/// deltas) and a human-readable "explain this decision" report.
///
/// Dependency discipline: only simtime + qap, so core, sched, and recover
/// can all feed one ledger without cycles (the same reason stencil_watch
/// sits below core).

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "qap/qap.h"
#include "simtime/time.h"

namespace stencil::explain {

/// Which pipeline stage produced a record.
enum class DecisionKind {
  kPartition,       ///< prime-factor shape choice (hierarchical vs flat)
  kPlacement,       ///< QAP/greedy GPU assignment for one flow class
  kSpecialization,  ///< capability rung chosen for a transfer class
  kDemotion,        ///< fault-driven re-specialization of one transfer
  kAggregation,     ///< staged-message aggregation on/off
  kPlanCompile,     ///< plan cache miss: full compile (repeats = later hits)
  kPlanMigrate,     ///< stale-epoch migration: dirty programs rebuilt
  kSchedAdmission,  ///< scheduler admit/defer/reject verdict for one job
  kSchedPlacement,  ///< scheduler shape + node-set choice for one job
  kRecoverStep,     ///< recovery-ladder rung taken for one failure
};
constexpr int kDecisionKinds = 10;
const char* to_string(DecisionKind k);

/// One option the decision did not take, with its objective value (same
/// unit as the record's chosen_score; lower is better everywhere in this
/// codebase — QAP cost, bytes of contended wire, iterations replayed).
struct Alternative {
  std::string option;
  double score = 0.0;
};

/// Matrix evidence attached to placement records so the what-if engine can
/// re-score the assignment under a perturbed distance matrix without the
/// original Placement object. `alternatives` holds the labeled losing
/// assignments (runner-up, trivial, ...) in the same order as the record's
/// rejected list.
struct PlacementCase {
  qap::SquareMatrix flow;
  qap::SquareMatrix distance;
  std::vector<int> chosen;
  std::vector<std::pair<std::string, std::vector<int>>> alternatives;
  int nodes_sharing = 1;  ///< partition nodes sharing this flow matrix
};

/// One recorded decision. Scores are minimized: score_delta() reports how
/// much worse the best rejected alternative would have been (negative when
/// the chosen option was not the argmin — e.g. a trivial placement).
struct DecisionRecord {
  std::uint64_t id = 0;  ///< assigned by the ledger, strictly increasing
  DecisionKind kind = DecisionKind::kPartition;
  sim::Time at = 0;
  int actor = -1;       ///< rank or job id; -1 = global (shared decision)
  std::string subject;  ///< "node 0", "tag=42", "job frontier", ...
  std::string chosen;
  double chosen_score = 0.0;
  std::vector<Alternative> rejected;  ///< best (lowest score) first
  std::string detail;                 ///< free-form evidence
  std::uint64_t work = 0;     ///< candidates evaluated (deterministic)
  std::uint64_t repeats = 0;  ///< hot-path bumps (e.g. plan-cache hits)
  std::shared_ptr<const PlacementCase> evidence;  ///< placement records only

  /// Best rejected score minus chosen score (0 with no alternatives).
  double score_delta() const {
    return rejected.empty() ? 0.0 : rejected.front().score - chosen_score;
  }
};

/// Bounded ring of DecisionRecords. append() is the cold path (may
/// allocate, evicts the oldest record beyond capacity); bump() is the hot
/// path — O(1), allocation-free, a no-op for evicted ids. Hooks cost no
/// virtual time, so attached and detached runs are bit-identical in timing
/// and detached artifacts are byte-identical.
class Ledger {
 public:
  explicit Ledger(std::size_t capacity = 1024) : capacity_(capacity ? capacity : 1) {}

  /// Record a decision; returns its id. The record's id field is
  /// overwritten with the assigned value.
  std::uint64_t append(DecisionRecord r);

  /// The decision with id `id` repeated (plan-cache hit). No-op when the
  /// record has been evicted.
  void bump(std::uint64_t id);

  const std::deque<DecisionRecord>& records() const { return ring_; }
  /// Record by id, or nullptr when evicted / never recorded.
  const DecisionRecord* find(std::uint64_t id) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  /// Total records ever appended, including evicted ones.
  std::uint64_t total_recorded() const { return total_recorded_; }
  std::uint64_t recorded_of(DecisionKind k) const {
    return by_kind_[static_cast<std::size_t>(k)];
  }

  void clear();

  /// Deterministic `explain-v1` JSON document (EXPLAIN_<name>.json).
  void write_json(std::ostream& os, const std::string& name) const;
  /// Human-readable report, grouped by kind, one decision per paragraph.
  void write_report(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::deque<DecisionRecord> ring_;
  std::uint64_t next_id_ = 0;
  std::uint64_t total_recorded_ = 0;
  std::uint64_t by_kind_[kDecisionKinds] = {};
};

// --- what-if engine ---------------------------------------------------------

/// One lane's contribution to a degraded-link run, harvested from the
/// watch: the window's total wire-occupancy time and the live link cost
/// factor (>= 1; observed per-byte cost over the healthiest floor).
struct LaneObservation {
  int src_node = 0;
  int dst_node = 0;
  double actual_ns = 0.0;  ///< window wire time, summed over messages
  double factor = 1.0;     ///< live link cost factor (1 = healthy)
};

/// Predict the healthy-link per-exchange latency (ms) from a recorded
/// degraded-link run, without re-running: the exchange critical path is
/// dominated by its slowest wire, so subtract the worst lane's observed
/// per-exchange wire time and add back what that time shrinks to when each
/// lane's cost factor returns to 1 (observed / factor). `observed_ms` is
/// the measured per-exchange latency of the degraded run; `exchanges` the
/// completions the window accumulated over.
double predict_healthy_exchange_ms(double observed_ms, std::uint64_t exchanges,
                                   const std::vector<LaneObservation>& lanes);

/// Outcome of re-scoring a recorded placement under a perturbed distance
/// matrix: the chosen assignment's new cost, the new winner among
/// {chosen, alternatives}, and whether the winner flipped.
struct PlacementWhatIf {
  double chosen_cost = 0.0;
  std::string winner;      ///< "chosen" or the flipped alternative's label
  double winner_cost = 0.0;
  bool flipped = false;
  double delta = 0.0;  ///< chosen_cost - winner_cost (what the flip saves)
};

/// Re-score a placement record's evidence under `scale`, a multiplier on
/// each distance entry (i, j) — e.g. the watch's link cost factors, or a
/// uniform degradation. Throws std::invalid_argument when the record
/// carries no PlacementCase evidence.
PlacementWhatIf rescore_placement(const DecisionRecord& rec,
                                  const std::function<double(int, int)>& scale);

}  // namespace stencil::explain
