#pragma once

/// \file estimator.h
/// Streaming estimators for stencil::watch (DESIGN.md §16): an exponentially
/// weighted moving average and the P² (Jain & Chlamtac 1985) quantile sketch.
/// Both are O(1) per observation with fixed storage — the hot path of the
/// watch layer allocates nothing and touches a handful of doubles.

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace stencil::watch {

/// Exponentially weighted moving average. The first sample seeds the value;
/// later samples fold in with weight `alpha` (higher = more reactive).
class Ewma {
 public:
  explicit Ewma(double alpha = 0.25) : alpha_(alpha) {}

  void observe(double v) {
    value_ = n_ == 0 ? v : alpha_ * v + (1.0 - alpha_) * value_;
    ++n_;
  }

  double value() const { return value_; }
  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  void reset() {
    value_ = 0.0;
    n_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  std::uint64_t n_ = 0;
};

/// P² streaming quantile estimator: five markers track the running
/// q-quantile without storing samples. Exact for the first five samples
/// (sorted pick); afterwards marker heights adjust with the piecewise-
/// parabolic formula. Error is a few percent of the local sample spread —
/// tests/test_watch.cpp pins the bound against known distributions.
class P2Quantile {
 public:
  explicit P2Quantile(double q = 0.95) : q_(q) {}

  void observe(double v) {
    if (n_ < 5) {
      h_[n_++] = v;
      if (n_ == 5) {
        std::sort(h_, h_ + 5);
        for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
        desired_[0] = 1.0;
        desired_[1] = 1.0 + 2.0 * q_;
        desired_[2] = 1.0 + 4.0 * q_;
        desired_[3] = 3.0 + 2.0 * q_;
        desired_[4] = 5.0;
        inc_[0] = 0.0;
        inc_[1] = q_ / 2.0;
        inc_[2] = q_;
        inc_[3] = (1.0 + q_) / 2.0;
        inc_[4] = 1.0;
      }
      return;
    }

    int k = 0;
    if (v < h_[0]) {
      h_[0] = v;
      k = 0;
    } else if (v >= h_[4]) {
      h_[4] = v;
      k = 3;
    } else {
      for (k = 0; k < 4; ++k) {
        if (v < h_[k + 1]) break;
      }
    }
    for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
    for (int i = 0; i < 5; ++i) desired_[i] += inc_[i];

    for (int i = 1; i <= 3; ++i) {
      const double d = desired_[i] - pos_[i];
      if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
          (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
        const double s = d >= 0.0 ? 1.0 : -1.0;
        const double hp = parabolic(i, s);
        if (h_[i - 1] < hp && hp < h_[i + 1]) {
          h_[i] = hp;
        } else {  // parabolic prediction left the bracket: fall back to linear
          const int j = i + static_cast<int>(s);
          h_[i] += s * (h_[j] - h_[i]) / (pos_[j] - pos_[i]);
        }
        pos_[i] += s;
      }
    }
    ++n_;
  }

  /// Current estimate of the q-quantile. Windows with fewer than five
  /// samples return the *exact* order statistic — nearest-rank, rank
  /// ceil(q*n) over the sorted prefix — instead of an unprimed sketch
  /// estimate (truncating q*n skews small windows high: the old cast made
  /// q=0.5 over two samples return the max). 0 when empty.
  double value() const {
    if (n_ == 0) return 0.0;
    if (n_ < 5) {
      double sorted[5];
      std::copy(h_, h_ + n_, sorted);
      std::sort(sorted, sorted + n_);
      const double rank = std::ceil(q_ * static_cast<double>(n_));
      auto idx = rank <= 1.0 ? 0 : static_cast<std::uint64_t>(rank) - 1;
      if (idx >= n_) idx = n_ - 1;
      return sorted[idx];
    }
    return h_[2];
  }

  std::uint64_t count() const { return n_; }
  double quantile() const { return q_; }

  void reset() { n_ = 0; }

 private:
  double parabolic(int i, double s) const {
    const double np = pos_[i];
    return h_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                       ((np - pos_[i - 1] + s) * (h_[i + 1] - h_[i]) / (pos_[i + 1] - np) +
                        (pos_[i + 1] - np - s) * (h_[i] - h_[i - 1]) / (np - pos_[i - 1]));
  }

  double q_;
  double h_[5] = {};        // marker heights
  double pos_[5] = {};      // marker positions (1-based sample ranks)
  double desired_[5] = {};  // desired positions
  double inc_[5] = {};      // desired-position increments
  std::uint64_t n_ = 0;
};

}  // namespace stencil::watch
