#pragma once

/// \file watch.h
/// stencil::watch — the always-on live performance layer (DESIGN.md §16).
///
/// Converts the event streams the system already produces (simpi message
/// completions, exchange completions) into live performance state:
///
///   - per-(src-node, dst-node, wire-class) lane estimators: EWMA per-byte
///     cost, per-size-bucket observed floors (the uncontended minimum), and
///     message/byte counters — updated in O(1) with zero allocation;
///   - an anomaly engine raising structured Incidents (congested link,
///     straggler rank, interference spike, exchange-p95 SLO breach) with
///     open/close hysteresis, each open snapshotting the FlightRecorder
///     tail and dropping an instant event into the chrome trace;
///   - a LinkCostOracle feedback API: published per-node/per-link cost
///     factors (capability degradation vs the healthiest observed wire)
///     that sched placement and recover_replace consult under
///     set_live_costs(true);
///   - exporters: a deterministic `watch-v1` JSON snapshot, Prometheus
///     gauges via MetricsRegistry.
///
/// The layer is pure bookkeeping: hooks cost no virtual time, so enabled
/// and disabled runs are bit-identical in timing, and a disabled run is
/// byte-identical in every artifact. All state derives from virtual time —
/// no wall clock anywhere (slint-clean), so two identical seeded runs
/// produce identical snapshots.
///
/// Determinism contract for the oracle: live estimators update on every
/// message, but oracle queries read the *published* snapshot, which changes
/// only at publish() — callers publish at quiescent points (between waves,
/// before a recovery incident), so every rank that must agree on a
/// placement decision reads the same epoch.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simtime/resource.h"
#include "simtime/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"
#include "watch/estimator.h"

namespace stencil::watch {

/// Which wire a message crossed: host vs device payload, intra- vs
/// inter-node. Lanes are keyed by (src node, dst node, wire class).
enum class WireClass { kHostIntra = 0, kHostInter = 1, kDevIntra = 2, kDevInter = 3 };
constexpr int kWireClasses = 4;
const char* to_string(WireClass c);

/// One structured anomaly, with its evidence attached.
struct Incident {
  enum class Kind { kCongestedLink, kStragglerRank, kInterferenceSpike, kSloBreach };
  Kind kind = Kind::kCongestedLink;
  std::string subject;  ///< "link n0->n2 host-inter", "rank 5", "tenant 1", "exchange-p95"
  std::string detail;   ///< human-readable evidence at open time
  double severity = 0.0;  ///< stretch / ratio that tripped the detector
  sim::Time opened = 0;
  sim::Time closed = 0;  ///< 0 while still open
  std::string flight_tail;  ///< FlightRecorder tail snapshot at open ("" without a recorder)
};
const char* to_string(Incident::Kind k);

/// Live link-cost feedback consumed by sched placement and recover_replace.
/// Factors are >= 1 multipliers on the nominal internode cost: 1 = as good
/// as the healthiest observed wire of the same class, 2 = twice the
/// per-byte cost. Implementations must return stable values between
/// explicit publication points (see Watch::publish).
class LinkCostOracle {
 public:
  virtual ~LinkCostOracle() = default;
  /// Aggregate factor for internode traffic touching `node`.
  virtual double node_cost_factor(int node) const = 0;
  /// Directional factor for src-node -> dst-node wires.
  virtual double link_cost_factor(int src_node, int dst_node) const = 0;
};

class Watch final : public LinkCostOracle {
 public:
  /// Coarse log2 size buckets (one per factor-of-4 of message size): a
  /// per-byte floor is only comparable between messages of similar size,
  /// because small messages are latency-dominated.
  static constexpr int kSizeBuckets = 16;

  /// One tenant's wire-traffic accumulators over a window, per (wire class,
  /// size bucket). `actual_ns` is queue-inclusive (completion minus ready),
  /// so a tenant's own messages serializing on a wire count — which is why
  /// interference compares a window against the *same tenant's best window
  /// average* (see window_interference), not against per-message floors.
  /// Snapshot-able: callers freeze a co-run window and evaluate it later,
  /// after further (solo) windows have refined the tenant's baselines.
  struct TenantWindow {
    std::uint64_t bytes[kWireClasses * kSizeBuckets] = {};
    double actual_ns[kWireClasses * kSizeBuckets] = {};
    std::uint64_t msgs = 0;
    /// p95 sketch over per-iteration exchange latencies (ms): completions
    /// group by seq, each group reduced to its max across the tenant's
    /// ranks — the same per-iteration-max statistic a post-hoc solo
    /// baseline computes. The window's first group (plan compile +
    /// admission) is dropped, mirroring the baseline's steady-state trim.
    P2Quantile exch_p95{0.95};
    std::uint64_t exchanges = 0;  ///< completed iteration groups
    long long cur_seq = -1;       ///< open group's seq (-1 = none)
    double cur_max_ms = 0.0;      ///< open group's max latency so far
    bool seen_first = false;      ///< warm-up group already dropped
  };

  struct Config {
    double ewma_alpha = 0.25;
    /// Hysteresis: consecutive breaching observations to open an incident,
    /// consecutive clear observations to close it.
    int open_after = 3;
    int close_after = 4;
    /// Congested link: per-byte wire cost exceeds (1 + stretch) x the
    /// class/bucket floor. Messages below min_bytes are too noisy to vote.
    double congestion_stretch = 1.0;
    std::uint64_t congestion_min_bytes = 4096;
    /// Straggler rank: EWMA exchange latency exceeds factor x the median
    /// rank's EWMA.
    double straggler_factor = 2.0;
    /// Interference spike: a tenant's window stretch exceeds this
    /// (evaluated at publish()).
    double interference_spike = 0.75;
    /// Exchange-p95 SLO in milliseconds; 0 disables the detector.
    double slo_p95_ms = 0.0;
    /// Link/node cost factors inside [1, 1 + deadband) snap to exactly 1.0,
    /// so healthy-machine jitter never perturbs live-cost placement.
    double cost_deadband = 0.25;
    /// FlightRecorder events captured into each incident.
    std::size_t flight_tail = 16;
    /// Bound on stored incidents (beyond it, opens are counted, not stored).
    std::size_t max_incidents = 256;
  };

  Watch() : Watch(Config{}) {}
  explicit Watch(Config cfg);

  // --- wiring (Cluster::set_watch) -----------------------------------------
  /// Preallocates every lane/rank slot: after configure, the hot path never
  /// allocates. Resets all estimator state.
  void configure(int num_nodes, int world_size);
  void set_flight(const telemetry::FlightRecorder* f) { flight_ = f; }
  void set_recorder(trace::Recorder* r) { recorder_ = r; }

  // --- hot-path hooks (zero allocation) ------------------------------------
  /// One delivered message: `ready` is when both endpoints were ready,
  /// `span` the wire span the cost model produced. Floors/EWMAs/congestion
  /// use the span duration (wire occupancy — a capability signal immune to
  /// queueing); tenant windows use span.end - ready (queue-inclusive — what
  /// contention actually costs).
  void on_message(int src_rank, int dst_rank, int src_node, int dst_node, bool device,
                  std::uint64_t bytes, sim::Time ready, sim::Span span);
  /// One rank finished one halo exchange.
  void on_exchange_complete(int world_rank, std::uint64_t seq, sim::Duration latency,
                            sim::Time at);

  // --- tenant attribution (sched) ------------------------------------------
  /// tenant_of_rank[world rank] -> tenant id (-1 = unattributed). Empty
  /// detaches. Grows the per-tenant state as needed; learned per-tenant
  /// baselines survive remapping (solo re-runs of the same tenant id keep
  /// refining them).
  void set_tenant_map(const std::vector<int>& tenant_of_rank, int num_tenants);
  /// Fold each tenant's current window average into its per-(class, bucket)
  /// baseline (min across windows: the least-contended window a tenant ever
  /// had), then reset the per-window accumulators (lane windows, tenant
  /// windows, exchange sketch). Learned floors/EWMAs are untouched.
  void clear_window();

  // --- oracle (published view; see publish()) ------------------------------
  /// Copy the live per-node/per-link factors into the published snapshot
  /// read by the oracle interface, evaluate tenant interference-spike
  /// incidents, and bump the epoch. Call at quiescent points only.
  void publish();
  std::uint64_t publish_epoch() const { return publish_epoch_; }
  double node_cost_factor(int node) const override;
  double link_cost_factor(int src_node, int dst_node) const override;
  /// Live (unpublished) factors, for reports and tests.
  double live_node_cost_factor(int node) const;
  double live_link_cost_factor(int src_node, int dst_node) const;

  // --- queries --------------------------------------------------------------
  int num_nodes() const { return num_nodes_; }
  int world_size() const { return world_size_; }
  std::uint64_t messages() const { return messages_; }
  std::uint64_t exchanges() const { return exchange_completions_; }
  /// EWMA bandwidth of a lane in bytes per virtual second (0 = no data).
  double lane_bandwidth(int src_node, int dst_node, WireClass c) const;
  /// Lifetime message / byte counters of a lane (0 = no data).
  std::uint64_t lane_messages(int src_node, int dst_node, WireClass c) const;
  std::uint64_t lane_bytes(int src_node, int dst_node, WireClass c) const;
  /// Window stretch of a lane: observed cost over floor-predicted cost - 1.
  double lane_window_stretch(int src_node, int dst_node, WireClass c) const;
  /// Accumulated wire-span nanoseconds of a lane over the current window
  /// (0 = no data). Raw material for counterfactual what-if models
  /// (stencil::explain): actual time spent on the wire, floor-independent.
  double lane_window_actual_ns(int src_node, int dst_node, WireClass c) const;
  /// Online interference estimate for a tenant over the current window
  /// against the tenant's learned baselines (see window_interference).
  /// 0 until at least one earlier window established a baseline.
  double tenant_online_interference(int tenant) const;
  /// Copy of a tenant's current window (empty for unknown tenants).
  TenantWindow tenant_window(int tenant) const;
  /// Interference of a frozen window of `tenant` against the tenant's
  /// *current* best-window baselines (refined by any window folded since the
  /// freeze, e.g. a solo re-run): window exchange-p95 over the tenant's best
  /// window exchange-p95 - 1, clamped at 0. Falls back to the wire-time
  /// ratio (window avg ns/byte per (class, bucket) cell over the tenant's
  /// best window avg) when the window saw too few exchange completions.
  /// Baselines include self-queuing — a solo window serializes the same
  /// messages — so only genuine cross-tenant contention registers.
  double window_interference(int tenant, const TenantWindow& w) const;
  /// p95 of per-rank exchange latency (ms) over the current window.
  double exchange_p95_ms() const { return exch_p95_.value(); }
  /// EWMA exchange latency of one rank in ms (0 = no data).
  double rank_latency_ms(int world_rank) const;

  const std::vector<Incident>& incidents() const { return incidents_; }
  int open_incidents() const { return open_incidents_; }
  std::uint64_t incidents_opened() const { return incidents_opened_; }
  std::uint64_t incidents_of(Incident::Kind k) const {
    return incidents_by_kind_[static_cast<std::size_t>(k)];
  }

  // --- exporters ------------------------------------------------------------
  /// Deterministic `watch-v1` JSON snapshot of the current window.
  void write_snapshot_json(std::ostream& os) const;
  /// Prometheus-ready gauges/counters into `reg` (watch_* namespace).
  void export_metrics(telemetry::MetricsRegistry& reg) const;

  const Config& config() const { return cfg_; }

 private:
  struct BucketStats {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    double floor_pb = 0.0;  // lifetime min observed ns/byte (0 = none)
    /// Windowed floors: the least-queued message a window saw is its pure
    /// service cost (each iteration's first message finds empty queues), so
    /// the previous window's floor tracks *current* wire capability — it
    /// rises when a wire degrades mid-life, where the lifetime floor
    /// would remember the healthy past forever.
    double win_floor_pb = 0.0;     // min ns/byte this window (0 = none)
    double recent_floor_pb = 0.0;  // previous window's floor (0 = none)
    Ewma ewma_pb;
  };
  struct LaneStats {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    Ewma ewma_pb;                          // ns/byte, all sizes
    BucketStats buckets[kSizeBuckets];
    // Current window.
    std::uint64_t win_msgs = 0;
    std::uint64_t win_bytes = 0;
    double win_actual_ns = 0.0;
    double win_floor_ns = 0.0;
    // Congestion hysteresis.
    int breach_streak = 0;
    int clear_streak = 0;
    bool incident_open = false;
    int incident_idx = -1;
  };
  struct RankStats {
    Ewma lat_ms;
    int breach_streak = 0;
    int clear_streak = 0;
    bool incident_open = false;
    int incident_idx = -1;
  };
  struct TenantStats {
    TenantWindow win;
    /// Min over completed windows of the window-average queue-inclusive
    /// ns/byte per (class, bucket); 0 = no window yet. The tenant's own
    /// least-contended (solo) behavior, self-queuing included.
    double base_avg_pb[kWireClasses * kSizeBuckets] = {};
    /// Min over completed windows of the window exchange-p95 (ms); 0 = no
    /// window with enough completions yet.
    double base_exch_p95_ms = 0.0;
    int breach_streak = 0;
    int clear_streak = 0;
    bool incident_open = false;
    int incident_idx = -1;
  };

  static int size_bucket(std::uint64_t bytes);
  /// Close a window's open iteration group: fold its max into the p95
  /// sketch (the first group per window is dropped as warm-up).
  static void flush_exchange_group(TenantWindow* w);
  std::size_t lane_index(int s, int d, WireClass c) const {
    return (static_cast<std::size_t>(s) * static_cast<std::size_t>(num_nodes_) +
            static_cast<std::size_t>(d)) *
               kWireClasses +
           static_cast<std::size_t>(c);
  }
  /// Open an incident (cold path: may allocate). Returns its index or -1
  /// when the store is full (the open is still counted).
  int open_incident(Incident::Kind kind, std::string subject, std::string detail,
                    double severity, sim::Time at);
  void close_incident(int idx, sim::Time at);

  Config cfg_;
  int num_nodes_ = 0;
  int world_size_ = 0;
  std::vector<LaneStats> lanes_;                    // nodes^2 x classes
  double class_floor_[kWireClasses][kSizeBuckets] = {};  // global min ns/byte
  std::vector<RankStats> ranks_;
  std::vector<int> tenant_of_;                      // world rank -> tenant (-1 none)
  std::vector<TenantStats> tenants_;
  std::vector<double> scratch_;                     // straggler median, preallocated

  P2Quantile exch_p95_{0.95};
  std::uint64_t exchange_completions_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t window_ = 0;  // bumped by clear_window()
  int slo_breach_streak_ = 0;
  int slo_clear_streak_ = 0;
  bool slo_incident_open_ = false;
  int slo_incident_idx_ = -1;

  std::vector<Incident> incidents_;
  int open_incidents_ = 0;
  std::uint64_t incidents_opened_ = 0;
  std::uint64_t incidents_by_kind_[4] = {};

  std::vector<double> published_node_;  // factor per node (empty until publish)
  std::vector<double> published_link_;  // factor per (src*nodes+dst)
  std::uint64_t publish_epoch_ = 0;

  const telemetry::FlightRecorder* flight_ = nullptr;
  trace::Recorder* recorder_ = nullptr;
};

}  // namespace stencil::watch
