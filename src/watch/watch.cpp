#include "watch/watch.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace stencil::watch {
namespace {

/// Minimal JSON string escape for snapshot output (subjects/details hold
/// only ASCII we generate, but stay safe anyway).
void json_escape_to(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf] << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* to_string(WireClass c) {
  switch (c) {
    case WireClass::kHostIntra: return "host-intra";
    case WireClass::kHostInter: return "host-inter";
    case WireClass::kDevIntra: return "dev-intra";
    case WireClass::kDevInter: return "dev-inter";
  }
  return "?";
}

const char* to_string(Incident::Kind k) {
  switch (k) {
    case Incident::Kind::kCongestedLink: return "congested-link";
    case Incident::Kind::kStragglerRank: return "straggler-rank";
    case Incident::Kind::kInterferenceSpike: return "interference-spike";
    case Incident::Kind::kSloBreach: return "slo-breach";
  }
  return "?";
}

Watch::Watch(Config cfg) : cfg_(cfg) {}

int Watch::size_bucket(std::uint64_t bytes) {
  // One bucket per factor of four: bucket = ceil(log2(bytes)) / 2, clamped.
  int lg = 0;
  while (bytes > (std::uint64_t{1} << lg) && lg < 63) ++lg;
  const int b = lg / 2;
  return b < kSizeBuckets ? b : kSizeBuckets - 1;
}

void Watch::configure(int num_nodes, int world_size) {
  num_nodes_ = num_nodes < 0 ? 0 : num_nodes;
  world_size_ = world_size < 0 ? 0 : world_size;
  lanes_.assign(static_cast<std::size_t>(num_nodes_) * static_cast<std::size_t>(num_nodes_) *
                    kWireClasses,
                LaneStats{});
  for (auto& c : class_floor_)
    for (auto& b : c) b = 0.0;
  ranks_.assign(static_cast<std::size_t>(world_size_), RankStats{});
  for (auto& r : ranks_) r.lat_ms = Ewma(cfg_.ewma_alpha);
  for (auto& l : lanes_) {
    l.ewma_pb = Ewma(cfg_.ewma_alpha);
    for (auto& b : l.buckets) b.ewma_pb = Ewma(cfg_.ewma_alpha);
  }
  scratch_.assign(static_cast<std::size_t>(world_size_), 0.0);
  tenant_of_.clear();
  tenants_.clear();
  exch_p95_.reset();
  exchange_completions_ = 0;
  messages_ = 0;
  window_ = 0;
  slo_breach_streak_ = slo_clear_streak_ = 0;
  slo_incident_open_ = false;
  slo_incident_idx_ = -1;
  incidents_.clear();
  open_incidents_ = 0;
  incidents_opened_ = 0;
  for (auto& k : incidents_by_kind_) k = 0;
  published_node_.clear();
  published_link_.clear();
  publish_epoch_ = 0;
}

int Watch::open_incident(Incident::Kind kind, std::string subject, std::string detail,
                         double severity, sim::Time at) {
  ++incidents_opened_;
  ++incidents_by_kind_[static_cast<std::size_t>(kind)];
  ++open_incidents_;
  if (recorder_ != nullptr) {
    // Zero-duration span = chrome-trace instant event on the watch lane.
    recorder_->record("watch", std::string(to_string(kind)) + " " + subject, at, at);
  }
  if (incidents_.size() >= cfg_.max_incidents) return -1;
  Incident inc;
  inc.kind = kind;
  inc.subject = std::move(subject);
  inc.detail = std::move(detail);
  inc.severity = severity;
  inc.opened = at;
  if (flight_ != nullptr && cfg_.flight_tail > 0) {
    std::ostringstream tail;
    flight_->dump_tail(tail, cfg_.flight_tail);
    inc.flight_tail = tail.str();
  }
  incidents_.push_back(std::move(inc));
  return static_cast<int>(incidents_.size()) - 1;
}

void Watch::close_incident(int idx, sim::Time at) {
  if (open_incidents_ > 0) --open_incidents_;
  if (idx >= 0 && idx < static_cast<int>(incidents_.size())) incidents_[idx].closed = at;
}

void Watch::on_message(int src_rank, int dst_rank, int src_node, int dst_node, bool device,
                       std::uint64_t bytes, sim::Time ready, sim::Span span) {
  if (lanes_.empty() || bytes == 0) return;
  if (src_node < 0 || src_node >= num_nodes_ || dst_node < 0 || dst_node >= num_nodes_) return;
  const bool inter = src_node != dst_node;
  const WireClass wc = device ? (inter ? WireClass::kDevInter : WireClass::kDevIntra)
                              : (inter ? WireClass::kHostInter : WireClass::kHostIntra);
  // Two costs per message: wire occupancy (span duration) feeds the
  // capability estimators — floors, EWMAs, congestion — because it is
  // immune to queueing; the queue-inclusive time (completion minus ready)
  // feeds the tenant windows, because queueing is what contention costs.
  const double actual_ns = static_cast<double>(span.end - ready);
  const double occ_ns = static_cast<double>(span.end - span.start);
  if (actual_ns <= 0.0 || occ_ns <= 0.0) return;
  const double pb = occ_ns / static_cast<double>(bytes);
  const int b = size_bucket(bytes);
  const int ci = static_cast<int>(wc);

  LaneStats& lane = lanes_[lane_index(src_node, dst_node, wc)];
  BucketStats& bs = lane.buckets[b];
  ++bs.count;
  bs.bytes += bytes;
  if (bs.floor_pb == 0.0 || pb < bs.floor_pb) bs.floor_pb = pb;
  if (bs.win_floor_pb == 0.0 || pb < bs.win_floor_pb) bs.win_floor_pb = pb;
  bs.ewma_pb.observe(pb);
  if (class_floor_[ci][b] == 0.0 || pb < class_floor_[ci][b]) class_floor_[ci][b] = pb;

  ++lane.msgs;
  lane.bytes += bytes;
  lane.ewma_pb.observe(pb);
  ++lane.win_msgs;
  lane.win_bytes += bytes;
  lane.win_actual_ns += actual_ns;
  lane.win_floor_ns += class_floor_[ci][b] * static_cast<double>(bytes);
  ++messages_;

  // Tenant attribution (src side owns the send cost).
  if (src_rank >= 0 && src_rank < static_cast<int>(tenant_of_.size())) {
    const int t = tenant_of_[static_cast<std::size_t>(src_rank)];
    if (t >= 0 && t < static_cast<int>(tenants_.size())) {
      TenantWindow& tw = tenants_[static_cast<std::size_t>(t)].win;
      const int cb = ci * kSizeBuckets + b;
      tw.bytes[cb] += bytes;
      tw.actual_ns[cb] += actual_ns;
      ++tw.msgs;
    }
  }
  (void)dst_rank;

  // Congested-link detector with hysteresis. Only messages large enough to
  // be bandwidth-dominated vote, and only once the class floor has settled
  // (two observations in the bucket).
  if (bytes >= cfg_.congestion_min_bytes && bs.count >= 2 && class_floor_[ci][b] > 0.0) {
    const double stretch = pb / class_floor_[ci][b] - 1.0;
    if (stretch > cfg_.congestion_stretch) {
      lane.clear_streak = 0;
      if (++lane.breach_streak >= cfg_.open_after && !lane.incident_open) {
        lane.incident_open = true;
        std::ostringstream subject, detail;
        subject << "link n" << src_node << "->n" << dst_node << " " << to_string(wc);
        detail << "per-byte cost " << pb << " ns/B vs floor " << class_floor_[ci][b]
               << " ns/B (stretch " << stretch << ", bucket " << b << ", " << bytes << " B)";
        lane.incident_idx =
            open_incident(Incident::Kind::kCongestedLink, subject.str(), detail.str(), stretch,
                          span.end);
      }
    } else {
      lane.breach_streak = 0;
      if (lane.incident_open && ++lane.clear_streak >= cfg_.close_after) {
        lane.incident_open = false;
        lane.clear_streak = 0;
        close_incident(lane.incident_idx, span.end);
        lane.incident_idx = -1;
      }
    }
  }
}

void Watch::on_exchange_complete(int world_rank, std::uint64_t seq, sim::Duration latency,
                                 sim::Time at) {
  if (world_rank < 0 || world_rank >= static_cast<int>(ranks_.size())) return;
  const double ms = sim::to_millis(latency);
  RankStats& rs = ranks_[static_cast<std::size_t>(world_rank)];
  rs.lat_ms.observe(ms);
  exch_p95_.observe(ms);
  ++exchange_completions_;

  // Tenant attribution: group completions by seq and keep the max across
  // the tenant's ranks — the per-iteration barrier guarantees every rank
  // finishes exchange k before any completes k+1, so a seq change closes
  // the group. The resulting per-iteration-max stream feeds the window's
  // exchange-p95 sketch, the primary online-interference signal.
  if (world_rank < static_cast<int>(tenant_of_.size())) {
    const int t = tenant_of_[static_cast<std::size_t>(world_rank)];
    if (t >= 0 && t < static_cast<int>(tenants_.size())) {
      TenantWindow& tw = tenants_[static_cast<std::size_t>(t)].win;
      const long long sq = static_cast<long long>(seq);
      if (tw.cur_seq != sq) {
        flush_exchange_group(&tw);
        tw.cur_seq = sq;
        tw.cur_max_ms = ms;
      } else if (ms > tw.cur_max_ms) {
        tw.cur_max_ms = ms;
      }
    }
  }

  // Straggler detector: this rank's EWMA vs the median EWMA across ranks
  // that have reported. scratch_ is preallocated — no allocation here.
  std::size_t n = 0;
  for (const auto& r : ranks_)
    if (!r.lat_ms.empty()) scratch_[n++] = r.lat_ms.value();
  if (n >= 3 && rs.lat_ms.count() >= 2) {
    const std::size_t mid = n / 2;
    std::nth_element(scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(n));
    const double med = scratch_[mid];
    if (med > 0.0 && rs.lat_ms.value() > cfg_.straggler_factor * med) {
      rs.clear_streak = 0;
      if (++rs.breach_streak >= cfg_.open_after && !rs.incident_open) {
        rs.incident_open = true;
        std::ostringstream subject, detail;
        subject << "rank " << world_rank;
        detail << "exchange ewma " << rs.lat_ms.value() << " ms vs median " << med
               << " ms (seq " << seq << ")";
        rs.incident_idx = open_incident(Incident::Kind::kStragglerRank, subject.str(),
                                        detail.str(), rs.lat_ms.value() / med, at);
      }
    } else {
      rs.breach_streak = 0;
      if (rs.incident_open && ++rs.clear_streak >= cfg_.close_after) {
        rs.incident_open = false;
        rs.clear_streak = 0;
        close_incident(rs.incident_idx, at);
        rs.incident_idx = -1;
      }
    }
  }

  // Exchange-p95 SLO detector (global, hysteresis on completions).
  if (cfg_.slo_p95_ms > 0.0 && exch_p95_.count() >= 8) {
    if (exch_p95_.value() > cfg_.slo_p95_ms) {
      slo_clear_streak_ = 0;
      if (++slo_breach_streak_ >= cfg_.open_after && !slo_incident_open_) {
        slo_incident_open_ = true;
        std::ostringstream detail;
        detail << "exchange p95 " << exch_p95_.value() << " ms over SLO " << cfg_.slo_p95_ms
               << " ms";
        slo_incident_idx_ =
            open_incident(Incident::Kind::kSloBreach, "exchange-p95", detail.str(),
                          exch_p95_.value() / cfg_.slo_p95_ms, at);
      }
    } else {
      slo_breach_streak_ = 0;
      if (slo_incident_open_ && ++slo_clear_streak_ >= cfg_.close_after) {
        slo_incident_open_ = false;
        slo_clear_streak_ = 0;
        close_incident(slo_incident_idx_, at);
        slo_incident_idx_ = -1;
      }
    }
  }
}

void Watch::flush_exchange_group(TenantWindow* w) {
  if (w->cur_seq < 0) return;
  if (!w->seen_first) {
    w->seen_first = true;  // warm-up: plan compile + admission ride on it
  } else {
    w->exch_p95.observe(w->cur_max_ms);
    ++w->exchanges;
  }
  w->cur_seq = -1;
  w->cur_max_ms = 0.0;
}

void Watch::set_tenant_map(const std::vector<int>& tenant_of_rank, int num_tenants) {
  tenant_of_ = tenant_of_rank;
  // Grow-only: a tenant id keeps its learned baselines across remappings, so
  // a solo re-run of the same tenant refines — never restarts — its model.
  const std::size_t n = static_cast<std::size_t>(num_tenants < 0 ? 0 : num_tenants);
  if (tenants_.size() < n) tenants_.resize(n);
}

void Watch::clear_window() {
  for (auto& l : lanes_) {
    l.win_msgs = 0;
    l.win_bytes = 0;
    l.win_actual_ns = 0.0;
    l.win_floor_ns = 0.0;
    for (auto& b : l.buckets) {
      if (b.win_floor_pb > 0.0) b.recent_floor_pb = b.win_floor_pb;
      b.win_floor_pb = 0.0;
    }
  }
  for (auto& t : tenants_) {
    // Fold the closing window into the tenant's baselines: the min across
    // windows is the tenant's least-contended behavior with its inherent
    // self-queuing included (a solo window serializes the same messages a
    // co-run window does).
    flush_exchange_group(&t.win);
    for (int cb = 0; cb < kWireClasses * kSizeBuckets; ++cb) {
      if (t.win.bytes[cb] == 0) continue;
      const double avg = t.win.actual_ns[cb] / static_cast<double>(t.win.bytes[cb]);
      if (t.base_avg_pb[cb] == 0.0 || avg < t.base_avg_pb[cb]) t.base_avg_pb[cb] = avg;
    }
    if (t.win.exch_p95.count() >= 3) {
      const double p = t.win.exch_p95.value();
      if (p > 0.0 && (t.base_exch_p95_ms == 0.0 || p < t.base_exch_p95_ms))
        t.base_exch_p95_ms = p;
    }
    t.win = TenantWindow{};
  }
  exch_p95_.reset();
  ++window_;
}

double Watch::live_link_cost_factor(int src_node, int dst_node) const {
  if (lanes_.empty() || src_node < 0 || src_node >= num_nodes_ || dst_node < 0 ||
      dst_node >= num_nodes_ || src_node == dst_node)
    return 1.0;
  // Capability degradation of this directional wire pair: how much worse
  // this lane's *recent windowed floor* (the pure service cost of its
  // least-queued recent message) is than the best same-class/same-size
  // floor anywhere on the machine, bytes-weighted across buckets. Floors
  // are minima over a window, so queueing on a congested but healthy link
  // cancels out (each iteration's first message finds empty queues and
  // reads 1.0) — the scheduler models co-tenant overlap itself; the oracle
  // reports what the wire can still do. Windowed (not lifetime) floors let
  // the factor track degradation that begins mid-life, and the dead-band
  // snaps healthy jitter to exactly 1.0 so live-cost placement on a
  // healthy machine is bit-identical to static placement.
  double wsum = 0.0, fsum = 0.0;
  for (WireClass wc : {WireClass::kHostInter, WireClass::kDevInter}) {
    const LaneStats& lane = lanes_[lane_index(src_node, dst_node, wc)];
    const int ci = static_cast<int>(wc);
    for (int b = 0; b < kSizeBuckets; ++b) {
      const BucketStats& bs = lane.buckets[b];
      if (bs.count == 0 || class_floor_[ci][b] <= 0.0) continue;
      const double eff = bs.win_floor_pb > 0.0
                             ? bs.win_floor_pb
                             : (bs.recent_floor_pb > 0.0 ? bs.recent_floor_pb : bs.floor_pb);
      const double f = eff / class_floor_[ci][b];
      const double w = static_cast<double>(bs.bytes);
      wsum += w;
      fsum += w * (f < 1.0 ? 1.0 : f);
    }
  }
  if (wsum <= 0.0) return 1.0;
  const double factor = fsum / wsum;
  return factor < 1.0 + cfg_.cost_deadband ? 1.0 : factor;
}

double Watch::live_node_cost_factor(int node) const {
  if (lanes_.empty() || node < 0 || node >= num_nodes_) return 1.0;
  // Bytes-weighted average of the link factors over every internode lane
  // touching this node.
  double wsum = 0.0, fsum = 0.0;
  const auto fold = [&](int s, int d) {
    double w = 0.0;
    for (WireClass wc : {WireClass::kHostInter, WireClass::kDevInter}) {
      const LaneStats& lane = lanes_[lane_index(s, d, wc)];
      w += static_cast<double>(lane.bytes);
    }
    if (w <= 0.0) return;
    wsum += w;
    fsum += w * live_link_cost_factor(s, d);
  };
  for (int other = 0; other < num_nodes_; ++other) {
    if (other == node) continue;
    fold(node, other);
    fold(other, node);
  }
  return wsum > 0.0 ? fsum / wsum : 1.0;
}

void Watch::publish() {
  if (num_nodes_ <= 0) return;
  published_node_.resize(static_cast<std::size_t>(num_nodes_));
  published_link_.resize(static_cast<std::size_t>(num_nodes_) *
                         static_cast<std::size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n)
    published_node_[static_cast<std::size_t>(n)] = live_node_cost_factor(n);
  for (int s = 0; s < num_nodes_; ++s)
    for (int d = 0; d < num_nodes_; ++d)
      published_link_[static_cast<std::size_t>(s) * static_cast<std::size_t>(num_nodes_) +
                      static_cast<std::size_t>(d)] = live_link_cost_factor(s, d);
  ++publish_epoch_;

  // Interference-spike incidents are evaluated here (window-granular, at a
  // quiescent point) rather than per message.
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    TenantStats& ts = tenants_[t];
    if (ts.win.msgs == 0) continue;
    const double stretch = tenant_online_interference(static_cast<int>(t));
    // publish() runs outside the engine; stamp incidents with a zero time —
    // the window ordinal in the detail string localizes them.
    if (stretch > cfg_.interference_spike) {
      ts.clear_streak = 0;
      if (++ts.breach_streak >= 1 && !ts.incident_open) {  // window-level: open on first
        ts.incident_open = true;
        std::ostringstream subject, detail;
        subject << "tenant " << t;
        detail << "online interference " << stretch << " over threshold "
               << cfg_.interference_spike << " (window " << window_ << ")";
        ts.incident_idx = open_incident(Incident::Kind::kInterferenceSpike, subject.str(),
                                        detail.str(), stretch, 0);
      }
    } else {
      ts.breach_streak = 0;
      if (ts.incident_open) {
        ts.incident_open = false;
        close_incident(ts.incident_idx, 0);
        ts.incident_idx = -1;
      }
    }
  }
}

double Watch::node_cost_factor(int node) const {
  if (node < 0 || node >= static_cast<int>(published_node_.size())) return 1.0;
  return published_node_[static_cast<std::size_t>(node)];
}

double Watch::link_cost_factor(int src_node, int dst_node) const {
  const std::size_t nn = static_cast<std::size_t>(num_nodes_);
  const std::size_t idx =
      static_cast<std::size_t>(src_node) * nn + static_cast<std::size_t>(dst_node);
  if (src_node < 0 || dst_node < 0 || idx >= published_link_.size()) return 1.0;
  return published_link_[idx];
}

double Watch::lane_bandwidth(int src_node, int dst_node, WireClass c) const {
  if (lanes_.empty() || src_node < 0 || src_node >= num_nodes_ || dst_node < 0 ||
      dst_node >= num_nodes_)
    return 0.0;
  const LaneStats& lane = lanes_[lane_index(src_node, dst_node, c)];
  const double pb = lane.ewma_pb.value();  // ns per byte
  return pb > 0.0 ? 1e9 / pb : 0.0;        // bytes per virtual second
}

std::uint64_t Watch::lane_messages(int src_node, int dst_node, WireClass c) const {
  if (lanes_.empty() || src_node < 0 || src_node >= num_nodes_ || dst_node < 0 ||
      dst_node >= num_nodes_)
    return 0;
  return lanes_[lane_index(src_node, dst_node, c)].msgs;
}

std::uint64_t Watch::lane_bytes(int src_node, int dst_node, WireClass c) const {
  if (lanes_.empty() || src_node < 0 || src_node >= num_nodes_ || dst_node < 0 ||
      dst_node >= num_nodes_)
    return 0;
  return lanes_[lane_index(src_node, dst_node, c)].bytes;
}

double Watch::lane_window_stretch(int src_node, int dst_node, WireClass c) const {
  if (lanes_.empty() || src_node < 0 || src_node >= num_nodes_ || dst_node < 0 ||
      dst_node >= num_nodes_)
    return 0.0;
  const LaneStats& lane = lanes_[lane_index(src_node, dst_node, c)];
  if (lane.win_floor_ns <= 0.0) return 0.0;
  const double s = lane.win_actual_ns / lane.win_floor_ns - 1.0;
  return s < 0.0 ? 0.0 : s;
}

double Watch::lane_window_actual_ns(int src_node, int dst_node, WireClass c) const {
  if (lanes_.empty() || src_node < 0 || src_node >= num_nodes_ || dst_node < 0 ||
      dst_node >= num_nodes_)
    return 0.0;
  return lanes_[lane_index(src_node, dst_node, c)].win_actual_ns;
}

double Watch::tenant_online_interference(int tenant) const {
  if (tenant < 0 || tenant >= static_cast<int>(tenants_.size())) return 0.0;
  return window_interference(tenant, tenants_[static_cast<std::size_t>(tenant)].win);
}

Watch::TenantWindow Watch::tenant_window(int tenant) const {
  if (tenant < 0 || tenant >= static_cast<int>(tenants_.size())) return TenantWindow{};
  TenantWindow w = tenants_[static_cast<std::size_t>(tenant)].win;
  // The caller freezes at a quiescent point: close the trailing iteration
  // group so the copy's p95 covers every completed iteration.
  flush_exchange_group(&w);
  return w;
}

double Watch::window_interference(int tenant, const TenantWindow& w) const {
  if (tenant < 0 || tenant >= static_cast<int>(tenants_.size())) return 0.0;
  const TenantStats& ts = tenants_[static_cast<std::size_t>(tenant)];

  // Primary signal: the window's exchange-p95 against the tenant's best
  // window exchange-p95 — the same quantity a post-hoc solo baseline
  // measures, so the two estimates converge by construction. Baselines keep
  // improving after a window froze (solo re-runs fold in at clear_window),
  // so frozen windows are evaluated lazily.
  if (w.exch_p95.count() >= 3 && ts.base_exch_p95_ms > 0.0) {
    const double p = w.exch_p95.value();
    if (p > 0.0) {
      const double s = p / ts.base_exch_p95_ms - 1.0;
      return s < 0.0 ? 0.0 : s;
    }
  }

  // Fallback: queue-inclusive wire time against the tenant's best window
  // average per (class, bucket) cell. Cells with no baseline predict
  // themselves (contributing zero stretch) rather than inflating.
  double actual = 0.0, predicted = 0.0;
  for (int cb = 0; cb < kWireClasses * kSizeBuckets; ++cb) {
    if (w.bytes[cb] == 0) continue;
    const double self_avg = w.actual_ns[cb] / static_cast<double>(w.bytes[cb]);
    const double base = (ts.base_avg_pb[cb] > 0.0 && ts.base_avg_pb[cb] < self_avg)
                            ? ts.base_avg_pb[cb]
                            : self_avg;
    actual += w.actual_ns[cb];
    predicted += base * static_cast<double>(w.bytes[cb]);
  }
  if (predicted <= 0.0) return 0.0;
  const double s = actual / predicted - 1.0;
  return s < 0.0 ? 0.0 : s;
}

double Watch::rank_latency_ms(int world_rank) const {
  if (world_rank < 0 || world_rank >= static_cast<int>(ranks_.size())) return 0.0;
  return ranks_[static_cast<std::size_t>(world_rank)].lat_ms.value();
}

void Watch::write_snapshot_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"watch-v1\",\n";
  os << "  \"nodes\": " << num_nodes_ << ",\n";
  os << "  \"world\": " << world_size_ << ",\n";
  os << "  \"window\": " << window_ << ",\n";
  os << "  \"publish_epoch\": " << publish_epoch_ << ",\n";
  os << "  \"messages\": " << messages_ << ",\n";
  os << "  \"exchanges\": " << exchange_completions_ << ",\n";
  os << "  \"exchange_p95_ms\": " << exchange_p95_ms() << ",\n";

  os << "  \"lanes\": [";
  bool first = true;
  for (int s = 0; s < num_nodes_; ++s) {
    for (int d = 0; d < num_nodes_; ++d) {
      for (int c = 0; c < kWireClasses; ++c) {
        const LaneStats& lane = lanes_[lane_index(s, d, static_cast<WireClass>(c))];
        if (lane.msgs == 0) continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"src\": " << s << ", \"dst\": " << d << ", \"class\": \""
           << to_string(static_cast<WireClass>(c)) << "\", \"msgs\": " << lane.msgs
           << ", \"bytes\": " << lane.bytes << ", \"ewma_ns_per_byte\": " << lane.ewma_pb.value()
           << ", \"bandwidth_bytes_per_s\": "
           << lane_bandwidth(s, d, static_cast<WireClass>(c))
           << ", \"window_stretch\": " << lane_window_stretch(s, d, static_cast<WireClass>(c))
           << "}";
      }
    }
  }
  os << (first ? "],\n" : "\n  ],\n");

  os << "  \"node_cost_factors\": [";
  for (int n = 0; n < num_nodes_; ++n)
    os << (n ? ", " : "") << live_node_cost_factor(n);
  os << "],\n";

  os << "  \"published_node_cost_factors\": [";
  for (std::size_t n = 0; n < published_node_.size(); ++n)
    os << (n ? ", " : "") << published_node_[n];
  os << "],\n";

  os << "  \"tenants\": [";
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    os << (t ? ", " : "") << "{\"tenant\": " << t
       << ", \"msgs\": " << tenants_[t].win.msgs
       << ", \"online_interference\": " << tenant_online_interference(static_cast<int>(t))
       << "}";
  }
  os << "],\n";

  os << "  \"incidents_opened\": " << incidents_opened_ << ",\n";
  os << "  \"incidents_open\": " << open_incidents_ << ",\n";
  os << "  \"incidents\": [";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const Incident& inc = incidents_[i];
    os << (i ? ",\n" : "\n");
    os << "    {\"kind\": \"" << to_string(inc.kind) << "\", \"subject\": \"";
    json_escape_to(os, inc.subject);
    os << "\", \"severity\": " << inc.severity << ", \"opened_ns\": " << inc.opened
       << ", \"closed_ns\": " << inc.closed << ", \"detail\": \"";
    json_escape_to(os, inc.detail);
    os << "\"}";
  }
  os << (incidents_.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

void Watch::export_metrics(telemetry::MetricsRegistry& reg) const {
  reg.counter("watch_messages_total").value = messages_;
  reg.counter("watch_exchanges_total").value = exchange_completions_;
  reg.counter("watch_incidents_opened_total").value = incidents_opened_;
  reg.gauge("watch_incidents_open").set(static_cast<double>(open_incidents_));
  reg.gauge("watch_exchange_p95_ms").set(exchange_p95_ms());
  reg.gauge("watch_publish_epoch").set(static_cast<double>(publish_epoch_));
  for (int k = 0; k < 4; ++k) {
    reg.counter(std::string("watch_incidents_total{kind=\"") +
                to_string(static_cast<Incident::Kind>(k)) + "\"}")
        .value = incidents_by_kind_[k];
  }
  for (int n = 0; n < num_nodes_; ++n) {
    reg.gauge("watch_node_cost_factor{node=\"" + std::to_string(n) + "\"}")
        .set(live_node_cost_factor(n));
  }
  for (int s = 0; s < num_nodes_; ++s) {
    for (int d = 0; d < num_nodes_; ++d) {
      for (int c = 0; c < kWireClasses; ++c) {
        const LaneStats& lane = lanes_[lane_index(s, d, static_cast<WireClass>(c))];
        if (lane.msgs == 0) continue;
        const std::string labels = "{src=\"n" + std::to_string(s) + "\",dst=\"n" +
                                   std::to_string(d) + "\",class=\"" +
                                   to_string(static_cast<WireClass>(c)) + "\"}";
        reg.gauge("watch_lane_bandwidth_bytes_per_s" + labels)
            .set(lane_bandwidth(s, d, static_cast<WireClass>(c)));
        reg.counter("watch_lane_bytes_total" + labels).value = lane.bytes;
      }
    }
  }
}

}  // namespace stencil::watch
