#include "qap/qap.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace stencil::qap {

double cost(const SquareMatrix& w, const SquareMatrix& d, const std::vector<int>& f) {
  const int n = w.n();
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double flow = w.at(i, j);
      if (flow != 0.0) total += flow * d.at(f[static_cast<std::size_t>(i)], f[static_cast<std::size_t>(j)]);
    }
  }
  return total;
}

bool is_permutation(const std::vector<int>& f, int n) {
  if (static_cast<int>(f.size()) != n) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int x : f) {
    if (x < 0 || x >= n || seen[static_cast<std::size_t>(x)]) return false;
    seen[static_cast<std::size_t>(x)] = true;
  }
  return true;
}

namespace {

void check_inputs(const SquareMatrix& w, const SquareMatrix& d) {
  if (w.n() != d.n()) throw std::invalid_argument("qap: flow and distance sizes differ");
  if (w.n() <= 0) throw std::invalid_argument("qap: empty problem");
}

template <typename Better>
std::vector<int> search_all(const SquareMatrix& w, const SquareMatrix& d, Better better) {
  check_inputs(w, d);
  const int n = w.n();
  if (n > 10) throw std::invalid_argument("qap: exhaustive search capped at n=10");
  std::vector<int> f(static_cast<std::size_t>(n));
  std::iota(f.begin(), f.end(), 0);
  std::vector<int> best = f;
  double best_cost = cost(w, d, f);
  while (std::next_permutation(f.begin(), f.end())) {
    const double c = cost(w, d, f);
    if (better(c, best_cost)) {
      best_cost = c;
      best = f;
    }
  }
  return best;
}

}  // namespace

std::vector<int> solve_exhaustive(const SquareMatrix& w, const SquareMatrix& d) {
  return search_all(w, d, [](double a, double b) { return a < b; });
}

std::vector<int> solve_worst(const SquareMatrix& w, const SquareMatrix& d) {
  return search_all(w, d, [](double a, double b) { return a > b; });
}

std::vector<int> identity_assignment(int n) {
  std::vector<int> f(static_cast<std::size_t>(n));
  std::iota(f.begin(), f.end(), 0);
  return f;
}

ExplainedSolution solve_exhaustive_explained(const SquareMatrix& w, const SquareMatrix& d) {
  check_inputs(w, d);
  const int n = w.n();
  if (n > 10) throw std::invalid_argument("qap: exhaustive search capped at n=10");
  ExplainedSolution out;
  std::vector<int> f(static_cast<std::size_t>(n));
  std::iota(f.begin(), f.end(), 0);
  out.best = f;
  out.best_cost = cost(w, d, f);
  out.evaluated = 1;
  // Visit permutations in the same order as solve_exhaustive so the winner
  // (first-encountered minimum under strict <) is identical; additionally
  // track the best losing assignment. When a new minimum appears, the old
  // one becomes the runner-up candidate.
  bool have_runner = false;
  while (std::next_permutation(f.begin(), f.end())) {
    const double c = cost(w, d, f);
    ++out.evaluated;
    if (c < out.best_cost) {
      out.runner_up = out.best;
      out.runner_up_cost = out.best_cost;
      have_runner = true;
      out.best_cost = c;
      out.best = f;
    } else if (!have_runner || c < out.runner_up_cost) {
      out.runner_up = f;
      out.runner_up_cost = c;
      have_runner = true;
    }
  }
  if (!have_runner) {
    out.runner_up.clear();
    out.runner_up_cost = 0.0;
  }
  return out;
}

std::vector<int> solve_greedy_2swap(const SquareMatrix& w, const SquareMatrix& d) {
  return solve_greedy_2swap_explained(w, d).best;
}

ExplainedSolution solve_greedy_2swap_explained(const SquareMatrix& w, const SquareMatrix& d) {
  check_inputs(w, d);
  const int n = w.n();
  ExplainedSolution out;

  // Constructive phase: repeatedly take the facility with the largest total
  // flow to already-placed facilities (or largest overall flow first), and
  // put it on the free location minimizing the incremental cost.
  std::vector<int> f(static_cast<std::size_t>(n), -1);
  std::vector<bool> loc_used(static_cast<std::size_t>(n), false);
  std::vector<bool> fac_placed(static_cast<std::size_t>(n), false);

  for (int step = 0; step < n; ++step) {
    // Pick the unplaced facility with the largest flow to placed ones
    // (falling back to total flow for the first pick).
    int fac = -1;
    double fac_score = -1.0;
    for (int i = 0; i < n; ++i) {
      if (fac_placed[static_cast<std::size_t>(i)]) continue;
      double s = 0.0;
      for (int j = 0; j < n; ++j) {
        const double wij = w.at(i, j) + w.at(j, i);
        s += fac_placed[static_cast<std::size_t>(j)] || step == 0 ? wij : 0.0;
      }
      if (s > fac_score) {
        fac_score = s;
        fac = i;
      }
    }
    // Place it on the free location with the smallest incremental cost.
    int best_loc = -1;
    double best_inc = std::numeric_limits<double>::max();
    for (int loc = 0; loc < n; ++loc) {
      if (loc_used[static_cast<std::size_t>(loc)]) continue;
      double inc = 0.0;
      for (int j = 0; j < n; ++j) {
        if (!fac_placed[static_cast<std::size_t>(j)]) continue;
        inc += w.at(fac, j) * d.at(loc, f[static_cast<std::size_t>(j)]);
        inc += w.at(j, fac) * d.at(f[static_cast<std::size_t>(j)], loc);
      }
      ++out.evaluated;
      if (inc < best_inc) {
        best_inc = inc;
        best_loc = loc;
      }
    }
    f[static_cast<std::size_t>(fac)] = best_loc;
    fac_placed[static_cast<std::size_t>(fac)] = true;
    loc_used[static_cast<std::size_t>(best_loc)] = true;
  }

  // The runner-up is the constructive solution before hill climbing — the
  // answer a swap-free greedy would have shipped.
  out.runner_up = f;
  out.runner_up_cost = cost(w, d, f);
  ++out.evaluated;

  // Improvement phase: pairwise swaps to a local optimum.
  double cur = out.runner_up_cost;
  bool improved = true;
  while (improved) {
    improved = false;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        std::swap(f[static_cast<std::size_t>(i)], f[static_cast<std::size_t>(j)]);
        const double c = cost(w, d, f);
        ++out.evaluated;
        if (c < cur) {
          cur = c;
          improved = true;
        } else {
          std::swap(f[static_cast<std::size_t>(i)], f[static_cast<std::size_t>(j)]);
        }
      }
    }
  }
  out.best = std::move(f);
  out.best_cost = cur;
  return out;
}

}  // namespace stencil::qap
