#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stencil::qap {

/// Dense square matrix of doubles, row-major. Used for QAP flow (exchange
/// volume between subdomains) and distance (reciprocal GPU bandwidth).
class SquareMatrix {
 public:
  SquareMatrix() = default;
  explicit SquareMatrix(int n) : n_(n), v_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0) {}

  int n() const { return n_; }
  double& at(int i, int j) { return v_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j)]; }
  double at(int i, int j) const {
    return v_[static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j)];
  }

 private:
  int n_ = 0;
  std::vector<double> v_;
};

/// QAP objective: sum over i,j of w(i,j) * d(f(i), f(j)), where f assigns
/// facility i (subdomain) to location f(i) (GPU).
double cost(const SquareMatrix& w, const SquareMatrix& d, const std::vector<int>& f);

/// True iff f is a permutation of 0..n-1.
bool is_permutation(const std::vector<int>& f, int n);

/// Exhaustive search over all n! assignments; exact optimum. The paper uses
/// this because n = GPUs per node is small (6 on Summit, at most 8 or so).
/// Throws for n > 10 to protect against accidental blowup.
std::vector<int> solve_exhaustive(const SquareMatrix& w, const SquareMatrix& d);

/// Greedy constructive assignment (largest remaining flow pair onto the
/// closest remaining location pair) followed by pairwise-swap hill climbing.
/// For nodes with more GPUs than exhaustive search can cover.
std::vector<int> solve_greedy_2swap(const SquareMatrix& w, const SquareMatrix& d);

/// The identity assignment (subdomain i on GPU i) — the paper's "trivial
/// placement" baseline where subdomain ids are linearized onto devices.
std::vector<int> identity_assignment(int n);

/// Exhaustive search for the *worst* assignment; the adversarial baseline in
/// the Fig. 11 comparison ("poorly placed").
std::vector<int> solve_worst(const SquareMatrix& w, const SquareMatrix& d);

/// Provenance-bearing solver result for stencil::explain: the winner, the
/// best *distinct* losing assignment, and how many candidates the solver
/// scored — a deterministic work counter that stands in for "solver time"
/// in virtual-time runs (wall clock is banned).
struct ExplainedSolution {
  std::vector<int> best;
  double best_cost = 0.0;
  std::vector<int> runner_up;   ///< empty for n == 1 (no other assignment)
  double runner_up_cost = 0.0;
  std::uint64_t evaluated = 0;  ///< cost evaluations performed
};

/// solve_exhaustive with provenance: tracks the distinct second-best
/// assignment across all n! candidates. Same n <= 10 cap.
ExplainedSolution solve_exhaustive_explained(const SquareMatrix& w, const SquareMatrix& d);

/// solve_greedy_2swap with provenance: the runner-up is the constructive
/// solution before 2-swap hill climbing (identical to best when no swap
/// improved it); evaluated counts incremental + full cost evaluations.
ExplainedSolution solve_greedy_2swap_explained(const SquareMatrix& w, const SquareMatrix& d);

}  // namespace stencil::qap
