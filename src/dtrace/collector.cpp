#include "dtrace/collector.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "telemetry/export.h"

namespace stencil::dtrace {

namespace {

using telemetry::json_escape;

/// Parse a decimal integer at s[i..], returning -1 when none is there.
int parse_int(const std::string& s, std::size_t i) {
  if (i >= s.size() || std::isdigit(static_cast<unsigned char>(s[i])) == 0) return -1;
  int v = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
    v = v * 10 + (s[i] - '0');
    ++i;
  }
  return v;
}

}  // namespace

void Collector::set_topology(int world_size, int gpus_per_rank) {
  world_size_ = world_size;
  gpus_per_rank_ = gpus_per_rank;
}

int Collector::rank_of_lane(const std::string& lane) const {
  if (lane.compare(0, 4, "rank") == 0) return parse_int(lane, 4);
  if (lane.compare(0, 5, "mpi.r") == 0) return parse_int(lane, 5);  // sender initiates
  if (lane.compare(0, 3, "gpu") == 0 && gpus_per_rank_ > 0) {
    const int g = parse_int(lane, 3);
    return g >= 0 ? g / gpus_per_rank_ : -1;
  }
  return -1;
}

std::uint64_t Collector::record(std::string lane, std::string label, sim::Time start,
                                sim::Time end) {
  const int rank = rank_of_lane(lane);
  const std::uint64_t id = ++next_span_id_;
  records_.push_back(trace::OpRecord{std::move(lane), std::move(label), start, end, rank, id});
  return id;
}

void Collector::on_context_posted(int rank, std::uint64_t span, std::uint64_t seq,
                                  std::uint64_t serial) {
  inflight_[serial] = TraceContext{rank, span, seq};
}

void Collector::on_context_resolved(std::uint64_t serial) { inflight_.erase(serial); }

std::vector<TraceContext> Collector::inflight() const {
  std::vector<TraceContext> out;
  out.reserve(inflight_.size());
  for (const auto& [serial, ctx] : inflight_) out.push_back(ctx);
  return out;
}

const std::string& Collector::tenant_of(int rank) const {
  const auto it = tenant_of_rank_.find(rank);
  return it != tenant_of_rank_.end() ? it->second : no_tenant_;
}

int Collector::max_rank() const {
  int m = -1;
  for (const auto& r : records_) m = std::max(m, r.rank);
  return m;
}

void Collector::write_merged_chrome_trace(std::ostream& os) const {
  // pid = rank + 1; pid 0 holds unattributed (shared) lanes. tids are
  // assigned per process in first-appearance order — all deterministic.
  std::map<std::pair<int, std::string>, int> tids;
  std::vector<std::pair<int, const std::string*>> tid_order;  // (pid, lane)
  std::map<int, int> next_tid;
  for (const auto& r : records_) {
    const int pid = r.rank + 1;
    auto [it, inserted] = tids.try_emplace({pid, r.lane}, 0);
    if (inserted) {
      it->second = next_tid[pid]++;
      tid_order.emplace_back(pid, &it->first.second);
    }
  }
  std::unordered_map<std::uint64_t, const trace::OpRecord*> by_id;
  by_id.reserve(records_.size());
  for (const auto& r : records_) by_id.emplace(r.id, &r);

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  // Process metadata: one process per rank, sorted wire/shared first.
  std::map<int, bool> pids_seen;
  for (const auto& [pid, lane] : tid_order) pids_seen[pid] = true;
  for (const auto& [pid, unused] : pids_seen) {
    (void)unused;
    sep();
    std::string pname = pid == 0 ? std::string("shared") : "rank " + std::to_string(pid - 1);
    if (pid > 0) {
      // Tenant namespace: co-scheduled jobs merge into one trace, so rank
      // ids alone would alias across tenants.
      const std::string& tenant = tenant_of(pid - 1);
      if (!tenant.empty()) pname = tenant + "/" + pname;
    }
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":0,\"name\":\"process_name\",\"args\":"
       << "{\"name\":\"" << json_escape(pname) << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":0,\"name\":\"process_sort_index\","
       << "\"args\":{\"sort_index\":" << pid << "}}";
  }
  for (const auto& [pid, lane] : tid_order) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tids.at({pid, *lane})
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(*lane) << "\"}}";
  }
  for (const auto& r : records_) {
    sep();
    const sim::Duration dur = r.end > r.start ? r.end - r.start : 0;
    os << "{\"ph\":\"X\",\"pid\":" << r.rank + 1 << ",\"tid\":" << tids.at({r.rank + 1, r.lane})
       << ",\"name\":\"" << json_escape(r.label) << "\",\"ts\":" << sim::to_micros(r.start)
       << ",\"dur\":" << sim::to_micros(dur) << ",\"args\":{\"span\":" << r.id << "}}";
  }
  // Flow events: an "s" at the producer span, an "f" (bp "e": bind to the
  // enclosing slice) at the consumer span. Perfetto draws these as arrows.
  for (const auto& f : flows_) {
    const auto pit = by_id.find(f.from_span);
    const auto cit = by_id.find(f.to_span);
    if (pit == by_id.end() || cit == by_id.end()) continue;
    const trace::OpRecord& p = *pit->second;
    const trace::OpRecord& c = *cit->second;
    sep();
    os << "{\"ph\":\"s\",\"cat\":\"dtrace\",\"id\":" << f.id << ",\"pid\":" << p.rank + 1
       << ",\"tid\":" << tids.at({p.rank + 1, p.lane}) << ",\"name\":\"" << json_escape(f.label)
       << "\",\"ts\":" << sim::to_micros(p.end > p.start ? p.end : p.start) << "}";
    sep();
    os << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"dtrace\",\"id\":" << f.id
       << ",\"pid\":" << c.rank + 1 << ",\"tid\":" << tids.at({c.rank + 1, c.lane})
       << ",\"name\":\"" << json_escape(f.label) << "\",\"ts\":" << sim::to_micros(c.start)
       << "}";
  }
  os << "]}\n";
}

void Collector::write_rank_json(std::ostream& os, int rank) const {
  os << "{\"schema\":\"dtrace-rank-v1\",\"rank\":" << rank;
  if (const std::string& tenant = tenant_of(rank); !tenant.empty()) {
    os << ",\"tenant\":\"" << json_escape(tenant) << "\"";
  }
  os << ",\"spans\":[";
  bool first = true;
  for (const auto& r : records_) {
    if (r.rank != rank) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << r.id << ",\"rank\":" << r.rank << ",\"lane\":\"" << json_escape(r.lane)
       << "\",\"label\":\"" << json_escape(r.label) << "\",\"start\":" << r.start
       << ",\"end\":" << r.end << "}";
  }
  os << "],\"flows\":[";
  first = true;
  for (const auto& f : flows_) {
    // A flow is exported by the rank that owns its producer span.
    const auto it = std::find_if(records_.begin(), records_.end(),
                                 [&](const trace::OpRecord& r) { return r.id == f.from_span; });
    if (it == records_.end() || it->rank != rank) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << f.id << ",\"from\":" << f.from_span << ",\"to\":" << f.to_span
       << ",\"msg\":" << f.msg << ",\"label\":\"" << json_escape(f.label) << "\"}";
  }
  os << "]}\n";
}

// --- offline merger ---------------------------------------------------------
//
// A deliberately minimal scanner for exactly the format write_rank_json
// emits (no external JSON dependency). Strict: anything unexpected throws.

namespace {

class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])) != 0) ++i_;
  }
  bool eat(char c) {
    ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\' && i_ < s_.size()) {
        const char e = s_[i_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) fail("truncated \\u escape");
            c = static_cast<char>(std::stoi(s_.substr(i_, 4), nullptr, 16));
            i_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }
  std::int64_t integer() {
    ws();
    const bool neg = i_ < s_.size() && s_[i_] == '-';
    if (neg) ++i_;
    if (i_ >= s_.size() || std::isdigit(static_cast<unsigned char>(s_[i_])) == 0) {
      fail("expected integer");
    }
    std::int64_t v = 0;
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])) != 0) {
      v = v * 10 + (s_[i_++] - '0');
    }
    return neg ? -v : v;
  }
  std::string key() {
    const std::string k = string();
    expect(':');
    return k;
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("dtrace::Collector::merge: " + what + " at offset " +
                             std::to_string(i_));
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

Collector Collector::merge(const std::vector<std::string>& docs) {
  std::vector<trace::OpRecord> spans;
  std::vector<trace::FlowEdge> flows;
  std::map<int, std::string> tenants;
  for (const std::string& doc : docs) {
    Scanner sc(doc);
    sc.expect('{');
    if (sc.key() != "schema") sc.fail("missing schema");
    if (sc.string() != "dtrace-rank-v1") sc.fail("unknown schema");
    sc.expect(',');
    if (sc.key() != "rank") sc.fail("missing rank");
    const int doc_rank = static_cast<int>(sc.integer());
    sc.expect(',');
    std::string next = sc.key();
    if (next == "tenant") {
      tenants[doc_rank] = sc.string();
      sc.expect(',');
      next = sc.key();
    }
    if (next != "spans") sc.fail("missing spans");
    sc.expect('[');
    if (!sc.eat(']')) {
      do {
        sc.expect('{');
        trace::OpRecord r;
        do {
          const std::string k = sc.key();
          if (k == "id") r.id = static_cast<std::uint64_t>(sc.integer());
          else if (k == "rank") r.rank = static_cast<int>(sc.integer());
          else if (k == "lane") r.lane = sc.string();
          else if (k == "label") r.label = sc.string();
          else if (k == "start") r.start = sc.integer();
          else if (k == "end") r.end = sc.integer();
          else sc.fail("unknown span key '" + k + "'");
        } while (sc.eat(','));
        sc.expect('}');
        spans.push_back(std::move(r));
      } while (sc.eat(','));
      sc.expect(']');
    }
    sc.expect(',');
    if (sc.key() != "flows") sc.fail("missing flows");
    sc.expect('[');
    if (!sc.eat(']')) {
      do {
        sc.expect('{');
        trace::FlowEdge f;
        do {
          const std::string k = sc.key();
          if (k == "id") f.id = static_cast<std::uint64_t>(sc.integer());
          else if (k == "from") f.from_span = static_cast<std::uint64_t>(sc.integer());
          else if (k == "to") f.to_span = static_cast<std::uint64_t>(sc.integer());
          else if (k == "msg") f.msg = static_cast<std::uint64_t>(sc.integer());
          else if (k == "label") f.label = sc.string();
          else sc.fail("unknown flow key '" + k + "'");
        } while (sc.eat(','));
        sc.expect('}');
        flows.push_back(std::move(f));
      } while (sc.eat(','));
      sc.expect(']');
    }
    sc.expect('}');
  }
  // Span/flow ids are assigned in recording order, so sorting by id
  // restores the original global order regardless of file order.
  std::sort(spans.begin(), spans.end(),
            [](const trace::OpRecord& a, const trace::OpRecord& b) { return a.id < b.id; });
  std::sort(flows.begin(), flows.end(),
            [](const trace::FlowEdge& a, const trace::FlowEdge& b) { return a.id < b.id; });
  Collector out;
  out.tenant_of_rank_ = std::move(tenants);
  for (auto& s : spans) {
    out.next_span_id_ = std::max(out.next_span_id_, s.id);
    out.records_.push_back(std::move(s));
  }
  for (auto& f : flows) {
    out.next_flow_id_ = std::max(out.next_flow_id_, f.id);
    out.flows_.push_back(std::move(f));
  }
  return out;
}

}  // namespace stencil::dtrace
