#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "dtrace/context.h"
#include "trace/recorder.h"

namespace stencil::dtrace {

/// A causal, rank-aware trace recorder (DESIGN.md §12). Drop-in for
/// trace::Recorder (attach with Cluster::set_collector): every recorded
/// span is attributed to the rank its lane names ("rank2.cpu" -> 2,
/// "gpu5.kernel" -> 5 / gpus_per_rank, "mpi.r1->r3" -> 1, the sender), and
/// because causal() is true the simpi layer stamps trace contexts onto
/// message envelopes and feeds flow edges along every message, IPC
/// handshake, and persistent-plan replay. The result merges into one
/// global timeline: write_merged_chrome_trace emits one process per rank
/// with chrome flow events (s/f arrows) drawn along every message, and
/// write_rank_json / merge support the offline per-rank-file workflow.
class Collector : public trace::Recorder {
 public:
  /// Rank attribution for GPU lanes needs the job shape; Cluster::set_collector
  /// calls this. gpus_per_rank <= 0 leaves GPU lanes unattributed.
  void set_topology(int world_size, int gpus_per_rank);
  int world_size() const { return world_size_; }

  /// Multi-tenancy (src/sched): name the tenant each world rank belongs to.
  /// Ranks of different co-scheduled jobs share one recorder, so without a
  /// namespace a merged trace reads as one anonymous job. With labels set,
  /// the merged chrome trace names each rank's process "tenant/rank N" and
  /// write_rank_json stamps a "tenant" field; unlabeled ranks (and a
  /// label-free collector) render exactly as before.
  void set_tenant_labels(std::map<int, std::string> rank_to_tenant) {
    tenant_of_rank_ = std::move(rank_to_tenant);
  }
  const std::string& tenant_of(int rank) const;

  std::uint64_t record(std::string lane, std::string label, sim::Time start,
                       sim::Time end) override;
  bool causal() const override { return true; }

  void on_context_posted(int rank, std::uint64_t span, std::uint64_t seq,
                         std::uint64_t serial) override;
  void on_context_resolved(std::uint64_t serial) override;

  /// Trace contexts stamped on sends whose completion has not been observed
  /// yet, ordered by request serial — the "what is still in the air"
  /// snapshot a ProgressMonitor stall alert captures.
  std::vector<TraceContext> inflight() const;

  /// Which rank a lane belongs to: "rankN.*" -> N, "mpi.rS->rD" -> S (the
  /// sender initiates the message), "gpuG*" -> G / gpus_per_rank; -1 for
  /// shared lanes ("exchange", "fault", "barrier#...").
  int rank_of_lane(const std::string& lane) const;

  /// Largest rank seen across spans (-1 when nothing is attributed).
  int max_rank() const;

  /// One global timeline: a chrome trace with one process per rank
  /// (pid = rank + 1; pid 0 holds unattributed lanes), thread-per-lane
  /// within each process, and a flow-event pair (ph "s" at the producer,
  /// ph "f" bp "e" at the consumer) per causal edge. Loads in Perfetto
  /// with arrows along every message.
  void write_merged_chrome_trace(std::ostream& os) const;

  /// Per-rank export for the offline-merge workflow: the spans owned by
  /// `rank` plus the flow edges whose producer span `rank` owns, as a
  /// self-describing JSON document. rank -1 exports the shared lanes.
  void write_rank_json(std::ostream& os, int rank) const;

  /// Offline merger: parse documents previously written by write_rank_json
  /// and rebuild the union Collector (spans and flows ordered by id, which
  /// is the original recording order). Throws std::runtime_error on
  /// malformed input.
  static Collector merge(const std::vector<std::string>& docs);

 private:
  int world_size_ = 0;
  int gpus_per_rank_ = 0;
  std::map<std::uint64_t, TraceContext> inflight_;  // serial -> stamped context
  std::map<int, std::string> tenant_of_rank_;       // world rank -> tenant name
  std::string no_tenant_;
};

}  // namespace stencil::dtrace
