#pragma once

#include <cstdint>

namespace stencil::dtrace {

/// The trace context a simpi send stamps onto its message envelope and the
/// matching receive adopts (Dapper-style propagation, DESIGN.md §12): which
/// rank originated the message, the id of the "post" marker span on that
/// rank's timeline, and the rank-local send sequence number. Header-only so
/// simpi can carry it on Request::Record without linking dtrace.
struct TraceContext {
  int rank = -1;          // originating rank
  std::uint64_t span = 0; // id of the sender's post/start marker span (0: unset)
  std::uint64_t seq = 0;  // rank-local send sequence number (1-based)

  bool valid() const { return span != 0; }
};

}  // namespace stencil::dtrace
