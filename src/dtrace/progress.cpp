#include "dtrace/progress.h"

#include <algorithm>
#include <sstream>

#include "dtrace/collector.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace stencil::dtrace {

std::string StallAlert::str() const {
  std::ostringstream os;
  os << "[seq " << seq << "] rank " << rank << " " << detail << " (lag "
     << sim::format_duration(lag) << " at " << sim::format_duration(at) << ")";
  if (!inflight.empty()) {
    os << "\n  in-flight contexts:";
    for (const TraceContext& c : inflight) {
      os << " {rank " << c.rank << " span " << c.span << " seq " << c.seq << "}";
    }
  }
  if (!flight_tail.empty()) {
    os << "\n  flight-recorder tail:\n";
    std::istringstream lines(flight_tail);
    std::string line;
    while (std::getline(lines, line)) os << "    " << line << "\n";
  }
  return os.str();
}

void ProgressMonitor::on_exchange_begin(int rank, std::uint64_t seq, sim::Time at) {
  Cell& c = beats_[seq][rank];
  c.begin = at;
  c.begun = true;
}

void ProgressMonitor::on_exchange_complete(int rank, std::uint64_t seq, sim::Time at) {
  Cell& c = beats_[seq][rank];
  if (!c.begun) {
    c.begin = at;
    c.begun = true;
  }
  c.end = at;
  c.done = true;
  if (world_size_ > 0) {
    const auto& ranks = beats_[seq];
    if (static_cast<int>(ranks.size()) == world_size_ &&
        std::all_of(ranks.begin(), ranks.end(),
                    [](const auto& kv) { return kv.second.done; })) {
      evaluate(seq);
    }
  }
}

void ProgressMonitor::evaluate(std::uint64_t seq) {
  const auto& ranks = beats_.at(seq);
  std::vector<sim::Duration> durs;
  durs.reserve(ranks.size());
  for (const auto& [rank, c] : ranks) durs.push_back(c.end - c.begin);
  std::vector<sim::Duration> sorted = durs;
  std::sort(sorted.begin(), sorted.end());
  const sim::Duration median = sorted[sorted.size() / 2];
  for (const auto& [rank, c] : ranks) {
    const sim::Duration dur = c.end - c.begin;
    const sim::Duration lag = dur - median;
    const bool relative = static_cast<double>(dur) >
                          relative_slack_ * static_cast<double>(median);
    if (relative && lag > slack_) {
      std::ostringstream detail;
      detail << "straggler: exchange took " << sim::format_duration(dur) << " vs median "
             << sim::format_duration(median);
      fire(rank, seq, c.end, lag, detail.str());
    }
  }
}

void ProgressMonitor::finish(sim::Time now) {
  for (const auto& [seq, ranks] : beats_) {
    const bool anyone_done =
        std::any_of(ranks.begin(), ranks.end(), [](const auto& kv) { return kv.second.done; });
    for (const auto& [rank, c] : ranks) {
      if (c.done) continue;
      std::ostringstream detail;
      detail << "stall: exchange begun at " << sim::format_duration(c.begin)
             << " never completed" << (anyone_done ? " (peers finished)" : "");
      fire(rank, seq, now, now - c.begin, detail.str());
    }
    if (world_size_ > 0 && anyone_done) {
      for (int r = 0; r < world_size_; ++r) {
        if (ranks.count(r) != 0) continue;
        fire(r, seq, now, 0, "stall: rank never began an exchange its peers ran");
      }
    }
  }
}

void ProgressMonitor::fire(int rank, std::uint64_t seq, sim::Time at, sim::Duration lag,
                           std::string detail) {
  // Failure attribution: a stall on a rank with a scripted terminal fault is
  // not an anonymous hang — name the death so recovery can escalate it.
  if (rank_fail_time_) {
    const sim::Time pf = rank_fail_time_(rank);
    if (pf != std::numeric_limits<sim::Time>::max() && pf <= at) {
      detail += " [attributable: rank " + std::to_string(rank) + " died at " +
                sim::format_duration(pf) + "]";
    }
  }
  StallAlert a;
  a.rank = rank;
  a.seq = seq;
  a.at = at;
  a.lag = lag;
  a.detail = std::move(detail);
  if (telemetry_ != nullptr) telemetry_->on_stall(a.detail, at);
  if (flight_ != nullptr && !flight_->empty()) {
    std::ostringstream tail;
    flight_->dump_tail(tail, 16);
    a.flight_tail = tail.str();
  }
  if (collector_ != nullptr) a.inflight = collector_->inflight();
  alerts_.push_back(std::move(a));
}

std::string ProgressMonitor::str() const {
  if (alerts_.empty()) return "progress: clean (" + std::to_string(beats_.size()) + " exchanges)";
  std::ostringstream os;
  os << "progress: " << alerts_.size() << " alert" << (alerts_.size() == 1 ? "" : "s") << " over "
     << beats_.size() << " exchanges\n";
  for (const StallAlert& a : alerts_) os << a.str() << "\n";
  return os.str();
}

}  // namespace stencil::dtrace
