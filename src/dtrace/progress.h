#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dtrace/context.h"
#include "simtime/time.h"

namespace stencil::telemetry {
class FlightRecorder;
class Telemetry;
}

namespace stencil::dtrace {

class Collector;

/// One detected straggler or stall. `lag` is how far behind the median
/// same-exchange peer the flagged rank finished (straggler) or how long it
/// has been silent (stall). `flight_tail` and `inflight` snapshot the
/// FlightRecorder tail and the trace contexts still in the air when the
/// alert fired, so the report names the messages a hung rank is waiting on.
struct StallAlert {
  int rank = -1;
  std::uint64_t seq = 0;       // exchange sequence number
  sim::Time at = 0;            // virtual time the alert fired
  sim::Duration lag = 0;
  std::string detail;
  std::string flight_tail;
  std::vector<TraceContext> inflight;

  std::string str() const;
};

/// Live progress/stall monitor (DESIGN.md §12): every rank heartbeats at
/// the start and end of each halo exchange (DistributedDomain calls
/// on_exchange_begin/on_exchange_complete via Cluster::progress_monitor).
/// When all ranks of an exchange have reported, per-rank durations are
/// compared against the median: a rank is flagged as a straggler when it is
/// slower than `relative_slack` x median AND more than `slack` behind it
/// (both must hold, so microsecond jitter on a fast exchange stays silent).
/// finish() flags exchanges that never completed on some rank as stalls.
/// All comparisons are in virtual time, so detection is deterministic.
class ProgressMonitor {
 public:
  void set_world(int world_size) { world_size_ = world_size; }
  /// Absolute slack floor (virtual ns). Default 50 us.
  void set_slack(sim::Duration slack) { slack_ = slack; }
  /// Relative multiple of the median duration. Default 2.0.
  void set_relative_slack(double mult) { relative_slack_ = mult; }
  /// Optional: snapshot this recorder's tail into alerts.
  void set_flight(const telemetry::FlightRecorder* flight) { flight_ = flight; }
  /// Optional: snapshot in-flight trace contexts into alerts.
  void set_collector(const Collector* collector) { collector_ = collector; }
  /// Optional: every fired alert also lands in the telemetry sink
  /// (counter + flight event + auto tail dump, the DeadlockError path).
  void set_telemetry(telemetry::Telemetry* t) { telemetry_ = t; }
  /// Optional failure attribution: maps a rank to its scripted death instant
  /// (fault::kForever = alive). A stall on a dead rank is reported as
  /// attributable — the escalation signal recovery consumes — instead of an
  /// anonymous hang. Cluster wires this to Job::rank_fail_time.
  void set_rank_fail_time(std::function<sim::Time(int)> fn) { rank_fail_time_ = std::move(fn); }

  sim::Duration slack() const { return slack_; }
  double relative_slack() const { return relative_slack_; }

  /// Heartbeats, one pair per (rank, exchange).
  void on_exchange_begin(int rank, std::uint64_t seq, sim::Time at);
  void on_exchange_complete(int rank, std::uint64_t seq, sim::Time at);

  /// Flags exchanges some rank began but never completed (a stall) and
  /// ranks that never began an exchange their peers ran. Call at teardown
  /// or from a watchdog with the current virtual time.
  void finish(sim::Time now);

  const std::vector<StallAlert>& alerts() const { return alerts_; }
  bool clean() const { return alerts_.empty(); }
  std::uint64_t exchanges_seen() const { return static_cast<std::uint64_t>(beats_.size()); }

  /// Human-readable report: one line per alert, or "progress: clean".
  std::string str() const;

 private:
  struct Cell {
    sim::Time begin = 0;
    sim::Time end = 0;
    bool begun = false;
    bool done = false;
  };

  void evaluate(std::uint64_t seq);
  void fire(int rank, std::uint64_t seq, sim::Time at, sim::Duration lag, std::string detail);

  int world_size_ = 0;
  sim::Duration slack_ = 50'000;  // 50 us of virtual time
  double relative_slack_ = 2.0;
  const telemetry::FlightRecorder* flight_ = nullptr;
  const Collector* collector_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::function<sim::Time(int)> rank_fail_time_;
  std::map<std::uint64_t, std::map<int, Cell>> beats_;  // seq -> rank -> heartbeat
  std::vector<StallAlert> alerts_;
};

}  // namespace stencil::dtrace
