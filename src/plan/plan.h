#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/method_flags.h"
#include "simpi/mpi.h"
#include "vgpu/runtime.h"

namespace stencil::telemetry {
class MetricsRegistry;
}

namespace stencil::plan {

/// Identity of one compiled exchange schedule. Two exchanges reuse the same
/// plan iff everything the schedule depends on matches: the method flags the
/// domain was realized with, the remote-aggregation mode, and the exact
/// quantity subset (selective exchange packs different bytes per transfer, so
/// each subset compiles to its own plan). `topo_epoch` is *not* part of the
/// lookup: it versions the specialization table, and a cached plan whose
/// epoch lags the domain's is migrated in place — only the programs the
/// fault injector dirtied are rebuilt.
struct PlanKey {
  std::uint64_t topo_epoch = 0;
  std::uint32_t method_flags = 0;
  bool aggregated = false;
  std::vector<std::size_t> quantities;  // sorted, as validated by exchange()

  /// Lookup equality: everything except the epoch.
  bool same_config(std::uint32_t flags, bool agg, const std::vector<std::size_t>& qs) const {
    return method_flags == flags && aggregated == agg && quantities == qs;
  }

  std::string str() const;
};

/// Counters the cache keeps across the run; plan_report and the zero-setup
/// tests read them.
struct PlanStats {
  std::uint64_t compiles = 0;          // full plan compilations (cache misses)
  std::uint64_t hits = 0;              // exact reuses (no rebuild at all)
  std::uint64_t invalidations = 0;     // stale-epoch migrations (partial rebuild)
  std::uint64_t rebuilt_programs = 0;  // programs recompiled across migrations
  std::uint64_t replays = 0;           // planned exchanges executed
  std::uint64_t verifications = 0;     // admission checks run (static verifier)
  std::uint64_t rejections = 0;        // plans refused at admission

  std::string str() const;

  /// Snapshot every counter into `plan_stats_*` gauges (DESIGN.md §11).
  void export_to(telemetry::MetricsRegistry& reg) const;
};

/// The frozen form of one TransferState: its MPI envelope as persistent
/// requests and its stream-op phases as instantiated graphs. Which fields
/// are populated depends on the method:
///   kKernel        send_graph (self-exchange kernel), no MPI
///   kPeer          send_graph (pack / 3D copy + event edge + unpack), no MPI
///   kCudaAwareMpi  send_graph = pack + ready event, recv_graph = unpack,
///                  persistent device-payload send/recv
///   kStaged        send_graph = pack (+ D2H or zero-copy) + ready event,
///                  recv_graph = H2D + unpack, persistent host-payload
///                  send/recv (aggregated members live in a GroupProgram)
///   kColocated     `eager = true`: the IPC state machine stays interpreted
///                  (its flow control is generation-dependent, not freezable)
/// `dirty` marks a program whose transfer was demoted after compilation; the
/// next acquire rebuilds just this entry against the new method.
struct TransferProgram {
  std::size_t xfer_index = 0;  // index into the domain's transfer set
  int tag = 0;
  Method method = Method::kStaged;
  std::size_t bytes = 0;  // payload bytes for this plan's quantity subset
  bool i_send = false;
  bool i_recv = false;
  bool eager = false;  // colocated: replayed through the interpreted path
  bool dirty = false;

  simpi::Request send_req;
  simpi::Request recv_req;
  vgpu::GraphExec send_graph;
  vgpu::GraphExec recv_graph;
};

/// The frozen form of one remote-aggregation group: one persistent request
/// for the merged host payload and one graph covering every member's pack
/// and staging copies (send side) or fan-out H2D + unpacks (recv side).
struct GroupProgram {
  std::size_t group_index = 0;  // index into the domain's send/recv group list
  bool is_send = false;
  int peer_rank = -1;
  std::size_t bytes = 0;  // merged active bytes for this plan's subset
  std::vector<int> member_tags;

  simpi::Request req;
  vgpu::GraphExec graph;
};

/// One realized schedule: everything exchange() needs per iteration, with
/// all setup (request creation, graph instantiation, event-edge layout)
/// hoisted to compile time. Replay walks flat vectors in a fixed order —
/// no per-iteration state-machine dispatch.
class CompiledPlan {
 public:
  PlanKey key;
  std::vector<TransferProgram> programs;
  std::vector<GroupProgram> send_groups;
  std::vector<GroupProgram> recv_groups;
  std::uint64_t replays = 0;

  std::size_t dirty_count() const;
  /// Mark every program of transfer `tag` dirty (fault demotion).
  void mark_dirty(int tag);

  /// Human-readable dump (plan_report).
  void describe(std::ostream& os) const;
};

/// Thrown when plan admission rejects a compiled plan: the static verifier
/// found a protocol defect (mismatched tags, wait cycle, reserved-tag
/// collision, buffer hazard). `report()` carries the full findings text.
class AdmissionError : public std::runtime_error {
 public:
  AdmissionError(std::string summary, std::string report)
      : std::runtime_error(std::move(summary)), report_(std::move(report)) {}
  const std::string& report() const { return report_; }

 private:
  std::string report_;
};

/// The per-domain plan cache. Owns every compiled plan; lookups match on
/// configuration (flags, aggregation, quantity subset) and never on epoch —
/// epoch mismatches are repaired by the domain via partial rebuild.
class PlanCache {
 public:
  /// Admission hook: returns a findings report for a plan, or the empty
  /// string when the plan is clean. Keeping the result a plain string keeps
  /// stencil_plan decoupled from the verifier (core installs a hook that
  /// lowers the plan to a verify::ExchangeModel and runs stencil_verify).
  using AdmissionFn = std::function<std::string(const CompiledPlan&)>;

  /// Install (or clear, with nullptr) the admission hook.
  void set_admission(AdmissionFn fn) { admission_ = std::move(fn); }
  bool has_admission() const { return static_cast<bool>(admission_); }

  /// Run the admission hook on a freshly compiled or migrated plan.
  /// Throws AdmissionError when the verifier reports findings; the bad plan
  /// is left in the cache marked by the throw site (callers fail fast).
  void admit(const CompiledPlan& p);

  /// The plan for this configuration, or nullptr (caller compiles one).
  CompiledPlan* find(std::uint32_t flags, bool agg, const std::vector<std::size_t>& qs);

  /// Insert an empty plan for `key` and return it (stable address).
  CompiledPlan& emplace(PlanKey key);

  /// Fault path: mark the programs of transfer `tag` dirty in every plan.
  void invalidate_tag(int tag);

  std::size_t size() const { return plans_.size(); }
  const std::vector<std::unique_ptr<CompiledPlan>>& entries() const { return plans_; }

  PlanStats& stats() { return stats_; }
  const PlanStats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<CompiledPlan>> plans_;
  PlanStats stats_;
  AdmissionFn admission_;
};

}  // namespace stencil::plan
