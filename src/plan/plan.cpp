#include "plan/plan.h"

#include <map>

#include "telemetry/metrics.h"

namespace stencil::plan {

std::string PlanKey::str() const {
  std::string s = "epoch=" + std::to_string(topo_epoch) + " flags=" +
                  std::to_string(method_flags) + (aggregated ? " agg" : " no-agg") + " qs=[";
  for (std::size_t i = 0; i < quantities.size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(quantities[i]);
  }
  s += "]";
  return s;
}

std::string PlanStats::str() const {
  return "compiles=" + std::to_string(compiles) + " hits=" + std::to_string(hits) +
         " invalidations=" + std::to_string(invalidations) +
         " rebuilt=" + std::to_string(rebuilt_programs) + " replays=" + std::to_string(replays) +
         " verifications=" + std::to_string(verifications) +
         " rejections=" + std::to_string(rejections);
}

void PlanStats::export_to(telemetry::MetricsRegistry& reg) const {
  reg.gauge("plan_stats_compiles").set(static_cast<double>(compiles));
  reg.gauge("plan_stats_hits").set(static_cast<double>(hits));
  reg.gauge("plan_stats_invalidations").set(static_cast<double>(invalidations));
  reg.gauge("plan_stats_rebuilt_programs").set(static_cast<double>(rebuilt_programs));
  reg.gauge("plan_stats_replays").set(static_cast<double>(replays));
  reg.gauge("plan_stats_verifications").set(static_cast<double>(verifications));
  reg.gauge("plan_stats_rejections").set(static_cast<double>(rejections));
}

std::size_t CompiledPlan::dirty_count() const {
  std::size_t n = 0;
  for (const auto& p : programs) n += p.dirty ? 1 : 0;
  return n;
}

void CompiledPlan::mark_dirty(int tag) {
  for (auto& p : programs) {
    if (p.tag == tag) p.dirty = true;
  }
}

void CompiledPlan::describe(std::ostream& os) const {
  os << "plan { " << key.str() << " } replays=" << replays << "\n";

  // Per-method rollup first: how many frozen transfers, total payload bytes,
  // and how many graph nodes the schedule replays per iteration.
  struct Roll {
    int count = 0;
    std::size_t bytes = 0;
    std::size_t nodes = 0;
  };
  std::map<Method, Roll> by_method;
  for (const auto& p : programs) {
    Roll& r = by_method[p.method];
    ++r.count;
    r.bytes += p.bytes;
    r.nodes += p.send_graph.num_nodes() + p.recv_graph.num_nodes();
  }
  for (const auto& [m, r] : by_method) {
    os << "  method " << to_string(m) << ": " << r.count << " transfer(s), " << r.bytes
       << " B, " << r.nodes << " graph node(s)\n";
  }
  for (const auto& g : send_groups) {
    os << "  send-group -> rank " << g.peer_rank << ": " << g.member_tags.size()
       << " member(s), " << g.bytes << " B, " << g.graph.num_nodes() << " graph node(s)\n";
  }
  for (const auto& g : recv_groups) {
    os << "  recv-group <- rank " << g.peer_rank << ": " << g.member_tags.size()
       << " member(s), " << g.bytes << " B, " << g.graph.num_nodes() << " graph node(s)\n";
  }

  for (const auto& p : programs) {
    os << "  tag " << p.tag << " " << to_string(p.method) << " " << p.bytes << " B"
       << (p.i_send ? " send" : "") << (p.i_recv ? " recv" : "") << (p.eager ? " [eager]" : "")
       << (p.dirty ? " [dirty]" : "");
    if (p.send_req.valid() || p.recv_req.valid()) os << " persistent";
    if (p.send_graph.valid()) {
      os << " send-graph{";
      const auto labels = p.send_graph.labels();
      for (std::size_t i = 0; i < labels.size(); ++i) os << (i != 0 ? "; " : "") << labels[i];
      os << "}";
    }
    if (p.recv_graph.valid()) {
      os << " recv-graph{";
      const auto labels = p.recv_graph.labels();
      for (std::size_t i = 0; i < labels.size(); ++i) os << (i != 0 ? "; " : "") << labels[i];
      os << "}";
    }
    os << "\n";
  }
}

CompiledPlan* PlanCache::find(std::uint32_t flags, bool agg, const std::vector<std::size_t>& qs) {
  for (auto& p : plans_) {
    if (p->key.same_config(flags, agg, qs)) return p.get();
  }
  return nullptr;
}

CompiledPlan& PlanCache::emplace(PlanKey key) {
  plans_.push_back(std::make_unique<CompiledPlan>());
  plans_.back()->key = std::move(key);
  return *plans_.back();
}

void PlanCache::invalidate_tag(int tag) {
  for (auto& p : plans_) p->mark_dirty(tag);
}

void PlanCache::admit(const CompiledPlan& p) {
  if (!admission_) return;
  ++stats_.verifications;
  std::string report = admission_(p);
  if (report.empty()) return;
  ++stats_.rejections;
  throw AdmissionError("plan admission rejected { " + p.key.str() + " }",
                       std::move(report));
}

}  // namespace stencil::plan
