#include "check/report.h"

#include <map>

namespace stencil::check {

const char* to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kWriteWriteRace: return "write-write-race";
    case FindingKind::kReadWriteRace: return "read-write-race";
    case FindingKind::kStaleIpcMapping: return "stale-ipc-mapping";
    case FindingKind::kWaitUnrecordedEvent: return "wait-unrecorded-event";
    case FindingKind::kSizeMismatch: return "size-mismatch";
    case FindingKind::kTagMismatch: return "tag-mismatch";
    case FindingKind::kRequestNeverWaited: return "request-never-waited";
    case FindingKind::kStreamDestroyedPending: return "stream-destroyed-pending";
    case FindingKind::kPersistentRestart: return "persistent-restart";
    case FindingKind::kPersistentFreedActive: return "persistent-freed-active";
  }
  return "unknown";
}

std::size_t CheckReport::count(FindingKind k) const {
  std::size_t n = 0;
  for (const auto& f : findings_) n += f.kind == k ? 1 : 0;
  return n;
}

void CheckReport::write(std::ostream& os) const {
  if (findings_.empty()) {
    os << "check: clean (no findings)\n";
    return;
  }
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    os << "[" << i + 1 << "] " << to_string(f.kind) << " at t=" << sim::format_duration(f.at)
       << "\n      first:  " << f.first << "\n";
    if (!f.second.empty()) os << "      second: " << f.second << "\n";
    if (!f.missing_edge.empty()) os << "      missing edge: " << f.missing_edge << "\n";
  }
}

std::string CheckReport::summary() const {
  if (findings_.empty()) return "clean";
  std::map<FindingKind, std::size_t> by_kind;
  for (const auto& f : findings_) ++by_kind[f.kind];
  std::string s = std::to_string(findings_.size()) + " finding(s):";
  for (const auto& [k, n] : by_kind) {
    s += std::string(" ") + to_string(k) + "=" + std::to_string(n);
  }
  return s;
}

}  // namespace stencil::check
