#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/report.h"
#include "check/vclock.h"
#include "simpi/observer.h"
#include "simtime/engine.h"
#include "telemetry/critical_path.h"
#include "vgpu/observer.h"

namespace stencil::telemetry {
class Telemetry;
}

namespace stencil::check {

/// Vector-clock happens-before analyzer for the virtual CUDA/MPI substrate.
///
/// The simulation executes every op on one OS thread, so host sanitizers see
/// nothing; what can race is *virtual* concurrency — streams, events, and
/// MPI requests. The Checker rebuilds the happens-before partial order from
/// the ordering operations alone (stream FIFO, default-stream serialization,
/// event record/wait, stream/device synchronize, request post/completion,
/// barriers — never from virtual-time comparison, which would declare every
/// deterministic schedule race-free) and keeps per-byte-range access history
/// on every vgpu::Buffer it sees. Unordered write/write or read/write pairs
/// become findings naming both ops and the missing edge. On the same feed it
/// lints API misuse: copies through closed IPC mappings, waits on unrecorded
/// events, message truncation, tag-mismatched pairs, unwaited requests, and
/// streams destroyed with unsynchronized work.
///
/// Install with Cluster::set_checker (or Runtime::set_checker +
/// Job::set_checker directly); read `report()` after the run.
class Checker : public vgpu::RuntimeObserver, public simpi::JobObserver {
 public:
  explicit Checker(sim::Engine& eng) : eng_(eng) {}

  CheckReport& report() { return report_; }
  const CheckReport& report() const { return report_; }

  /// Optional telemetry sink: every finding (race, leak, lint, ...) is
  /// counted by kind and triggers a flight-recorder tail dump, exactly like
  /// deadlocks and transport errors. Cluster cross-wires this when both a
  /// checker and a telemetry sink are installed.
  void set_telemetry(telemetry::Telemetry* t) { telemetry_ = t; }

  /// Ordered log of every happens-before edge the checker derived from real
  /// synchronization (event waits, stream/device syncs, MPI post/completion,
  /// barriers), in resource-description form. Feed it to
  /// telemetry::CriticalPath::add_hb_edges to refine the critical chain with
  /// the exact sync structure instead of timeline heuristics. Bounded: after
  /// kMaxHbEdges the log stops growing (analysis windows are short; the cap
  /// only guards arbitrarily long checked runs).
  const std::vector<telemetry::HbEdge>& hb_edges() const { return hb_edges_; }
  void clear_hb_edges() { hb_edges_.clear(); }

  static constexpr std::size_t kMaxHbEdges = 1u << 20;

  /// Run teardown lints (unwaited requests, tag-mismatched pairs, streams
  /// with unsynchronized work). Called automatically at Job end; call
  /// directly when driving the Runtime without a Job.
  void finish();

  // --- vgpu::RuntimeObserver ---------------------------------------------
  void on_op(const vgpu::OpInfo& op) override;
  void on_stream_create(const vgpu::Stream& s) override;
  void on_record_event(const vgpu::Event& ev, const vgpu::Stream& s) override;
  void on_stream_wait_event(const vgpu::Stream& s, const vgpu::Event& ev) override;
  void on_event_synchronize(const vgpu::Event& ev) override;
  void on_event_query(const vgpu::Event& ev, bool complete) override;
  void on_stream_synchronize(const vgpu::Stream& s) override;
  void on_device_synchronize(int ggpu) override;
  void on_stream_destroy(const vgpu::Stream& s) override;
  void on_ipc_misuse(const vgpu::IpcMappedPtr& p, const std::string& what) override;

  // --- simpi::JobObserver -------------------------------------------------
  void on_job_start(int world_size) override;
  void on_job_end() override;
  void on_post(const simpi::MsgInfo& m) override;
  void on_match(const simpi::MsgInfo& send, const simpi::MsgInfo& recv, bool delivered,
                bool same_node) override;
  void on_truncation(const simpi::MsgInfo& send, const simpi::MsgInfo& recv) override;
  void on_request_done(std::uint64_t serial) override;
  void on_request_cancel(std::uint64_t serial) override;
  void on_barrier_arrive(std::uint64_t generation) override;
  void on_barrier_release(std::uint64_t generation) override;
  void on_persistent_init(const simpi::MsgInfo& m) override;
  void on_persistent_start(const simpi::MsgInfo& m) override;
  void on_persistent_free(std::uint64_t serial, bool active) override;

 private:
  /// One recorded access: performed at `at.tid`'s epoch `at.epoch`, with
  /// happens-before knowledge `clock`. A later access with clock C is
  /// ordered after it iff at.epoch <= C[at.tid].
  struct AccessRec {
    Epoch at;
    VClock clock;
    std::string label;  // trace label of the op, plus its logical thread
    sim::Time when = 0;
  };

  /// Access history of one byte range of one buffer. Segments are disjoint
  /// and keyed by start offset in the per-buffer map; they split whenever a
  /// new access covers them partially.
  struct Segment {
    std::size_t end = 0;
    bool has_write = false;
    AccessRec write;
    std::vector<AccessRec> reads;
  };

  struct StreamState {
    Tid tid = 0;
    VClock clock;            // knowledge of the last op enqueued on the stream
    std::string last_label;  // for the destroy-with-pending-work lint
  };

  struct DeviceClocks {
    VClock all;   // join of every op on the device (any stream)
    VClock dflt;  // join of default-stream ops + CUDA-aware MPI occupation
  };

  struct EventState {
    VClock clock;          // stream knowledge captured at record time
    std::string src_desc;  // stream that recorded it (hb-edge log)
  };

  struct ReqState {
    Tid tid = 0;
    VClock completion;  // what wait/test joins into the waiter
    bool resolved = false;
    bool done = false;
    bool cancelled = false;
    bool is_send = false;
    // Persistent lifecycle: one ReqState per Record, re-armed on each start.
    // Active (in flight) means started and not yet completed.
    bool persistent = false;
    bool freed = false;
    std::uint64_t starts = 0;
    int src = -1, dst = -1, tag = 0;
    std::string desc;
  };

  VClock& host_clock();
  StreamState& stream_state(const vgpu::Stream& s);
  const std::string& tid_desc(Tid t) const;
  Tid new_tid(std::string desc);
  void record_access(const vgpu::MemAccess& a, const Epoch& at, const VClock& clock,
                     const std::string& label, sim::Time when);
  void check_pair(const AccessRec& prior, bool prior_is_write, const AccessRec& cur,
                  bool cur_is_write);
  void apply_access(Segment& seg, const AccessRec& rec, bool write);
  void add_race(FindingKind kind, const AccessRec& prior, const AccessRec& cur);
  std::string edge_hint(Tid from, Tid to) const;
  /// Files a finding: notifies the telemetry sink, then adds to the report.
  void add_finding(Finding f);
  /// Append to the hb-edge log (no-op past kMaxHbEdges). `msg` carries the
  /// message identity (request serial) for edges derived from MPI matching.
  void log_hb(std::string from, std::string to, std::uint64_t msg = 0);
  /// Description of the calling host actor ("rank0", ...), creating its tid.
  const std::string& host_desc();

  sim::Engine& eng_;
  CheckReport report_;
  telemetry::Telemetry* telemetry_ = nullptr;
  Tid next_tid_ = 1;
  std::unordered_map<Tid, std::string> tid_descs_;
  std::unordered_map<int, Tid> host_tids_;  // engine actor id -> tid
  std::unordered_map<Tid, VClock> host_clocks_;
  std::map<std::pair<int, std::uint64_t>, StreamState> streams_;  // (device, id)
  std::unordered_map<int, DeviceClocks> devices_;
  std::unordered_map<const vgpu::Event*, EventState> events_;
  std::unordered_map<std::uint64_t, ReqState> requests_;  // by serial
  std::unordered_map<std::uint64_t, VClock> barriers_;    // by generation
  // Shadow memory: buffer id -> disjoint segments keyed by start offset.
  std::unordered_map<std::uint64_t, std::map<std::size_t, Segment>> shadow_;
  std::vector<telemetry::HbEdge> hb_edges_;
  // Race dedup: (kind, first label, second label) already reported.
  std::set<std::string> reported_;
};

}  // namespace stencil::check
