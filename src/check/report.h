#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "simtime/time.h"

namespace stencil::check {

/// Classification of a checker finding. Races are happens-before violations
/// on tracked buffers; the rest are API-misuse lints.
enum class FindingKind {
  kWriteWriteRace,          // two unordered writes to the same bytes
  kReadWriteRace,           // unordered read/write pair on the same bytes
  kStaleIpcMapping,         // copy through a closed/invalid IpcMappedPtr
  kWaitUnrecordedEvent,     // wait/sync on an Event that was never recorded
  kSizeMismatch,            // matched message truncates (recv < send bytes)
  kTagMismatch,             // complementary send/recv left unmatched by tags
  kRequestNeverWaited,      // request not waited before Job teardown
  kStreamDestroyedPending,  // stream destroyed/abandoned with unsynced work
  kPersistentRestart,       // start() on a persistent request still in flight
  kPersistentFreedActive,   // request_free() on an active persistent request
};

const char* to_string(FindingKind k);

/// One detected defect. For races, `first` and `second` are the two
/// conflicting ops (trace labels plus the logical thread that issued them)
/// and `missing_edge` names the happens-before edge that would order them.
/// Lints reuse the same shape: `first` is the offending op or object,
/// `second` the context (when there is one).
struct Finding {
  FindingKind kind = FindingKind::kWriteWriteRace;
  std::string first;
  std::string second;
  std::string missing_edge;
  sim::Time at = 0;  // virtual time of detection
};

/// Accumulated findings of one Checker; tests and the check_exchange CLI
/// assert on it.
class CheckReport {
 public:
  void add(Finding f) { findings_.push_back(std::move(f)); }
  const std::vector<Finding>& findings() const { return findings_; }
  bool clean() const { return findings_.empty(); }
  std::size_t count(FindingKind k) const;
  bool has(FindingKind k) const { return count(k) > 0; }
  void clear() { findings_.clear(); }

  /// Human-readable listing, one block per finding.
  void write(std::ostream& os) const;
  /// One line: "clean" or "N finding(s): kind=count ...".
  std::string summary() const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace stencil::check
