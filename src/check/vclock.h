#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stencil::check {

/// Logical thread id inside the checker's happens-before graph. Host actors,
/// streams, MPI requests, and barrier generations each get their own id.
using Tid = std::uint32_t;

/// A sparse vector clock over checker Tids. Components default to 0;
/// entries are kept sorted by tid so join/leq are linear merges. Clocks stay
/// tiny in practice (an op's clock names the few threads it descends from),
/// which is why sparse beats a dense vector indexed by every stream ever
/// created.
class VClock {
 public:
  std::uint64_t get(Tid t) const {
    for (const auto& [tid, v] : c_) {
      if (tid == t) return v;
      if (tid > t) break;
    }
    return 0;
  }

  void set(Tid t, std::uint64_t v) {
    auto it = lower_bound(t);
    if (it != c_.end() && it->first == t) {
      it->second = v;
    } else {
      c_.insert(it, {t, v});
    }
  }

  /// Advance this thread's own component and return the new epoch.
  std::uint64_t bump(Tid t) {
    auto it = lower_bound(t);
    if (it != c_.end() && it->first == t) return ++it->second;
    c_.insert(it, {t, 1});
    return 1;
  }

  /// Pointwise maximum: *this |= other.
  void join(const VClock& other) {
    if (other.c_.empty()) return;
    std::vector<std::pair<Tid, std::uint64_t>> merged;
    merged.reserve(c_.size() + other.c_.size());
    auto a = c_.begin();
    auto b = other.c_.begin();
    while (a != c_.end() && b != other.c_.end()) {
      if (a->first < b->first) {
        merged.push_back(*a++);
      } else if (b->first < a->first) {
        merged.push_back(*b++);
      } else {
        merged.push_back({a->first, std::max(a->second, b->second)});
        ++a;
        ++b;
      }
    }
    merged.insert(merged.end(), a, c_.end());
    merged.insert(merged.end(), b, other.c_.end());
    c_ = std::move(merged);
  }

  /// True when *this <= other pointwise (this clock's knowledge is contained
  /// in other's: everything ordered before *this is ordered before other).
  bool leq(const VClock& other) const {
    auto b = other.c_.begin();
    for (const auto& [tid, v] : c_) {
      while (b != other.c_.end() && b->first < tid) ++b;
      if (b == other.c_.end() || b->first != tid || b->second < v) return false;
    }
    return true;
  }

  bool empty() const { return c_.empty(); }

  std::string str() const {
    std::string s = "{";
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (i != 0) s += ", ";
      s += std::to_string(c_[i].first) + ":" + std::to_string(c_[i].second);
    }
    return s + "}";
  }

 private:
  std::vector<std::pair<Tid, std::uint64_t>>::iterator lower_bound(Tid t) {
    auto it = c_.begin();
    while (it != c_.end() && it->first < t) ++it;
    return it;
  }

  std::vector<std::pair<Tid, std::uint64_t>> c_;
};

/// One recorded access for the FastTrack-style ordering test: the access was
/// performed "at" epoch `epoch` of thread `tid`, with knowledge `clock`.
/// A later access B happens-after access A iff B's clock contains A's epoch:
/// A.epoch <= B.clock[A.tid].
struct Epoch {
  Tid tid = 0;
  std::uint64_t epoch = 0;

  bool ordered_before(const VClock& later) const { return epoch <= later.get(tid); }
};

}  // namespace stencil::check
