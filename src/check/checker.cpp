#include "check/checker.h"

#include <algorithm>

#include "simpi/mpi.h"
#include "telemetry/telemetry.h"
#include "vgpu/runtime.h"

namespace stencil::check {

namespace {

std::string stream_desc(const vgpu::Stream& s) {
  return "gpu" + std::to_string(s.device) +
         (s.id == 0 ? std::string("/default") : "/s" + std::to_string(s.id));
}

std::string req_desc(const simpi::MsgInfo& m) {
  return std::string(m.persistent ? "persistent " : "") + (m.is_send ? "isend" : "irecv") + " r" +
         std::to_string(m.src) + "->r" + std::to_string(m.dst) + " tag=" + std::to_string(m.tag) +
         " (req#" + std::to_string(m.serial) + ")";
}

}  // namespace

VClock& Checker::host_clock() {
  const int actor = eng_.actor_id();
  auto it = host_tids_.find(actor);
  if (it == host_tids_.end()) {
    const std::string& name = eng_.actor_name();
    const Tid t = new_tid(name.empty() ? "actor" + std::to_string(actor) : name);
    it = host_tids_.emplace(actor, t).first;
    host_clocks_[t].bump(t);
  }
  return host_clocks_[it->second];
}

void Checker::log_hb(std::string from, std::string to, std::uint64_t msg) {
  if (hb_edges_.size() >= kMaxHbEdges) return;
  hb_edges_.push_back({std::move(from), std::move(to), eng_.now(), msg});
}

void Checker::add_finding(Finding f) {
  if (telemetry_ != nullptr) telemetry_->on_checker_finding(to_string(f.kind), f.at);
  report_.add(std::move(f));
}

const std::string& Checker::host_desc() {
  host_clock();  // ensure the calling actor has a tid
  return tid_desc(host_tids_[eng_.actor_id()]);
}

Checker::StreamState& Checker::stream_state(const vgpu::Stream& s) {
  const std::pair<int, std::uint64_t> key{s.device, s.id};
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    StreamState st;
    st.tid = new_tid("stream " + stream_desc(s));
    it = streams_.emplace(key, std::move(st)).first;
  }
  return it->second;
}

const std::string& Checker::tid_desc(Tid t) const {
  static const std::string kUnknown = "?";
  auto it = tid_descs_.find(t);
  return it == tid_descs_.end() ? kUnknown : it->second;
}

Tid Checker::new_tid(std::string desc) {
  const Tid t = next_tid_++;
  tid_descs_.emplace(t, std::move(desc));
  return t;
}

std::string Checker::edge_hint(Tid from, Tid to) const {
  return "no happens-before edge from [" + tid_desc(from) + "] to [" + tid_desc(to) +
         "]: order them via an event (record_event + stream_wait_event / "
         "event_synchronize), a stream/device synchronize, or request completion";
}

void Checker::add_race(FindingKind kind, const AccessRec& prior, const AccessRec& cur) {
  const std::string key =
      std::string(to_string(kind)) + "|" + prior.label + "|" + cur.label;
  if (!reported_.insert(key).second) return;
  Finding f;
  f.kind = kind;
  f.first = prior.label + " @ t=" + sim::format_duration(prior.when);
  f.second = cur.label + " @ t=" + sim::format_duration(cur.when);
  f.missing_edge = edge_hint(prior.at.tid, cur.at.tid);
  f.at = eng_.now();
  add_finding(std::move(f));
}

void Checker::check_pair(const AccessRec& prior, bool prior_is_write, const AccessRec& cur,
                         bool cur_is_write) {
  if (!prior_is_write && !cur_is_write) return;  // read/read never races
  if (prior.at.ordered_before(cur.clock)) return;
  add_race(prior_is_write && cur_is_write ? FindingKind::kWriteWriteRace
                                          : FindingKind::kReadWriteRace,
           prior, cur);
}

void Checker::apply_access(Segment& seg, const AccessRec& rec, bool write) {
  if (write) {
    if (seg.has_write) check_pair(seg.write, true, rec, true);
    for (const AccessRec& r : seg.reads) check_pair(r, false, rec, true);
    seg.write = rec;
    seg.has_write = true;
    seg.reads.clear();
  } else {
    if (seg.has_write) check_pair(seg.write, true, rec, false);
    // Keep only reads not already ordered before this one (their causal
    // history is contained in rec's, so rec subsumes them for any future
    // write's race check).
    seg.reads.erase(std::remove_if(seg.reads.begin(), seg.reads.end(),
                                   [&](const AccessRec& r) {
                                     return r.at.ordered_before(rec.clock);
                                   }),
                    seg.reads.end());
    seg.reads.push_back(rec);
  }
}

void Checker::record_access(const vgpu::MemAccess& a, const Epoch& at, const VClock& clock,
                            const std::string& label, sim::Time when) {
  if (a.buf == nullptr || a.bytes == 0) return;
  auto& segs = shadow_[a.buf->id()];
  AccessRec rec{at, clock, label, when};
  const std::size_t lo = a.offset;
  const std::size_t hi = a.offset + a.bytes;
  std::size_t cur = lo;

  auto it = segs.lower_bound(lo);
  if (it != segs.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > lo) it = prev;
  }
  while (cur < hi) {
    if (it == segs.end() || it->first >= hi) {
      Segment fresh;
      fresh.end = hi;
      apply_access(fresh, rec, a.write);
      segs.emplace(cur, std::move(fresh));
      return;
    }
    if (it->first > cur) {  // gap before the next segment
      Segment fresh;
      fresh.end = it->first;
      apply_access(fresh, rec, a.write);
      segs.emplace(cur, std::move(fresh));
      cur = it->first;
      continue;
    }
    if (it->first < cur) {  // split off the untouched left part
      Segment right = it->second;
      it->second.end = cur;
      it = segs.emplace(cur, std::move(right)).first;
      continue;
    }
    // it->first == cur: trim to the accessed range, then apply.
    if (it->second.end > hi) {
      Segment right = it->second;
      it->second.end = hi;
      segs.emplace(hi, std::move(right));
    }
    apply_access(it->second, rec, a.write);
    cur = it->second.end;
    ++it;
  }
}

// --- vgpu::RuntimeObserver --------------------------------------------------

void Checker::on_op(const vgpu::OpInfo& op) {
  StreamState& ss = stream_state(*op.stream);
  DeviceClocks& dc = devices_[op.stream->device];
  VClock c = ss.clock;
  c.join(host_clock());
  // Legacy default stream ordering: the default stream serializes behind
  // every stream on the device; other streams serialize behind prior
  // default-stream work.
  c.join(op.stream->id == 0 ? dc.all : dc.dflt);
  const std::uint64_t ep = c.bump(ss.tid);
  const std::string label = *op.label + " [" + tid_desc(ss.tid) + "]";
  if (op.accesses != nullptr) {
    for (const vgpu::MemAccess& a : *op.accesses) {
      record_access(a, Epoch{ss.tid, ep}, c, label, op.start);
    }
  }
  ss.clock = c;
  ss.last_label = label;
  dc.all.join(c);
  if (op.stream->id == 0) dc.dflt.join(c);
}

void Checker::on_stream_create(const vgpu::Stream& s) { stream_state(s); }

void Checker::on_record_event(const vgpu::Event& ev, const vgpu::Stream& s) {
  // Re-recording overwrites: an event captures the stream frontier of its
  // most recent record, exactly like CUDA.
  EventState& es = events_[&ev];
  es.clock = stream_state(s).clock;
  es.src_desc = stream_desc(s);
}

void Checker::on_stream_wait_event(const vgpu::Stream& s, const vgpu::Event& ev) {
  if (!ev.recorded) {
    Finding f;
    f.kind = FindingKind::kWaitUnrecordedEvent;
    f.first = "stream_wait_event on [" + stream_desc(s) + "]";
    f.second = "event was never recorded; the wait is a no-op and orders nothing";
    f.missing_edge = "record_event must happen-before the wait that consumes it";
    f.at = eng_.now();
    add_finding(std::move(f));
    return;
  }
  auto it = events_.find(&ev);
  if (it != events_.end()) {
    stream_state(s).clock.join(it->second.clock);
    log_hb(it->second.src_desc, stream_desc(s));
  }
}

void Checker::on_event_synchronize(const vgpu::Event& ev) {
  if (!ev.recorded) {
    Finding f;
    f.kind = FindingKind::kWaitUnrecordedEvent;
    f.first = "event_synchronize";
    f.second = "event was never recorded; the sync returns immediately and orders nothing";
    f.missing_edge = "record_event must happen-before the synchronize that consumes it";
    f.at = eng_.now();
    add_finding(std::move(f));
    return;
  }
  auto it = events_.find(&ev);
  if (it != events_.end()) {
    host_clock().join(it->second.clock);
    log_hb(it->second.src_desc, host_desc());
  }
}

void Checker::on_event_query(const vgpu::Event& ev, bool complete) {
  // A successful query is a legitimate completion observation (polling):
  // the queried work happened-before everything the caller does next.
  if (!complete || !ev.recorded) return;
  auto it = events_.find(&ev);
  if (it != events_.end()) {
    host_clock().join(it->second.clock);
    log_hb(it->second.src_desc, host_desc());
  }
}

void Checker::on_stream_synchronize(const vgpu::Stream& s) {
  host_clock().join(stream_state(s).clock);
  log_hb(stream_desc(s), host_desc());
}

void Checker::on_device_synchronize(int ggpu) {
  host_clock().join(devices_[ggpu].all);
  log_hb("gpu" + std::to_string(ggpu), host_desc());
}

void Checker::on_stream_destroy(const vgpu::Stream& s) {
  StreamState& ss = stream_state(s);
  if (!ss.clock.leq(host_clock())) {
    Finding f;
    f.kind = FindingKind::kStreamDestroyedPending;
    f.first = "destroy_stream [" + stream_desc(s) + "]";
    f.second = "last unsynchronized op: " + ss.last_label;
    f.missing_edge = "synchronize the stream (or an event recorded after its last op) "
                     "before destroying it";
    f.at = eng_.now();
    add_finding(std::move(f));
  }
  streams_.erase({s.device, s.id});
}

void Checker::on_ipc_misuse(const vgpu::IpcMappedPtr& p, const std::string& what) {
  Finding f;
  f.kind = FindingKind::kStaleIpcMapping;
  f.first = what;
  f.second = "mapping to gpu" + std::to_string(p.device) +
             (p.closed ? " (closed by ipc_close_mem_handle)" : " (never opened)");
  f.missing_edge = "all copies through a mapping must happen-before its close";
  f.at = eng_.now();
  add_finding(std::move(f));
}

// --- simpi::JobObserver -----------------------------------------------------

void Checker::on_job_start(int world_size) {
  (void)world_size;
  // Engine actor ids are reused across Job::run calls and the previous
  // run's work is all complete before a new one starts: fence everything.
  VClock fence;
  for (const auto& [tid, c] : host_clocks_) fence.join(c);
  for (const auto& [key, ss] : streams_) fence.join(ss.clock);
  for (const auto& [g, dc] : devices_) fence.join(dc.all);
  for (auto& [tid, c] : host_clocks_) c.join(fence);
  for (auto& [key, ss] : streams_) ss.clock.join(fence);
  for (auto& [g, dc] : devices_) {
    dc.all.join(fence);
    dc.dflt.join(fence);
  }
}

void Checker::on_job_end() { finish(); }

void Checker::on_post(const simpi::MsgInfo& m) {
  ReqState rs;
  rs.desc = req_desc(m);
  rs.tid = new_tid(rs.desc);
  rs.is_send = m.is_send;
  rs.src = m.src;
  rs.dst = m.dst;
  rs.tag = m.tag;
  VClock c = host_clock();
  const std::uint64_t ep = c.bump(rs.tid);
  if (m.is_send && m.payload->buf != nullptr) {
    // MPI reads the send buffer between post and completion; record the
    // read at the request's own epoch so that an overwrite before MPI_Wait
    // races with it even though the host itself never touches the bytes.
    record_access(vgpu::MemAccess{m.payload->buf, m.payload->offset, m.payload->bytes, false},
                  Epoch{rs.tid, ep}, c, rs.desc, eng_.now());
  }
  rs.completion = c;  // eager sends complete with just their post knowledge
  log_hb(host_desc(), "mpi.r" + std::to_string(m.src) + "->r" + std::to_string(m.dst), m.serial);
  requests_.emplace(m.serial, std::move(rs));
}

void Checker::on_match(const simpi::MsgInfo& send, const simpi::MsgInfo& recv, bool delivered,
                       bool same_node) {
  auto sit = requests_.find(send.serial);
  auto rit = requests_.find(recv.serial);
  if (sit == requests_.end() || rit == requests_.end()) return;
  ReqState& ss = sit->second;
  ReqState& rr = rit->second;
  ss.resolved = rr.resolved = true;

  VClock m = ss.completion;
  m.join(rr.completion);
  if (!delivered) {
    // Message lost (fault injection): both waits observe the failure but no
    // data moved, so there is no write access to record.
    if (!send.buffered) ss.completion = m;
    rr.completion = m;
    return;
  }

  const bool dev_s = send.payload->is_device();
  const bool dev_r = recv.payload->is_device();
  const int sgpu = dev_s ? send.payload->buf->owner() : -1;
  const int rgpu = dev_r ? recv.payload->buf->owner() : -1;
  if (!same_node) {
    // Inter-node CUDA-aware path: the library brackets its copies with
    // device synchronization (device_ready_barrier), so the message
    // happens-after all prior work on the involved devices...
    if (dev_s) m.join(devices_[sgpu].all);
    if (dev_r) m.join(devices_[rgpu].all);
  }
  const std::uint64_t ep = m.bump(rr.tid);
  if (recv.payload->buf != nullptr) {
    record_access(
        vgpu::MemAccess{recv.payload->buf, recv.payload->offset, send.payload->bytes, true},
        Epoch{rr.tid, ep}, m, rr.desc, eng_.now());
  }
  if (!send.buffered) ss.completion = m;
  rr.completion = m;
  if (!same_node) {
    // ...and occupies the default streams: subsequent device ops on any
    // stream of the involved devices serialize behind the message.
    if (dev_s) {
      devices_[sgpu].dflt.join(m);
      devices_[sgpu].all.join(m);
    }
    if (dev_r) {
      devices_[rgpu].dflt.join(m);
      devices_[rgpu].all.join(m);
    }
  }
  // Intra-node CUDA-aware messages move over cudaIpc with *no* stream
  // synchronization (the mapping cost is CPU work), so no device joins:
  // callers must order device payloads with the message themselves.
}

void Checker::on_truncation(const simpi::MsgInfo& send, const simpi::MsgInfo& recv) {
  Finding f;
  f.kind = FindingKind::kSizeMismatch;
  f.first = req_desc(send) + " sends " + std::to_string(send.payload->bytes) + "B";
  f.second = req_desc(recv) + " provides only " + std::to_string(recv.payload->bytes) + "B";
  f.missing_edge = "recv buffer must be at least the matched message size";
  f.at = eng_.now();
  add_finding(std::move(f));
}

void Checker::on_request_done(std::uint64_t serial) {
  auto it = requests_.find(serial);
  if (it == requests_.end()) return;
  it->second.done = true;
  host_clock().join(it->second.completion);
  if (it->second.src >= 0) {
    log_hb("mpi.r" + std::to_string(it->second.src) + "->r" + std::to_string(it->second.dst),
           host_desc(), serial);
  }
}

void Checker::on_request_cancel(std::uint64_t serial) {
  auto it = requests_.find(serial);
  if (it != requests_.end()) it->second.cancelled = true;
}

void Checker::on_barrier_arrive(std::uint64_t generation) {
  barriers_[generation].join(host_clock());
}

void Checker::on_barrier_release(std::uint64_t generation) {
  host_clock().join(barriers_[generation]);
  log_hb("barrier#" + std::to_string(generation), host_desc());
}

void Checker::on_persistent_init(const simpi::MsgInfo& m) {
  // Like on_post, but nothing is in flight yet: no send-buffer read is
  // recorded until the first start re-arms the request.
  ReqState rs;
  rs.desc = req_desc(m);
  rs.tid = new_tid(rs.desc);
  rs.is_send = m.is_send;
  rs.persistent = true;
  rs.src = m.src;
  rs.dst = m.dst;
  rs.tag = m.tag;
  rs.completion = host_clock();
  requests_.emplace(m.serial, std::move(rs));
}

void Checker::on_persistent_start(const simpi::MsgInfo& m) {
  auto it = requests_.find(m.serial);
  if (it == requests_.end()) return;
  ReqState& rs = it->second;
  if (rs.starts > 0 && !rs.done && !rs.cancelled) {
    // Second start before the previous operation completed: MPI erroneous.
    Finding f;
    f.kind = FindingKind::kPersistentRestart;
    f.first = rs.desc;
    f.second = "start #" + std::to_string(rs.starts + 1) + " while start #" +
               std::to_string(rs.starts) + " is still in flight";
    f.missing_edge = "the previous start must complete (wait/test/wait_any) before the next";
    f.at = eng_.now();
    add_finding(std::move(f));
    return;
  }
  // Re-arm: same tid (same reusable Record), fresh epoch. The send-buffer
  // read is re-recorded per start — the bytes differ every iteration even
  // though the envelope is frozen.
  rs.done = false;
  rs.resolved = false;
  ++rs.starts;
  VClock c = host_clock();
  const std::uint64_t ep = c.bump(rs.tid);
  if (m.is_send && m.payload->buf != nullptr) {
    record_access(vgpu::MemAccess{m.payload->buf, m.payload->offset, m.payload->bytes, false},
                  Epoch{rs.tid, ep}, c, rs.desc, eng_.now());
  }
  rs.completion = c;
}

void Checker::on_persistent_free(std::uint64_t serial, bool active) {
  auto it = requests_.find(serial);
  if (it == requests_.end()) return;
  ReqState& rs = it->second;
  rs.freed = true;
  if (active) {
    Finding f;
    f.kind = FindingKind::kPersistentFreedActive;
    f.first = rs.desc;
    f.second = "freed while start #" + std::to_string(rs.starts) + " is still in flight";
    f.missing_edge = "complete the active operation before request_free";
    f.at = eng_.now();
    add_finding(std::move(f));
  }
}

// --- teardown lints ---------------------------------------------------------

void Checker::finish() {
  // Requests never completed by wait/test/wait_any. When an unmatched send
  // and recv connect the same pair of ranks with different tags, report the
  // likelier root cause (tag mismatch) instead of two leak findings.
  std::vector<const ReqState*> leaked;
  for (const auto& [serial, rs] : requests_) {
    if (rs.persistent) {
      // Inactive persistent requests (never started, or completed since the
      // last start) are a valid resting state, not leaks; only requests still
      // in flight at teardown are reported.
      if (rs.starts > 0 && !rs.done && !rs.cancelled) leaked.push_back(&rs);
      continue;
    }
    if (!rs.done && !rs.cancelled) leaked.push_back(&rs);
  }
  std::vector<bool> consumed(leaked.size(), false);
  for (std::size_t i = 0; i < leaked.size(); ++i) {
    if (consumed[i] || leaked[i]->resolved || !leaked[i]->is_send) continue;
    for (std::size_t j = 0; j < leaked.size(); ++j) {
      if (consumed[j] || leaked[j]->resolved || leaked[j]->is_send) continue;
      if (leaked[i]->src == leaked[j]->src && leaked[i]->dst == leaked[j]->dst &&
          leaked[i]->tag != leaked[j]->tag) {
        Finding f;
        f.kind = FindingKind::kTagMismatch;
        f.first = leaked[i]->desc;
        f.second = leaked[j]->desc;
        f.missing_edge = "tags must match for the pair to rendezvous";
        f.at = eng_.now();
        add_finding(std::move(f));
        consumed[i] = consumed[j] = true;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < leaked.size(); ++i) {
    if (consumed[i]) continue;
    Finding f;
    f.kind = FindingKind::kRequestNeverWaited;
    f.first = leaked[i]->desc;
    f.second = leaked[i]->resolved ? "completed but never waited (request leak)"
                                   : "never matched and never waited";
    f.missing_edge = "every request must reach wait/test/wait_any before teardown";
    f.at = eng_.now();
    add_finding(std::move(f));
  }
  requests_.clear();

  // Streams whose last op no host actor ever observed completing.
  VClock all_hosts;
  for (const auto& [tid, c] : host_clocks_) all_hosts.join(c);
  for (const auto& [key, ss] : streams_) {
    if (ss.clock.leq(all_hosts)) continue;
    Finding f;
    f.kind = FindingKind::kStreamDestroyedPending;
    f.first = "[" + tid_desc(ss.tid) + "] has unsynchronized work at teardown";
    f.second = "last unsynchronized op: " + ss.last_label;
    f.missing_edge = "synchronize the stream before the job ends";
    f.at = eng_.now();
    add_finding(std::move(f));
  }
  events_.clear();
  barriers_.clear();
}

}  // namespace stencil::check
