#pragma once

/// \file sched.h
/// stencil::sched — multi-tenant job scheduler (DESIGN.md §15).
///
/// One simulated machine, many stencil jobs. The scheduler carves the
/// physical machine into per-job TenantView slices (core/tenant.h), runs the
/// admitted set concurrently as one SPMD wave (each tenant on its own
/// sub-communicator split from the world), and keeps full isolation:
/// per-tenant tag windows (core/tagspace.h), per-tenant telemetry, and a
/// cross-tenant static verify pass over every admitted plan.
///
/// Allocation granularity is the *rank slot*: each world rank drives a fixed
/// contiguous block of gpus_per_rank physical GPUs (the jsrun layout the
/// Cluster sets up), so a tenant is a set of contiguous slot runs — one per
/// virtual node — and its sub-communicator is dense vnode-major. A job asking
/// for G GPUs is shaped into (k vnodes × c slots) with k·c·gpus_per_rank ≥ G,
/// the shape and the nodes chosen by the placement policy:
///
///   kPacked     fill the most-loaded nodes first (bin-packing best-fit):
///               conserves whole nodes for future big jobs, at the cost of
///               co-tenant link sharing on the boundary nodes.
///   kSpread     widest shape on the least-loaded nodes: maximizes each
///               job's aggregate NIC bandwidth, maximizes sharing.
///   kNodeAware  enumerate every feasible (k, c, node set) and minimize
///               own internode traffic plus overlap with the residual
///               per-node link load of already-admitted co-tenants — the
///               QAP idea of the paper's placement stage lifted one level,
///               from GPUs-within-a-node to jobs-within-a-machine.
///
/// Two queue disciplines, both preemption-free with backfill (a job that
/// fits the residual machine may start ahead of a blocked one; nothing is
/// ever evicted): kFairShare orders users by accumulated GPU·iteration
/// usage, kStrictPriority by (priority, submit order). Jobs that can never
/// fit even an empty machine are rejected at submit.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/checker.h"
#include "core/cluster.h"
#include "core/dim3.h"
#include "core/distributed_domain.h"
#include "core/method_flags.h"
#include "core/tenant.h"

namespace stencil::sched {

enum class PlacePolicy { kPacked, kSpread, kNodeAware };
enum class SchedPolicy { kFairShare, kStrictPriority };
enum class JobState { kQueued, kRunning, kDone, kRejected };

const char* to_string(PlacePolicy p);
const char* to_string(SchedPolicy p);
const char* to_string(JobState s);

/// Everything one tenant job needs: the stencil shape and the resources it
/// asks for. `gpus` is rounded up to whole rank slots.
struct JobSpec {
  std::string name;
  std::string user;
  Dim3 domain{64, 64, 64};
  int radius = 1;
  int gpus = 1;
  int quantities = 1;
  std::size_t elem_size = 4;
  int iterations = 4;
  int priority = 0;  ///< larger = more urgent (kStrictPriority)
  MethodFlags methods = MethodFlags::kAll;
  PlacementStrategy strategy = PlacementStrategy::kNodeAware;
  Neighborhood nbhd = Neighborhood::kFull;
  Boundary boundary = Boundary::kPeriodic;
  /// Planned exchanges (on by default): every tenant plan passes static
  /// verify admission, and the scheduler can collect the verified model for
  /// the cross-tenant pass.
  bool persistent = true;
  /// Optional extra per-rank configuration, called on the tenant's
  /// DistributedDomain after the standard knobs, before realize().
  std::function<void(DistributedDomain&)> configure;
  /// Called right after realize(), before the first exchange — the place to
  /// fill grid quantities.
  std::function<void(DistributedDomain&)> prologue;
  /// Called after the last timed exchange, before teardown — the place to
  /// verify or harvest grid contents.
  std::function<void(DistributedDomain&)> epilogue;
};

/// Admission-controller budgets beyond raw GPU slots. Per-exchange byte
/// estimates: a job's NIC load per touched node is its internode volume
/// spread over its vnodes; its pinned-staging estimate is twice that (send
/// and receive staging buffers live simultaneously).
struct Capacity {
  std::uint64_t pinned_bytes_per_node = 1ull << 30;
  std::uint64_t link_bytes_per_node = 4ull << 30;
};

/// Residual machine state the placement policies work against.
struct MachineState {
  std::vector<int> used;                ///< occupied rank slots per node
  std::vector<std::uint64_t> link;      ///< admitted NIC bytes/exchange per node
  std::vector<std::uint64_t> pinned;    ///< admitted pinned-staging bytes per node
};

/// Provenance capture for one try_place call (stencil::explain): the
/// winning (shape, node set) with its score, the labeled losing candidates
/// (next-preferred shape, alternate node set), and a deterministic count of
/// candidates scored. Filled only when a caller passes one; the placement
/// itself is unaffected.
struct PlaceExplain {
  std::string chosen;        ///< "k=2 c=2 nodes=[0 1]"
  double chosen_score = 0.0; ///< internode bytes (+ overlap terms, node-aware)
  std::vector<std::pair<std::string, double>> rejected;  ///< (label, score)
  std::uint64_t work = 0;    ///< candidate shapes scored
};

/// One admitted job's placement: the tenant slice plus the bookkeeping the
/// scheduler and the reports need.
struct Admission {
  int job = -1;
  int tenant = -1;                 ///< tag-window id, unique within a wave
  int vnodes = 0;
  int ranks_per_vnode = 0;
  std::vector<int> nodes;          ///< physical node of each vnode
  std::vector<int> slot_base;      ///< first rank slot of each vnode's run
  core::TenantView view;
  std::vector<int> world_ranks;    ///< dense vnode-major member list
  std::uint64_t internode_bytes = 0;  ///< per exchange, across all vnodes
  std::uint64_t total_bytes = 0;      ///< per exchange, all halo traffic
};

/// Per-tenant outcome of one scheduler run.
struct TenantReport {
  int job = -1;
  std::string name;
  std::string user;
  int tenant = -1;
  int wave = -1;
  int vnodes = 0;
  int ranks = 0;
  int gpus = 0;
  std::vector<int> nodes;
  std::vector<int> world_ranks;
  std::vector<double> iter_ms;     ///< per iteration, max across the tenant's ranks
  double median_ms = 0.0;
  double p95_ms = 0.0;
  double solo_p95_ms = 0.0;        ///< solo re-run (Options::solo_baseline)
  double interference = 0.0;       ///< p95 / solo_p95 - 1
  std::uint64_t bytes_per_exchange = 0;
  std::uint64_t internode_bytes = 0;
  double blame_ms = 0.0;           ///< critical-path time owned by this tenant
  /// Live estimate from the cluster's watch (stencil::watch), captured at
  /// the end of the tenant's wave: observed wire time over floor-predicted
  /// wire time - 1. 0 when no watch is attached or the tenant moved no
  /// wire bytes. Unlike `interference` it needs no solo re-run.
  double online_interference = 0.0;
};

struct RunReport {
  std::vector<TenantReport> tenants;   ///< submit order
  int waves = 0;
  double makespan_ms = 0.0;            ///< virtual time across all co-run waves
  double aggregate_gb_s = 0.0;         ///< moved bytes / makespan
  std::size_t verify_findings = 0;     ///< cross-tenant checker findings
  std::vector<std::string> verify_details;

  const TenantReport* by_name(const std::string& name) const;
};

/// The scheduler itself. Lifecycle: submit() any number of jobs (rejected
/// ones are flagged immediately), then run() drives waves until the queue
/// is empty. Each wave admits as many queued jobs as fit the empty machine
/// under the active policies, runs them concurrently to completion on the
/// shared Cluster, and releases everything — preemption-free batch
/// scheduling, deterministic end to end.
class Scheduler {
 public:
  struct Options {
    PlacePolicy place = PlacePolicy::kNodeAware;
    SchedPolicy policy = SchedPolicy::kFairShare;
    Capacity capacity{};
    /// Re-run every job alone (same slice) after the co-run waves and report
    /// interference = co-tenant p95 / solo p95 - 1.
    bool solo_baseline = false;
    /// Attach a dtrace::Collector per wave and attribute critical-path time
    /// to tenants (TenantReport::blame_ms).
    bool blame = false;
    /// Collect each persistent tenant's verified exchange model and run the
    /// cross-tenant tag/channel disjointness pass after every wave.
    bool cross_verify = true;
    /// Optional happens-before checker attached for the duration of runs.
    check::Checker* checker = nullptr;
    /// Consult the cluster watch's *published* link-cost factors in
    /// kNodeAware placement: degraded wires make their nodes more expensive
    /// to own traffic on and worse to overlap with. With no watch attached,
    /// nothing published yet, or all factors at 1 (healthy machine), the
    /// scores — and therefore every placement — are bit-identical to the
    /// static policy.
    bool live_costs = false;
  };

  explicit Scheduler(Cluster& cluster) : Scheduler(cluster, Options{}) {}
  Scheduler(Cluster& cluster, Options opt);

  /// Queue a job. Returns its id. A job that cannot fit even an empty
  /// machine is marked kRejected (see reject_reason) and never queued.
  int submit(JobSpec spec);

  JobState state(int job) const;
  const std::string& reject_reason(int job) const;
  std::size_t queued() const;

  /// Drive waves until the queue drains; returns the consolidated report.
  RunReport run();

  /// Placement engine, exposed for tests: shape + node choice for `spec`
  /// against residual state `ms` under `policy`, or nullopt when the job
  /// does not fit right now. Does not mutate `ms`. A non-null `ex` captures
  /// decision provenance (winner, losing candidates, work) for
  /// stencil::explain without changing the choice.
  std::optional<Admission> try_place(const JobSpec& spec, const MachineState& ms,
                                     PlacePolicy policy, PlaceExplain* ex = nullptr) const;

  /// All (vnodes, ranks_per_vnode) factorizations of `ranks` that fit a
  /// machine of `max_nodes` x `slots_per_node`, ranks_per_vnode descending.
  static std::vector<std::pair<int, int>> shapes(int ranks, int max_nodes, int slots_per_node);

 private:
  struct Job {
    int id = -1;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::string reject;
    int ranks = 0;  ///< slots needed = ceil(gpus / gpus_per_rank)
  };

  struct WaveResult {
    std::vector<std::vector<double>> iter_ms;  ///< [job-in-wave][iteration]
    double duration_ms = 0.0;
    std::map<int, double> blame_ms;  ///< tenant -> critical-path time
    /// Frozen per-tenant watch windows from this wave, keyed by job id
    /// (empty when the cluster has no watch attached); evaluated lazily in
    /// run() so the solo re-runs refine the baselines first.
    std::map<int, watch::Watch::TenantWindow> watch_windows;
  };

  MachineState empty_state() const;
  void apply(const Admission& adm, const JobSpec& spec, MachineState* ms) const;
  /// Per-exchange byte estimates for a (k, c) shape of this spec.
  std::pair<std::uint64_t, std::uint64_t> volumes(const JobSpec& spec, int k, int c) const;
  Admission materialize(const JobSpec& spec, int k, int c, std::vector<int> nodes,
                        std::vector<int> bases) const;
  /// Queue order under the active SchedPolicy (indices into jobs_).
  std::vector<std::size_t> queue_order() const;
  WaveResult run_wave(const std::vector<Admission>& wave, RunReport* rep);

  Cluster& cluster_;
  Options opt_;
  std::vector<Job> jobs_;
  std::map<std::string, std::uint64_t> usage_;  ///< user -> accumulated gpu·iterations
  int submit_seq_ = 0;
  std::string no_reason_;
};

}  // namespace stencil::sched
