#include "sched/sched.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "core/partition.h"
#include "core/tagspace.h"
#include "dtrace/collector.h"
#include "simtime/time.h"
#include "telemetry/critical_path.h"
#include "verify/verify.h"

namespace stencil::sched {

namespace {

/// Nearest-rank percentile over a copy of `v` (empty -> 0).
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  auto idx = static_cast<std::size_t>(std::ceil(p * n));
  if (idx > 0) --idx;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

/// Steady-state iteration times: the first exchange compiles and admits the
/// plan, so it is excluded from the latency statistics whenever there is at
/// least one later sample.
std::vector<double> steady(const std::vector<double>& v) {
  if (v.size() <= 1) return v;
  return {v.begin() + 1, v.end()};
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[(v.size() - 1) / 2];
}

/// Provenance label for one (shape, node set) placement candidate.
std::string shape_str(int k, int c, const std::vector<int>& nodes) {
  std::string s = "k=" + std::to_string(k) + " c=" + std::to_string(c) + " nodes=[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) s += ' ';
    s += std::to_string(nodes[i]);
  }
  s += ']';
  return s;
}

}  // namespace

const char* to_string(PlacePolicy p) {
  switch (p) {
    case PlacePolicy::kPacked: return "packed";
    case PlacePolicy::kSpread: return "spread";
    case PlacePolicy::kNodeAware: return "node-aware";
  }
  return "?";
}

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFairShare: return "fair-share";
    case SchedPolicy::kStrictPriority: return "strict-priority";
  }
  return "?";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

const TenantReport* RunReport::by_name(const std::string& name) const {
  for (const auto& t : tenants) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Scheduler::Scheduler(Cluster& cluster, Options opt) : cluster_(cluster), opt_(std::move(opt)) {}

std::vector<std::pair<int, int>> Scheduler::shapes(int ranks, int max_nodes,
                                                   int slots_per_node) {
  std::vector<std::pair<int, int>> out;
  for (int c = slots_per_node; c >= 1; --c) {
    if (ranks % c != 0) continue;
    const int k = ranks / c;
    if (k <= max_nodes) out.emplace_back(k, c);
  }
  return out;
}

MachineState Scheduler::empty_state() const {
  MachineState ms;
  const auto nn = static_cast<std::size_t>(cluster_.num_nodes());
  ms.used.assign(nn, 0);
  ms.link.assign(nn, 0);
  ms.pinned.assign(nn, 0);
  return ms;
}

std::pair<std::uint64_t, std::uint64_t> Scheduler::volumes(const JobSpec& spec, int k,
                                                           int c) const {
  const HierarchicalPartition hp(spec.domain, k, c * cluster_.gpus_per_rank());
  const std::uint64_t per_elem =
      spec.elem_size * static_cast<std::uint64_t>(spec.quantities);
  return {static_cast<std::uint64_t>(hp.internode_exchange_volume(spec.radius)) * per_elem,
          static_cast<std::uint64_t>(hp.total_exchange_volume(spec.radius)) * per_elem};
}

Admission Scheduler::materialize(const JobSpec& spec, int k, int c, std::vector<int> nodes,
                                 std::vector<int> bases) const {
  const int gpr = cluster_.gpus_per_rank();
  const int rpn = cluster_.ranks_per_node();
  Admission adm;
  adm.vnodes = k;
  adm.ranks_per_vnode = c;
  adm.nodes = std::move(nodes);
  adm.slot_base = std::move(bases);
  const auto [inter, total] = volumes(spec, k, c);
  adm.internode_bytes = inter;
  adm.total_bytes = total;
  adm.view.name = spec.name;
  adm.view.phys_gpus_per_node = cluster_.machine().gpus_per_node();
  adm.view.gpus_per_vnode = c * gpr;
  adm.view.ranks_per_vnode = c;
  adm.view.phys_nodes = adm.nodes;
  adm.view.gpu_base.reserve(static_cast<std::size_t>(k));
  for (int v = 0; v < k; ++v) {
    adm.view.gpu_base.push_back(adm.slot_base[static_cast<std::size_t>(v)] * gpr);
  }
  adm.world_ranks.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(c));
  for (int v = 0; v < k; ++v) {
    for (int j = 0; j < c; ++j) {
      adm.world_ranks.push_back(adm.nodes[static_cast<std::size_t>(v)] * rpn +
                                adm.slot_base[static_cast<std::size_t>(v)] + j);
    }
  }
  return adm;
}

std::optional<Admission> Scheduler::try_place(const JobSpec& spec, const MachineState& ms,
                                              PlacePolicy policy, PlaceExplain* ex) const {
  const int gpr = cluster_.gpus_per_rank();
  const int rpn = cluster_.ranks_per_node();
  const int nn = cluster_.num_nodes();
  const int ranks = std::max(1, (spec.gpus + gpr - 1) / gpr);
  const auto shp = shapes(ranks, nn, rpn);
  if (shp.empty()) return std::nullopt;

  const auto free_of = [&](int n) { return rpn - ms.used[static_cast<std::size_t>(n)]; };
  // Nodes able to host one vnode of c slots with a per-node NIC load of
  // `b` bytes/exchange (and 2b of pinned staging) within budget.
  const auto candidates = [&](int c, std::uint64_t b) {
    std::vector<int> out;
    for (int n = 0; n < nn; ++n) {
      const auto i = static_cast<std::size_t>(n);
      if (free_of(n) < c) continue;
      if (ms.link[i] + b > opt_.capacity.link_bytes_per_node) continue;
      if (ms.pinned[i] + 2 * b > opt_.capacity.pinned_bytes_per_node) continue;
      out.push_back(n);
    }
    return out;
  };
  const auto bases_of = [&](const std::vector<int>& nodes) {
    std::vector<int> bases;
    bases.reserve(nodes.size());
    for (const int n : nodes) bases.push_back(ms.used[static_cast<std::size_t>(n)]);
    return bases;
  };

  if (policy == PlacePolicy::kPacked) {
    // Bin-packing best-fit: consume the most-loaded node's fragment first,
    // so whole nodes stay free for later big jobs. The fragment size caps
    // the preferred slots-per-vnode; wider shapes only when nothing tighter
    // fits.
    int frag = rpn + 1;
    for (int n = 0; n < nn; ++n) {
      if (free_of(n) > 0 && free_of(n) < rpn) frag = std::min(frag, free_of(n));
    }
    std::vector<std::pair<int, int>> order;  // (k, c), preference order
    for (const auto& s : shp) {
      if (s.second <= frag) order.push_back(s);  // descending c already
    }
    for (auto it = shp.rbegin(); it != shp.rend(); ++it) {
      if (it->second > frag) order.push_back(*it);  // ascending c above frag
    }
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const auto [k, c] = order[oi];
      const std::uint64_t own = volumes(spec, k, c).first;
      const std::uint64_t b = k > 1 ? own / static_cast<std::uint64_t>(k) : 0;
      std::vector<int> cand = candidates(c, b);
      if (ex != nullptr) ++ex->work;
      if (static_cast<int>(cand.size()) < k) continue;
      std::sort(cand.begin(), cand.end(), [&](int a, int z) {
        if (free_of(a) != free_of(z)) return free_of(a) < free_of(z);
        return a < z;
      });
      const bool spare = static_cast<int>(cand.size()) > k;
      const int next_node = spare ? cand[static_cast<std::size_t>(k)] : -1;
      cand.resize(static_cast<std::size_t>(k));
      if (ex != nullptr) {
        ex->chosen = shape_str(k, c, cand);
        ex->chosen_score = static_cast<double>(own);
        // The best losing candidate: the next shape in preference order
        // that also fits, else the same shape on the next-preferred node.
        for (std::size_t oj = oi + 1; oj < order.size(); ++oj) {
          const auto [k2, c2] = order[oj];
          const std::uint64_t own2 = volumes(spec, k2, c2).first;
          const std::uint64_t b2 = k2 > 1 ? own2 / static_cast<std::uint64_t>(k2) : 0;
          std::vector<int> cand2 = candidates(c2, b2);
          ++ex->work;
          if (static_cast<int>(cand2.size()) < k2) continue;
          std::sort(cand2.begin(), cand2.end(), [&](int a, int z) {
            if (free_of(a) != free_of(z)) return free_of(a) < free_of(z);
            return a < z;
          });
          cand2.resize(static_cast<std::size_t>(k2));
          ex->rejected.emplace_back(shape_str(k2, c2, cand2), static_cast<double>(own2));
          break;
        }
        if (ex->rejected.empty() && spare) {
          std::vector<int> alt = cand;
          alt.back() = next_node;
          std::sort(alt.begin(), alt.end());
          ex->rejected.emplace_back(shape_str(k, c, alt), static_cast<double>(own));
        }
      }
      return materialize(spec, k, c, cand, bases_of(cand));
    }
    return std::nullopt;
  }

  if (policy == PlacePolicy::kSpread) {
    // Widest feasible shape on the least-loaded nodes: every vnode gets its
    // own NIC when possible.
    for (auto it = shp.rbegin(); it != shp.rend(); ++it) {  // ascending c
      const auto [k, c] = *it;
      const std::uint64_t own = volumes(spec, k, c).first;
      const std::uint64_t b = k > 1 ? own / static_cast<std::uint64_t>(k) : 0;
      std::vector<int> cand = candidates(c, b);
      if (ex != nullptr) ++ex->work;
      if (static_cast<int>(cand.size()) < k) continue;
      std::sort(cand.begin(), cand.end(), [&](int a, int z) {
        if (free_of(a) != free_of(z)) return free_of(a) > free_of(z);
        return a < z;
      });
      const bool spare = static_cast<int>(cand.size()) > k;
      const int next_node = spare ? cand[static_cast<std::size_t>(k)] : -1;
      cand.resize(static_cast<std::size_t>(k));
      if (ex != nullptr) {
        ex->chosen = shape_str(k, c, cand);
        ex->chosen_score = static_cast<double>(own);
        for (auto jt = std::next(it); jt != shp.rend(); ++jt) {
          const auto [k2, c2] = *jt;
          const std::uint64_t own2 = volumes(spec, k2, c2).first;
          const std::uint64_t b2 = k2 > 1 ? own2 / static_cast<std::uint64_t>(k2) : 0;
          std::vector<int> cand2 = candidates(c2, b2);
          ++ex->work;
          if (static_cast<int>(cand2.size()) < k2) continue;
          std::sort(cand2.begin(), cand2.end(), [&](int a, int z) {
            if (free_of(a) != free_of(z)) return free_of(a) > free_of(z);
            return a < z;
          });
          cand2.resize(static_cast<std::size_t>(k2));
          ex->rejected.emplace_back(shape_str(k2, c2, cand2), static_cast<double>(own2));
          break;
        }
        if (ex->rejected.empty() && spare) {
          std::vector<int> alt = cand;
          alt.back() = next_node;
          std::sort(alt.begin(), alt.end());
          ex->rejected.emplace_back(shape_str(k, c, alt), static_cast<double>(own));
        }
      }
      return materialize(spec, k, c, cand, bases_of(cand));
    }
    return std::nullopt;
  }

  // kNodeAware: enumerate every feasible shape, score = own internode bytes
  // plus the overlap between this job's per-node NIC occupancy and the
  // residual link load already admitted there (bytes of wire the co-tenants
  // will fight over per exchange), plus an epsilon preferring untouched
  // nodes. Deterministic min over (score, k, node ids).
  struct Choice {
    double score = 0.0;
    int k = 0;
    int c = 0;
    std::vector<int> nodes;
  };
  // Live link costs (Options::live_costs): the watch's published per-node
  // factor lf >= 1 scales what a node's wire is worth — healthy nodes are
  // preferred when picking candidates, own traffic terminating on a
  // degraded node costs b*(lf-1) extra, and overlapping a co-tenant on a
  // degraded wire hurts lf times as much. All factors at 1 (healthy
  // machine, no watch, nothing published) reduce every comparison and term
  // to the static policy — placements are then bit-identical.
  const watch::Watch* w = opt_.live_costs ? cluster_.watch() : nullptr;
  const auto node_score = [&](const std::vector<int>& cand, std::uint64_t own,
                              std::uint64_t b) {
    double score = static_cast<double>(own);
    for (const int n : cand) {
      const auto i = static_cast<std::size_t>(n);
      const double lf = w != nullptr ? w->node_cost_factor(n) : 1.0;
      score += static_cast<double>(b) * (lf - 1.0);
      score += static_cast<double>(std::min(ms.link[i], b)) * lf;
      if (ms.used[i] > 0) score += 1e-3;  // sharing a node at all is a tiebreak cost
    }
    return score;
  };
  std::optional<Choice> best;
  std::optional<Choice> second;  // best losing shape, for provenance
  for (const auto& [k, c] : shp) {
    const std::uint64_t own = volumes(spec, k, c).first;
    const std::uint64_t b = k > 1 ? own / static_cast<std::uint64_t>(k) : 0;
    std::vector<int> cand = candidates(c, b);
    if (ex != nullptr) ++ex->work;
    if (static_cast<int>(cand.size()) < k) continue;
    std::sort(cand.begin(), cand.end(), [&](int a, int z) {
      if (w != nullptr) {
        const double fa = w->node_cost_factor(a);
        const double fz = w->node_cost_factor(z);
        if (fa != fz) return fa < fz;
      }
      const auto ia = static_cast<std::size_t>(a);
      const auto iz = static_cast<std::size_t>(z);
      if (ms.link[ia] != ms.link[iz]) return ms.link[ia] < ms.link[iz];
      if (ms.used[ia] != ms.used[iz]) return ms.used[ia] < ms.used[iz];
      return a < z;
    });
    // Provenance: the same shape on the next-preferred node set is itself a
    // scored candidate when a spare node exists.
    std::optional<Choice> alt;
    if (ex != nullptr && static_cast<int>(cand.size()) > k) {
      std::vector<int> alt_nodes(cand.begin(), cand.begin() + k);
      alt_nodes.back() = cand[static_cast<std::size_t>(k)];
      alt = Choice{node_score(alt_nodes, own, b), k, c, std::move(alt_nodes)};
    }
    cand.resize(static_cast<std::size_t>(k));
    Choice ch{node_score(cand, own, b), k, c, std::move(cand)};
    const auto better = [](const Choice& a, const Choice& z) {
      if (a.score != z.score) return a.score < z.score;
      if (a.k != z.k) return a.k < z.k;
      return a.nodes < z.nodes;
    };
    const auto consider_second = [&](Choice&& cand_ch) {
      if (!second || better(cand_ch, *second)) second = std::move(cand_ch);
    };
    if (!best || better(ch, *best)) {
      if (best) consider_second(std::move(*best));
      best = std::move(ch);
    } else {
      consider_second(std::move(ch));
    }
    if (alt) {
      // Provenance only — the greedy sort already proved the chosen node
      // set scores no worse, so alt can never displace best. Feeding it to
      // the winner tracking could flip ties and make an attached run place
      // differently from a detached one, which must never happen.
      ++ex->work;
      consider_second(std::move(*alt));
    }
  }
  if (!best) return std::nullopt;
  if (ex != nullptr) {
    ex->chosen = shape_str(best->k, best->c, best->nodes);
    ex->chosen_score = best->score;
    if (second) {
      ex->rejected.emplace_back(shape_str(second->k, second->c, second->nodes), second->score);
    }
  }
  return materialize(spec, best->k, best->c, best->nodes, bases_of(best->nodes));
}

void Scheduler::apply(const Admission& adm, const JobSpec& spec, MachineState* ms) const {
  (void)spec;
  const std::uint64_t b =
      adm.vnodes > 1 ? adm.internode_bytes / static_cast<std::uint64_t>(adm.vnodes) : 0;
  for (const int n : adm.nodes) {
    const auto i = static_cast<std::size_t>(n);
    ms->used[i] += adm.ranks_per_vnode;
    ms->link[i] += b;
    ms->pinned[i] += 2 * b;
  }
}

int Scheduler::submit(JobSpec spec) {
  Job j;
  j.id = static_cast<int>(jobs_.size());
  const int gpr = cluster_.gpus_per_rank();
  j.ranks = std::max(1, (spec.gpus + gpr - 1) / gpr);
  j.spec = std::move(spec);
  if (j.spec.gpus < 1 || j.spec.iterations < 1 || j.spec.quantities < 1 ||
      j.spec.elem_size == 0) {
    j.state = JobState::kRejected;
    j.reject = "invalid spec (gpus/iterations/quantities/elem_size must be positive)";
  } else {
    // Reject-at-submit: a job that cannot fit even an empty machine will
    // never run, so fail it now instead of wedging the queue.
    std::string why;
    std::optional<Admission> a;
    try {
      a = try_place(j.spec, empty_state(), opt_.place);
    } catch (const std::exception& e) {
      why = e.what();
    }
    if (!a) {
      j.state = JobState::kRejected;
      j.reject = why.empty()
                     ? "does not fit an empty machine (" + std::to_string(j.ranks) +
                           " rank slots requested, capacity " +
                           std::to_string(cluster_.num_nodes() * cluster_.ranks_per_node()) +
                           "; or per-node link/pinned budget exceeded)"
                     : why;
    }
  }
  if (j.state == JobState::kRejected) {
    if (explain::Ledger* led = cluster_.explain_ledger(); led != nullptr) {
      const int capacity = cluster_.num_nodes() * cluster_.ranks_per_node();
      explain::DecisionRecord rec;
      rec.kind = explain::DecisionKind::kSchedAdmission;
      rec.at = cluster_.engine().now();
      rec.actor = j.id;
      rec.subject = "job " + j.spec.name + " (user " + j.spec.user + ", " +
                    std::to_string(j.spec.gpus) + " GPUs)";
      rec.chosen = "reject at submit: " + j.reject;
      rec.chosen_score = static_cast<double>(j.ranks);
      // Negative delta: the machine is smaller than the request.
      rec.rejected.push_back({"admit (machine capacity)", static_cast<double>(capacity)});
      rec.detail = "score = rank slots (requested vs machine)";
      led->append(std::move(rec));
    }
  }
  ++submit_seq_;
  jobs_.push_back(std::move(j));
  return static_cast<int>(jobs_.size()) - 1;
}

JobState Scheduler::state(int job) const {
  return jobs_.at(static_cast<std::size_t>(job)).state;
}

const std::string& Scheduler::reject_reason(int job) const {
  const Job& j = jobs_.at(static_cast<std::size_t>(job));
  return j.state == JobState::kRejected ? j.reject : no_reason_;
}

std::size_t Scheduler::queued() const {
  std::size_t n = 0;
  for (const auto& j : jobs_) {
    if (j.state == JobState::kQueued) ++n;
  }
  return n;
}

std::vector<std::size_t> Scheduler::queue_order() const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].state == JobState::kQueued) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t z) {
    const Job& ja = jobs_[a];
    const Job& jz = jobs_[z];
    if (opt_.policy == SchedPolicy::kStrictPriority) {
      if (ja.spec.priority != jz.spec.priority) return ja.spec.priority > jz.spec.priority;
      return a < z;
    }
    // Fair share: the user who has consumed the least GPU time goes first.
    const auto ua = usage_.count(ja.spec.user) != 0 ? usage_.at(ja.spec.user) : 0;
    const auto uz = usage_.count(jz.spec.user) != 0 ? usage_.at(jz.spec.user) : 0;
    if (ua != uz) return ua < uz;
    return a < z;
  });
  return order;
}

Scheduler::WaveResult Scheduler::run_wave(const std::vector<Admission>& wave, RunReport* rep) {
  const int world = cluster_.job().world_size();
  std::vector<int> wave_of(static_cast<std::size_t>(world), -1);
  std::vector<int> key_of(static_cast<std::size_t>(world), 0);
  std::map<int, std::string> tenant_names;
  for (std::size_t w = 0; w < wave.size(); ++w) {
    for (std::size_t m = 0; m < wave[w].world_ranks.size(); ++m) {
      const auto wr = static_cast<std::size_t>(wave[w].world_ranks[m]);
      wave_of[wr] = static_cast<int>(w);
      key_of[wr] = static_cast<int>(m);
    }
    for (const int wr : wave[w].world_ranks) {
      tenant_names[wr] = jobs_[static_cast<std::size_t>(wave[w].job)].spec.name;
    }
  }

  // Per-rank latency slots: distinct elements, so the SPMD threads write
  // without locking.
  std::vector<std::vector<std::vector<double>>> lat(wave.size());
  for (std::size_t w = 0; w < wave.size(); ++w) {
    const Job& job = jobs_[static_cast<std::size_t>(wave[w].job)];
    lat[w].assign(static_cast<std::size_t>(job.spec.iterations),
                  std::vector<double>(wave[w].world_ranks.size(), 0.0));
  }

  // Watch integration: attribute this wave's wire traffic to tenants and
  // start a fresh window. Watch tenant ids are *job* ids — stable across
  // waves and solo re-runs, so a job's solo window refines the same
  // baselines its co-run window is judged against. Solo re-runs
  // (rep == nullptr) flow through here too.
  watch::Watch* wtc = cluster_.watch();
  if (wtc != nullptr) {
    std::vector<int> tmap(static_cast<std::size_t>(world), -1);
    int num_tenants = 0;
    for (const Admission& adm : wave) {
      for (const int r : adm.world_ranks) tmap[static_cast<std::size_t>(r)] = adm.job;
      num_tenants = std::max(num_tenants, adm.job + 1);
    }
    wtc->set_tenant_map(tmap, num_tenants);
    wtc->clear_window();
  }

  std::mutex mu;
  std::vector<verify::ExchangeModel> models;

  dtrace::Collector col;
  const bool blame = rep != nullptr && opt_.blame;
  if (blame) {
    col.set_tenant_labels(tenant_names);
    cluster_.set_collector(&col);
  }
  if (opt_.checker != nullptr) cluster_.set_checker(opt_.checker);
  const bool collect_models = rep != nullptr && opt_.cross_verify;

  const double t0 = sim::to_seconds(cluster_.engine().now());
  cluster_.run([&](RankCtx& ctx) {
    const int wr = ctx.comm.rank();
    const int w = wave_of[static_cast<std::size_t>(wr)];
    // Idle ranks still participate in the collective split, then sit out.
    simpi::Comm sub = ctx.comm.split(w >= 0 ? wave[static_cast<std::size_t>(w)].tenant : -1,
                                     key_of[static_cast<std::size_t>(wr)]);
    if (w < 0) return;
    const Admission& adm = wave[static_cast<std::size_t>(w)];
    const JobSpec& spec = jobs_[static_cast<std::size_t>(adm.job)].spec;
    RankCtx tctx{sub,      ctx.rt,   ctx.machine, ctx.cluster,
                 ctx.gpus_per_rank, ctx.gpus, &adm.view};
    DistributedDomain dd(tctx, spec.domain);
    dd.set_radius(spec.radius);
    for (int q = 0; q < spec.quantities; ++q) {
      dd.add_data_bytes("q" + std::to_string(q), spec.elem_size);
    }
    dd.set_methods(spec.methods);
    dd.set_placement(spec.strategy);
    dd.set_neighborhood(spec.nbhd);
    dd.set_boundary(spec.boundary);
    dd.set_persistent(spec.persistent);
    if (spec.configure) spec.configure(dd);
    dd.realize();
    if (spec.prologue) spec.prologue(dd);
    const int sr = tctx.comm.rank();
    for (int it = 0; it < spec.iterations; ++it) {
      tctx.comm.barrier();
      const double a = tctx.comm.wtime();
      dd.exchange();
      const double b = tctx.comm.wtime();
      lat[static_cast<std::size_t>(w)][static_cast<std::size_t>(it)]
         [static_cast<std::size_t>(sr)] = (b - a) * 1e3;
    }
    if (spec.epilogue) spec.epilogue(dd);
    if (collect_models && spec.persistent && sr == 0 &&
        !dd.plan_cache().entries().empty()) {
      verify::ExchangeModel m = dd.verify_model(*dd.plan_cache().entries().front());
      const std::lock_guard<std::mutex> lk(mu);
      models.push_back(std::move(m));
    }
  });
  const double t1 = sim::to_seconds(cluster_.engine().now());

  WaveResult res;
  if (wtc != nullptr) {
    // Freeze each tenant's window, publish the live cost tables at this
    // quiescent point (the wave is over; no actor is running) so the next
    // wave's placement and any recover_replace read one epoch, then fold
    // the windows into the per-job baselines for later evaluation.
    for (const Admission& adm : wave) {
      res.watch_windows[adm.job] = wtc->tenant_window(adm.job);
    }
    wtc->publish();
    wtc->clear_window();
  }
  res.duration_ms = (t1 - t0) * 1e3;
  res.iter_ms.resize(wave.size());
  for (std::size_t w = 0; w < wave.size(); ++w) {
    for (const auto& per_rank : lat[w]) {
      res.iter_ms[w].push_back(*std::max_element(per_rank.begin(), per_rank.end()));
    }
  }

  if (blame) {
    cluster_.set_collector(nullptr);
    telemetry::CriticalPath cp(col.records());
    cp.add_flow_edges(col.flows());
    const telemetry::Analysis an = cp.analyze();
    for (const auto& rs : an.ranks) {
      if (rs.rank < 0 || rs.rank >= world) continue;
      const int w = wave_of[static_cast<std::size_t>(rs.rank)];
      if (w < 0) continue;
      res.blame_ms[wave[static_cast<std::size_t>(w)].tenant] +=
          sim::to_seconds(rs.critical) * 1e3;
    }
  }
  if (opt_.checker != nullptr) cluster_.set_checker(nullptr);

  if (collect_models && models.size() > 1) {
    std::sort(models.begin(), models.end(),
              [](const verify::ExchangeModel& a, const verify::ExchangeModel& b) {
                return a.tenant < b.tenant;
              });
    std::vector<const verify::ExchangeModel*> ptrs;
    ptrs.reserve(models.size());
    for (const auto& m : models) ptrs.push_back(&m);
    verify::Report r;
    verify::check_cross_tenant(ptrs, r);
    rep->verify_findings += r.count();
    for (const auto& f : r.findings()) rep->verify_details.push_back(f.detail);
  }
  return res;
}

RunReport Scheduler::run() {
  RunReport rep;
  const int gpr = cluster_.gpus_per_rank();
  std::vector<std::pair<Admission, std::size_t>> done;  // (placement, rep.tenants index)
  std::map<std::size_t, watch::Watch::TenantWindow> windows;  // rep.tenants index -> window

  explain::Ledger* led = cluster_.explain_ledger();
  while (queued() > 0) {
    const auto order = queue_order();
    const int wave_idx = rep.waves;
    MachineState ms = empty_state();
    std::vector<Admission> wave;
    for (const std::size_t idx : order) {
      if (static_cast<int>(wave.size()) >= tagspace::kMaxTenants) break;
      const Job& job = jobs_[idx];
      PlaceExplain pe;
      auto adm = try_place(job.spec, ms, opt_.place, led != nullptr ? &pe : nullptr);
      if (led != nullptr) {
        // Admission verdict, scored in waves waited (lower is better).
        const std::string subject = "job " + job.spec.name + " (user " + job.spec.user + ", " +
                                    std::to_string(job.spec.gpus) + " GPUs)";
        explain::DecisionRecord rec;
        rec.kind = explain::DecisionKind::kSchedAdmission;
        rec.at = cluster_.engine().now();
        rec.actor = job.id;
        rec.subject = subject;
        if (adm) {
          rec.chosen = "admit to wave " + std::to_string(wave_idx) + " as tenant " +
                       std::to_string(wave.size());
          rec.chosen_score = static_cast<double>(wave_idx);
          rec.rejected.push_back({"defer to wave " + std::to_string(wave_idx + 1),
                                  static_cast<double>(wave_idx + 1)});
        } else {
          rec.chosen = "defer (backfill: residual machine cannot host it this wave)";
          rec.chosen_score = static_cast<double>(wave_idx + 1);
          rec.rejected.push_back({"admit to wave " + std::to_string(wave_idx),
                                  static_cast<double>(wave_idx)});
        }
        rec.detail = "score = waves waited";
        led->append(std::move(rec));
        if (adm) {
          // The placement choice itself: winner, losing candidates, work.
          explain::DecisionRecord prec;
          prec.kind = explain::DecisionKind::kSchedPlacement;
          prec.at = cluster_.engine().now();
          prec.actor = job.id;
          prec.subject = subject;
          prec.chosen = std::string(to_string(opt_.place)) + " " + pe.chosen;
          prec.chosen_score = pe.chosen_score;
          for (auto& [label, score] : pe.rejected) {
            prec.rejected.push_back({std::move(label), score});
          }
          prec.work = pe.work;
          prec.detail =
              "score = internode bytes/exchange (+ degraded-wire and co-tenant overlap "
              "terms under node-aware)";
          led->append(std::move(prec));
        }
      }
      if (!adm) continue;  // backfill: a later job may still fit
      adm->job = jobs_[idx].id;
      adm->tenant = static_cast<int>(wave.size());
      adm->view.id = adm->tenant;
      apply(*adm, jobs_[idx].spec, &ms);
      jobs_[idx].state = JobState::kRunning;
      wave.push_back(std::move(*adm));
    }
    if (wave.empty()) {
      // Defensive: submit() rejected never-fits jobs, so this is unreachable
      // unless a policy regresses. Fail the head job rather than spinning.
      jobs_[order.front()].state = JobState::kRejected;
      jobs_[order.front()].reject = "scheduler could not place the job on an empty machine";
      continue;
    }

    const WaveResult wr = run_wave(wave, &rep);
    ++rep.waves;
    rep.makespan_ms += wr.duration_ms;

    for (std::size_t w = 0; w < wave.size(); ++w) {
      const Admission& adm = wave[w];
      Job& job = jobs_[static_cast<std::size_t>(adm.job)];
      job.state = JobState::kDone;
      usage_[job.spec.user] += static_cast<std::uint64_t>(adm.world_ranks.size()) *
                               static_cast<std::uint64_t>(gpr) *
                               static_cast<std::uint64_t>(job.spec.iterations);
      TenantReport t;
      t.job = adm.job;
      t.name = job.spec.name;
      t.user = job.spec.user;
      t.tenant = adm.tenant;
      t.wave = rep.waves - 1;
      t.vnodes = adm.vnodes;
      t.ranks = static_cast<int>(adm.world_ranks.size());
      t.gpus = t.ranks * gpr;
      t.nodes = adm.nodes;
      t.world_ranks = adm.world_ranks;
      t.iter_ms = wr.iter_ms[w];
      t.median_ms = median(steady(t.iter_ms));
      t.p95_ms = percentile(steady(t.iter_ms), 0.95);
      t.bytes_per_exchange = adm.total_bytes;
      t.internode_bytes = adm.internode_bytes;
      if (const auto it = wr.blame_ms.find(adm.tenant); it != wr.blame_ms.end()) {
        t.blame_ms = it->second;
      }
      if (const auto it = wr.watch_windows.find(adm.job); it != wr.watch_windows.end()) {
        windows[rep.tenants.size()] = it->second;
      }
      done.emplace_back(adm, rep.tenants.size());
      rep.tenants.push_back(std::move(t));
    }
  }

  if (opt_.solo_baseline) {
    // Re-run every finished job alone on the same slice (same tenant id,
    // same slots, so tags and placement are bit-identical) and charge the
    // co-run slowdown to interference.
    for (const auto& [adm, ti] : done) {
      const WaveResult solo = run_wave({adm}, nullptr);
      TenantReport& t = rep.tenants[ti];
      t.solo_p95_ms = percentile(steady(solo.iter_ms.front()), 0.95);
      if (t.solo_p95_ms > 0.0) t.interference = t.p95_ms / t.solo_p95_ms - 1.0;
    }
  }

  // Evaluate the frozen co-run windows now: the solo re-runs above carried
  // the same traffic uncontended and folded into each job's baselines, so
  // every window is judged against its job's least-contended behavior.
  if (const watch::Watch* w = cluster_.watch(); w != nullptr) {
    for (const auto& [ti, win] : windows) {
      rep.tenants[ti].online_interference = w->window_interference(rep.tenants[ti].job, win);
    }
  }

  std::uint64_t moved = 0;
  for (const auto& t : rep.tenants) {
    moved += t.bytes_per_exchange * static_cast<std::uint64_t>(t.iter_ms.size());
  }
  if (rep.makespan_ms > 0.0) {
    rep.aggregate_gb_s = static_cast<double>(moved) / (rep.makespan_ms * 1e-3) / 1e9;
  }
  return rep;
}

}  // namespace stencil::sched
