#pragma once

/// \file model.h
/// Intermediate representation for static exchange-protocol verification.
///
/// The verifier (src/verify/verify.h) consumes an ExchangeModel: a per-rank
/// program of abstract operations (message posts/starts/waits, COLOCATED
/// flow-control tokens, stream work with buffer accesses) plus the reserved
/// tag ranges the exchange tags must avoid. The model deliberately depends on
/// nothing above primitives — it is built *below* stencil_core in the layer
/// stack so that plan admission inside core can call into the verifier. The
/// model builder (DistributedDomain::verify_model) lives in core and lowers a
/// plan::CompiledPlan plus the deterministically re-derived remote-rank plans
/// into this IR.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stencil::verify {

/// Half-open 3-D element box inside one logical buffer. Interior and halo
/// slabs lower to boxes so overlap is an O(1) analytic intersection instead
/// of a per-row range walk.
struct Box3 {
  std::int64_t lo[3] = {0, 0, 0};
  std::int64_t hi[3] = {0, 0, 0};  // exclusive

  bool empty() const {
    return lo[0] >= hi[0] || lo[1] >= hi[1] || lo[2] >= hi[2];
  }
  bool intersects(const Box3& o) const {
    if (empty() || o.empty()) return false;
    for (int d = 0; d < 3; ++d) {
      if (lo[d] >= o.hi[d] || o.lo[d] >= hi[d]) return false;
    }
    return true;
  }
};

/// One byte-range or element-box an op touches. Buffer identity is the
/// process-unique vgpu::Buffer id (or any stable surrogate in hand-built
/// fixtures); ranges in different buffers never conflict.
struct Access {
  std::uint64_t buffer = 0;
  bool write = false;
  bool is_box = false;
  std::uint64_t offset = 0;  ///< flat range (is_box == false)
  std::uint64_t bytes = 0;
  Box3 box{};  ///< element box (is_box == true)

  bool overlaps(const Access& o) const {
    if (buffer != o.buffer) return false;
    // Mixed flat/box accesses on one buffer have no common coordinate space;
    // be conservative. Real plans never mix them (quantity grids are always
    // boxes, pack/host staging buffers always flat ranges).
    if (is_box != o.is_box) return true;
    if (is_box) return box.intersects(o.box);
    return offset < o.offset + o.bytes && o.offset < offset + bytes;
  }
  bool conflicts(const Access& o) const { return (write || o.write) && overlaps(o); }
};

enum class OpKind {
  kPostRecv,     ///< non-blocking: arm a receive (irecv / persistent start)
  kStartSend,    ///< non-blocking: start a send
  kWaitRecv,     ///< blocking: completes once the matching send has started
  kWaitSend,     ///< blocking unless eager: completes once the matching recv is posted
  kTokenWait,    ///< blocking: peer must have signalled `token` (generation + gen_delta)
  kTokenSignal,  ///< non-blocking: raise `token` for this generation
  kStream,       ///< GPU stream work (pack / copy / unpack graph)
};

const char* to_string(OpKind k);

struct Op {
  OpKind kind = OpKind::kStream;
  int rank = -1;
  int peer = -1;            ///< message ops: the other endpoint's rank
  int tag = 0;              ///< message ops
  std::uint64_t bytes = 0;  ///< message payload bytes
  /// kWaitSend: an eager send buffers immediately and the wait never blocks
  /// on the peer (host payload <= simpi eager limit). Rendezvous otherwise.
  bool eager = false;
  std::string token;      ///< kTokenWait / kTokenSignal channel name
  int gen_delta = 0;      ///< kTokenWait: 0 = this iteration, -1 = previous
  /// Name of the one reserved TagRange this op is entitled to occupy (e.g.
  /// aggregation headers live inside "aggregate-header" by design). Empty
  /// means the tag must stay clear of every reserved range.
  std::string claims;
  std::uint64_t stream = 0;  ///< kStream: FIFO queue identity (0 = none)
  std::vector<Access> accesses;
  /// Short semantic note folded into label(): a direction ("0+-"), "agg",
  /// or a stream-work description ("unpack 0+-").
  std::string what;

  /// Rank- and tag-precise human-readable description. Formatted on demand:
  /// labels are only needed when a finding fires, and eager formatting of
  /// thousands of clean ops dominated model-build time.
  std::string label() const;
};

struct RankProgram {
  int rank = -1;
  std::vector<Op> ops;  ///< program order
  /// Explicit plan-ordered sync edges (op index -> op index): event
  /// record/wait chains, recv-completion -> unpack launch, pack-done ->
  /// send-start. Together with same-stream FIFO order these define the
  /// happens-before DAG used by the buffer-hazard check.
  std::vector<std::pair<std::size_t, std::size_t>> order;
};

/// A named reserved tag span [lo, hi] (inclusive) that exchange tags must
/// not enter — checkpoint/restore blobs, IPC setup, aggregation headers.
struct TagRange {
  int lo = 0;
  int hi = 0;
  std::string name;

  bool contains(int tag) const { return tag >= lo && tag <= hi; }
  bool intersects(const TagRange& o) const { return lo <= o.hi && o.lo <= hi; }
};

/// The full static picture of one compiled exchange across every rank.
struct ExchangeModel {
  int world_size = 0;
  std::vector<RankProgram> ranks;
  std::vector<TagRange> reserved;
  std::string name;  ///< plan description, echoed in findings / JSON

  // --- multi-tenancy (src/sched) ------------------------------------------
  /// When tenant_scoped, check_tags additionally requires every data
  /// (non-negative) message tag to lie inside `tenant_window` — the
  /// tenant's slice of the tagspace data span — so a tenant whose tags
  /// leak outside its window is rejected at plan admission, before it can
  /// alias a co-tenant on the wire.
  bool tenant_scoped = false;
  int tenant = 0;
  TagRange tenant_window{};
  /// Model rank -> world rank of the underlying job (identity when empty).
  /// check_cross_tenant compares channels of models built over different
  /// sub-communicators in world coordinates.
  std::vector<int> world_rank_of;

  int world_rank(int model_rank) const {
    return world_rank_of.empty()
               ? model_rank
               : world_rank_of[static_cast<std::size_t>(model_rank)];
  }
};

}  // namespace stencil::verify
