#include "verify/verify.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <span>
#include <sstream>
#include <tuple>

namespace stencil::verify {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kPostRecv: return "post-recv";
    case OpKind::kStartSend: return "start-send";
    case OpKind::kWaitRecv: return "wait-recv";
    case OpKind::kWaitSend: return "wait-send";
    case OpKind::kTokenWait: return "token-wait";
    case OpKind::kTokenSignal: return "token-signal";
    case OpKind::kStream: return "stream";
  }
  return "?";
}

std::string Op::label() const {
  std::string s = "rank " + std::to_string(rank) + " " + to_string(kind);
  switch (kind) {
    case OpKind::kPostRecv:
    case OpKind::kWaitRecv:
      if (!what.empty()) s += " " + what;
      s += " tag " + std::to_string(tag) + " <- rank " + std::to_string(peer);
      if (kind == OpKind::kPostRecv) s += " (" + std::to_string(bytes) + " B)";
      break;
    case OpKind::kStartSend:
    case OpKind::kWaitSend:
      if (!what.empty()) s += " " + what;
      s += " tag " + std::to_string(tag) + " -> rank " + std::to_string(peer);
      s += kind == OpKind::kStartSend
               ? " (" + std::to_string(bytes) + " B)"
               : (eager ? std::string(" (eager)") : std::string(" (rendezvous)"));
      break;
    case OpKind::kTokenWait:
      s += " " + token;
      if (gen_delta != 0) s += " (gen" + std::to_string(gen_delta) + ")";
      break;
    case OpKind::kTokenSignal:
      s += " " + token;
      break;
    case OpKind::kStream:
      if (!what.empty()) s += " " + what;
      s += " tag " + std::to_string(tag);
      break;
  }
  return s;
}

const char* to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kOrphanSend: return "orphan-send";
    case FindingKind::kOrphanRecv: return "orphan-recv";
    case FindingKind::kTagMismatch: return "tag-mismatch";
    case FindingKind::kSizeMismatch: return "size-mismatch";
    case FindingKind::kTagCollision: return "tag-collision";
    case FindingKind::kWaitCycle: return "wait-cycle";
    case FindingKind::kUnsatisfiedWait: return "unsatisfied-wait";
    case FindingKind::kBufferHazard: return "buffer-hazard";
  }
  return "?";
}

bool Report::has(FindingKind k) const {
  return std::any_of(findings_.begin(), findings_.end(),
                     [k](const Finding& f) { return f.kind == k; });
}

std::size_t Report::count(FindingKind k) const {
  return static_cast<std::size_t>(std::count_if(
      findings_.begin(), findings_.end(),
      [k](const Finding& f) { return f.kind == k; }));
}

void Report::write(std::ostream& os) const {
  if (findings_.empty()) {
    os << "verify: clean\n";
    return;
  }
  for (const Finding& f : findings_) {
    os << "[" << to_string(f.kind) << "]";
    if (f.rank >= 0) os << " rank " << f.rank;
    if (f.peer >= 0) os << " peer " << f.peer;
    if (f.tag != 0) os << " tag " << f.tag;
    os << ": " << f.detail << "\n";
    for (const std::string& op : f.ops) os << "    " << op << "\n";
  }
}

std::string Report::summary() const {
  std::ostringstream os;
  os << "verify: " << findings_.size() << " finding(s)";
  if (!findings_.empty()) {
    os << " [";
    for (std::size_t i = 0; i < findings_.size(); ++i) {
      if (i != 0) os << ", ";
      os << to_string(findings_[i].kind);
    }
    os << "]";
  }
  return os.str();
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Report::write_json(std::ostream& os, const std::string& plan_name) const {
  os << "{\"schema\":\"verify-v1\",\"plan\":";
  json_escape(os, plan_name);
  os << ",\"clean\":" << (clean() ? "true" : "false")
     << ",\"finding_count\":" << findings_.size() << ",\"findings\":[";
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << to_string(f.kind) << "\",\"rank\":" << f.rank
       << ",\"peer\":" << f.peer << ",\"tag\":" << f.tag << ",\"detail\":";
    json_escape(os, f.detail);
    os << ",\"ops\":[";
    for (std::size_t j = 0; j < f.ops.size(); ++j) {
      if (j != 0) os << ",";
      json_escape(os, f.ops[j]);
    }
    os << "]}";
  }
  os << "]}";
}

// --- (a) global send/recv matching -----------------------------------------

namespace {

// Directed channel: messages flow src -> dst under one tag.
using ChannelKey = std::tuple<int /*src*/, int /*dst*/, int /*tag*/>;

/// One channel's endpoints as spans into the shared key-sorted arena; within
/// one channel, sends and recvs keep collection order (rank-major program
/// order). The span layout exists for speed: channel counts reach the
/// thousands per plan, and both a std::map and per-channel vectors spent the
/// verification budget on node allocations.
struct Channel {
  ChannelKey key;
  std::span<const Op* const> sends;  // kStartSend
  std::span<const Op* const> recvs;  // kPostRecv
};

struct ChannelMap {
  std::vector<const Op*> arena;  // sorted (key, sends-before-recvs, seq)
  std::vector<Channel> chans;
};

ChannelMap collect_channels(const ExchangeModel& m) {
  struct Ent {
    ChannelKey key;
    const Op* op;
    std::uint32_t seq;  // global collection order, the within-key tiebreak
    bool send;
  };
  std::vector<Ent> ents;
  std::uint32_t seq = 0;
  for (const RankProgram& rp : m.ranks) {
    for (const Op& op : rp.ops) {
      if (op.kind == OpKind::kStartSend) {
        ents.push_back({{op.rank, op.peer, op.tag}, &op, seq++, true});
      } else if (op.kind == OpKind::kPostRecv) {
        ents.push_back({{op.peer, op.rank, op.tag}, &op, seq++, false});
      }
    }
  }
  std::sort(ents.begin(), ents.end(), [](const Ent& a, const Ent& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.send != b.send) return a.send;  // sends first within a key
    return a.seq < b.seq;
  });

  ChannelMap cm;
  cm.arena.reserve(ents.size());
  for (const Ent& e : ents) cm.arena.push_back(e.op);
  for (std::size_t i = 0; i < ents.size();) {
    std::size_t j = i;
    std::size_t mid = i;  // first recv
    while (j < ents.size() && ents[j].key == ents[i].key) {
      if (ents[j].send) mid = j + 1;
      ++j;
    }
    cm.chans.push_back({ents[i].key,
                        {cm.arena.data() + i, mid - i},
                        {cm.arena.data() + mid, j - mid}});
    i = j;
  }
  return cm;
}

void matching_impl(const ChannelMap& chans, Report& r) {

  // Unmatched ends, grouped for the tag-mismatch pairing heuristic below.
  struct Orphan {
    const Op* op;
    int src, dst, tag;
  };
  std::vector<Orphan> orphan_sends, orphan_recvs;

  for (const Channel& c : chans.chans) {
    const auto [src, dst, tag] = c.key;
    const std::size_t n = std::min(c.sends.size(), c.recvs.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (c.sends[i]->bytes != c.recvs[i]->bytes) {
        r.add({FindingKind::kSizeMismatch, src, dst, tag,
               "send of " + std::to_string(c.sends[i]->bytes) +
                   " B matched with recv of " +
                   std::to_string(c.recvs[i]->bytes) + " B",
               {c.sends[i]->label(), c.recvs[i]->label()}});
      }
    }
    for (std::size_t i = n; i < c.sends.size(); ++i) {
      orphan_sends.push_back({c.sends[i], src, dst, tag});
    }
    for (std::size_t i = n; i < c.recvs.size(); ++i) {
      orphan_recvs.push_back({c.recvs[i], src, dst, tag});
    }
  }

  // An orphan send and an orphan recv on the same (src, dst) with equal
  // payloads almost certainly meant to match: report the tag disagreement
  // precisely instead of two opaque orphans.
  std::vector<bool> recv_used(orphan_recvs.size(), false);
  for (const Orphan& s : orphan_sends) {
    bool paired = false;
    for (std::size_t j = 0; j < orphan_recvs.size(); ++j) {
      const Orphan& v = orphan_recvs[j];
      if (recv_used[j] || v.src != s.src || v.dst != s.dst ||
          v.op->bytes != s.op->bytes) {
        continue;
      }
      recv_used[j] = true;
      paired = true;
      r.add({FindingKind::kTagMismatch, s.src, s.dst, s.tag,
             "send tag " + std::to_string(s.tag) + " vs recv tag " +
                 std::to_string(v.tag) + " (" + std::to_string(s.op->bytes) +
                 " B, rank " + std::to_string(s.src) + " -> rank " +
                 std::to_string(s.dst) + ")",
             {s.op->label(), v.op->label()}});
      break;
    }
    if (!paired) {
      r.add({FindingKind::kOrphanSend, s.src, s.dst, s.tag,
             "send of " + std::to_string(s.op->bytes) +
                 " B has no matching recv on rank " + std::to_string(s.dst),
             {s.op->label()}});
    }
  }
  for (std::size_t j = 0; j < orphan_recvs.size(); ++j) {
    if (recv_used[j]) continue;
    const Orphan& v = orphan_recvs[j];
    r.add({FindingKind::kOrphanRecv, v.dst, v.src, v.tag,
           "recv of " + std::to_string(v.op->bytes) +
               " B has no matching send from rank " + std::to_string(v.src),
           {v.op->label()}});
  }
}

}  // namespace

void check_matching(const ExchangeModel& m, Report& r) {
  matching_impl(collect_channels(m), r);
}

// --- (c) tag-space hygiene --------------------------------------------------

namespace {

void tags_impl(const ExchangeModel& m, const ChannelMap& chans, Report& r) {
  for (std::size_t i = 0; i < m.reserved.size(); ++i) {
    for (std::size_t j = i + 1; j < m.reserved.size(); ++j) {
      if (m.reserved[i].intersects(m.reserved[j])) {
        r.add({FindingKind::kTagCollision, -1, -1, 0,
               "reserved tag ranges overlap: " + m.reserved[i].name + " [" +
                   std::to_string(m.reserved[i].lo) + ", " +
                   std::to_string(m.reserved[i].hi) + "] vs " +
                   m.reserved[j].name + " [" +
                   std::to_string(m.reserved[j].lo) + ", " +
                   std::to_string(m.reserved[j].hi) + "]",
               {}});
      }
    }
  }

  for (const Channel& c : chans.chans) {
    const auto [src, dst, tag] = c.key;
    // Tenant window membership: data (non-negative) tags of a tenant-scoped
    // model must stay inside the tenant's slice of the data span. Service
    // tags are negative and governed by the reserved-range rules below.
    if (m.tenant_scoped && tag >= 0 && !m.tenant_window.contains(tag)) {
      const Op* op = !c.sends.empty() ? c.sends.front() : c.recvs.front();
      r.add({FindingKind::kTagCollision, src, dst, tag,
             "data tag " + std::to_string(tag) + " escapes tenant " +
                 std::to_string(m.tenant) + "'s window [" +
                 std::to_string(m.tenant_window.lo) + ", " +
                 std::to_string(m.tenant_window.hi) + "]",
             {op->label()}});
    }
    for (const TagRange& tr : m.reserved) {
      if (tr.contains(tag)) {
        // A range is off-limits unless every endpoint of the channel claims
        // it by name (aggregation headers legitimately live in their range).
        auto all_claim = [&](std::span<const Op* const> v) {
          for (const Op* op : v) {
            if (op->claims != tr.name) return false;
          }
          return true;
        };
        if (all_claim(c.sends) && all_claim(c.recvs)) continue;
        const Op* op = !c.sends.empty() ? c.sends.front() : c.recvs.front();
        r.add({FindingKind::kTagCollision, src, dst, tag,
               "message tag " + std::to_string(tag) +
                   " lies inside reserved range \"" + tr.name + "\" [" +
                   std::to_string(tr.lo) + ", " + std::to_string(tr.hi) + "]",
               {op->label()}});
      }
    }
    // One channel carrying multiple payload sizes cannot be told apart by
    // the receiver: MPI matching would be order-dependent.
    auto uniform = [](std::span<const Op* const> v) {
      for (const Op* op : v) {
        if (op->bytes != v.front()->bytes) return false;
      }
      return true;
    };
    if (!uniform(c.sends) || !uniform(c.recvs)) {
      r.add({FindingKind::kTagCollision, src, dst, tag,
             "tag " + std::to_string(tag) +
                 " reused on one channel with differing payload sizes",
             {}});
    }
  }
}

}  // namespace

void check_tags(const ExchangeModel& m, Report& r) {
  tags_impl(m, collect_channels(m), r);
}

// --- (b) deadlock freedom ---------------------------------------------------

namespace {

// Wait-for graph node: one op in one unrolled iteration. Op X depends on
// (has edges to) its program-order predecessor and, when blocking, on the
// remote op that satisfies it. A cycle means no execution order exists.
constexpr int kIters = 2;  // catches cross-iteration cycles (flow control)

}  // namespace

void check_deadlock(const ExchangeModel& m, Report& r) {
  // Flatten every op into one table: flat id = rank_base[rank_idx] + op_idx,
  // node id = iter * total_ops + flat id. Everything below indexes arrays.
  std::vector<std::size_t> rank_base(m.ranks.size(), 0);
  std::size_t total_ops = 0;
  for (std::size_t i = 0; i < m.ranks.size(); ++i) {
    rank_base[i] = total_ops;
    total_ops += m.ranks[i].ops.size();
  }
  if (total_ops == 0) return;

  std::vector<const Op*> flat(total_ops);
  std::vector<std::uint32_t> rank_of(total_ops);
  for (std::size_t ri = 0; ri < m.ranks.size(); ++ri) {
    for (std::size_t oi = 0; oi < m.ranks[ri].ops.size(); ++oi) {
      flat[rank_base[ri] + oi] = &m.ranks[ri].ops[oi];
      rank_of[rank_base[ri] + oi] = static_cast<std::uint32_t>(ri);
    }
  }

  // Per-channel occurrence lists, collected once into key-sorted flat arrays:
  // the k-th wait pairs with the k-th start/post on the peer (persistent
  // restarts repeat the same pairing every iteration). A channel's waits all
  // live on one rank, so sorting by (key, flat id) preserves the program-order
  // occurrence index.
  struct Keyed {
    ChannelKey key;
    std::uint32_t id;
  };
  std::vector<Keyed> send_starts, recv_posts, recv_waits, send_waits;
  struct TokenId {
    const std::string* token;
    std::uint32_t id;
  };
  std::vector<TokenId> signal_list;
  for (std::size_t f = 0; f < total_ops; ++f) {
    const Op& op = *flat[f];
    const auto id = static_cast<std::uint32_t>(f);
    switch (op.kind) {
      case OpKind::kStartSend:
        send_starts.push_back({{op.rank, op.peer, op.tag}, id});
        break;
      case OpKind::kPostRecv:
        recv_posts.push_back({{op.peer, op.rank, op.tag}, id});
        break;
      case OpKind::kWaitRecv:
        recv_waits.push_back({{op.peer, op.rank, op.tag}, id});
        break;
      case OpKind::kWaitSend:
        if (!op.eager) {  // eager sends buffer: the wait never blocks
          send_waits.push_back({{op.rank, op.peer, op.tag}, id});
        }
        break;
      case OpKind::kTokenSignal:
        signal_list.push_back({&op.token, id});
        break;
      default:
        break;
    }
  }
  const auto by_key = [](const Keyed& a, const Keyed& b) {
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  };
  std::sort(send_starts.begin(), send_starts.end(), by_key);
  std::sort(recv_posts.begin(), recv_posts.end(), by_key);
  std::sort(recv_waits.begin(), recv_waits.end(), by_key);
  std::sort(send_waits.begin(), send_waits.end(), by_key);
  std::sort(signal_list.begin(), signal_list.end(),
            [](const TokenId& a, const TokenId& b) {
              return *a.token != *b.token ? *a.token < *b.token : a.id < b.id;
            });

  // Blocking targets per op (flat id + iteration delta), resolved once and
  // shared by every unrolled iteration. A wait with no target at all is the
  // matching pass's orphan, not an edge.
  struct Target {
    std::uint32_t to;
    int delta;
  };
  std::vector<std::pair<std::uint32_t, Target>> edges;
  const auto pair_waits = [&edges](const std::vector<Keyed>& waits,
                                   const std::vector<Keyed>& sats) {
    std::size_t w = 0, s = 0;
    while (w < waits.size()) {
      const ChannelKey key = waits[w].key;
      std::size_t we = w;
      while (we < waits.size() && waits[we].key == key) ++we;
      while (s < sats.size() && sats[s].key < key) ++s;
      std::size_t se = s;
      while (se < sats.size() && sats[se].key == key) ++se;
      for (std::size_t k = 0; w + k < we && s + k < se; ++k) {
        edges.push_back({waits[w + k].id, {sats[s + k].id, 0}});
      }
      w = we;
      s = se;
    }
  };
  pair_waits(recv_waits, send_starts);
  pair_waits(send_waits, recv_posts);
  for (std::size_t f = 0; f < total_ops; ++f) {
    const Op& op = *flat[f];
    if (op.kind != OpKind::kTokenWait) continue;
    auto lo = std::lower_bound(
        signal_list.begin(), signal_list.end(), op.token,
        [](const TokenId& a, const std::string& t) { return *a.token < t; });
    auto hi = std::upper_bound(
        lo, signal_list.end(), op.token,
        [](const std::string& t, const TokenId& a) { return t < *a.token; });
    if (lo == hi) {
      // gen_delta < 0 is satisfied before the first generation; waits on
      // this iteration's token with no signal anywhere never complete.
      if (op.gen_delta >= 0) {
        r.add({FindingKind::kUnsatisfiedWait, op.rank, op.peer, op.tag,
               "token \"" + op.token + "\" is waited on but never signalled",
               {op.label()}});
      }
      continue;
    }
    for (; lo != hi; ++lo) {
      edges.push_back({static_cast<std::uint32_t>(f), {lo->id, op.gen_delta}});
    }
  }

  // CSR over the edge list: targets of flat op f are
  // targets[tbegin[f] .. tbegin[f + 1]).
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::uint32_t> tbegin(total_ops + 1, 0);
  for (const auto& e : edges) ++tbegin[e.first + 1];
  for (std::size_t f = 0; f < total_ops; ++f) tbegin[f + 1] += tbegin[f];
  std::vector<Target> targets;
  targets.reserve(edges.size());
  for (const auto& e : edges) targets.push_back(e.second);

  // Neighbors of node (iter, f): the program-order predecessor (the first op
  // of a later iteration follows the last op of the previous one on the same
  // rank) plus the blocking targets shifted into their source iteration.
  static_assert(kIters == 2, "iter/f decomposition below avoids a division");
  const std::size_t n_nodes = static_cast<std::size_t>(kIters) * total_ops;
  auto for_each_neighbor = [&](std::size_t v, auto&& visit) {
    const int iter = v >= total_ops ? 1 : 0;
    const std::size_t f = v - (iter != 0 ? total_ops : 0);
    const std::size_t ri = rank_of[f];
    if (f != rank_base[ri]) {
      visit(v - 1);
    } else if (iter > 0) {
      visit(static_cast<std::size_t>(iter - 1) * total_ops + rank_base[ri] +
            m.ranks[ri].ops.size() - 1);
    }
    for (std::uint32_t e = tbegin[f]; e != tbegin[f + 1]; ++e) {
      const Target& t = targets[e];
      const int src_iter = iter + t.delta;
      if (src_iter < 0 || src_iter >= kIters) continue;
      visit(static_cast<std::size_t>(src_iter) * total_ops + t.to);
    }
  };

  // Iterative 3-colour DFS; the first back edge yields the counterexample.
  enum : unsigned char { kWhite, kGrey, kBlack };
  std::vector<unsigned char> colour(n_nodes, kWhite);
  std::vector<std::size_t> stack, path, nbr;
  auto describe = [&](std::size_t id) {
    return "iter " + std::to_string(id / total_ops) + ": " +
           flat[id % total_ops]->label();
  };

  for (std::size_t root = 0; root < n_nodes; ++root) {
    if (colour[root] != kWhite) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      if (colour[v] == kWhite) {
        colour[v] = kGrey;
        path.push_back(v);
        nbr.clear();
        for_each_neighbor(v, [&](std::size_t w) { nbr.push_back(w); });
        for (std::size_t w : nbr) {
          if (colour[w] == kGrey) {
            // Cycle: the path suffix from w to v.
            auto it = std::find(path.begin(), path.end(), w);
            std::vector<std::string> cyc;
            int anchor_rank = -1, anchor_tag = 0;
            for (; it != path.end(); ++it) {
              cyc.push_back(describe(*it));
              const Op& op = *flat[*it % total_ops];
              if (anchor_rank < 0 && op.kind != OpKind::kStream) {
                anchor_rank = op.rank;
                anchor_tag = op.tag;
              }
            }
            r.add({FindingKind::kWaitCycle, anchor_rank, -1, anchor_tag,
                   "cyclic wait-for dependency across " +
                       std::to_string(cyc.size()) + " op(s): no execution "
                       "order can satisfy every blocking wait",
                   std::move(cyc)});
            return;  // one minimal counterexample is enough
          }
          if (colour[w] == kWhite) stack.push_back(w);
        }
      } else {
        stack.pop_back();
        if (colour[v] == kGrey) {
          colour[v] = kBlack;
          path.pop_back();
        }
      }
    }
  }
}

// --- (d) buffer-overlap hazards --------------------------------------------

void check_hazards(const ExchangeModel& m, Report& r) {
  for (const RankProgram& rp : m.ranks) {
    // Only programs with access annotations can hazard; derived remote ranks
    // carry none (hazards are per-rank, the local artifact has the real
    // buffer ids), so skip their DAG setup entirely.
    const bool annotated = std::any_of(
        rp.ops.begin(), rp.ops.end(),
        [](const Op& op) { return !op.accesses.empty(); });
    if (!annotated) continue;
    const std::size_t n = rp.ops.size();
    // Happens-before DAG: same-stream FIFO chains + explicit order edges.
    std::vector<std::vector<std::size_t>> adj(n);
    std::map<std::uint64_t, std::size_t> last_on_stream;
    for (std::size_t i = 0; i < n; ++i) {
      const Op& op = rp.ops[i];
      if (op.kind == OpKind::kStream && op.stream != 0) {
        auto it = last_on_stream.find(op.stream);
        if (it != last_on_stream.end()) adj[it->second].push_back(i);
        last_on_stream[op.stream] = i;
      }
    }
    for (const auto& [a, b] : rp.order) {
      if (a < n && b < n) adj[a].push_back(b);
    }

    std::map<std::size_t, std::vector<bool>> reach_cache;
    auto reaches = [&](std::size_t a, std::size_t b) {
      auto it = reach_cache.find(a);
      if (it == reach_cache.end()) {
        std::vector<bool> seen(n, false);
        std::vector<std::size_t> work{a};
        seen[a] = true;
        while (!work.empty()) {
          const std::size_t v = work.back();
          work.pop_back();
          for (std::size_t w : adj[v]) {
            if (!seen[w]) {
              seen[w] = true;
              work.push_back(w);
            }
          }
        }
        it = reach_cache.emplace(a, std::move(seen)).first;
      }
      return it->second[b];
    };

    // Candidate pairs: ops sharing a buffer with a conflicting access.
    std::map<std::uint64_t, std::vector<std::size_t>> by_buffer;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t prev = ~std::uint64_t{0};
      for (const Access& a : rp.ops[i].accesses) {
        if (a.buffer != prev) by_buffer[a.buffer].push_back(i);
        prev = a.buffer;
      }
    }
    for (auto& [buf, ops] : by_buffer) {
      std::sort(ops.begin(), ops.end());
      ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
      for (std::size_t x = 0; x < ops.size(); ++x) {
        for (std::size_t y = x + 1; y < ops.size(); ++y) {
          const Op& a = rp.ops[ops[x]];
          const Op& b = rp.ops[ops[y]];
          bool conflict = false;
          for (const Access& aa : a.accesses) {
            if (aa.buffer != buf) continue;
            for (const Access& bb : b.accesses) {
              if (bb.buffer != buf) continue;
              if (aa.conflicts(bb)) {
                conflict = true;
                break;
              }
            }
            if (conflict) break;
          }
          if (!conflict) continue;
          if (reaches(ops[x], ops[y]) || reaches(ops[y], ops[x])) continue;
          r.add({FindingKind::kBufferHazard, rp.rank, -1,
                 a.tag != 0 ? a.tag : b.tag,
                 "unsynchronized conflicting accesses to buffer " +
                     std::to_string(buf) +
                     ": no plan-ordered sync between the two ops",
                 {a.label(), b.label()}});
        }
      }
    }
  }
}

Report verify(const ExchangeModel& m) {
  Report r;
  // Matching and tag hygiene walk the same channel index; collect it once.
  const ChannelMap chans = collect_channels(m);
  matching_impl(chans, r);
  tags_impl(m, chans, r);
  check_deadlock(m, r);
  check_hazards(m, r);
  return r;
}

// --- cross-tenant hygiene ---------------------------------------------------

void check_cross_tenant(const std::vector<const ExchangeModel*>& models, Report& r) {
  // (1) Declared windows of distinct tenants must not intersect.
  for (std::size_t i = 0; i < models.size(); ++i) {
    for (std::size_t j = i + 1; j < models.size(); ++j) {
      const ExchangeModel& a = *models[i];
      const ExchangeModel& b = *models[j];
      if (!a.tenant_scoped || !b.tenant_scoped || a.tenant == b.tenant) continue;
      if (a.tenant_window.intersects(b.tenant_window)) {
        r.add({FindingKind::kTagCollision, -1, -1, 0,
               "tenant " + std::to_string(a.tenant) + " (" + a.name +
                   ") window [" + std::to_string(a.tenant_window.lo) + ", " +
                   std::to_string(a.tenant_window.hi) + "] overlaps tenant " +
                   std::to_string(b.tenant) + " (" + b.name + ") window [" +
                   std::to_string(b.tenant_window.lo) + ", " +
                   std::to_string(b.tenant_window.hi) + "]",
               {}});
      }
    }
  }

  // (2) No world-coordinate channel may be used by two different models:
  // disjoint rank sets make this impossible for correctly carved slices, so
  // a hit means two tenants share a rank (or a window alias slipped past the
  // per-model check) and MPI matching between them is order-dependent.
  struct WorldChan {
    int src, dst, tag;
    std::size_t model;
    const Op* op;
  };
  std::vector<WorldChan> chans;
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    const ExchangeModel& m = *models[mi];
    for (const RankProgram& rp : m.ranks) {
      for (const Op& op : rp.ops) {
        if (op.kind == OpKind::kStartSend) {
          chans.push_back({m.world_rank(op.rank), m.world_rank(op.peer), op.tag, mi, &op});
        } else if (op.kind == OpKind::kPostRecv) {
          chans.push_back({m.world_rank(op.peer), m.world_rank(op.rank), op.tag, mi, &op});
        }
      }
    }
  }
  std::sort(chans.begin(), chans.end(), [](const WorldChan& a, const WorldChan& b) {
    return std::tie(a.src, a.dst, a.tag, a.model) < std::tie(b.src, b.dst, b.tag, b.model);
  });
  for (std::size_t i = 0; i + 1 < chans.size(); ++i) {
    const WorldChan& a = chans[i];
    const WorldChan& b = chans[i + 1];
    if (a.src != b.src || a.dst != b.dst || a.tag != b.tag || a.model == b.model) continue;
    r.add({FindingKind::kTagCollision, a.src, a.dst, a.tag,
           "world channel " + std::to_string(a.src) + " -> " + std::to_string(b.dst) +
               " tag " + std::to_string(a.tag) + " is used by both tenant model \"" +
               models[a.model]->name + "\" and \"" + models[b.model]->name + "\"",
           {a.op->label(), b.op->label()}});
    // One finding per colliding channel: skip this channel's remaining ends.
    while (i + 1 < chans.size() && chans[i + 1].src == a.src && chans[i + 1].dst == a.dst &&
           chans[i + 1].tag == a.tag) {
      ++i;
    }
  }
}

}  // namespace stencil::verify
