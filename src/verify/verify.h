#pragma once

/// \file verify.h
/// Static exchange-protocol verifier.
///
/// verify() proves four properties of an ExchangeModel with zero execution:
///   (a) global send/recv matching per (src, dst, tag, bytes) across all
///       ranks, including staged hops and persistent restarts;
///   (b) deadlock freedom via a wait-for graph over blocking waits,
///       persistent-request starts and COLOCATED flow-control tokens,
///       unrolled across two iterations — a cycle yields a minimal
///       counterexample naming every op in the cycle;
///   (c) tag-space hygiene — message tags stay out of the reserved ranges
///       (checkpoint/restore blobs, IPC setup, aggregation headers) and the
///       reserved ranges themselves stay disjoint;
///   (d) buffer-overlap hazards — two accesses to the same buffer, at least
///       one a write, with no plan-ordered sync path between them.
///
/// Findings mirror check::CheckReport: a flat list with kind + precise
/// location, renderable as text or deterministic JSON.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "verify/model.h"

namespace stencil::verify {

enum class FindingKind {
  kOrphanSend,       ///< send with no matching recv anywhere
  kOrphanRecv,       ///< recv posted with no matching send anywhere
  kTagMismatch,      ///< send/recv pair on one channel disagreeing only on tag
  kSizeMismatch,     ///< matched (src,dst,tag) but payload bytes differ
  kTagCollision,     ///< message tag inside a reserved range, or duplicate tag
  kWaitCycle,        ///< cyclic wait-for dependency (deadlock)
  kUnsatisfiedWait,  ///< token wait whose signal never occurs
  kBufferHazard,     ///< unsynchronized conflicting accesses to one buffer
};

const char* to_string(FindingKind k);

struct Finding {
  FindingKind kind = FindingKind::kOrphanSend;
  int rank = -1;  ///< rank the defect is anchored at (-1 = global)
  int peer = -1;
  int tag = 0;
  std::string detail;             ///< one-line diagnostic
  std::vector<std::string> ops;   ///< every op involved (cycle members, hazard pair)
};

class Report {
 public:
  void add(Finding f) { findings_.push_back(std::move(f)); }
  bool clean() const { return findings_.empty(); }
  std::size_t count() const { return findings_.size(); }
  bool has(FindingKind k) const;
  std::size_t count(FindingKind k) const;
  const std::vector<Finding>& findings() const { return findings_; }
  void clear() { findings_.clear(); }

  /// Human-readable rendering, one block per finding.
  void write(std::ostream& os) const;
  std::string summary() const;
  /// Deterministic JSON ({"schema":"verify-v1",...}); no timestamps.
  void write_json(std::ostream& os, const std::string& plan_name = "") const;

 private:
  std::vector<Finding> findings_;
};

/// Individual passes, exposed for targeted tests.
void check_matching(const ExchangeModel& m, Report& r);
void check_tags(const ExchangeModel& m, Report& r);
void check_deadlock(const ExchangeModel& m, Report& r);
void check_hazards(const ExchangeModel& m, Report& r);

/// Run all four passes.
Report verify(const ExchangeModel& m);

/// Cross-tenant tag hygiene over the models of concurrently admitted jobs
/// (each built over its own sub-communicator): tenant windows of distinct
/// tenants must be disjoint, and no world-coordinate channel
/// (src, dst, tag) may appear in two different tenants' models — either
/// one means a message of tenant A could be matched by tenant B.
void check_cross_tenant(const std::vector<const ExchangeModel*>& models, Report& r);

}  // namespace stencil::verify
