#include "fault/fault.h"

#include <algorithm>
#include <stdexcept>

namespace stencil::fault {

namespace {

// splitmix64: a fixed, well-mixed hash so drop decisions depend only on the
// identifying tuple and the plan seed — never on call order or wall clock.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool id_match(int pattern, int id) { return pattern < 0 || pattern == id; }

bool window_active(const Event& e, sim::Time t) { return e.at <= t && t < e.until; }

std::string id_str(int v) { return v < 0 ? std::string("*") : std::to_string(v); }

}  // namespace

const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kP2P: return "p2p";
    case LinkClass::kHostLink: return "host-link";
    case LinkClass::kXBus: return "xbus";
    case LinkClass::kNic: return "nic";
  }
  return "?";
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kLinkDegrade: return "link-degrade";
    case EventKind::kLinkFail: return "link-fail";
    case EventKind::kPeerRevoke: return "peer-revoke";
    case EventKind::kIpcInvalidate: return "ipc-invalidate";
    case EventKind::kCudaAwareDisable: return "cuda-aware-disable";
    case EventKind::kDeviceSlow: return "device-slow";
    case EventKind::kMsgDrop: return "msg-drop";
    case EventKind::kMsgDelay: return "msg-delay";
    case EventKind::kGpuFail: return "gpu-fail";
    case EventKind::kNodeFail: return "node-fail";
  }
  return "?";
}

std::string Event::str() const {
  std::string s = to_string(kind);
  switch (kind) {
    case EventKind::kLinkDegrade:
    case EventKind::kLinkFail:
      s += std::string(" ") + to_string(link) + " " + id_str(a) + "->" + id_str(b);
      if (kind == EventKind::kLinkDegrade) s += " x" + std::to_string(factor);
      break;
    case EventKind::kPeerRevoke:
      s += " gpu" + id_str(a) + "<->gpu" + id_str(b);
      break;
    case EventKind::kIpcInvalidate:
      s += " node " + id_str(a);
      break;
    case EventKind::kCudaAwareDisable:
      break;
    case EventKind::kDeviceSlow:
      s += " gpu" + id_str(a) + " x" + std::to_string(factor);
      break;
    case EventKind::kMsgDrop:
      s += " node " + id_str(a) + "->" + id_str(b) + " p=" + std::to_string(factor);
      break;
    case EventKind::kMsgDelay:
      s += " node " + id_str(a) + "->" + id_str(b) + " +" + sim::format_duration(delay);
      break;
    case EventKind::kGpuFail:
      s += " gpu" + id_str(a);
      break;
    case EventKind::kNodeFail:
      s += " node " + id_str(a);
      break;
  }
  return s;
}

FaultPlan& FaultPlan::push(Event e) {
  if (e.until < e.at) {
    throw std::invalid_argument("FaultPlan: event window ends before it starts");
  }
  events_.push_back(e);
  // Keep history sorted by start time (stable: same-time events keep
  // insertion order) so queries fold a canonical sequence.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& x, const Event& y) { return x.at < y.at; });
  return *this;
}

FaultPlan& FaultPlan::degrade_link(sim::Time at, LinkClass c, int a, int b, double factor,
                                   sim::Time until) {
  if (factor < 0.0) throw std::invalid_argument("degrade_link: negative factor");
  Event e;
  e.at = at;
  e.until = until;
  e.kind = EventKind::kLinkDegrade;
  e.link = c;
  e.a = a;
  e.b = b;
  e.factor = factor;
  return push(e);
}

FaultPlan& FaultPlan::fail_link(sim::Time at, LinkClass c, int a, int b, sim::Time until) {
  Event e;
  e.at = at;
  e.until = until;
  e.kind = EventKind::kLinkFail;
  e.link = c;
  e.a = a;
  e.b = b;
  e.factor = 0.0;
  return push(e);
}

FaultPlan& FaultPlan::revoke_peer(sim::Time at, int ggpu_a, int ggpu_b) {
  Event e;
  e.at = at;
  e.kind = EventKind::kPeerRevoke;
  e.a = ggpu_a;
  e.b = ggpu_b;
  return push(e);
}

FaultPlan& FaultPlan::invalidate_ipc(sim::Time at, int node) {
  Event e;
  e.at = at;
  e.until = at;  // instantaneous
  e.kind = EventKind::kIpcInvalidate;
  e.a = node;
  return push(e);
}

FaultPlan& FaultPlan::disable_cuda_aware(sim::Time at, sim::Time until) {
  Event e;
  e.at = at;
  e.until = until;
  e.kind = EventKind::kCudaAwareDisable;
  return push(e);
}

FaultPlan& FaultPlan::slow_device(sim::Time at, int ggpu, double factor, sim::Time until) {
  if (factor <= 0.0) throw std::invalid_argument("slow_device: factor must be positive");
  Event e;
  e.at = at;
  e.until = until;
  e.kind = EventKind::kDeviceSlow;
  e.a = ggpu;
  e.factor = factor;
  return push(e);
}

FaultPlan& FaultPlan::drop_messages(sim::Time at, sim::Time until, int src_node, int dst_node,
                                    double probability) {
  if (probability < 0.0) throw std::invalid_argument("drop_messages: negative probability");
  Event e;
  e.at = at;
  e.until = until;
  e.kind = EventKind::kMsgDrop;
  e.a = src_node;
  e.b = dst_node;
  e.factor = probability;
  return push(e);
}

FaultPlan& FaultPlan::delay_messages(sim::Time at, sim::Time until, int src_node, int dst_node,
                                     sim::Duration extra) {
  if (extra < 0) throw std::invalid_argument("delay_messages: negative delay");
  Event e;
  e.at = at;
  e.until = until;
  e.kind = EventKind::kMsgDelay;
  e.a = src_node;
  e.b = dst_node;
  e.delay = extra;
  return push(e);
}

FaultPlan& FaultPlan::fail_gpu(sim::Time at, int ggpu) {
  Event e;
  e.at = at;
  e.kind = EventKind::kGpuFail;
  e.a = ggpu;
  return push(e);
}

FaultPlan& FaultPlan::fail_node(sim::Time at, int node) {
  Event e;
  e.at = at;
  e.kind = EventKind::kNodeFail;
  e.a = node;
  return push(e);
}

FaultPlan& FaultPlan::set_detect_latency(sim::Duration d) {
  if (d < 0) throw std::invalid_argument("set_detect_latency: negative latency");
  detect_latency_ = d;
  return *this;
}

FaultPlan& FaultPlan::set_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

FaultPlan& FaultPlan::set_retry_policy(RetryPolicy p) {
  if (p.max_retries < 0 || p.timeout < 0 || p.backoff_base < 0 || p.backoff_cap < 0 ||
      p.jitter < 0) {
    throw std::invalid_argument("set_retry_policy: negative field");
  }
  retry_ = p;
  return *this;
}

std::uint64_t mix64(std::uint64_t x) { return mix(x); }

sim::Duration RetryPolicy::backoff_delay(int attempt, std::uint64_t salt) const {
  std::uint64_t d = 0;
  if (backoff_base > 0) {
    // Truncated exponential: shifts saturate well before overflow.
    const int shift = attempt < 40 ? attempt : 40;
    d = static_cast<std::uint64_t>(backoff_base) << shift;
    if (backoff_cap > 0 && d > static_cast<std::uint64_t>(backoff_cap)) {
      d = static_cast<std::uint64_t>(backoff_cap);
    }
  }
  if (jitter > 0) {
    d += mix(salt ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt)) << 32)) %
         (static_cast<std::uint64_t>(jitter) + 1);
  }
  return static_cast<sim::Duration>(d);
}

sim::Duration RetryPolicy::backoff_budget(int attempts) const {
  sim::Duration total = 0;
  for (int i = 0; i < attempts; ++i) {
    std::uint64_t d = 0;
    if (backoff_base > 0) {
      const int shift = i < 40 ? i : 40;
      d = static_cast<std::uint64_t>(backoff_base) << shift;
      if (backoff_cap > 0 && d > static_cast<std::uint64_t>(backoff_cap)) {
        d = static_cast<std::uint64_t>(backoff_cap);
      }
    }
    total += static_cast<sim::Duration>(d) + jitter;
  }
  return total;
}

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)) {}

void Injector::set_recorder(trace::Recorder* rec) {
  if (rec == nullptr) return;
  for (const Event& e : plan_.events()) {
    rec->record("fault", e.str(), e.at, e.until == kForever ? e.at : e.until);
  }
}

double Injector::link_scale(LinkClass c, int a, int b, sim::Time t) const {
  double scale = 1.0;
  for (const Event& e : plan_.events()) {
    if (e.link != c || !id_match(e.a, a) || !id_match(e.b, b)) continue;
    if (e.kind == EventKind::kLinkFail && window_active(e, t)) return 0.0;
    if (e.kind == EventKind::kLinkDegrade && window_active(e, t)) {
      scale = std::min(scale, e.factor);
    }
  }
  return scale;
}

bool Injector::link_down(LinkClass c, int a, int b, sim::Time t) const {
  return link_scale(c, a, b, t) <= 0.0;
}

double Injector::device_scale(int ggpu, sim::Time t) const {
  double scale = 1.0;
  for (const Event& e : plan_.events()) {
    if (e.kind != EventKind::kDeviceSlow || !id_match(e.a, ggpu)) continue;
    if (window_active(e, t)) scale = std::min(scale, e.factor);
  }
  return scale;
}

bool Injector::peer_revoked(int ggpu_a, int ggpu_b, sim::Time t) const {
  for (const Event& e : plan_.events()) {
    if (e.kind != EventKind::kPeerRevoke || e.at > t) continue;
    const bool fwd = id_match(e.a, ggpu_a) && id_match(e.b, ggpu_b);
    const bool rev = id_match(e.a, ggpu_b) && id_match(e.b, ggpu_a);
    if (fwd || rev) return true;
  }
  return false;
}

bool Injector::ipc_stale(int node, sim::Time opened_at, sim::Time t) const {
  for (const Event& e : plan_.events()) {
    if (e.kind != EventKind::kIpcInvalidate || !id_match(e.a, node)) continue;
    if (e.at >= opened_at && e.at <= t) return true;
  }
  return false;
}

bool Injector::cuda_aware_disabled(sim::Time t) const {
  for (const Event& e : plan_.events()) {
    if (e.kind == EventKind::kCudaAwareDisable && window_active(e, t)) return true;
  }
  return false;
}

bool Injector::message_dropped(int src_node, int dst_node, int src_rank, int dst_rank, int tag,
                               int attempt, sim::Time t) const {
  // A failed NIC on the path loses every attempt while it is down.
  if (src_node != dst_node && link_down(LinkClass::kNic, src_node, dst_node, t)) return true;
  for (const Event& e : plan_.events()) {
    if (e.kind != EventKind::kMsgDrop || !window_active(e, t)) continue;
    if (!id_match(e.a, src_node) || !id_match(e.b, dst_node)) continue;
    if (e.factor >= 1.0) return true;
    std::uint64_t h = plan_.seed();
    h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank)) << 32 |
                 static_cast<std::uint32_t>(dst_rank)));
    h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) << 32 |
                 static_cast<std::uint32_t>(attempt)));
    h = mix(h ^ static_cast<std::uint64_t>(t));
    if (unit_interval(h) < e.factor) return true;
  }
  return false;
}

sim::Duration Injector::message_delay(int src_node, int dst_node, sim::Time t) const {
  sim::Duration d = 0;
  for (const Event& e : plan_.events()) {
    if (e.kind != EventKind::kMsgDelay || !window_active(e, t)) continue;
    if (!id_match(e.a, src_node) || !id_match(e.b, dst_node)) continue;
    d = std::max(d, e.delay);
  }
  return d;
}

sim::Time Injector::gpu_fail_time(int ggpu) const {
  sim::Time t = kForever;
  for (const Event& e : plan_.events()) {
    if (e.kind == EventKind::kGpuFail && id_match(e.a, ggpu)) t = std::min(t, e.at);
  }
  return t;
}

sim::Time Injector::node_fail_time(int node) const {
  sim::Time t = kForever;
  for (const Event& e : plan_.events()) {
    if (e.kind == EventKind::kNodeFail && id_match(e.a, node)) t = std::min(t, e.at);
  }
  return t;
}

sim::Time Injector::first_terminal_failure() const {
  sim::Time t = kForever;
  for (const Event& e : plan_.events()) {
    if (e.kind == EventKind::kGpuFail || e.kind == EventKind::kNodeFail) t = std::min(t, e.at);
  }
  return t;
}

}  // namespace stencil::fault
