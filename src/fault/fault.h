#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "simtime/time.h"
#include "trace/recorder.h"

namespace stencil::fault {

/// Physical link families a fault can target. Ids are interpreted per
/// class: kP2P takes (src global GPU, dst global GPU), kHostLink takes
/// (global GPU, -1), kXBus takes (node, -1), kNic takes (src node,
/// dst node). -1 is a wildcard matching any id.
enum class LinkClass {
  kP2P,
  kHostLink,
  kXBus,
  kNic,
};

const char* to_string(LinkClass c);

/// What happens at a scheduled virtual-time instant (or over a window).
enum class EventKind {
  kLinkDegrade,       // link bandwidth scaled by `factor` over [at, until)
  kLinkFail,          // link down over [at, until): NIC messages drop,
                      // other links crawl at the floor bandwidth
  kPeerRevoke,        // peer access between a GPU pair lost from `at` on
  kIpcInvalidate,     // IPC mappings opened at or before `at` become stale
  kCudaAwareDisable,  // MPI stops moving device payloads over [at, until)
                      // (observed by core at exchange boundaries)
  kDeviceSlow,        // device kernel throughput scaled by `factor`
  kMsgDrop,           // messages over (a -> b) dropped with prob `factor`
  kMsgDelay,          // messages over (a -> b) delayed by `delay`
  kGpuFail,           // GPU `a` permanently dead from `at` on (terminal)
  kNodeFail,          // node `a` permanently dead from `at` on (terminal)
};

const char* to_string(EventKind k);

/// Timestamps are virtual nanoseconds; kForever marks an open-ended window.
inline constexpr sim::Time kForever = std::numeric_limits<sim::Time>::max();

/// One scripted fault. Queries treat the event list as immutable history:
/// the state of any capability at time t is a pure fold over the events
/// with `at` <= t, so the same plan always yields the same degradation.
struct Event {
  sim::Time at = 0;
  sim::Time until = kForever;
  EventKind kind = EventKind::kLinkDegrade;
  LinkClass link = LinkClass::kNic;
  int a = -1;           // first id (see LinkClass); -1 = any
  int b = -1;           // second id; -1 = any
  double factor = 1.0;  // degrade/slow scale, or drop probability
  sim::Duration delay = 0;

  std::string str() const;
};

/// How simpi reacts to dropped messages and missing peers. Disabled by
/// default (timeout == 0): a drop then fails immediately and an unmatched
/// wait blocks forever (deadlock detection still fires). With a timeout,
/// retransmission k (0-based) waits `timeout + backoff_delay(k, salt)`
/// before firing, up to max_retries retransmissions, then raises
/// TransportError. The backoff is truncated exponential —
/// `min(backoff_base * 2^k, backoff_cap)` — plus deterministic seeded
/// jitter in [0, jitter]: the jitter term hashes the caller-supplied salt
/// (message identity), so the schedule is a pure function of the plan and
/// the message, never of call order or wall clock.
struct RetryPolicy {
  sim::Duration timeout = 0;
  int max_retries = 0;
  sim::Duration backoff_base = 0;
  sim::Duration backoff_cap = 0;  // 0 = uncapped
  sim::Duration jitter = 0;       // 0 = none; else uniform in [0, jitter]

  bool enabled() const { return timeout > 0; }

  /// Extra wait before retransmission `attempt` (0-based) beyond the
  /// timeout. `salt` identifies the message (hashed for the jitter term).
  sim::Duration backoff_delay(int attempt, std::uint64_t salt) const;

  /// Upper bound on the total backoff over `attempts` retransmissions
  /// (jitter counted at its maximum) — the retry-budget term.
  sim::Duration backoff_budget(int attempts) const;
};

/// splitmix64 — the deterministic hash the injector and retry jitter share.
std::uint64_t mix64(std::uint64_t x);

/// A deterministic schedule of faults, all in virtual time (never wall
/// clock). Build with the fluent methods, hand to an Injector, and wire the
/// Injector into a Cluster (or directly into Machine):
///
///   fault::FaultPlan plan;
///   plan.revoke_peer(sim::from_seconds(0.5), 0, 1)
///       .degrade_link(sim::from_seconds(1.0), fault::LinkClass::kNic,
///                     -1, -1, 0.25);
///   fault::Injector inj(plan);
///   cluster.set_fault_injector(&inj);
class FaultPlan {
 public:
  /// Scale a link's bandwidth by `factor` (< 1 slows it) over [at, until).
  FaultPlan& degrade_link(sim::Time at, LinkClass c, int a, int b, double factor,
                          sim::Time until = kForever);

  /// Take a link down over [at, until). NIC failure manifests as message
  /// loss (retried/errored by simpi); other links crawl at the model floor.
  FaultPlan& fail_link(sim::Time at, LinkClass c, int a, int b, sim::Time until = kForever);

  /// Permanently revoke peer access between two global GPUs (symmetric).
  FaultPlan& revoke_peer(sim::Time at, int ggpu_a, int ggpu_b);

  /// Invalidate every IPC mapping on `node` (-1: all nodes) opened at or
  /// before `at`. Mappings opened later are unaffected.
  FaultPlan& invalidate_ipc(sim::Time at, int node = -1);

  /// Stop the MPI library accepting device payloads over [at, until).
  FaultPlan& disable_cuda_aware(sim::Time at, sim::Time until = kForever);

  /// Scale one device's kernel throughput (-1: every device).
  FaultPlan& slow_device(sim::Time at, int ggpu, double factor, sim::Time until = kForever);

  /// Drop messages from node a to node b (-1 wildcards) with the given
  /// probability over [at, until). probability >= 1 drops every attempt.
  FaultPlan& drop_messages(sim::Time at, sim::Time until, int src_node, int dst_node,
                           double probability = 1.0);

  /// Add `extra` latency to messages from node a to node b over [at, until).
  FaultPlan& delay_messages(sim::Time at, sim::Time until, int src_node, int dst_node,
                            sim::Duration extra);

  /// Permanently kill one global GPU (-1: every GPU) at `at`. Terminal:
  /// work on the device errors, messages to a rank whose GPUs are all dead
  /// complete with kPeerDead, and recovery (stencil::recover) may shrink
  /// the job around it.
  FaultPlan& fail_gpu(sim::Time at, int ggpu);

  /// Permanently kill a whole node (-1: every node) at `at` — all its GPUs,
  /// its NIC endpoints, and every rank it hosts.
  FaultPlan& fail_node(sim::Time at, int node);

  /// Virtual-time lag between a terminal failure and the instant survivors
  /// may observe it (the failure-detector bound). Default 20 us.
  FaultPlan& set_detect_latency(sim::Duration d);

  /// Seed for probabilistic drops. Decisions hash (seed, src, dst, tag,
  /// attempt, time) — fixed seed means bit-identical fault sequences.
  FaultPlan& set_seed(std::uint64_t seed);

  /// Retry/timeout behaviour simpi applies while this plan is installed.
  FaultPlan& set_retry_policy(RetryPolicy p);

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t seed() const { return seed_; }
  const RetryPolicy& retry_policy() const { return retry_; }
  sim::Duration detect_latency() const { return detect_latency_; }

 private:
  FaultPlan& push(Event e);
  std::vector<Event> events_;
  std::uint64_t seed_ = 0x5eed;
  RetryPolicy retry_;
  sim::Duration detect_latency_ = 20 * sim::kMicrosecond;
};

/// Read-only oracle the stack consults while running. All queries are pure
/// functions of (plan, t): no hidden state, no wall clock, no RNG stream —
/// so a simulation under a fixed plan is exactly as deterministic as one
/// without faults.
class Injector {
 public:
  explicit Injector(FaultPlan plan);

  /// Record every scripted event on the "fault" lane so timelines show the
  /// injected degradation alongside its effects.
  void set_recorder(trace::Recorder* rec);

  bool active() const { return !plan_.events().empty() || plan_.retry_policy().enabled(); }
  const RetryPolicy& retry_policy() const { return plan_.retry_policy(); }
  const FaultPlan& plan() const { return plan_; }

  /// Bandwidth multiplier for a link at time t: min over active degrade
  /// windows, 0 while the link is failed, 1 when healthy.
  double link_scale(LinkClass c, int a, int b, sim::Time t) const;
  bool link_down(LinkClass c, int a, int b, sim::Time t) const;

  /// Kernel-throughput multiplier for a device at time t.
  double device_scale(int ggpu, sim::Time t) const;

  /// Has peer access between these GPUs been revoked by time t?
  bool peer_revoked(int ggpu_a, int ggpu_b, sim::Time t) const;

  /// Is a mapping on `node` opened at `opened_at` stale by time t?
  bool ipc_stale(int node, sim::Time opened_at, sim::Time t) const;

  bool cuda_aware_disabled(sim::Time t) const;

  /// Does attempt `attempt` of the message (src_rank -> dst_rank, tag),
  /// crossing src_node -> dst_node at time t, get lost? Deterministic:
  /// scripted windows always drop; probabilistic windows hash the
  /// identifying tuple against the plan seed.
  bool message_dropped(int src_node, int dst_node, int src_rank, int dst_rank, int tag,
                       int attempt, sim::Time t) const;

  /// Extra latency injected on the (src_node -> dst_node) path at time t.
  sim::Duration message_delay(int src_node, int dst_node, sim::Time t) const;

  // --- terminal failures (stencil::recover) -------------------------------

  /// Instant GPU `ggpu` dies (earliest matching kGpuFail), or kForever.
  /// Pure device-level query: a GPU on a failed node is reported dead by
  /// the composed queries of the layers that know the topology.
  sim::Time gpu_fail_time(int ggpu) const;

  /// Instant node `node` dies (earliest matching kNodeFail), or kForever.
  sim::Time node_fail_time(int node) const;

  bool gpu_dead(int ggpu, sim::Time t) const { return gpu_fail_time(ggpu) <= t; }
  bool node_dead(int node, sim::Time t) const { return node_fail_time(node) <= t; }

  /// Earliest scripted terminal failure of any kind, or kForever.
  sim::Time first_terminal_failure() const;
  bool has_terminal_failures() const { return first_terminal_failure() != kForever; }

  /// Failure-detector bound: how long after a terminal failure survivors
  /// may first observe it.
  sim::Duration detect_latency() const { return plan_.detect_latency(); }

 private:
  FaultPlan plan_;
};

}  // namespace stencil::fault
