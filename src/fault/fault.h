#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "simtime/time.h"
#include "trace/recorder.h"

namespace stencil::fault {

/// Physical link families a fault can target. Ids are interpreted per
/// class: kP2P takes (src global GPU, dst global GPU), kHostLink takes
/// (global GPU, -1), kXBus takes (node, -1), kNic takes (src node,
/// dst node). -1 is a wildcard matching any id.
enum class LinkClass {
  kP2P,
  kHostLink,
  kXBus,
  kNic,
};

const char* to_string(LinkClass c);

/// What happens at a scheduled virtual-time instant (or over a window).
enum class EventKind {
  kLinkDegrade,       // link bandwidth scaled by `factor` over [at, until)
  kLinkFail,          // link down over [at, until): NIC messages drop,
                      // other links crawl at the floor bandwidth
  kPeerRevoke,        // peer access between a GPU pair lost from `at` on
  kIpcInvalidate,     // IPC mappings opened at or before `at` become stale
  kCudaAwareDisable,  // MPI stops moving device payloads over [at, until)
                      // (observed by core at exchange boundaries)
  kDeviceSlow,        // device kernel throughput scaled by `factor`
  kMsgDrop,           // messages over (a -> b) dropped with prob `factor`
  kMsgDelay,          // messages over (a -> b) delayed by `delay`
};

const char* to_string(EventKind k);

/// Timestamps are virtual nanoseconds; kForever marks an open-ended window.
inline constexpr sim::Time kForever = std::numeric_limits<sim::Time>::max();

/// One scripted fault. Queries treat the event list as immutable history:
/// the state of any capability at time t is a pure fold over the events
/// with `at` <= t, so the same plan always yields the same degradation.
struct Event {
  sim::Time at = 0;
  sim::Time until = kForever;
  EventKind kind = EventKind::kLinkDegrade;
  LinkClass link = LinkClass::kNic;
  int a = -1;           // first id (see LinkClass); -1 = any
  int b = -1;           // second id; -1 = any
  double factor = 1.0;  // degrade/slow scale, or drop probability
  sim::Duration delay = 0;

  std::string str() const;
};

/// How simpi reacts to dropped messages and missing peers. Disabled by
/// default (timeout == 0): a drop then fails immediately and an unmatched
/// wait blocks forever (deadlock detection still fires). With a timeout,
/// attempt k waits `timeout + backoff_base * 2^(k-1)` before retransmitting,
/// up to max_retries retransmissions, then raises TransportError.
struct RetryPolicy {
  sim::Duration timeout = 0;
  int max_retries = 0;
  sim::Duration backoff_base = 0;

  bool enabled() const { return timeout > 0; }
};

/// A deterministic schedule of faults, all in virtual time (never wall
/// clock). Build with the fluent methods, hand to an Injector, and wire the
/// Injector into a Cluster (or directly into Machine):
///
///   fault::FaultPlan plan;
///   plan.revoke_peer(sim::from_seconds(0.5), 0, 1)
///       .degrade_link(sim::from_seconds(1.0), fault::LinkClass::kNic,
///                     -1, -1, 0.25);
///   fault::Injector inj(plan);
///   cluster.set_fault_injector(&inj);
class FaultPlan {
 public:
  /// Scale a link's bandwidth by `factor` (< 1 slows it) over [at, until).
  FaultPlan& degrade_link(sim::Time at, LinkClass c, int a, int b, double factor,
                          sim::Time until = kForever);

  /// Take a link down over [at, until). NIC failure manifests as message
  /// loss (retried/errored by simpi); other links crawl at the model floor.
  FaultPlan& fail_link(sim::Time at, LinkClass c, int a, int b, sim::Time until = kForever);

  /// Permanently revoke peer access between two global GPUs (symmetric).
  FaultPlan& revoke_peer(sim::Time at, int ggpu_a, int ggpu_b);

  /// Invalidate every IPC mapping on `node` (-1: all nodes) opened at or
  /// before `at`. Mappings opened later are unaffected.
  FaultPlan& invalidate_ipc(sim::Time at, int node = -1);

  /// Stop the MPI library accepting device payloads over [at, until).
  FaultPlan& disable_cuda_aware(sim::Time at, sim::Time until = kForever);

  /// Scale one device's kernel throughput (-1: every device).
  FaultPlan& slow_device(sim::Time at, int ggpu, double factor, sim::Time until = kForever);

  /// Drop messages from node a to node b (-1 wildcards) with the given
  /// probability over [at, until). probability >= 1 drops every attempt.
  FaultPlan& drop_messages(sim::Time at, sim::Time until, int src_node, int dst_node,
                           double probability = 1.0);

  /// Add `extra` latency to messages from node a to node b over [at, until).
  FaultPlan& delay_messages(sim::Time at, sim::Time until, int src_node, int dst_node,
                            sim::Duration extra);

  /// Seed for probabilistic drops. Decisions hash (seed, src, dst, tag,
  /// attempt, time) — fixed seed means bit-identical fault sequences.
  FaultPlan& set_seed(std::uint64_t seed);

  /// Retry/timeout behaviour simpi applies while this plan is installed.
  FaultPlan& set_retry_policy(RetryPolicy p);

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t seed() const { return seed_; }
  const RetryPolicy& retry_policy() const { return retry_; }

 private:
  FaultPlan& push(Event e);
  std::vector<Event> events_;
  std::uint64_t seed_ = 0x5eed;
  RetryPolicy retry_;
};

/// Read-only oracle the stack consults while running. All queries are pure
/// functions of (plan, t): no hidden state, no wall clock, no RNG stream —
/// so a simulation under a fixed plan is exactly as deterministic as one
/// without faults.
class Injector {
 public:
  explicit Injector(FaultPlan plan);

  /// Record every scripted event on the "fault" lane so timelines show the
  /// injected degradation alongside its effects.
  void set_recorder(trace::Recorder* rec);

  bool active() const { return !plan_.events().empty() || plan_.retry_policy().enabled(); }
  const RetryPolicy& retry_policy() const { return plan_.retry_policy(); }
  const FaultPlan& plan() const { return plan_; }

  /// Bandwidth multiplier for a link at time t: min over active degrade
  /// windows, 0 while the link is failed, 1 when healthy.
  double link_scale(LinkClass c, int a, int b, sim::Time t) const;
  bool link_down(LinkClass c, int a, int b, sim::Time t) const;

  /// Kernel-throughput multiplier for a device at time t.
  double device_scale(int ggpu, sim::Time t) const;

  /// Has peer access between these GPUs been revoked by time t?
  bool peer_revoked(int ggpu_a, int ggpu_b, sim::Time t) const;

  /// Is a mapping on `node` opened at `opened_at` stale by time t?
  bool ipc_stale(int node, sim::Time opened_at, sim::Time t) const;

  bool cuda_aware_disabled(sim::Time t) const;

  /// Does attempt `attempt` of the message (src_rank -> dst_rank, tag),
  /// crossing src_node -> dst_node at time t, get lost? Deterministic:
  /// scripted windows always drop; probabilistic windows hash the
  /// identifying tuple against the plan seed.
  bool message_dropped(int src_node, int dst_node, int src_rank, int dst_rank, int tag,
                       int attempt, sim::Time t) const;

  /// Extra latency injected on the (src_node -> dst_node) path at time t.
  sim::Duration message_delay(int src_node, int dst_node, sim::Time t) const;

 private:
  FaultPlan plan_;
};

}  // namespace stencil::fault
