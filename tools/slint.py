#!/usr/bin/env python3
"""slint — source-discipline lint for the stencil codebase.

The simulator owns time, randomness, and threads: every actor runs under
sim::Engine virtual time (src/simtime), so OS-level time and concurrency
primitives in library, test, bench, or example code silently break
determinism and the virtual clock. This lint bans those constructs
statically, the same way stencil::verify bans protocol defects statically.

Rules (each a regex over comment- and string-stripped source):
  os-sleep        std::this_thread::sleep_for/sleep_until, sleep(), usleep(),
                  nanosleep() — real sleeps stall the virtual clock. Virtual
                  sleeps (sim::Engine::sleep_for / RankCtx timing) are fine.
  wall-clock      std::chrono::system_clock — wall time varies run to run;
                  sim::now() or std::chrono::steady_clock (for host-side
                  profiling only) are the sanctioned clocks.
  libc-rand       rand()/srand() — unseeded global state; use a seeded
                  std::mt19937 so failures reproduce.
  raw-thread      std::thread/std::jthread outside src/simtime — actors must
                  be scheduled by sim::Engine, never by the OS.

Suppression: append `// slint: allow(<rule>)` to the offending line. The
lint reports the rule name so the suppression is greppable and auditable.

Usage:
  tools/slint.py [paths...]        # default: src tests bench examples
  tools/slint.py --list-rules
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests", "bench", "examples"]
SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc", ".cu", ".cuh"}

# (name, regex, explanation, path-predicate). The predicate receives the
# repo-relative posix path and returns True when the rule applies there.
RULES = [
    (
        "os-sleep",
        re.compile(
            r"std::this_thread::sleep_(for|until)"
            r"|(?<![\w:.])(sleep|usleep|nanosleep)\s*\("
        ),
        "OS sleep stalls the virtual clock; use sim::Engine::sleep_for",
        lambda p: not p.startswith("src/simtime/"),
    ),
    (
        "wall-clock",
        re.compile(r"std::chrono::system_clock"),
        "wall time is nondeterministic; use sim::now() or steady_clock",
        lambda p: not p.startswith("src/simtime/"),
    ),
    (
        "libc-rand",
        # Bare rand()/srand( and the std::-qualified spellings; other
        # qualified names (foo::rand) are someone's own RNG, not libc's.
        re.compile(r"(?:(?<![\w:.])|(?<=std::))s?rand\s*\("),
        "global libc RNG is unseedable per-test; use a seeded std::mt19937",
        lambda p: True,
    ),
    (
        "raw-thread",
        re.compile(r"std::j?thread\b"),
        "OS threads bypass the simulator; actors belong to sim::Engine",
        lambda p: not p.startswith("src/simtime/"),
    ),
]

ALLOW = re.compile(r"//\s*slint:\s*allow\(([\w,\s-]+)\)")

# Comments and string/char literals, ordered so earlier alternatives win.
# Block comments may span lines; this runs on the whole file text.
_STRIP = re.compile(
    r"""
      /\*.*?\*/            # block comment
    | //[^\n]*             # line comment
    | "(?:\\.|[^"\\\n])*"  # string literal
    | '(?:\\.|[^'\\\n])*'  # char literal
    """,
    re.DOTALL | re.VERBOSE,
)


def _blank_preserving_newlines(match: re.Match) -> str:
    return re.sub(r"[^\n]", " ", match.group(0))


def strip_code(text: str) -> str:
    """Blank out comments and literals, preserving line structure."""
    return _STRIP.sub(_blank_preserving_newlines, text)


def lint_file(path: pathlib.Path, rel: str) -> list[str]:
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [f"{rel}: unreadable: {e}"]
    stripped = strip_code(raw)
    raw_lines = raw.splitlines()
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        allow_m = ALLOW.search(raw_line)
        allowed = (
            {r.strip() for r in allow_m.group(1).split(",")} if allow_m else set()
        )
        for name, rx, why, applies in RULES:
            if not applies(rel):
                continue
            if name in allowed:
                continue
            m = rx.search(line)
            if m:
                findings.append(
                    f"{rel}:{lineno}: [{name}] `{raw_line.strip()}` — {why}"
                )
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None)
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name, _, why, _ in RULES:
            print(f"{name}: {why}")
        return 0

    roots = [pathlib.Path(p) for p in (args.paths or DEFAULT_PATHS)]
    files: list[pathlib.Path] = []
    for root in roots:
        base = root if root.is_absolute() else REPO / root
        if base.is_file():
            files.append(base)
        elif base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*")) if p.suffix in SOURCE_SUFFIXES
            )
        else:
            print(f"slint: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[str] = []
    for f in files:
        try:
            rel = f.resolve().relative_to(REPO).as_posix()
        except ValueError:
            rel = f.as_posix()
        findings.extend(lint_file(f, rel))

    for line in findings:
        print(line)
    print(
        f"slint: {len(files)} file(s), {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
