#!/usr/bin/env python3
"""tidy_gate — enforced clang-tidy, scoped to the lines a change touched.

Whole-tree clang-tidy stays advisory (the seed predates .clang-tidy), but a
change must not add new diagnostics. This gate diffs against a base ref,
collects the changed line ranges of every translation unit, runs clang-tidy
over just those files, and fails only on diagnostics anchored to changed
lines — so pre-existing noise elsewhere in the file cannot block a PR, while
anything a patch introduces does.

Usage:
  tools/tidy_gate.py [--base <ref>] [--build build] [--require]

--base     git ref to diff against (default: origin/main, falling back to
           HEAD~1 when origin/main is absent, e.g. shallow CI clones).
--build    build dir containing compile_commands.json (default: build).
--require  fail (exit 3) when clang-tidy or compile_commands.json is
           missing. Without it the gate degrades to a skip with a notice so
           developer machines without clang-tidy are not blocked; CI passes
           --require so the gate cannot silently vanish there.

Exit status: 0 clean/skipped, 1 diagnostics on changed lines, 2 usage,
3 --require unmet.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
TIDY_SUFFIXES = {".cpp", ".cc"}  # TUs present in compile_commands.json

DIAG = re.compile(r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
                  r"(?P<sev>warning|error): (?P<msg>.*)$")


def run(cmd: list[str], **kw) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, cwd=REPO, text=True, capture_output=True, **kw)


def resolve_base(requested: str) -> str | None:
    for ref in [requested, "HEAD~1"]:
        if run(["git", "rev-parse", "--verify", "--quiet", ref]).returncode == 0:
            return ref
    return None


def changed_lines(base: str) -> dict[str, set[int]]:
    """Map of repo-relative path -> set of added/modified line numbers."""
    diff = run(["git", "diff", "--unified=0", base, "--", "src", "tests",
                "bench", "examples"])
    if diff.returncode != 0:
        print(f"tidy_gate: git diff failed: {diff.stderr.strip()}", file=sys.stderr)
        sys.exit(2)
    out: dict[str, set[int]] = {}
    cur: str | None = None
    for line in diff.stdout.splitlines():
        if line.startswith("+++ b/"):
            cur = line[6:]
        elif line.startswith("@@") and cur is not None:
            m = re.search(r"\+(\d+)(?:,(\d+))?", line)
            if m:
                start = int(m.group(1))
                count = int(m.group(2)) if m.group(2) is not None else 1
                out.setdefault(cur, set()).update(range(start, start + count))
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--base", default="origin/main")
    ap.add_argument("--build", default="build")
    ap.add_argument("--require", action="store_true")
    args = ap.parse_args(argv)

    tidy = shutil.which("clang-tidy")
    compdb = REPO / args.build / "compile_commands.json"
    if tidy is None or not compdb.exists():
        missing = "clang-tidy" if tidy is None else str(compdb)
        level = "error" if args.require else "notice"
        print(f"tidy_gate: {level}: {missing} not available; "
              f"{'failing (--require)' if args.require else 'skipping'}",
              file=sys.stderr)
        return 3 if args.require else 0

    base = resolve_base(args.base)
    if base is None:
        print("tidy_gate: no usable base ref; skipping", file=sys.stderr)
        return 3 if args.require else 0

    touched = changed_lines(base)
    tus = [f for f in touched
           if pathlib.Path(f).suffix in TIDY_SUFFIXES and (REPO / f).exists()]
    if not tus:
        print(f"tidy_gate: no changed translation units vs {base}; clean")
        return 0

    print(f"tidy_gate: {len(tus)} changed TU(s) vs {base}: {' '.join(tus)}")
    proc = run([tidy, "-p", args.build, "--quiet", *tus])
    # clang-tidy exits non-zero on any diagnostic, including pre-existing
    # ones; the verdict below considers changed lines only.

    gated: list[str] = []
    for line in proc.stdout.splitlines():
        m = DIAG.match(line)
        if not m:
            continue
        try:
            rel = pathlib.Path(m.group("file")).resolve().relative_to(REPO).as_posix()
        except ValueError:
            continue
        if int(m.group("line")) in touched.get(rel, set()):
            gated.append(line)

    for g in gated:
        print(g)
    print(f"tidy_gate: {len(gated)} diagnostic(s) on changed lines", file=sys.stderr)
    return 1 if gated else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
