#!/usr/bin/env python3
"""Compare two bench-v1 JSON documents (or directories of them) and report
per-key latency regressions.

Every row in a bench-v1 document is keyed by (bench, label+config, variant);
for each key present in both baseline and candidate the median and p95
latencies are compared, and a relative increase beyond --threshold (default
10%) counts as a regression. Most benches here run in deterministic virtual
time, so any drift at all is a model change — the threshold exists to absorb
the few wall-clock-adjacent rows and float formatting.

Usage:
  bench_compare.py BASELINE CANDIDATE [--threshold 0.10] [--require]

BASELINE / CANDIDATE are either two bench-v1 .json files or two directories;
for directories, every BENCH_*.json in BASELINE is compared against the
same-named file in CANDIDATE (a missing candidate file is a failure — the
bench stopped emitting).

Exit status: 0 when clean or advisory (no --require); 1 with --require when
any regression, schema problem, or missing file/key is found.
"""

import argparse
import json
import os
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "bench-v1":
        raise ValueError(f"{path}: schema is {doc.get('schema')!r}, expected 'bench-v1'")
    return doc


def row_key(row):
    # config is already folded into the label by the emitters ("2n/6r/6g/..."),
    # but include the distinguishing config fields anyway so two rows that
    # share a label but differ in shape never collide.
    cfg = row.get("config", {})
    cfg_sig = ",".join(
        str(cfg.get(k, "")) for k in ("arch", "nodes", "ranks_per_node", "domain", "radius")
    )
    return (row.get("label", ""), row.get("variant", ""), cfg_sig)


def index_rows(doc):
    rows = {}
    for row in doc.get("rows", []):
        key = row_key(row)
        if key in rows:
            raise ValueError(f"duplicate row key {key} in bench {doc.get('bench')!r}")
        rows[key] = row
    return rows


def compare_docs(base_doc, cand_doc, threshold, report):
    """Appends report lines; returns (regressions, missing)."""
    bench = base_doc.get("bench", "?")
    base = index_rows(base_doc)
    cand = index_rows(cand_doc)
    regressions = 0
    missing = 0

    for key in sorted(base):
        label, variant, _ = key
        name = f"{bench}: {label} [{variant}]"
        if key not in cand:
            report.append(f"MISSING  {name} — row dropped from candidate")
            missing += 1
            continue
        b, c = base[key]["latency_ms"], cand[key]["latency_ms"]
        worst = 0.0
        worst_stat = None
        for stat in ("median", "p95"):
            bv, cv = b.get(stat, 0.0), c.get(stat, 0.0)
            if bv <= 0.0:
                continue  # zero baselines carry no regression signal
            rel = (cv - bv) / bv
            if rel > worst:
                worst, worst_stat = rel, (stat, bv, cv)
        if worst > threshold:
            stat, bv, cv = worst_stat
            report.append(
                f"REGRESS  {name} — {stat} {bv:.6g} -> {cv:.6g} (+{100.0 * worst:.1f}%)"
            )
            regressions += 1

    for key in sorted(set(cand) - set(base)):
        label, variant, _ = key
        report.append(f"NEW      {bench}: {label} [{variant}] — no baseline yet")
    return regressions, missing


def pair_files(base, cand):
    """Yields (base_path, cand_path_or_None) pairs for the two arguments."""
    if os.path.isdir(base):
        if not os.path.isdir(cand):
            raise ValueError(f"{base} is a directory but {cand} is not")
        names = sorted(n for n in os.listdir(base) if n.startswith("BENCH_") and n.endswith(".json"))
        if not names:
            raise ValueError(f"no BENCH_*.json files in {base}")
        for n in names:
            cpath = os.path.join(cand, n)
            yield os.path.join(base, n), (cpath if os.path.exists(cpath) else None)
    else:
        yield base, (cand if os.path.exists(cand) else None)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="bench-v1 file or directory of BENCH_*.json baselines")
    ap.add_argument("candidate", help="bench-v1 file or directory to compare against the baseline")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative median/p95 increase that counts as a regression (default 0.10)")
    ap.add_argument("--require", action="store_true",
                    help="exit 1 on any regression or missing row/file (default: advisory)")
    args = ap.parse_args()

    report = []
    regressions = 0
    missing = 0
    compared = 0
    try:
        for base_path, cand_path in pair_files(args.baseline, args.candidate):
            if cand_path is None:
                report.append(f"MISSING  {os.path.basename(base_path)} — candidate file not found")
                missing += 1
                continue
            base_doc = load_doc(base_path)
            cand_doc = load_doc(cand_path)
            r, m = compare_docs(base_doc, cand_doc, args.threshold, report)
            regressions += r
            missing += m
            compared += 1
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: error: {e}", file=sys.stderr)
        return 1

    for line in report:
        print(line)
    verdict_bad = regressions > 0 or missing > 0
    print(f"bench_compare: {compared} file(s) compared, {regressions} regression(s), "
          f"{missing} missing, threshold {100.0 * args.threshold:.0f}%"
          + ("" if args.require else " (advisory)"))
    return 1 if (verdict_bad and args.require) else 0


if __name__ == "__main__":
    sys.exit(main())
