#!/usr/bin/env python3
"""Compare two bench-v1 JSON documents (or directories of them) and report
per-key latency regressions.

Every row in a bench-v1 document is keyed by (bench, label+config, variant);
for each key present in both baseline and candidate the median and p95
latencies are compared, and a relative increase beyond --threshold (default
10%) counts as a regression. Most benches here run in deterministic virtual
time, so any drift at all is a model change — the threshold exists to absorb
the few wall-clock-adjacent rows and float formatting.

Usage:
  bench_compare.py BASELINE CANDIDATE [--threshold 0.10] [--require]

BASELINE / CANDIDATE are either two bench-v1 .json files or two directories;
for directories, every BENCH_*.json in BASELINE is compared against the
same-named file in CANDIDATE (a missing candidate file is a failure — the
bench stopped emitting). Candidate-only files and rows — things with no
baseline yet — are reported as NEW, never as errors.

When an `EXPLAIN_<name>.json` (explain-v1, stencil::explain) sits next to a
`BENCH_<name>.json` on both sides, any >threshold regression in that bench
also prints the decision-log diff — decisions whose chosen option or score
changed between baseline and candidate — so a perf delta arrives with its
why attached.

Exit status: 0 when clean or advisory (no --require); 1 with --require when
any regression, schema problem, or missing file/key is found.
"""

import argparse
import json
import os
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "bench-v1":
        raise ValueError(f"{path}: schema is {doc.get('schema')!r}, expected 'bench-v1'")
    return doc


def row_key(row):
    # config is already folded into the label by the emitters ("2n/6r/6g/..."),
    # but include the distinguishing config fields anyway so two rows that
    # share a label but differ in shape never collide.
    cfg = row.get("config", {})
    cfg_sig = ",".join(
        str(cfg.get(k, "")) for k in ("arch", "nodes", "ranks_per_node", "domain", "radius")
    )
    return (row.get("label", ""), row.get("variant", ""), cfg_sig)


def index_rows(doc):
    rows = {}
    for row in doc.get("rows", []):
        key = row_key(row)
        if key in rows:
            raise ValueError(f"duplicate row key {key} in bench {doc.get('bench')!r}")
        rows[key] = row
    return rows


def compare_docs(base_doc, cand_doc, threshold, report):
    """Appends report lines; returns (regressions, missing)."""
    bench = base_doc.get("bench", "?")
    base = index_rows(base_doc)
    cand = index_rows(cand_doc)
    regressions = 0
    missing = 0

    for key in sorted(base):
        label, variant, _ = key
        name = f"{bench}: {label} [{variant}]"
        if key not in cand:
            report.append(f"MISSING  {name} — row dropped from candidate")
            missing += 1
            continue
        b = base[key].get("latency_ms") or {}
        c = cand[key].get("latency_ms") or {}
        worst = 0.0
        worst_stat = None
        for stat in ("median", "p95"):
            bv, cv = b.get(stat, 0.0), c.get(stat, 0.0)
            if bv <= 0.0:
                continue  # zero baselines carry no regression signal
            rel = (cv - bv) / bv
            if rel > worst:
                worst, worst_stat = rel, (stat, bv, cv)
        if worst > threshold:
            stat, bv, cv = worst_stat
            report.append(
                f"REGRESS  {name} — {stat} {bv:.6g} -> {cv:.6g} (+{100.0 * worst:.1f}%)"
            )
            regressions += 1

    for key in sorted(set(cand) - set(base)):
        label, variant, _ = key
        report.append(f"NEW      {bench}: {label} [{variant}] — no baseline yet")
    return regressions, missing


def pair_files(base, cand):
    """Yields (base_path_or_None, cand_path_or_None) pairs for the two
    arguments. (None, cand_path) marks a candidate-only file: a bench that
    has no baseline yet (reported as NEW, not an error)."""
    if os.path.isdir(base):
        if not os.path.isdir(cand):
            raise ValueError(f"{base} is a directory but {cand} is not")

        def bench_names(d):
            return {n for n in os.listdir(d) if n.startswith("BENCH_") and n.endswith(".json")}

        base_names = bench_names(base)
        cand_names = bench_names(cand)
        if not base_names and not cand_names:
            raise ValueError(f"no BENCH_*.json files in {base} or {cand}")
        for n in sorted(base_names):
            cpath = os.path.join(cand, n)
            yield os.path.join(base, n), (cpath if os.path.exists(cpath) else None)
        for n in sorted(cand_names - base_names):
            yield None, os.path.join(cand, n)
    else:
        yield base, (cand if os.path.exists(cand) else None)


def explain_path_for(bench_path):
    """EXPLAIN_<name>.json sibling of a BENCH_<name>.json, or None."""
    if bench_path is None:
        return None
    d, n = os.path.split(bench_path)
    if not n.startswith("BENCH_"):
        return None
    epath = os.path.join(d, "EXPLAIN_" + n[len("BENCH_"):])
    return epath if os.path.exists(epath) else None


def load_explain(path):
    """explain-v1 decisions keyed by (kind, subject): [(chosen, score), ...].
    Returns None when the file is unreadable or not explain-v1 — the diff is
    best-effort garnish, never a comparison failure."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError, json.JSONDecodeError):
        return None
    if doc.get("schema") != "explain-v1":
        return None
    decisions = {}
    for rec in doc.get("records", []):
        key = (rec.get("kind", "?"), rec.get("subject", "?"))
        decisions.setdefault(key, []).append(
            (rec.get("chosen", "?"), rec.get("chosen_score", 0.0))
        )
    return decisions


def diff_explain(base_path, cand_path, report, max_lines=20):
    """Appends EXPLAIN lines for decisions that changed between the two logs."""
    if base_path is None or cand_path is None:
        return
    base = load_explain(base_path)
    cand = load_explain(cand_path)
    if base is None or cand is None:
        return
    name = os.path.basename(cand_path)
    lines = []
    for key in sorted(set(base) | set(cand)):
        kind, subject = key
        b, c = base.get(key), cand.get(key)
        if b == c:
            continue
        if b is None:
            for chosen, score in c:
                lines.append(f"EXPLAIN  {name}: + {kind} {subject}: chose {chosen!r} (score {score:g})")
        elif c is None:
            for chosen, score in b:
                lines.append(f"EXPLAIN  {name}: - {kind} {subject}: chose {chosen!r} (score {score:g})")
        else:
            for (bch, bsc), (cch, csc) in zip(b, c):
                if (bch, bsc) == (cch, csc):
                    continue
                lines.append(
                    f"EXPLAIN  {name}: {kind} {subject}: "
                    f"{bch!r} (score {bsc:g}) -> {cch!r} (score {csc:g})"
                )
            for chosen, score in c[len(b):]:
                lines.append(f"EXPLAIN  {name}: + {kind} {subject}: chose {chosen!r} (score {score:g})")
            for chosen, score in b[len(c):]:
                lines.append(f"EXPLAIN  {name}: - {kind} {subject}: chose {chosen!r} (score {score:g})")
    if len(lines) > max_lines:
        dropped = len(lines) - max_lines
        lines = lines[:max_lines] + [f"EXPLAIN  {name}: ... {dropped} more changed decision(s)"]
    report.extend(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="bench-v1 file or directory of BENCH_*.json baselines")
    ap.add_argument("candidate", help="bench-v1 file or directory to compare against the baseline")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative median/p95 increase that counts as a regression (default 0.10)")
    ap.add_argument("--require", action="store_true",
                    help="exit 1 on any regression or missing row/file (default: advisory)")
    args = ap.parse_args()

    report = []
    regressions = 0
    missing = 0
    compared = 0
    try:
        for base_path, cand_path in pair_files(args.baseline, args.candidate):
            if cand_path is None:
                report.append(f"MISSING  {os.path.basename(base_path)} — candidate file not found")
                missing += 1
                continue
            if base_path is None:
                cand_doc = load_doc(cand_path)  # still validate the schema
                report.append(
                    f"NEW      {os.path.basename(cand_path)} — "
                    f"{len(cand_doc.get('rows', []))} row(s), no baseline file yet"
                )
                continue
            base_doc = load_doc(base_path)
            cand_doc = load_doc(cand_path)
            r, m = compare_docs(base_doc, cand_doc, args.threshold, report)
            regressions += r
            missing += m
            compared += 1
            if r > 0:
                # A regression's "why": diff the decision logs, if both runs
                # exported them next to their bench files.
                diff_explain(explain_path_for(base_path), explain_path_for(cand_path), report)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: error: {e}", file=sys.stderr)
        return 1

    for line in report:
        print(line)
    verdict_bad = regressions > 0 or missing > 0
    print(f"bench_compare: {compared} file(s) compared, {regressions} regression(s), "
          f"{missing} missing, threshold {100.0 * args.threshold:.0f}%"
          + ("" if args.require else " (advisory)"))
    return 1 if (verdict_bad and args.require) else 0


if __name__ == "__main__":
    sys.exit(main())
