#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/report.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "plan/plan.h"
#include "simpi/mpi.h"
#include "topo/archetype.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace vgpu = stencil::vgpu;
namespace simpi = stencil::simpi;
namespace fault = stencil::fault;
namespace check = stencil::check;
namespace plan = stencil::plan;

using check::FindingKind;
using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::LocalDomain;
using stencil::Method;
using stencil::MethodFlags;
using stencil::PackMode;
using stencil::RankCtx;

namespace {

std::string dump(const check::CheckReport& rep) {
  std::ostringstream os;
  rep.write(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Plan-cache unit tests (no engine).
// ---------------------------------------------------------------------------

TEST(PlanCache, LookupIgnoresEpochAndMatchesConfig) {
  plan::PlanCache cache;
  plan::PlanKey key;
  key.topo_epoch = 3;
  key.method_flags = 0x5;
  key.aggregated = true;
  key.quantities = {0, 2};
  plan::CompiledPlan& p = cache.emplace(key);
  EXPECT_EQ(cache.size(), 1u);

  // Same config, any epoch: hit (epoch mismatches are migrated, not missed).
  EXPECT_EQ(cache.find(0x5, true, {0, 2}), &p);
  // Any config difference: miss.
  EXPECT_EQ(cache.find(0x4, true, {0, 2}), nullptr);
  EXPECT_EQ(cache.find(0x5, false, {0, 2}), nullptr);
  EXPECT_EQ(cache.find(0x5, true, {0}), nullptr);

  // A second subset gets its own entry whose address stays stable.
  plan::PlanKey k2 = key;
  k2.quantities = {1};
  plan::CompiledPlan& p2 = cache.emplace(k2);
  EXPECT_EQ(cache.find(0x5, true, {0, 2}), &p);
  EXPECT_EQ(cache.find(0x5, true, {1}), &p2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, InvalidateTagDirtiesMatchingProgramsInEveryPlan) {
  plan::PlanCache cache;
  for (int i = 0; i < 2; ++i) {
    plan::PlanKey key;
    key.quantities = {static_cast<std::size_t>(i)};
    plan::CompiledPlan& p = cache.emplace(key);
    plan::TransferProgram a;
    a.tag = 5;
    plan::TransferProgram b;
    b.tag = 9;
    p.programs.push_back(a);
    p.programs.push_back(b);
  }
  cache.invalidate_tag(5);
  for (const auto& p : cache.entries()) {
    EXPECT_EQ(p->dirty_count(), 1u);
    EXPECT_TRUE(p->programs[0].dirty);
    EXPECT_FALSE(p->programs[1].dirty);
  }
  // Idempotent.
  cache.invalidate_tag(5);
  EXPECT_EQ(cache.entries()[0]->dirty_count(), 1u);
}

TEST(PlanCache, DescribeAndStatsRender) {
  plan::PlanKey key;
  key.method_flags = 0x1f;
  key.quantities = {0, 1};
  plan::CompiledPlan p;
  p.key = key;
  plan::TransferProgram t;
  t.tag = 3;
  t.method = Method::kStaged;
  t.bytes = 4096;
  t.i_send = true;
  p.programs.push_back(t);
  std::ostringstream os;
  p.describe(os);
  EXPECT_NE(os.str().find("staged"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("4096"), std::string::npos) << os.str();

  plan::PlanStats st;
  st.compiles = 2;
  st.hits = 7;
  EXPECT_NE(st.str().find("7"), std::string::npos) << st.str();
  EXPECT_NE(key.str().find("qs=[0,1]"), std::string::npos) << key.str();
}

// ---------------------------------------------------------------------------
// Persistent simpi requests: lifecycle, restart semantics, checker lints.
// ---------------------------------------------------------------------------

struct CheckedWorld {
  sim::Engine eng;
  topo::Machine machine;
  vgpu::Runtime runtime;
  simpi::Job job;
  check::Checker chk;
  CheckedWorld(int nodes, int ranks_per_node)
      : machine(topo::summit(), nodes),
        runtime(eng, machine),
        job(eng, machine, runtime, ranks_per_node),
        chk(eng) {
    runtime.set_checker(&chk);
    job.set_checker(&chk);
  }
};

TEST(PersistentRequests, InitStartWaitLoopIsCleanAndReusesOneRecord) {
  CheckedWorld w(1, 2);
  constexpr std::size_t kBytes = 128 * 1024;  // rendezvous-sized
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    auto payload = rt.alloc_pinned_host(0, kBytes);
    simpi::Request req = comm.rank() == 0
                             ? comm.send_init(simpi::Payload::of(payload, 0, kBytes), 1, 7)
                             : comm.recv_init(simpi::Payload::of(payload, 0, kBytes), 0, 7);
    for (int it = 0; it < 3; ++it) {
      comm.start(req);
      comm.wait(req);
    }
    comm.request_free(req);
  });
  EXPECT_TRUE(w.chk.report().clean()) << dump(w.chk.report());
}

TEST(PersistentRequests, WaitAndTestOnInactiveAreNoOps) {
  CheckedWorld w(1, 2);
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    auto payload = rt.alloc_pinned_host(0, 1024);
    // Never started: MPI_Wait on an inactive persistent request returns
    // immediately with an empty status; MPI_Test reports flag=true.
    simpi::Request req = comm.rank() == 0
                             ? comm.send_init(simpi::Payload::of(payload, 0, 1024), 1, 7)
                             : comm.recv_init(simpi::Payload::of(payload, 0, 1024), 0, 7);
    comm.wait(req);
    EXPECT_TRUE(comm.test(req));
    comm.request_free(req);
  });
  // Inactive persistent requests are a valid resting state, not leaks.
  EXPECT_TRUE(w.chk.report().clean()) << dump(w.chk.report());
}

TEST(PersistentRequests, WaitAnySkipsInactiveEntries) {
  CheckedWorld w(1, 2);
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    auto payload = rt.alloc_pinned_host(0, 1024);
    if (comm.rank() == 0) {
      std::vector<simpi::Request> reqs;
      reqs.push_back(comm.send_init(simpi::Payload::of(payload, 0, 512), 1, 8));  // inactive
      reqs.push_back(comm.isend(simpi::Payload::of(payload, 512, 512), 1, 9));
      EXPECT_EQ(comm.wait_any(reqs), 1);   // the live isend, not the parked init
      EXPECT_EQ(comm.wait_any(reqs), -1);  // all remaining entries are inactive
      comm.request_free(reqs[0]);
    } else {
      auto sink = rt.alloc_pinned_host(0, 512);
      comm.recv(simpi::Payload::of(sink, 0, 512), 0, 9);
    }
  });
  EXPECT_TRUE(w.chk.report().clean()) << dump(w.chk.report());
}

TEST(PersistentRequests, DoubleStartLintsThenThrows) {
  CheckedWorld w(1, 2);
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    auto payload = rt.alloc_pinned_host(0, 64);
    if (comm.rank() == 0) {
      simpi::Request req = comm.send_init(simpi::Payload::of(payload, 0, 64), 1, 7);
      comm.start(req);
      // MPI erroneous: the previous start has not been completed by wait().
      EXPECT_THROW(comm.start(req), std::logic_error);
      comm.wait(req);
      comm.request_free(req);
    } else {
      auto sink = rt.alloc_pinned_host(0, 64);
      comm.recv(simpi::Payload::of(sink, 0, 64), 0, 7);
    }
  });
  const auto& rep = w.chk.report();
  ASSERT_EQ(rep.count(FindingKind::kPersistentRestart), 1u) << dump(rep);
  EXPECT_EQ(rep.findings().size(), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].second.find("still in flight"), std::string::npos);
}

TEST(PersistentRequests, FreeWhileActiveLints) {
  CheckedWorld w(1, 2);
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    auto payload = rt.alloc_pinned_host(0, 64);
    if (comm.rank() == 0) {
      simpi::Request req = comm.send_init(simpi::Payload::of(payload, 0, 64), 1, 7);
      comm.start(req);
      comm.request_free(req);  // BUG under test: freed with the start in flight
    } else {
      auto sink = rt.alloc_pinned_host(0, 64);
      comm.recv(simpi::Payload::of(sink, 0, 64), 0, 7);  // deferred-free still delivers
    }
  });
  const auto& rep = w.chk.report();
  ASSERT_EQ(rep.count(FindingKind::kPersistentFreedActive), 1u) << dump(rep);
  // The active operation was also never completed by wait: that is a second,
  // distinct defect of the same program, reported as the usual leak.
  EXPECT_EQ(rep.count(FindingKind::kRequestNeverWaited), 1u) << dump(rep);
}

// ---------------------------------------------------------------------------
// vgpu graph capture: deferral, replay fidelity, misuse.
// ---------------------------------------------------------------------------

template <typename F>
check::CheckReport run_checked(F&& body, int nodes = 1) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), nodes);
  vgpu::Runtime rt(eng, machine);
  check::Checker chk(eng);
  rt.set_checker(&chk);
  eng.run({[&] { body(rt); }});
  chk.finish();
  return chk.report();
}

TEST(GraphCapture, CaptureDefersReplayMovesBytes) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  eng.run({[&] {
    auto src = rt.alloc_device(0, 256);
    auto dst = rt.alloc_device(0, 256);
    auto s = rt.create_stream(0);
    for (std::size_t i = 0; i < 256; ++i) src.data()[i] = static_cast<std::byte>(i);

    const std::uint64_t issued_before = rt.ops_issued();
    rt.begin_capture();
    EXPECT_TRUE(rt.capturing());
    rt.memcpy_async(dst, 0, src, 0, 256, s);
    vgpu::Graph g = rt.end_capture();
    EXPECT_FALSE(rt.capturing());

    // Capture appended a node but executed nothing.
    EXPECT_EQ(g.num_nodes(), 1u);
    EXPECT_EQ(rt.ops_issued(), issued_before);
    EXPECT_NE(dst.data()[10], src.data()[10]);

    vgpu::GraphExec exec = rt.instantiate(std::move(g));
    ASSERT_TRUE(exec.valid());
    rt.launch_graph(exec);
    rt.stream_synchronize(s);
    EXPECT_EQ(rt.graphs_launched(), 1u);
    EXPECT_EQ(exec.launches(), 1u);
    // Replay went through the eager entry point: bytes really moved.
    EXPECT_EQ(dst.data()[10], src.data()[10]);
    EXPECT_EQ(rt.ops_issued(), issued_before + 1);

    // Relaunch after mutating the source: the graph references buffers, not
    // snapshots, so each launch moves the current bytes.
    src.data()[10] = static_cast<std::byte>(0xAB);
    rt.launch_graph(exec);
    rt.stream_synchronize(s);
    EXPECT_EQ(dst.data()[10], static_cast<std::byte>(0xAB));
    EXPECT_EQ(exec.launches(), 2u);
  }});
}

TEST(GraphCapture, SynchronizingDuringCaptureThrows) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  eng.run({[&] {
    auto s = rt.create_stream(0);
    vgpu::Event ev;
    rt.record_event(ev, s);
    rt.begin_capture();
    EXPECT_THROW(rt.stream_synchronize(s), std::logic_error);
    EXPECT_THROW(rt.event_synchronize(ev), std::logic_error);
    EXPECT_THROW(rt.device_synchronize(0), std::logic_error);
    (void)rt.end_capture();
  }});
}

TEST(GraphCapture, CheckerSeesReplayedOpsLikeEagerOps) {
  // Two unordered writes captured into a graph must still race on replay —
  // the observer sees replayed nodes through the same on_op feed as eager.
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 1024);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    rt.begin_capture();
    rt.launch_kernel(s1, 1024, "gw1", [] {}, {{&buf, 0, 1024, true}});
    rt.launch_kernel(s2, 1024, "gw2", [] {}, {{&buf, 0, 1024, true}});
    auto exec = rt.instantiate(rt.end_capture());
    rt.launch_graph(exec);
    rt.stream_synchronize(s1);
    rt.stream_synchronize(s2);
  });
  ASSERT_EQ(rep.count(FindingKind::kWriteWriteRace), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].first.find("gw1"), std::string::npos);
}

TEST(GraphCapture, EventEdgesInsideAGraphOrderItsStreams) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 1024);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    vgpu::Event done;
    rt.begin_capture();
    rt.launch_kernel(s1, 1024, "gw1", [] {}, {{&buf, 0, 1024, true}});
    rt.record_event(done, s1);
    rt.stream_wait_event(s2, done);
    rt.launch_kernel(s2, 1024, "gw2", [] {}, {{&buf, 0, 1024, true}});
    auto exec = rt.instantiate(rt.end_capture());
    // Relaunches need an edge back from s2's tail to the next s1 head, just
    // like the planned exchange quiesces between iterations.
    for (int it = 0; it < 3; ++it) {
      rt.launch_graph(exec);
      rt.stream_synchronize(s2);
    }
    rt.stream_synchronize(s1);
  });
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

// ---------------------------------------------------------------------------
// Planned exchanges: shared helpers (mirroring test_check's e2e idiom).
// ---------------------------------------------------------------------------

float expected_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill_interior(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z) {
        for (std::int64_t y = 0; y < ld.size().y; ++y) {
          for (std::int64_t x = 0; x < ld.size().x; ++x) {
            v(x, y, z) = expected_value({o.x + x, o.y + y, o.z + z}, q);
          }
        }
      }
    }
  });
}

int verify_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq) {
  int failures = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z) {
        for (std::int64_t y = -r; y < sz.y + r; ++y) {
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            const bool interior =
                x >= 0 && x < sz.x && y >= 0 && y < sz.y && z >= 0 && z < sz.z;
            if (interior) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            failures += v(x, y, z) != expected_value(g, q);
          }
        }
      }
    }
  });
  return failures;
}

int histogram_count(const std::map<Method, int>& h, Method m) {
  auto it = h.find(m);
  return it == h.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Zero-setup acceptance: after the first planned exchange compiles, the
// steady state does no setup work at all — no new MPI request records, no
// new allocations, no re-specialization. Asserted via observer hooks.
// ---------------------------------------------------------------------------

struct CountingChecker : check::Checker {
  using check::Checker::Checker;
  std::uint64_t posts = 0;    // transient isend/irecv records created
  std::uint64_t inits = 0;    // persistent records created
  std::uint64_t pstarts = 0;  // persistent re-arms
  void on_post(const simpi::MsgInfo& m) override {
    ++posts;
    check::Checker::on_post(m);
  }
  void on_persistent_init(const simpi::MsgInfo& m) override {
    ++inits;
    check::Checker::on_persistent_init(m);
  }
  void on_persistent_start(const simpi::MsgInfo& m) override {
    ++pstarts;
    check::Checker::on_persistent_start(m);
  }
};

TEST(PlannedExchange, SteadyStateDoesZeroSetupWork) {
  const Dim3 domain{48, 48, 48};
  constexpr int kSteady = 3;
  Cluster cluster(topo::summit(), 2, 1);
  CountingChecker chk(cluster.engine());
  cluster.set_checker(&chk);

  std::uint64_t posts0 = 0, inits0 = 0, pstarts0 = 0, bufs0 = 0;
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel);
    dd.set_persistent(true);
    dd.realize();

    // Warmup: the first exchange compiles the plan (requests + graphs).
    fill_interior(dd, 2);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(verify_halos(dd, domain, 2), 0);
    EXPECT_EQ(dd.plan_stats().compiles, 1u);
    EXPECT_GT(chk.inits, 0u);  // the compile did create persistent records

    // Snapshot under a barrier pair so every rank's warmup is quiescent.
    if (ctx.comm.rank() == 0) {
      posts0 = chk.posts;
      inits0 = chk.inits;
      pstarts0 = chk.pstarts;
      bufs0 = ctx.rt.buffers_allocated();
    }
    ctx.comm.barrier();

    for (int it = 0; it < kSteady; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 2), 0) << "steady iteration " << it;
    }

    // Steady state: replays only. No transient posts, no new persistent
    // records, no new buffers; the cache served pure hits.
    if (ctx.comm.rank() == 0) {
      EXPECT_EQ(chk.posts, posts0);
      EXPECT_EQ(chk.inits, inits0);
      EXPECT_GT(chk.pstarts, pstarts0);  // replays re-armed the frozen requests
      EXPECT_EQ(ctx.rt.buffers_allocated(), bufs0);
    }
    EXPECT_EQ(dd.plan_stats().compiles, 1u);
    EXPECT_EQ(dd.plan_stats().hits, static_cast<std::uint64_t>(kSteady));
    EXPECT_EQ(dd.plan_stats().replays, static_cast<std::uint64_t>(kSteady) + 1);
    EXPECT_EQ(dd.plan_stats().invalidations, 0u);
    EXPECT_EQ(dd.topology_epoch(), 0u);
    ctx.comm.barrier();
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

// ---------------------------------------------------------------------------
// Selective exchange × plan cache: distinct subsets compile distinct plans,
// alternating subsets stay bit-exact (with aggregation on).
// ---------------------------------------------------------------------------

TEST(PlannedExchange, SelectiveSubsetsGetDistinctCachedPlans) {
  const Dim3 domain{48, 48, 48};
  Cluster cluster(topo::summit(), 2, 1);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel);
    dd.set_remote_aggregation(true);
    dd.set_persistent(true);
    dd.realize();

    for (int it = 0; it < 3; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      dd.exchange({0});
      dd.exchange({1});
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 2), 0) << "alternating iteration " << it;
      // One plan per subset, compiled exactly once each.
      EXPECT_EQ(dd.plan_cache().size(), 2u);
      EXPECT_EQ(dd.plan_stats().compiles, 2u);
    }
    EXPECT_EQ(dd.plan_stats().hits, 4u);  // iterations 1 and 2 replayed both

    // A blanket exchange is a third configuration.
    fill_interior(dd, 2);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(verify_halos(dd, domain, 2), 0);
    EXPECT_EQ(dd.plan_cache().size(), 3u);
    EXPECT_EQ(dd.plan_stats().compiles, 3u);
    ctx.comm.barrier();
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

TEST(PlannedExchange, TogglingPersistentMidRunStaysBitExact) {
  const Dim3 domain{48, 48, 48};
  Cluster cluster(topo::summit(), 1, 2);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    // Eager → planned → eager: the mode is a pure execution strategy.
    for (int it = 0; it < 3; ++it) {
      dd.set_persistent(it == 1);
      fill_interior(dd, 1);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 1), 0) << "iteration " << it;
    }
    EXPECT_EQ(dd.plan_stats().replays, 1u);
    ctx.comm.barrier();
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

// ---------------------------------------------------------------------------
// Fault-driven demotion: the plan cache is partially invalidated, affected
// programs rebuild against the demoted method, and halos stay bit-exact.
// ---------------------------------------------------------------------------

TEST(PlannedExchange, FaultDemotionRebuildsOnlyAffectedPrograms) {
  const sim::Time t_fault = sim::from_seconds(1.0);
  const Dim3 domain{48, 48, 48};
  fault::FaultPlan fplan;
  fplan.revoke_peer(t_fault, -1, -1).invalidate_ipc(t_fault).disable_cuda_aware(t_fault);
  fault::Injector inj(fplan);

  Cluster cluster(topo::summit(), 2, 2);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.set_fault_injector(&inj);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(MethodFlags::kAllCudaAware | MethodFlags::kStaged);
    dd.set_persistent(true);
    dd.realize();

    const auto before = dd.local_method_histogram();
    EXPECT_GT(histogram_count(before, Method::kPeer), 0);
    EXPECT_GT(histogram_count(before, Method::kColocated), 0);
    EXPECT_GT(histogram_count(before, Method::kCudaAwareMpi), 0);

    fill_interior(dd, 2);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(verify_halos(dd, domain, 2), 0);
    EXPECT_EQ(dd.plan_stats().compiles, 1u);
    EXPECT_EQ(dd.topology_epoch(), 0u);

    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    for (int it = 0; it < 2; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 2), 0) << "post-fault iteration " << it;
    }

    // The storm demoted every PEER / COLOCATED / CUDA-aware transfer...
    const auto after = dd.local_method_histogram();
    EXPECT_EQ(histogram_count(after, Method::kPeer), 0);
    EXPECT_EQ(histogram_count(after, Method::kColocated), 0);
    EXPECT_EQ(histogram_count(after, Method::kCudaAwareMpi), 0);
    // ...which bumped the epoch and migrated the cached plan in place:
    // a partial rebuild, not a fresh compile.
    EXPECT_GT(dd.topology_epoch(), 0u);
    EXPECT_EQ(dd.plan_stats().compiles, 1u);
    EXPECT_GE(dd.plan_stats().invalidations, 1u);
    EXPECT_GE(dd.plan_stats().rebuilt_programs, 1u);
    // Every surviving program is now STAGED (or an eager colocated stub that
    // was rebuilt away); none are left dirty.
    for (const auto& p : dd.plan_cache().entries()) {
      EXPECT_EQ(p->dirty_count(), 0u);
    }
    ctx.comm.barrier();
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

// ---------------------------------------------------------------------------
// End-to-end planned exchanges across every specialization method: the
// checker must stay silent and halos bit-exact, including selective
// iterations that exercise multiple cached plans.
// ---------------------------------------------------------------------------

struct PlannedCase {
  const char* name;
  int nodes;
  int ranks_per_node;
  MethodFlags flags;
  bool aggregate = false;
  bool zero_copy = false;
  PackMode pack_mode = PackMode::kKernel;
};

void run_planned_exchange(const PlannedCase& c, std::vector<Method> expect_methods) {
  SCOPED_TRACE(c.name);
  const Dim3 domain{48, 48, 48};
  Cluster cluster(topo::summit(), c.nodes, c.ranks_per_node);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(c.flags);
    dd.set_remote_aggregation(c.aggregate);
    dd.set_staged_zero_copy(c.zero_copy);
    dd.set_pack_mode(c.pack_mode);
    dd.set_persistent(true);
    dd.realize();
    const auto hist = dd.local_method_histogram();
    for (Method m : expect_methods) {
      EXPECT_GT(histogram_count(hist, m), 0) << "method not exercised: " << to_string(m);
    }
    for (int it = 0; it < 3; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      if (it == 1) {
        dd.exchange({0});  // selective exchanges compile their own plans
        dd.exchange({1});
      } else {
        dd.exchange();
      }
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 2), 0) << "iteration " << it;
    }
    // Three configurations ran: {0,1}, {0}, {1}. Iteration 2 was a pure hit.
    EXPECT_EQ(dd.plan_cache().size(), 3u);
    EXPECT_EQ(dd.plan_stats().compiles, 3u);
    EXPECT_GE(dd.plan_stats().hits, 1u);
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

TEST(PlannedExchange, KernelPeerColocatedSingleNodeClean) {
  run_planned_exchange({"single-node kAll", 1, 2, MethodFlags::kAll},
                       {Method::kKernel, Method::kPeer, Method::kColocated});
}

TEST(PlannedExchange, CudaAwareRemoteClean) {
  run_planned_exchange({"cuda-aware remote", 2, 1, MethodFlags::kAllCudaAware},
                       {Method::kPeer, Method::kCudaAwareMpi});
}

TEST(PlannedExchange, StagedRemoteClean) {
  run_planned_exchange({"staged remote", 2, 1,
                        MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel},
                       {Method::kPeer, Method::kStaged});
}

TEST(PlannedExchange, StagedAggregatedClean) {
  PlannedCase c{"staged aggregated", 2, 1,
                MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel};
  c.aggregate = true;
  run_planned_exchange(c, {Method::kStaged});
}

TEST(PlannedExchange, StagedZeroCopyClean) {
  PlannedCase c{"staged zero-copy", 2, 1,
                MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel};
  c.zero_copy = true;
  run_planned_exchange(c, {Method::kStaged});
}

TEST(PlannedExchange, PeerMemcpy3DClean) {
  PlannedCase c{"peer 3d", 1, 2, MethodFlags::kAll};
  c.pack_mode = PackMode::kMemcpy3D;
  run_planned_exchange(c, {Method::kPeer});
}

TEST(PlannedExchange, AllMethodsMultiNodeClean) {
  run_planned_exchange({"all methods 2x2", 2, 2,
                        MethodFlags::kAllCudaAware | MethodFlags::kStaged},
                       {Method::kPeer, Method::kColocated, Method::kCudaAwareMpi});
}

TEST(PlannedExchange, SetPersistentWhileInFlightThrows) {
  const Dim3 domain{48, 48, 48};
  Cluster cluster(topo::summit(), 1, 2);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    fill_interior(dd, 1);
    ctx.comm.barrier();
    dd.exchange_start();
    EXPECT_THROW(dd.set_persistent(true), std::logic_error);
    dd.exchange_finish();
    ctx.comm.barrier();
  });
}

}  // namespace
