#include <gtest/gtest.h>

#include <random>

#include "qap/qap.h"

namespace qap = stencil::qap;

namespace {

qap::SquareMatrix random_matrix(int n, unsigned seed, bool symmetric) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  qap::SquareMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (symmetric && j < i) {
        m.at(i, j) = m.at(j, i);
      } else {
        m.at(i, j) = dist(rng);
      }
    }
  }
  return m;
}

}  // namespace

TEST(Qap, CostOfIdentity) {
  qap::SquareMatrix w(2), d(2);
  w.at(0, 1) = 3;
  w.at(1, 0) = 3;
  d.at(0, 1) = 2;
  d.at(1, 0) = 2;
  EXPECT_DOUBLE_EQ(qap::cost(w, d, {0, 1}), 12.0);
  EXPECT_DOUBLE_EQ(qap::cost(w, d, {1, 0}), 12.0);  // symmetric 2x2: same
}

TEST(Qap, IsPermutation) {
  EXPECT_TRUE(qap::is_permutation({2, 0, 1}, 3));
  EXPECT_FALSE(qap::is_permutation({0, 0, 1}, 3));
  EXPECT_FALSE(qap::is_permutation({0, 1}, 3));
  EXPECT_FALSE(qap::is_permutation({0, 1, 3}, 3));
}

TEST(Qap, ExhaustiveFindsKnownOptimum) {
  // Facilities 0-1 exchange heavily; locations 0-1 are close. Any optimal
  // assignment must co-locate the heavy pair on the close pair.
  qap::SquareMatrix w(4), d(4);
  w.at(0, 1) = w.at(1, 0) = 100;
  w.at(2, 3) = w.at(3, 2) = 1;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) d.at(i, j) = 10;
    }
  }
  d.at(0, 1) = d.at(1, 0) = 1;
  const auto f = qap::solve_exhaustive(w, d);
  ASSERT_TRUE(qap::is_permutation(f, 4));
  const bool heavy_on_close = (f[0] == 0 && f[1] == 1) || (f[0] == 1 && f[1] == 0);
  EXPECT_TRUE(heavy_on_close) << f[0] << f[1] << f[2] << f[3];
}

TEST(Qap, WorstIsAtLeastBest) {
  const auto w = random_matrix(5, 7, true);
  const auto d = random_matrix(5, 11, true);
  const auto best = qap::solve_exhaustive(w, d);
  const auto worst = qap::solve_worst(w, d);
  EXPECT_LE(qap::cost(w, d, best), qap::cost(w, d, worst));
}

TEST(Qap, ExhaustiveCapGuards) {
  qap::SquareMatrix big(11);
  EXPECT_THROW(qap::solve_exhaustive(big, big), std::invalid_argument);
}

TEST(Qap, MismatchedSizesRejected) {
  qap::SquareMatrix w(3), d(4);
  EXPECT_THROW(qap::solve_exhaustive(w, d), std::invalid_argument);
  EXPECT_THROW(qap::solve_greedy_2swap(w, d), std::invalid_argument);
}

// Property sweep: on random instances, greedy+2swap yields a valid
// permutation no better than impossible (>= exhaustive optimum) and never
// worse than the worst assignment.
class QapProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(QapProperty, GreedyBoundedByExhaustive) {
  const unsigned seed = GetParam();
  const int n = 3 + static_cast<int>(seed % 5);  // 3..7 facilities
  const auto w = random_matrix(n, seed, true);
  const auto d = random_matrix(n, seed + 1000, true);
  const auto best = qap::solve_exhaustive(w, d);
  const auto worst = qap::solve_worst(w, d);
  const auto greedy = qap::solve_greedy_2swap(w, d);
  ASSERT_TRUE(qap::is_permutation(greedy, n));
  EXPECT_GE(qap::cost(w, d, greedy) + 1e-9, qap::cost(w, d, best));
  EXPECT_LE(qap::cost(w, d, greedy) - 1e-9, qap::cost(w, d, worst));
}

TEST_P(QapProperty, GreedyIsTwoSwapLocalOptimum) {
  const unsigned seed = GetParam();
  const int n = 3 + static_cast<int>(seed % 5);
  const auto w = random_matrix(n, seed * 3 + 1, false);
  const auto d = random_matrix(n, seed * 5 + 2, false);
  auto f = qap::solve_greedy_2swap(w, d);
  const double c = qap::cost(w, d, f);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      std::swap(f[static_cast<std::size_t>(i)], f[static_cast<std::size_t>(j)]);
      EXPECT_GE(qap::cost(w, d, f) + 1e-9, c) << "swap " << i << "," << j << " improves";
      std::swap(f[static_cast<std::size_t>(i)], f[static_cast<std::size_t>(j)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QapProperty, ::testing::Range(0u, 20u));
