#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "explain/explain.h"

namespace explain = stencil::explain;
namespace qap = stencil::qap;

namespace {

explain::DecisionRecord make_record(explain::DecisionKind kind, const std::string& subject,
                                    const std::string& chosen, double score,
                                    std::vector<explain::Alternative> rejected = {}) {
  explain::DecisionRecord r;
  r.kind = kind;
  r.subject = subject;
  r.chosen = chosen;
  r.chosen_score = score;
  r.rejected = std::move(rejected);
  return r;
}

/// A 2-GPU placement case where "chosen" = {0, 1} is optimal under the
/// unperturbed distance matrix and the "swapped" alternative wins once
/// GPU 0's links get expensive enough.
explain::DecisionRecord placement_record() {
  auto pc = std::make_shared<explain::PlacementCase>();
  pc->flow = qap::SquareMatrix(2);
  pc->flow.at(0, 1) = 4.0;  // subdomain 0 talks 4x harder than subdomain 1
  pc->flow.at(1, 0) = 1.0;
  pc->distance = qap::SquareMatrix(2);
  pc->distance.at(0, 1) = 1.0;  // gpu0 -> gpu1 is the cheap direction
  pc->distance.at(1, 0) = 3.0;
  pc->chosen = {0, 1};
  pc->alternatives = {{"swapped", {1, 0}}};

  explain::DecisionRecord r = make_record(
      explain::DecisionKind::kPlacement, "node 0", "qap", 0.0,
      {{"swapped", 0.0}});
  r.chosen_score = qap::cost(pc->flow, pc->distance, pc->chosen);          // 4*1 + 1*3 = 7
  r.rejected[0].score = qap::cost(pc->flow, pc->distance, pc->alternatives[0].second);  // 13
  r.evidence = pc;
  return r;
}

}  // namespace

TEST(Ledger, AppendAssignsDenseIdsAndCounts) {
  explain::Ledger led(8);
  EXPECT_TRUE(led.empty());
  const auto a = led.append(make_record(explain::DecisionKind::kPartition, "job", "2x2x1", 1.0));
  const auto b = led.append(make_record(explain::DecisionKind::kPlanCompile, "plan", "compile", 0.0));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(led.size(), 2u);
  EXPECT_EQ(led.total_recorded(), 2u);
  EXPECT_EQ(led.recorded_of(explain::DecisionKind::kPartition), 1u);
  EXPECT_EQ(led.recorded_of(explain::DecisionKind::kPlanCompile), 1u);
  EXPECT_EQ(led.recorded_of(explain::DecisionKind::kDemotion), 0u);
  ASSERT_NE(led.find(a), nullptr);
  EXPECT_EQ(led.find(a)->chosen, "2x2x1");
  EXPECT_EQ(led.find(99), nullptr);
}

TEST(Ledger, EvictionKeepsNewestAndTotalsSurvive) {
  explain::Ledger led(3);
  for (int i = 0; i < 7; ++i) {
    led.append(make_record(explain::DecisionKind::kDemotion, "t" + std::to_string(i),
                           "staged", static_cast<double>(i)));
  }
  EXPECT_EQ(led.size(), 3u);
  EXPECT_EQ(led.total_recorded(), 7u);
  EXPECT_EQ(led.recorded_of(explain::DecisionKind::kDemotion), 7u);  // counts never evict
  EXPECT_EQ(led.records().front().id, 4u);
  EXPECT_EQ(led.records().back().id, 6u);
  EXPECT_EQ(led.find(3), nullptr);  // evicted
  ASSERT_NE(led.find(5), nullptr);
  EXPECT_EQ(led.find(5)->subject, "t5");
}

TEST(Ledger, BumpIsNoOpForEvictedOrUnknownIds) {
  explain::Ledger led(2);
  const auto a = led.append(make_record(explain::DecisionKind::kPlanCompile, "p", "compile", 0.0));
  const auto b = led.append(make_record(explain::DecisionKind::kPlanCompile, "q", "compile", 0.0));
  led.bump(a);
  led.bump(a);
  led.bump(b);
  led.bump(17);  // never recorded: no-op, no crash
  EXPECT_EQ(led.find(a)->repeats, 2u);
  EXPECT_EQ(led.find(b)->repeats, 1u);
  led.append(make_record(explain::DecisionKind::kPlanCompile, "r", "compile", 0.0));  // evicts a
  led.bump(a);  // evicted: silently dropped
  EXPECT_EQ(led.find(a), nullptr);
  EXPECT_EQ(led.find(b)->repeats, 1u);
}

TEST(Ledger, ScoreDeltaReportsBestRejectedMinusChosen) {
  const auto r = make_record(explain::DecisionKind::kSchedPlacement, "job", "spread", 2.0,
                             {{"packed", 5.0}, {"random", 9.0}});
  EXPECT_DOUBLE_EQ(r.score_delta(), 3.0);
  const auto none = make_record(explain::DecisionKind::kAggregation, "job", "on", 1.0);
  EXPECT_DOUBLE_EQ(none.score_delta(), 0.0);
}

TEST(Ledger, ClearResetsIdsAndCounts) {
  explain::Ledger led(4);
  led.append(make_record(explain::DecisionKind::kRecoverStep, "gpu 1", "shrink", 1.0));
  led.clear();
  EXPECT_TRUE(led.empty());
  EXPECT_EQ(led.total_recorded(), 0u);
  EXPECT_EQ(led.recorded_of(explain::DecisionKind::kRecoverStep), 0u);
  EXPECT_EQ(led.append(make_record(explain::DecisionKind::kRecoverStep, "gpu 2", "shrink", 1.0)),
            0u);  // ids restart
}

TEST(Ledger, WriteJsonEmitsExplainV1WithEscapesAndDropCount) {
  explain::Ledger led(2);
  auto r = make_record(explain::DecisionKind::kSchedAdmission, "job \"big\"", "reject", 1.0,
                       {{"admit", 4.0}});
  r.detail = "line1\nline2";
  r.work = 3;
  led.append(r);
  led.append(make_record(explain::DecisionKind::kPartition, "job", "2x1x1", 0.5));
  led.append(make_record(explain::DecisionKind::kPartition, "job", "1x2x1", 0.5));  // evicts #0

  std::ostringstream os;
  led.write_json(os, "unit");
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\": \"explain-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"total_recorded\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"partition\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"sched-admission\": 1"), std::string::npos);
  // The evicted record is gone from the records array but not the counts.
  EXPECT_EQ(doc.find("job \\\"big\\\""), std::string::npos);
  EXPECT_NE(doc.find("\"chosen\": \"2x1x1\""), std::string::npos);

  // Deterministic: a second export is byte-identical.
  std::ostringstream again;
  led.write_json(again, "unit");
  EXPECT_EQ(doc, again.str());
}

TEST(Ledger, WriteJsonEscapesQuotesAndNewlines) {
  explain::Ledger led(4);
  auto r = make_record(explain::DecisionKind::kDemotion, "tag \"7\"", "fall\\back", 2.0,
                       {{"keep", 1.0}});  // chosen was NOT the argmin: delta -1
  r.detail = "why:\nbecause";
  led.append(r);
  std::ostringstream os;
  led.write_json(os, "esc");
  const std::string doc = os.str();
  EXPECT_NE(doc.find("tag \\\"7\\\""), std::string::npos);
  EXPECT_NE(doc.find("fall\\\\back"), std::string::npos);
  EXPECT_NE(doc.find("why:\\nbecause"), std::string::npos);
  EXPECT_NE(doc.find("\"score_delta\": -1"), std::string::npos);
}

TEST(Ledger, WriteReportGroupsByKindAndShowsRepeats) {
  explain::Ledger led(8);
  const auto a = led.append(make_record(explain::DecisionKind::kPlanCompile, "plan epoch 0",
                                        "compile", 0.0));
  led.bump(a);
  led.bump(a);
  auto r = make_record(explain::DecisionKind::kPlacement, "node 0", "qap", 7.0,
                       {{"swapped", 13.0}});
  r.work = 5;
  led.append(r);
  std::ostringstream os;
  led.write_report(os);
  const std::string rep = os.str();
  EXPECT_NE(rep.find("2 recorded, 2 retained"), std::string::npos);
  EXPECT_NE(rep.find("[placement] x1"), std::string::npos);
  EXPECT_NE(rep.find("[plan-compile] x1"), std::string::npos);
  EXPECT_NE(rep.find("x3"), std::string::npos);  // 1 compile + 2 cache hits
  EXPECT_NE(rep.find("rejected \"swapped\" (score 13, delta 6)"), std::string::npos);
  EXPECT_NE(rep.find("work: 5 candidates evaluated"), std::string::npos);
}

TEST(WhatIf, PredictHealthySubtractsWorstLaneDelta) {
  // Worst lane: 2 ms/exchange of wire at factor 4 -> healthy 0.5 ms.
  // Predicted = 5 ms - (2 - 0.5) = 3.5 ms. The lighter lane never wins the max.
  const std::vector<explain::LaneObservation> lanes = {
      {0, 1, 8.0e6, 4.0},  // 8 ms over 4 exchanges
      {1, 0, 2.0e6, 10.0},
  };
  EXPECT_NEAR(explain::predict_healthy_exchange_ms(5.0, 4, lanes), 3.5, 1e-12);
}

TEST(WhatIf, PredictHealthyEdgeCases) {
  // No exchanges or no lanes: nothing to subtract.
  EXPECT_DOUBLE_EQ(explain::predict_healthy_exchange_ms(2.5, 0, {{0, 1, 1e9, 2.0}}), 2.5);
  EXPECT_DOUBLE_EQ(explain::predict_healthy_exchange_ms(2.5, 4, {}), 2.5);
  // Factors below 1 are clamped: a healthy lane subtracts nothing.
  EXPECT_DOUBLE_EQ(explain::predict_healthy_exchange_ms(2.5, 1, {{0, 1, 4.0e5, 0.5}}), 2.5);
  // The subtraction never predicts a negative latency.
  EXPECT_DOUBLE_EQ(explain::predict_healthy_exchange_ms(0.5, 1, {{0, 1, 9.0e6, 100.0}}), 0.0);
}

TEST(WhatIf, RescoreIdentityReproducesRecordedObjective) {
  const auto rec = placement_record();
  const auto same = explain::rescore_placement(rec, [](int, int) { return 1.0; });
  EXPECT_FALSE(same.flipped);
  EXPECT_EQ(same.winner, "chosen");
  EXPECT_DOUBLE_EQ(same.chosen_cost, rec.chosen_score);
  EXPECT_DOUBLE_EQ(same.delta, 0.0);
}

TEST(WhatIf, RescoreFlipsWinnerUnderAsymmetricDegradation) {
  const auto rec = placement_record();
  // Make the cheap direction (0 -> 1) 10x more expensive: chosen cost
  // becomes 4*10 + 1*3 = 43, swapped becomes 4*3 + 1*10 = 22 -> flip.
  const auto hit = explain::rescore_placement(
      rec, [](int i, int j) { return i == 0 && j == 1 ? 10.0 : 1.0; });
  EXPECT_TRUE(hit.flipped);
  EXPECT_EQ(hit.winner, "swapped");
  EXPECT_DOUBLE_EQ(hit.chosen_cost, 43.0);
  EXPECT_DOUBLE_EQ(hit.winner_cost, 22.0);
  EXPECT_DOUBLE_EQ(hit.delta, 21.0);
}

TEST(WhatIf, RescoreThrowsWithoutEvidence) {
  const auto bare = make_record(explain::DecisionKind::kPlacement, "node 0", "greedy", 1.0);
  EXPECT_THROW(explain::rescore_placement(bare, [](int, int) { return 1.0; }),
               std::invalid_argument);
}
