#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "simpi/mpi.h"
#include "topo/archetype.h"
#include "trace/recorder.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace vgpu = stencil::vgpu;
namespace simpi = stencil::simpi;
namespace fault = stencil::fault;
namespace trace = stencil::trace;

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::LocalDomain;
using stencil::Method;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::PlacementStrategy;
using stencil::RankCtx;

namespace {

// ---------------------------------------------------------------------------
// Injector unit tests: every query is a pure function of (plan, t).
// ---------------------------------------------------------------------------

TEST(FaultInjector, DegradeWindowAndWildcards) {
  fault::FaultPlan plan;
  plan.degrade_link(100, fault::LinkClass::kNic, 0, 1, 0.25, 200)
      .degrade_link(150, fault::LinkClass::kNic, -1, -1, 0.5, 300);
  fault::Injector inj(plan);

  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kNic, 0, 1, 99), 1.0);
  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kNic, 0, 1, 100), 0.25);
  // Overlapping windows take the worst (minimum) scale.
  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kNic, 0, 1, 199), 0.25);
  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kNic, 0, 1, 200), 0.5);
  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kNic, 0, 1, 300), 1.0);
  // Wildcard event matches other id pairs; the targeted one does not.
  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kNic, 3, 4, 160), 0.5);
  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kNic, 3, 4, 120), 1.0);
  // Other link classes are untouched.
  EXPECT_DOUBLE_EQ(inj.link_scale(fault::LinkClass::kXBus, 0, -1, 160), 1.0);
}

TEST(FaultInjector, FailedLinkIsDown) {
  fault::FaultPlan plan;
  plan.fail_link(50, fault::LinkClass::kNic, 0, 1, 150);
  fault::Injector inj(plan);
  EXPECT_FALSE(inj.link_down(fault::LinkClass::kNic, 0, 1, 49));
  EXPECT_TRUE(inj.link_down(fault::LinkClass::kNic, 0, 1, 50));
  EXPECT_TRUE(inj.link_down(fault::LinkClass::kNic, 0, 1, 149));
  EXPECT_FALSE(inj.link_down(fault::LinkClass::kNic, 0, 1, 150));
  EXPECT_FALSE(inj.link_down(fault::LinkClass::kNic, 1, 0, 100));  // directional
}

TEST(FaultInjector, PeerRevocationIsPermanentAndSymmetric) {
  fault::FaultPlan plan;
  plan.revoke_peer(1000, 2, 5);
  fault::Injector inj(plan);
  EXPECT_FALSE(inj.peer_revoked(2, 5, 999));
  EXPECT_TRUE(inj.peer_revoked(2, 5, 1000));
  EXPECT_TRUE(inj.peer_revoked(5, 2, 1000));  // symmetric
  EXPECT_TRUE(inj.peer_revoked(2, 5, fault::kForever));  // never restored
  EXPECT_FALSE(inj.peer_revoked(2, 4, 2000));
}

TEST(FaultInjector, IpcStaleOnlyForMappingsOpenBeforeEvent) {
  fault::FaultPlan plan;
  plan.invalidate_ipc(500, 1);
  fault::Injector inj(plan);
  // Opened before the event, queried after: stale.
  EXPECT_TRUE(inj.ipc_stale(1, 100, 600));
  EXPECT_FALSE(inj.ipc_stale(1, 100, 499));  // event not yet fired
  // Opened after the event: a fresh mapping is fine.
  EXPECT_FALSE(inj.ipc_stale(1, 501, 1000));
  // Different node untouched; wildcard-node plans hit everyone.
  EXPECT_FALSE(inj.ipc_stale(0, 100, 600));
  fault::FaultPlan all;
  all.invalidate_ipc(500);
  EXPECT_TRUE(fault::Injector(all).ipc_stale(3, 0, 500));
}

TEST(FaultInjector, DeviceSlowAndCudaAwareWindows) {
  fault::FaultPlan plan;
  plan.slow_device(10, 3, 0.1, 20).disable_cuda_aware(100, 200);
  fault::Injector inj(plan);
  EXPECT_DOUBLE_EQ(inj.device_scale(3, 15), 0.1);
  EXPECT_DOUBLE_EQ(inj.device_scale(3, 20), 1.0);
  EXPECT_DOUBLE_EQ(inj.device_scale(2, 15), 1.0);
  EXPECT_FALSE(inj.cuda_aware_disabled(99));
  EXPECT_TRUE(inj.cuda_aware_disabled(100));
  EXPECT_TRUE(inj.cuda_aware_disabled(199));
  EXPECT_FALSE(inj.cuda_aware_disabled(200));
}

TEST(FaultInjector, RejectsMalformedEvents) {
  fault::FaultPlan plan;
  EXPECT_THROW(plan.degrade_link(100, fault::LinkClass::kNic, 0, 1, 0.5, 50),
               std::invalid_argument);  // window ends before it starts
  EXPECT_THROW(plan.slow_device(0, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(plan.drop_messages(0, 10, 0, 1, -0.5), std::invalid_argument);
  EXPECT_THROW(plan.delay_messages(0, 10, 0, 1, -5), std::invalid_argument);
  fault::RetryPolicy bad;
  bad.timeout = -1;
  EXPECT_THROW(plan.set_retry_policy(bad), std::invalid_argument);
}

TEST(FaultInjector, DropDecisionsAreDeterministic) {
  fault::FaultPlan plan;
  plan.drop_messages(0, fault::kForever, -1, -1, 0.5).set_seed(42);
  fault::Injector a(plan);
  fault::Injector b(plan);  // independent instance, same plan

  int drops = 0;
  for (int tag = 0; tag < 200; ++tag) {
    const bool da = a.message_dropped(0, 1, 0, 6, tag, 0, 1000 + tag);
    // Same tuple, same plan: bit-identical decision, across instances and
    // across repeated queries (no hidden RNG stream).
    EXPECT_EQ(da, b.message_dropped(0, 1, 0, 6, tag, 0, 1000 + tag));
    EXPECT_EQ(da, a.message_dropped(0, 1, 0, 6, tag, 0, 1000 + tag));
    drops += da;
  }
  // p=0.5 over 200 tuples: the hash behaves like a coin, not a constant.
  EXPECT_GT(drops, 50);
  EXPECT_LT(drops, 150);

  // Probability 1 drops everything inside the window, nothing outside it.
  fault::FaultPlan certain;
  certain.drop_messages(100, 200, 0, 1, 1.0);
  fault::Injector c(certain);
  EXPECT_TRUE(c.message_dropped(0, 1, 0, 6, 7, 0, 150));
  EXPECT_FALSE(c.message_dropped(0, 1, 0, 6, 7, 0, 99));
  EXPECT_FALSE(c.message_dropped(0, 1, 0, 6, 7, 0, 200));
  EXPECT_FALSE(c.message_dropped(1, 0, 6, 0, 7, 0, 150));  // other direction
}

TEST(FaultInjector, DelayQueryTakesMaxOfActiveWindows) {
  fault::FaultPlan plan;
  plan.delay_messages(0, 100, 0, 1, 30).delay_messages(50, 200, -1, -1, 70);
  fault::Injector inj(plan);
  EXPECT_EQ(inj.message_delay(0, 1, 10), 30);
  EXPECT_EQ(inj.message_delay(0, 1, 60), 70);  // overlapping: max wins
  EXPECT_EQ(inj.message_delay(0, 1, 150), 70);
  EXPECT_EQ(inj.message_delay(0, 1, 200), 0);
  EXPECT_EQ(inj.message_delay(2, 3, 60), 70);  // wildcard
  EXPECT_EQ(inj.message_delay(2, 3, 10), 0);
}

TEST(FaultInjector, ActiveOnlyWithEventsOrRetry) {
  EXPECT_FALSE(fault::Injector(fault::FaultPlan{}).active());
  fault::FaultPlan events;
  events.slow_device(0, -1, 0.5);
  EXPECT_TRUE(fault::Injector(events).active());
  fault::FaultPlan retry_only;
  retry_only.set_retry_policy({sim::kMillisecond, 3, sim::kMicrosecond});
  EXPECT_TRUE(fault::Injector(retry_only).active());
}

TEST(FaultInjector, RecorderGetsEveryScriptedEvent) {
  fault::FaultPlan plan;
  plan.revoke_peer(100, 0, 1).degrade_link(200, fault::LinkClass::kNic, -1, -1, 0.5, 400);
  fault::Injector inj(plan);
  trace::Recorder rec;
  inj.set_recorder(&rec);
  ASSERT_EQ(rec.records().size(), 2u);
  for (const auto& r : rec.records()) EXPECT_EQ(r.lane, "fault");
  EXPECT_NE(rec.records()[0].label.find("peer-revoke"), std::string::npos);
  EXPECT_NE(rec.records()[1].label.find("link-degrade"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine: timed gate waits and structured deadlock diagnostics.
// ---------------------------------------------------------------------------

TEST(FaultEngine, GateWaitUntilTimesOutAtDeadline) {
  sim::Engine eng;
  sim::Gate gate("g");
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    EXPECT_FALSE(gate.wait_until(eng, 100 * sim::kMicrosecond, "never notified"));
    EXPECT_EQ(eng.now(), 100 * sim::kMicrosecond);
    // A deadline in the past returns immediately without rescheduling.
    EXPECT_FALSE(gate.wait_until(eng, 50 * sim::kMicrosecond));
    EXPECT_EQ(eng.now(), 100 * sim::kMicrosecond);
  });
  eng.run(std::move(bodies));
}

TEST(FaultEngine, GateWaitUntilWakesOnNotify) {
  sim::Engine eng;
  sim::Gate gate("g");
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    EXPECT_TRUE(gate.wait_until(eng, sim::kSecond, "waiting for pal"));
    EXPECT_EQ(eng.now(), 30 * sim::kMicrosecond);  // notifier's time, not deadline
  });
  bodies.push_back([&] {
    eng.sleep_for(30 * sim::kMicrosecond);
    gate.notify_all(eng);
  });
  eng.run(std::move(bodies));
}

TEST(FaultEngine, DeadlockReportNamesActorsAndDetails) {
  sim::Engine eng;
  sim::Gate ga("gate-a");
  sim::Gate gb("gate-b");
  bool watchdog_fired = false;
  sim::DeadlockReport observed;
  eng.set_watchdog([&](const sim::DeadlockReport& r) {
    watchdog_fired = true;
    observed = r;
  });
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] { ga.wait(eng, "token 17"); });
  bodies.push_back([&] { gb.wait(eng, "token 18"); });
  try {
    eng.run(std::move(bodies), {"alice", "bob"});
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const sim::DeadlockReport& rep = e.report();
    ASSERT_EQ(rep.actors.size(), 2u);
    auto find = [&](const std::string& name) {
      auto it = std::find_if(rep.actors.begin(), rep.actors.end(),
                             [&](const sim::BlockedActorInfo& a) { return a.actor == name; });
      EXPECT_NE(it, rep.actors.end()) << "missing actor " << name;
      return it;
    };
    auto a = find("alice");
    EXPECT_EQ(a->resource, "gate-a");
    EXPECT_EQ(a->detail, "token 17");
    auto b = find("bob");
    EXPECT_EQ(b->resource, "gate-b");
    EXPECT_EQ(b->detail, "token 18");
    // The flat message carries the same diagnostics.
    const std::string what = e.what();
    EXPECT_NE(what.find("alice"), std::string::npos);
    EXPECT_NE(what.find("gate-b"), std::string::npos);
    EXPECT_NE(what.find("token 17"), std::string::npos);
  }
  EXPECT_TRUE(watchdog_fired);
  EXPECT_EQ(observed.actors.size(), 2u);
}

// ---------------------------------------------------------------------------
// simpi under faults: timeouts, retries, delays, and NIC degradation.
// ---------------------------------------------------------------------------

struct World {
  sim::Engine eng;
  topo::Machine machine;
  vgpu::Runtime runtime;
  simpi::Job job;
  World(int nodes, int ranks_per_node, topo::NodeArchetype arch = topo::summit())
      : machine(std::move(arch), nodes),
        runtime(eng, machine),
        job(eng, machine, runtime, ranks_per_node) {}
};

TEST(FaultSimpi, UnmatchedWaitTimesOutWithStructuredError) {
  fault::FaultPlan plan;
  plan.set_retry_policy({sim::kMillisecond, 2, 100 * sim::kMicrosecond});
  fault::Injector inj(plan);
  World w(1, 2);
  w.machine.set_fault_injector(&inj);
  try {
    w.job.run([](simpi::Comm& comm) {
      if (comm.rank() == 0) {
        int v = 0;
        comm.recv(simpi::Payload::of_values(&v, 1), 1, 9);  // nobody sends tag 9
      }
    });
    FAIL() << "expected TransportError";
  } catch (const simpi::TransportError& e) {
    EXPECT_EQ(e.code(), simpi::TransportError::Code::kTimeout);
    EXPECT_EQ(e.peer(), 1);
    EXPECT_EQ(e.tag(), 9);
  }
}

TEST(FaultSimpi, AllRetriesDroppedRaisesRetriesExhausted) {
  fault::FaultPlan plan;
  plan.drop_messages(0, fault::kForever, -1, -1, 1.0)
      .set_retry_policy({sim::kMillisecond, 2, 100 * sim::kMicrosecond});
  fault::Injector inj(plan);
  World w(1, 2);
  w.machine.set_fault_injector(&inj);
  try {
    w.job.run([](simpi::Comm& comm) {
      std::vector<char> buf(128 * 1024);  // above the eager limit: both sides fail
      if (comm.rank() == 0) {
        comm.send(simpi::Payload::of_values(buf.data(), buf.size()), 1, 4);
      } else {
        comm.recv(simpi::Payload::of_values(buf.data(), buf.size()), 0, 4);
      }
    });
    FAIL() << "expected TransportError";
  } catch (const simpi::TransportError& e) {
    EXPECT_EQ(e.code(), simpi::TransportError::Code::kRetriesExhausted);
    EXPECT_EQ(e.tag(), 4);
  }
}

TEST(FaultSimpi, DropThenRetryDeliversIntactPayload) {
  // Every attempt inside [0, 2ms) is lost; the retransmission that lands
  // after the window goes through. The receiver sees the original payload.
  fault::FaultPlan plan;
  plan.drop_messages(0, 2 * sim::kMillisecond, -1, -1, 1.0)
      .set_retry_policy({sim::kMillisecond, 5, 0});
  fault::Injector inj(plan);
  trace::Recorder rec;
  World w(1, 2);
  w.machine.set_fault_injector(&inj);
  w.job.set_recorder(&rec);
  w.job.run([](simpi::Comm& comm) {
    std::vector<int> data(1024);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(3 * i + 1);
      comm.send(simpi::Payload::of_values(data.data(), data.size()), 1, 6);
    } else {
      comm.recv(simpi::Payload::of_values(data.data(), data.size()), 0, 6);
      EXPECT_GE(sim::Engine::current()->now(), 2 * sim::kMillisecond);
      for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data[i], static_cast<int>(3 * i + 1)) << "corrupt at " << i;
      }
    }
  });
  // The lost attempts are visible on the trace.
  const bool saw_drop = std::any_of(rec.records().begin(), rec.records().end(),
                                    [](const trace::OpRecord& r) {
                                      return r.label.find("drop tag=6") != std::string::npos;
                                    });
  EXPECT_TRUE(saw_drop);
}

TEST(FaultSimpi, InjectedDelayShiftsDeliveryExactly) {
  const sim::Duration extra = 300 * sim::kMicrosecond;
  auto timed_run = [](const fault::Injector* inj) {
    World w(2, 1);
    if (inj) w.machine.set_fault_injector(inj);
    sim::Duration elapsed = 0;
    w.job.run([&](simpi::Comm& comm) {
      std::vector<char> buf(1 << 20);
      const double t0 = comm.wtime();
      if (comm.rank() == 0) {
        comm.send(simpi::Payload::of_values(buf.data(), buf.size()), 1, 0);
      } else {
        comm.recv(simpi::Payload::of_values(buf.data(), buf.size()), 0, 0);
        elapsed = sim::from_seconds(comm.wtime() - t0);
      }
    });
    return elapsed;
  };
  const sim::Duration base = timed_run(nullptr);
  fault::FaultPlan plan;
  plan.delay_messages(0, fault::kForever, 0, 1, extra);
  fault::Injector inj(plan);
  const sim::Duration delayed = timed_run(&inj);
  EXPECT_EQ(delayed, base + extra);  // virtual time: the shift is exact
}

TEST(FaultSimpi, DegradedNicSlowsInterNodeTransfer) {
  auto timed_run = [](const fault::Injector* inj) {
    World w(2, 1);
    if (inj) w.machine.set_fault_injector(inj);
    sim::Duration elapsed = 0;
    w.job.run([&](simpi::Comm& comm) {
      std::vector<char> buf(8 << 20);
      const double t0 = comm.wtime();
      if (comm.rank() == 0) {
        comm.send(simpi::Payload::of_values(buf.data(), buf.size()), 1, 0);
      } else {
        comm.recv(simpi::Payload::of_values(buf.data(), buf.size()), 0, 0);
        elapsed = sim::from_seconds(comm.wtime() - t0);
      }
    });
    return elapsed;
  };
  const sim::Duration base = timed_run(nullptr);
  fault::FaultPlan plan;
  plan.degrade_link(0, fault::LinkClass::kNic, -1, -1, 0.25);
  fault::Injector inj(plan);
  const sim::Duration degraded = timed_run(&inj);
  EXPECT_GT(degraded, 2 * base);  // 4x less bandwidth, minus latency terms
}

TEST(FaultSimpi, SlowedDeviceStretchesKernels) {
  auto timed_kernel = [](const fault::Injector* inj) {
    sim::Engine eng;
    topo::Machine m(topo::summit(), 1);
    if (inj) m.set_fault_injector(inj);
    vgpu::Runtime rt(eng, m);
    sim::Duration d = 0;
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      auto s = rt.create_stream(0);
      const sim::Time t0 = eng.now();
      rt.launch_kernel(s, 64 << 20, "bulk", nullptr);
      rt.stream_synchronize(s);
      d = eng.now() - t0;
    });
    eng.run(std::move(bodies));
    return d;
  };
  const sim::Duration base = timed_kernel(nullptr);
  fault::FaultPlan plan;
  plan.slow_device(0, 0, 0.25);
  fault::Injector inj(plan);
  const sim::Duration slowed = timed_kernel(&inj);
  EXPECT_GT(slowed, 3 * base);
  // A device outside the event is unaffected -- scale clamps are per-gpu.
  fault::FaultPlan other;
  other.slow_device(0, 5, 0.25);
  fault::Injector other_inj(other);
  EXPECT_EQ(timed_kernel(&other_inj), base);
}

// Satellite: message storms under injected delay and drop-and-retry keep
// per-(src, tag) order and payload integrity.
TEST(FaultSimpi, StormUnderDropAndDelayKeepsOrderAndIntegrity) {
  fault::FaultPlan plan;
  plan.drop_messages(0, fault::kForever, -1, -1, 0.25)
      .delay_messages(0, fault::kForever, 0, 1, 200 * sim::kMicrosecond)
      .set_seed(0xbadcafe)
      .set_retry_policy({sim::kMillisecond, 8, 50 * sim::kMicrosecond});
  fault::Injector inj(plan);
  trace::Recorder rec;
  World w(2, 2);  // 4 ranks across 2 nodes
  w.machine.set_fault_injector(&inj);
  w.job.set_recorder(&rec);

  constexpr int kMsgs = 12;
  constexpr int kTags[] = {3, 4};
  constexpr std::size_t kLen = 96;
  const auto stamp = [](int src, int tag, int seq, std::size_t i) {
    return src * 1'000'000 + tag * 10'000 + seq * 100 + static_cast<int>(i % 97);
  };

  w.job.run([&](simpi::Comm& comm) {
    const int me = comm.rank();
    // Blast every message to every other rank up front (eager sends).
    std::vector<std::vector<int>> out;
    std::vector<simpi::Request> reqs;
    for (int dst = 0; dst < comm.size(); ++dst) {
      if (dst == me) continue;
      for (int tag : kTags) {
        for (int seq = 0; seq < kMsgs; ++seq) {
          out.emplace_back(kLen);
          for (std::size_t i = 0; i < kLen; ++i) out.back()[i] = stamp(me, tag, seq, i);
          reqs.push_back(comm.isend(simpi::Payload::of_values(out.back().data(), kLen), dst, tag));
        }
      }
    }
    // Drain in per-(src, tag) sequence order, interleaving sources: each
    // arrival must be the next undelivered message of its stream.
    for (int seq = 0; seq < kMsgs; ++seq) {
      for (int src = 0; src < comm.size(); ++src) {
        if (src == me) continue;
        for (int tag : kTags) {
          std::vector<int> in(kLen, -1);
          comm.recv(simpi::Payload::of_values(in.data(), kLen), src, tag);
          for (std::size_t i = 0; i < kLen; ++i) {
            ASSERT_EQ(in[i], stamp(src, tag, seq, i))
                << "src " << src << " tag " << tag << " seq " << seq << " elem " << i;
          }
        }
      }
    }
    comm.waitall(reqs);
  });
  // The plan really dropped messages: retries are on the trace.
  const bool saw_drop = std::any_of(rec.records().begin(), rec.records().end(),
                                    [](const trace::OpRecord& r) {
                                      return r.label.find("drop tag=") != std::string::npos;
                                    });
  EXPECT_TRUE(saw_drop);
}

// ---------------------------------------------------------------------------
// Exchange-layer degradation: the acceptance scenario.
// ---------------------------------------------------------------------------

float expected_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill_interior(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z) {
        for (std::int64_t y = 0; y < ld.size().y; ++y) {
          for (std::int64_t x = 0; x < ld.size().x; ++x) {
            v(x, y, z) = expected_value({o.x + x, o.y + y, o.z + z}, q);
          }
        }
      }
    }
  });
}

int verify_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq) {
  int failures = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z) {
        for (std::int64_t y = -r; y < sz.y + r; ++y) {
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            const bool interior =
                x >= 0 && x < sz.x && y >= 0 && y < sz.y && z >= 0 && z < sz.z;
            if (interior) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            const float want = expected_value(g, q);
            if (v(x, y, z) != want && failures < 5) {
              ADD_FAILURE() << "halo [" << x << "," << y << "," << z << "] q" << q << " = "
                            << v(x, y, z) << ", want " << want;
            }
            failures += v(x, y, z) != want;
          }
        }
      }
    }
  });
  return failures;
}

int histogram_count(const std::map<Method, int>& h, Method m) {
  auto it = h.find(m);
  return it == h.end() ? 0 : it->second;
}

// The Fig.-12a-style drill: a single-node job loses peer access and every
// established IPC mapping mid-run. Exchanges keep completing with bit-exact
// halos; the histogram shows the demotions; the trace names them.
TEST(FaultExchange, PeerAndIpcLossMidRunStaysBitExact) {
  const sim::Time t_fault = sim::from_seconds(1.0);
  const Dim3 domain{48, 48, 48};
  fault::FaultPlan plan;
  plan.revoke_peer(t_fault, -1, -1).invalidate_ipc(t_fault);
  fault::Injector inj(plan);
  trace::Recorder rec;
  inj.set_recorder(&rec);

  Cluster cluster(topo::summit(), 1, 2);
  cluster.set_recorder(&rec);
  cluster.set_fault_injector(&inj);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();

    // Healthy epoch: PEER and COLOCATED transfers are in play.
    const auto before = dd.local_method_histogram();
    EXPECT_GT(histogram_count(before, Method::kPeer), 0);
    EXPECT_GT(histogram_count(before, Method::kColocated), 0);
    fill_interior(dd, 2);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(verify_halos(dd, domain, 2), 0);
    EXPECT_EQ(dd.local_method_histogram(), before);  // nothing demoted yet

    // Cross the fault instant, then keep exchanging.
    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    for (int it = 0; it < 2; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 2), 0) << "post-fault iteration " << it;
    }

    // Every PEER pair lost its capability and landed on STAGED; the stale
    // IPC mappings pushed COLOCATED down too.
    const auto after = dd.local_method_histogram();
    EXPECT_EQ(histogram_count(after, Method::kPeer), 0);
    EXPECT_EQ(histogram_count(after, Method::kColocated), 0);
    EXPECT_GT(histogram_count(after, Method::kStaged),
              histogram_count(before, Method::kStaged));
  });

  // The trace carries both the scripted faults and the demotion decisions.
  int fault_events = 0;
  int demotions = 0;
  for (const auto& r : rec.records()) {
    if (r.lane != "fault") continue;
    if (r.label.find("demote tag=") != std::string::npos) {
      ++demotions;
      EXPECT_GE(r.start, t_fault);
    } else {
      ++fault_events;
    }
  }
  EXPECT_EQ(fault_events, 2);  // peer-revoke + ipc-invalidate
  EXPECT_GT(demotions, 0);
}

TEST(FaultExchange, CudaAwareDisableDemotesRemoteTransfers) {
  const sim::Time t_fault = sim::from_seconds(1.0);
  const Dim3 domain{48, 48, 48};
  fault::FaultPlan plan;
  plan.disable_cuda_aware(t_fault);
  fault::Injector inj(plan);

  Cluster cluster(topo::summit(), 2, 1);
  cluster.set_fault_injector(&inj);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.set_methods(MethodFlags::kAllCudaAware | MethodFlags::kStaged);
    dd.realize();

    const auto before = dd.local_method_histogram();
    EXPECT_GT(histogram_count(before, Method::kCudaAwareMpi), 0);
    fill_interior(dd, 1);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(verify_halos(dd, domain, 1), 0);

    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    fill_interior(dd, 1);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(verify_halos(dd, domain, 1), 0);

    const auto after = dd.local_method_histogram();
    EXPECT_EQ(histogram_count(after, Method::kCudaAwareMpi), 0);
    EXPECT_GT(histogram_count(after, Method::kStaged), 0);
  });
}

TEST(FaultExchange, InactiveInjectorLeavesTimingUntouched) {
  const Dim3 domain{32, 32, 32};
  auto run_once = [&](const fault::Injector* inj) {
    Cluster cluster(topo::summit(), 1, 2);
    if (inj) cluster.set_fault_injector(inj);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, domain);
      dd.set_radius(1);
      dd.add_data<float>("a");
      dd.set_methods(MethodFlags::kAll);
      dd.realize();
      fill_interior(dd, 1);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 1), 0);
    });
    return cluster.engine().now();
  };
  const sim::Time base = run_once(nullptr);
  fault::Injector empty{fault::FaultPlan{}};
  EXPECT_EQ(run_once(&empty), base);  // an empty plan perturbs nothing
}

// Same plan + same seed => the same virtual-time history, record for record.
TEST(FaultExchange, FaultScheduleIsDeterministic) {
  const Dim3 domain{48, 48, 48};
  auto run_once = [&]() {
    fault::FaultPlan plan;
    plan.revoke_peer(sim::from_seconds(1.0), -1, -1)
        .invalidate_ipc(sim::from_seconds(1.0))
        .set_seed(0x5eed);
    fault::Injector inj(plan);
    trace::Recorder rec;
    inj.set_recorder(&rec);
    Cluster cluster(topo::summit(), 1, 2);
    cluster.set_recorder(&rec);
    cluster.set_fault_injector(&inj);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, domain);
      dd.set_radius(1);
      dd.add_data<float>("a");
      dd.set_methods(MethodFlags::kAll);
      dd.realize();
      for (int it = 0; it < 2; ++it) {
        fill_interior(dd, 1);
        ctx.comm.barrier();
        dd.exchange();
        ctx.comm.barrier();
        if (it == 0) ctx.engine().sleep_until(sim::from_seconds(1.0) + sim::kMicrosecond);
      }
    });
    return rec.records();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lane, b[i].lane) << "record " << i;
    EXPECT_EQ(a[i].label, b[i].label) << "record " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "record " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "record " << i;
  }
}

}  // namespace
