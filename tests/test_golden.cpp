// Golden regression tests: the simulation is fully deterministic, so each
// configuration's exchange time is an exact function of the cost model and
// the exchange engine. These pins catch *unintentional* changes; when the
// model is deliberately recalibrated, regenerate the numbers with
//   examples/exchange_explorer <config> --csv
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

using stencil::Boundary;
using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::MethodFlags;
using stencil::RankCtx;

namespace {

struct GoldenCase {
  const char* name;
  int nodes;
  int rpn;
  Dim3 domain;
  MethodFlags flags;
  Boundary boundary;
  double expect_ms;
};

double measure(const GoldenCase& c) {
  Cluster cluster(stencil::topo::summit(), c.nodes, c.rpn);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  std::vector<double> t(static_cast<std::size_t>(c.nodes) * c.rpn, 0.0);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, c.domain);
    dd.set_radius(3);
    for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(c.flags);
    dd.set_boundary(c.boundary);
    dd.realize();
    ctx.comm.barrier();
    dd.exchange();  // warm-up
    double total = 0.0;
    for (int it = 0; it < 3; ++it) {
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      total += ctx.comm.wtime() - t0;
    }
    t[static_cast<std::size_t>(ctx.rank())] = total / 3.0;
  });
  return *std::max_element(t.begin(), t.end()) * 1e3;
}

class Golden : public ::testing::TestWithParam<GoldenCase> {};

}  // namespace

TEST_P(Golden, ExchangeTimePinned) {
  const auto& c = GetParam();
  const double ms = measure(c);
  // Exactly reproducible; 0.5% headroom only for float accumulation in the
  // wtime averaging.
  EXPECT_NEAR(ms, c.expect_ms, c.expect_ms * 0.005) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Pins, Golden,
    ::testing::Values(
        GoldenCase{"1n6r_all", 1, 6, {1363, 1363, 1363}, MethodFlags::kAll,
                   Boundary::kPeriodic, 6.549194},
        GoldenCase{"1n1r_staged", 1, 1, {1363, 1363, 1363}, MethodFlags::kStaged,
                   Boundary::kPeriodic, 102.787309},
        GoldenCase{"2n6r_all", 2, 6, {1717, 1717, 1717}, MethodFlags::kAll,
                   Boundary::kPeriodic, 15.048666},
        GoldenCase{"4n6r_ca", 4, 6, {512, 512, 512},
                   MethodFlags::kStaged | MethodFlags::kCudaAwareMpi, Boundary::kPeriodic,
                   3.596069},
        GoldenCase{"1n2r_staged", 1, 2, {720, 720, 720}, MethodFlags::kStaged,
                   Boundary::kPeriodic, 19.985326},
        GoldenCase{"2n3r_fixed", 2, 3, {900, 900, 900}, MethodFlags::kAll, Boundary::kFixed,
                   2.357243}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) { return info.param.name; });
