#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "simtime/engine.h"

namespace sim = stencil::sim;

TEST(Engine, SingleActorAdvancesTime) {
  sim::Engine eng;
  sim::Time seen = -1;
  eng.run({[&] {
    EXPECT_EQ(sim::Engine::current()->now(), 0);
    sim::Engine::current()->sleep_for(100);
    seen = sim::Engine::current()->now();
  }});
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(eng.now(), 100);
}

TEST(Engine, SleepUntilPastIsNoop) {
  sim::Engine eng;
  eng.run({[&] {
    auto* e = sim::Engine::current();
    e->sleep_for(50);
    e->sleep_until(10);  // already past
    EXPECT_EQ(e->now(), 50);
  }});
}

TEST(Engine, NegativeOrZeroSleepIsNoop) {
  sim::Engine eng;
  eng.run({[&] {
    auto* e = sim::Engine::current();
    e->sleep_for(0);
    e->sleep_for(-5);
    EXPECT_EQ(e->now(), 0);
  }});
}

TEST(Engine, TwoActorsInterleaveDeterministically) {
  sim::Engine eng;
  std::vector<std::string> log;
  eng.run({[&] {
             auto* e = sim::Engine::current();
             log.push_back("a0@" + std::to_string(e->now()));
             e->sleep_for(10);
             log.push_back("a0@" + std::to_string(e->now()));
             e->sleep_for(20);  // wakes at 30
             log.push_back("a0@" + std::to_string(e->now()));
           },
           [&] {
             auto* e = sim::Engine::current();
             log.push_back("a1@" + std::to_string(e->now()));
             e->sleep_for(15);
             log.push_back("a1@" + std::to_string(e->now()));
           }});
  const std::vector<std::string> expect = {"a0@0", "a1@0", "a0@10", "a1@15", "a0@30"};
  EXPECT_EQ(log, expect);
}

TEST(Engine, SameWakeTimeBreaksTiesByAdmissionOrder) {
  sim::Engine eng;
  std::vector<int> order;
  std::vector<std::function<void()>> bodies;
  for (int i = 0; i < 5; ++i) {
    bodies.push_back([&order, i] {
      sim::Engine::current()->sleep_until(100);
      order.push_back(i);
    });
  }
  eng.run(std::move(bodies));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, YieldRotatesSameTimeActors) {
  sim::Engine eng;
  std::vector<int> order;
  eng.run({[&] {
             order.push_back(0);
             sim::Engine::current()->yield();
             order.push_back(0);
           },
           [&] {
             order.push_back(1);
             sim::Engine::current()->yield();
             order.push_back(1);
           }});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

TEST(Engine, ActorIdAndName) {
  sim::Engine eng;
  eng.run({[&] {
             EXPECT_EQ(sim::Engine::current()->actor_id(), 0);
             EXPECT_EQ(sim::Engine::current()->actor_name(), "alpha");
           },
           [&] {
             EXPECT_EQ(sim::Engine::current()->actor_id(), 1);
             EXPECT_EQ(sim::Engine::current()->actor_name(), "beta");
           }},
          {"alpha", "beta"});
}

TEST(Engine, TimeContinuesAcrossRuns) {
  sim::Engine eng;
  eng.run({[] { sim::Engine::current()->sleep_for(42); }});
  EXPECT_EQ(eng.now(), 42);
  eng.run({[] {
    EXPECT_EQ(sim::Engine::current()->now(), 42);
    sim::Engine::current()->sleep_for(8);
  }});
  EXPECT_EQ(eng.now(), 50);
}

TEST(Engine, ExceptionInActorPropagatesToRun) {
  sim::Engine eng;
  EXPECT_THROW(eng.run({[] { throw std::runtime_error("boom"); }}), std::runtime_error);
}

TEST(Engine, ExceptionAbortsOtherActors) {
  sim::Engine eng;
  bool other_finished_normally = false;
  try {
    eng.run({[] {
               sim::Engine::current()->sleep_for(10);
               throw std::runtime_error("boom");
             },
             [&] {
               sim::Engine::current()->sleep_for(1000000);
               other_finished_normally = true;
             }});
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_FALSE(other_finished_normally);
}

TEST(Engine, GateWaitAndNotify) {
  sim::Engine eng;
  sim::Gate gate("test");
  bool flag = false;
  std::vector<std::string> log;
  eng.run({[&] {
             auto* e = sim::Engine::current();
             while (!flag) gate.wait(*e);
             log.push_back("woke@" + std::to_string(e->now()));
           },
           [&] {
             auto* e = sim::Engine::current();
             e->sleep_for(500);
             flag = true;
             gate.notify_all(*e);
           }});
  EXPECT_EQ(log, (std::vector<std::string>{"woke@500"}));
}

TEST(Engine, GateDeadlockDetected) {
  sim::Engine eng;
  sim::Gate gate("never");
  EXPECT_THROW(eng.run({[&] { gate.wait(*sim::Engine::current()); }}), sim::DeadlockError);
}

TEST(Engine, GateDeadlockAmongSeveralActors) {
  sim::Engine eng;
  sim::Gate gate("never");
  EXPECT_THROW(eng.run({[&] { gate.wait(*sim::Engine::current()); },
                        [&] { gate.wait(*sim::Engine::current()); },
                        [&] { sim::Engine::current()->sleep_for(5); }}),
               sim::DeadlockError);
}

TEST(Engine, CallsOutsideActorThrow) {
  sim::Engine eng;
  EXPECT_THROW(eng.actor_id(), std::logic_error);
  EXPECT_THROW(eng.sleep_for(5), std::logic_error);
}

TEST(Engine, ManyActorsDeterministicSchedule) {
  // Run the same 50-actor program twice and require identical logs.
  auto run_once = [] {
    sim::Engine eng;
    std::vector<std::string> log;
    std::vector<std::function<void()>> bodies;
    for (int i = 0; i < 50; ++i) {
      bodies.push_back([&log, i] {
        auto* e = sim::Engine::current();
        for (int k = 0; k < 5; ++k) {
          e->sleep_for((i * 7 + k * 13) % 29 + 1);
          log.push_back(std::to_string(i) + ":" + std::to_string(e->now()));
        }
      });
    }
    eng.run(std::move(bodies));
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, ContextSwitchFastPath) {
  // A single actor sleeping repeatedly should not need token handoffs
  // beyond the initial one.
  sim::Engine eng;
  eng.run({[] {
    for (int i = 0; i < 100; ++i) sim::Engine::current()->sleep_for(10);
  }});
  EXPECT_LE(eng.context_switches(), 2u);
}

TEST(TimeFormat, Units) {
  EXPECT_EQ(sim::format_duration(500), "500 ns");
  EXPECT_EQ(sim::format_duration(1500), "1.500 us");
  EXPECT_EQ(sim::format_duration(2500000), "2.500 ms");
  EXPECT_EQ(sim::format_duration(3 * sim::kSecond), "3.000 s");
}

TEST(TimeFormat, TransferTime) {
  // 1 GiB at 1 GiB/s = 1 s.
  EXPECT_EQ(sim::transfer_time(1ull << 30, 1.0), sim::kSecond);
  // Zero bandwidth means free (used for disabled links).
  EXPECT_EQ(sim::transfer_time(12345, 0.0), 0);
}
