#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "simtime/engine.h"
#include "topo/machine.h"
#include "vgpu/runtime.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace vgpu = stencil::vgpu;

namespace {

/// Run `body` as a single simulation actor with a fresh Summit machine.
template <typename F>
void with_runtime(F&& body, int nodes = 1) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), nodes);
  vgpu::Runtime rt(eng, machine);
  eng.run({[&] { body(rt); }});
}

}  // namespace

TEST(Buffer, MaterializedHasData) {
  vgpu::Buffer b(vgpu::MemSpace::kDevice, vgpu::MemMode::kMaterialized, 0, 64, 1);
  ASSERT_NE(b.data(), nullptr);
  b.as<std::uint8_t>()[63] = 7;
  EXPECT_EQ(b.as<std::uint8_t>()[63], 7);
}

TEST(Buffer, PhantomDataThrows) {
  vgpu::Buffer b(vgpu::MemSpace::kDevice, vgpu::MemMode::kPhantom, 0, 64, 1);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_THROW(b.data(), std::logic_error);
}

TEST(Runtime, H2DAndD2HMoveRealBytes) {
  with_runtime([](vgpu::Runtime& rt) {
    auto host = rt.alloc_pinned_host(0, 256);
    auto dev = rt.alloc_device(0, 256);
    auto back = rt.alloc_pinned_host(0, 256);
    std::iota(host.as<std::uint8_t>(), host.as<std::uint8_t>() + 256, 0);
    auto s = rt.create_stream(0);
    rt.memcpy_async(dev, 0, host, 0, 256, s);
    rt.memcpy_async(back, 0, dev, 0, 256, s);
    rt.stream_synchronize(s);
    EXPECT_EQ(std::memcmp(host.data(), back.data(), 256), 0);
  });
}

TEST(Runtime, CopyAdvancesVirtualTime) {
  with_runtime([](vgpu::Runtime& rt) {
    auto* eng = sim::Engine::current();
    auto host = rt.alloc_pinned_host(0, 64 << 20);
    auto dev = rt.alloc_device(0, 64 << 20);
    auto s = rt.create_stream(0);
    const sim::Time t0 = eng->now();
    rt.memcpy_async(dev, 0, host, 0, 64 << 20, s);
    // Async: only the CPU issue cost has elapsed so far.
    EXPECT_LT(eng->now() - t0, 100 * sim::kMicrosecond);
    rt.stream_synchronize(s);
    // 64 MiB over ~39 GiB/s is ~1.6 ms.
    EXPECT_GT(eng->now() - t0, sim::kMillisecond);
  });
}

TEST(Runtime, StreamOrderIsSequential) {
  with_runtime([](vgpu::Runtime& rt) {
    auto s = rt.create_stream(0);
    std::vector<int> order;
    rt.launch_kernel(s, 1 << 20, "first", [&] { order.push_back(1); });
    rt.launch_kernel(s, 1 << 20, "second", [&] { order.push_back(2); });
    const sim::Time f1 = rt.stream_frontier(s);
    rt.launch_kernel(s, 1 << 20, "third", [&] { order.push_back(3); });
    EXPECT_GT(rt.stream_frontier(s), f1);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  });
}

TEST(Runtime, DistinctStreamsOverlap) {
  with_runtime([](vgpu::Runtime& rt) {
    // Two big copies on different devices via different streams overlap:
    // total elapsed ~ one copy, not two.
    auto* eng = sim::Engine::current();
    auto h0 = rt.alloc_pinned_host(0, 64 << 20);
    auto d0 = rt.alloc_device(0, 64 << 20);
    auto h1 = rt.alloc_pinned_host(0, 64 << 20);
    auto d1 = rt.alloc_device(1, 64 << 20);
    auto s0 = rt.create_stream(0);
    auto s1 = rt.create_stream(1);
    const sim::Time t0 = eng->now();
    rt.memcpy_async(d0, 0, h0, 0, 64 << 20, s0);
    rt.memcpy_async(d1, 0, h1, 0, 64 << 20, s1);
    rt.stream_synchronize(s0);
    rt.stream_synchronize(s1);
    const sim::Duration both = eng->now() - t0;

    const sim::Time t1 = eng->now();
    rt.memcpy_async(d0, 0, h0, 0, 64 << 20, s0);
    rt.stream_synchronize(s0);
    const sim::Duration one = eng->now() - t1;
    EXPECT_LT(both, 2 * one);  // overlapped, with only issue-serialization
  });
}

TEST(Runtime, DefaultStreamSerializesDevice) {
  with_runtime([](vgpu::Runtime& rt) {
    auto s = rt.create_stream(0);
    auto def = rt.default_stream(0);
    rt.launch_kernel(s, 32 << 20, "app", nullptr);
    const sim::Time app_end = rt.stream_frontier(s);
    // Work on the legacy default stream cannot start before the app kernel
    // finishes...
    rt.launch_kernel(def, 1 << 10, "lib", nullptr);
    EXPECT_GE(rt.stream_frontier(def), app_end);
    // ...and subsequent work on other streams waits for the default stream.
    auto s2 = rt.create_stream(0);
    rt.launch_kernel(s2, 1 << 10, "app2", nullptr);
    EXPECT_GE(rt.stream_frontier(s2), rt.stream_frontier(def));
  });
}

TEST(Runtime, EventsOrderStreams) {
  with_runtime([](vgpu::Runtime& rt) {
    auto s0 = rt.create_stream(0);
    auto s1 = rt.create_stream(1);
    rt.launch_kernel(s0, 64 << 20, "producer", nullptr);
    vgpu::Event ev;
    rt.record_event(ev, s0);
    rt.stream_wait_event(s1, ev);
    rt.launch_kernel(s1, 1 << 10, "consumer", nullptr);
    EXPECT_GE(rt.stream_frontier(s1), ev.completed_at);
    // Unrecorded events are no-ops.
    vgpu::Event empty;
    auto s2 = rt.create_stream(1);
    rt.stream_wait_event(s2, empty);
    EXPECT_TRUE(rt.event_query(empty));
  });
}

TEST(Runtime, EventQueryAndSynchronize) {
  with_runtime([](vgpu::Runtime& rt) {
    auto* eng = sim::Engine::current();
    auto s = rt.create_stream(0);
    rt.launch_kernel(s, 64 << 20, "slow", nullptr);
    vgpu::Event ev;
    rt.record_event(ev, s);
    EXPECT_FALSE(rt.event_query(ev));
    rt.event_synchronize(ev);
    EXPECT_TRUE(rt.event_query(ev));
    EXPECT_GE(eng->now(), ev.completed_at);
  });
}

TEST(Runtime, PeerAccessRules) {
  with_runtime([](vgpu::Runtime& rt) {
    EXPECT_TRUE(rt.can_access_peer(0, 1));
    EXPECT_FALSE(rt.can_access_peer(0, 3));
    EXPECT_FALSE(rt.peer_enabled(0, 1));
    rt.enable_peer_access(0, 1);
    EXPECT_TRUE(rt.peer_enabled(0, 1));
    EXPECT_FALSE(rt.peer_enabled(1, 0));  // directional, like CUDA
    EXPECT_THROW(rt.enable_peer_access(0, 3), std::runtime_error);
  });
}

TEST(Runtime, PeerCopyMovesBytesAndIsFasterWhenEnabled) {
  with_runtime([](vgpu::Runtime& rt) {
    auto* eng = sim::Engine::current();
    auto a = rt.alloc_device(0, 32 << 20);
    auto b = rt.alloc_device(1, 32 << 20);
    std::memset(a.data(), 0x5A, a.size());
    auto s = rt.create_stream(0);

    const sim::Time t0 = eng->now();
    rt.memcpy_peer_async(b, 0, a, 0, 32 << 20, s);  // peer NOT enabled: staged
    rt.stream_synchronize(s);
    const sim::Duration staged = eng->now() - t0;
    EXPECT_EQ(b.as<std::uint8_t>()[123], 0x5A);

    rt.enable_peer_access(0, 1);
    const sim::Time t1 = eng->now();
    rt.memcpy_peer_async(b, 0, a, 0, 32 << 20, s);
    rt.stream_synchronize(s);
    const sim::Duration direct = eng->now() - t1;
    EXPECT_LT(direct, staged);
  });
}

TEST(Runtime, IpcHandleRoundTrip) {
  with_runtime([](vgpu::Runtime& rt) {
    auto target = rt.alloc_device(2, 4096);
    std::memset(target.data(), 0, 4096);
    const auto handle = rt.ipc_get_mem_handle(target);
    auto mapped = rt.ipc_open_mem_handle(handle, 0);  // same node
    ASSERT_TRUE(mapped.valid());
    auto src = rt.alloc_device(0, 4096);
    std::memset(src.data(), 0x77, 4096);
    auto s = rt.create_stream(0);
    rt.enable_peer_access(0, 2);
    rt.memcpy_to_ipc_async(mapped, 0, src, 0, 4096, s);
    rt.stream_synchronize(s);
    EXPECT_EQ(target.as<std::uint8_t>()[4095], 0x77);
  });
}

TEST(Runtime, IpcAcrossNodesRejected) {
  with_runtime(
      [](vgpu::Runtime& rt) {
        auto buf = rt.alloc_device(0, 64);
        const auto handle = rt.ipc_get_mem_handle(buf);
        EXPECT_THROW(rt.ipc_open_mem_handle(handle, 6), std::runtime_error);  // node 1
      },
      /*nodes=*/2);
}

TEST(Runtime, PhantomCopiesCostTimeMoveNothing) {
  with_runtime([](vgpu::Runtime& rt) {
    auto* eng = sim::Engine::current();
    rt.set_mem_mode(vgpu::MemMode::kPhantom);
    auto h = rt.alloc_pinned_host(0, 1ull << 30);
    auto d = rt.alloc_device(0, 1ull << 30);
    auto s = rt.create_stream(0);
    const sim::Time t0 = eng->now();
    rt.memcpy_async(d, 0, h, 0, 1ull << 30, s);
    rt.stream_synchronize(s);
    EXPECT_GT(eng->now() - t0, 10 * sim::kMillisecond);  // 1 GiB at ~39 GiB/s
  });
}

TEST(Runtime, OutOfRangeCopyRejected) {
  with_runtime([](vgpu::Runtime& rt) {
    auto h = rt.alloc_pinned_host(0, 64);
    auto d = rt.alloc_device(0, 64);
    auto s = rt.create_stream(0);
    EXPECT_THROW(rt.memcpy_async(d, 32, h, 0, 64, s), std::out_of_range);
    EXPECT_THROW(rt.memcpy_async(d, 0, h, 1, 64, s), std::out_of_range);
  });
}

TEST(Runtime, CrossDeviceMemcpyAsyncRejected) {
  with_runtime([](vgpu::Runtime& rt) {
    auto a = rt.alloc_device(0, 64);
    auto b = rt.alloc_device(1, 64);
    auto s = rt.create_stream(0);
    EXPECT_THROW(rt.memcpy_async(b, 0, a, 0, 64, s), std::logic_error);
  });
}

TEST(Runtime, IssueOverheadSerializesOnCpu) {
  with_runtime([](vgpu::Runtime& rt) {
    // Issuing N async ops costs N * cpu_issue on the calling actor even
    // though the ops themselves overlap — the mechanism that rewards more
    // ranks per node in the STAGED regime.
    auto* eng = sim::Engine::current();
    auto s = rt.create_stream(0);
    const sim::Time t0 = eng->now();
    for (int i = 0; i < 10; ++i) rt.launch_kernel(s, 0, "k", nullptr);
    EXPECT_EQ(eng->now() - t0, 10 * rt.machine().arch().cpu_issue);
  });
}
