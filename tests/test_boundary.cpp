#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/exchange.h"
#include "topo/archetype.h"

using stencil::Boundary;
using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::ExchangePlan;
using stencil::HierarchicalPartition;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::Placement;
using stencil::PlacementStrategy;
using stencil::RankCtx;

TEST(Boundary, NeighborIndexRules) {
  const Dim3 ext{4, 3, 1};
  EXPECT_EQ(stencil::neighbor_index({0, 0, 0}, {-1, 0, 0}, ext, Boundary::kPeriodic),
            (Dim3{3, 0, 0}));
  EXPECT_EQ(stencil::neighbor_index({0, 0, 0}, {-1, 0, 0}, ext, Boundary::kFixed), std::nullopt);
  EXPECT_EQ(stencil::neighbor_index({1, 1, 0}, {1, 1, 0}, ext, Boundary::kFixed), (Dim3{2, 2, 0}));
  EXPECT_EQ(stencil::neighbor_index({3, 2, 0}, {1, 1, 0}, ext, Boundary::kFixed), std::nullopt);
  // z-extent 1 wraps onto itself under periodic, has no z-neighbor fixed.
  EXPECT_EQ(stencil::neighbor_index({0, 0, 0}, {0, 0, 1}, ext, Boundary::kPeriodic),
            (Dim3{0, 0, 0}));
  EXPECT_EQ(stencil::neighbor_index({0, 0, 0}, {0, 0, 1}, ext, Boundary::kFixed), std::nullopt);
}

TEST(Boundary, FixedPlanHasFewerTransfers) {
  HierarchicalPartition hp({120, 120, 120}, 2, 6);
  Placement p(hp, stencil::topo::summit(), 1, 4, Neighborhood::kFull,
              PlacementStrategy::kTrivial);
  const auto periodic =
      ExchangePlan::full(p, 6, MethodFlags::kAll, Neighborhood::kFull, Boundary::kPeriodic);
  const auto fixed =
      ExchangePlan::full(p, 6, MethodFlags::kAll, Neighborhood::kFull, Boundary::kFixed);
  EXPECT_LT(fixed.transfers().size(), periodic.transfers().size());
  // No fixed-boundary transfer may wrap: dst must be src + dir exactly.
  for (const auto& t : fixed.transfers()) {
    EXPECT_EQ(t.dst_idx, t.src_idx + t.dir);
  }
  // And fixed plans have no self-exchanges at all.
  for (const auto& t : fixed.transfers()) EXPECT_FALSE(t.self());
}

namespace {

float coord_value(Dim3 g) { return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z); }
constexpr float kBoundarySentinel = -7777.0f;

}  // namespace

TEST(Boundary, FixedExchangeFillsInteriorHalosOnly) {
  Cluster cluster(stencil::topo::summit(), 1, 2);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 18, 12});
    dd.set_radius(1);
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kAll);
    dd.set_boundary(Boundary::kFixed);
    dd.realize();

    // Fill interiors with coordinates and ALL halos with a sentinel.
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      for (std::int64_t z = -1; z < s.z + 1; ++z)
        for (std::int64_t y = -1; y < s.y + 1; ++y)
          for (std::int64_t x = -1; x < s.x + 1; ++x) {
            const bool interior = Dim3{x, y, z}.inside(s);
            v(x, y, z) = interior ? coord_value({o.x + x, o.y + y, o.z + z}) : kBoundarySentinel;
          }
    });

    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();

    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      for (std::int64_t z = -1; z < s.z + 1; ++z)
        for (std::int64_t y = -1; y < s.y + 1; ++y)
          for (std::int64_t x = -1; x < s.x + 1; ++x) {
            if (Dim3{x, y, z}.inside(s)) continue;
            const Dim3 g{o.x + x, o.y + y, o.z + z};
            if (g.inside(dd.domain())) {
              // Interior halo: must hold the neighbor's value.
              EXPECT_EQ(v(x, y, z), coord_value(g))
                  << "halo [" << x << "," << y << "," << z << "] of " << ld.index().str();
            } else {
              // Physical boundary: untouched by the exchange.
              EXPECT_EQ(v(x, y, z), kBoundarySentinel)
                  << "boundary halo [" << x << "," << y << "," << z << "] of "
                  << ld.index().str() << " was overwritten";
            }
          }
    });
  });
}

TEST(Boundary, FixedExchangeCheaperThanPeriodic) {
  auto run = [](Boundary b) {
    Cluster cluster(stencil::topo::summit(), 2, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    std::vector<double> t(12, 0.0);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {300, 300, 300});
      dd.add_data<float>("q");
      dd.set_methods(MethodFlags::kAll);
      dd.set_boundary(b);
      dd.realize();
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      ctx.comm.barrier();
      t[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
    });
    return *std::max_element(t.begin(), t.end());
  };
  EXPECT_LT(run(Boundary::kFixed), run(Boundary::kPeriodic));
}

TEST(Overlap, SplitPhaseMatchesMonolithic) {
  Cluster cluster(stencil::topo::summit(), 1, 2);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 18, 12});
    dd.set_radius(1);
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = coord_value({o.x + x, o.y + y, o.z + z});
    });
    ctx.comm.barrier();
    dd.exchange_start();
    // "Interior compute" between the phases.
    int computed = 0;
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      dd.launch_compute(ld, "interior", 1 << 20, [&] { ++computed; });
    });
    dd.exchange_finish();
    ctx.comm.barrier();
    EXPECT_EQ(computed, static_cast<int>(dd.num_subdomains()));

    // Halos are as correct as with the monolithic exchange().
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      EXPECT_EQ(v(-1, 0, 0), coord_value(Dim3{o.x - 1, o.y, o.z}.wrap(dd.domain())));
      EXPECT_EQ(v(s.x, 0, 0), coord_value(Dim3{o.x + s.x, o.y, o.z}.wrap(dd.domain())));
    });
  });
}

TEST(Overlap, MisuseDetected) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 24, 24});
    dd.add_data<float>("q");
    dd.realize();
    EXPECT_THROW(dd.exchange_finish(), std::logic_error);
    dd.exchange_start();
    EXPECT_THROW(dd.exchange_start(), std::logic_error);
    dd.exchange_finish();
    EXPECT_NO_THROW(dd.exchange());
  });
}

TEST(Overlap, OverlapHidesComputeTime) {
  // With compute issued between start and finish, the total step time must
  // be less than the sum of a full exchange plus the compute alone.
  auto step_time = [](bool overlapped) {
    Cluster cluster(stencil::topo::summit(), 1, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    std::vector<double> t(6, 0.0);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {512, 512, 512});
      dd.set_radius(2);
      dd.add_data<float>("q");
      dd.set_methods(MethodFlags::kAll);
      dd.realize();
      const std::uint64_t compute_bytes = 512ull * 512 * 512 * 4 / 6;
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      if (overlapped) {
        dd.exchange_start();
        dd.for_each_subdomain(
            [&](stencil::LocalDomain& ld) { dd.launch_compute(ld, "interior", compute_bytes, {}); });
        dd.exchange_finish();
      } else {
        dd.exchange();
        dd.for_each_subdomain(
            [&](stencil::LocalDomain& ld) { dd.launch_compute(ld, "interior", compute_bytes, {}); });
      }
      dd.compute_synchronize();
      ctx.comm.barrier();
      t[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
    });
    return *std::max_element(t.begin(), t.end());
  };
  EXPECT_LT(step_time(true), step_time(false));
}
